// Quickstart: the Pinatubo driver API end to end.
//
//   1. create a runtime (simulated PCM DIMM + driver library),
//   2. pim_malloc bit-vectors,
//   3. load data, run OR/AND/XOR/INV *inside the memory*,
//   4. read results back, inspect cost and the DDR command stream.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "common/units.hpp"
#include "pinatubo/driver.hpp"

using namespace pinatubo;

int main() {
  // A Pinatubo-enabled PCM main memory with command recording on.
  core::PimRuntime::Options opts;
  opts.tech = nvm::Tech::kPcm;
  opts.max_rows = 128;
  opts.record_commands = true;
  core::PimRuntime pim(mem::Geometry{}, opts);

  // Three 16 Ki-bit vectors: the allocator co-locates them on adjacent
  // rows of one subarray so ops can use multi-row activation.
  const std::uint64_t kBits = 1ull << 14;
  const auto a = pim.pim_malloc(kBits);
  const auto b = pim.pim_malloc(kBits);
  const auto dst = pim.pim_malloc(kBits);

  Rng rng(42);
  const auto va = BitVector::random(kBits, 0.3, rng);
  const auto vb = BitVector::random(kBits, 0.3, rng);
  pim.pim_write(a, va);
  pim.pim_write(b, vb);

  // dst = a OR b — computed by the sense amplifiers, not the CPU.
  pim.pim_op(BitOp::kOr, {a, b}, dst);
  std::printf("OR  correct: %s\n",
              pim.pim_read(dst) == (va | vb) ? "yes" : "NO");

  pim.pim_op(BitOp::kAnd, {a, b}, dst);
  std::printf("AND correct: %s\n",
              pim.pim_read(dst) == (va & vb) ? "yes" : "NO");

  pim.pim_op(BitOp::kXor, {a, b}, dst);
  std::printf("XOR correct: %s\n",
              pim.pim_read(dst) == (va ^ vb) ? "yes" : "NO");

  pim.pim_op(BitOp::kInv, {a}, dst);
  std::printf("INV correct: %s\n", pim.pim_read(dst) == ~va ? "yes" : "NO");

  // A 64-operand OR in ONE multi-row activation.
  std::vector<core::PimRuntime::Handle> many;
  BitVector expect(kBits);
  for (int i = 0; i < 64; ++i) {
    const auto h = pim.pim_malloc(kBits);
    const auto v = BitVector::random(kBits, 0.02, rng);
    pim.pim_write(h, v);
    expect |= v;
    many.push_back(h);
  }
  pim.pim_op(BitOp::kOr, many, many.back());
  std::printf("64-row OR correct: %s\n",
              pim.pim_read(many.back()) == expect ? "yes" : "NO");

  const auto& st = pim.stats();
  std::printf(
      "\n%llu ops -> %llu intra-subarray steps, %llu inter-subarray, "
      "%llu inter-bank\n",
      static_cast<unsigned long long>(st.ops),
      static_cast<unsigned long long>(st.intra_steps),
      static_cast<unsigned long long>(st.inter_sub_steps),
      static_cast<unsigned long long>(st.inter_bank_steps));
  std::printf("total PIM time %s, energy %s\n",
              units::format_time(pim.cost().time_ns).c_str(),
              units::format_energy(pim.cost().energy.total_pj()).c_str());

  std::printf("\nfirst DDR commands of the last op:\n");
  const auto& cmds = pim.commands();
  const std::size_t start = cmds.size() >= 70 ? cmds.size() - 70 : 0;
  for (std::size_t i = start; i < cmds.size() && i < start + 8; ++i)
    std::printf("  %s\n", cmds[i].to_string().c_str());
  std::printf("  ... (%zu commands total)\n", cmds.size());
  return 0;
}
