// Bitmap BFS executed THROUGH the Pinatubo memory (not just traced):
// frontier/visited/partial bitmaps live in simulated NVM rows, and every
// level's merge / filter / update runs as pim_ops derived from the sense
// amplifiers.  The result is cross-checked against a plain CPU BFS.
//
// Build & run:  ./examples/graph_bfs [nodes_log2=15]
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <queue>

#include "apps/graph.hpp"
#include "common/units.hpp"
#include "pinatubo/driver.hpp"

using namespace pinatubo;

namespace {

/// Reference CPU BFS (level per vertex).
std::vector<std::uint32_t> cpu_bfs(const apps::Graph& g, std::uint32_t src) {
  std::vector<std::uint32_t> level(g.nodes(),
                                   std::numeric_limits<std::uint32_t>::max());
  std::queue<std::uint32_t> q;
  level[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const auto v = q.front();
    q.pop();
    const auto [begin, end] = g.neighbors(v);
    for (const auto* w = begin; w != end; ++w)
      if (level[*w] == std::numeric_limits<std::uint32_t>::max()) {
        level[*w] = level[v] + 1;
        q.push(*w);
      }
  }
  return level;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned nodes_log2 =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 15;
  apps::GraphGenParams gp;
  gp.nodes = 1u << nodes_log2;
  gp.avg_degree = 8;
  gp.communities = 4;
  gp.bridge_edges = 64;
  Rng rng(7);
  const auto g = apps::generate_graph(gp, rng);
  std::printf("graph: %u nodes, %llu directed edges\n", g.nodes(),
              static_cast<unsigned long long>(g.edges()));

  const std::uint32_t n = g.nodes();
  const unsigned P = 16;  // partial next-frontier bitmaps

  core::PimRuntime pim;
  std::vector<core::PimRuntime::Handle> partial(P);
  for (auto& h : partial) h = pim.pim_malloc(n);
  const auto visited = pim.pim_malloc(n);
  const auto frontier = pim.pim_malloc(n);
  const auto next = pim.pim_malloc(n);

  BitVector init(n);
  init.set(0);
  pim.pim_write(visited, init);
  pim.pim_write(frontier, init);

  const std::uint32_t span = (n + P - 1) / P;
  std::size_t levels = 0;
  BitVector host_frontier = init;
  while (host_frontier.any()) {
    // Scalar expansion into the partials (host writes into PIM rows).
    std::vector<BitVector> parts(P, BitVector(n));
    std::vector<std::uint64_t> dirty;
    host_frontier.for_each_set([&](std::size_t v) {
      const auto [begin, end] = g.neighbors(static_cast<std::uint32_t>(v));
      const unsigned p = static_cast<std::uint32_t>(v) / span;
      for (const auto* w = begin; w != end; ++w) parts[p].set(*w);
    });
    for (unsigned p = 0; p < P; ++p)
      if (parts[p].any()) {
        pim.pim_write(partial[p], parts[p]);
        dirty.push_back(partial[p]);
      }
    if (dirty.empty()) break;

    // merged = OR(dirty partials): one multi-row activation.
    if (dirty.size() >= 2) pim.pim_op(BitOp::kOr, dirty, dirty.front());
    // next = NOT visited AND merged.
    pim.pim_op(BitOp::kInv, {visited}, next);
    pim.pim_op(BitOp::kAnd, {next, dirty.front()}, next, true);
    // visited |= next.
    pim.pim_op(BitOp::kOr, {visited, next}, visited);

    host_frontier = pim.pim_read(next);
    // Clear consumed partials for the next level.
    for (const auto h : dirty) pim.pim_write(h, BitVector(n));
    ++levels;
  }

  // Validate against the CPU BFS.
  const auto ref = cpu_bfs(g, 0);
  const auto final_visited = pim.pim_read(visited);
  std::uint64_t mismatches = 0, reached = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const bool cpu_reached =
        ref[v] != std::numeric_limits<std::uint32_t>::max();
    reached += cpu_reached;
    mismatches += cpu_reached != final_visited.get(v);
  }
  std::printf("BFS levels: %zu, reached %llu/%u vertices\n", levels,
              static_cast<unsigned long long>(reached), n);
  std::printf("PIM result vs CPU BFS: %s (%llu mismatches)\n",
              mismatches == 0 ? "MATCH" : "MISMATCH",
              static_cast<unsigned long long>(mismatches));

  const auto& st = pim.stats();
  std::printf("\nPIM ops: %llu (intra %llu / inter-sub %llu / inter-bank %llu)\n",
              static_cast<unsigned long long>(st.ops),
              static_cast<unsigned long long>(st.intra_steps),
              static_cast<unsigned long long>(st.inter_sub_steps),
              static_cast<unsigned long long>(st.inter_bank_steps));
  std::printf("in-memory op time %s, energy %s\n",
              units::format_time(pim.cost().time_ns).c_str(),
              units::format_energy(pim.cost().energy.total_pj()).c_str());
  return mismatches == 0 ? 0 : 1;
}
