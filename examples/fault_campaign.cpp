// Fault-injection campaign: random bulk bitwise ops on a faulty NVM array
// against a host-side golden model (DESIGN.md §10).
//
// Build & run:  ./examples/fault_campaign [configs/faulty.cfg] [k=v ...]
//                                         [--json out.json]
//                                         [--trace-out trace.json]
//                                         [--corrupt]
//
// Default mode exercises the full recovery ladder (verify -> retry ->
// de-escalate -> remap -> CPU fallback) and FAILS (exit 1) if any result
// differs from the golden model or if no fault was ever detected — the
// campaign must prove both that faults happened and that none escaped.
// `--corrupt` turns all detection off with the SAME fault seed and fails
// unless corruption becomes observable — the control experiment.
//
// Campaign keys (on top of the fault.*/verify.*/retry.* policy block):
//   campaign.ops      ops to run (default 200)
//   campaign.vectors  live vectors (default 24)
//   campaign.seed     op-stream seed (default 7)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/parallel.hpp"
#include "obs/trace.hpp"
#include "pinatubo/driver.hpp"
#include "reliability/policy.hpp"

using namespace pinatubo;

int main(int argc, char** argv) {
  // Campaign defaults model an end-of-life PCM corner: healthy-shape
  // Monte-Carlo yield is ~1 (ber_from_yield ~ 0), so the campaign sets the
  // stressed rates explicitly.  Files/overrides replace them.
  // stuck_rate is per CELL and a rank-row spans 2^19 of them — 1e-7 puts
  // ~5% of rank-rows at birth defects, the regime row-sparing handles
  // (higher rates need word-level ECC, which this machine doesn't model).
  Config cfg = Config::from_string(
      "fault.enabled = true\n"
      "fault.stuck_rate = 1e-7\n"
      "fault.sense_ber = 1e-5\n");
  std::string json_path, trace_path;
  bool corrupt = false;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto path_arg = [&](const char* name, std::string& out) {
      const std::string pfx = std::string(name) + "=";
      if (arg.rfind(pfx, 0) == 0) {
        out = arg.substr(pfx.size());
        return true;
      }
      if (arg == name && i + 1 < argc) {
        out = argv[++i];
        return true;
      }
      return false;
    };
    if (path_arg("--json", json_path) || path_arg("--trace-out", trace_path))
      continue;
    if (arg == "--corrupt") {
      corrupt = true;
    } else if (arg.find('=') != std::string::npos) {
      overrides.push_back(arg);
    } else {
      std::ifstream f(arg);
      if (!f) {
        std::fprintf(stderr, "cannot open config %s\n", arg.c_str());
        return 1;
      }
      std::ostringstream ss;
      ss << f.rdbuf();
      cfg.merge(Config::from_string(ss.str()));
    }
  }
  cfg.merge(Config::from_args(overrides));
  ThreadPool::set_global_threads(
      static_cast<unsigned>(cfg.get_u64("threads", 0)));

  reliability::Policy policy = reliability::policy_from_config(cfg);
  if (corrupt) {
    // Same chip, same fault seed, eyes closed.
    policy.verify = {};
  }
  std::printf("fault campaign — %s mode\n",
              corrupt ? "corrupt (detection off)" : "recover");
  for (const auto& [k, v] : reliability::describe(policy))
    std::printf("  %-24s %s\n", k.c_str(), v.c_str());

  const mem::Geometry geo = mem::geometry_from_config(cfg);
  core::PimRuntime::Options opts;
  opts.tech = nvm::tech_from_string(cfg.get_or("tech", "pcm"));
  opts.max_rows = static_cast<unsigned>(cfg.get_u64("max_rows", 128));
  opts.reliability = policy;
  core::PimRuntime pim(geo, opts);
  obs::TraceSession trace(!trace_path.empty());
  pim.set_trace(&trace);

  const auto n_ops = cfg.get_u64("campaign.ops", 200);
  const auto n_vecs =
      static_cast<std::size_t>(cfg.get_u64("campaign.vectors", 24));
  Rng rng(cfg.get_u64("campaign.seed", 7));

  // One-stripe vectors co-locate in one subarray: every op takes the
  // intra-subarray (analog, fault-prone) path.
  const std::uint64_t bits = geo.sense_step_bits();
  std::vector<core::PimRuntime::Handle> vecs(n_vecs);
  std::vector<BitVector> golden(n_vecs);  // the host-side ground truth
  for (std::size_t i = 0; i < n_vecs; ++i) {
    vecs[i] = pim.pim_malloc(bits);
    golden[i] = BitVector::random(bits, 0.3, rng);
    pim.pim_write(vecs[i], golden[i]);
  }

  std::uint64_t wrong = 0;
  for (std::uint64_t it = 0; it < n_ops; ++it) {
    // Mixed op stream; OR fan-in up to 8 keeps wide activations common
    // without making every one hopeless at the stressed BER.
    const unsigned pick = static_cast<unsigned>(rng.next() % 8);
    BitOp op = BitOp::kOr;
    std::size_t fan = 2 + rng.next() % 7;
    if (pick == 5) op = BitOp::kAnd, fan = 2;
    if (pick == 6) op = BitOp::kXor, fan = 2;
    if (pick == 7) op = BitOp::kInv, fan = 1;
    // Distinct source vectors (operands must sit on distinct rows).
    std::vector<std::size_t> idx(n_vecs);
    for (std::size_t i = 0; i < n_vecs; ++i) idx[i] = i;
    for (std::size_t i = 0; i < fan; ++i) {
      const std::size_t j = i + rng.next() % (n_vecs - i);
      std::swap(idx[i], idx[j]);
    }
    const std::size_t dst = idx[rng.next() % fan];  // in-place sometimes
    std::vector<core::PimRuntime::Handle> srcs;
    std::vector<const BitVector*> gsrcs;
    for (std::size_t i = 0; i < fan; ++i) {
      srcs.push_back(vecs[idx[i]]);
      gsrcs.push_back(&golden[idx[i]]);
    }
    pim.pim_op(op, srcs, vecs[dst]);
    golden[dst] = BitVector::reduce(op, gsrcs);
    if (pim.pim_read(vecs[dst]) != golden[dst]) ++wrong;
  }

  const auto& st = pim.stats();
  const auto* fm = pim.fault_model();
  std::printf(
      "\nops %llu  wrong %llu  detected %llu  retries %llu  deesc %llu  "
      "remaps %llu  fallbacks %llu\n",
      static_cast<unsigned long long>(n_ops),
      static_cast<unsigned long long>(wrong),
      static_cast<unsigned long long>(st.detected_faults),
      static_cast<unsigned long long>(st.retries),
      static_cast<unsigned long long>(st.deescalations),
      static_cast<unsigned long long>(st.remaps),
      static_cast<unsigned long long>(st.fallbacks));
  std::printf(
      "flipped words %llu  wearout cells %llu  remapped rows %zu  "
      "time %.1f ns (cpu-fallback %.1f ns)\n",
      static_cast<unsigned long long>(fm ? fm->flipped_words() : 0),
      static_cast<unsigned long long>(fm ? fm->wearout_cells() : 0),
      pim.memory().remapped_rows(), pim.cost().time_ns,
      st.fallback_time_ns);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"mode\": \"" << (corrupt ? "corrupt" : "recover") << "\",\n"
        << "  \"ops\": " << n_ops << ",\n"
        << "  \"wrong_results\": " << wrong << ",\n"
        << "  \"detected_faults\": " << st.detected_faults << ",\n"
        << "  \"retries\": " << st.retries << ",\n"
        << "  \"deescalations\": " << st.deescalations << ",\n"
        << "  \"remaps\": " << st.remaps << ",\n"
        << "  \"fallbacks\": " << st.fallbacks << ",\n"
        << "  \"flipped_words\": " << (fm ? fm->flipped_words() : 0) << ",\n"
        << "  \"wearout_cells\": " << (fm ? fm->wearout_cells() : 0) << ",\n"
        << "  \"remapped_rows\": " << pim.memory().remapped_rows() << ",\n"
        << "  \"time_ns\": " << pim.cost().time_ns << ",\n"
        << "  \"fallback_time_ns\": " << st.fallback_time_ns << ",\n"
        << "  \"energy_pj\": " << pim.cost().energy.total_pj() << "\n"
        << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (trace.enabled()) {
    trace.write_chrome_json(trace_path);
    std::printf("wrote schedule trace to %s (%zu spans)\n",
                trace_path.c_str(), trace.spans().size());
  }

  if (corrupt) {
    if (wrong == 0) {
      std::fprintf(stderr,
                   "FAIL: corruption mode produced no wrong results — the "
                   "fault injection is not biting\n");
      return 1;
    }
    std::printf("OK: corruption observable without detection (%llu wrong)\n",
                static_cast<unsigned long long>(wrong));
    return 0;
  }
  if (wrong != 0) {
    std::fprintf(stderr, "FAIL: %llu results escaped recovery\n",
                 static_cast<unsigned long long>(wrong));
    return 1;
  }
  if (st.detected_faults == 0) {
    std::fprintf(stderr,
                 "FAIL: recovery campaign detected no faults — nothing was "
                 "actually tested\n");
    return 1;
  }
  std::printf("OK: zero wrong results with %llu faults detected\n",
              static_cast<unsigned long long>(st.detected_faults));
  return 0;
}
