// Machine explorer: load a machine description (config file + key=value
// overrides), print the derived organization, area, sensing limits, and a
// few representative op costs.
//
// Build & run:  ./examples/machine_explorer [configs/default.cfg] [k=v ...]
//                                           [--trace-out batch.json]
// `--trace-out` writes the demo batch's schedule as Chrome trace-event
// JSON (open in chrome://tracing or ui.perfetto.dev).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "circuit/margin.hpp"
#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "nvm/area_model.hpp"
#include "obs/trace.hpp"
#include "pinatubo/backend.hpp"
#include "pinatubo/driver.hpp"
#include "reliability/policy.hpp"

using namespace pinatubo;

int main(int argc, char** argv) {
  Config cfg;
  std::vector<std::string> overrides;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace-out="));
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg.find('=') != std::string::npos) {
      overrides.push_back(arg);
    } else {
      std::ifstream f(arg);
      if (!f) {
        std::fprintf(stderr, "cannot open config %s\n", arg.c_str());
        return 1;
      }
      std::ostringstream ss;
      ss << f.rdbuf();
      cfg.merge(Config::from_string(ss.str()));
    }
  }
  cfg.merge(Config::from_args(overrides));

  // Functional-simulation pool size; 0 defers to PINATUBO_THREADS, then
  // hardware_concurrency (results are thread-count invariant).
  ThreadPool::set_global_threads(
      static_cast<unsigned>(cfg.get_u64("threads", 0)));

  const auto geo = mem::geometry_from_config(cfg);
  const auto tech = nvm::tech_from_string(cfg.get_or("tech", "pcm"));
  const auto max_rows =
      static_cast<unsigned>(cfg.get_u64("max_rows", 128));

  Table t("Machine");
  t.set_header({"property", "value"});
  t.add_row({"technology", nvm::to_string(tech)});
  t.add_row({"organization",
             std::to_string(geo.channels) + " ch x " +
                 std::to_string(geo.ranks_per_channel) + " rk x " +
                 std::to_string(geo.chips_per_rank) + " chips x " +
                 std::to_string(geo.banks_per_chip) + " banks x " +
                 std::to_string(geo.subarrays_per_bank) + " subarrays x " +
                 std::to_string(geo.rows_per_subarray) + " rows"});
  t.add_row({"capacity", units::format_bytes(geo.total_bytes())});
  t.add_row({"row group (turning point B)",
             std::to_string(geo.row_group_bits()) + " bits"});
  t.add_row({"sense step (turning point A)",
             std::to_string(geo.sense_step_bits()) + " bits"});
  t.add_row({"derived max OR rows",
             std::to_string(circuit::derived_max_or_rows(tech))});
  t.print();
  std::printf("\n");

  // Active fault-injection / recovery policy (validated: typos in
  // fault.*/verify.*/retry.* keys fail loudly here).
  const auto relpol = reliability::policy_from_config(cfg);
  Table rp("Reliability policy");
  rp.set_header({"key", "value"});
  for (const auto& [k, v] : reliability::describe(relpol)) rp.add_row({k, v});
  rp.print();
  std::printf("\n");

  nvm::ChipStructure chip;
  chip.banks = geo.banks_per_chip;
  chip.subarrays_per_bank = geo.subarrays_per_bank;
  chip.mats_per_subarray = geo.mats_per_subarray;
  chip.rows_per_subarray = geo.rows_per_subarray;
  chip.row_slice_bits = geo.row_slice_bits;
  chip.sa_mux_share = geo.sa_mux_share;
  chip.cells = static_cast<std::uint64_t>(geo.banks_per_chip) *
               geo.subarrays_per_bank * geo.rows_per_subarray *
               geo.row_slice_bits;
  const nvm::AreaModel area(nvm::cell_params(tech), chip);
  std::printf("chip area %.2f mm^2; Pinatubo overhead %.3f%%, AC-PIM %.3f%%\n\n",
              area.baseline().total_um2() / 1e6,
              area.pinatubo_overhead().total_percent(),
              area.acpim_overhead().total_percent());

  core::PinatuboBackend pin(geo, {tech, max_rows});
  Table ops("Representative op costs");
  ops.set_header({"op", "time", "energy", "equiv GBps"});
  struct Case {
    const char* name;
    unsigned n;
    std::uint64_t bits;
  };
  for (const Case& c : {Case{"2-row OR, one stripe", 2, 1ull << 14},
                        Case{"2-row OR, full row", 2, 1ull << 19},
                        Case{"max-row OR, full row", max_rows, 1ull << 19}}) {
    const unsigned n = std::min(c.n, circuit::derived_max_or_rows(tech));
    std::vector<std::uint64_t> ids;
    for (unsigned k = 0; k < n; ++k) ids.push_back(k);
    const auto cost = pin.op_cost(BitOp::kOr, ids, n - 1, c.bits, false, 0.5);
    ops.add_row({c.name, units::format_time(cost.time_ns),
                 units::format_energy(cost.energy.total_pj()),
                 Table::num(n * (c.bits / 8.0) / cost.time_ns, 4)});
  }
  ops.print();
  std::printf("\n");

  // Run a small batched workload through the runtime and show where the
  // time and energy go, per step class.
  core::PimRuntime::Options ropts;
  ropts.tech = tech;
  ropts.max_rows = max_rows;
  ropts.reliability = relpol;
  core::PimRuntime pim(geo, ropts);
  obs::TraceSession trace(!trace_path.empty());
  pim.set_trace(&trace);
  // Two-group vectors span both ranks, so the engine overlaps the groups
  // of independent ops; the last two ops stream their result to the host.
  const std::uint64_t bits = 2 * geo.row_group_bits();
  std::vector<core::PimRuntime::Handle> vecs;
  Rng rng(42);
  for (int i = 0; i < 8; ++i) {
    vecs.push_back(pim.pim_malloc(bits));
    pim.pim_write(vecs.back(), BitVector::random(bits, 0.5, rng));
  }
  pim.pim_begin();
  for (int i = 0; i < 4; ++i)
    pim.pim_op(BitOp::kOr, {vecs[2 * i], vecs[2 * i + 1]}, vecs[2 * i]);
  pim.pim_op(BitOp::kAnd, {vecs[0], vecs[2]}, vecs[0], true);
  pim.pim_op(BitOp::kXor, {vecs[4], vecs[6]}, vecs[4], true);
  pim.pim_barrier();

  const auto& st = pim.stats();
  Table br("Runtime breakdown — one 6-op batch window");
  br.set_header({"step class", "steps", "time", "energy"});
  for (std::size_t k = 0; k < core::kStepKindCount; ++k) {
    const auto& c = st.by_class[k];
    if (c.steps == 0) continue;
    br.add_row({core::to_string(static_cast<core::StepKind>(k)),
                std::to_string(c.steps), units::format_time(c.time_ns),
                units::format_energy(c.energy_pj)});
  }
  br.add_separator();
  br.add_row({"serial sum", "-", units::format_time(st.serial_time_ns), "-"});
  br.add_row({"overlapped (engine)", "-",
              units::format_time(pim.cost().time_ns),
              units::format_energy(pim.cost().energy.total_pj())});
  br.add_note("bus bytes moved: " + units::format_bytes(st.bus_bytes));
  br.print();

  if (trace.enabled()) {
    trace.write_chrome_json(trace_path);
    std::printf("\nwrote batch schedule trace to %s (%zu spans over %zu "
                "tracks); open in chrome://tracing or ui.perfetto.dev\n",
                trace_path.c_str(), trace.spans().size(),
                trace.track_names().size());
  }
  return 0;
}
