// Bitmap-index queries executed through the Pinatubo memory: the FastBit
// example from the paper's Database workload, with the bin bitmaps living
// in NVM rows, bin-range ORs as multi-row activations, and every COUNT
// cross-checked against a row-by-row scan of the raw table.
//
// Build & run:  ./examples/bitmap_query [queries=20]
#include <cstdio>
#include <cstdlib>

#include "apps/bitmap_index.hpp"
#include "common/units.hpp"
#include "pinatubo/driver.hpp"

using namespace pinatubo;

int main(int argc, char** argv) {
  const std::size_t n_queries =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;

  // A small event table so the example runs instantly; the bench suite
  // uses the full STAR-scale configuration.
  apps::IndexConfig cfg;
  cfg.rows = 1ull << 16;
  const apps::BitmapIndex index(cfg, 99);

  core::PimRuntime pim;
  // Load the index into PIM rows in id order: the id layout interleaves
  // two attributes' bins with scratch rows so predicate evaluation stays
  // intra-subarray (see apps/bitmap_index.hpp).
  const std::uint64_t block = 2ull * cfg.bins + cfg.scratch_per_pair;
  const std::uint64_t total_ids = (cfg.attributes / 2) * block;
  std::vector<core::PimRuntime::Handle> by_id(total_ids);
  for (std::uint64_t id = 0; id < total_ids; ++id)
    by_id[id] = pim.pim_malloc(cfg.rows);
  for (unsigned a = 0; a < cfg.attributes; ++a)
    for (unsigned b = 0; b < cfg.bins; ++b)
      pim.pim_write(by_id[index.bitmap_id(a, b)], index.bin_bitmap(a, b));

  const auto queries = apps::generate_queries(cfg, n_queries, 7);
  std::size_t correct = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    // Evaluate each predicate into its pair's scratch row.
    std::vector<unsigned> pair_use(cfg.attributes / 2 + 1, 0);
    std::vector<core::PimRuntime::Handle> pred;
    for (const auto& p : q.preds) {
      const auto slot = by_id[index.scratch_id(p.attr, pair_use[p.attr / 2]++)];
      if (p.hi_bin > p.lo_bin) {
        std::vector<core::PimRuntime::Handle> bins;
        for (unsigned b = p.lo_bin; b <= p.hi_bin; ++b)
          bins.push_back(by_id[index.bitmap_id(p.attr, b)]);
        pim.pim_op(BitOp::kOr, bins, slot);
        if (p.negate) pim.pim_op(BitOp::kInv, {slot}, slot);
        pred.push_back(slot);
      } else if (p.negate) {
        pim.pim_op(BitOp::kInv, {by_id[index.bitmap_id(p.attr, p.lo_bin)]},
                   slot);
        pred.push_back(slot);
      } else {
        pred.push_back(by_id[index.bitmap_id(p.attr, p.lo_bin)]);
      }
    }
    // Conjunction, accumulated in the first pair's scratch.
    const auto out = by_id[index.scratch_id(q.preds[0].attr,
                                            pair_use[q.preds[0].attr / 2]++)];
    pim.pim_op(BitOp::kAnd, {pred[0], pred[1]}, out);
    for (std::size_t i = 2; i < pred.size(); ++i)
      pim.pim_op(BitOp::kAnd, {out, pred[i]}, out);

    const auto count = pim.pim_read(out).popcount();
    const auto expect = apps::count_matches_reference(index, q);
    correct += count == expect;
    if (qi < 8)
      std::printf("query %2zu: %zu preds -> COUNT=%llu (reference %llu) %s\n",
                  qi, q.preds.size(), static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(expect),
                  count == expect ? "ok" : "WRONG");
  }
  std::printf("...\n%zu/%zu queries correct\n", correct, queries.size());

  const auto& st = pim.stats();
  std::printf("\nPIM ops: %llu (intra %llu / inter-sub %llu / inter-bank %llu)\n",
              static_cast<unsigned long long>(st.ops),
              static_cast<unsigned long long>(st.intra_steps),
              static_cast<unsigned long long>(st.inter_sub_steps),
              static_cast<unsigned long long>(st.inter_bank_steps));
  std::printf("in-memory query time %s, energy %s\n",
              units::format_time(pim.cost().time_ns).c_str(),
              units::format_energy(pim.cost().energy.total_pj()).c_str());
  return correct == queries.size() ? 0 : 1;
}
