// Trace runner: record a workload once, price it on every architecture.
//
//   ./examples/trace_runner --demo              # write a demo trace file
//   ./examples/trace_runner <trace-file>        # price it on all backends
//   ./examples/trace_runner <trace-file> --trace-out sched.json
//                            # also dump Pinatubo-128's schedule as Chrome
//                            # trace-event JSON (chrome://tracing/Perfetto)
//
// Trace files use the line format of src/sim/trace_io.hpp, so they can be
// produced by any tool (or by hand) and shared between machines.
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/vector_workload.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/trace.hpp"
#include "pinatubo/backend.hpp"
#include "sim/acpim_backend.hpp"
#include "sim/sdram_backend.hpp"
#include "sim/simd_backend.hpp"
#include "sim/trace_io.hpp"

using namespace pinatubo;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s (--demo | <trace-file> [--trace-out <json>])\n",
                 argv[0]);
    return 1;
  }
  std::string trace_out;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
      trace_out = argv[i] + 12;
    else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
      trace_out = argv[++i];
  }
  if (std::strcmp(argv[1], "--demo") == 0) {
    const auto trace =
        apps::vector_trace(apps::VectorSpec::parse("14-10-5s"));
    sim::save_trace_file(trace, "demo.trace");
    std::printf("wrote demo.trace (%zu ops); run:\n  %s demo.trace\n",
                trace.op_count(), argv[0]);
    return 0;
  }

  const auto trace = sim::load_trace_file(argv[1]);
  std::printf("trace '%s': %zu ops, %s of operand data\n\n",
              trace.name.c_str(), trace.op_count(),
              units::format_bytes(trace.total_src_bits() / 8).c_str());

  sim::SimdBackend simd_dram(sim::MemKind::kDram);
  sim::SimdBackend simd_pcm(sim::MemKind::kPcm);
  sim::SdramBackend sdram;
  sim::AcPimBackend acpim;
  core::PinatuboBackend pin2({}, {nvm::Tech::kPcm, 2});
  core::PinatuboBackend pin128({}, {nvm::Tech::kPcm, 128});
  obs::TraceSession sched_trace(!trace_out.empty());
  pin128.set_trace(&sched_trace);

  Table t("Trace cost across architectures");
  t.set_header({"backend", "bitwise time", "bitwise energy", "total time"});
  for (sim::Backend* b :
       std::initializer_list<sim::Backend*>{&simd_dram, &simd_pcm, &sdram,
                                            &acpim, &pin2, &pin128}) {
    const auto r = b->execute(trace);
    t.add_row({b->name(), units::format_time(r.bitwise.time_ns),
               units::format_energy(r.bitwise.energy.total_pj()),
               units::format_time(r.total_time_ns())});
  }
  t.print();

  if (sched_trace.enabled()) {
    sched_trace.write_chrome_json(trace_out);
    std::printf("\nwrote Pinatubo-128 schedule trace to %s (%zu spans)\n",
                trace_out.c_str(), sched_trace.spans().size());
  }
  return 0;
}
