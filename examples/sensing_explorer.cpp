// Sensing-margin explorer: interactive view of WHY multi-row ops work and
// where they stop — reference placement, transient waveforms, Monte-Carlo
// yield — for any technology and row count.  Dumps waveform CSVs for
// plotting.
//
// Build & run:  ./examples/sensing_explorer [tech=pcm] [rows=128]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "circuit/margin.hpp"
#include "common/table.hpp"

using namespace pinatubo;
using namespace pinatubo::circuit;

int main(int argc, char** argv) {
  const auto tech = nvm::tech_from_string(argc > 1 ? argv[1] : "pcm");
  const unsigned rows =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 128;
  const auto& cell = nvm::cell_params(tech);
  const CsaModel csa;

  std::printf("%s: Rlow=%.0f ohm, Rhigh=%.0f ohm, ON/OFF=%.1f\n",
              nvm::to_string(tech), cell.r_low_ohm, cell.r_high_ohm,
              cell.on_off_ratio());

  const auto ref = op_reference(cell, BitOp::kOr, rows);
  std::printf("\n%u-row OR: I(one 1)=%.3f uA, I(all 0)=%.3f uA, "
              "ref=%.3f uA, boundary ratio %.3f -> %s\n",
              rows, ref.i_result1_a * 1e6, ref.i_result0_a * 1e6,
              ref.i_ref_a * 1e6, ref.boundary_ratio(),
              csa.supports(BitOp::kOr, rows, cell) ? "SENSIBLE"
                                                   : "NOT SENSIBLE");

  Rng rng(1);
  const auto yield =
      monte_carlo_yield(cell, BitOp::kOr, rows, 50000, csa, rng);
  std::printf("Monte-Carlo yield (50k adversarial patterns): %.6f "
              "(worst side %.6f)\n",
              yield.yield, yield.worst_side);

  // Transient of the worst-case "1" (single LRS among rows-1 HRS).
  const auto tr = csa.sense_transient(ref.i_result1_a, ref.i_ref_a);
  std::printf("\nworst-case '1' transient: output=%d, resolve at %.2f ns, "
              "final margin %.2f V\n",
              tr.output, tr.resolve_time_ns, tr.margin_v);
  std::printf("%s", tr.waveform.to_ascii().c_str());

  const std::string csv = "sensing_" + std::string(nvm::to_string(tech)) +
                          "_" + std::to_string(rows) + "row.csv";
  std::ofstream(csv) << tr.waveform.to_csv();
  std::printf("\nwaveform dumped to %s\n", csv.c_str());

  std::printf("\nderived max OR rows for %s: %u\n", nvm::to_string(tech),
              derived_max_or_rows(tech, csa));
  return 0;
}
