#include "reliability/recovery.hpp"

#include <bit>
#include <utility>

#include "common/error.hpp"

namespace pinatubo::reliability {

namespace {

// A bad spare burns another one; past this many the subarray is a brick.
constexpr unsigned kMaxSpareAttempts = 8;

/// One parity bit per stored word, packed.
std::vector<BitVector::Word> parity_of(const BitVector& v) {
  std::vector<BitVector::Word> out((v.word_count() + 63) / 64, 0);
  const auto words = v.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    if (std::popcount(words[w]) & 1)
      out[w / 64] |= BitVector::Word{1} << (w % 64);
  }
  return out;
}

}  // namespace

RecoveryManager::RecoveryManager(mem::MainMemory& mem, const Policy& policy,
                                 SpareFn spares)
    : mem_(mem), policy_(policy), spares_(std::move(spares)) {
  if (policy_.retry.remap && policy_.verify.writes != WriteVerify::kNone)
    PIN_CHECK_MSG(spares_ != nullptr,
                  "retry.remap needs a spare-row source (SpareFn)");
}

RecoveryManager::WriteReport RecoveryManager::write(const mem::RowAddr& addr,
                                                    std::size_t bit_offset,
                                                    const BitVector& data) {
  // The intended post-write image: prior stored content (trusted, because
  // every write routes through here and was verified) overlaid with `data`.
  const std::size_t row_bits = mem_.geometry().rank_row_bits();
  BitVector expected = mem_.row_exists(addr)
                           ? mem_.read_row(addr)
                           : BitVector(row_bits);
  copy_bits(expected.words(), bit_offset, data.words(), 0, data.size());

  mem_.write_row_partial(addr, bit_offset, data);

  WriteReport report;
  if (policy_.verify.writes == WriteVerify::kNone) return report;
  if (policy_.verify.writes == WriteVerify::kParity)
    update_parity(addr, expected);
  if (row_ok(addr, expected)) return report;

  ++counters_.detected_faults;
  ++report.detected;
  // Without remap, detection is diagnostic only — the corruption stays
  // stored and downstream results show it.
  if (policy_.retry.remap) remap_rank_row(addr, expected, report);
  return report;
}

bool RecoveryManager::row_ok(const mem::RowAddr& addr,
                             const BitVector& expected) const {
  if (policy_.verify.writes == WriteVerify::kParity) {
    const auto it = parity_.find(mem_.codec().encode(addr));
    if (it == parity_.end()) return true;  // untracked row: nothing to check
    return parity_of(mem_.read_row(addr)) == it->second;
  }
  return mem_.read_row(addr) == expected;
}

void RecoveryManager::remap_rank_row(const mem::RowAddr& addr,
                                     const BitVector& expected,
                                     WriteReport& report) {
  // Lock-step activation broadcasts one row index across the rank's banks,
  // so the whole rank-row moves together.  Capture every bank's intended
  // content BEFORE touching the translation table: the failing bank gets
  // `expected`, the healthy banks keep what they store (trusted — their
  // own writes were verified).
  const auto& geo = mem_.geometry();
  std::vector<BitVector> corrected(geo.banks_per_chip);
  std::vector<mem::RowAddr> logical(geo.banks_per_chip);
  for (unsigned b = 0; b < geo.banks_per_chip; ++b) {
    logical[b] = {addr.channel, addr.rank, b, addr.subarray, addr.row};
    corrected[b] = b == addr.bank ? expected : mem_.read_row(logical[b]);
  }

  for (unsigned attempt = 0; attempt < kMaxSpareAttempts; ++attempt) {
    const auto spare = spares_(addr.channel, addr.rank, addr.subarray);
    PIN_CHECK_MSG(spare.has_value(),
                  "spare rows exhausted in channel "
                      << addr.channel << " rank " << addr.rank << " subarray "
                      << addr.subarray
                      << " while healing a persistent fault; raise "
                         "retry.spare_rows");
    for (unsigned b = 0; b < geo.banks_per_chip; ++b) {
      const mem::RowAddr repl{addr.channel, addr.rank, b, addr.subarray,
                              *spare};
      mem_.remap_row(logical[b], repl);
      mem_.write_row(logical[b], corrected[b]);
    }
    ++counters_.remaps;
    ++report.remaps;
    // Remaps are rare; verify the copy with an exact read-back compare
    // regardless of the configured (possibly cheaper) verify mode.
    bool ok = true;
    for (unsigned b = 0; ok && b < geo.banks_per_chip; ++b)
      ok = mem_.read_row(logical[b]) == corrected[b];
    if (ok) return;
    ++counters_.detected_faults;  // the spare itself is bad
  }
  PIN_UNREACHABLE("row " + addr.to_string() + " could not be healed after " +
                  std::to_string(kMaxSpareAttempts) + " spare attempts");
}

void RecoveryManager::update_parity(const mem::RowAddr& addr,
                                    const BitVector& expected) {
  parity_[mem_.codec().encode(addr)] = parity_of(expected);
}

BitVector RecoveryManager::expected_window(
    const std::vector<mem::RowAddr>& rows, BitOp op, std::size_t win_lo,
    std::size_t win_len) const {
  PIN_CHECK(!rows.empty());
  BitVector acc = mem_.read_row_partial(rows[0], win_lo, win_len);
  if (op == BitOp::kInv) {
    acc.invert();
    return acc;
  }
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const BitVector next = mem_.read_row_partial(rows[i], win_lo, win_len);
    switch (op) {
      case BitOp::kOr:
        acc |= next;
        break;
      case BitOp::kAnd:
        acc &= next;
        break;
      case BitOp::kXor:
        acc ^= next;
        break;
      case BitOp::kInv:
        break;
    }
  }
  return acc;
}

void RecoveryManager::reset() {
  counters_ = {};
  parity_.clear();
}

}  // namespace pinatubo::reliability
