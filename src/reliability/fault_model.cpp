#include "reliability/fault_model.hpp"

#include <algorithm>

#include "circuit/margin.hpp"
#include "common/random.hpp"

namespace pinatubo::reliability {

namespace {
// Domain separators so the three fault mechanisms draw from disjoint
// streams of one seed.
constexpr std::uint64_t kStuckSalt = 0x5b8f3a1dc96e7042ull;
constexpr std::uint64_t kWearSalt = 0x1d6a2f9c84b35e71ull;
constexpr std::uint64_t kFlipSalt = 0x9c41e87f25d0b3a6ull;
}  // namespace

FaultModel::FaultModel(const FaultConfig& cfg)
    : cfg_(cfg),
      stuck_key_(CounterRng::mix64(cfg.seed ^ kStuckSalt)),
      wear_key_(CounterRng::mix64(cfg.seed ^ kWearSalt)),
      flip_key_(CounterRng::mix64(cfg.seed ^ kFlipSalt)) {}

std::optional<FaultModel::StuckFault> FaultModel::stuck_fault(
    std::uint64_t row_id, std::uint64_t word) const {
  if (cfg_.stuck_rate <= 0.0) return std::nullopt;
  const std::uint64_t base =
      CounterRng::stream_base(CounterRng::stream_base(stuck_key_, row_id),
                              word);
  const double p =
      std::min(1.0, BitVector::kWordBits * cfg_.stuck_rate);
  if (CounterRng::to_unit(CounterRng::draw(base, 0)) >= p)
    return std::nullopt;
  const std::uint64_t r = CounterRng::draw(base, 1);
  StuckFault f;
  f.mask = Word{1} << (r & 63);
  f.stuck_one = ((r >> 6) & 1) != 0;
  return f;
}

void FaultModel::on_write(std::uint64_t row_id, std::uint64_t write_count,
                          std::uint64_t epoch, std::span<Word> row,
                          std::size_t word_lo, std::size_t word_hi) {
  // Sample wear-out: past the endurance knee, each write kills at most one
  // cell of the window it touched.  Keyed on (row, write_count) so replays
  // of the same write history produce the same faults.
  if (cfg_.endurance_cycles > 0.0 && cfg_.wearout_rate > 0.0 &&
      static_cast<double>(write_count) > cfg_.endurance_cycles &&
      word_hi > word_lo) {
    const std::uint64_t base = CounterRng::stream_base(
        CounterRng::stream_base(wear_key_, row_id), write_count);
    if (CounterRng::to_unit(CounterRng::draw(base, 0)) < cfg_.wearout_rate) {
      const std::uint64_t r = CounterRng::draw(base, 1);
      WearFault f;
      f.word = static_cast<std::uint32_t>(word_lo + r % (word_hi - word_lo));
      f.mask = Word{1} << ((r >> 32) & 63);
      f.stuck_one = ((r >> 38) & 1) != 0;
      wearout_[row_id].push_back(f);
      ++wearout_cells_;
    }
  }

  // Persistent faults re-assert over the WHOLE row (idempotent): a stuck
  // cell holds its value no matter which window the write touched.
  if (cfg_.stuck_rate > 0.0) {
    for (std::size_t w = 0; w < row.size(); ++w) {
      const auto f = stuck_fault(row_id, w);
      if (!f) continue;
      if (f->stuck_one)
        row[w] |= f->mask;
      else
        row[w] &= ~f->mask;
    }
  }
  if (const auto it = wearout_.find(row_id); it != wearout_.end()) {
    for (const WearFault& f : it->second) {
      if (f.stuck_one)
        row[f.word] |= f.mask;
      else
        row[f.word] &= ~f.mask;
    }
  }

  if (cfg_.drift_rate > 0.0) last_write_epoch_[row_id] = epoch;
}

double FaultModel::sense_scale(std::uint64_t epoch,
                               std::span<const std::uint64_t> row_ids) {
  if (cfg_.sense_ber <= 0.0) return 0.0;
  // The sense margin narrows as more rows share the bitline (the paper's
  // Fig. 6 story): `sense_ber` is the 2-row baseline, wider activations
  // scale linearly — which is what makes de-escalation (128 -> 2x64 ->
  // ...) a real rung of the recovery ladder, not just another retry.
  const double width = row_ids.size() <= 2
                           ? 1.0
                           : static_cast<double>(row_ids.size()) / 2.0;
  if (cfg_.drift_rate <= 0.0) return width;
  // The oldest operand dominates: its resistance distribution has drifted
  // the furthest toward the sense boundary.
  std::uint64_t max_age = 0;
  for (const std::uint64_t id : row_ids) {
    const auto it = last_write_epoch_.find(id);
    // Rows with no recorded write (e.g. pre-attach data) count as fresh.
    const std::uint64_t written = it == last_write_epoch_.end() ? epoch
                                                                : it->second;
    max_age = std::max(max_age, epoch - std::min(epoch, written));
  }
  return width * (1.0 + cfg_.drift_rate * static_cast<double>(max_age));
}

FaultModel::Word FaultModel::sense_flips(std::uint64_t epoch,
                                         std::uint64_t word, double scale) {
  const double p = std::min(
      1.0, BitVector::kWordBits * cfg_.sense_ber * scale);
  if (p <= 0.0) return 0;
  const std::uint64_t base = CounterRng::stream_base(
      CounterRng::stream_base(flip_key_, epoch), word);
  if (CounterRng::to_unit(CounterRng::draw(base, 0)) >= p) return 0;
  ++flipped_words_;
  return Word{1} << (CounterRng::draw(base, 1) & 63);
}

void FaultModel::reset() {
  wearout_.clear();
  last_write_epoch_.clear();
  wearout_cells_ = 0;
  flipped_words_ = 0;
}

double ber_from_yield(nvm::Tech tech, BitOp op, unsigned n_rows,
                      std::size_t trials, std::uint64_t seed) {
  const circuit::CsaModel csa;
  Rng rng(seed);
  const auto y = circuit::monte_carlo_yield(nvm::cell_params(tech), op,
                                            n_rows, trials, csa, rng);
  return std::max(0.0, 1.0 - y.yield);
}

}  // namespace pinatubo::reliability
