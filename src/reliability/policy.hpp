// Reliability policy: what faults to inject, how to detect them, how far
// to escalate recovery (DESIGN.md §10).
//
// The policy is a plain config block with three prefixes, all validated:
//
//   fault.*   — the injected fault model (seeded, deterministic):
//     fault.enabled           master switch (default off)
//     fault.seed              fault-model seed, independent of the run seed
//     fault.stuck_rate        per-cell manufacturing stuck-at probability
//     fault.sense_ber         per-bit transient flip probability per sense
//     fault.drift_rate        BER growth per sense epoch of data age
//     fault.endurance_cycles  row writes before wear-out onset (0 = never)
//     fault.wearout_rate      per-write probability of killing a cell past
//                             the endurance knee
//
//   verify.*  — detection, priced honestly through the cost model:
//     verify.sense = none | double | readback
//     verify.writes = none | parity | readback
//     verify.level = off | post | always    static verifier (DESIGN.md §11):
//                    `post` checks the full batch after scheduling, `always`
//                    additionally checks each plan at submit time.  Defaults
//                    to `always` in Debug builds, `off` in Release.
//
//   retry.*   — the escalation ladder:
//     retry.max_resense       extra sense attempts before de-escalating
//     retry.deescalate        split the activation (128 -> 2x64 -> ...)
//     retry.remap             remap persistently-bad rows to spares
//     retry.cpu_fallback      final resort: the op runs on the CPU path
//     retry.spare_rows        spare rows reserved per subarray
//
// Unknown keys under these prefixes are rejected with a clear message —
// a typo in a reliability campaign must fail loudly, not silently run a
// different experiment.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"

namespace pinatubo::reliability {

enum class SenseVerify : std::uint8_t {
  kNone,      ///< trust every sense
  kDouble,    ///< sense twice, compare (misses correlated double faults)
  kReadback,  ///< digital recompute from the stored rows — exact
};

enum class WriteVerify : std::uint8_t {
  kNone,      ///< trust every write
  kParity,    ///< per-word parity maintained by the write path (cheap;
              ///< misses even numbers of flips within one word)
  kReadback,  ///< read the row back and compare — exact
};

/// How hard the static plan/schedule verifier (`verify::Verifier`) gates
/// the runtime.  It prices every step again and re-derives the hazard
/// graph, so Release builds default to `kOff` while Debug builds keep the
/// full wall up.
enum class VerifyLevel : std::uint8_t {
  kOff,     ///< never run the verifier
  kPost,    ///< verify each batch (plans + schedule + accounting) at flush
  kAlways,  ///< kPost, plus a protocol check of every plan at submit
};

const char* to_string(SenseVerify v);
const char* to_string(WriteVerify v);
const char* to_string(VerifyLevel v);

struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  double stuck_rate = 0.0;
  double sense_ber = 0.0;
  double drift_rate = 0.0;
  double endurance_cycles = 0.0;
  double wearout_rate = 0.0;
};

struct VerifyConfig {
  SenseVerify sense = SenseVerify::kNone;
  WriteVerify writes = WriteVerify::kNone;
#ifdef NDEBUG
  VerifyLevel level = VerifyLevel::kOff;
#else
  VerifyLevel level = VerifyLevel::kAlways;
#endif
};

struct RetryConfig {
  unsigned max_resense = 2;
  bool deescalate = true;
  bool remap = true;
  bool cpu_fallback = true;
  unsigned spare_rows = 4;
};

struct Policy {
  FaultConfig fault;
  VerifyConfig verify;
  RetryConfig retry;

  /// Any detection configured (the driver builds its recovery path iff so).
  bool detection_enabled() const {
    return verify.sense != SenseVerify::kNone ||
           verify.writes != WriteVerify::kNone;
  }
  /// Spare rows must actually be reserved in the allocator.
  bool spares_needed() const { return detection_enabled() && retry.remap; }
};

/// Parses and validates the `fault.* / verify.* / retry.*` block of `cfg`.
/// When `fault.enabled` is set and no verify mode is given, detection
/// defaults to full read-back on both paths (safety first; campaigns
/// de-tune explicitly).  Throws `Error` on unknown keys under the three
/// prefixes, bad enum values, or out-of-range rates.
Policy policy_from_config(const Config& cfg);

/// (key, value) rows describing the active policy — for explorer tables
/// and campaign logs.
std::vector<std::pair<std::string, std::string>> describe(const Policy& p);

}  // namespace pinatubo::reliability
