// Write-path verification and persistent-fault recovery (DESIGN.md §10).
//
// Every data write of a reliability-enabled runtime goes through
// `RecoveryManager::write`: the intended post-write image is known before
// the write, so verify-after-write (read-back compare or maintained
// per-word parity) detects persistent cell faults at the moment the true
// data is still in hand — and a failing row can be *healed* by remapping
// it to a spare and rewriting the intended content.
//
// Remaps are rank-wide: multi-row activation broadcasts one row index
// across the whole lock-step bank cluster, so a row coordinate that went
// bad in one bank moves to the same spare index in every bank (the
// healthy banks' contents are copied along).  The spare itself is
// verified after the copy; a bad spare burns another one.
//
// The manager also owns the run's reliability `Counters` (detections,
// retries, de-escalations, remaps, fallbacks) — the driver tallies its
// sense-path ladder into the same block so observability mirrors one
// source of truth.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "mem/mainmem.hpp"
#include "reliability/policy.hpp"

namespace pinatubo::reliability {

struct Counters {
  std::uint64_t detected_faults = 0;
  std::uint64_t retries = 0;
  std::uint64_t deescalations = 0;
  std::uint64_t remaps = 0;
  std::uint64_t fallbacks = 0;
};

class RecoveryManager {
 public:
  /// Hands out the next spare row index of (channel, rank, subarray), or
  /// nullopt when the subarray's spares are exhausted.
  using SpareFn =
      std::function<std::optional<unsigned>(unsigned, unsigned, unsigned)>;

  RecoveryManager(mem::MainMemory& mem, const Policy& policy, SpareFn spares);

  struct WriteReport {
    unsigned detected = 0;  ///< verify mismatches seen
    unsigned remaps = 0;    ///< rank-row remaps performed
  };

  /// Writes `data` into the row at `bit_offset` with verify-after-write
  /// per the policy.  On persistent mismatch escalates to a rank-wide
  /// spare-row remap (when `retry.remap`); throws when spares run out.
  /// With `retry.remap` off, detections are counted but corruption stays —
  /// a diagnostic mode for measuring raw fault rates.
  WriteReport write(const mem::RowAddr& addr, std::size_t bit_offset,
                    const BitVector& data);

  /// Digital recompute of op over the stored operand rows, windowed —
  /// the read-back reference a sense attempt is verified against.
  BitVector expected_window(const std::vector<mem::RowAddr>& rows, BitOp op,
                            std::size_t win_lo, std::size_t win_len) const;

  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  /// Clears counters and the parity side-table (campaign teardown).
  void reset();

 private:
  /// Whether the stored row matches `expected` under the verify mode.
  bool row_ok(const mem::RowAddr& addr, const BitVector& expected) const;
  /// Moves the whole rank-row of `addr` to a fresh spare, rewriting
  /// `expected` for `addr`'s bank and the stored contents for the others;
  /// retries with further spares until the copy verifies.
  void remap_rank_row(const mem::RowAddr& addr, const BitVector& expected,
                      WriteReport& report);
  /// Updates the maintained parity words of `addr` from its intended image.
  void update_parity(const mem::RowAddr& addr, const BitVector& expected);

  mem::MainMemory& mem_;
  Policy policy_;
  SpareFn spares_;
  Counters counters_;
  /// Per-word parity of each row's intended content, keyed by encoded
  /// logical row id (WriteVerify::kParity only).
  std::unordered_map<std::uint64_t, std::vector<BitVector::Word>> parity_;
};

}  // namespace pinatubo::reliability
