// Deterministic, seeded NVM fault model (DESIGN.md §10).
//
// Implements the memory's `FaultHooks` seam with four fault mechanisms:
//
//   * manufacturing stuck-at cells — a pure function of (seed, physical
//     row, word): at most one stuck cell per 64-bit word with probability
//     64 * stuck_rate (a first-order approximation of per-cell i.i.d.
//     faults, exact to O(rate^2)).  Applied to the stored words on every
//     write, idempotently, so a row's corruption never depends on access
//     order;
//   * endurance wear-out — once a row's cumulative write count (from the
//     existing WearTracker ledger) passes `endurance_cycles`, each further
//     write kills one cell of the written window with probability
//     `wearout_rate`.  Wear-out faults accumulate in a map (dynamic
//     state) and behave like stuck-at from then on;
//   * resistance drift — each row remembers the sense epoch of its last
//     write; a sense's BER scales by (1 + drift_rate * age), the
//     log-normal-resistance-drift story reduced to its margin effect;
//   * BER sense flips — per sensed output word, flip one bit with
//     probability 64 * sense_ber * scale, where scale folds in drift age
//     and the activation width (sense_ber is the 2-row baseline; an n-row
//     activation runs at n/2 of it — the narrowing-margin story that makes
//     de-escalation pay off).  Pure function of (seed, sense epoch, word),
//     so retried senses (new epoch) redraw and any thread count sees
//     identical flips.
//
// `ber_from_yield` ties `fault.sense_ber` to the circuit layer: the
// Monte-Carlo yield of `circuit::monte_carlo_yield` measures the fraction
// of correct sense decisions for an activation shape; 1 - yield IS the
// per-bit error rate this model injects.  For healthy shapes (PCM OR
// within the derived margin) that is ~0 — campaigns model end-of-life or
// out-of-margin corners by setting the rate explicitly.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/fault_hooks.hpp"
#include "nvm/technology.hpp"
#include "reliability/policy.hpp"

namespace pinatubo::reliability {

class FaultModel final : public mem::FaultHooks {
 public:
  using Word = BitVector::Word;

  explicit FaultModel(const FaultConfig& cfg);

  // ---- FaultHooks ----------------------------------------------------------
  void on_write(std::uint64_t row_id, std::uint64_t write_count,
                std::uint64_t epoch, std::span<Word> row,
                std::size_t word_lo, std::size_t word_hi) override;
  double sense_scale(std::uint64_t epoch,
                     std::span<const std::uint64_t> row_ids) override;
  Word sense_flips(std::uint64_t epoch, std::uint64_t word,
                   double scale) override;

  // ---- introspection -------------------------------------------------------
  /// The static stuck-at fault of (physical row, word), if any.  Pure —
  /// tests and tools can audit the map without touching memory state.
  struct StuckFault {
    Word mask = 0;
    bool stuck_one = false;
  };
  std::optional<StuckFault> stuck_fault(std::uint64_t row_id,
                                        std::uint64_t word) const;

  /// Wear-out cells killed so far (dynamic state).
  std::uint64_t wearout_cells() const { return wearout_cells_; }
  /// Sensed words that received a BER flip so far.
  std::uint64_t flipped_words() const { return flipped_words_; }

  const FaultConfig& config() const { return cfg_; }

  /// Drops the dynamic state (wear-out faults, data ages, counters).  The
  /// static stuck-at map is a pure function of the seed and survives — the
  /// same chip, fresh campaign.
  void reset();

 private:
  struct WearFault {
    std::uint32_t word;
    Word mask;
    bool stuck_one;
  };

  FaultConfig cfg_;
  std::uint64_t stuck_key_;
  std::uint64_t wear_key_;
  std::uint64_t flip_key_;
  std::unordered_map<std::uint64_t, std::vector<WearFault>> wearout_;
  std::unordered_map<std::uint64_t, std::uint64_t> last_write_epoch_;
  std::uint64_t wearout_cells_ = 0;
  std::uint64_t flipped_words_ = 0;
};

/// The injected-BER <-> circuit-margin bridge: 1 - Monte-Carlo yield of
/// (op, n_rows) on `tech`, i.e. the per-bit sense error rate the circuit
/// layer predicts for that activation shape.
double ber_from_yield(nvm::Tech tech, BitOp op, unsigned n_rows,
                      std::size_t trials = 4096, std::uint64_t seed = 1);

}  // namespace pinatubo::reliability
