#include "reliability/policy.hpp"

#include <sstream>

#include "common/error.hpp"

namespace pinatubo::reliability {

const char* to_string(SenseVerify v) {
  switch (v) {
    case SenseVerify::kNone:
      return "none";
    case SenseVerify::kDouble:
      return "double";
    case SenseVerify::kReadback:
      return "readback";
  }
  return "?";
}

const char* to_string(WriteVerify v) {
  switch (v) {
    case WriteVerify::kNone:
      return "none";
    case WriteVerify::kParity:
      return "parity";
    case WriteVerify::kReadback:
      return "readback";
  }
  return "?";
}

const char* to_string(VerifyLevel v) {
  switch (v) {
    case VerifyLevel::kOff:
      return "off";
    case VerifyLevel::kPost:
      return "post";
    case VerifyLevel::kAlways:
      return "always";
  }
  return "?";
}

namespace {

constexpr const char* kKnownKeys[] = {
    "fault.enabled",     "fault.seed",
    "fault.stuck_rate",  "fault.sense_ber",
    "fault.drift_rate",  "fault.endurance_cycles",
    "fault.wearout_rate", "verify.sense",
    "verify.writes",     "verify.level",
    "retry.max_resense",
    "retry.deescalate",  "retry.remap",
    "retry.cpu_fallback", "retry.spare_rows",
};

bool reliability_prefixed(const std::string& key) {
  return key.rfind("fault.", 0) == 0 || key.rfind("verify.", 0) == 0 ||
         key.rfind("retry.", 0) == 0;
}

void reject_unknown_keys(const Config& cfg) {
  for (const auto& [key, value] : cfg.entries()) {
    if (!reliability_prefixed(key)) continue;
    bool known = false;
    for (const char* k : kKnownKeys) known |= key == k;
    if (known) continue;
    std::ostringstream os;
    os << "unknown reliability key '" << key << "'; valid keys:";
    for (const char* k : kKnownKeys) os << ' ' << k;
    PIN_CHECK_MSG(false, os.str());
  }
}

double rate_in_01(const Config& cfg, const std::string& key, double def) {
  const double v = cfg.get_double(key, def);
  PIN_CHECK_MSG(v >= 0.0 && v <= 1.0,
                key << " = " << v << " must lie in [0, 1]");
  return v;
}

SenseVerify parse_sense_verify(const std::string& s) {
  if (s == "none") return SenseVerify::kNone;
  if (s == "double") return SenseVerify::kDouble;
  if (s == "readback") return SenseVerify::kReadback;
  PIN_UNREACHABLE("verify.sense = '" + s + "'; expected none|double|readback");
}

WriteVerify parse_write_verify(const std::string& s) {
  if (s == "none") return WriteVerify::kNone;
  if (s == "parity") return WriteVerify::kParity;
  if (s == "readback") return WriteVerify::kReadback;
  PIN_UNREACHABLE("verify.writes = '" + s + "'; expected none|parity|readback");
}

VerifyLevel parse_verify_level(const std::string& s) {
  if (s == "off") return VerifyLevel::kOff;
  if (s == "post") return VerifyLevel::kPost;
  if (s == "always") return VerifyLevel::kAlways;
  PIN_UNREACHABLE("verify.level = '" + s + "'; expected off|post|always");
}

}  // namespace

Policy policy_from_config(const Config& cfg) {
  reject_unknown_keys(cfg);

  Policy p;
  p.fault.enabled = cfg.get_bool("fault.enabled", false);
  p.fault.seed = cfg.get_u64("fault.seed", 1);
  p.fault.stuck_rate = rate_in_01(cfg, "fault.stuck_rate", 0.0);
  p.fault.sense_ber = rate_in_01(cfg, "fault.sense_ber", 0.0);
  p.fault.drift_rate = cfg.get_double("fault.drift_rate", 0.0);
  PIN_CHECK_MSG(p.fault.drift_rate >= 0.0, "fault.drift_rate must be >= 0");
  p.fault.endurance_cycles = cfg.get_double("fault.endurance_cycles", 0.0);
  PIN_CHECK_MSG(p.fault.endurance_cycles >= 0.0,
                "fault.endurance_cycles must be >= 0");
  p.fault.wearout_rate = rate_in_01(cfg, "fault.wearout_rate", 0.0);

  // With faults on, detection defaults to the exact mode on both paths.
  const char* verify_def = p.fault.enabled ? "readback" : "none";
  p.verify.sense = parse_sense_verify(cfg.get_or("verify.sense", verify_def));
  p.verify.writes =
      parse_write_verify(cfg.get_or("verify.writes", verify_def));
  // An empty default keeps the build-type default (always in Debug, off in
  // Release) unless the config says otherwise.
  const std::string level = cfg.get_or("verify.level", "");
  if (!level.empty()) p.verify.level = parse_verify_level(level);

  const std::uint64_t resense = cfg.get_u64("retry.max_resense", 2);
  PIN_CHECK_MSG(resense <= 1000, "retry.max_resense = " << resense
                                                        << " is absurd (> 1000)");
  p.retry.max_resense = static_cast<unsigned>(resense);
  p.retry.deescalate = cfg.get_bool("retry.deescalate", true);
  p.retry.remap = cfg.get_bool("retry.remap", true);
  p.retry.cpu_fallback = cfg.get_bool("retry.cpu_fallback", true);
  const std::uint64_t spares = cfg.get_u64("retry.spare_rows", 4);
  PIN_CHECK_MSG(spares <= 64, "retry.spare_rows = " << spares
                                                    << " exceeds the sane cap (64)");
  p.retry.spare_rows = static_cast<unsigned>(spares);
  return p;
}

std::vector<std::pair<std::string, std::string>> describe(const Policy& p) {
  auto num = [](double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  };
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("fault.enabled", p.fault.enabled ? "true" : "false");
  if (p.fault.enabled) {
    rows.emplace_back("fault.seed", std::to_string(p.fault.seed));
    rows.emplace_back("fault.stuck_rate", num(p.fault.stuck_rate));
    rows.emplace_back("fault.sense_ber", num(p.fault.sense_ber));
    rows.emplace_back("fault.drift_rate", num(p.fault.drift_rate));
    rows.emplace_back("fault.endurance_cycles", num(p.fault.endurance_cycles));
    rows.emplace_back("fault.wearout_rate", num(p.fault.wearout_rate));
  }
  rows.emplace_back("verify.sense", to_string(p.verify.sense));
  rows.emplace_back("verify.writes", to_string(p.verify.writes));
  rows.emplace_back("verify.level", to_string(p.verify.level));
  if (p.detection_enabled()) {
    rows.emplace_back("retry.max_resense",
                      std::to_string(p.retry.max_resense));
    rows.emplace_back("retry.deescalate", p.retry.deescalate ? "true" : "false");
    rows.emplace_back("retry.remap", p.retry.remap ? "true" : "false");
    rows.emplace_back("retry.cpu_fallback",
                      p.retry.cpu_fallback ? "true" : "false");
    rows.emplace_back("retry.spare_rows", std::to_string(p.retry.spare_rows));
  }
  return rows;
}

}  // namespace pinatubo::reliability
