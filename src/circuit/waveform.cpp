#include "circuit/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace pinatubo::circuit {

std::size_t Waveform::add_signal(std::string name) {
  PIN_CHECK_MSG(times_.empty(), "add signals before sampling");
  names_.push_back(std::move(name));
  data_.emplace_back();
  return names_.size() - 1;
}

void Waveform::append(double t_ns, const std::vector<double>& values) {
  PIN_CHECK_MSG(values.size() == names_.size(),
                values.size() << " values for " << names_.size() << " signals");
  PIN_CHECK_MSG(times_.empty() || t_ns >= times_.back(),
                "time must be monotonic");
  times_.push_back(t_ns);
  for (std::size_t i = 0; i < values.size(); ++i) data_[i].push_back(values[i]);
}

const std::vector<double>& Waveform::samples(std::size_t signal) const {
  PIN_CHECK(signal < data_.size());
  return data_[signal];
}

std::size_t Waveform::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  PIN_UNREACHABLE("no signal named " + name);
}

double Waveform::value_at(std::size_t signal, double t_ns) const {
  PIN_CHECK(signal < data_.size());
  PIN_CHECK(!times_.empty());
  const auto& d = data_[signal];
  if (t_ns <= times_.front()) return d.front();
  if (t_ns >= times_.back()) return d.back();
  const auto it = std::lower_bound(times_.begin(), times_.end(), t_ns);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  const double frac = span > 0 ? (t_ns - times_[lo]) / span : 0.0;
  return d[lo] + frac * (d[hi] - d[lo]);
}

double Waveform::first_crossing(std::size_t signal, double threshold,
                                bool rising) const {
  PIN_CHECK(signal < data_.size());
  const auto& d = data_[signal];
  for (std::size_t i = 1; i < d.size(); ++i) {
    const bool crossed = rising ? (d[i - 1] < threshold && d[i] >= threshold)
                                : (d[i - 1] > threshold && d[i] <= threshold);
    if (crossed) {
      // Linear interpolation inside the step.
      const double dv = d[i] - d[i - 1];
      const double frac = dv != 0 ? (threshold - d[i - 1]) / dv : 0.0;
      return times_[i - 1] + frac * (times_[i] - times_[i - 1]);
    }
  }
  return -1.0;
}

double Waveform::final_value(std::size_t signal) const {
  PIN_CHECK(signal < data_.size());
  PIN_CHECK(!data_[signal].empty());
  return data_[signal].back();
}

std::string Waveform::to_csv() const {
  std::ostringstream os;
  os << "time_ns";
  for (const auto& n : names_) os << ',' << n;
  os << '\n';
  for (std::size_t i = 0; i < times_.size(); ++i) {
    os << times_[i];
    for (const auto& d : data_) os << ',' << d[i];
    os << '\n';
  }
  return os.str();
}

std::string Waveform::to_ascii(std::size_t width, double v_low,
                               double v_high) const {
  if (times_.empty()) return "(empty waveform)\n";
  double lo = v_low, hi = v_high;
  if (hi <= lo) {
    lo = 1e300;
    hi = -1e300;
    for (const auto& d : data_)
      for (double v : d) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    if (hi <= lo) hi = lo + 1.0;
  }
  const double t0 = times_.front(), t1 = times_.back();
  std::ostringstream os;
  static const char kLevels[] = "_.-~^";
  for (std::size_t s = 0; s < names_.size(); ++s) {
    os << names_[s] << std::string(names_[s].size() < 10 ? 10 - names_[s].size() : 1, ' ')
       << '|';
    for (std::size_t c = 0; c < width; ++c) {
      const double t =
          t0 + (t1 - t0) * static_cast<double>(c) / static_cast<double>(width - 1);
      const double v = value_at(s, t);
      double frac = (v - lo) / (hi - lo);
      frac = std::clamp(frac, 0.0, 1.0);
      const auto idx = static_cast<std::size_t>(frac * 4.0 + 0.5);
      os << kLevels[idx];
    }
    os << '\n';
  }
  os << std::string(10, ' ') << '+' << std::string(width, '-') << "  t: ["
     << t0 << ", " << t1 << "] ns, v: [" << lo << ", " << hi << "]\n";
  return os.str();
}

}  // namespace pinatubo::circuit
