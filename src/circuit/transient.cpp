#include "circuit/transient.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pinatubo::circuit {

TransientCircuit::NodeId TransientCircuit::add_node(std::string name,
                                                    double cap_f, double v0) {
  PIN_CHECK_MSG(cap_f > 0.0, "node needs positive capacitance");
  nodes_.push_back({std::move(name), cap_f, v0, false});
  return nodes_.size() - 1;
}

TransientCircuit::NodeId TransientCircuit::add_rail(std::string name,
                                                    double voltage) {
  nodes_.push_back({std::move(name), 0.0, voltage, true});
  return nodes_.size() - 1;
}

void TransientCircuit::add_resistor(NodeId a, NodeId b, double r_ohm) {
  PIN_CHECK(a < nodes_.size() && b < nodes_.size());
  PIN_CHECK_MSG(r_ohm > 0.0, "resistance must be positive");
  resistors_.push_back({a, b, 1.0 / r_ohm});
}

TransientCircuit::ElemId TransientCircuit::add_switch(NodeId a, NodeId b,
                                                      double r_on_ohm,
                                                      bool closed) {
  PIN_CHECK(a < nodes_.size() && b < nodes_.size());
  PIN_CHECK(r_on_ohm > 0.0);
  switches_.push_back({a, b, 1.0 / r_on_ohm, closed});
  return switches_.size() - 1;
}

void TransientCircuit::set_switch(ElemId sw, bool closed) {
  PIN_CHECK(sw < switches_.size());
  switches_[sw].closed = closed;
}

TransientCircuit::ElemId TransientCircuit::add_current_source(NodeId from,
                                                              NodeId to,
                                                              double amps) {
  PIN_CHECK(from < nodes_.size() && to < nodes_.size());
  sources_.push_back({from, to, amps});
  return sources_.size() - 1;
}

void TransientCircuit::set_current(ElemId src, double amps) {
  PIN_CHECK(src < sources_.size());
  sources_[src].amps = amps;
}

void TransientCircuit::add_inverter(NodeId in, NodeId out, NodeId rail_hi,
                                    NodeId rail_lo, double r_drive_ohm,
                                    double trip_v) {
  PIN_CHECK(in < nodes_.size() && out < nodes_.size());
  PIN_CHECK(rail_hi < nodes_.size() && rail_lo < nodes_.size());
  PIN_CHECK(r_drive_ohm > 0.0);
  inverters_.push_back({in, out, rail_hi, rail_lo, 1.0 / r_drive_ohm, trip_v});
}

double TransientCircuit::voltage(NodeId n) const {
  PIN_CHECK(n < nodes_.size());
  return nodes_[n].v;
}

void TransientCircuit::set_voltage(NodeId n, double v) {
  PIN_CHECK(n < nodes_.size());
  nodes_[n].v = v;
}

const std::string& TransientCircuit::node_name(NodeId n) const {
  PIN_CHECK(n < nodes_.size());
  return nodes_[n].name;
}

void TransientCircuit::step(double dt_ns) {
  PIN_CHECK(dt_ns > 0.0);
  const double dt_s = dt_ns * 1e-9;
  const std::size_t n = nodes_.size();

  // Backward Euler: (C/dt + G) V_new = C/dt * V_old + I_src.
  // Dense assembly; node counts here are single digits.
  std::vector<double> a(n * n, 0.0);
  std::vector<double> b(n, 0.0);
  auto stamp_g = [&](NodeId i, NodeId j, double g) {
    a[i * n + i] += g;
    a[j * n + j] += g;
    a[i * n + j] -= g;
    a[j * n + i] -= g;
  };

  for (const auto& r : resistors_) stamp_g(r.a, r.b, r.g);
  for (const auto& s : switches_)
    if (s.closed) stamp_g(s.a, s.b, s.g_on);
  for (const auto& inv : inverters_) {
    // Direction decided by the previous step's input voltage.
    const NodeId rail =
        nodes_[inv.in].v < inv.trip_v ? inv.rail_hi : inv.rail_lo;
    stamp_g(inv.out, rail, inv.g_drive);
  }
  for (const auto& src : sources_) {
    b[src.from] -= src.amps;
    b[src.to] += src.amps;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (nodes_[i].is_rail) {
      // Dirichlet condition: overwrite row with identity.
      for (std::size_t j = 0; j < n; ++j) a[i * n + j] = 0.0;
      a[i * n + i] = 1.0;
      b[i] = nodes_[i].v;
    } else {
      const double c_dt = nodes_[i].cap_f / dt_s;
      a[i * n + i] += c_dt;
      b[i] += c_dt * nodes_[i].v;
    }
  }

  // Gaussian elimination with partial pivoting.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    double best = std::fabs(a[perm[col] * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a[perm[r] * n + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    PIN_CHECK_MSG(best > 1e-30, "singular circuit matrix (floating node?)");
    std::swap(perm[col], perm[piv]);
    const std::size_t prow = perm[col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const std::size_t row = perm[r];
      const double f = a[row * n + col] / a[prow * n + col];
      if (f == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) a[row * n + j] -= f * a[prow * n + j];
      b[row] -= f * b[prow];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ci = n; ci-- > 0;) {
    const std::size_t row = perm[ci];
    double acc = b[row];
    for (std::size_t j = ci + 1; j < n; ++j) acc -= a[row * n + j] * x[j];
    x[ci] = acc / a[row * n + ci];
  }

  for (std::size_t i = 0; i < n; ++i)
    if (!nodes_[i].is_rail) nodes_[i].v = x[i];
  t_ns_ += dt_ns;
}

void TransientCircuit::bind_waveform(Waveform* wf) const {
  PIN_CHECK(wf != nullptr);
  for (const auto& node : nodes_) wf->add_signal(node.name);
}

void TransientCircuit::sample(Waveform* wf, double t_ns) const {
  PIN_CHECK(wf != nullptr);
  std::vector<double> row;
  row.reserve(nodes_.size());
  for (const auto& node : nodes_) row.push_back(node.v);
  wf->append(t_ns, row);
}

void TransientCircuit::run(double duration_ns, double dt_ns, Waveform* wf,
                           const std::function<void(double)>& on_step,
                           std::size_t sample_every) {
  PIN_CHECK(duration_ns > 0.0 && dt_ns > 0.0);
  const auto steps = static_cast<std::size_t>(std::ceil(duration_ns / dt_ns));
  for (std::size_t i = 0; i < steps; ++i) {
    if (on_step) on_step(t_ns_);
    step(dt_ns);
    if (wf != nullptr && (i % sample_every == 0 || i + 1 == steps))
      sample(wf, t_ns_);
  }
}

}  // namespace pinatubo::circuit
