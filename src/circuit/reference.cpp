#include "circuit/reference.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pinatubo::circuit {
namespace {

/// Bitline current when `ones` of `n` open cells are in LRS (nominal).
double boundary_current(const nvm::CellParams& c, std::size_t ones,
                        std::size_t n) {
  const double g = static_cast<double>(ones) / c.r_low_ohm +
                   static_cast<double>(n - ones) / c.r_high_ohm;
  return c.read_voltage_v * g;
}

Reference make(double i1, double i0) {
  PIN_CHECK_MSG(i1 > i0, "degenerate sensing boundary");
  return Reference{std::sqrt(i1 * i0), i1, i0};
}

}  // namespace

double Reference::side_margin() const {
  return std::sqrt(boundary_ratio());
}

Reference read_reference(const nvm::CellParams& cell) {
  return make(boundary_current(cell, 1, 1), boundary_current(cell, 0, 1));
}

Reference op_reference(const nvm::CellParams& cell, BitOp op, unsigned n) {
  switch (op) {
    case BitOp::kOr: {
      PIN_CHECK_MSG(n >= 2, "n-row OR needs n >= 2");
      // "1" worst case: exactly one LRS cell; "0": all HRS.
      return make(boundary_current(cell, 1, n), boundary_current(cell, 0, n));
    }
    case BitOp::kAnd: {
      PIN_CHECK_MSG(n == 2, "multi-row AND is not supported (paper fn.3)");
      // "1": both LRS; "0" worst case: one LRS one HRS.
      return make(boundary_current(cell, 2, 2), boundary_current(cell, 1, 2));
    }
    case BitOp::kXor: {
      PIN_CHECK_MSG(n == 2, "XOR is a two-micro-step 2-row op");
      // Each micro-step is a plain read.
      return read_reference(cell);
    }
    case BitOp::kInv:
      // INV outputs the latch's differential node after a read.
      return read_reference(cell);
  }
  PIN_UNREACHABLE("bad BitOp");
}

bool expected_result(BitOp op, std::size_t ones, std::size_t n) {
  PIN_CHECK(ones <= n);
  switch (op) {
    case BitOp::kOr:
      return ones > 0;
    case BitOp::kAnd:
      return ones == n;
    case BitOp::kXor:
      return (ones % 2) != 0;
    case BitOp::kInv:
      PIN_CHECK(n == 1);
      return ones == 0;
  }
  PIN_UNREACHABLE("bad BitOp");
}

}  // namespace pinatubo::circuit
