// Simulation waveform container: named analog signals sampled on a common
// time base.  Replaces the HSPICE .tr0 output in the paper's Fig. 6/7 —
// benches dump these as CSV and render compact ASCII traces.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pinatubo::circuit {

class Waveform {
 public:
  /// Declares a signal; returns its index.  All signals share the time axis.
  std::size_t add_signal(std::string name);

  /// Appends one sample row: time plus a value per declared signal.
  void append(double t_ns, const std::vector<double>& values);

  std::size_t signal_count() const { return names_.size(); }
  std::size_t sample_count() const { return times_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& samples(std::size_t signal) const;

  /// Signal index by name; throws if missing.
  std::size_t index_of(const std::string& name) const;

  /// Linear interpolation of a signal at time `t_ns` (clamped to range).
  double value_at(std::size_t signal, double t_ns) const;

  /// First time the signal crosses `threshold` rising (or falling);
  /// returns negative if it never does.
  double first_crossing(std::size_t signal, double threshold,
                        bool rising = true) const;

  /// Final value of a signal; throws when empty.
  double final_value(std::size_t signal) const;

  /// CSV with a header row: time_ns,name1,name2,...
  std::string to_csv() const;

  /// Compact ASCII oscilloscope view (one lane per signal).
  std::string to_ascii(std::size_t width = 72, double v_low = 0.0,
                       double v_high = -1.0) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> times_;
  std::vector<std::vector<double>> data_;  // per signal
};

}  // namespace pinatubo::circuit
