// NVSim-style latency derivation: the timing triplet from device physics.
//
// The evaluation quotes tRCD-tCL-tWR = 18.3-8.9-151.1 ns for the 1T1R PCM
// (from CACTI-3DD).  Rather than only hard-coding those numbers
// (mem/timing.hpp keeps them as the calibrated reference), this model
// DERIVES them from structures the repository already defines:
//
//   tRCD = row decode + local wordline RC + bitline settling + CSA sense
//   tCL  = column MUX switch + bitline settling + CSA sense
//   tWR  = the slower of the SET/RESET pulse widths + write-driver setup
//
// with bitline/wordline RC computed from per-cell parasitics and the
// subarray geometry — which is what makes the subarray-height ablation
// (bench_ablation_rows) physically meaningful: taller subarrays mean
// longer bitlines and slower sensing.
#pragma once

#include "circuit/csa.hpp"
#include "nvm/technology.hpp"

namespace pinatubo::circuit {

/// Array-level parasitics (65 nm class).
struct ArrayParasitics {
  double bl_cap_per_cell_f = 0.18e-15;  ///< drain + wire capacitance
  double bl_res_per_cell_ohm = 2.0;     ///< metal bitline segment
  double wl_cap_per_cell_f = 0.25e-15;  ///< access-gate + wire
  double wl_res_per_cell_ohm = 4.0;     ///< poly/metal strap
  double decode_ns_per_level = 0.18;    ///< per decoder tree level
  double mux_switch_ns = 0.8;           ///< column-select turn-on
  double wd_setup_ns = 1.0;             ///< write-driver data setup
  double settle_taus = 2.3;             ///< RC settling to ~90%
  double sa_precharge_ns = 2.8;         ///< reference sampling / equalize
                                        ///  (first sense of an activation)
  double col_settle_fraction = 0.25;    ///< later column steps pre-develop
                                        ///  their bitlines while the MUX is
                                        ///  elsewhere; only a tail remains
};

/// Derived latency components (ns).
struct DerivedTiming {
  double t_decode_ns;
  double t_wordline_ns;
  double t_bitline_ns;
  double t_sense_ns;  ///< CSA three-phase time
  double t_rcd_ns;
  double t_cl_ns;
  double t_wr_ns;
};

class LatencyModel {
 public:
  explicit LatencyModel(const nvm::CellParams& cell,
                        const CsaConfig& csa = {},
                        const ArrayParasitics& parasitics = {});

  /// Derives the triplet for a subarray of `rows` x `cols_per_mat`.
  DerivedTiming derive(unsigned rows, unsigned cols_per_mat) const;

 private:
  const nvm::CellParams* cell_;
  CsaConfig csa_;
  ArrayParasitics par_;
};

}  // namespace pinatubo::circuit
