// Batched analog sensing kernel (see SenseBatch in csa.hpp).
//
// The hot loops operate on fixed 64-lane arrays with no branches in the
// common case so the compiler auto-vectorizes them; rare lanes (inverse
// CDF tails, |exp argument| near the polynomial's radius) are patched up by
// scalar passes whose branches are almost never taken.  Lane math is single
// precision: the ~1e-7 relative rounding is four orders of magnitude below
// the smallest modelled device variation (sigma >= 3%), so the sampled
// decision statistics are unchanged while the vector width doubles.  This
// translation unit may be compiled with native-arch flags (see
// src/circuit/CMakeLists): results are bit-identical across thread counts
// within one build, not across differently-vectorized builds.
#include "circuit/csa.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace pinatubo::circuit {

namespace {

constexpr std::size_t kLanes = SenseBatch::kLanes;
/// Draw indices consumed by one gather_normals call (two lanes per draw).
constexpr std::size_t kDrawsPerGather = kLanes / 2;

// Central branch of Acklam's inverse normal CDF (same approximation as
// inv_normal_cdf in common/random.cpp, inlined here so the per-lane loop
// stays branch-free and vectorizable).
constexpr float kTailP = 0.02425f;
constexpr float kCenA[6] = {-3.969683028665376e+01f, 2.209460984245205e+02f,
                            -2.759285104469687e+02f, 1.383577518672690e+02f,
                            -3.066479806614716e+01f, 2.506628277459239e+00f};
constexpr float kCenB[5] = {-5.447609879822406e+01f, 1.615858368580409e+02f,
                            -1.556989798598866e+02f, 6.680131188771972e+01f,
                            -1.328068155288572e+01f};

/// Fills z[0..63] with standard normals for draw indices [first, first+32)
/// of `base`.  Each 64-bit draw feeds two lanes with independent 23-bit
/// uniforms (lane b from bits 9..31 of draw b, lane 32+b from bits 41..63;
/// 23 bits + the half-ulp offset is the most a float significand holds
/// without rounding onto 1.0), halving the integer mixing work.  The
/// uniforms live in the open interval so the inverse CDF stays finite, with
/// the sampled tail truncating at |z| ~ 5.4 sigma — far beyond any margin
/// the models resolve.
///
/// The central inverse CDF runs branch-free on every lane; the ~4.8% of
/// lanes falling in a tail are collected into a lane bitmask (a vectorized
/// compare — a per-lane 1-in-20 random branch would mispredict constantly)
/// and patched by a countr_zero walk over just the set bits.
inline void gather_normals(std::uint64_t base, std::uint64_t first,
                           float z[kLanes]) {
  constexpr std::size_t kHalf = kDrawsPerGather;
  std::uint64_t d[kHalf];
  float u[kLanes];
  for (std::size_t b = 0; b < kHalf; ++b)
    d[b] = CounterRng::draw(base, first + b);
  for (std::size_t b = 0; b < kHalf; ++b)
    u[b] = (static_cast<float>((d[b] >> 9) & 0x7fffffu) + 0.5f) * 0x1.0p-23f;
  for (std::size_t b = 0; b < kHalf; ++b)
    u[kHalf + b] = (static_cast<float>(d[b] >> 41) + 0.5f) * 0x1.0p-23f;
  for (std::size_t b = 0; b < kLanes; ++b) {
    const float q = u[b] - 0.5f;
    const float r = q * q;
    const float num =
        (((((kCenA[0] * r + kCenA[1]) * r + kCenA[2]) * r + kCenA[3]) * r +
          kCenA[4]) *
             r +
         kCenA[5]) *
        q;
    const float den =
        ((((kCenB[0] * r + kCenB[1]) * r + kCenB[2]) * r + kCenB[3]) * r +
         kCenB[4]) *
            r +
        1.0f;
    z[b] = num / den;
  }
  std::uint64_t tails = 0;
  for (std::size_t b = 0; b < kLanes; ++b)
    tails |= static_cast<std::uint64_t>(
                 static_cast<unsigned>(u[b] < kTailP) |
                 static_cast<unsigned>(u[b] > 1.0f - kTailP))
             << b;
  while (tails) {
    const auto b = static_cast<unsigned>(std::countr_zero(tails));
    tails &= tails - 1;
    z[b] = static_cast<float>(inv_normal_cdf(static_cast<double>(u[b])));
  }
}

/// Degree-9 Taylor e^x, accurate to ~3e-7 relative at |x| <= 1.  The exp
/// arguments here are -sigma*z with sigma <= ~0.12, so |x| < 1 except in
/// astronomically deep tails, which decide_block patches with std::exp.
inline float exp_poly(float x) {
  float p = 1.0f / 362880.0f;
  p = p * x + 1.0f / 40320.0f;
  p = p * x + 1.0f / 5040.0f;
  p = p * x + 1.0f / 720.0f;
  p = p * x + 1.0f / 120.0f;
  p = p * x + 1.0f / 24.0f;
  p = p * x + 1.0f / 6.0f;
  p = p * x + 0.5f;
  p = p * x + 1.0f;
  p = p * x + 1.0f;
  return p;
}

constexpr float kExpPolyRadius = 0.9f;

}  // namespace

SenseBatch::SenseBatch(const CsaModel& csa, const nvm::CellParams& cell,
                       BitOp op, unsigned n)
    : op_(op), n_(n) {
  switch (op) {
    case BitOp::kOr:
      PIN_CHECK_MSG(n >= 2, "OR needs >= 2 rows");
      break;
    case BitOp::kAnd:
    case BitOp::kXor:
      PIN_CHECK_MSG(n == 2, "AND/XOR are 2-row");
      break;
    case BitOp::kInv:
      PIN_CHECK_MSG(n == 1, "INV is 1-row");
      break;
  }
  g_low_ = 1.0 / cell.r_low_ohm;
  g_high_ = 1.0 / cell.r_high_ohm;
  sigma_low_ = cell.sigma_low;
  sigma_high_ = cell.sigma_high;
  read_v_ = cell.read_voltage_v;
  sigma_offset_ = csa.config().sigma_offset;
  // OR/AND sense against the op reference; XOR micro-steps and INV are
  // plain reads against the read reference (same placement sense_op uses).
  i_ref_ = (op == BitOp::kOr || op == BitOp::kAnd)
               ? op_reference(cell, op, n).i_ref_a
               : read_reference(cell).i_ref_a;
  if (sigma_offset_ > 0.0) {
    // decide(): i_bl > i_ref * (1 + sigma*z)  <=>  i_bl/(i_ref*sigma) -
    // 1/sigma > z, with i_bl = V * gsum — one fused multiply-add per lane.
    thr_scale_ = read_v_ / (i_ref_ * sigma_offset_);
    thr_bias_ = -1.0 / sigma_offset_;
  }
  switch (op) {
    case BitOp::kOr:
    case BitOp::kAnd:
      draws_per_block_ = static_cast<std::uint64_t>(n + 1) * kDrawsPerGather;
      break;
    case BitOp::kXor:
      draws_per_block_ = 4 * kDrawsPerGather;
      break;
    case BitOp::kInv:
      draws_per_block_ = 2 * kDrawsPerGather;
      break;
  }
}

std::uint64_t SenseBatch::decide_block(
    std::span<const std::uint64_t> operand_words, std::uint64_t draw_base,
    std::uint64_t cell_draw0, std::uint64_t off_draw0) const {
  const float sigma_low = static_cast<float>(sigma_low_);
  const float sigma_high = static_cast<float>(sigma_high_);
  const float g_low = static_cast<float>(g_low_);
  const float g_high = static_cast<float>(g_high_);
  float gsum[kLanes] = {};
  float z[kLanes];
  float x[kLanes];
  float e[kLanes];
  float gn[kLanes];
  for (std::size_t r = 0; r < operand_words.size(); ++r) {
    gather_normals(draw_base, cell_draw0 + r * kDrawsPerGather, z);
    const std::uint64_t w = operand_words[r];
    for (std::size_t b = 0; b < kLanes; ++b) {
      // LRS (logic 1) and HRS (logic 0) have different nominals and
      // log-normal sigmas; R = R_nom * exp(sigma*z) => g = g_nom *
      // exp(-sigma*z).
      const bool one = (w >> b) & 1u;
      x[b] = -(one ? sigma_low : sigma_high) * z[b];
      gn[b] = one ? g_low : g_high;
    }
    for (std::size_t b = 0; b < kLanes; ++b) e[b] = exp_poly(x[b]);
    // With the preset sigmas (<= 0.12) and the 5.4-sigma sampled tail,
    // |x| stays far inside the polynomial's radius; the mask is only ever
    // non-zero for exotic custom cell parameters.
    std::uint64_t wide = 0;
    for (std::size_t b = 0; b < kLanes; ++b)
      wide |= static_cast<std::uint64_t>(std::fabs(x[b]) > kExpPolyRadius)
              << b;
    while (wide) {
      const auto b = static_cast<unsigned>(std::countr_zero(wide));
      wide &= wide - 1;
      e[b] = static_cast<float>(std::exp(static_cast<double>(x[b])));
    }
    for (std::size_t b = 0; b < kLanes; ++b) gsum[b] += gn[b] * e[b];
  }
  gather_normals(draw_base, off_draw0, z);
  std::uint64_t out = 0;
  if (sigma_offset_ > 0.0) {
    const float scale = static_cast<float>(thr_scale_);
    const float bias = static_cast<float>(thr_bias_);
    for (std::size_t b = 0; b < kLanes; ++b)
      out |= static_cast<std::uint64_t>(gsum[b] * scale + bias > z[b]) << b;
  } else {
    const float read_v = static_cast<float>(read_v_);
    const float i_ref = static_cast<float>(i_ref_);
    for (std::size_t b = 0; b < kLanes; ++b)
      out |= static_cast<std::uint64_t>(read_v * gsum[b] > i_ref) << b;
  }
  return out;
}

std::uint64_t SenseBatch::sense_words(
    std::span<const std::uint64_t> operand_words,
    std::uint64_t draw_base) const {
  PIN_CHECK_MSG(operand_words.size() == n_,
                operand_words.size() << " operand words for " << n_
                                     << "-row op");
  switch (op_) {
    case BitOp::kOr:
    case BitOp::kAnd:
      return decide_block(operand_words, draw_base, 0,
                          static_cast<std::uint64_t>(n_) * kDrawsPerGather);
    case BitOp::kXor: {
      // Micro-step 1 reads operand A onto Ch; micro-step 2 reads operand B
      // into the latch; the add-on transistors output the XOR.
      const std::uint64_t a = decide_block(operand_words.subspan(0, 1),
                                           draw_base, 0, 2 * kDrawsPerGather);
      const std::uint64_t b =
          decide_block(operand_words.subspan(1, 1), draw_base,
                       kDrawsPerGather, 3 * kDrawsPerGather);
      return a ^ b;
    }
    case BitOp::kInv:
      // Complementary latch node: the negated read decision.
      return ~decide_block(operand_words, draw_base, 0, kDrawsPerGather);
  }
  PIN_UNREACHABLE("bad BitOp");
}

}  // namespace pinatubo::circuit
