#include "circuit/latency_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pinatubo::circuit {

LatencyModel::LatencyModel(const nvm::CellParams& cell, const CsaConfig& csa,
                           const ArrayParasitics& parasitics)
    : cell_(&cell), csa_(csa), par_(parasitics) {}

DerivedTiming LatencyModel::derive(unsigned rows,
                                   unsigned cols_per_mat) const {
  PIN_CHECK(rows >= 2 && cols_per_mat >= 2);
  DerivedTiming d{};

  // Row decode: a tree of log2(rows) levels plus global address routing.
  d.t_decode_ns =
      (std::log2(static_cast<double>(rows)) + 4.0) * par_.decode_ns_per_level;

  // Local wordline: distributed RC across the MAT's columns
  // (Elmore: ~0.5 * R_total * C_total), driven to settle_taus.
  const double wl_r = par_.wl_res_per_cell_ohm * cols_per_mat;
  const double wl_c = par_.wl_cap_per_cell_f * cols_per_mat;
  d.t_wordline_ns = par_.settle_taus * 0.5 * wl_r * wl_c * 1e9;

  // Bitline: the cell drives C_BL through its own resistance (the cell
  // dominates the metal); use the geometric-mean state as typical.
  const double bl_c = par_.bl_cap_per_cell_f * rows;
  const double r_drive = std::sqrt(cell_->r_low_ohm * cell_->r_high_ohm);
  d.t_bitline_ns = par_.settle_taus * r_drive * bl_c * 1e9;

  // CSA: the three configured phases (the same constants the transient
  // model simulates).
  d.t_sense_ns = csa_.t_sample_ns + csa_.t_amplify_ns + csa_.t_latch_ns;

  d.t_rcd_ns = d.t_decode_ns + d.t_wordline_ns + d.t_bitline_ns +
               par_.sa_precharge_ns + d.t_sense_ns;
  d.t_cl_ns = par_.mux_switch_ns +
              par_.col_settle_fraction * d.t_bitline_ns + d.t_sense_ns;
  d.t_wr_ns = par_.wd_setup_ns +
              std::max(cell_->set_pulse_ns, cell_->reset_pulse_ns);
  return d;
}

}  // namespace pinatubo::circuit
