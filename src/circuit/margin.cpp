#include <cmath>
#include "circuit/margin.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "nvm/cell.hpp"

namespace pinatubo::circuit {

std::vector<MarginPoint> margin_sweep(const nvm::CellParams& cell, BitOp op,
                                      const CsaModel& csa, unsigned limit) {
  std::vector<MarginPoint> points;
  for (unsigned n = 2; n <= limit; n *= 2) {
    MarginPoint p;
    p.n_rows = n;
    const bool shape_ok =
        (op == BitOp::kOr) || ((op == BitOp::kAnd || op == BitOp::kXor) && n == 2);
    if (!shape_ok) {
      // Mechanically impossible shapes (e.g. 4-row AND): compute the would-be
      // ratio for AND anyway so the collapse is visible in plots.
      if (op == BitOp::kAnd) {
        const double rho = cell.on_off_ratio();
        const double dn = n;
        p.boundary_ratio = dn / (dn - 1.0 + 1.0 / rho);
        p.side_margin = std::sqrt(p.boundary_ratio);
      }
      p.feasible = false;
      points.push_back(p);
      continue;
    }
    const auto ref = op_reference(cell, op, n);
    p.boundary_ratio = ref.boundary_ratio();
    p.side_margin = ref.side_margin();
    p.feasible = p.boundary_ratio >= csa.config().min_boundary_ratio;
    points.push_back(p);
  }
  return points;
}

YieldPoint monte_carlo_yield(const nvm::CellParams& cell, BitOp op,
                             unsigned n_rows, std::size_t trials,
                             const CsaModel& csa, Rng& rng) {
  PIN_CHECK(trials > 0);
  PIN_CHECK(n_rows >= 2);
  YieldPoint yp;
  yp.n_rows = n_rows;

  // Adversarial boundary patterns for the op.
  std::vector<bool> pattern_one(n_rows, false);  // must sense as "1"
  std::vector<bool> pattern_zero(n_rows, false); // must sense as "0"
  switch (op) {
    case BitOp::kOr:
      pattern_one[0] = true;  // exactly one LRS
      break;                  // zero side: all HRS
    case BitOp::kAnd:
      PIN_CHECK(n_rows == 2);
      std::fill(pattern_one.begin(), pattern_one.end(), true);
      pattern_zero[0] = true;  // one LRS, one HRS
      break;
    case BitOp::kXor: {
      PIN_CHECK(n_rows == 2);
      pattern_one = {true, false};
      pattern_zero = {true, true};
      break;
    }
    case BitOp::kInv:
      PIN_UNREACHABLE("INV has no multi-row margin");
  }

  // Batched trials: every lane of a SenseBatch word is one independent
  // trial of the same adversarial pattern (constant operand words), so a
  // block of 64 trials costs one kernel call.  Blocks run on the thread
  // pool; each keys its own counter-based stream from one state draw of
  // `rng`, and the per-block counts are reduced in block order, so the
  // result is deterministic for any thread count.
  std::vector<std::uint64_t> ones_words(n_rows), zeros_words(n_rows);
  for (unsigned r = 0; r < n_rows; ++r) {
    ones_words[r] = pattern_one[r] ? ~std::uint64_t{0} : 0;
    zeros_words[r] = pattern_zero[r] ? ~std::uint64_t{0} : 0;
  }
  const SenseBatch batch(csa, cell, op, n_rows);
  const std::uint64_t key = rng.next();
  const std::size_t blocks = (trials + SenseBatch::kLanes - 1) /
                             SenseBatch::kLanes;
  std::vector<std::uint32_t> c1(blocks), c0(blocks);
  parallel_for(
      0, blocks,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          const std::size_t live =
              std::min(trials - b * SenseBatch::kLanes, SenseBatch::kLanes);
          const std::uint64_t mask = live == SenseBatch::kLanes
                                         ? ~std::uint64_t{0}
                                         : (std::uint64_t{1} << live) - 1;
          const std::uint64_t one = batch.sense_words(
              ones_words, CounterRng::stream_base(key, 2 * b));
          const std::uint64_t zero = batch.sense_words(
              zeros_words, CounterRng::stream_base(key, 2 * b + 1));
          c1[b] = static_cast<std::uint32_t>(std::popcount(one & mask));
          c0[b] = static_cast<std::uint32_t>(std::popcount(~zero & mask));
        }
      },
      /*grain=*/4);
  std::size_t ok_one = 0, ok_zero = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    ok_one += c1[b];
    ok_zero += c0[b];
  }
  const double y1 = static_cast<double>(ok_one) / static_cast<double>(trials);
  const double y0 = static_cast<double>(ok_zero) / static_cast<double>(trials);
  yp.yield = (y1 + y0) / 2.0;
  yp.worst_side = std::min(y1, y0);
  return yp;
}

unsigned derived_max_or_rows(nvm::Tech tech, const CsaModel& csa) {
  const auto& cell = nvm::cell_params(tech);
  return csa.max_rows(BitOp::kOr, cell);
}

}  // namespace pinatubo::circuit
