// Fixed-step transient solver for small switched networks.
//
// This is the repository's HSPICE stand-in.  It solves nodal equations
//   C_i dV_i/dt = sum of branch currents into node i
// with backward-Euler time stepping and direct Gaussian elimination — exact
// enough for the peripheral circuits we validate (a handful of nodes each):
// the current sense amplifier and the modified local-wordline driver.
//
// Supported elements:
//   * rails (ideal voltage sources),
//   * node capacitors,
//   * fixed resistors,
//   * switches (resistor with externally controlled on/off state),
//   * controlled current sources (value set externally per phase),
//   * behavioural inverters (output pulled to a rail through Ron depending
//     on whether the input is above/below the trip voltage) — these model
//     the digital gates in the LWL driver without device equations.
//
// Nonlinear element states (switch positions, inverter directions) are
// evaluated from the previous step's voltages, then one implicit linear step
// is taken; with steps of ~1-10 ps this is robust for RC time constants in
// the 0.1-10 ns range we care about.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "circuit/waveform.hpp"

namespace pinatubo::circuit {

class TransientCircuit {
 public:
  using NodeId = std::size_t;
  using ElemId = std::size_t;

  /// Adds a floating node with capacitance `cap_f` (farads) and an initial
  /// voltage.
  NodeId add_node(std::string name, double cap_f, double v0 = 0.0);
  /// Adds an ideal rail at fixed voltage.
  NodeId add_rail(std::string name, double voltage);

  /// Fixed resistor between two nodes (ohm).
  void add_resistor(NodeId a, NodeId b, double r_ohm);
  /// Switch: resistor `r_on` when closed, open circuit otherwise.
  ElemId add_switch(NodeId a, NodeId b, double r_on_ohm, bool closed = false);
  void set_switch(ElemId sw, bool closed);
  /// Current source pushing `amps` from `from` into `to` (value mutable).
  ElemId add_current_source(NodeId from, NodeId to, double amps = 0.0);
  void set_current(ElemId src, double amps);
  /// Behavioural inverter: drives `out` toward `rail_hi` when v(in) < trip,
  /// toward `rail_lo` otherwise, through `r_drive`.
  void add_inverter(NodeId in, NodeId out, NodeId rail_hi, NodeId rail_lo,
                    double r_drive_ohm, double trip_v);

  double voltage(NodeId n) const;
  void set_voltage(NodeId n, double v);  ///< force (initial conditions)

  /// Advances one implicit step of `dt_ns`.
  void step(double dt_ns);

  /// Runs for `duration_ns`, sampling all node voltages into `wf` every
  /// `sample_every` steps; `on_step(t_ns)` lets callers sequence stimuli.
  void run(double duration_ns, double dt_ns, Waveform* wf,
           const std::function<void(double)>& on_step = nullptr,
           std::size_t sample_every = 10);

  /// Declares every node as a waveform signal (call once per waveform).
  void bind_waveform(Waveform* wf) const;
  /// Appends one sample of all node voltages.
  void sample(Waveform* wf, double t_ns) const;

  double now_ns() const { return t_ns_; }
  std::size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(NodeId n) const;

 private:
  struct Node {
    std::string name;
    double cap_f;
    double v;
    bool is_rail;
  };
  struct Resistor {
    NodeId a, b;
    double g;  // siemens
  };
  struct Switch {
    NodeId a, b;
    double g_on;
    bool closed;
  };
  struct CurrentSource {
    NodeId from, to;
    double amps;
  };
  struct Inverter {
    NodeId in, out, rail_hi, rail_lo;
    double g_drive;
    double trip_v;
  };

  std::vector<Node> nodes_;
  std::vector<Resistor> resistors_;
  std::vector<Switch> switches_;
  std::vector<CurrentSource> sources_;
  std::vector<Inverter> inverters_;
  double t_ns_ = 0.0;
};

}  // namespace pinatubo::circuit
