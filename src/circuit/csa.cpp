#include "circuit/csa.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pinatubo::circuit {

SenseTransient CsaModel::sense_transient(double i_cell_a,
                                         double i_ref_a) const {
  PIN_CHECK(i_cell_a > 0.0 && i_ref_a > 0.0);
  TransientCircuit ckt;
  const auto vdd = ckt.add_rail("VDD", cfg_.vdd_v);
  const auto gnd = ckt.add_rail("GND", 0.0);
  // Phase-1 sampling caps: charged by the cell / reference currents.
  const auto vc = ckt.add_node("Vc", cfg_.cs_f, 0.0);
  const auto vr = ckt.add_node("Vr", cfg_.cs_f, 0.0);
  // Phase-2 amplification nodes, precharged to VDD.
  const auto va = ckt.add_node("Va", cfg_.cl_f, cfg_.vdd_v);
  const auto vb = ckt.add_node("Vb", cfg_.cl_f, cfg_.vdd_v);
  // Weak leak keeps every node matrix-connected even with sources off.
  ckt.add_resistor(vc, gnd, 1e12);
  ckt.add_resistor(vr, gnd, 1e12);
  ckt.add_resistor(va, gnd, 1e12);
  ckt.add_resistor(vb, gnd, 1e12);

  const auto i_sample_c = ckt.add_current_source(gnd, vc, 0.0);
  const auto i_sample_r = ckt.add_current_source(gnd, vr, 0.0);
  const auto i_dis_a = ckt.add_current_source(va, gnd, 0.0);
  const auto i_dis_b = ckt.add_current_source(vb, gnd, 0.0);
  // Second-stage latch: cross-coupled inverters between Va and Vb, enabled
  // in phase 3 through switches.
  const auto la = ckt.add_node("La", cfg_.cl_f, cfg_.vdd_v / 2);
  const auto lb = ckt.add_node("Lb", cfg_.cl_f, cfg_.vdd_v / 2);
  ckt.add_inverter(la, lb, vdd, gnd, cfg_.latch_ron_ohm, cfg_.vdd_v / 2);
  ckt.add_inverter(lb, la, vdd, gnd, cfg_.latch_ron_ohm, cfg_.vdd_v / 2);
  const auto sw_a = ckt.add_switch(va, la, cfg_.latch_ron_ohm / 4);
  const auto sw_b = ckt.add_switch(vb, lb, cfg_.latch_ron_ohm / 4);

  const double t1 = cfg_.t_sample_ns;
  const double t2 = t1 + cfg_.t_amplify_ns;
  const double t3 = t2 + cfg_.t_latch_ns;
  // Phase-2 mirror ratio, sized so the REFERENCE side slews ~0.3 V over
  // the amplification phase regardless of the absolute current level —
  // the current-ratio normalization that makes the CSA offset tolerant.
  // The cell side then moves 0.3 V * (I_cell / I_ref), clamped by the
  // mirror cutoff near ground.
  const double atten =
      0.3 * cfg_.cl_f / (cfg_.t_amplify_ns * 1e-9 * i_ref_a);

  SenseTransient out;
  ckt.bind_waveform(&out.waveform);
  ckt.run(t3, 0.002, &out.waveform, [&](double t) {
    if (t < t1) {
      // Phase 1: sample both currents onto Cs.
      ckt.set_current(i_sample_c, i_cell_a);
      ckt.set_current(i_sample_r, i_ref_a);
      ckt.set_current(i_dis_a, 0.0);
      ckt.set_current(i_dis_b, 0.0);
      ckt.set_switch(sw_a, false);
      ckt.set_switch(sw_b, false);
    } else if (t < t2) {
      // Phase 2: the sampling transistors mirror the sampled currents and
      // discharge the amplification nodes — Va by the cell current, Vb by
      // the reference.  The mirror cuts off as its drain approaches
      // ground (triode collapse), clamping the node at ~0 V.
      ckt.set_current(i_sample_c, 0.0);
      ckt.set_current(i_sample_r, 0.0);
      ckt.set_current(i_dis_a,
                      ckt.voltage(va) > 0.02 ? i_cell_a * atten : 0.0);
      ckt.set_current(i_dis_b,
                      ckt.voltage(vb) > 0.02 ? i_ref_a * atten : 0.0);
    } else {
      // Phase 3: stop discharging, enable the regenerative latch.
      ckt.set_current(i_dis_a, 0.0);
      ckt.set_current(i_dis_b, 0.0);
      ckt.set_switch(sw_a, true);
      ckt.set_switch(sw_b, true);
    }
  });

  const auto ia = out.waveform.index_of("La");
  const auto ib = out.waveform.index_of("Lb");
  const double final_a = out.waveform.final_value(ia);
  const double final_b = out.waveform.final_value(ib);
  // Larger cell current -> Va (hence La) lower -> logic 1.
  out.output = final_a < final_b;
  out.margin_v = std::fabs(final_b - final_a);
  // Resolve time: when the latch nodes separated by half a VDD.
  const auto& times = out.waveform.times();
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double d = std::fabs(out.waveform.samples(ib)[i] -
                               out.waveform.samples(ia)[i]);
    if (times[i] > t2 && d > cfg_.vdd_v / 2) {
      out.resolve_time_ns = times[i];
      break;
    }
  }
  return out;
}

bool CsaModel::decide(double i_cell_a, double i_ref_a, Rng* rng) const {
  PIN_CHECK(i_cell_a > 0.0 && i_ref_a > 0.0);
  double ref = i_ref_a;
  if (rng != nullptr)
    ref *= 1.0 + cfg_.sigma_offset * rng->normal();
  return sa_decision(i_cell_a, ref);
}

bool CsaModel::sense_op(BitOp op, const std::vector<bool>& row_bits,
                        const nvm::CellParams& cell, Rng* rng) const {
  const nvm::BitlineModel bl(cell);
  auto current_of = [&](const std::vector<bool>& bits) {
    return rng != nullptr ? bl.sampled_current_a(bits, *rng)
                          : bl.nominal_current_a(bits);
  };
  switch (op) {
    case BitOp::kOr:
    case BitOp::kAnd: {
      PIN_CHECK(row_bits.size() >= 2);
      const auto ref = op_reference(cell, op, static_cast<unsigned>(row_bits.size()));
      return decide(current_of(row_bits), ref.i_ref_a, rng);
    }
    case BitOp::kXor: {
      PIN_CHECK_MSG(row_bits.size() == 2, "XOR is 2-row");
      const auto ref = read_reference(cell);
      // Micro-step 1: read operand A onto the Ch capacitor.
      const bool a = decide(current_of({row_bits[0]}), ref.i_ref_a, rng);
      // Micro-step 2: read operand B into the latch; the two add-on
      // transistors output the XOR of Ch and the latch.
      const bool b = decide(current_of({row_bits[1]}), ref.i_ref_a, rng);
      return a != b;
    }
    case BitOp::kInv: {
      PIN_CHECK_MSG(row_bits.size() == 1, "INV is 1-row");
      const auto ref = read_reference(cell);
      // Differential (complementary) latch output.
      return !decide(current_of(row_bits), ref.i_ref_a, rng);
    }
  }
  PIN_UNREACHABLE("bad BitOp");
}

bool CsaModel::supports(BitOp op, unsigned n,
                        const nvm::CellParams& cell) const {
  switch (op) {
    case BitOp::kOr:
      if (n < 2) return false;
      break;
    case BitOp::kAnd:
    case BitOp::kXor:
      if (n != 2) return false;
      break;
    case BitOp::kInv:
      return n == 1;
  }
  const auto ref = op_reference(cell, op, n);
  return ref.boundary_ratio() >= cfg_.min_boundary_ratio;
}

unsigned CsaModel::max_rows(BitOp op, const nvm::CellParams& cell,
                            unsigned probe_limit) const {
  unsigned best = 0;
  for (unsigned n = (op == BitOp::kInv ? 1u : 2u); n <= probe_limit; n *= 2) {
    if (supports(op, n, cell))
      best = n;
    else
      break;
  }
  return best;
}

}  // namespace pinatubo::circuit
