#include "circuit/lwl_driver.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pinatubo::circuit {

LwlDriverArray::LwlDriverArray(std::size_t rows) : latched_(rows, false) {
  PIN_CHECK(rows > 0);
}

void LwlDriverArray::reset() {
  std::fill(latched_.begin(), latched_.end(), false);
  active_count_ = 0;
}

void LwlDriverArray::decode(std::size_t row) {
  PIN_CHECK_MSG(row < latched_.size(),
                "row " << row << " out of " << latched_.size());
  if (!latched_[row]) {
    latched_[row] = true;
    ++active_count_;
  }
}

bool LwlDriverArray::is_active(std::size_t row) const {
  PIN_CHECK(row < latched_.size());
  return latched_[row];
}

std::vector<std::size_t> LwlDriverArray::active_rows() const {
  std::vector<std::size_t> rows;
  rows.reserve(active_count_);
  for (std::size_t i = 0; i < latched_.size(); ++i)
    if (latched_[i]) rows.push_back(i);
  return rows;
}

LwlTransient simulate_lwl_transient(std::size_t n_drivers,
                                    std::vector<LwlEvent> events,
                                    double duration_ns, double vdd_v) {
  PIN_CHECK(n_drivers >= 1);
  for (const auto& e : events)
    PIN_CHECK_MSG(e.driver >= -1 && e.driver < static_cast<int>(n_drivers),
                  "bad driver index " << e.driver);

  TransientCircuit ckt;
  const auto vdd = ckt.add_rail("VDD", vdd_v);
  const auto gnd = ckt.add_rail("GND", 0.0);
  // Stimulus nodes (driven through low-impedance switches).
  const auto reset_node = ckt.add_node("RESET", 5e-15, 0.0);
  const auto sw_reset_hi = ckt.add_switch(vdd, reset_node, 1e3);
  const auto sw_reset_lo = ckt.add_switch(gnd, reset_node, 1e3, true);

  struct Driver {
    TransientCircuit::NodeId in, mid, wl, dec;
    TransientCircuit::ElemId sw_dec_hi, sw_dec_lo;  // decode pulse drive
    TransientCircuit::ElemId sw_pass;               // address pass-gate
    TransientCircuit::ElemId sw_feedback;           // latch transistor
    TransientCircuit::ElemId sw_reset;              // input-ground transistor
  };
  std::vector<Driver> drv(n_drivers);
  for (std::size_t i = 0; i < n_drivers; ++i) {
    const std::string sfx = "_" + std::to_string(i);
    auto& d = drv[i];
    d.dec = ckt.add_node("DEC" + sfx, 5e-15, 0.0);
    d.in = ckt.add_node("IN" + sfx, 5e-15, 0.0);
    d.mid = ckt.add_node("MID" + sfx, 5e-15, vdd_v);
    // The wordline is the heavy load (a full row of access-gate poly).
    d.wl = ckt.add_node("WL" + sfx, 50e-15, 0.0);
    // Decode pulse: connects the decoded-address node high/low.
    d.sw_dec_hi = ckt.add_switch(vdd, d.dec, 2e3);
    d.sw_dec_lo = ckt.add_switch(gnd, d.dec, 2e3, true);
    // Address pass device into the driver input; conducts only while this
    // row's address is decoded.
    d.sw_pass = ckt.add_switch(d.dec, d.in, 5e3);
    // Inverter chain: IN -> MID -> WL.
    ckt.add_inverter(d.in, d.mid, vdd, gnd, 3e3, vdd_v / 2);
    ckt.add_inverter(d.mid, d.wl, vdd, gnd, 1.5e3, vdd_v / 2);
    // Added transistor 1: feedback latch (VDD into IN while WL is high).
    d.sw_feedback = ckt.add_switch(vdd, d.in, 8e3);
    // Added transistor 2: forces IN to ground during RESET.
    d.sw_reset = ckt.add_switch(gnd, d.in, 1e3);
    // Leaks to keep matrices non-singular.
    ckt.add_resistor(d.in, gnd, 1e12);
    ckt.add_resistor(d.wl, gnd, 1e12);
  }

  auto pulse_active = [&](int driver, double t) {
    for (const auto& e : events)
      if (e.driver == driver && t >= e.t_ns && t < e.t_ns + e.width_ns)
        return true;
    return false;
  };

  LwlTransient out;
  ckt.bind_waveform(&out.waveform);
  ckt.run(duration_ns, 0.001, &out.waveform, [&](double t) {
    const bool rst = pulse_active(-1, t);
    ckt.set_switch(sw_reset_hi, rst);
    ckt.set_switch(sw_reset_lo, !rst);
    for (std::size_t i = 0; i < n_drivers; ++i) {
      const bool dec = pulse_active(static_cast<int>(i), t);
      ckt.set_switch(drv[i].sw_dec_hi, dec);
      ckt.set_switch(drv[i].sw_dec_lo, !dec);
      ckt.set_switch(drv[i].sw_pass, dec);
      // The two added transistors, gated by WL and RESET respectively.
      ckt.set_switch(drv[i].sw_feedback,
                     ckt.voltage(drv[i].wl) > vdd_v / 2 && !rst);
      ckt.set_switch(drv[i].sw_reset, rst);
    }
  });

  out.final_states.reserve(n_drivers);
  for (const auto& d : drv)
    out.final_states.push_back(ckt.voltage(d.wl) > vdd_v / 2);
  return out;
}

}  // namespace pinatubo::circuit
