// Modified current sense amplifier (paper Fig. 1 + Fig. 6).
//
// Models the offset-tolerant current-sampling SA (Chang et al., JSSC'13)
// that Pinatubo extends, at two fidelity levels:
//
//  * `sense_transient` — full three-phase transient on the TransientCircuit
//    solver (current sampling, current-ratio amplification, second-stage
//    latch regeneration).  This is the Fig. 6 "HSPICE validation" stand-in:
//    it produces waveforms and a resolve time from actual cell currents.
//
//  * `decide` — fast behavioural decision (current comparison with an
//    input-referred offset sample).  The memory-system simulator and the
//    Monte-Carlo margin analysis use this path; its offset statistics are
//    what the transient model exhibits at the latch input.
//
// Pinatubo extensions modelled here: selectable references (READ / OR-n /
// AND-2), the Ch capacitor + two-transistor XOR path (two micro-steps), and
// the INV output taken from the latch's complementary node.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "circuit/reference.hpp"
#include "circuit/transient.hpp"
#include "circuit/waveform.hpp"
#include "common/random.hpp"
#include "nvm/cell.hpp"

namespace pinatubo::circuit {

/// Electrical configuration of the CSA.
struct CsaConfig {
  double vdd_v = 1.0;
  double cs_f = 20e-15;        ///< sampling caps (phase 1)
  double cl_f = 10e-15;        ///< amplification node caps (phase 2)
  double ch_f = 15e-15;        ///< Pinatubo's XOR hold cap
  double t_sample_ns = 2.0;    ///< phase 1 duration
  double t_amplify_ns = 3.0;   ///< phase 2 duration
  double t_latch_ns = 2.0;     ///< phase 3 duration
  double latch_ron_ohm = 20e3; ///< latch inverter drive
  double sigma_offset = 0.04;  ///< input-referred relative current offset
  /// Minimum reliable worst-case current ratio.  With the geometric-mean
  /// reference this gives each side sqrt(ratio) margin; 1.7 corresponds to
  /// ~30% per-side margin, ~6 sigma of the 4% offset plus cell variation.
  double min_boundary_ratio = 1.7;
};

/// Outcome of one transient sense.
struct SenseTransient {
  Waveform waveform;
  bool output = false;
  double resolve_time_ns = -1.0;  ///< when the latch nodes separated
  double margin_v = 0.0;          ///< final |Va - Vb|
};

class CsaModel {
 public:
  explicit CsaModel(const CsaConfig& cfg = {}) : cfg_(cfg) {}

  /// Full three-phase transient for a bitline current vs a reference.
  SenseTransient sense_transient(double i_cell_a, double i_ref_a) const;

  /// Fast behavioural decision with a fresh offset sample from `rng`;
  /// pass nullptr for the nominal (offset-free) decision.
  bool decide(double i_cell_a, double i_ref_a, Rng* rng) const;

  /// One intra-subarray sensing of `op` over the stored bits of the open
  /// rows on a single bitline.  Applies per-cell resistance variation when
  /// `rng` is provided; XOR runs its two micro-steps (Ch capacitor).
  /// INV takes exactly one value.  Returns the sensed boolean.
  bool sense_op(BitOp op, const std::vector<bool>& row_bits,
                const nvm::CellParams& cell, Rng* rng) const;

  /// Whether this SA can resolve `op` over n rows for the technology
  /// (boundary current ratio >= min_boundary_ratio).
  bool supports(BitOp op, unsigned n, const nvm::CellParams& cell) const;

  /// Largest power-of-two row count for which `op` is resolvable.
  unsigned max_rows(BitOp op, const nvm::CellParams& cell,
                    unsigned probe_limit = 1024) const;

  const CsaConfig& config() const { return cfg_; }

 private:
  CsaConfig cfg_;
};

/// Word-batched analog sensing: one call resolves 64 bitlines of an n-row
/// multi-row activation, replacing 64 independent CsaModel::sense_op calls.
///
/// Statistically identical to the per-bit path (per-cell log-normal
/// resistance variation, SA offset on the reference, XOR as two micro-steps,
/// INV from the complementary latch node) but restructured for speed: the
/// references are placed once at construction, randomness comes from a
/// counter-based stream (pure function of the caller-supplied draw base and
/// a fixed index layout), and all per-lane math is branch-free single
/// precision (rounding ~1e-7, four orders below the modelled sigma >= 3%)
/// so the compiler vectorizes it at full width.
///
/// Draw-index layout per 64-bitline block: each 64-bit counter draw feeds
/// two lanes (32 draws per normal gather), so with G = 32:
///   * cell variation of operand row r:      indices [r*G, (r+1)*G)
///   * SA offset (OR/AND/INV):               indices [n*G, (n+1)*G)
///   * XOR micro-steps: cell A at [0,G), cell B at [G,2G), offset A at
///     [2G,3G), offset B at [3G,4G).
/// All indices are consumed even when sigma_offset == 0, so results keyed by
/// a draw base are stable across configurations of the same shape.
///
/// Determinism contract: sense_words is a pure function of (operand words,
/// draw_base) — no hidden state — so any work partition over word blocks
/// reproduces the sequential result bit for bit.
class SenseBatch {
 public:
  static constexpr std::size_t kLanes = 64;

  /// Precomputes references and variation constants for `op` over `n` rows.
  /// Shapes the CSA cannot support are allowed (margin analysis measures
  /// their failure rates); sense_rows performs its own supports() gate.
  SenseBatch(const CsaModel& csa, const nvm::CellParams& cell, BitOp op,
             unsigned n);

  BitOp op() const { return op_; }
  unsigned rows() const { return n_; }
  /// CounterRng draw indices consumed per 64-bitline block.
  std::uint64_t draws_per_block() const { return draws_per_block_; }

  /// Senses 64 bitlines: bit b of `operand_words[r]` is the stored value of
  /// operand row r on bitline b; bit b of the result is the sensed output.
  /// For INV all 64 result lanes are meaningful (callers mask any tail).
  std::uint64_t sense_words(std::span<const std::uint64_t> operand_words,
                            std::uint64_t draw_base) const;

 private:
  /// One reference comparison over `operand_words` rows with cell draws
  /// starting at `cell_draw0` and offset draws at `off_draw0`.
  std::uint64_t decide_block(std::span<const std::uint64_t> operand_words,
                             std::uint64_t draw_base, std::uint64_t cell_draw0,
                             std::uint64_t off_draw0) const;

  BitOp op_;
  unsigned n_;
  std::uint64_t draws_per_block_ = 0;
  double g_low_ = 0.0;   ///< nominal LRS conductance (S)
  double g_high_ = 0.0;  ///< nominal HRS conductance (S)
  double sigma_low_ = 0.0, sigma_high_ = 0.0;
  double read_v_ = 0.0;
  double i_ref_ = 0.0;         ///< op (OR/AND) or read (XOR/INV) reference
  double sigma_offset_ = 0.0;  ///< SA input-referred offset sigma
  double thr_scale_ = 0.0;     ///< gsum -> offset-z threshold transform
  double thr_bias_ = 0.0;
};

}  // namespace pinatubo::circuit
