// Modified current sense amplifier (paper Fig. 1 + Fig. 6).
//
// Models the offset-tolerant current-sampling SA (Chang et al., JSSC'13)
// that Pinatubo extends, at two fidelity levels:
//
//  * `sense_transient` — full three-phase transient on the TransientCircuit
//    solver (current sampling, current-ratio amplification, second-stage
//    latch regeneration).  This is the Fig. 6 "HSPICE validation" stand-in:
//    it produces waveforms and a resolve time from actual cell currents.
//
//  * `decide` — fast behavioural decision (current comparison with an
//    input-referred offset sample).  The memory-system simulator and the
//    Monte-Carlo margin analysis use this path; its offset statistics are
//    what the transient model exhibits at the latch input.
//
// Pinatubo extensions modelled here: selectable references (READ / OR-n /
// AND-2), the Ch capacitor + two-transistor XOR path (two micro-steps), and
// the INV output taken from the latch's complementary node.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "circuit/reference.hpp"
#include "circuit/transient.hpp"
#include "circuit/waveform.hpp"
#include "common/random.hpp"
#include "nvm/cell.hpp"

namespace pinatubo::circuit {

/// Electrical configuration of the CSA.
struct CsaConfig {
  double vdd_v = 1.0;
  double cs_f = 20e-15;        ///< sampling caps (phase 1)
  double cl_f = 10e-15;        ///< amplification node caps (phase 2)
  double ch_f = 15e-15;        ///< Pinatubo's XOR hold cap
  double t_sample_ns = 2.0;    ///< phase 1 duration
  double t_amplify_ns = 3.0;   ///< phase 2 duration
  double t_latch_ns = 2.0;     ///< phase 3 duration
  double latch_ron_ohm = 20e3; ///< latch inverter drive
  double sigma_offset = 0.04;  ///< input-referred relative current offset
  /// Minimum reliable worst-case current ratio.  With the geometric-mean
  /// reference this gives each side sqrt(ratio) margin; 1.7 corresponds to
  /// ~30% per-side margin, ~6 sigma of the 4% offset plus cell variation.
  double min_boundary_ratio = 1.7;
};

/// Outcome of one transient sense.
struct SenseTransient {
  Waveform waveform;
  bool output = false;
  double resolve_time_ns = -1.0;  ///< when the latch nodes separated
  double margin_v = 0.0;          ///< final |Va - Vb|
};

class CsaModel {
 public:
  explicit CsaModel(const CsaConfig& cfg = {}) : cfg_(cfg) {}

  /// Full three-phase transient for a bitline current vs a reference.
  SenseTransient sense_transient(double i_cell_a, double i_ref_a) const;

  /// Fast behavioural decision with a fresh offset sample from `rng`;
  /// pass nullptr for the nominal (offset-free) decision.
  bool decide(double i_cell_a, double i_ref_a, Rng* rng) const;

  /// One intra-subarray sensing of `op` over the stored bits of the open
  /// rows on a single bitline.  Applies per-cell resistance variation when
  /// `rng` is provided; XOR runs its two micro-steps (Ch capacitor).
  /// INV takes exactly one value.  Returns the sensed boolean.
  bool sense_op(BitOp op, const std::vector<bool>& row_bits,
                const nvm::CellParams& cell, Rng* rng) const;

  /// Whether this SA can resolve `op` over n rows for the technology
  /// (boundary current ratio >= min_boundary_ratio).
  bool supports(BitOp op, unsigned n, const nvm::CellParams& cell) const;

  /// Largest power-of-two row count for which `op` is resolvable.
  unsigned max_rows(BitOp op, const nvm::CellParams& cell,
                    unsigned probe_limit = 1024) const;

  const CsaConfig& config() const { return cfg_; }

 private:
  CsaConfig cfg_;
};

}  // namespace pinatubo::circuit
