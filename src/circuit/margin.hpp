// Sensing-margin analysis: how many rows can one operation open?
//
// The paper asserts (from a PCM TCAM analogy) that PCM/ReRAM support up to
// 128-row OR while STT-MRAM's low ON/OFF ratio limits it to 2 rows, and
// that multi-row AND is infeasible beyond 2 rows (footnote 3).  This module
// derives those limits instead of asserting them:
//
//  * analytic worst-case boundary ratios per (technology, op, n), and
//  * Monte-Carlo yield — sampling per-cell log-normal resistance variation
//    and SA offset over the adversarial data patterns — giving the bit
//    error rate at each n.
#pragma once

#include <vector>

#include "circuit/csa.hpp"
#include "common/random.hpp"
#include "nvm/technology.hpp"

namespace pinatubo::circuit {

/// Analytic worst-case numbers for one (op, n) point.
struct MarginPoint {
  unsigned n_rows = 0;
  double boundary_ratio = 0.0;  ///< worst-case I("1") / I("0")
  double side_margin = 0.0;     ///< sqrt(ratio): per-side with geo-mean ref
  bool feasible = false;        ///< ratio >= CSA min_boundary_ratio
};

/// Sweeps n over powers of two in [2, limit]; includes infeasible points so
/// callers can plot where the margin collapses.
std::vector<MarginPoint> margin_sweep(const nvm::CellParams& cell, BitOp op,
                                      const CsaModel& csa,
                                      unsigned limit = 1024);

/// Monte-Carlo yield for (op, n): fraction of correct sense decisions over
/// `trials` adversarial boundary patterns with sampled cell variation and
/// SA offset.
struct YieldPoint {
  unsigned n_rows = 0;
  double yield = 0.0;       ///< correct / trials
  double worst_side = 0.0;  ///< min(yield of "1"-side, yield of "0"-side)
};

YieldPoint monte_carlo_yield(const nvm::CellParams& cell, BitOp op,
                             unsigned n_rows, std::size_t trials,
                             const CsaModel& csa, Rng& rng);

/// The paper's §4.2 result: maximum multi-row OR per technology.
/// (PCM: 128, STT-MRAM: 2, ReRAM: 128 with the preset corners.)
unsigned derived_max_or_rows(nvm::Tech tech, const CsaModel& csa = CsaModel());

}  // namespace pinatubo::circuit
