// Sense-amplifier reference placement (paper Fig. 5 / §4.2).
//
// The whole Pinatubo intra-subarray trick is choosing the SA reference so
// that the combined bitline current of n simultaneously open cells resolves
// to the boolean result:
//   read  : Rref-read between Rlow and Rhigh;
//   n-OR  : reference between  Rlow || Rhigh/(n-1)   and  Rhigh/n;
//   2-AND : reference between  Rlow/2                and  Rlow || Rhigh.
// We place references at the geometric mean of the boundary currents, which
// maximizes the worst-case current *ratio* seen by a current-sampling SA.
#pragma once

#include "bitvec/bitvector.hpp"  // BitOp
#include "nvm/technology.hpp"

namespace pinatubo::circuit {

/// Result of a reference placement query.
struct Reference {
  double i_ref_a;       ///< reference current (A)
  double i_result1_a;   ///< worst-case boundary current that must read "1"
  double i_result0_a;   ///< worst-case boundary current that must read "0"
  /// Worst-case current ratio i_result1 / i_result0 (> 1 when sensible).
  double boundary_ratio() const { return i_result1_a / i_result0_a; }
  /// Per-side margin once the reference splits the boundary geometrically.
  double side_margin() const;
};

/// Computes the reference for `op` with `n` simultaneously open rows.
/// Supported: read (op=kInv is *not* a sensing op; use `read_reference`),
/// kOr with n >= 2, kAnd with n == 2, kXor with n == 2 (sensed as two
/// sequential reads, so it uses the read reference internally).
Reference op_reference(const nvm::CellParams& cell, BitOp op, unsigned n);

/// Plain read reference (single open row).
Reference read_reference(const nvm::CellParams& cell);

/// The boolean a current-mode SA outputs for `i_bl` against a reference.
inline bool sa_decision(double i_bl_a, double i_ref_a) {
  return i_bl_a > i_ref_a;
}

/// Expected boolean result of `op` on `ones` set bits among `n` operands.
bool expected_result(BitOp op, std::size_t ones, std::size_t n);

}  // namespace pinatubo::circuit
