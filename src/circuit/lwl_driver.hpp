// Modified local-wordline (LWL) driver (paper Fig. 7).
//
// Conventional memory activates one row at a time; Pinatubo's multi-row
// activation issues several row addresses back-to-back and each selected
// LWL driver must *stay* asserted.  The paper adds two transistors per
// driver: a feedback device that latches the inverter chain once the row is
// selected, and a reset device that grounds the driver input when RESET is
// raised, releasing all latched wordlines.
//
// Two fidelity levels again:
//  * `LwlDriverArray` — behavioural latch array used by the memory-system
//    simulator (RESET / decode / query).
//  * `simulate_lwl_transient` — TransientCircuit netlist of a driver bank
//    (inverter chain + feedback + reset per driver) reproducing the Fig. 7
//    waveforms: RESET pulse, sequential address decodes, latched WLs.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/transient.hpp"
#include "circuit/waveform.hpp"

namespace pinatubo::circuit {

/// Behavioural model: the latch state of every LWL driver in a subarray.
class LwlDriverArray {
 public:
  explicit LwlDriverArray(std::size_t rows);

  /// RESET signal: releases every latched wordline.
  void reset();
  /// One decoded row address: latches that wordline high.
  void decode(std::size_t row);
  bool is_active(std::size_t row) const;
  std::size_t active_count() const { return active_count_; }
  std::vector<std::size_t> active_rows() const;
  std::size_t rows() const { return latched_.size(); }

 private:
  std::vector<bool> latched_;
  std::size_t active_count_ = 0;
};

/// One stimulus edge for the transient testbench.
struct LwlEvent {
  double t_ns;       ///< when the pulse starts
  double width_ns;   ///< pulse width
  int driver;        ///< driver index, or -1 for the shared RESET line
};

/// Result of the transient run.
struct LwlTransient {
  Waveform waveform;                ///< RESET, DEC_i, WL_i traces
  std::vector<bool> final_states;   ///< WL latched high at end?
};

/// Simulates `n_drivers` modified LWL drivers under the given stimuli.
/// `vdd_v` defaults to the 1.5 V the paper's Fig. 7 axis shows.
LwlTransient simulate_lwl_transient(std::size_t n_drivers,
                                    std::vector<LwlEvent> events,
                                    double duration_ns = 5.0,
                                    double vdd_v = 1.5);

}  // namespace pinatubo::circuit
