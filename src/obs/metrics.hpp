// Monotonic counter registry.
//
// Named u64 counters the runtime bumps as work flows through it
// (ops, batches, steps per class, bus bytes).  The registry is the
// machine-readable twin of `PimRuntime::Stats`: tests assert the two
// reconcile exactly, which is what catches accounting drift when the
// engine or driver changes.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pinatubo::obs {

class MetricsRegistry {
 public:
  /// Adds `delta` to counter `name`, creating it at zero on first use.
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Current value; 0 for counters never touched.
  std::uint64_t get(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  void clear() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace pinatubo::obs
