#include "obs/schedule_trace.hpp"

#include <string>

#include "common/error.hpp"

namespace pinatubo::obs {

double render_schedule(TraceSession& session,
                       const std::vector<core::OpPlan>& plans,
                       const core::ExecutionEngine::Result& result,
                       double t0_ns) {
  if (!session.enabled()) return t0_ns + result.cost.time_ns;
  for (const auto& ss : result.schedule) {
    PIN_CHECK_MSG(ss.plan < plans.size() &&
                      ss.step < plans[ss.plan].steps.size(),
                  "schedule step out of range");
    const core::PlanStep& step = plans[ss.plan].steps[ss.step];
    const std::string ch = "ch" + std::to_string(step.channel);
    const std::uint32_t rank_track =
        session.track(ch + "/rank" + std::to_string(step.rank));
    // Name carries enough to trace a span back to its op: batch position,
    // step position, the logical op, and the rows it opens.
    std::string name = "op" + std::to_string(ss.plan) + "." +
                       std::to_string(ss.step) + " " + to_string(step.op) +
                       " r" + std::to_string(step.rows);
    if (step.attempt > 0) name += " retry" + std::to_string(step.attempt);
    session.span(name, t0_ns + ss.start_ns, ss.done_ns - ss.start_ns,
                 rank_track, to_string(step.kind));
    if (ss.bus_ns > 0.0) {
      // The burst drains the step's tail: [done - bus_ns, done] on the
      // channel's shared data bus.
      const std::uint32_t bus_track = session.track(ch + "/bus");
      session.span(name, t0_ns + ss.done_ns - ss.bus_ns, ss.bus_ns,
                   bus_track, "bus");
    }
  }
  return t0_ns + result.cost.time_ns;
}

}  // namespace pinatubo::obs
