// Renders an ExecutionEngine schedule into a TraceSession.
//
// One priced batch becomes one block of spans:
//   * one track per rank timeline ("ch0/rank1") carrying the batch's
//     ScheduledSteps, category = step class (intra-sub / inter-sub /
//     inter-bank / host-read), so Perfetto can filter/aggregate by class;
//   * one track per channel data bus ("ch0/bus") carrying the trailing
//     burst window of every step that moves bytes off-rank, so bus
//     contention is visible as back-to-back spans on a single line.
// Span durations are exactly the engine's per-step costs, which is what
// makes the trace reconcile with ClassProfile/Stats (see obs/trace.hpp).
#pragma once

#include <vector>

#include "obs/trace.hpp"
#include "pinatubo/engine.hpp"

namespace pinatubo::obs {

/// Appends one priced batch to `session`, shifting every span by `t0_ns`
/// (successive batches tile the session timeline back-to-back, mirroring
/// how the runtime accrues batch makespans serially into its cost).
/// Returns the batch's end on the session timeline: t0_ns + makespan.
double render_schedule(TraceSession& session,
                       const std::vector<core::OpPlan>& plans,
                       const core::ExecutionEngine::Result& result,
                       double t0_ns);

}  // namespace pinatubo::obs
