// Observability core: spans + counters with a Chrome trace-event exporter.
//
// A `TraceSession` collects completed spans (name, start, duration, track)
// and monotonic counters while a workload runs, then serializes them as
// Chrome trace-event JSON — the file opens directly in chrome://tracing or
// https://ui.perfetto.dev.  Tracks map to Chrome "threads" (one per rank
// timeline, one per channel data bus), so a priced batch renders as a
// Gantt chart of where the makespan went.
//
// The session is deliberately dumb: callers record *already-priced* spans
// (the execution engine's schedule is the source of truth), so the trace
// reconciles exactly with the runtime's Stats/ClassProfile accounting —
// per-class span sums equal the profile's serial time and the max span end
// equals the makespan.  Tests assert both invariants.
//
// A disabled session (the default) drops every record at a single branch;
// hot paths guard with `enabled()` so tracing off costs one predictable
// comparison per batch, not per span.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pinatubo::obs {

/// One completed span on a named track.  Times are nanoseconds on the
/// machine timeline (the exporter converts to Chrome's microseconds).
struct Span {
  std::string name;
  std::string category;  ///< Chrome `cat`; step class for engine spans
  std::uint32_t track = 0;
  double start_ns = 0.0;
  double dur_ns = 0.0;
  double end_ns() const { return start_ns + dur_ns; }
};

class TraceSession {
 public:
  TraceSession() = default;  ///< disabled: every record is a no-op
  explicit TraceSession(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Returns the id of the track named `name`, creating it on first use.
  /// Track ids are dense and stable in registration order.
  std::uint32_t track(const std::string& name);

  /// Records a completed span; no-op when the session is disabled.
  void span(std::string name, double start_ns, double dur_ns,
            std::uint32_t track, std::string category = {});

  /// Monotonic counters (no-ops when disabled).
  void count(const std::string& name, std::uint64_t delta = 1) {
    if (enabled_) metrics_.add(name, delta);
  }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<std::string>& track_names() const { return tracks_; }
  /// Latest span completion time (0 when no spans): the traced makespan.
  double max_end_ns() const;

  void clear();

  /// Serializes the session as Chrome trace-event JSON.  Uses the object
  /// form `{"traceEvents": [...], ...}` with thread-name metadata per
  /// track; counters and the max span end ride along under "otherData"
  /// so external checkers can validate the trace against the run.
  std::string to_chrome_json() const;
  /// Writes `to_chrome_json()` to `path`; throws on I/O failure.
  void write_chrome_json(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::vector<Span> spans_;
  std::vector<std::string> tracks_;
  MetricsRegistry metrics_;
};

}  // namespace pinatubo::obs
