#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace pinatubo::obs {

std::uint32_t TraceSession::track(const std::string& name) {
  for (std::uint32_t i = 0; i < tracks_.size(); ++i)
    if (tracks_[i] == name) return i;
  tracks_.push_back(name);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void TraceSession::span(std::string name, double start_ns, double dur_ns,
                        std::uint32_t track, std::string category) {
  if (!enabled_) return;
  PIN_CHECK_MSG(track < tracks_.size(), "unregistered track " << track);
  PIN_CHECK(start_ns >= 0.0 && dur_ns >= 0.0);
  spans_.push_back(
      {std::move(name), std::move(category), track, start_ns, dur_ns});
}

double TraceSession::max_end_ns() const {
  double end = 0.0;
  for (const Span& s : spans_) end = std::max(end, s.end_ns());
  return end;
}

void TraceSession::clear() {
  spans_.clear();
  tracks_.clear();
  metrics_.clear();
}

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string TraceSession::to_chrome_json() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);  // ts in microseconds: 0.1 ns resolution
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata: one Chrome "thread" per track, sort order =
  // registration order so rank timelines group above the bus tracks.
  for (std::uint32_t t = 0; t < tracks_.size(); ++t) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
       << t << ",\"args\":{\"name\":";
    append_escaped(os, tracks_[t]);
    os << "}},{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":1,"
       << "\"tid\":" << t << ",\"args\":{\"sort_index\":" << t << "}}";
  }
  for (const Span& s : spans_) {
    if (!first) os << ",";
    first = false;
    // Complete events; Chrome ts/dur are microseconds.
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.track << ",\"name\":";
    append_escaped(os, s.name);
    if (!s.category.empty()) {
      os << ",\"cat\":";
      append_escaped(os, s.category);
    }
    os << ",\"ts\":" << s.start_ns / 1e3 << ",\"dur\":" << s.dur_ns / 1e3
       << "}";
  }
  os << "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"max_span_end_ns\":"
     << max_end_ns() << ",\"spans\":" << spans_.size() << ",\"counters\":{";
  first = true;
  for (const auto& [name, value] : metrics_.counters()) {
    if (!first) os << ",";
    first = false;
    append_escaped(os, name);
    os << ":" << value;
  }
  os << "}}}";
  return os.str();
}

void TraceSession::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  PIN_CHECK_MSG(f.good(), "cannot open trace output " << path);
  f << to_chrome_json() << '\n';
  PIN_CHECK_MSG(f.good(), "failed writing trace output " << path);
}

}  // namespace pinatubo::obs
