// Set-associative cache hierarchy simulator (the Sniper stand-in's memory
// side).  Line-granularity, true-LRU, inclusive-enough for bandwidth/energy
// accounting: each access reports the level that served it, and the
// hierarchy keeps per-level hit counters the CPU model converts into time
// and energy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pinatubo::sim {

struct CacheLevelConfig {
  std::string name;
  std::uint64_t size_bytes = 0;
  unsigned associativity = 8;
  unsigned line_bytes = 64;
  double hit_latency_ns = 1.0;
  double hit_energy_pj = 100.0;   ///< per line access
  double bandwidth_gbps = 100.0;  ///< aggregate sustained
};

/// One cache level with true-LRU replacement.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheLevelConfig& cfg);

  /// True if the line is present (and touches LRU state).
  bool access(std::uint64_t line_addr);
  /// Installs the line, evicting LRU if needed; returns evicted line or -1.
  std::int64_t install(std::uint64_t line_addr);
  void invalidate(std::uint64_t line_addr);

  const CacheLevelConfig& config() const { return cfg_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_stats();

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;
    bool valid = false;
  };
  CacheLevelConfig cfg_;
  std::vector<Way> ways_;  // sets * associativity
  std::uint64_t n_sets_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Result of one hierarchy access: the level index that served it
/// (0 = L1, levels() = memory).
struct AccessOutcome {
  unsigned served_by_level;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(std::vector<CacheLevelConfig> levels);

  /// Byte-address access; line extraction uses L1's line size.
  AccessOutcome access(std::uint64_t addr, bool is_write);

  unsigned levels() const { return static_cast<unsigned>(levels_.size()); }
  const CacheLevel& level(unsigned i) const;
  /// Lines served by each level since reset; index levels() = memory.
  std::vector<std::uint64_t> served_lines() const;
  std::uint64_t memory_lines() const { return memory_lines_; }
  std::uint64_t write_lines() const { return write_lines_; }
  unsigned line_bytes() const;
  void reset_stats();
  /// Drops all cached contents and stats.
  void flush();

 private:
  std::vector<CacheLevel> levels_;
  std::vector<std::uint64_t> served_;
  std::uint64_t memory_lines_ = 0;
  std::uint64_t write_lines_ = 0;
};

/// The paper's Haswell-class hierarchy: 32 KB L1 / 256 KB L2 / 6 MB L3.
std::vector<CacheLevelConfig> haswell_cache_config();

}  // namespace pinatubo::sim
