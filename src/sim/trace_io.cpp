#include "sim/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace pinatubo::sim {
namespace {

BitOp op_from_name(const std::string& name) {
  if (name == "OR") return BitOp::kOr;
  if (name == "AND") return BitOp::kAnd;
  if (name == "XOR") return BitOp::kXor;
  if (name == "INV") return BitOp::kInv;
  PIN_UNREACHABLE("bad op name in trace: " + name);
}

}  // namespace

void save_trace(const OpTrace& trace, std::ostream& os) {
  PIN_CHECK_MSG(trace.name.find_first_of(" \n") == std::string::npos,
                "trace names must be token-safe");
  os << "trace " << (trace.name.empty() ? "unnamed" : trace.name) << '\n';
  os << "scalar " << trace.scalar_ops << ' ' << trace.scalar_bytes << ' '
     << trace.result_density << '\n';
  for (const auto& op : trace.ops) {
    os << "op " << to_string(op.op) << ' ' << op.bits << ' ' << op.dst << ' '
       << (op.host_reads_result ? 1 : 0);
    for (const auto s : op.srcs) os << ' ' << s;
    os << '\n';
  }
  os << "end\n";
  PIN_CHECK_MSG(os.good(), "trace write failed");
}

OpTrace load_trace(std::istream& is) {
  OpTrace trace;
  std::string line;
  bool saw_header = false, saw_end = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "trace") {
      ls >> trace.name;
      saw_header = true;
    } else if (tag == "scalar") {
      ls >> trace.scalar_ops >> trace.scalar_bytes >> trace.result_density;
      PIN_CHECK_MSG(!ls.fail(), "bad scalar line: " << line);
    } else if (tag == "op") {
      std::string op_name;
      TraceOp op;
      int host = 0;
      ls >> op_name >> op.bits >> op.dst >> host;
      PIN_CHECK_MSG(!ls.fail(), "bad op line: " << line);
      op.op = op_from_name(op_name);
      op.host_reads_result = host != 0;
      std::uint64_t src;
      while (ls >> src) op.srcs.push_back(src);
      PIN_CHECK_MSG(!op.srcs.empty(), "op without operands: " << line);
      trace.ops.push_back(std::move(op));
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      PIN_UNREACHABLE("unknown trace line: " + line);
    }
  }
  PIN_CHECK_MSG(saw_header && saw_end, "truncated trace stream");
  return trace;
}

void save_trace_file(const OpTrace& trace, const std::string& path) {
  std::ofstream f(path);
  PIN_CHECK_MSG(f.good(), "cannot open " << path);
  save_trace(trace, f);
}

OpTrace load_trace_file(const std::string& path) {
  std::ifstream f(path);
  PIN_CHECK_MSG(f.good(), "cannot open " << path);
  return load_trace(f);
}

}  // namespace pinatubo::sim
