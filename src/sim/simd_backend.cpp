#include "sim/simd_backend.hpp"

namespace pinatubo::sim {

SimdBackend::SimdBackend(MemKind mem, const CpuConfig& cfg)
    : cpu_(cfg, mem) {}

std::string SimdBackend::name() const {
  return std::string("SIMD-") + to_string(cpu_.mem_kind());
}

BackendResult SimdBackend::execute(const OpTrace& trace) {
  cpu_.reset();
  BackendResult result;
  for (const auto& op : trace.ops) result.bitwise += cpu_.bulk_op(op);
  result.scalar = cpu_.scalar(trace.scalar_ops, trace.scalar_bytes);
  return result;
}

}  // namespace pinatubo::sim
