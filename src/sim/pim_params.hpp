// Parameters shared by the in-memory computing backends.
//
// The global-row-buffer datapath (GDL streaming + digital logic + latches)
// is used both by AC-PIM (for *every* op) and by Pinatubo (for inter-
// subarray / inter-bank ops only), so its constants live here and both
// backends price it identically — the architectural difference, not the
// constants, must explain the results.
//
// The DRAM constants price S-DRAM's charge-sharing primitives (RowClone
// AAP and triple-row activation), following the published mechanism.
#pragma once

#include "mem/geometry.hpp"
#include "mem/timing.hpp"

namespace pinatubo::sim {

/// Global-row-buffer op path (per rank-row step).
struct BufferPathParams {
  double gdl_beat_bits = 64;      ///< internal dataline width per chip
  double gdl_clk_ns = 1.25;       ///< internal bus clock
  double gdl_pj_per_bit = 2.0;    ///< long global wires (65 nm, full die)
  double logic_pj_per_bit = 1.0;  ///< synthesized wide ALU evaluate
  double latch_pj_per_bit = 0.1;  ///< row buffer capture

  /// Time to stream one rank-row slice through the GDL (chips parallel,
  /// one slice of `row_slice_bits` per chip).
  double stream_ns(const mem::Geometry& g) const {
    return static_cast<double>(g.row_slice_bits) / gdl_beat_bits * gdl_clk_ns;
  }
};

/// DRAM array energetics for the S-DRAM backend (DDR3, 65 nm class).
struct DramArrayParams {
  double act_pj_per_bit = 0.31;  ///< full-row activate+precharge, per bit
  double tra_row_factor = 3.0;   ///< triple-row activation opens 3 rows
  /// An AAP (ACT-ACT-PRE RowClone hop) costs two activations.
  double aap_ns(const mem::TimingParams& t) const {
    return t.t_ras_ns + t.t_rp_ns;
  }
};

}  // namespace pinatubo::sim
