#include "sim/cpu_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pinatubo::sim {
namespace {

/// Above this many line accesses an op cannot have cache reuse (the
/// operands dwarf the LLC), so the closed-form streaming path is exact.
constexpr std::uint64_t kDirectPathAccesses = 1u << 20;

/// Virtual base address for a logical vector id: ids get disjoint, line-
/// aligned arenas so cache behaviour matches a real allocator's.
std::uint64_t vector_base(std::uint64_t id, std::uint64_t bytes) {
  const std::uint64_t stride = std::max<std::uint64_t>(
      4096, (bytes + 4095) / 4096 * 4096);
  return 0x100000000ull + id * stride;
}

}  // namespace

const char* to_string(MemKind k) {
  return k == MemKind::kDram ? "DRAM" : "PCM";
}

MemStreamParams stream_params(MemKind kind) {
  switch (kind) {
    case MemKind::kDram:
      // DDR3-1600, 1 channel, ~80% bus efficiency on streams.
      return {50.0, 10.2, 8.0, 6.0, 6.0};
    case MemKind::kPcm:
      // Longer row cycle (tRCD 18.3) and 151 ns write recovery depress
      // sustained bandwidth; write energy includes the SET/RESET pulses.
      return {70.0, 7.7, 5.1, 10.0, 28.0};
  }
  PIN_UNREACHABLE("bad MemKind");
}

SimdCpuModel::SimdCpuModel(const CpuConfig& cfg, MemKind mem)
    : cfg_(cfg), mem_(mem), mem_params_(stream_params(mem)),
      cache_(haswell_cache_config()) {
  PIN_CHECK(cfg.cores >= 1);
  PIN_CHECK(cfg.bulk_cores >= 1 && cfg.bulk_cores <= cfg.cores);
  PIN_CHECK(cfg.freq_ghz > 0);
  PIN_CHECK(cfg.simd_bits >= 8);
  PIN_CHECK(cfg.mlp >= 1);
}

double SimdCpuModel::compute_gbps() const {
  // One SIMD logic op per participating core per cycle.
  return cfg_.bulk_cores * (cfg_.simd_bits / 8.0) * cfg_.freq_ghz;
}

mem::Cost SimdCpuModel::bulk_op(const TraceOp& op) {
  PIN_CHECK(!op.srcs.empty());
  PIN_CHECK(op.bits > 0);
  const std::uint64_t line = cache_.line_bytes();
  // Word-aligned footprint: the host kernels (BitVector) process whole
  // 64-bit words, so the baseline is charged for the same word count the
  // PIM functional layer touches.  Identical to (bits+7)/8 for the word-
  // multiple sizes of every figure; only sub-word tails round up.
  const std::uint64_t bytes = (op.bits + 63) / 64 * 8;
  const std::uint64_t lines = (bytes + line - 1) / line;
  const std::uint64_t n_streams = op.srcs.size() + 1;  // +dst
  const std::uint64_t accesses = lines * n_streams;
  const std::uint64_t processed = bytes * op.srcs.size();

  if (accesses > kDirectPathAccesses) {
    // Streaming: every source line comes from memory, every dst line is
    // write-allocated and eventually written back.
    std::vector<std::uint64_t> served(cache_.levels() + 1, 0);
    served[cache_.levels()] = accesses;
    return price(processed, served, lines * op.srcs.size() + lines, lines);
  }

  cache_.reset_stats();
  for (std::uint64_t i = 0; i < lines; ++i) {
    for (const auto src : op.srcs)
      cache_.access(vector_base(src, bytes) + i * line, false);
    cache_.access(vector_base(op.dst, bytes) + i * line, true);
  }
  // Dirty dst lines that will eventually be written back: approximate as
  // the dst lines that missed everywhere (streaming stores); cached dst
  // lines get rewritten in place.
  const auto served = cache_.served_lines();
  const std::uint64_t mem_lines = cache_.memory_lines();
  // Split memory traffic: dst allocations among the misses cause
  // writebacks; assume misses distribute evenly across streams.
  const std::uint64_t wb_lines = mem_lines / n_streams;
  return price(processed, served, mem_lines, wb_lines);
}

mem::Cost SimdCpuModel::price(std::uint64_t processed_bytes,
                              const std::vector<std::uint64_t>& served_lines,
                              std::uint64_t mem_read_lines,
                              std::uint64_t mem_write_lines) const {
  const double line = cache_.line_bytes();
  double t = static_cast<double>(processed_bytes) / compute_gbps();
  mem::EnergyCounter energy;
  for (unsigned l = 0; l < cache_.levels(); ++l) {
    const auto& cfg = cache_.level(l).config();
    const double bytes = static_cast<double>(served_lines[l]) * line;
    t = std::max(t, bytes / cfg.bandwidth_gbps);
    energy.add("cpu." + cfg.name,
               static_cast<double>(served_lines[l]) * cfg.hit_energy_pj);
  }
  const double rd_bytes = static_cast<double>(mem_read_lines) * line;
  const double wr_bytes = static_cast<double>(mem_write_lines) * line;
  t = std::max(t, rd_bytes / mem_params_.read_gbps +
                      wr_bytes / mem_params_.write_gbps);
  // Latency bound: misses overlap up to MLP per participating core —
  // the binding constraint for the paper's single-threaded kernels.
  t = std::max(t, static_cast<double>(mem_read_lines) *
                      mem_params_.latency_ns / (cfg_.mlp * cfg_.bulk_cores));
  energy.add("mem.read", rd_bytes * 8.0 * mem_params_.read_pj_per_bit);
  energy.add("mem.write", wr_bytes * 8.0 * mem_params_.write_pj_per_bit);
  energy.add("cpu.core", cfg_.active_power_w * t * 1e3);  // W * ns -> pJ

  mem::Cost cost;
  cost.time_ns = t;
  cost.energy = energy;
  return cost;
}

mem::Cost SimdCpuModel::scalar(std::uint64_t ops, std::uint64_t bytes) const {
  mem::Cost cost;
  const double t_compute =
      static_cast<double>(ops) / (cfg_.scalar_ipc * cfg_.freq_ghz);
  const double miss_bytes =
      static_cast<double>(bytes) * cfg_.scalar_miss_fraction;
  const double t_mem = miss_bytes / mem_params_.read_gbps;
  cost.time_ns = t_compute + t_mem;
  cost.energy.add("cpu.core", cfg_.scalar_power_w * cost.time_ns * 1e3);
  cost.energy.add("mem.read", miss_bytes * 8.0 * mem_params_.read_pj_per_bit);
  // Cached portion still pays cache energy (cheap, L2-class).
  cost.energy.add("cpu.L2",
                  static_cast<double>(bytes) * (1.0 - cfg_.scalar_miss_fraction) /
                      64.0 * 300.0);
  return cost;
}

void SimdCpuModel::reset() { cache_.flush(); }

}  // namespace pinatubo::sim
