#include "sim/acpim_backend.hpp"

#include "common/error.hpp"
#include "sim/cpu_model.hpp"

namespace pinatubo::sim {

AcPimBackend::AcPimBackend(const mem::Geometry& geo, nvm::Tech tech)
    : geo_(geo), timing_(mem::pcm_timing()),
      energy_(nvm::cell_params(tech)) {
  geo_.validate();
}

mem::Cost AcPimBackend::op_cost(BitOp op, std::size_t n_operands,
                                std::uint64_t bits, bool host_reads_result,
                                double result_density) const {
  PIN_CHECK(op == BitOp::kInv ? n_operands == 1 : n_operands >= 2);
  PIN_CHECK(bits > 0);
  const std::uint64_t group_bits = geo_.row_group_bits();
  const std::uint64_t groups = (bits + group_bits - 1) / group_bits;
  const std::uint64_t serial_groups = groups;
  const auto steps =
      static_cast<double>(op == BitOp::kInv ? 1 : n_operands - 1);

  // Per step (banks within the group work in parallel on their slices):
  // two reads through the GDL, logic (overlapped with streaming), write
  // back through the write drivers.  Only the column stripes the vector
  // touches are streamed (the column MUX selects them).
  const std::uint64_t step_bits = geo_.sense_step_bits();
  const std::uint64_t per_group_bits = std::min(bits, group_bits);
  const auto cols = static_cast<double>(
      (per_group_bits + step_bits - 1) / step_bits);
  const double stream =
      path_.stream_ns(geo_) * cols / static_cast<double>(geo_.sa_mux_share);
  const double step_ns = 2.0 * (timing_.t_rcd_ns + stream) +
                         (timing_.t_wr_ns + stream);

  mem::Cost cost;
  cost.time_ns = static_cast<double>(serial_groups) * steps * step_ns;

  // Energy per step over the whole op width (all groups).
  const auto width = static_cast<double>(bits);
  const double read_pj =
      energy_.sense_pj(1, 1, timing_.t_cl_ns) +  // per bit sense
      path_.gdl_pj_per_bit + path_.latch_pj_per_bit;
  const double logic_pj = path_.logic_pj_per_bit;
  const double ones = width * result_density;
  const double write_pj_bit =
      (energy_.write_pj(1, 0) * result_density +
       energy_.write_pj(0, 1) * (1.0 - result_density)) +
      path_.gdl_pj_per_bit;
  (void)ones;
  cost.energy.add("acpim.read", steps * 2.0 * width * read_pj);
  cost.energy.add("acpim.logic", steps * width * logic_pj);
  cost.energy.add("acpim.write", steps * width * write_pj_bit);
  cost.energy.add("ctrl.cmd",
                  static_cast<double>(groups) * steps * 4.0 *
                      energy_.command_pj() * geo_.banks_per_chip);

  if (host_reads_result) {
    const auto bus = mem::ddr3_1600_bus();
    cost.time_ns += width / 8.0 / bus.data_gbps;
    cost.energy.add("bus.io", energy_.io_pj(bits));
  }
  return cost;
}

BackendResult AcPimBackend::execute(const OpTrace& trace) {
  BackendResult result;
  for (const auto& op : trace.ops)
    result.bitwise += op_cost(op.op, op.srcs.size(), op.bits,
                              op.host_reads_result, trace.result_density);
  // Scalar remainder runs on the host CPU over the same PCM memory.
  SimdCpuModel host({}, MemKind::kPcm);
  result.scalar = host.scalar(trace.scalar_ops, trace.scalar_bytes);
  return result;
}

}  // namespace pinatubo::sim
