#include "sim/sdram_backend.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pinatubo::sim {

SdramBackend::SdramBackend(const mem::Geometry& geo, const CpuConfig& cpu)
    : geo_(geo), timing_(mem::dram_timing()),
      fallback_cpu_(cpu, MemKind::kDram) {
  geo_.validate();
}

mem::Cost SdramBackend::op_cost(std::size_t n_operands, std::uint64_t bits,
                                bool host_reads_result) const {
  PIN_CHECK(n_operands >= 2);
  PIN_CHECK(bits > 0);
  const std::uint64_t group_bits = geo_.row_group_bits();
  const std::uint64_t groups = (bits + group_bits - 1) / group_bits;
  // Row groups execute serially (the driver issues one group's command
  // sequence at a time — the behaviour behind the paper's turning point B).
  const std::uint64_t serial_groups = groups;

  // Per group: 2 operand copies + (n-2) accumulate copies, (n-1) triple-row
  // activations, 1 result copy out.  Every step is an AAP-class row cycle.
  const double aap = dram_.aap_ns(timing_);
  const auto steps_aap = static_cast<double>(n_operands + 1);
  const auto steps_tra = static_cast<double>(n_operands - 1);
  const double group_ns = (steps_aap + steps_tra) * aap;

  mem::Cost cost;
  cost.time_ns = static_cast<double>(serial_groups) * group_ns;

  // Energy: every AAP activates two full row groups; a TRA opens three rows
  // at once.  Last (partial) group still activates full rows.
  const double bits_per_group = static_cast<double>(group_bits);
  const double act_pj = dram_.act_pj_per_bit;
  const double e_group = steps_aap * 2.0 * bits_per_group * act_pj +
                         steps_tra * dram_.tra_row_factor * bits_per_group *
                             act_pj;
  cost.energy.add("dram.act", static_cast<double>(groups) * e_group);

  if (host_reads_result) {
    const auto bus = mem::ddr3_1600_bus();
    const double bytes = static_cast<double>(bits) / 8.0;
    cost.time_ns += bytes / bus.data_gbps;
    // Off-chip transfer energy (same I/O class as the NVM model's).
    cost.energy.add("bus.io", static_cast<double>(bits) * 18.0);
  }
  return cost;
}

BackendResult SdramBackend::execute(const OpTrace& trace) {
  fallback_cpu_.reset();
  BackendResult result;
  for (const auto& op : trace.ops) {
    const bool supported = op.op == BitOp::kOr || op.op == BitOp::kAnd;
    if (supported) {
      result.bitwise += op_cost(op.srcs.size(), op.bits, op.host_reads_result);
    } else {
      // XOR / INV: unsupported by charge sharing — CPU does them.
      result.bitwise += fallback_cpu_.bulk_op(op);
    }
  }
  result.scalar = fallback_cpu_.scalar(trace.scalar_ops, trace.scalar_bytes);
  return result;
}

}  // namespace pinatubo::sim
