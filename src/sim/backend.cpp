#include "sim/backend.hpp"

namespace pinatubo::sim {

std::uint64_t OpTrace::total_src_bits() const {
  std::uint64_t total = 0;
  for (const auto& op : ops) total += op.bits * op.srcs.size();
  return total;
}

}  // namespace pinatubo::sim
