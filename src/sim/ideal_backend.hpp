// Ideal backend: bitwise operations are free (zero latency, zero energy).
// This is the "Ideal" bar of the paper's Fig. 12 — the Amdahl ceiling any
// bitwise accelerator can reach on a given application.
#pragma once

#include "sim/backend.hpp"
#include "sim/cpu_model.hpp"

namespace pinatubo::sim {

class IdealBackend final : public Backend {
 public:
  explicit IdealBackend(MemKind mem = MemKind::kPcm) : mem_(mem) {}

  std::string name() const override { return "Ideal"; }

  BackendResult execute(const OpTrace& trace) override {
    BackendResult result;  // bitwise cost stays zero
    SimdCpuModel host({}, mem_);
    result.scalar = host.scalar(trace.scalar_ops, trace.scalar_bytes);
    return result;
  }

 private:
  MemKind mem_;
};

}  // namespace pinatubo::sim
