// OpTrace serialization: record a workload once, price it anywhere.
//
// Text format, line oriented (stable across versions, diff-friendly):
//   trace <name>
//   scalar <ops> <bytes> <result_density>
//   op <OR|AND|XOR|INV> <bits> <dst> <host(0|1)> <src0> <src1> ...
//   end
#pragma once

#include <iosfwd>
#include <string>

#include "sim/backend.hpp"

namespace pinatubo::sim {

void save_trace(const OpTrace& trace, std::ostream& os);
OpTrace load_trace(std::istream& is);

/// Convenience file wrappers (throw on I/O failure).
void save_trace_file(const OpTrace& trace, const std::string& path);
OpTrace load_trace_file(const std::string& path);

}  // namespace pinatubo::sim
