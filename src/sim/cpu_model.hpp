// SIMD CPU cost model — the paper's conventional baseline (Sniper stand-in).
//
// A 4-core, 3.3 GHz, 4-issue Haswell-class processor with 128-bit SSE/AVX
// and the 32K/256K/6M cache hierarchy.  Bulk bitwise kernels are priced by
// driving their access stream through the cache simulator and converting
// per-level service counts into bandwidth/latency bounds:
//
//   t_op = max( SIMD compute,  L1/L2/L3 bandwidth,  memory bandwidth,
//               miss latency / MLP )
//
// which is the standard roofline treatment a cycle-accurate simulator
// converges to for these streaming kernels.  Very large ops (no reuse
// possible) switch to the closed-form streaming path — identical result,
// without simulating millions of lines.
//
// The same model prices the *scalar* remainder of applications (frontier
// scanning, query bookkeeping), which runs on the host in every backend.
#pragma once

#include <cstdint>

#include "mem/energy.hpp"
#include "sim/backend.hpp"
#include "sim/cache.hpp"

namespace pinatubo::sim {

/// Which main memory the CPU streams from.  The paper compares SIMD-on-DRAM
/// against S-DRAM and SIMD-on-PCM against AC-PIM / Pinatubo.
enum class MemKind { kDram, kPcm };

const char* to_string(MemKind k);

/// Sustained streaming characteristics of the main memory, as a CPU sees
/// them (bus + bank effects folded into effective bandwidths).
struct MemStreamParams {
  double latency_ns;        ///< load-to-use miss latency
  double read_gbps;         ///< sustained streaming read bandwidth
  double write_gbps;        ///< sustained streaming write bandwidth
  double read_pj_per_bit;   ///< end-to-end (array + bus) read energy
  double write_pj_per_bit;  ///< end-to-end write energy
};

MemStreamParams stream_params(MemKind kind);

struct CpuConfig {
  unsigned cores = 4;
  double freq_ghz = 3.3;
  unsigned simd_bits = 128;   ///< SSE/AVX datapath width
  /// Cores running a bulk bitwise kernel.  The paper's applications
  /// (FastBit, bitmap BFS) are single-threaded codes, so the baseline's
  /// kernels are latency-bound on one core — the dominant term of its
  /// effective bandwidth.
  unsigned bulk_cores = 1;
  unsigned mlp = 4;           ///< outstanding misses per core
  double active_power_w = 40; ///< package power while the kernel runs
  double scalar_power_w = 15; ///< single-core scalar phases
  double scalar_ipc = 2.0;
  /// Fraction of scalar bytes that miss the caches (apps have locality).
  double scalar_miss_fraction = 0.3;
};

class SimdCpuModel {
 public:
  SimdCpuModel(const CpuConfig& cfg, MemKind mem);

  /// Prices one bulk bitwise op.  Cache state persists across calls so
  /// small working sets (BFS frontiers, hot bitmaps) hit in L2/L3.
  mem::Cost bulk_op(const TraceOp& op);

  /// Prices the scalar aggregate of a trace.
  mem::Cost scalar(std::uint64_t ops, std::uint64_t bytes) const;

  /// Clears cache contents (call between independent traces).
  void reset();

  MemKind mem_kind() const { return mem_; }
  const CpuConfig& config() const { return cfg_; }

  /// SIMD throughput ceiling in bytes/ns (GB/s).
  double compute_gbps() const;

 private:
  mem::Cost price(std::uint64_t processed_bytes,
                  const std::vector<std::uint64_t>& served_lines,
                  std::uint64_t mem_read_lines,
                  std::uint64_t mem_write_lines) const;

  CpuConfig cfg_;
  MemKind mem_;
  MemStreamParams mem_params_;
  CacheHierarchy cache_;
};

}  // namespace pinatubo::sim
