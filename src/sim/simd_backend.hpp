// The conventional computing-centric baseline: every operand bit crosses
// the bus, walks the cache hierarchy, and meets the ALU (paper Fig. 2a).
#pragma once

#include "sim/backend.hpp"
#include "sim/cpu_model.hpp"

namespace pinatubo::sim {

class SimdBackend final : public Backend {
 public:
  explicit SimdBackend(MemKind mem, const CpuConfig& cfg = {});

  std::string name() const override;
  BackendResult execute(const OpTrace& trace) override;

  const SimdCpuModel& cpu() const { return cpu_; }

 private:
  SimdCpuModel cpu_;
};

}  // namespace pinatubo::sim
