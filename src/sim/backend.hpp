// Evaluation backend interface.
//
// Applications are executed once, functionally, and emit an `OpTrace`: the
// sequence of bulk bitwise operations over logical bit-vectors plus an
// aggregate of the scalar (non-bitwise) work around them.  Each backend
// prices the same trace on its architecture:
//   SIMD    — the conventional CPU (paper's baseline, on DRAM or PCM),
//   S-DRAM  — in-DRAM charge-sharing computing (Seshadri CAL'15),
//   AC-PIM  — accelerator-in-memory with digital logic at the buffers,
//   Pinatubo— the proposed design (implemented in src/pinatubo/, where the
//             allocator/scheduler it needs live),
//   Ideal   — zero-cost bitwise ops (Fig. 12's upper bound).
//
// The scalar remainder always runs on the host CPU and is identical across
// backends; Fig. 10/11 compare `bitwise` costs, Fig. 12 compares totals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "mem/energy.hpp"

namespace pinatubo::sim {

/// One bulk bitwise operation over logical bit-vectors.
struct TraceOp {
  BitOp op = BitOp::kOr;
  std::vector<std::uint64_t> srcs;  ///< logical vector ids (>=2, INV: 1)
  std::uint64_t dst = 0;            ///< logical destination vector id
  std::uint64_t bits = 0;           ///< vector length in bits
  /// The host consumes the result (e.g. popcount of a frontier) — the
  /// result crosses the bus even on PIM backends.
  bool host_reads_result = false;
};

/// A workload's full op stream plus its scalar surroundings.
struct OpTrace {
  std::string name;
  std::vector<TraceOp> ops;

  // Scalar (non-bitwise) aggregate, executed on the host CPU in every
  // backend: ~instruction count and memory bytes touched.
  std::uint64_t scalar_ops = 0;
  std::uint64_t scalar_bytes = 0;

  /// Average density of ones in written results (drives NVM SET/RESET mix).
  double result_density = 0.5;

  /// Total bits entering bitwise ops (throughput accounting).
  std::uint64_t total_src_bits() const;
  /// Total distinct ops.
  std::size_t op_count() const { return ops.size(); }
};

/// What a backend reports for one trace.
struct BackendResult {
  mem::Cost bitwise;  ///< the bulk bitwise operations themselves
  mem::Cost scalar;   ///< host-side remainder (CPU)

  double total_time_ns() const { return bitwise.time_ns + scalar.time_ns; }
  double total_energy_pj() const {
    return bitwise.energy.total_pj() + scalar.energy.total_pj();
  }
};

class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::string name() const = 0;
  /// Prices the trace.  Backends are stateless across calls.
  virtual BackendResult execute(const OpTrace& trace) = 0;
};

}  // namespace pinatubo::sim
