// AC-PIM: accelerator-in-memory baseline (paper §6.1).
//
// "Even the intra-subarray operations are implemented with digital logic
// gates" at the global row buffers: every operation, regardless of operand
// placement, is a 2-operand digital step —
//   read operand A into the global row buffer (tRCD + GDL stream),
//   read operand B onto the GDL (tRCD + stream), evaluate the logic,
//   write the result row back through the array (tWR + stream).
// n-operand ops decompose into n-1 sequential steps, each writing its
// intermediate result back to a scratch row (the buffer is not a persistent
// accumulator across independent DDR command sequences).
//
// Shares the BufferPathParams constants with Pinatubo's inter-subarray path:
// AC-PIM loses because it uses that path for everything, not because it is
// priced differently.
#pragma once

#include "mem/geometry.hpp"
#include "mem/timing.hpp"
#include "nvm/energy_model.hpp"
#include "sim/backend.hpp"
#include "sim/pim_params.hpp"

namespace pinatubo::sim {

class AcPimBackend final : public Backend {
 public:
  explicit AcPimBackend(const mem::Geometry& geo = {},
                        nvm::Tech tech = nvm::Tech::kPcm);

  std::string name() const override { return "AC-PIM"; }
  BackendResult execute(const OpTrace& trace) override;

  /// Cost of one n-operand op over `bits`.
  mem::Cost op_cost(BitOp op, std::size_t n_operands, std::uint64_t bits,
                    bool host_reads_result, double result_density) const;

 private:
  mem::Geometry geo_;
  mem::TimingParams timing_;
  BufferPathParams path_;
  nvm::ArrayEnergyModel energy_;
};

}  // namespace pinatubo::sim
