#include "sim/cache.hpp"

#include <bit>

#include "common/error.hpp"

namespace pinatubo::sim {

CacheLevel::CacheLevel(const CacheLevelConfig& cfg) : cfg_(cfg) {
  PIN_CHECK(cfg.size_bytes > 0);
  PIN_CHECK(cfg.associativity > 0);
  PIN_CHECK(cfg.line_bytes > 0 && std::has_single_bit(cfg.line_bytes));
  const std::uint64_t lines = cfg.size_bytes / cfg.line_bytes;
  PIN_CHECK_MSG(lines % cfg.associativity == 0,
                cfg.name << ": lines not divisible by associativity");
  n_sets_ = lines / cfg.associativity;
  PIN_CHECK_MSG(std::has_single_bit(n_sets_), cfg.name << ": sets not 2^k");
  ways_.resize(lines);
}

bool CacheLevel::access(std::uint64_t line_addr) {
  const std::uint64_t set = line_addr & (n_sets_ - 1);
  Way* base = &ways_[set * cfg_.associativity];
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    if (base[w].valid && base[w].tag == line_addr) {
      base[w].lru = ++tick_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

std::int64_t CacheLevel::install(std::uint64_t line_addr) {
  const std::uint64_t set = line_addr & (n_sets_ - 1);
  Way* base = &ways_[set * cfg_.associativity];
  Way* victim = base;
  for (unsigned w = 0; w < cfg_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      victim->valid = true;
      victim->tag = line_addr;
      victim->lru = ++tick_;
      return -1;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  const auto evicted = static_cast<std::int64_t>(victim->tag);
  victim->tag = line_addr;
  victim->lru = ++tick_;
  return evicted;
}

void CacheLevel::invalidate(std::uint64_t line_addr) {
  const std::uint64_t set = line_addr & (n_sets_ - 1);
  Way* base = &ways_[set * cfg_.associativity];
  for (unsigned w = 0; w < cfg_.associativity; ++w)
    if (base[w].valid && base[w].tag == line_addr) base[w].valid = false;
}

void CacheLevel::reset_stats() {
  hits_ = 0;
  misses_ = 0;
}

CacheHierarchy::CacheHierarchy(std::vector<CacheLevelConfig> levels) {
  PIN_CHECK(!levels.empty());
  for (const auto& cfg : levels) levels_.emplace_back(cfg);
  served_.assign(levels_.size() + 1, 0);
}

AccessOutcome CacheHierarchy::access(std::uint64_t addr, bool is_write) {
  const std::uint64_t line = addr / levels_.front().config().line_bytes;
  if (is_write) ++write_lines_;
  for (unsigned l = 0; l < levels_.size(); ++l) {
    if (levels_[l].access(line)) {
      // Fill upward (allocate in the levels that missed).
      for (unsigned u = 0; u < l; ++u) levels_[u].install(line);
      ++served_[l];
      return {l};
    }
  }
  // Memory access; allocate everywhere (write-allocate policy).
  for (auto& lvl : levels_) lvl.install(line);
  ++served_[levels_.size()];
  ++memory_lines_;
  return {static_cast<unsigned>(levels_.size())};
}

const CacheLevel& CacheHierarchy::level(unsigned i) const {
  PIN_CHECK(i < levels_.size());
  return levels_[i];
}

std::vector<std::uint64_t> CacheHierarchy::served_lines() const {
  return served_;
}

unsigned CacheHierarchy::line_bytes() const {
  return levels_.front().config().line_bytes;
}

void CacheHierarchy::reset_stats() {
  for (auto& l : levels_) l.reset_stats();
  served_.assign(levels_.size() + 1, 0);
  memory_lines_ = 0;
  write_lines_ = 0;
}

void CacheHierarchy::flush() {
  std::vector<CacheLevelConfig> cfgs;
  cfgs.reserve(levels_.size());
  for (const auto& l : levels_) cfgs.push_back(l.config());
  levels_.clear();
  for (const auto& cfg : cfgs) levels_.emplace_back(cfg);
  reset_stats();
}

std::vector<CacheLevelConfig> haswell_cache_config() {
  return {
      {"L1", 32 * 1024, 8, 64, 1.2, 60, 400.0},
      {"L2", 256 * 1024, 8, 64, 3.6, 300, 200.0},
      {"L3", 6 * 1024 * 1024, 12, 64, 12.0, 1000, 100.0},
  };
}

}  // namespace pinatubo::sim
