// S-DRAM: in-DRAM bulk bitwise computing via charge sharing
// (Seshadri et al., CAL 2015 — the paper's §6.1 "S-DRAM" baseline).
//
// Mechanism constraints, as published and as the paper describes them:
//  * DRAM reads are destructive, so operands must be COPIED into designated
//    compute rows first (RowClone AAP hops);
//  * a triple-row activation charge-shares the two operand rows with a
//    control row, leaving AND or OR in all three;
//  * only 2-row AND and OR exist — XOR and INV FALL BACK TO THE CPU
//    (SIMD on DRAM), which is what makes XOR-heavy workloads expensive;
//  * n-operand ops decompose into n-1 sequential 2-row steps.
//
// Vectors stripe across the 8 banks of a rank exactly like Pinatubo's
// layout (2^19-bit full-parallel row groups); groups beyond one rank-row
// serialize within a rank, ranks proceed in parallel.
#pragma once

#include "mem/geometry.hpp"
#include "mem/timing.hpp"
#include "sim/backend.hpp"
#include "sim/cpu_model.hpp"
#include "sim/pim_params.hpp"

namespace pinatubo::sim {

class SdramBackend final : public Backend {
 public:
  explicit SdramBackend(const mem::Geometry& geo = {},
                        const CpuConfig& cpu = {});

  std::string name() const override { return "S-DRAM"; }
  BackendResult execute(const OpTrace& trace) override;

  /// Cost of one n-operand AND/OR over `bits` (exposed for tests/benches).
  mem::Cost op_cost(std::size_t n_operands, std::uint64_t bits,
                    bool host_reads_result) const;

 private:
  mem::Geometry geo_;
  mem::TimingParams timing_;
  DramArrayParams dram_;
  SimdCpuModel fallback_cpu_;  ///< prices XOR/INV ops
};

}  // namespace pinatubo::sim
