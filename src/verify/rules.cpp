#include "verify/rules.hpp"

#include <sstream>

namespace pinatubo::verify {

namespace {

struct RuleInfo {
  const char* id;
  const char* name;
  const char* invariant;
};

constexpr RuleInfo kRules[kRuleCount] = {
    {"P01", "step-empty-reads",
     "every plan step names at least one operand row"},
    {"P02", "step-shape",
     "rows matches reads, bits > 0, col_steps >= 1, buffer ops latch <= 2 "
     "operands"},
    {"P03", "activation-overflow",
     "multi-row activation width stays within the LWL latch count, the "
     "configured row cap, and the CSA's reliable reference range"},
    {"P04", "addr-out-of-range",
     "every row address lies inside the configured geometry"},
    {"P05", "cross-channel",
     "a step and all rows it touches live on the step's channel"},
    {"P06", "cluster-mismatch",
     "reads address the executing lock-step bank cluster (bank collapsed; "
     "intra: the step's rank+subarray, inter-sub: the step's rank)"},
    {"P07", "double-activate",
     "a multi-row activation opens each wordline at most once"},
    {"P08", "write-bypass-no-sense",
     "a write-driver bypass only follows a sense of the same step"},
    {"P09", "column-overflow",
     "column windows stay inside the SA mux share"},
    {"P10", "read-cols-mismatch",
     "read_cols, when present, aligns one entry per read"},
    {"P11", "write-key-mismatch",
     "the writeback targets the step's own (channel,rank,subarray,row)"},
    {"P12", "bad-command-order",
     "the lowered DDR command stream obeys the per-cluster PIM automaton "
     "(mode-set, reset, ACTs, senses, bypass / loads, logic op, writeback)"},
    {"H01", "schedule-shape",
     "the schedule places every step exactly once with duration equal to "
     "its cost and an honest trailing bus burst"},
    {"H02", "hazard-violated",
     "every RAW/WAW/WAR edge re-derived from row keys is respected "
     "(dependent steps start after their producers complete)"},
    {"H03", "rank-overlap",
     "steps on one (channel,rank) bank cluster never overlap in time"},
    {"H04", "bus-overlap",
     "data-bus bursts of one channel never overlap in time"},
    {"R01", "class-time-mismatch",
     "per-class summed schedule durations equal the batch profile"},
    {"R02", "class-count-mismatch",
     "per-class step counts and bus bytes equal the batch profile"},
    {"R03", "energy-mismatch",
     "summed per-step energy equals the batch energy (schedule-invariant)"},
    {"R04", "makespan-mismatch",
     "the latest schedule completion equals the reported batch makespan"},
    {"R05", "serial-sum-mismatch",
     "the serial baseline equals the program-order sum of step times"},
    {"T01", "trace-parse",
     "the file is well-formed Chrome trace-event JSON in the object form"},
    {"T02", "trace-past-makespan",
     "every span ends by otherData.max_span_end_ns (fixed-point slack)"},
    {"T03", "trace-track-overlap",
     "spans on one track (rank, bus, host timeline) never overlap"},
    {"T04", "trace-counter-mismatch",
     "pim.steps.* counters equal the per-class span counts"},
};

const RuleInfo& info(Rule r) { return kRules[static_cast<std::size_t>(r)]; }

}  // namespace

const char* rule_id(Rule r) { return info(r).id; }
const char* rule_name(Rule r) { return info(r).name; }
const char* rule_invariant(Rule r) { return info(r).invariant; }

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << rule_id(rule) << ' ' << rule_name(rule);
  if (plan != kNoIndex) {
    os << " [plan " << plan;
    if (step != kNoIndex) os << " step " << step;
    os << ']';
  }
  os << ": " << message;
  return os.str();
}

bool Report::tripped(Rule r) const {
  for (const Diagnostic& d : diags)
    if (d.rule == r) return true;
  return false;
}

std::size_t Report::count(Rule r) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) n += d.rule == r;
  return n;
}

void Report::add(Rule r, std::size_t plan, std::size_t step,
                 std::string message) {
  diags.push_back({r, plan, step, std::move(message)});
}

std::string Report::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace pinatubo::verify
