// Static plan/schedule verifier (DESIGN.md §11).
//
// A deterministic checker over the two execution IRs — `core::PlanStep`
// streams and `core::ExecutionEngine` schedules — that proves a batch legal
// before execution and reconciled after it, in three passes:
//
//   1. protocol / state-machine pass (plan-level): a per-bank-cluster state
//      automaton over the lowered DDR commands rejects illegal step orders
//      (paper §5: multi-row activation needs reset + ACTs before sensing,
//      the write-driver bypass needs a sense, buffer logic needs its operand
//      loads), plus structural legality — activation widths vs. the LWL
//      latch count and the CSA's reliable reference range, geometry-bounded
//      addresses, bank-cluster locality, column windows inside the SA mux
//      share, one wordline per operand;
//
//   2. hazard & resource pass (schedule-level): re-derives the RAW/WAW/WAR
//      graph from the same bank-collapsed row keys the engine uses and
//      checks every edge is respected, then checks the machine's physical
//      exclusivity — per-(channel,rank) bank-cluster busy windows and
//      per-channel data-bus bursts (`bus_ns` tails) never overlap, retry /
//      remap steps from the reliability ladder included;
//
//   3. reconciliation pass (accounting closure): per-class time/step/bus
//      sums, total energy, the makespan, and the serial baseline re-derived
//      from the schedule must agree with the engine's reported
//      `Result`/`ClassProfile` within fixed-point slack — the library form
//      of what test_obs_reconcile asserts against live traces.
//
// The verifier never mutates anything and never throws on bad input; it
// returns structured diagnostics (rule id, plan/step index, message).
// Callers decide the policy (the runtime throws under verify.level, the
// plan_lint CLI exits nonzero).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/csa.hpp"
#include "obs/trace.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/engine.hpp"
#include "verify/rules.hpp"

namespace pinatubo::verify {

/// Expected accounting totals for trace reconciliation — the runtime-side
/// numbers (Stats / ClassProfile) a rendered trace must agree with.
struct Accounting {
  double class_time_ns[core::kStepKindCount] = {};
  std::uint64_t class_steps[core::kStepKindCount] = {};
  double makespan_ns = 0.0;
};

class Verifier {
 public:
  /// `max_rows_cap` is the configured activation cap (Pinatubo-2 vs -128);
  /// the LWL latch count and CSA margins can only lower the legal width.
  explicit Verifier(const core::PinatuboCostModel& model,
                    unsigned max_rows_cap = 128);

  /// Protocol pass over one plan.
  Report check(const core::OpPlan& plan) const;
  /// Protocol pass over a batch.
  Report check(const std::vector<core::OpPlan>& plans) const;
  /// All three passes: protocol over the batch, hazard & resource over the
  /// schedule, reconciliation of the result's accounting.  When the
  /// protocol pass already failed, the later passes are skipped (their
  /// pricing would be meaningless on malformed steps).  `serial` must
  /// mirror the engine option the result was produced under.
  Report check(const std::vector<core::OpPlan>& plans,
               const core::ExecutionEngine::Result& result,
               bool serial = false) const;

  /// The P12 automaton over a raw DDR command stream (e.g. the runtime's
  /// recorded `commands()`).  Sequences are self-contained per step, each
  /// opened by a mode-set, so one linear scan checks the whole stream.
  Report check_commands(const std::vector<mem::Command>& cmds) const;

  const core::PinatuboCostModel& model() const { return *model_; }
  unsigned max_rows_cap() const { return max_rows_cap_; }

 private:
  void check_step(std::size_t plan, std::size_t step,
                  const core::PlanStep& s, Report& rep) const;
  void command_automaton(const std::vector<mem::Command>& cmds,
                         std::size_t plan, std::size_t step,
                         Report& rep) const;
  void hazard_resource_pass(const std::vector<core::OpPlan>& plans,
                            const core::ExecutionEngine::Result& result,
                            Report& rep) const;
  void reconcile_pass(const std::vector<core::OpPlan>& plans,
                      const core::ExecutionEngine::Result& result,
                      bool serial, Report& rep) const;

  const core::PinatuboCostModel* model_;
  unsigned max_rows_cap_;
  circuit::CsaModel csa_;
};

/// Reconciles a live trace session against the runtime's accounting: per
/// step class, summed span durations and span counts must equal the
/// expected totals (R01/R02), and the latest span end must equal the
/// accrued makespan (R04).  This is test_obs_reconcile's contract as a
/// reusable library call.
Report reconcile_trace(const obs::TraceSession& trace,
                       const Accounting& expect);

}  // namespace pinatubo::verify
