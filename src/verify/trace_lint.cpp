#include "verify/trace_lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace pinatubo::verify {

namespace {

/// Fixed-point slack: the exporter prints microseconds with four decimals,
/// so every endpoint carries up to 0.05 ns of rounding; comparisons involve
/// two or three rounded values.
constexpr double kEpsNs = 0.21;

// ---- minimal recursive-descent JSON reader --------------------------------
// The linter must not trust the writer, so it re-parses the file instead of
// linking against the exporter.  Only what trace-event files use: objects,
// arrays, strings (with the exporter's escapes), numbers, true/false/null.

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JValue> items;
  std::vector<std::pair<std::string, JValue>> fields;

  const JValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }
  bool is(Kind k) const { return kind == k; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content");
    return true;
  }

  std::string error() const {
    std::ostringstream os;
    os << error_ << " at byte " << pos_;
    return os.str();
  }

 private:
  bool fail(const char* why) {
    if (error_.empty()) error_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool value(JValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JValue::Kind::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.kind = JValue::Kind::kBool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.kind = JValue::Kind::kNull;
        return literal("null", 4);
      default: return number(out);
    }
  }

  bool object(JValue& out) {
    out.kind = JValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':'");
      ++pos_;
      skip_ws();
      JValue v;
      if (!value(v)) return false;
      out.fields.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') return ++pos_, true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JValue& out) {
    out.kind = JValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      JValue v;
      if (!value(v)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') return ++pos_, true;
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          const unsigned long cp =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // The exporter only emits \u00xx control escapes; anything wider
          // is replaced rather than UTF-8-encoded (names are diagnostics,
          // not payload).
          out += cp < 0x80 ? static_cast<char>(cp) : '?';
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JValue& out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(begin, &end);
    if (end == begin) return fail("expected a value");
    out.kind = JValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

double num_or(const JValue* v, double fallback) {
  return v != nullptr && v->is(JValue::Kind::kNumber) ? v->number : fallback;
}

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

Report lint_trace_text(const std::string& json, TraceStats* stats) {
  Report rep;
  const auto none = Diagnostic::kNoIndex;
  auto t01 = [&](const std::string& msg) {
    rep.add(Rule::kTraceParse, none, none, msg);
  };

  JValue root;
  JsonParser parser(json);
  if (!parser.parse(root)) {
    t01(parser.error());
    return rep;
  }
  if (!root.is(JValue::Kind::kObject)) {
    t01("root is not an object");
    return rep;
  }
  const JValue* events = root.find("traceEvents");
  const JValue* other = root.find("otherData");
  if (events == nullptr || !events->is(JValue::Kind::kArray)) {
    t01("missing traceEvents array");
    return rep;
  }
  if (other == nullptr || !other->is(JValue::Kind::kObject)) {
    t01("missing otherData object");
    return rep;
  }
  const JValue* declared_max = other->find("max_span_end_ns");
  if (declared_max == nullptr || !declared_max->is(JValue::Kind::kNumber))
    t01("otherData.max_span_end_ns missing");

  struct LintSpan {
    double start_ns, end_ns;
    std::size_t event;
    std::uint32_t tid;
  };
  std::map<std::uint32_t, std::vector<LintSpan>> by_track;
  std::map<std::uint32_t, std::string> track_names;
  TraceStats st;
  st.declared_max_end_ns = num_or(declared_max, 0.0);

  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const JValue& ev = events->items[i];
    if (!ev.is(JValue::Kind::kObject)) {
      t01("traceEvents[" + std::to_string(i) + "] is not an object");
      continue;
    }
    const JValue* ph = ev.find("ph");
    if (ph == nullptr || !ph->is(JValue::Kind::kString)) {
      t01("traceEvents[" + std::to_string(i) + "] has no ph");
      continue;
    }
    if (ph->string == "M") {
      const JValue* name = ev.find("name");
      const JValue* args = ev.find("args");
      if (name != nullptr && name->string == "thread_name" &&
          args != nullptr && args->is(JValue::Kind::kObject)) {
        const JValue* tname = args->find("name");
        if (tname != nullptr && tname->is(JValue::Kind::kString))
          track_names[static_cast<std::uint32_t>(
              num_or(ev.find("tid"), 0.0))] = tname->string;
      }
      continue;
    }
    if (ph->string != "X") continue;  // other phases are not ours to judge
    const JValue* ts = ev.find("ts");
    const JValue* dur = ev.find("dur");
    if (ts == nullptr || !ts->is(JValue::Kind::kNumber) || dur == nullptr ||
        !dur->is(JValue::Kind::kNumber)) {
      t01("span event " + std::to_string(i) + " lacks numeric ts/dur");
      continue;
    }
    LintSpan s;
    s.start_ns = ts->number * 1e3;  // Chrome ts/dur are microseconds
    s.end_ns = s.start_ns + dur->number * 1e3;
    s.event = i;
    s.tid = static_cast<std::uint32_t>(num_or(ev.find("tid"), 0.0));
    by_track[s.tid].push_back(s);
    ++st.spans;
    st.max_end_ns = std::max(st.max_end_ns, s.end_ns);
    const JValue* cat = ev.find("cat");
    if (cat != nullptr && cat->is(JValue::Kind::kString))
      ++st.spans_by_category[cat->string];
  }
  st.tracks = track_names.size();

  // ---- T02: the declared makespan bounds every span ----------------------
  if (declared_max != nullptr) {
    const double limit =
        st.declared_max_end_ns + kEpsNs + 1e-9 * st.declared_max_end_ns;
    for (const auto& [tid, spans] : by_track)
      for (const LintSpan& s : spans)
        if (s.end_ns > limit) {
          std::ostringstream os;
          os << "span event " << s.event << " ends at " << s.end_ns
             << " ns, past the declared max_span_end_ns "
             << st.declared_max_end_ns;
          rep.add(Rule::kTracePastMakespan, none, none, os.str());
        }
    if (st.spans > 0 &&
        st.max_end_ns <
            st.declared_max_end_ns - kEpsNs - 1e-9 * st.declared_max_end_ns) {
      std::ostringstream os;
      os << "no span reaches the declared max_span_end_ns "
         << st.declared_max_end_ns << " (latest ends at " << st.max_end_ns
         << " ns)";
      rep.add(Rule::kTracePastMakespan, none, none, os.str());
    }
  }

  // ---- T03: spans sharing a track tile without overlap -------------------
  for (auto& [tid, spans] : by_track) {
    std::sort(spans.begin(), spans.end(),
              [](const LintSpan& a, const LintSpan& b) {
                return a.start_ns < b.start_ns;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      const LintSpan& prev = spans[i - 1];
      const LintSpan& cur = spans[i];
      if (cur.start_ns < prev.end_ns - kEpsNs - 1e-9 * prev.end_ns) {
        std::ostringstream os;
        const auto it = track_names.find(tid);
        os << "track " << (it != track_names.end() ? it->second
                                                   : std::to_string(tid))
           << ": span event " << cur.event << " starting at " << cur.start_ns
           << " ns overlaps event " << prev.event << " ending at "
           << prev.end_ns << " ns";
        rep.add(Rule::kTraceTrackOverlap, none, none, os.str());
      }
    }
  }

  // ---- T04: declared counters agree with the spans -----------------------
  const JValue* counters = other->find("counters");
  if (counters != nullptr && counters->is(JValue::Kind::kObject))
    for (const auto& [name, value] : counters->fields) {
      if (value.is(JValue::Kind::kNumber)) st.counters[name] = value.number;
      constexpr const char* kPrefix = "pim.steps.";
      if (name.rfind(kPrefix, 0) != 0 || !value.is(JValue::Kind::kNumber))
        continue;
      const std::string cls = name.substr(std::string(kPrefix).size());
      const auto it = st.spans_by_category.find(cls);
      const std::size_t seen =
          it == st.spans_by_category.end() ? 0 : it->second;
      const auto want = static_cast<std::size_t>(std::llround(value.number));
      if (seen != want) {
        std::ostringstream os;
        os << name << " = " << want << " but the trace holds " << seen
           << " spans of class " << cls;
        rep.add(Rule::kTraceCounterMismatch, none, none, os.str());
      }
    }
  const JValue* declared_spans = other->find("spans");
  if (declared_spans != nullptr &&
      declared_spans->is(JValue::Kind::kNumber) &&
      static_cast<std::size_t>(std::llround(declared_spans->number)) !=
          st.spans) {
    std::ostringstream os;
    os << "otherData.spans = " << declared_spans->number
       << " but the trace holds " << st.spans << " spans";
    rep.add(Rule::kTraceCounterMismatch, none, none, os.str());
  }

  if (stats != nullptr) *stats = std::move(st);
  return rep;
}

Report lint_trace_file(const std::string& path, TraceStats* stats) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    Report rep;
    rep.add(Rule::kTraceParse, Diagnostic::kNoIndex, Diagnostic::kNoIndex,
            "cannot open trace file " + path);
    return rep;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return lint_trace_text(buf.str(), stats);
}

std::string TraceStats::to_json(const Report& rep) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "{\"ok\":" << (rep.ok() ? "true" : "false") << ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : rep.diags) {
    if (!first) os << ',';
    first = false;
    append_json_escaped(os, d.to_string());
  }
  os << "],\"spans\":" << spans << ",\"tracks\":" << tracks
     << ",\"max_end_ns\":" << max_end_ns
     << ",\"declared_max_end_ns\":" << declared_max_end_ns
     << ",\"spans_by_category\":{";
  first = true;
  for (const auto& [cat, n] : spans_by_category) {
    if (!first) os << ',';
    first = false;
    append_json_escaped(os, cat);
    os << ':' << n;
  }
  os << "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ',';
    first = false;
    append_json_escaped(os, name);
    os << ':' << value;
  }
  os << "}}";
  return os.str();
}

}  // namespace pinatubo::verify
