#include "verify/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "nvm/technology.hpp"

namespace pinatubo::verify {

namespace {

using core::OpPlan;
using core::PlanStep;
using core::StepKind;

/// Relative slack for floating-point accounting comparisons: the sums are
/// computed in different orders on both sides, so exact equality is not
/// guaranteed, but anything past ~1e-9 relative is a real timing-model bug
/// (the fixed-point trace exporters round at 0.1 ns, far coarser).
double slack(double expected) { return 1e-9 * (1.0 + std::abs(expected)); }

bool near(double got, double expected) {
  return std::abs(got - expected) <= slack(expected);
}

/// Hazard key: row address with the bank collapsed — identical to the
/// execution engine's (PIM commands broadcast across the lock-step bank
/// cluster, so one (channel,rank,subarray,row) slice is one unit of data).
std::uint64_t row_key(const mem::RowAddr& a) {
  return (static_cast<std::uint64_t>(a.channel) << 48) |
         (static_cast<std::uint64_t>(a.rank) << 40) |
         (static_cast<std::uint64_t>(a.subarray) << 24) |
         static_cast<std::uint64_t>(a.row);
}

std::string addr_str(const mem::RowAddr& a) { return a.to_string(); }

/// Bounds-checks one row address against the geometry.
bool addr_in_range(const mem::Geometry& g, const mem::RowAddr& a) {
  return a.channel < g.channels && a.rank < g.ranks_per_channel &&
         a.bank < g.banks_per_chip && a.subarray < g.subarrays_per_bank &&
         a.row < g.rows_per_subarray;
}

}  // namespace

Verifier::Verifier(const core::PinatuboCostModel& model, unsigned max_rows_cap)
    : model_(&model), max_rows_cap_(max_rows_cap) {}

Report Verifier::check(const OpPlan& plan) const {
  Report rep;
  for (std::size_t i = 0; i < plan.steps.size(); ++i)
    check_step(0, i, plan.steps[i], rep);
  return rep;
}

Report Verifier::check(const std::vector<OpPlan>& plans) const {
  Report rep;
  for (std::size_t p = 0; p < plans.size(); ++p)
    for (std::size_t i = 0; i < plans[p].steps.size(); ++i)
      check_step(p, i, plans[p].steps[i], rep);
  return rep;
}

void Verifier::check_step(std::size_t plan, std::size_t step,
                          const PlanStep& s, Report& rep) const {
  const mem::Geometry& g = model_->geometry();
  const std::size_t before = rep.diags.size();
  auto add = [&](Rule r, const std::string& msg) {
    rep.add(r, plan, step, msg);
  };
  auto msg = [](auto&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  };

  // ---- shared structural checks -----------------------------------------
  if (s.reads.empty()) add(Rule::kStepEmptyReads, "step opens no rows");
  if (s.bits == 0) add(Rule::kStepShape, "step processes 0 bits");
  if (s.col_steps < 1) {
    if (s.writeback && s.kind == StepKind::kIntraSub)
      add(Rule::kWriteBypassNoSense,
          "writeback with no sensing step before it (col_steps = 0)");
    add(Rule::kStepShape, "col_steps must be >= 1");
  }
  if (s.channel >= g.channels)
    add(Rule::kCrossChannel, msg("step channel ", s.channel,
                                 " outside the machine (", g.channels, ")"));
  for (const mem::RowAddr& r : s.reads) {
    if (!addr_in_range(g, r))
      add(Rule::kAddrOutOfRange, msg("read ", addr_str(r), " out of range"));
    else if (r.channel != s.channel)
      add(Rule::kCrossChannel, msg("step on channel ", s.channel, " reads ",
                                   addr_str(r)));
    if (r.bank != 0)
      add(Rule::kClusterMismatch,
          msg("read ", addr_str(r),
              " names a bank; PIM reads broadcast the cluster (bank 0)"));
  }
  if (!s.read_cols.empty() && s.read_cols.size() != s.reads.size())
    add(Rule::kReadColsMismatch,
        msg(s.read_cols.size(), " read_cols for ", s.reads.size(), " reads"));
  if (static_cast<std::uint64_t>(s.col_start) + s.col_steps > g.sa_mux_share)
    add(Rule::kColumnOverflow,
        msg("column window [", s.col_start, ", ", s.col_start + s.col_steps,
            ") exceeds the mux share ", g.sa_mux_share));
  for (const unsigned c : s.read_cols)
    if (static_cast<std::uint64_t>(c) + s.col_steps > g.sa_mux_share)
      add(Rule::kColumnOverflow,
          msg("operand column window [", c, ", ", c + s.col_steps,
              ") exceeds the mux share ", g.sa_mux_share));
  if (s.crosses_rank && s.kind != StepKind::kInterBank)
    add(Rule::kClusterMismatch,
        "only inter-bank steps may cross ranks (crosses_rank set)");
  if (s.writeback) {
    const mem::RowAddr want{s.channel, s.rank, 0, s.subarray, s.row};
    if (!addr_in_range(g, s.write))
      add(Rule::kAddrOutOfRange,
          msg("write ", addr_str(s.write), " out of range"));
    else if (!(s.write == want))
      add(Rule::kWriteKeyMismatch,
          msg("write targets ", addr_str(s.write), ", step executes at ",
              addr_str(want)));
  }

  // ---- per-kind rules ----------------------------------------------------
  switch (s.kind) {
    case StepKind::kIntraSub: {
      if (s.rows != s.reads.size())
        add(Rule::kStepShape, msg("rows = ", s.rows, " but step opens ",
                                  s.reads.size(), " wordlines"));
      const auto n = static_cast<unsigned>(s.reads.size());
      const auto& cell = nvm::cell_params(model_->tech());
      if (n > g.rows_per_subarray)
        add(Rule::kActivationOverflow,
            msg(n, " simultaneous activations exceed the subarray's ",
                g.rows_per_subarray, " LWL driver latches"));
      else if (n > max_rows_cap_)
        add(Rule::kActivationOverflow,
            msg(n, " simultaneous activations exceed the configured cap ",
                max_rows_cap_));
      else if (n > 0 && !csa_.supports(s.op, n, cell))
        add(Rule::kActivationOverflow,
            msg("the CSA cannot resolve ", to_string(s.op), " over ", n,
                " rows on ", nvm::to_string(model_->tech()),
                " (boundary ratio below the reliable threshold)"));
      // One wordline per operand: the same row cannot be activated twice
      // within one multi-row activation.
      for (std::size_t i = 0; i < s.reads.size(); ++i)
        for (std::size_t j = i + 1; j < s.reads.size(); ++j)
          if (s.reads[i] == s.reads[j]) {
            add(Rule::kDoubleActivate,
                msg("row ", addr_str(s.reads[i]), " activated twice"));
            j = s.reads.size();  // one diagnostic per duplicated row
          }
      for (const mem::RowAddr& r : s.reads)
        if (addr_in_range(g, r) &&
            (r.rank != s.rank || r.subarray != s.subarray))
          add(Rule::kClusterMismatch,
              msg("intra-subarray read ", addr_str(r),
                  " outside the executing cluster (rank ", s.rank,
                  ", subarray ", s.subarray, ")"));
      break;
    }
    case StepKind::kInterSub:
    case StepKind::kInterBank: {
      // Buffer steps fold at most two operands per pass; `rows` is the
      // pricing knob (sensed-row count) and may legitimately exceed the
      // dependency reads — e.g. a read-back write-verify senses the freshly
      // written row plus the golden copy but depends only on dst.
      if (s.rows < 1 || s.rows > 2)
        add(Rule::kStepShape,
            msg("rows = ", s.rows,
                " outside the buffer fold's 1..2 sensed-row range"));
      if (s.reads.size() > 2)
        add(Rule::kStepShape,
            msg(s.reads.size(),
                " operand rows exceed the buffer's two latch slots"));
      if (s.kind == StepKind::kInterSub)
        for (const mem::RowAddr& r : s.reads)
          if (addr_in_range(g, r) && r.rank != s.rank)
            add(Rule::kClusterMismatch,
                msg("inter-subarray read ", addr_str(r),
                    " outside the executing rank ", s.rank));
      break;
    }
    case StepKind::kHostRead: {
      // The host-read tail is one logical burst; its reads list one row per
      // group (the data dependencies), legitimately spanning ranks.
      if (s.rows != 1)
        add(Rule::kStepShape,
            msg("host-read bursts one latched result, rows = ", s.rows));
      if (s.writeback)
        add(Rule::kWriteBypassNoSense,
            "host-read steps stream to the CPU; they cannot write back");
      break;
    }
  }

  // The command automaton needs a step sane enough to lower (a bounded
  // column window and row lists); structural violations above already
  // explain anything it would find.
  if (rep.diags.size() == before) {
    std::vector<mem::Command> cmds;
    model_->lower_step(s, cmds);
    command_automaton(cmds, plan, step, rep);
  }
}

void Verifier::command_automaton(const std::vector<mem::Command>& cmds,
                                 std::size_t plan, std::size_t step,
                                 Report& rep) const {
  // Per-bank-cluster PIM state machine over lowered DDR commands.  Step
  // sequences are self-contained (each opens with a mode-set), so a single
  // linear automaton checks a stream of any length:
  //
  //   idle --MRS--> armed --PIM_RESET--> latching --ACT+--> (sensing after
  //   the first PIM_SENSE) --PIM_WRITEBACK--> idle            [intra path]
  //   armed --PIM_LOAD{1,2}--> loading --GDL/IO op--> oped
  //   --PIM_WRITEBACK--> idle                                 [buffer path]
  //
  // Plain column reads (host bursts) are legal anywhere and do not disturb
  // the cluster state; activates without a reset, senses without an open
  // row, bypasses without a sense, and logic ops without loads are illegal.
  enum class St { kIdle, kArmed, kLatching, kSensing, kLoading, kOped };
  const mem::Geometry& g = model_->geometry();
  St st = St::kIdle;
  unsigned acts = 0, loads = 0;
  auto add = [&](const Rule r, const std::string& m) {
    rep.add(r, plan, step, m);
  };
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    const mem::Command& c = cmds[i];
    std::ostringstream at;
    at << "command " << i << " (" << mem::to_string(c.kind) << "): ";
    switch (c.kind) {
      case mem::CmdKind::kModeSet:
        st = St::kArmed;
        acts = loads = 0;
        break;
      case mem::CmdKind::kPimReset:
        if (st != St::kArmed)
          add(Rule::kBadCommandOrder,
              at.str() + "wordline reset without a preceding mode-set");
        st = St::kLatching;
        acts = 0;
        break;
      case mem::CmdKind::kAct:
        if (st != St::kLatching)
          add(Rule::kBadCommandOrder,
              at.str() + "activate outside a reset multi-ACT window");
        else if (++acts > g.rows_per_subarray)
          add(Rule::kActivationOverflow,
              at.str() + "more ACTs than LWL driver latches (" +
                  std::to_string(g.rows_per_subarray) + ")");
        break;
      case mem::CmdKind::kPimSense:
        if (!(st == St::kSensing || (st == St::kLatching && acts >= 1)))
          add(Rule::kBadCommandOrder,
              at.str() + "sense with no activated rows");
        st = St::kSensing;
        break;
      case mem::CmdKind::kPimWriteback:
        if (st != St::kSensing && st != St::kOped)
          add(Rule::kWriteBypassNoSense,
              at.str() +
                  "write-driver bypass without a sense or buffer op result");
        st = St::kIdle;
        break;
      case mem::CmdKind::kPimLoad:
        if (st != St::kArmed && st != St::kLoading)
          add(Rule::kBadCommandOrder,
              at.str() + "buffer load without a preceding mode-set");
        else if (++loads > 2)
          add(Rule::kBadCommandOrder,
              at.str() + "more loads than buffer operand slots (2)");
        st = St::kLoading;
        break;
      case mem::CmdKind::kPimGdlOp:
      case mem::CmdKind::kPimIoOp:
        if (st != St::kLoading || loads < 1)
          add(Rule::kBadCommandOrder,
              at.str() + "buffer logic op with no loaded operands");
        st = St::kOped;
        break;
      case mem::CmdKind::kRead:
        break;  // host column bursts are plain DDR, legal anywhere
      case mem::CmdKind::kWrite:
      case mem::CmdKind::kPrecharge:
        add(Rule::kBadCommandOrder,
            at.str() + "not part of a lowered PIM sequence");
        break;
    }
  }
}

Report Verifier::check_commands(const std::vector<mem::Command>& cmds) const {
  Report rep;
  command_automaton(cmds, Diagnostic::kNoIndex, Diagnostic::kNoIndex, rep);
  return rep;
}

Report Verifier::check(const std::vector<OpPlan>& plans,
                       const core::ExecutionEngine::Result& result,
                       bool serial) const {
  Report rep = check(plans);
  if (!rep.ok()) return rep;
  hazard_resource_pass(plans, result, rep);
  reconcile_pass(plans, result, serial, rep);
  return rep;
}

void Verifier::hazard_resource_pass(
    const std::vector<OpPlan>& plans,
    const core::ExecutionEngine::Result& result, Report& rep) const {
  using Sched = core::ExecutionEngine::ScheduledStep;
  auto msg = [](auto&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  };

  // ---- H01: the schedule covers each step exactly once -------------------
  std::vector<std::size_t> offset(plans.size() + 1, 0);
  for (std::size_t p = 0; p < plans.size(); ++p)
    offset[p + 1] = offset[p] + plans[p].steps.size();
  const std::size_t total = offset.back();
  std::vector<const Sched*> placed(total, nullptr);
  bool structural_ok = result.schedule.size() == total;
  if (!structural_ok)
    rep.add(Rule::kScheduleShape, Diagnostic::kNoIndex, Diagnostic::kNoIndex,
            msg("schedule has ", result.schedule.size(), " entries for ",
                total, " plan steps"));
  for (const Sched& ss : result.schedule) {
    if (ss.plan >= plans.size() || ss.step >= plans[ss.plan].steps.size()) {
      rep.add(Rule::kScheduleShape, ss.plan, ss.step,
              "schedule entry out of range");
      structural_ok = false;
      continue;
    }
    const std::size_t idx = offset[ss.plan] + ss.step;
    if (placed[idx] != nullptr) {
      rep.add(Rule::kScheduleShape, ss.plan, ss.step,
              "step scheduled more than once");
      structural_ok = false;
      continue;
    }
    placed[idx] = &ss;
  }
  if (!structural_ok) return;  // per-node times are not well-defined

  // Price every step once; H01 time checks + the resource bookkeeping
  // below all reuse these.
  std::vector<double> cost_ns(total);
  for (std::size_t p = 0; p < plans.size(); ++p)
    for (std::size_t i = 0; i < plans[p].steps.size(); ++i)
      cost_ns[offset[p] + i] =
          model_->step_cost(plans[p].steps[i]).time_ns;

  for (std::size_t idx = 0; idx < total; ++idx) {
    const Sched& ss = *placed[idx];
    const PlanStep& s = plans[ss.plan].steps[ss.step];
    if (ss.start_ns < -slack(0.0) || ss.done_ns < ss.start_ns - slack(0.0))
      rep.add(Rule::kScheduleShape, ss.plan, ss.step,
              msg("negative or inverted window [", ss.start_ns, ", ",
                  ss.done_ns, "]"));
    if (!near(ss.done_ns - ss.start_ns, cost_ns[idx]))
      rep.add(Rule::kScheduleShape, ss.plan, ss.step,
              msg("scheduled duration ", ss.done_ns - ss.start_ns,
                  " ns != step cost ", cost_ns[idx], " ns"));
    const std::uint64_t bytes = model_->step_bus_bytes(s);
    const double burst =
        bytes == 0 ? 0.0
                   : std::min(static_cast<double>(bytes) /
                                  model_->bus().data_gbps,
                              cost_ns[idx]);
    if (!near(ss.bus_ns, burst))
      rep.add(Rule::kScheduleShape, ss.plan, ss.step,
              msg("bus burst ", ss.bus_ns, " ns != ", burst,
                  " ns implied by ", bytes, " bus bytes"));
  }

  // ---- H02: the hazard graph, re-derived exactly like the engine ---------
  // Program-order scan over bank-collapsed row keys.  Keys embed the
  // channel, so one global scan produces the same edge set as the engine's
  // per-channel scans.
  std::unordered_map<std::uint64_t, std::size_t> last_writer;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> readers;
  for (std::size_t p = 0; p < plans.size(); ++p)
    for (std::size_t i = 0; i < plans[p].steps.size(); ++i) {
      const std::size_t idx = offset[p] + i;
      const PlanStep& s = plans[p].steps[i];
      auto needs = [&](std::size_t d, const char* hazard,
                       const mem::RowAddr& row) {
        if (d == idx) return;
        if (placed[idx]->start_ns <
            placed[d]->done_ns - slack(placed[d]->done_ns))
          rep.add(Rule::kHazardViolated, p, i,
                  msg(hazard, " hazard on ", addr_str(row), ": starts at ",
                      placed[idx]->start_ns, " ns before plan ",
                      placed[d]->plan, " step ", placed[d]->step,
                      " completes at ", placed[d]->done_ns, " ns"));
      };
      for (const mem::RowAddr& r : s.reads) {
        const auto it = last_writer.find(row_key(r));
        if (it != last_writer.end()) needs(it->second, "RAW", r);
      }
      if (s.writeback) {
        const std::uint64_t w = row_key(s.write);
        const auto it = last_writer.find(w);
        if (it != last_writer.end()) needs(it->second, "WAW", s.write);
        const auto rd = readers.find(w);
        if (rd != readers.end())
          for (const std::size_t r : rd->second) needs(r, "WAR", s.write);
      }
      for (const mem::RowAddr& r : s.reads)
        readers[row_key(r)].push_back(idx);
      if (s.writeback) {
        const std::uint64_t w = row_key(s.write);
        last_writer[w] = idx;
        readers[w].clear();
      }
    }

  // ---- H03 / H04: physical exclusivity -----------------------------------
  // A step occupies its lock-step bank cluster for [start, done] (the bank
  // is held until any trailing burst drains), and its burst occupies the
  // channel's shared data bus for [done - bus_ns, done].  Windows on one
  // resource must never overlap.
  struct Window {
    double start, end;
    std::size_t idx;
  };
  std::unordered_map<std::uint64_t, std::vector<Window>> rank_busy, bus_busy;
  for (std::size_t idx = 0; idx < total; ++idx) {
    const Sched& ss = *placed[idx];
    const PlanStep& s = plans[ss.plan].steps[ss.step];
    const std::uint64_t rk =
        (static_cast<std::uint64_t>(s.channel) << 32) | s.rank;
    rank_busy[rk].push_back({ss.start_ns, ss.done_ns, idx});
    if (ss.bus_ns > 0.0)
      bus_busy[s.channel].push_back(
          {ss.done_ns - ss.bus_ns, ss.done_ns, idx});
  }
  auto check_overlap = [&](std::unordered_map<std::uint64_t,
                                              std::vector<Window>>& byres,
                           Rule rule, const char* what) {
    for (auto& [res, wins] : byres) {
      std::sort(wins.begin(), wins.end(), [](const Window& a,
                                             const Window& b) {
        return a.start < b.start;
      });
      for (std::size_t i = 1; i < wins.size(); ++i) {
        const Window& prev = wins[i - 1];
        const Window& cur = wins[i];
        if (cur.start < prev.end - slack(prev.end)) {
          const Sched& ss = *placed[cur.idx];
          const Sched& ps = *placed[prev.idx];
          rep.add(rule, ss.plan, ss.step,
                  msg(what, " window [", cur.start, ", ", cur.end,
                      ") overlaps plan ", ps.plan, " step ", ps.step, " [",
                      prev.start, ", ", prev.end, ")"));
        }
      }
    }
  };
  check_overlap(rank_busy, Rule::kRankOverlap, "bank-cluster");
  check_overlap(bus_busy, Rule::kBusOverlap, "data-bus");
}

void Verifier::reconcile_pass(const std::vector<OpPlan>& plans,
                              const core::ExecutionEngine::Result& result,
                              bool serial, Report& rep) const {
  if (rep.tripped(Rule::kScheduleShape)) return;  // sums are meaningless
  auto msg = [](auto&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  };
  const auto none = Diagnostic::kNoIndex;

  double time_by_class[core::kStepKindCount] = {};
  std::uint64_t steps_by_class[core::kStepKindCount] = {};
  double energy_pj = 0.0, serial_sum = 0.0, max_done = 0.0;
  std::uint64_t bus_bytes = 0;
  for (const auto& ss : result.schedule) {
    const PlanStep& s = plans[ss.plan].steps[ss.step];
    const std::size_t k = core::step_index(s.kind);
    time_by_class[k] += ss.done_ns - ss.start_ns;
    ++steps_by_class[k];
    serial_sum += ss.done_ns - ss.start_ns;
    max_done = std::max(max_done, ss.done_ns);
    energy_pj += model_->step_cost(s).energy.total_pj();
    bus_bytes += model_->step_bus_bytes(s);
  }

  for (std::size_t k = 0; k < core::kStepKindCount; ++k) {
    const auto kind = static_cast<StepKind>(k);
    if (!near(time_by_class[k], result.profile.time_ns[k]))
      rep.add(Rule::kClassTimeMismatch, none, none,
              msg(to_string(kind), ": scheduled ", time_by_class[k],
                  " ns, profile claims ", result.profile.time_ns[k], " ns"));
    if (steps_by_class[k] != result.profile.steps[k])
      rep.add(Rule::kClassCountMismatch, none, none,
              msg(to_string(kind), ": ", steps_by_class[k],
                  " scheduled steps, profile claims ",
                  result.profile.steps[k]));
  }
  if (bus_bytes != result.profile.bus_bytes)
    rep.add(Rule::kClassCountMismatch, none, none,
            msg("steps move ", bus_bytes, " bus bytes, profile claims ",
                result.profile.bus_bytes));
  if (!near(energy_pj, result.cost.energy.total_pj()))
    rep.add(Rule::kEnergyMismatch, none, none,
            msg("summed step energy ", energy_pj, " pJ != batch energy ",
                result.cost.energy.total_pj(), " pJ"));
  if (!near(max_done, result.cost.time_ns))
    rep.add(Rule::kMakespanMismatch, none, none,
            msg("last step completes at ", max_done,
                " ns, batch makespan claims ", result.cost.time_ns, " ns"));
  if (!near(serial_sum, result.serial_time_ns))
    rep.add(Rule::kSerialSumMismatch, none, none,
            msg("step times sum to ", serial_sum,
                " ns, serial baseline claims ", result.serial_time_ns,
                " ns"));
  if (serial && !near(result.cost.time_ns, result.serial_time_ns))
    rep.add(Rule::kSerialSumMismatch, none, none,
            msg("serial-mode makespan ", result.cost.time_ns,
                " ns != serial baseline ", result.serial_time_ns, " ns"));
}

Report reconcile_trace(const obs::TraceSession& trace,
                       const Accounting& expect) {
  Report rep;
  const auto none = Diagnostic::kNoIndex;
  auto msg = [](auto&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  };

  double time_by_class[core::kStepKindCount] = {};
  std::uint64_t count_by_class[core::kStepKindCount] = {};
  for (const obs::Span& span : trace.spans())
    for (std::size_t k = 0; k < core::kStepKindCount; ++k)
      if (span.category == to_string(static_cast<StepKind>(k))) {
        time_by_class[k] += span.dur_ns;
        ++count_by_class[k];
      }
  // Bus bursts ("bus") and host-fallback spans ("cpu-fallback") carry
  // non-class categories: they render extra timelines, not step time.

  for (std::size_t k = 0; k < core::kStepKindCount; ++k) {
    const auto kind = static_cast<StepKind>(k);
    if (!near(time_by_class[k], expect.class_time_ns[k]))
      rep.add(Rule::kClassTimeMismatch, none, none,
              msg(to_string(kind), ": spans sum to ", time_by_class[k],
                  " ns, accounting claims ", expect.class_time_ns[k],
                  " ns"));
    if (count_by_class[k] != expect.class_steps[k])
      rep.add(Rule::kClassCountMismatch, none, none,
              msg(to_string(kind), ": ", count_by_class[k],
                  " spans, accounting claims ", expect.class_steps[k]));
  }
  if (!near(trace.max_end_ns(), expect.makespan_ns))
    rep.add(Rule::kMakespanMismatch, none, none,
            msg("last span ends at ", trace.max_end_ns(),
                " ns, accounting claims the makespan is ",
                expect.makespan_ns, " ns"));
  return rep;
}

}  // namespace pinatubo::verify
