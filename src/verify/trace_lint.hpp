// Exported-trace lint (rules T01-T04).
//
// `obs::TraceSession::write_chrome_json` serialises schedules into Chrome
// trace-event JSON; this linter re-reads such a file with no access to the
// process that wrote it and checks the file is internally honest: well-formed
// (T01), no span past the declared `otherData.max_span_end_ns` (T02), no
// overlap between spans sharing a track — a rank timeline, a channel bus, or
// the host CPU lane (T03), and `pim.steps.*` counters agreeing with the
// per-class span counts (T04).  Timestamps are compared with fixed-point
// slack: the exporter rounds at 0.1 ns (four decimals of a microsecond), so
// two rounded endpoints may disagree by up to 0.2 ns without a real bug.
//
// Used by the `plan_lint --trace` CLI and cross-checked against
// tools/check_trace.py in CI.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "verify/rules.hpp"

namespace pinatubo::verify {

/// Machine-readable facts extracted while linting, for summary files and
/// cross-checks against other tools' view of the same trace.
struct TraceStats {
  std::size_t spans = 0;             ///< "X" complete events seen
  std::size_t tracks = 0;            ///< named thread_name metadata rows
  double max_end_ns = 0.0;           ///< latest span end actually observed
  double declared_max_end_ns = 0.0;  ///< otherData.max_span_end_ns
  std::map<std::string, double> counters;             ///< otherData.counters
  std::map<std::string, std::size_t> spans_by_category;

  /// One-line JSON object (rule ids of diagnostics + the fields above).
  std::string to_json(const Report& rep) const;
};

/// Lints trace-event JSON text.  Never throws; a malformed file yields T01.
Report lint_trace_text(const std::string& json, TraceStats* stats = nullptr);

/// Reads and lints a trace file (an unreadable file is a T01 finding).
Report lint_trace_file(const std::string& path, TraceStats* stats = nullptr);

}  // namespace pinatubo::verify
