// Rule catalog of the static plan/schedule verifier (DESIGN.md §11).
//
// Every invariant the verifier enforces has a stable id ("P07"), a short
// kebab-case name ("double-activate"), and a one-line invariant statement.
// Diagnostics reference rules by id so tests can assert the *exact* rule an
// adversarial input trips, and CI logs stay greppable across refactors.
//
// Id ranges mirror the three passes plus the trace linter:
//   P** — protocol / state-machine pass (plan-level legality),
//   H** — hazard & resource pass (schedule-level legality),
//   R** — reconciliation pass (accounting closure),
//   T** — exported-trace lint (Chrome trace-event JSON).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pinatubo::verify {

enum class Rule : std::uint8_t {
  // ---- protocol / state-machine pass ------------------------------------
  kStepEmptyReads,      ///< P01: every step names the rows it opens
  kStepShape,           ///< P02: rows/reads/bits/col_steps are consistent
  kActivationOverflow,  ///< P03: activation width within LWL/CSA limits
  kAddrOutOfRange,      ///< P04: addresses lie inside the geometry
  kCrossChannel,        ///< P05: a step never touches another channel
  kClusterMismatch,     ///< P06: reads match the executing bank cluster
  kDoubleActivate,      ///< P07: one wordline per operand of a multi-ACT
  kWriteBypassNoSense,  ///< P08: WD bypass requires a preceding sense
  kColumnOverflow,      ///< P09: column windows stay inside the mux share
  kReadColsMismatch,    ///< P10: read_cols aligns 1:1 with reads
  kWriteKeyMismatch,    ///< P11: the write targets the step's own row key
  kBadCommandOrder,     ///< P12: lowered DDR commands obey the automaton
  // ---- hazard & resource pass -------------------------------------------
  kScheduleShape,   ///< H01: schedule covers each step once, honest times
  kHazardViolated,  ///< H02: RAW/WAW/WAR edges respected by the schedule
  kRankOverlap,     ///< H03: per-(channel,rank) busy windows never overlap
  kBusOverlap,      ///< H04: per-channel data-bus bursts never overlap
  // ---- reconciliation pass ----------------------------------------------
  kClassTimeMismatch,   ///< R01: per-class span sums equal the profile
  kClassCountMismatch,  ///< R02: per-class step counts equal the profile
  kEnergyMismatch,      ///< R03: summed step energy equals the batch energy
  kMakespanMismatch,    ///< R04: max schedule end equals the reported cost
  kSerialSumMismatch,   ///< R05: serial baseline equals the step-time sum
  // ---- exported-trace lint ----------------------------------------------
  kTraceParse,           ///< T01: the file is well-formed trace-event JSON
  kTracePastMakespan,    ///< T02: spans end by otherData.max_span_end_ns
  kTraceTrackOverlap,    ///< T03: spans on one track never overlap
  kTraceCounterMismatch  ///< T04: pim.steps.* counters match span counts
};

inline constexpr std::size_t kRuleCount =
    static_cast<std::size_t>(Rule::kTraceCounterMismatch) + 1;

/// Stable short id, e.g. "P07".
const char* rule_id(Rule r);
/// Kebab-case name, e.g. "double-activate".
const char* rule_name(Rule r);
/// One-line statement of the invariant the rule enforces.
const char* rule_invariant(Rule r);

/// One violation: which rule, where (plan/step indices of the batch; both
/// SIZE_MAX for batch-level findings), and a human-readable message.
struct Diagnostic {
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  Rule rule = Rule::kStepEmptyReads;
  std::size_t plan = kNoIndex;
  std::size_t step = kNoIndex;
  std::string message;

  /// "P07 double-activate [plan 2 step 0]: ..." — one greppable line.
  std::string to_string() const;
};

/// The outcome of a verification pass: empty means every rule held.
struct Report {
  std::vector<Diagnostic> diags;

  bool ok() const { return diags.empty(); }
  bool tripped(Rule r) const;
  std::size_t count(Rule r) const;
  void add(Rule r, std::size_t plan, std::size_t step, std::string message);
  /// All diagnostics, one per line.
  std::string to_string() const;
};

}  // namespace pinatubo::verify
