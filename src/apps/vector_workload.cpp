#include "apps/vector_workload.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/random.hpp"

namespace pinatubo::apps {

VectorSpec VectorSpec::parse(const std::string& text) {
  VectorSpec s;
  char mode = 0;
  const int got = std::sscanf(text.c_str(), "%u-%u-%u%c", &s.len_log,
                              &s.count_log, &s.rows_log, &mode);
  PIN_CHECK_MSG(got == 4 && (mode == 's' || mode == 'r'),
                "bad vector spec: " << text);
  PIN_CHECK_MSG(s.len_log <= 26 && s.count_log <= 30 && s.rows_log <= 10,
                "vector spec out of range: " << text);
  PIN_CHECK_MSG(s.rows_log >= 1 && s.rows_log <= s.count_log,
                "operand count must be in [2, vector count]: " << text);
  s.sequential = mode == 's';
  return s;
}

std::string VectorSpec::name() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u-%u-%u%c", len_log, count_log, rows_log,
                sequential ? 's' : 'r');
  return buf;
}

sim::OpTrace vector_trace(const VectorSpec& spec, std::uint64_t seed) {
  sim::OpTrace t;
  t.name = spec.name();
  Rng rng(seed);
  const std::uint64_t count = spec.vector_count();
  const unsigned n = spec.operands();
  const std::uint64_t ops = count / n;
  t.ops.reserve(ops);
  for (std::uint64_t i = 0; i < ops; ++i) {
    sim::TraceOp op;
    op.op = BitOp::kOr;
    op.bits = spec.vector_bits();
    if (spec.sequential) {
      for (unsigned k = 0; k < n; ++k) op.srcs.push_back(i * n + k);
    } else {
      // Random operand ids; keep them distinct within one op.
      while (op.srcs.size() < n) {
        const std::uint64_t id = rng.uniform_u64(count);
        bool dup = false;
        for (const auto s : op.srcs) dup |= s == id;
        if (!dup) op.srcs.push_back(id);
      }
    }
    op.dst = op.srcs.back();  // in-place accumulate
    t.ops.push_back(std::move(op));
  }
  // Pure bitwise workload: negligible scalar wrapper (loop control only).
  t.scalar_ops = ops * 16;
  t.scalar_bytes = 0;
  t.result_density = 0.5;
  return t;
}

std::vector<VectorSpec> paper_vector_specs() {
  return {
      VectorSpec::parse("19-16-1s"), VectorSpec::parse("19-16-7s"),
      VectorSpec::parse("14-12-7s"), VectorSpec::parse("14-16-7s"),
      VectorSpec::parse("14-16-7r"),
  };
}

}  // namespace pinatubo::apps
