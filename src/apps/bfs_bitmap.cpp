#include "apps/bfs_bitmap.hpp"

#include <limits>

#include "bitvec/bitvector.hpp"
#include "common/error.hpp"

namespace pinatubo::apps {

BfsResult bitmap_bfs(const Graph& g, const BfsConfig& cfg) {
  PIN_CHECK(cfg.partitions >= 1);
  PIN_CHECK(cfg.source < g.nodes());
  const std::uint32_t n = g.nodes();
  const unsigned P = cfg.partitions;

  // Logical bitmap ids (allocation order == id order, see header).
  const std::uint64_t id_visited = P;
  std::uint64_t id_frontier = P + 1;
  std::uint64_t id_next = P + 2;

  BfsResult res;
  res.level_of.assign(n, std::numeric_limits<std::uint32_t>::max());
  res.trace.name = "bfs";

  std::vector<BitVector> partials(P, BitVector(n));
  BitVector visited(n), frontier(n);
  visited.set(cfg.source);
  frontier.set(cfg.source);
  res.level_of[cfg.source] = 0;
  res.reached = 1;

  // Contiguous-range partitioning: partition p owns an id range, so thin
  // frontiers (loose graphs) dirty only a few partials while fat frontiers
  // (tight graphs) dirty most of them.
  const std::uint32_t part_span = (n + P - 1) / P;
  auto partition_of = [&](std::uint32_t v) { return v / part_span; };
  double density_sum = 0.0;
  std::size_t density_ops = 0;

  while (frontier.any()) {
    // ---- scalar phase: expand the frontier into partition partials -----
    std::vector<bool> dirty(P, false);
    std::uint64_t level_edges = 0;
    frontier.for_each_set([&](std::size_t v) {
      const auto [begin, end] = g.neighbors(static_cast<std::uint32_t>(v));
      const unsigned p = partition_of(static_cast<std::uint32_t>(v));
      for (const std::uint32_t* w = begin; w != end; ++w) {
        partials[p].set(*w);
        ++level_edges;
      }
      if (begin != end) dirty[p] = true;
    });
    res.edges_traversed += level_edges;
    res.trace.scalar_ops +=
        static_cast<std::uint64_t>(cfg.ops_per_edge * level_edges) +
        static_cast<std::uint64_t>(cfg.ops_per_scan_word * (n / 64.0));
    // Scattered partial-bitmap writes miss the caches (one line per edge).
    res.trace.scalar_bytes += level_edges * 32 + n / 8;
    // "Searching for an unvisited bit-vector" (paper §6.2): every level the
    // implementation probes the still-unvisited vertices against the new
    // frontier.  Cheap for tight graphs (few levels); dominant for loose
    // ones (many levels, most of the graph still unvisited).
    const std::uint64_t unvisited = n - visited.popcount();
    res.trace.scalar_ops += unvisited * cfg.probe_ops_per_unvisited;
    res.trace.scalar_bytes += unvisited * 8;

    // ---- bulk bitwise phase --------------------------------------------
    std::vector<std::uint64_t> dirty_ids;
    for (unsigned p = 0; p < P; ++p)
      if (dirty[p]) dirty_ids.push_back(p);
    if (dirty_ids.empty()) break;

    // merged = OR(dirty partials); in place in the first dirty partial.
    BitVector merged = partials[dirty_ids[0]];
    if (dirty_ids.size() >= 2) {
      sim::TraceOp op;
      op.op = BitOp::kOr;
      op.srcs = dirty_ids;
      op.dst = dirty_ids[0];
      op.bits = n;
      res.trace.ops.push_back(op);
      for (std::size_t i = 1; i < dirty_ids.size(); ++i)
        merged |= partials[dirty_ids[i]];
    }
    const std::uint64_t merged_id = dirty_ids[0];

    // next = INV(visited)
    res.trace.ops.push_back(
        {BitOp::kInv, {id_visited}, id_next, n, false});
    // next = next AND merged.  The host scans `next` afterwards to drive
    // the next level — identical work in every backend, so it is charged
    // to the scalar side (already in the per-level scan term above).
    res.trace.ops.push_back(
        {BitOp::kAnd, {id_next, merged_id}, id_next, n, false});
    BitVector next = BitVector::and_not(merged, visited);

    // visited |= next.
    res.trace.ops.push_back(
        {BitOp::kOr, {id_visited, id_next}, id_visited, n, false});
    visited |= next;

    density_sum += static_cast<double>(next.popcount()) / n;
    ++density_ops;

    ++res.levels;
    next.for_each_set([&](std::size_t v) {
      res.level_of[v] = static_cast<std::uint32_t>(res.levels);
      ++res.reached;
    });

    // Scalar cleanup of the dirty partials for the next level.
    for (const auto p : dirty_ids) partials[p].fill(false);
    res.trace.scalar_ops += dirty_ids.size() * (n / 64);

    frontier = std::move(next);
    std::swap(id_frontier, id_next);
  }

  res.trace.result_density =
      density_ops > 0 ? std::max(0.01, density_sum / density_ops) : 0.5;
  return res;
}

}  // namespace pinatubo::apps
