// The paper's "Vector" microbenchmark family (Table 1):
// pure bit-vector OR workloads named `a-b-c(s|r)` meaning
//   2^a-bit vectors, 2^b of them, 2^c-operand OR ops,
//   sequential or random operand selection.
// Fig. 10/11 use 19-16-1s, 19-16-7s, 14-12-7s, 14-16-7s and 14-16-7r.
#pragma once

#include <string>
#include <vector>

#include "sim/backend.hpp"

namespace pinatubo::apps {

struct VectorSpec {
  unsigned len_log = 19;    ///< vector length 2^a bits
  unsigned count_log = 16;  ///< number of vectors 2^b
  unsigned rows_log = 1;    ///< operands per op 2^c
  bool sequential = true;

  /// Parses "19-16-7s" / "14-16-7r"; throws on malformed specs.
  static VectorSpec parse(const std::string& text);
  std::string name() const;
  std::uint64_t vector_bits() const { return 1ull << len_log; }
  std::uint64_t vector_count() const { return 1ull << count_log; }
  unsigned operands() const { return 1u << rows_log; }
};

/// The op trace: vectors grouped into count/2^c OR ops, destinations
/// accumulate in place (the last operand), matching the paper's setup.
sim::OpTrace vector_trace(const VectorSpec& spec, std::uint64_t seed = 7);

/// The five Fig. 10 vector workloads in paper order.
std::vector<VectorSpec> paper_vector_specs();

}  // namespace pinatubo::apps
