// Bitmap-based BFS (the paper's Graph application, after Beamer's
// direction-optimizing BFS [5]).
//
// State lives in n-bit bitmaps: `visited`, `frontier`, `next`, plus P
// partial next-frontier bitmaps (one per edge partition, built by the
// scalar expansion phase).  Each level then runs bulk bitwise ops:
//
//   merged  = OR(all dirty partials)          (the multi-row OR showcase)
//   next    = INV(visited)
//   next    = next AND merged                 (host reads the result to
//                                              drive the next level)
//   visited = visited OR next
//
// The bitmap ids are laid out so the whole working set (P partials +
// visited + frontier + next = 128 bitmaps) fills exactly one allocation
// window — a PIM-aware OS would do the same — making every op
// intra-subarray eligible.
//
// The run is executed functionally (host bit-vectors) while emitting the
// OpTrace the backends price; scalar expansion/scan work is aggregated
// into the trace's scalar_ops/scalar_bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/graph.hpp"
#include "sim/backend.hpp"

namespace pinatubo::apps {

struct BfsConfig {
  unsigned partitions = 125;  ///< 125 partials + 3 state bitmaps = 128 rows
  std::uint32_t source = 0;
  /// Scalar cost knobs (instructions per traversed edge / per scanned
  /// word), calibrated against the Sniper-class CPU model.
  double ops_per_edge = 5.0;
  double ops_per_scan_word = 2.0;
  /// Per-level unvisited-vertex probing (the paper's "searching for an
  /// unvisited bit-vector"); instructions per still-unvisited vertex.
  double probe_ops_per_unvisited = 10.0;
};

struct BfsResult {
  std::vector<std::uint32_t> level_of;  ///< UINT32_MAX if unreachable
  std::size_t levels = 0;
  std::uint64_t reached = 0;
  std::uint64_t edges_traversed = 0;
  sim::OpTrace trace;
};

BfsResult bitmap_bfs(const Graph& g, const BfsConfig& cfg = {});

}  // namespace pinatubo::apps
