// Synthetic graph substrate (stand-in for the paper's dblp-2010,
// eswiki-2013 and amazon-2008 downloads, which are unavailable offline).
//
// The bitmap-BFS evaluation depends on two workload properties only:
//   * how many BFS levels the graph needs (its effective diameter), and
//   * how edge traversals distribute over those levels (frontier profile).
// "Tight" graphs (dblp: a dense co-authorship network) finish in few
// levels with fat frontiers — bitwise-op friendly; "loose" graphs (eswiki,
// amazon) crawl through many thin levels — scalar-search dominated, which
// is exactly the paper's explanation for their lower overall speedup.
//
// The generator builds a chain of skewed random communities with sparse
// bridges: one fat community reproduces the tight profile, a long chain of
// small ones the loose profile.  Presets record the published properties
// of the datasets they stand in for.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hpp"

namespace pinatubo::apps {

/// Immutable CSR graph (undirected: both edge directions stored).
class Graph {
 public:
  Graph(std::uint32_t nodes,
        std::vector<std::pair<std::uint32_t, std::uint32_t>> edges);

  std::uint32_t nodes() const {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  std::uint64_t edges() const { return targets_.size(); }
  /// Neighbors of `v` (sorted, deduplicated).
  std::pair<const std::uint32_t*, const std::uint32_t*> neighbors(
      std::uint32_t v) const;
  std::uint32_t degree(std::uint32_t v) const;
  double average_degree() const {
    return static_cast<double>(edges()) / nodes();
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> targets_;
};

/// Community-chain generator parameters.
struct GraphGenParams {
  std::uint32_t nodes = 1u << 16;
  double avg_degree = 12.0;     ///< intra-community random edges per node
  std::uint32_t communities = 1;///< chained communities (loose >> 1)
  std::uint32_t bridge_edges = 8;  ///< edges between adjacent communities
  double skew = 1.0;            ///< Zipf exponent for endpoint popularity
};

Graph generate_graph(const GraphGenParams& params, Rng& rng);

/// A dataset preset: generator parameters + the real dataset's published
/// numbers (kept for the DESIGN.md substitution record).
struct DatasetPreset {
  std::string name;
  GraphGenParams gen;
  std::uint32_t real_nodes;
  std::uint64_t real_edges;
  const char* character;  ///< "tight" or "loose" per the paper's discussion
};

/// dblp-2010: 326k nodes / ~1.6M edges, dense co-author communities,
/// short effective diameter — the paper's best graph case (1.37x overall).
DatasetPreset dblp2010_like();
/// eswiki-2013: ~972k nodes / ~23M arcs, weakly connected long tail.
DatasetPreset eswiki2013_like();
/// amazon-2008: ~735k nodes / ~5.2M edges, long product chains.
DatasetPreset amazon2008_like();

Graph build_dataset(const DatasetPreset& preset, std::uint64_t seed);

}  // namespace pinatubo::apps
