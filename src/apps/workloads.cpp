#include "apps/workloads.hpp"

#include <cmath>

#include "apps/bfs_bitmap.hpp"
#include "apps/bitmap_index.hpp"
#include "apps/graph.hpp"
#include "apps/vector_workload.hpp"
#include "common/error.hpp"

namespace pinatubo::apps {

std::vector<NamedTrace> graph_workloads(std::uint64_t seed) {
  std::vector<NamedTrace> out;
  for (const auto& preset :
       {dblp2010_like(), eswiki2013_like(), amazon2008_like()}) {
    const Graph g = build_dataset(preset, seed);
    auto res = bitmap_bfs(g);
    res.trace.name = preset.name;
    out.push_back({"Graph", preset.name, std::move(res.trace)});
  }
  return out;
}

std::vector<NamedTrace> fastbit_workloads(std::uint64_t seed) {
  std::vector<NamedTrace> out;
  const IndexConfig cfg;
  const BitmapIndex index(cfg, seed);
  for (const std::size_t n_queries : {240u, 480u, 720u}) {
    const auto queries = generate_queries(cfg, n_queries, seed + n_queries);
    auto res = run_queries(index, queries);
    res.trace.name = std::to_string(n_queries);
    out.push_back({"Fastbit", std::to_string(n_queries),
                   std::move(res.trace)});
  }
  return out;
}

std::vector<NamedTrace> paper_workloads(double scale, std::uint64_t seed) {
  PIN_CHECK(scale > 0.0 && scale <= 1.0);
  std::vector<NamedTrace> out;
  for (VectorSpec spec : paper_vector_specs()) {
    if (scale < 1.0) {
      const auto drop = static_cast<unsigned>(std::round(-std::log2(scale)));
      spec.count_log -= std::min(spec.count_log - spec.rows_log, drop);
    }
    out.push_back({"Vector", spec.name(), vector_trace(spec, seed)});
  }
  for (auto& t : graph_workloads(seed)) out.push_back(std::move(t));
  for (auto& t : fastbit_workloads(seed)) out.push_back(std::move(t));
  return out;
}

}  // namespace pinatubo::apps
