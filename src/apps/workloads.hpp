// The complete Fig. 10/11/12 workload suite (Table 1) in paper order:
// five Vector specs, three Graph datasets, three Fastbit query-batch
// sizes.  Traces are generated deterministically and cached per call.
#pragma once

#include <string>
#include <vector>

#include "sim/backend.hpp"

namespace pinatubo::apps {

struct NamedTrace {
  std::string group;  ///< "Vector" / "Graph" / "Fastbit"
  std::string name;   ///< bar label in the figures
  sim::OpTrace trace;
};

/// The eleven Fig. 10 workloads.  `scale` in (0, 1] shrinks the Vector
/// workloads' vector counts for quick runs (1.0 = paper size).
std::vector<NamedTrace> paper_workloads(double scale = 1.0,
                                        std::uint64_t seed = 17);

/// Graph traces only (Fig. 12 left): dblp, eswiki, amazon.
std::vector<NamedTrace> graph_workloads(std::uint64_t seed = 17);
/// Fastbit traces only (Fig. 12 right): 240/480/720-query batches.
std::vector<NamedTrace> fastbit_workloads(std::uint64_t seed = 17);

}  // namespace pinatubo::apps
