#include "apps/graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pinatubo::apps {

Graph::Graph(std::uint32_t nodes,
             std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  PIN_CHECK(nodes > 0);
  // Symmetrize, sort, deduplicate, drop self loops.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sym;
  sym.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    PIN_CHECK_MSG(u < nodes && v < nodes, "edge endpoint out of range");
    if (u == v) continue;
    sym.emplace_back(u, v);
    sym.emplace_back(v, u);
  }
  std::sort(sym.begin(), sym.end());
  sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

  offsets_.assign(nodes + 1, 0);
  targets_.reserve(sym.size());
  std::uint32_t cur = 0;
  for (const auto& [u, v] : sym) {
    while (cur < u) offsets_[++cur] = targets_.size();
    targets_.push_back(v);
  }
  while (cur < nodes) offsets_[++cur] = targets_.size();
}

std::pair<const std::uint32_t*, const std::uint32_t*> Graph::neighbors(
    std::uint32_t v) const {
  PIN_CHECK(v < nodes());
  return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
}

std::uint32_t Graph::degree(std::uint32_t v) const {
  PIN_CHECK(v < nodes());
  return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
}

Graph generate_graph(const GraphGenParams& p, Rng& rng) {
  PIN_CHECK(p.nodes >= 2);
  PIN_CHECK(p.communities >= 1 && p.communities <= p.nodes / 2);
  PIN_CHECK(p.avg_degree > 0);
  const std::uint32_t per_comm = p.nodes / p.communities;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const auto intra_edges =
      static_cast<std::uint64_t>(p.avg_degree * per_comm / 2.0);
  // Skewed endpoint sampler within a community (hubs exist in all the
  // stand-in datasets).
  ZipfSampler zipf(per_comm, p.skew);
  for (std::uint32_t c = 0; c < p.communities; ++c) {
    const std::uint32_t base = c * per_comm;
    const std::uint32_t size =
        c + 1 == p.communities ? p.nodes - base : per_comm;
    for (std::uint64_t e = 0; e < intra_edges; ++e) {
      auto u = static_cast<std::uint32_t>(zipf.sample(rng) % size);
      auto v = static_cast<std::uint32_t>(rng.uniform_u64(size));
      edges.emplace_back(base + u, base + v);
    }
    // A Hamiltonian-ish path keeps every community connected.
    for (std::uint32_t i = 1; i < size; ++i)
      if (rng.chance(0.35)) edges.emplace_back(base + i - 1, base + i);
    // Bridges to the next community: thin frontiers between communities.
    if (c + 1 < p.communities) {
      const std::uint32_t next = (c + 1) * per_comm;
      const std::uint32_t next_size =
          c + 2 == p.communities ? p.nodes - next : per_comm;
      for (std::uint32_t b = 0; b < p.bridge_edges; ++b)
        edges.emplace_back(
            base + static_cast<std::uint32_t>(rng.uniform_u64(size)),
            next + static_cast<std::uint32_t>(rng.uniform_u64(next_size)));
    }
  }
  // Make node 0 connected to its community core.
  edges.emplace_back(0, 1);
  return Graph(p.nodes, std::move(edges));
}

DatasetPreset dblp2010_like() {
  // Tight: one dense community cluster, finishes in few fat levels.
  return {"dblp", {1u << 19, 12.0, 2, 4096, 0.8}, 326186, 1615400, "tight"};
}

DatasetPreset eswiki2013_like() {
  // Loose: a long chain of small communities with thin bridges.
  return {"eswiki", {1u << 19, 9.0, 48, 3, 1.0}, 972933, 23041488, "loose"};
}

DatasetPreset amazon2008_like() {
  // Loose: longer chains, lower degree (product co-purchase paths).
  return {"amazon", {1u << 19, 6.0, 64, 3, 0.7}, 735323, 5158388, "loose"};
}

Graph build_dataset(const DatasetPreset& preset, std::uint64_t seed) {
  Rng rng(seed);
  return generate_graph(preset.gen, rng);
}

}  // namespace pinatubo::apps
