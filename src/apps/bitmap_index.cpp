#include "apps/bitmap_index.hpp"

#include "common/error.hpp"

namespace pinatubo::apps {

BitmapIndex::BitmapIndex(const IndexConfig& cfg, std::uint64_t seed)
    : cfg_(cfg) {
  PIN_CHECK(cfg.rows > 0);
  PIN_CHECK(cfg.attributes >= 1);
  PIN_CHECK(cfg.bins >= 2 && cfg.bins <= 256);
  Rng rng(seed);
  ZipfSampler zipf(cfg.bins, cfg.zipf_theta);

  values_.resize(cfg.rows * cfg.attributes);
  bitmaps_.assign(static_cast<std::size_t>(cfg.attributes) * cfg.bins,
                  BitVector(cfg.rows));
  std::vector<unsigned> prev(cfg.attributes, 0);
  for (unsigned a = 0; a < cfg.attributes; ++a)
    prev[a] = static_cast<unsigned>(zipf.sample(rng));
  for (std::uint64_t r = 0; r < cfg.rows; ++r) {
    for (unsigned a = 0; a < cfg.attributes; ++a) {
      // Markov persistence: consecutive events share run conditions.
      const unsigned bin = rng.chance(cfg.locality)
                               ? prev[a]
                               : static_cast<unsigned>(zipf.sample(rng));
      prev[a] = bin;
      values_[r * cfg.attributes + a] = static_cast<std::uint8_t>(bin);
      bitmaps_[a * cfg.bins + bin].set(r);
    }
  }
}

const BitVector& BitmapIndex::bin_bitmap(unsigned attr, unsigned bin) const {
  PIN_CHECK(attr < cfg_.attributes && bin < cfg_.bins);
  return bitmaps_[attr * cfg_.bins + bin];
}

std::uint64_t BitmapIndex::bitmap_id(unsigned attr, unsigned bin) const {
  PIN_CHECK(attr < cfg_.attributes && bin < cfg_.bins);
  const std::uint64_t block = 2ull * cfg_.bins + cfg_.scratch_per_pair;
  return (attr / 2) * block + (attr % 2) * cfg_.bins + bin;
}

std::uint64_t BitmapIndex::scratch_id(unsigned attr, unsigned k) const {
  PIN_CHECK(attr < cfg_.attributes && k < cfg_.scratch_per_pair);
  const std::uint64_t block = 2ull * cfg_.bins + cfg_.scratch_per_pair;
  return (attr / 2) * block + 2ull * cfg_.bins + k;
}

unsigned BitmapIndex::value(std::uint64_t row, unsigned attr) const {
  PIN_CHECK(row < cfg_.rows && attr < cfg_.attributes);
  return values_[row * cfg_.attributes + attr];
}

std::vector<Query> generate_queries(const IndexConfig& cfg, std::size_t count,
                                    std::uint64_t seed) {
  Rng rng(seed ^ 0x5bd1e995u);
  std::vector<Query> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    const auto preds = 2 + rng.uniform_u64(3);  // 2..4 predicates
    std::vector<bool> used(cfg.attributes, false);
    for (std::uint64_t p = 0; p < preds; ++p) {
      Predicate pr;
      do {
        pr.attr = static_cast<unsigned>(rng.uniform_u64(cfg.attributes));
      } while (used[pr.attr]);
      used[pr.attr] = true;
      const auto width = 1 + rng.uniform_u64(7);  // 1..7 adjacent bins
      pr.lo_bin = static_cast<unsigned>(
          rng.uniform_u64(cfg.bins - std::min<std::uint64_t>(width, cfg.bins) + 1));
      pr.hi_bin = static_cast<unsigned>(
          std::min<std::uint64_t>(pr.lo_bin + width - 1, cfg.bins - 1));
      pr.negate = rng.chance(0.1);
      q.preds.push_back(pr);
    }
    qs.push_back(std::move(q));
  }
  return qs;
}

std::uint64_t count_matches_reference(const BitmapIndex& index,
                                      const Query& q) {
  const auto& cfg = index.config();
  std::uint64_t count = 0;
  for (std::uint64_t r = 0; r < cfg.rows; ++r) {
    bool ok = true;
    for (const auto& p : q.preds) {
      const unsigned v = index.value(r, p.attr);
      const bool in = v >= p.lo_bin && v <= p.hi_bin;
      if (in == p.negate) {
        ok = false;
        break;
      }
    }
    count += ok;
  }
  return count;
}

QueryBatchResult run_queries(const BitmapIndex& index,
                             const std::vector<Query>& queries) {
  const auto& cfg = index.config();
  PIN_CHECK(cfg.scratch_per_pair >= 2);
  QueryBatchResult res;
  res.trace.name = "fastbit";
  const std::uint64_t n = cfg.rows;
  double density_sum = 0.0;
  std::size_t density_n = 0;

  for (const auto& q : queries) {
    PIN_CHECK_MSG(q.preds.size() >= 2, "queries must have >= 2 predicates");
    // Evaluate each predicate into a scratch slot of its own attribute
    // pair's block (so bin-range ORs stay intra-subarray).
    std::vector<BitVector> pred_vals;
    std::vector<std::uint64_t> pred_ids;
    std::vector<unsigned> pair_use(cfg.attributes / 2 + 1, 0);
    for (std::size_t pi = 0; pi < q.preds.size(); ++pi) {
      const auto& p = q.preds[pi];
      PIN_CHECK(p.lo_bin <= p.hi_bin && p.hi_bin < cfg.bins);
      const auto slot = index.scratch_id(p.attr, pair_use[p.attr / 2]++);
      BitVector v = index.bin_bitmap(p.attr, p.lo_bin);
      std::uint64_t vid = index.bitmap_id(p.attr, p.lo_bin);
      if (p.hi_bin > p.lo_bin) {
        sim::TraceOp op;
        op.op = BitOp::kOr;
        op.bits = n;
        for (unsigned b = p.lo_bin; b <= p.hi_bin; ++b) {
          op.srcs.push_back(index.bitmap_id(p.attr, b));
          if (b > p.lo_bin) v |= index.bin_bitmap(p.attr, b);
        }
        op.dst = slot;
        res.trace.ops.push_back(op);
        vid = slot;
      }
      if (p.negate) {
        res.trace.ops.push_back({BitOp::kInv, {vid}, slot, n, false});
        v.invert();
        vid = slot;
      }
      pred_vals.push_back(std::move(v));
      pred_ids.push_back(vid);
      density_sum += static_cast<double>(pred_vals.back().popcount()) / n;
      ++density_n;
      // FastBit candidate check: rows in the predicate's EDGE bins must be
      // verified against the raw values (bin boundaries are coarser than
      // the query's), a random-access scan over the event table.
      std::uint64_t candidates = index.bin_bitmap(p.attr, p.lo_bin).popcount();
      if (p.hi_bin > p.lo_bin)
        candidates += index.bin_bitmap(p.attr, p.hi_bin).popcount();
      res.trace.scalar_ops += 24 * candidates;
      res.trace.scalar_bytes += 32 * candidates;
    }
    // AND-combine in place into the first predicate's scratch block;
    // operands from other attribute pairs arrive via the buffer path.
    BitVector acc = pred_vals[0];
    std::uint64_t acc_id = pred_ids[0];
    const auto out = index.scratch_id(q.preds[0].attr,
                                      pair_use[q.preds[0].attr / 2]++);
    for (std::size_t pi = 1; pi < pred_vals.size(); ++pi) {
      res.trace.ops.push_back(
          {BitOp::kAnd, {acc_id, pred_ids[pi]}, out, n, false});
      acc &= pred_vals[pi];
      acc_id = out;
    }
    const std::uint64_t count = acc.popcount();
    res.counts.push_back(count);
    // Scalar side: query planning, the COUNT scan over the result bitmap
    // (identical work in every backend), and result-row iteration.
    res.trace.scalar_ops += 400 + n / 32 + 2 * count;
    res.trace.scalar_bytes += 256 + n / 8 + 8 * count;
  }
  res.trace.result_density =
      density_n > 0 ? std::max(0.01, density_sum / density_n) : 0.5;
  return res;
}

}  // namespace pinatubo::apps
