// FastBit-style bitmap-index engine (the paper's Database application).
//
// A synthetic high-energy-physics-like event table stands in for the STAR
// data the paper queries: `rows` events with `attributes` columns, values
// Zipf-distributed over `bins` equality-encoded bins — one bitmap of
// `rows` bits per (attribute, bin), exactly FastBit's basic index.
//
// Queries are conjunctions of range predicates with optional negation:
//   bin-range OR   -> multi-row OR over adjacent bin bitmaps,
//   negation       -> INV,
//   conjunction    -> AND chain,
//   COUNT/fetch    -> host reads the final bitmap.
//
// Id layout (PIM-aware OS mapping): attributes are paired into blocks of
// 2*bins bin bitmaps plus `scratch_per_pair` scratch bitmaps, sized so one
// block exactly fills one subarray's rows.  Predicate results land in the
// scratch rows of their own attribute's block, keeping bin-range ORs
// intra-subarray; cross-attribute ANDs run at the global row buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "common/random.hpp"
#include "sim/backend.hpp"

namespace pinatubo::apps {

struct IndexConfig {
  /// Events in the table; 2^22 matches the STAR workload's scale (bitmaps
  /// of 512 KiB that defeat CPU caches, eight 2^19-bit row groups each).
  std::uint64_t rows = 1ull << 22;
  unsigned attributes = 8;
  unsigned bins = 14;
  unsigned scratch_per_pair = 4;  ///< 2*14 bins + 4 scratch per block
  double zipf_theta = 0.7;
  /// Row-order value persistence (events cluster by run/time): the
  /// probability a row repeats the previous row's bin.  Drives the WAH
  /// compressibility real FastBit data exhibits.
  double locality = 0.9;
};

class BitmapIndex {
 public:
  BitmapIndex(const IndexConfig& cfg, std::uint64_t seed);

  const IndexConfig& config() const { return cfg_; }
  const BitVector& bin_bitmap(unsigned attr, unsigned bin) const;
  std::uint64_t bitmap_id(unsigned attr, unsigned bin) const;
  /// Scratch slot `k` of the attribute-pair block containing `attr`.
  std::uint64_t scratch_id(unsigned attr, unsigned k) const;
  /// The raw attribute value of a row (tests cross-check the bitmaps).
  unsigned value(std::uint64_t row, unsigned attr) const;

 private:
  IndexConfig cfg_;
  std::vector<BitVector> bitmaps_;           // attr-major
  std::vector<std::uint8_t> values_;         // row-major
};

/// One range predicate: attr value in [lo_bin, hi_bin], maybe negated.
struct Predicate {
  unsigned attr = 0;
  unsigned lo_bin = 0;
  unsigned hi_bin = 0;
  bool negate = false;
};

/// A conjunctive query (always >= 2 predicates, as the generator emits).
struct Query {
  std::vector<Predicate> preds;
};

std::vector<Query> generate_queries(const IndexConfig& cfg, std::size_t count,
                                    std::uint64_t seed);

struct QueryBatchResult {
  sim::OpTrace trace;
  std::vector<std::uint64_t> counts;  ///< per-query matching-row counts
};

/// Runs a query batch functionally while emitting the op trace.
QueryBatchResult run_queries(const BitmapIndex& index,
                             const std::vector<Query>& queries);

/// Reference evaluation straight off the raw values (test oracle).
std::uint64_t count_matches_reference(const BitmapIndex& index,
                                      const Query& q);

}  // namespace pinatubo::apps
