// Resistive-cell electrical model.
//
// Bridges stored logic values and the analog quantities the sense amplifier
// observes.  A multi-row activation places n cells in parallel on one
// bitline; the SA sees the combined conductance.  `BitlineModel` samples
// per-cell resistances (log-normal variation around the technology nominals)
// and reduces them, which is how the Pinatubo backend *derives* bitwise
// results instead of asserting them.
#pragma once

#include <span>
#include <vector>

#include "common/random.hpp"
#include "nvm/technology.hpp"

namespace pinatubo::nvm {

/// Logic encoding used throughout: LRS (low resistance) = logic 1,
/// HRS (high resistance) = logic 0, as the paper assumes for PCM/ReRAM.
struct CellState {
  bool value = false;       ///< stored logic value
  double resistance_ohm{};  ///< sampled device resistance
};

/// Samples a cell resistance for a stored value with process variation.
double sample_resistance(const CellParams& p, bool value, Rng& rng);

/// Nominal (variation-free) resistance for a stored value.
double nominal_resistance(const CellParams& p, bool value);

/// Parallel combination ("||" in the paper) of resistances.
double parallel_resistance(std::span<const double> r_ohm);

/// Conductance sum of n cells on one bitline (S).
double bitline_conductance(std::span<const double> r_ohm);

/// Models one bitline with n simultaneously-activated cells.
class BitlineModel {
 public:
  explicit BitlineModel(const CellParams& params) : params_(&params) {}

  /// Sampled total BL current (A) for the given stored values, with
  /// per-cell log-normal variation drawn from `rng`.
  double sampled_current_a(const std::vector<bool>& values, Rng& rng) const;

  /// Nominal BL current (A), no variation.
  double nominal_current_a(const std::vector<bool>& values) const;

  /// Nominal current when exactly `ones` of `n` open cells store 1.
  double nominal_current_a(std::size_t ones, std::size_t n) const;

  const CellParams& params() const { return *params_; }

 private:
  const CellParams* params_;
};

}  // namespace pinatubo::nvm
