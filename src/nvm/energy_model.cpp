#include "nvm/energy_model.hpp"

#include "common/error.hpp"

namespace pinatubo::nvm {

ArrayEnergyModel::ArrayEnergyModel(const CellParams& cell) : cell_(&cell) {}

double ArrayEnergyModel::activate_row_pj() const {
  return kDecodePjPerRow + kWordlinePjPerRow;
}

double ArrayEnergyModel::sense_pj(std::uint64_t bits, unsigned open_rows,
                                  double t_sense_ns) const {
  PIN_CHECK(open_rows >= 1);
  PIN_CHECK(t_sense_ns > 0.0);
  // Average bitline conductance at ~50% data density.
  const double g_avg =
      0.5 * (1.0 / cell_->r_low_ohm + 1.0 / cell_->r_high_ohm) *
      static_cast<double>(open_rows);
  const double v = cell_->read_voltage_v;
  // P = V^2 G (watts); E = P * t; watts * ns = 1e3 pJ... careful:
  // V^2*G is in watts; 1 W over 1 ns = 1e-9 J = 1e3 pJ.
  const double bl_pj_per_bit = v * v * g_avg * t_sense_ns * 1e3;
  return static_cast<double>(bits) * (kSaBiasPjPerBit + bl_pj_per_bit);
}

double ArrayEnergyModel::write_pj(std::uint64_t ones,
                                  std::uint64_t zeros) const {
  return static_cast<double>(ones) * cell_->set_energy_pj +
         static_cast<double>(zeros) * cell_->reset_energy_pj;
}

double ArrayEnergyModel::gdl_pj(std::uint64_t bits) const {
  return static_cast<double>(bits) * kGdlPjPerBit;
}

double ArrayEnergyModel::io_pj(std::uint64_t bits) const {
  return static_cast<double>(bits) * kIoPjPerBit;
}

double ArrayEnergyModel::logic_pj(std::uint64_t bits) const {
  return static_cast<double>(bits) * kLogicPjPerBit;
}

double ArrayEnergyModel::buffer_latch_pj(std::uint64_t bits) const {
  return static_cast<double>(bits) * kLatchPjPerBit;
}

}  // namespace pinatubo::nvm
