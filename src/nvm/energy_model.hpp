// NVSim-style array energy model.
//
// The paper extracts analog energies (SA, WD, LWL) from HSPICE and digital
// energies (controllers, inter-subarray/bank logic) from synthesis, then
// feeds a heavily modified NVSim/CACTI-3DD.  This model reproduces that
// layer: per-primitive energies for every memory-system event, parameterized
// by the NVM technology.  All results are in picojoules.
//
// Primitives map 1:1 onto simulator events:
//   row activation (decode + local wordline swing), per chip-slice
//   sense step (CSA bias + bitline read current), per sensed bit
//   row write (SET/RESET mix, data dependent), per written bit
//   global dataline transfer, per bit
//   off-chip DDR I/O, per bit
//   digital logic op / buffer latch, per bit (AC-PIM & inter-sub/bank paths)
#pragma once

#include <cstdint>

#include "nvm/technology.hpp"

namespace pinatubo::nvm {

class ArrayEnergyModel {
 public:
  explicit ArrayEnergyModel(const CellParams& cell);

  /// Decoder + LWL driver energy for opening one row in one chip-slice
  /// (8 Kb of cells): gate capacitance of the access transistors plus the
  /// address decode path.
  double activate_row_pj() const;

  /// One CSA sensing step for `bits` bits with `open_rows` rows on the
  /// bitline for `t_sense_ns`.  Includes amplifier bias current and the
  /// bitline read current (V^2 * G * t), assuming ~50% data density.
  double sense_pj(std::uint64_t bits, unsigned open_rows,
                  double t_sense_ns) const;

  /// Writing `ones` SET bits and `zeros` RESET bits through the WDs.
  double write_pj(std::uint64_t ones, std::uint64_t zeros) const;

  /// Global dataline movement (bank <-> global row buffer).
  double gdl_pj(std::uint64_t bits) const;

  /// Off-chip DDR bus transfer (I/O drivers, termination).
  double io_pj(std::uint64_t bits) const;

  /// Digital bitwise logic evaluation (AC-PIM / inter-subarray add-ons).
  double logic_pj(std::uint64_t bits) const;

  /// Latching bits into a global/IO buffer.
  double buffer_latch_pj(std::uint64_t bits) const;

  /// Fixed controller/command decode energy per DDR command.
  double command_pj() const { return kCommandPj; }

  const CellParams& cell() const { return *cell_; }

 private:
  const CellParams* cell_;

  // Calibrated constants (65 nm class peripheral circuitry).
  static constexpr double kDecodePjPerRow = 2.0;
  static constexpr double kWordlinePjPerRow = 0.9;   // 8Kb of gate cap @ ~1V
  static constexpr double kSaBiasPjPerBit = 0.15;    // CSA static bias/sense
  static constexpr double kGdlPjPerBit = 0.5;        // long on-chip wires
  static constexpr double kIoPjPerBit = 18.0;        // DDR3 off-chip
  static constexpr double kLogicPjPerBit = 0.05;     // 65nm gate evaluate
  static constexpr double kLatchPjPerBit = 0.02;
  static constexpr double kCommandPj = 5.0;
};

}  // namespace pinatubo::nvm
