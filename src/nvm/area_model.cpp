#include "nvm/area_model.hpp"

#include "common/error.hpp"

namespace pinatubo::nvm {

double ChipArea::total_um2() const {
  double t = 0;
  for (const auto& i : items) t += i.area_um2;
  return t;
}

double ChipArea::find(const std::string& name) const {
  for (const auto& i : items)
    if (i.name == name) return i.area_um2;
  return 0.0;
}

double OverheadBreakdown::total_um2() const {
  double t = 0;
  for (const auto& i : items) t += i.area_um2;
  return t;
}

double OverheadBreakdown::percent(const std::string& name) const {
  PIN_CHECK(baseline_um2 > 0);
  for (const auto& i : items)
    if (i.name == name) return 100.0 * i.area_um2 / baseline_um2;
  return 0.0;
}

AreaModel::AreaModel(const CellParams& cell, const ChipStructure& chip)
    : cell_(&cell), chip_(chip) {
  PIN_CHECK(chip_.cells > 0);
  PIN_CHECK(chip_.row_slice_bits % chip_.mats_per_subarray == 0);
  PIN_CHECK(chip_.cols_per_mat() % chip_.sa_mux_share == 0);
}

ChipArea AreaModel::baseline() const {
  const double f2 = chip_.f2_um2();
  ChipArea a;
  a.items.push_back(
      {"cell array",
       static_cast<double>(chip_.cells) * cell_->cell_area_f2 * f2});
  a.items.push_back(
      {"sense amps",
       static_cast<double>(chip_.sense_amps()) * kSenseAmpF2 * f2});
  a.items.push_back(
      {"write drivers",
       static_cast<double>(chip_.sense_amps()) * kWriteDriverF2 * f2});
  a.items.push_back(
      {"lwl drivers",
       static_cast<double>(chip_.lwl_drivers()) * kLwlDriverF2 * f2});
  const double bls = static_cast<double>(chip_.subarrays()) *
                     static_cast<double>(chip_.row_slice_bits);
  a.items.push_back({"column mux", bls * kColMuxF2PerBl * f2});
  a.items.push_back(
      {"global row buffers", static_cast<double>(chip_.banks) *
                                 static_cast<double>(chip_.row_slice_bits) *
                                 kRowBufF2PerBit * f2});
  a.items.push_back({"global routing/decoders", kGlobalFixedUm2});
  a.items.push_back({"io", kIoFixedUm2});
  a.items.push_back({"control", kCtrlFixedUm2});
  return a;
}

OverheadBreakdown AreaModel::pinatubo_overhead() const {
  const double f2 = chip_.f2_um2();
  OverheadBreakdown o;
  o.baseline_um2 = baseline().total_um2();
  // Intra-subarray pieces.
  o.items.push_back(
      {"and/or", static_cast<double>(chip_.mats()) * kRefBranchesF2PerMat * f2});
  o.items.push_back(
      {"xor", static_cast<double>(chip_.sense_amps()) * kXorF2PerSa * f2});
  o.items.push_back(
      {"wl act",
       static_cast<double>(chip_.lwl_drivers()) * kLwlLatchF2 * f2});
  // Inter-subarray logic: one full-row-width unit per bank.
  o.items.push_back({"inter-sub", static_cast<double>(chip_.banks) *
                                      static_cast<double>(chip_.row_slice_bits) *
                                      kInterLogicF2PerBit * f2});
  // Inter-bank logic: one unit at the chip IO buffer.
  o.items.push_back({"inter-bank",
                     static_cast<double>(chip_.row_slice_bits) *
                         kInterLogicF2PerBit * f2});
  return o;
}

OverheadBreakdown AreaModel::acpim_overhead() const {
  const double f2 = chip_.f2_um2();
  OverheadBreakdown o;
  o.baseline_um2 = baseline().total_um2();
  // Digital ALU datapath at every subarray row buffer.
  o.items.push_back({"subarray alus",
                     static_cast<double>(chip_.subarrays()) *
                         static_cast<double>(chip_.row_slice_bits) *
                         kAcpimF2PerBit * f2});
  // Same global units as Pinatubo (results still move between levels).
  o.items.push_back({"inter-sub", static_cast<double>(chip_.banks) *
                                      static_cast<double>(chip_.row_slice_bits) *
                                      kInterLogicF2PerBit * f2});
  o.items.push_back({"inter-bank",
                     static_cast<double>(chip_.row_slice_bits) *
                         kInterLogicF2PerBit * f2});
  return o;
}

}  // namespace pinatubo::nvm
