// Emerging NVM technology parameter sets.
//
// The paper's evaluation uses 1T1R PCM as the case study but stresses that
// Pinatubo works for any resistive cell; the HSPICE validation sweeps cell
// resistances "from the recent PCM, STT-MRAM, and ReRAM prototypes" (via the
// UCSD NVM database it cites).  These presets capture that: nominal LRS/HRS
// resistances, log-normal variation, read/write electrical parameters, and
// cell geometry.  They feed the circuit models (sensing margins, Fig. 5/6),
// the energy model (Fig. 11/12), and the area model (Fig. 13).
#pragma once

#include <string>

namespace pinatubo::nvm {

enum class Tech { kPcm, kSttMram, kReRam };

const char* to_string(Tech t);

/// Electrical & geometric parameters of one resistive memory cell.
struct CellParams {
  Tech tech;

  // Resistance states (ohm). Logic convention per the paper: HRS encodes "0"
  // for PCM/ReRAM (enabling n-row OR); STT-MRAM's low ON/OFF ratio limits it
  // to 2-row ops.
  double r_low_ohm;    ///< LRS nominal (logic "1")
  double r_high_ohm;   ///< HRS nominal (logic "0")
  double sigma_low;    ///< log-normal sigma of LRS (lot-to-lot + cell)
  double sigma_high;   ///< log-normal sigma of HRS

  // Read path.
  double read_voltage_v;  ///< BL bias during sensing

  // Write path (per-cell).
  double set_energy_pj;     ///< energy to write logic "1"
  double reset_energy_pj;   ///< energy to write logic "0"
  double set_pulse_ns;      ///< SET pulse width
  double reset_pulse_ns;    ///< RESET pulse width
  bool bidirectional_write; ///< STT/ReRAM need both current polarities

  // Geometry.
  double cell_area_f2;  ///< cell footprint in F^2 (1T1R)

  /// ON/OFF resistance ratio rho = r_high / r_low.
  double on_off_ratio() const { return r_high_ohm / r_low_ohm; }
  /// Nominal read current through a single LRS cell (A).
  double read_current_low_a() const { return read_voltage_v / r_low_ohm; }
  /// Nominal read current through a single HRS cell (A).
  double read_current_high_a() const { return read_voltage_v / r_high_ohm; }
};

/// Prototype-calibrated parameter presets.
/// PCM:   90nm embedded PCM prototype class (De Sandre ISSCC'10 timing
///        class; NVMDB resistance corners).
/// STT:   64Mb MRAM prototype class (Tsuchida ISSCC'10); TMR ~150%.
/// ReRAM: HfOx 1T1R prototype class.
const CellParams& cell_params(Tech t);

/// Parses "pcm" / "stt" / "reram" (case-insensitive); throws on junk.
Tech tech_from_string(const std::string& name);

}  // namespace pinatubo::nvm
