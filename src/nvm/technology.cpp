#include "nvm/technology.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace pinatubo::nvm {

const char* to_string(Tech t) {
  switch (t) {
    case Tech::kPcm:
      return "PCM";
    case Tech::kSttMram:
      return "STT-MRAM";
    case Tech::kReRam:
      return "ReRAM";
  }
  return "?";
}

const CellParams& cell_params(Tech t) {
  // Resistance corners follow the NVMDB ranges the paper sweeps; write
  // energies/pulses follow the prototype papers it cites.
  static const CellParams kPcm{
      .tech = Tech::kPcm,
      .r_low_ohm = 10e3,
      .r_high_ohm = 1e6,   // ON/OFF ratio 100
      .sigma_low = 0.06,
      .sigma_high = 0.10,
      .read_voltage_v = 0.20,
      .set_energy_pj = 13.5,
      .reset_energy_pj = 19.2,
      .set_pulse_ns = 150.0,
      .reset_pulse_ns = 100.0,
      .bidirectional_write = false,
      .cell_area_f2 = 12.0,
  };
  static const CellParams kStt{
      .tech = Tech::kSttMram,
      .r_low_ohm = 2e3,
      .r_high_ohm = 5e3,   // TMR 150% -> ratio 2.5
      .sigma_low = 0.03,
      .sigma_high = 0.04,
      .read_voltage_v = 0.10,
      .set_energy_pj = 1.0,
      .reset_energy_pj = 1.0,
      .set_pulse_ns = 10.0,
      .reset_pulse_ns = 10.0,
      .bidirectional_write = true,
      .cell_area_f2 = 22.0,
  };
  static const CellParams kReRam{
      .tech = Tech::kReRam,
      .r_low_ohm = 20e3,
      .r_high_ohm = 2e6,   // ON/OFF ratio 100
      .sigma_low = 0.08,
      .sigma_high = 0.12,
      .read_voltage_v = 0.15,
      .set_energy_pj = 2.0,
      .reset_energy_pj = 2.4,
      .set_pulse_ns = 20.0,
      .reset_pulse_ns = 20.0,
      .bidirectional_write = true,
      .cell_area_f2 = 16.0,
  };
  switch (t) {
    case Tech::kPcm:
      return kPcm;
    case Tech::kSttMram:
      return kStt;
    case Tech::kReRam:
      return kReRam;
  }
  PIN_UNREACHABLE("bad Tech");
}

Tech tech_from_string(const std::string& name) {
  std::string low(name.size(), '\0');
  std::transform(name.begin(), name.end(), low.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (low == "pcm") return Tech::kPcm;
  if (low == "stt" || low == "stt-mram" || low == "sttmram" || low == "mram")
    return Tech::kSttMram;
  if (low == "reram" || low == "rram") return Tech::kReRam;
  PIN_UNREACHABLE("unknown NVM technology: " + name);
}

}  // namespace pinatubo::nvm
