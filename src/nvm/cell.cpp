#include "nvm/cell.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pinatubo::nvm {

double sample_resistance(const CellParams& p, bool value, Rng& rng) {
  const double nominal = value ? p.r_low_ohm : p.r_high_ohm;
  const double sigma = value ? p.sigma_low : p.sigma_high;
  // Log-normal with median at the nominal value.
  return nominal * rng.lognormal(0.0, sigma);
}

double nominal_resistance(const CellParams& p, bool value) {
  return value ? p.r_low_ohm : p.r_high_ohm;
}

double parallel_resistance(std::span<const double> r_ohm) {
  PIN_CHECK(!r_ohm.empty());
  double g = 0.0;
  for (double r : r_ohm) {
    PIN_CHECK_MSG(r > 0.0, "non-positive resistance " << r);
    g += 1.0 / r;
  }
  return 1.0 / g;
}

double bitline_conductance(std::span<const double> r_ohm) {
  double g = 0.0;
  for (double r : r_ohm) {
    PIN_CHECK_MSG(r > 0.0, "non-positive resistance " << r);
    g += 1.0 / r;
  }
  return g;
}

double BitlineModel::sampled_current_a(const std::vector<bool>& values,
                                       Rng& rng) const {
  PIN_CHECK(!values.empty());
  double g = 0.0;
  for (bool v : values) g += 1.0 / sample_resistance(*params_, v, rng);
  return params_->read_voltage_v * g;
}

double BitlineModel::nominal_current_a(const std::vector<bool>& values) const {
  PIN_CHECK(!values.empty());
  double g = 0.0;
  for (bool v : values) g += 1.0 / nominal_resistance(*params_, v);
  return params_->read_voltage_v * g;
}

double BitlineModel::nominal_current_a(std::size_t ones, std::size_t n) const {
  PIN_CHECK(n > 0);
  PIN_CHECK(ones <= n);
  const double g = static_cast<double>(ones) / params_->r_low_ohm +
                   static_cast<double>(n - ones) / params_->r_high_ohm;
  return params_->read_voltage_v * g;
}

}  // namespace pinatubo::nvm
