// NVSim-style chip area model and the Fig. 13 overhead analysis.
//
// Builds a 65 nm NVM chip floorplan from structural counts (cells, sense
// amplifiers, wordline drivers, buffers) and per-instance areas expressed in
// F^2.  On top of the baseline chip it prices the Pinatubo additions
// (AND/OR reference branches, XOR capacitor+gates, LWL latch transistors,
// WD bypass, inter-subarray and inter-bank logic) and the AC-PIM
// alternative (full digital ALUs at every subarray row buffer).
//
// Per-instance F^2 constants for the digital add-ons are calibrated to the
// paper's 65 nm synthesis results; the structural counts come from the
// memory geometry, so changing the organization changes the percentages the
// way a floorplanner would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nvm/technology.hpp"

namespace pinatubo::nvm {

/// Structural counts for one memory chip (default: the evaluated 64 MB
/// 1T1R chip — 8 banks x 64 subarrays x 128 rows x 8 Kb row slice).
struct ChipStructure {
  std::uint64_t cells = 1ull << 29;       ///< bits per chip
  std::uint64_t banks = 8;
  std::uint64_t subarrays_per_bank = 64;
  std::uint64_t mats_per_subarray = 8;
  std::uint64_t rows_per_subarray = 128;
  std::uint64_t row_slice_bits = 8192;    ///< per chip per bank
  std::uint64_t sa_mux_share = 32;        ///< columns per sense amp
  double feature_nm = 65.0;

  std::uint64_t subarrays() const { return banks * subarrays_per_bank; }
  std::uint64_t mats() const { return subarrays() * mats_per_subarray; }
  std::uint64_t cols_per_mat() const {
    return row_slice_bits / mats_per_subarray;
  }
  std::uint64_t sense_amps() const {
    return mats() * cols_per_mat() / sa_mux_share;
  }
  std::uint64_t lwl_drivers() const {
    return subarrays() * rows_per_subarray * mats_per_subarray;
  }
  /// F^2 in um^2.
  double f2_um2() const {
    const double f_um = feature_nm * 1e-3;
    return f_um * f_um;
  }
};

/// One named area contribution (um^2).
struct AreaItem {
  std::string name;
  double area_um2;
};

/// Baseline chip floorplan.
struct ChipArea {
  std::vector<AreaItem> items;
  double total_um2() const;
  double find(const std::string& name) const;  ///< 0 if absent
};

/// Add-on breakdown; percentages are relative to the baseline chip.
struct OverheadBreakdown {
  std::vector<AreaItem> items;
  double baseline_um2 = 0;
  double total_um2() const;
  double total_percent() const { return 100.0 * total_um2() / baseline_um2; }
  double percent(const std::string& name) const;
};

class AreaModel {
 public:
  AreaModel(const CellParams& cell, const ChipStructure& chip);

  /// Unmodified NVM chip floorplan.
  ChipArea baseline() const;
  /// Pinatubo circuit additions (Fig. 13 right).
  OverheadBreakdown pinatubo_overhead() const;
  /// AC-PIM: digital ALUs at every subarray plus the same global logic.
  OverheadBreakdown acpim_overhead() const;

  const ChipStructure& chip() const { return chip_; }

 private:
  const CellParams* cell_;
  ChipStructure chip_;

  // Baseline per-instance areas (F^2).
  static constexpr double kSenseAmpF2 = 1200;    // current-sampling CSA
  static constexpr double kWriteDriverF2 = 400;
  static constexpr double kLwlDriverF2 = 15;
  static constexpr double kColMuxF2PerBl = 6;
  static constexpr double kRowBufF2PerBit = 60;  // global row buffer latch
  // Fixed blocks (um^2): global decoders/routing, IO pads, control.
  static constexpr double kGlobalFixedUm2 = 1.0e6;
  static constexpr double kIoFixedUm2 = 0.5e6;
  static constexpr double kCtrlFixedUm2 = 0.2e6;

  // Pinatubo add-ons.
  static constexpr double kRefBranchesF2PerMat = 347;  // AND/OR refs, shared
  static constexpr double kXorF2PerSa = 32;            // Ch cap + 2T + mux
  static constexpr double kLwlLatchF2 = 6.8;           // 2 small transistors
  static constexpr double kInterLogicF2PerBit = 780;   // synthesized unit
  // AC-PIM per-subarray digital ALU datapath.
  static constexpr double kAcpimF2PerBit = 95;
};

}  // namespace pinatubo::nvm
