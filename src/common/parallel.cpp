#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/error.hpp"

namespace pinatubo {

namespace {

unsigned env_default_threads() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any worker
  // thread exists — the result seeds the pool size under global_mu().
  if (const char* env = std::getenv("PINATUBO_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  size_ = threads == 0 ? env_default_threads() : threads;
  // size_ - 1 background workers; the submitting thread is the last worker.
  for (unsigned i = 1; i < size_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(std::unique_lock<std::mutex>& lock) {
  while (has_task_ && task_.next < task_.end) {
    const std::size_t lo = task_.next;
    const std::size_t hi = std::min(task_.end, lo + task_.grain);
    task_.next = hi;
    ++task_.in_flight;
    const auto* body = task_.body;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*body)(lo, hi);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    --task_.in_flight;
    if (err) {
      if (!task_.error) task_.error = err;
      task_.next = task_.end;  // cancel unclaimed chunks
    }
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return stop_ || (has_task_ && task_.next < task_.end);
    });
    if (stop_) return;
    drain(lock);
    if (task_.done()) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  PIN_CHECK(grain >= 1);
  const std::size_t n = end - begin;
  if (size_ == 1 || n <= grain) {
    // Chunk exactly as the parallel path would: the [begin,end,grain)
    // decomposition is part of the determinism contract (chunk-ordered
    // reductions must not depend on the thread count).
    for (std::size_t lo = begin; lo < end; lo += grain)
      body(lo, std::min(end, lo + grain));
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  PIN_CHECK_MSG(!has_task_, "nested parallel_for on the same pool");
  task_ = Task{&body, begin, end, grain, begin, 0, nullptr};
  has_task_ = true;
  work_cv_.notify_all();
  drain(lock);  // the caller participates
  done_cv_.wait(lock, [this] { return task_.done(); });
  has_task_ = false;
  if (task_.error) {
    std::exception_ptr err = std::move(task_.error);
    task_.error = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_mu());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void ThreadPool::set_global_threads(unsigned threads) {
  std::lock_guard<std::mutex> lock(global_mu());
  global_slot() = std::make_unique<ThreadPool>(threads);
}

unsigned ThreadPool::global_threads() { return global().size(); }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(begin, end, grain, body);
}

}  // namespace pinatubo
