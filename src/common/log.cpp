#include "common/log.hpp"

#include <iostream>

namespace pinatubo {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  std::cerr << "[pinatubo:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace detail
}  // namespace pinatubo
