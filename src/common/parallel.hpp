// Fixed-size thread pool and deterministic parallel_for.
//
// Shards the functional-simulation hot paths (analog sensing, Monte-Carlo
// margin sweeps, per-channel schedule pricing) across cores.  Determinism
// contract: parallel_for partitions [begin, end) into contiguous chunks and
// every chunk's work depends only on its own indices (callers derive
// per-index RNG streams from a counter-based key, never from shared
// sequential state), so results are bit-identical for 1, 2, or N threads.
// Reductions follow the same rule: workers fill per-chunk slots and the
// caller folds them in chunk order.
//
// The process-wide pool is sized from (in priority order) set_global_threads,
// the PINATUBO_THREADS environment variable, or hardware_concurrency.  The
// benches and examples expose it as `--threads N` / config key `threads`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pinatubo {

class ThreadPool {
 public:
  /// `threads` total workers including the calling thread; 0 picks the
  /// environment default (PINATUBO_THREADS, else hardware_concurrency).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count including the caller (>= 1).
  unsigned size() const { return size_; }

  /// Runs `body(chunk_begin, chunk_end)` over a partition of [begin, end).
  /// Chunks are contiguous, cover the range exactly, and are at least
  /// `grain` long (except possibly the last); the caller participates.
  /// Runs inline when the range is small or the pool has one thread.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// The process-wide pool (created on first use).
  static ThreadPool& global();
  /// Resizes the global pool; `threads` as in the constructor.  Not safe
  /// concurrently with global-pool parallel_for calls.
  static void set_global_threads(unsigned threads);
  /// Current size of the global pool without forcing creation side effects
  /// beyond first-use construction.
  static unsigned global_threads();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0, end = 0, grain = 1;
    std::size_t next = 0;       ///< next chunk start (under mutex)
    std::size_t in_flight = 0;  ///< chunks handed out, not yet finished
    std::exception_ptr error;   ///< first failure; rethrown by the caller
    bool done() const { return next >= end && in_flight == 0; }
  };

  void worker_loop();
  /// Executes chunks of the current task until exhausted; returns when no
  /// chunk is left to claim (in_flight chunks of others may still run).
  void drain(std::unique_lock<std::mutex>& lock);

  unsigned size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a task
  std::condition_variable done_cv_;   ///< submitter waits for completion
  Task task_;
  bool has_task_ = false;
  bool stop_ = false;
};

/// Shorthand for ThreadPool::global().parallel_for with a default grain.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace pinatubo
