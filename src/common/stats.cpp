#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace pinatubo {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double geomean(const std::vector<double>& xs) {
  PIN_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    PIN_CHECK_MSG(x > 0.0, "geomean requires positive values, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  PIN_CHECK(!xs.empty());
  PIN_CHECK(p >= 0.0 && p <= 100.0);
  // NaN breaks operator<'s strict weak ordering (sort is UB) and would
  // poison the interpolation; reject it up front.
  for (const double x : xs)
    PIN_CHECK_MSG(!std::isnan(x), "percentile: NaN sample");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PIN_CHECK(hi > lo);
  PIN_CHECK(bins > 0);
}

void Histogram::add(double x) {
  // Casting a NaN fraction to an integer is UB; clamping cannot save it.
  PIN_CHECK_MSG(!std::isnan(x), "Histogram::add: NaN sample");
  // Clamp in double space: casting an out-of-range double (e.g. from an
  // infinite sample) to an integer is UB too.
  const double last = static_cast<double>(counts_.size()) - 1.0;
  const double frac = (x - lo_) / (hi_ - lo_);
  const double scaled =
      std::clamp(frac * static_cast<double>(counts_.size()), 0.0, last);
  ++counts_[static_cast<std::size_t>(scaled)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

std::string Histogram::to_string(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    os.setf(std::ios::fixed);
    os.precision(4);
    os << '[' << bin_low(i) << ", " << bin_high(i) << ") ";
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace pinatubo
