// Error handling primitives shared by all Pinatubo libraries.
//
// Policy (per C++ Core Guidelines E.2/E.3): programming errors and violated
// preconditions throw `pinatubo::Error` with a formatted message; recoverable
// conditions are reported through return values.  The PIN_CHECK family keeps
// call sites terse while preserving file:line context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pinatubo {

/// Exception type thrown on violated invariants and bad arguments.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace pinatubo

/// Precondition / invariant check; always on (cheap compared to simulation).
#define PIN_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pinatubo::detail::throw_error(#cond, __FILE__, __LINE__, "");       \
  } while (0)

/// Check with a streamed message: PIN_CHECK_MSG(x > 0, "x=" << x).
#define PIN_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream pin_check_os_;                                     \
      pin_check_os_ << msg; /* NOLINT */                                    \
      ::pinatubo::detail::throw_error(#cond, __FILE__, __LINE__,            \
                                      pin_check_os_.str());                 \
    }                                                                       \
  } while (0)

/// Marks unreachable control flow.
#define PIN_UNREACHABLE(msg)                                                \
  ::pinatubo::detail::throw_error("unreachable", __FILE__, __LINE__, (msg))
