#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace pinatubo::units {
namespace {

std::string scaled(double v, const char* const* suffixes, int n_suffix,
                   double step) {
  int idx = 0;
  double mag = std::fabs(v);
  while (idx + 1 < n_suffix && mag >= step) {
    mag /= step;
    v /= step;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g %s", v, suffixes[idx]);
  return buf;
}

}  // namespace

std::string format_time(double t_ns) {
  static const char* const kSuffix[] = {"ns", "us", "ms", "s"};
  return scaled(t_ns, kSuffix, 4, 1000.0);
}

std::string format_energy(double e_pj) {
  static const char* const kSuffix[] = {"pJ", "nJ", "uJ", "mJ", "J"};
  return scaled(e_pj, kSuffix, 5, 1000.0);
}

std::string format_bytes(std::uint64_t bytes) {
  static const char* const kSuffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return scaled(static_cast<double>(bytes), kSuffix, 5, 1024.0);
}

}  // namespace pinatubo::units
