// Minimal `key = value` configuration store.
//
// Benches and examples accept config overrides ("geometry.banks=16") without
// external dependencies.  Supports '#' comments, section-less flat keys,
// typed getters with defaults, and strict getters that throw on absence.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pinatubo {

class Config {
 public:
  Config() = default;

  /// Parses "key = value" lines; '#' starts a comment; blank lines ignored.
  static Config from_string(const std::string& text);
  /// Parses argv-style overrides: each entry "key=value".
  static Config from_args(const std::vector<std::string>& args);

  void set(const std::string& key, std::string value);
  bool contains(const std::string& key) const;

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Merge `other` over this config (other wins).
  void merge(const Config& other);

  const std::map<std::string, std::string>& entries() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace pinatubo
