#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace pinatubo {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  PIN_CHECK(!row.empty());
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::add_note(std::string note) { notes_.push_back(std::move(note)); }

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string Table::mult(double v, int digits) {
  return num(v, digits) + "x";
}

std::string Table::to_string() const {
  // Column widths over header + rows.
  std::size_t ncol = header_.size();
  for (const auto& r : rows_) ncol = std::max(ncol, r.size());
  std::vector<std::size_t> width(ncol, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_)
    if (!r.empty()) widen(r);

  std::size_t total = 0;
  for (auto w : width) total += w + 3;
  std::ostringstream os;
  auto rule = [&] { os << std::string(total > 1 ? total - 1 : 1, '-') << '\n'; };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << c << std::string(width[i] - c.size(), ' ');
      if (i + 1 < width.size()) os << " | ";
    }
    os << '\n';
  };

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.empty()) {
      rule();
    } else {
      emit(r);
    }
  }
  rule();
  for (const auto& n : notes_) os << "  note: " << n << '\n';
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

LogChart::LogChart(std::string title, std::string y_label)
    : title_(std::move(title)), y_label_(std::move(y_label)) {}

void LogChart::add_series(std::string name, std::vector<double> ys) {
  series_.push_back({std::move(name), std::move(ys)});
}

void LogChart::set_x_labels(std::vector<std::string> labels) {
  x_labels_ = std::move(labels);
}

void LogChart::add_hline(std::string name, double y) {
  hlines_.push_back({std::move(name), y});
}

std::string LogChart::to_string(std::size_t height) const {
  PIN_CHECK(height >= 4);
  double lo = 1e300, hi = -1e300;
  std::size_t npts = x_labels_.size();
  for (const auto& s : series_) {
    npts = std::max(npts, s.ys.size());
    for (double y : s.ys)
      if (y > 0) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
  }
  for (const auto& h : hlines_)
    if (h.y > 0) {
      lo = std::min(lo, h.y);
      hi = std::max(hi, h.y);
    }
  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (lo > hi) {
    os << "(no positive data)\n";
    return os.str();
  }
  double log_lo = std::floor(std::log10(lo));
  double log_hi = std::ceil(std::log10(hi));
  if (log_hi <= log_lo) log_hi = log_lo + 1;

  const std::size_t col_w = 6;  // per-point column width
  const std::size_t label_w = 10;
  auto row_of = [&](double y) {
    const double frac = (std::log10(y) - log_lo) / (log_hi - log_lo);
    auto r = static_cast<std::ptrdiff_t>(frac * static_cast<double>(height - 1) + 0.5);
    return std::clamp<std::ptrdiff_t>(r, 0, static_cast<std::ptrdiff_t>(height) - 1);
  };

  // Plot grid: rows from top (high) to bottom (low).
  std::vector<std::string> grid(height, std::string(npts * col_w, ' '));
  const char marks[] = {'*', 'o', '+', 'x', '@', '%', '&', '$', '#'};
  for (std::size_t si = 0; si < series_.size(); ++si) {
    char m = marks[si % sizeof marks];
    for (std::size_t i = 0; i < series_[si].ys.size(); ++i) {
      double y = series_[si].ys[i];
      if (y <= 0) continue;
      auto r = static_cast<std::size_t>(row_of(y));
      grid[height - 1 - r][i * col_w + col_w / 2] = m;
    }
  }
  for (const auto& h : hlines_) {
    if (h.y <= 0) continue;
    auto r = static_cast<std::size_t>(row_of(h.y));
    auto& line = grid[height - 1 - r];
    for (std::size_t c = 0; c < line.size(); ++c)
      if (line[c] == ' ') line[c] = '.';
  }

  for (std::size_t r = 0; r < height; ++r) {
    const double frac =
        static_cast<double>(height - 1 - r) / static_cast<double>(height - 1);
    const double log_y = log_lo + frac * (log_hi - log_lo);
    char lab[32];
    std::snprintf(lab, sizeof lab, "%9.1e", std::pow(10.0, log_y));
    os << lab << " |" << grid[r] << '\n';
  }
  os << std::string(label_w, ' ') << std::string(npts * col_w, '-') << '\n';
  // X labels, rotated into columns of col_w.
  os << std::string(label_w, ' ');
  for (std::size_t i = 0; i < npts; ++i) {
    std::string lab = i < x_labels_.size() ? x_labels_[i] : std::to_string(i);
    if (lab.size() > col_w - 1) lab.resize(col_w - 1);
    os << lab << std::string(col_w - lab.size(), ' ');
  }
  os << '\n';
  os << "  y: " << y_label_ << "; series:";
  for (std::size_t si = 0; si < series_.size(); ++si)
    os << ' ' << marks[si % sizeof marks] << '=' << series_[si].name;
  for (const auto& h : hlines_) os << "; line .=" << h.name;
  os << '\n';
  return os.str();
}

void LogChart::print(std::size_t height) const {
  std::cout << to_string(height) << std::flush;
}

}  // namespace pinatubo
