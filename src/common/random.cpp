#include "common/random.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace pinatubo {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64: seeds the xoshiro state from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix cannot produce four
  // zeros from any seed, but keep the guard for state-restoring callers.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  PIN_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PIN_CHECK_MSG(lo <= hi, "lo=" << lo << " hi=" << hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double a = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(a);
  has_cached_normal_ = true;
  return r * std::cos(a);
}

double Rng::normal(double mean, double sigma) {
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next() ^ 0xd2b74407b1ce6e93ull); }

namespace {

// Acklam's inverse normal CDF coefficients.
constexpr double kInvA[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
constexpr double kInvB[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
constexpr double kInvC[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
constexpr double kInvD[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};

/// Tail branch for p in (0, kInvNormalTailP): returns the (negative-side)
/// quantile magnitude's formula output for the lower tail.
inline double inv_normal_tail(double p) {
  const double q = std::sqrt(-2.0 * std::log(p));
  return (((((kInvC[0] * q + kInvC[1]) * q + kInvC[2]) * q + kInvC[3]) * q +
           kInvC[4]) *
              q +
          kInvC[5]) /
         ((((kInvD[0] * q + kInvD[1]) * q + kInvD[2]) * q + kInvD[3]) * q +
          1.0);
}

}  // namespace

double inv_normal_cdf(double u) {
  PIN_CHECK_MSG(u > 0.0 && u < 1.0, "u=" << u);
  constexpr double kTail = 0.02425;
  if (u < kTail) return inv_normal_tail(u);
  if (u > 1.0 - kTail) return -inv_normal_tail(1.0 - u);
  const double q = u - 0.5;
  const double r = q * q;
  const double num =
      (((((kInvA[0] * r + kInvA[1]) * r + kInvA[2]) * r + kInvA[3]) * r +
        kInvA[4]) *
           r +
       kInvA[5]) *
      q;
  const double den =
      ((((kInvB[0] * r + kInvB[1]) * r + kInvB[2]) * r + kInvB[3]) * r +
       kInvB[4]) *
          r +
      1.0;
  return num / den;
}

ZipfSampler::ZipfSampler(std::size_t n, double theta) {
  PIN_CHECK(n > 0);
  PIN_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace pinatubo
