// Physical unit conventions and helpers.
//
// All Pinatubo models agree on one set of base units so quantities can be
// combined without conversion bugs:
//   time    : nanoseconds   (double)
//   energy  : picojoules    (double)
//   power   : watts         (double)   [1 W == 1e3 pJ/ns]
//   area    : square micrometres (double)
//   charge  : femtocoulombs where needed
//   data    : bits / bytes  (std::uint64_t)
// Helper constants convert human-friendly magnitudes into base units.
#pragma once

#include <cstdint>
#include <string>

namespace pinatubo::units {

// ---- time (base: ns) -------------------------------------------------------
inline constexpr double ps = 1e-3;   ///< picosecond in ns
inline constexpr double ns = 1.0;    ///< nanosecond
inline constexpr double us = 1e3;    ///< microsecond in ns
inline constexpr double ms = 1e6;    ///< millisecond in ns
inline constexpr double s = 1e9;     ///< second in ns

// ---- energy (base: pJ) -----------------------------------------------------
inline constexpr double fJ = 1e-3;   ///< femtojoule in pJ
inline constexpr double pJ = 1.0;    ///< picojoule
inline constexpr double nJ = 1e3;    ///< nanojoule in pJ
inline constexpr double uJ = 1e6;    ///< microjoule in pJ
inline constexpr double mJ = 1e9;    ///< millijoule in pJ
inline constexpr double J = 1e12;    ///< joule in pJ

// ---- area (base: um^2) -----------------------------------------------------
inline constexpr double um2 = 1.0;       ///< square micrometre
inline constexpr double mm2 = 1e6;       ///< square millimetre in um^2

// ---- resistance / capacitance / voltage ------------------------------------
inline constexpr double ohm = 1.0;
inline constexpr double kohm = 1e3;
inline constexpr double Mohm = 1e6;
inline constexpr double fF = 1e-15;      ///< farads (capacitance kept in F)
inline constexpr double pF = 1e-12;
inline constexpr double volt = 1.0;

// ---- data ------------------------------------------------------------------
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * 1024;
inline constexpr std::uint64_t GiB = 1024ull * 1024 * 1024;

/// Energy (pJ) delivered by `watts` over `time_ns`: 1 W * 1 ns = 1000 pJ.
inline constexpr double power_to_energy_pj(double watts, double time_ns) {
  return watts * time_ns * 1e3;
}

/// Bandwidth in GB/s given bytes moved over `time_ns`.
inline constexpr double gbps(std::uint64_t bytes, double time_ns) {
  return time_ns <= 0.0 ? 0.0 : static_cast<double>(bytes) / time_ns;
}

/// Pretty time: picks ns/us/ms/s.
std::string format_time(double t_ns);
/// Pretty energy: picks pJ/nJ/uJ/mJ/J.
std::string format_energy(double e_pj);
/// Pretty byte count: picks B/KiB/MiB/GiB.
std::string format_bytes(std::uint64_t bytes);

}  // namespace pinatubo::units
