// Small statistics toolkit used by the evaluation harness:
// running accumulators, geometric means (the paper reports Gmean bars),
// percentiles, and histogram summaries for Monte-Carlo margin analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pinatubo {

/// Streaming accumulator: count, mean, variance (Welford), min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of strictly-positive values; throws on non-positive input.
double geomean(const std::vector<double>& xs);

/// p-th percentile (0..100) using linear interpolation; input copied/sorted.
double percentile(std::vector<double> xs, double p);

/// Fixed-bin histogram over [lo, hi]; out-of-range samples clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& bins() const { return counts_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Render as a terse multi-line ASCII sparkbar block.
  std::string to_string(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace pinatubo
