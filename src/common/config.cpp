#include "common/config.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace pinatubo {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    PIN_CHECK_MSG(eq != std::string::npos,
                  "config line " << lineno << " lacks '=': " << line);
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

Config Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const auto& a : args) {
    const auto eq = a.find('=');
    PIN_CHECK_MSG(eq != std::string::npos, "override lacks '=': " << a);
    cfg.set(trim(a.substr(0, eq)), trim(a.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, std::string value) {
  PIN_CHECK(!key.empty());
  map_[key] = std::move(value);
}

bool Config::contains(const std::string& key) const {
  return map_.count(key) != 0;
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(const std::string& key,
                           const std::string& def) const {
  return get(key).value_or(def);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  char* end = nullptr;
  errno = 0;
  const long long r = std::strtoll(v->c_str(), &end, 0);
  PIN_CHECK_MSG(end && *end == '\0' && end != v->c_str(),
                "bad int for " << key << ": " << *v);
  PIN_CHECK_MSG(errno != ERANGE,
                "int out of range for " << key << ": " << *v);
  return r;
}

std::uint64_t Config::get_u64(const std::string& key,
                              std::uint64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  // strtoull silently accepts a sign and wraps negatives mod 2^64; a
  // negative value is never a valid u64 config, so reject it outright.
  PIN_CHECK_MSG(v->find('-') == std::string::npos,
                "negative u64 for " << key << ": " << *v);
  char* end = nullptr;
  errno = 0;
  const unsigned long long r = std::strtoull(v->c_str(), &end, 0);
  PIN_CHECK_MSG(end && *end == '\0' && end != v->c_str(),
                "bad u64 for " << key << ": " << *v);
  PIN_CHECK_MSG(errno != ERANGE,
                "u64 out of range for " << key << ": " << *v);
  return r;
}

double Config::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  char* end = nullptr;
  errno = 0;
  const double r = std::strtod(v->c_str(), &end);
  PIN_CHECK_MSG(end && *end == '\0' && end != v->c_str(),
                "bad double for " << key << ": " << *v);
  // ERANGE covers overflow (+-HUGE_VAL) and underflow (denormal/0); only
  // overflow is a config error — underflow rounds to a usable value.
  PIN_CHECK_MSG(errno != ERANGE || std::abs(r) != HUGE_VAL,
                "double out of range for " << key << ": " << *v);
  return r;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  PIN_UNREACHABLE("bad bool for " + key + ": " + *v);
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.map_) map_[k] = v;
}

}  // namespace pinatubo
