// Leveled logging to stderr.  Quiet by default (benches print their own
// tables); raise the level for simulator tracing during debugging.
#pragma once

#include <sstream>
#include <string>

namespace pinatubo {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are suppressed.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace pinatubo

#define PIN_LOG(level, msg)                                          \
  do {                                                               \
    if (static_cast<int>(level) <=                                   \
        static_cast<int>(::pinatubo::log_level())) {                 \
      std::ostringstream pin_log_os_;                                \
      pin_log_os_ << msg; /* NOLINT */                               \
      ::pinatubo::detail::log_emit(level, pin_log_os_.str());        \
    }                                                                \
  } while (0)

#define PIN_WARN(msg) PIN_LOG(::pinatubo::LogLevel::kWarn, msg)
#define PIN_INFO(msg) PIN_LOG(::pinatubo::LogLevel::kInfo, msg)
#define PIN_DEBUG(msg) PIN_LOG(::pinatubo::LogLevel::kDebug, msg)
