// ASCII rendering of the paper's tables and figures.
//
// Every bench binary regenerates one table/figure; these helpers keep the
// output uniform: `Table` renders aligned columns, `LogChart` renders the
// log-scale scatter/line figures (Fig. 9-12 in the paper) as text so the
// series shapes (turning points, orderings) are visible in a terminal.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pinatubo {

/// Column-aligned ASCII table with an optional title and footnotes.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Sets the header row; call before adding rows.
  void set_header(std::vector<std::string> header);
  /// Appends a data row (cells need not match header length exactly).
  void add_row(std::vector<std::string> row);
  /// Appends a horizontal separator line.
  void add_separator();
  /// Appends a footnote printed under the table.
  void add_note(std::string note);

  /// Formats a double with `digits` significant digits.
  static std::string num(double v, int digits = 4);
  /// Formats as "12.3x" style multiplier.
  static std::string mult(double v, int digits = 3);

  std::string to_string() const;
  /// Prints to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
  std::vector<std::string> notes_;
};

/// Text rendering of a log-Y chart: series of (x, y) with y > 0 drawn on a
/// log10 grid.  X positions are the sample index (categorical), matching the
/// paper's figures which use categorical / log2 x-axes.
class LogChart {
 public:
  LogChart(std::string title, std::string y_label);

  /// Adds a named series; `ys` must align with the x labels.
  void add_series(std::string name, std::vector<double> ys);
  void set_x_labels(std::vector<std::string> labels);
  /// Adds a horizontal reference line (e.g. DDR bus bandwidth).
  void add_hline(std::string name, double y);

  std::string to_string(std::size_t height = 18) const;
  void print(std::size_t height = 18) const;

 private:
  std::string title_;
  std::string y_label_;
  std::vector<std::string> x_labels_;
  struct Series {
    std::string name;
    std::vector<double> ys;
  };
  std::vector<Series> series_;
  struct HLine {
    std::string name;
    double y;
  };
  std::vector<HLine> hlines_;
};

}  // namespace pinatubo
