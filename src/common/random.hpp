// Deterministic pseudo-random number generation for all simulators.
//
// A single engine (xoshiro256**) is used everywhere so experiments are
// reproducible bit-for-bit from a seed, independent of the standard library
// implementation.  Distribution helpers cover the needs of the models:
// uniform ints/reals, normal (for device variation), log-normal (resistance
// spreads), geometric-ish skew, and Zipf (database attribute values).
#pragma once

#include <cstdint>
#include <vector>

namespace pinatubo {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// re-implemented here; passes BigCrush and is far faster than mt19937_64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform_u64(std::uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [0, 1).
  double uniform();
  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box–Muller (cached second value).
  double normal();
  /// Normal with mean/sigma.
  double normal(double mean, double sigma);
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool chance(double p);
  /// Fork a statistically independent child stream (splitmix on the state).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.2e-9 over (0, 1)).  The counter-based sampling paths
/// use it so one uniform maps to one normal with no carried state — the
/// property that makes per-word RNG streams order- and thread-independent.
double inv_normal_cdf(double u);

/// Counter-based (stateless-mix, splittable) random stream.
///
/// Draw i of stream s under key k is `mix(base(k, s) + i * gamma)` — a pure
/// function of (key, stream, index).  Parallel workers each derive their own
/// stream id (e.g. the word index of a row) and produce identical values no
/// matter how work is scheduled, which is the backbone of the analog-sensing
/// determinism contract (same seed => bit-identical results for any thread
/// count).  The mix is splitmix64's finalizer; each stream passes the same
/// statistical bar as the sequential generator it replaces.
class CounterRng {
 public:
  /// Weyl increment between consecutive draw indices (golden-ratio gamma).
  static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ull;

  /// splitmix64 finalizer — the statistical mixer behind every draw.
  /// Defined inline so the batched sensing kernels' per-lane draw loops
  /// vectorize instead of making one opaque call per lane.
  static constexpr std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Stateless draw primitive: value of draw `index` for a stream `base`.
  static constexpr std::uint64_t draw(std::uint64_t base,
                                      std::uint64_t index) {
    return mix64(base + kGamma * (index + 1));
  }
  /// Derives the stream base for (key, stream).  Two mixing rounds
  /// decorrelate pairs that differ in only a few bits (adjacent word
  /// indices, consecutive epochs).
  static constexpr std::uint64_t stream_base(std::uint64_t key,
                                             std::uint64_t stream) {
    return mix64(mix64(key ^ 0xa0761d6478bd642full) + kGamma * stream);
  }

  CounterRng(std::uint64_t key, std::uint64_t stream = 0)
      : base_(stream_base(key, stream)) {}

  /// Sequential convenience interface over the counter.
  std::uint64_t next() { return draw(base_, counter_++); }
  /// Uniform real in the open interval (0, 1) — never exactly 0 or 1, so
  /// inv_normal_cdf stays finite.
  double uniform() { return to_unit(next()); }
  /// Standard normal via the inverse CDF (one draw per call, no cache).
  double normal() { return inv_normal_cdf(uniform()); }

  /// Child stream with an independent base (splittable construction).
  CounterRng split(std::uint64_t stream) const {
    CounterRng child(base_, stream);
    return child;
  }

  std::uint64_t base() const { return base_; }

  /// Maps a raw 64-bit draw into (0, 1).
  static double to_unit(std::uint64_t x) {
    return (static_cast<double>(x >> 11) + 0.5) * 0x1.0p-53;
  }

 private:
  std::uint64_t base_;
  std::uint64_t counter_ = 0;
};

/// Zipf-distributed integers in [0, n) with exponent `theta`; O(1) sampling
/// after O(n) table build.  Used by the bitmap-index workload generator.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pinatubo
