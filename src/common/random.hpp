// Deterministic pseudo-random number generation for all simulators.
//
// A single engine (xoshiro256**) is used everywhere so experiments are
// reproducible bit-for-bit from a seed, independent of the standard library
// implementation.  Distribution helpers cover the needs of the models:
// uniform ints/reals, normal (for device variation), log-normal (resistance
// spreads), geometric-ish skew, and Zipf (database attribute values).
#pragma once

#include <cstdint>
#include <vector>

namespace pinatubo {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// re-implemented here; passes BigCrush and is far faster than mt19937_64.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform_u64(std::uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform real in [0, 1).
  double uniform();
  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box–Muller (cached second value).
  double normal();
  /// Normal with mean/sigma.
  double normal(double mean, double sigma);
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool chance(double p);
  /// Fork a statistically independent child stream (splitmix on the state).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf-distributed integers in [0, n) with exponent `theta`; O(1) sampling
/// after O(n) table build.  Used by the bitmap-index workload generator.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pinatubo
