// Word-Aligned Hybrid (WAH) compressed bitmaps — the encoding the real
// FastBit [Wu, 2005] uses for its bitmap indexes.
//
// The paper's Database workload runs on FastBit-style indexes; production
// FastBit compresses them.  This implementation enables the ablation the
// paper's comparison implies but never shows: a CPU operating on
// compressed bitmaps (less memory traffic, more compute) against Pinatubo
// operating on uncompressed rows (PIM cannot exploit compression — the
// analog sensing needs the bits in place).
//
// Encoding (31-bit words inside 32-bit containers):
//   MSB = 0: literal word, 31 payload bits.
//   MSB = 1: fill word; bit 30 = fill bit value; low 30 bits = run length
//            in 31-bit groups.
// The logical size is tracked separately; the tail group may be partial.
#pragma once

#include <cstdint>
#include <vector>

#include "bitvec/bitvector.hpp"

namespace pinatubo {

class WahBitmap {
 public:
  WahBitmap() = default;

  /// Compresses a plain bit-vector.
  static WahBitmap compress(const BitVector& v);
  /// Decompresses back to a plain bit-vector.
  BitVector decompress() const;

  /// Builds a bitmap from an already-encoded word stream (I/O, tests).
  /// Validates that the words cover exactly `ceil(bits/31)` groups; the
  /// encoding may be non-canonical (e.g. adjacent fills of one value, or
  /// literal all-zero words) — every reader handles that.
  static WahBitmap from_words(std::uint64_t bits,
                              std::vector<std::uint32_t> words);

  std::uint64_t size_bits() const { return bits_; }
  /// Physical size of the compressed representation.
  std::size_t word_count() const { return words_.size(); }
  std::size_t size_bytes() const { return words_.size() * 4; }
  /// compressed bytes / uncompressed bytes (< 1 for sparse bitmaps).
  double compression_ratio() const;

  /// Population count straight off the compressed form.
  std::uint64_t popcount() const;

  /// Bitwise ops directly on the compressed forms (run-aware).
  static WahBitmap logical_and(const WahBitmap& a, const WahBitmap& b);
  static WahBitmap logical_or(const WahBitmap& a, const WahBitmap& b);
  static WahBitmap logical_xor(const WahBitmap& a, const WahBitmap& b);
  WahBitmap logical_not() const;

  bool operator==(const WahBitmap&) const = default;

  /// Raw encoded words (tests / traffic accounting).
  const std::vector<std::uint32_t>& words() const { return words_; }

  static constexpr unsigned kGroupBits = 31;
  static constexpr std::uint32_t kFillFlag = 0x80000000u;
  static constexpr std::uint32_t kFillValue = 0x40000000u;
  /// Longest run one fill word encodes (in 31-bit groups); longer runs
  /// split into consecutive fill words.
  static constexpr std::uint32_t kMaxRun = 0x3fffffffu;

  /// Streaming decoder over 31-bit groups.  `done()` turns true exactly
  /// when every encoded group has been consumed.
  class Decoder {
   public:
    explicit Decoder(const WahBitmap& w) : words_(&w.words_) {}
    /// Next 31-bit group (all-zero / all-one fills expanded).
    std::uint32_t next();
    bool done() const;

   private:
    const std::vector<std::uint32_t>* words_;
    std::size_t idx_ = 0;
    std::uint32_t run_left_ = 0;
    std::uint32_t run_value_ = 0;
  };

 private:
  /// Appends one literal 31-bit group, merging into fills when possible.
  void append_group(std::uint32_t literal);

  template <typename Fn>
  static WahBitmap combine(const WahBitmap& a, const WahBitmap& b, Fn&& fn);

  std::uint64_t bits_ = 0;
  std::vector<std::uint32_t> words_;
};

}  // namespace pinatubo
