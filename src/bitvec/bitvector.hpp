// Host-side bulk bit-vector substrate.
//
// This is the functional ground truth for every experiment: applications
// (bitmap BFS, bitmap-index queries, vector workloads) compute on BitVector,
// the SIMD baseline costs these exact kernels, and the PIM backends must
// produce bit-identical results through the simulated memory arrays.
//
// Representation: little-endian packing into 64-bit words; bit i lives in
// word i/64 at position i%64.  Trailing bits of the last word are kept zero
// (class invariant) so whole-word algorithms need no masking.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/random.hpp"

namespace pinatubo {

enum class BitOp : std::uint8_t { kOr, kAnd, kXor, kInv };

/// Short name ("OR", "AND", "XOR", "INV") for reports.
const char* to_string(BitOp op);

class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitVector() = default;
  /// `size` bits, all zero.
  explicit BitVector(std::size_t size);
  /// From a '0'/'1' string, index 0 first.
  static BitVector from_string(const std::string& bits);
  /// Random vector with P(bit=1) = density.
  static BitVector random(std::size_t size, double density, Rng& rng);
  /// From packed little-endian words (e.g. a MainMemory row view); reads
  /// ceil(size/64) words and masks the tail.
  static BitVector from_words(std::span<const Word> words, std::size_t size);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t word_count() const { return words_.size(); }
  std::span<const Word> words() const { return words_; }
  std::span<Word> words() { return words_; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool v = true);
  void clear(std::size_t i) { set(i, false); }
  void flip(std::size_t i);

  /// All bits to `v`.
  void fill(bool v);
  /// Grows/shrinks; new bits are zero.
  void resize(std::size_t size);

  // ---- bulk boolean ops (operands must have equal size) --------------------
  BitVector& operator|=(const BitVector& rhs);
  BitVector& operator&=(const BitVector& rhs);
  BitVector& operator^=(const BitVector& rhs);
  /// In-place bitwise complement (respects the trailing-zero invariant).
  void invert();

  friend BitVector operator|(BitVector a, const BitVector& b) { return a |= b; }
  friend BitVector operator&(BitVector a, const BitVector& b) { return a &= b; }
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }
  BitVector operator~() const;

  /// dst = fold of `srcs` under `op` (kInv folds as XOR-with-ones of first).
  /// For kOr/kAnd/kXor requires >= 1 operand; result sized like operands.
  static BitVector reduce(BitOp op, std::span<const BitVector* const> srcs);

  /// a AND NOT b, the bitmap-BFS "remove visited" kernel.
  static BitVector and_not(const BitVector& a, const BitVector& b);

  // ---- queries --------------------------------------------------------------
  std::size_t popcount() const;
  bool any() const;
  bool none() const { return !any(); }
  bool all() const;
  /// Index of first set bit or `size()` if none.
  std::size_t find_first() const;
  /// Index of first set bit > i, or `size()` if none.
  std::size_t find_next(std::size_t i) const;
  /// Calls `fn(index)` for each set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word bits = words_[w];
      while (bits != 0) {
        const auto b = static_cast<std::size_t>(__builtin_ctzll(bits));
        fn(w * kWordBits + b);
        bits &= bits - 1;
      }
    }
  }

  bool operator==(const BitVector& rhs) const = default;

  /// '0'/'1' string (index 0 first).  Intended for tests/small vectors.
  std::string to_string() const;

  /// Raw bytes (little-endian words), exactly ceil(size/8) bytes.
  std::vector<std::uint8_t> to_bytes() const;
  /// Rebuilds from bytes as produced by to_bytes.
  static BitVector from_bytes(std::span<const std::uint8_t> bytes,
                              std::size_t size);

 private:
  void mask_tail();

  std::size_t size_ = 0;
  std::vector<Word> words_;
};

/// Applies `op` to (a, b) elementwise; kInv ignores b and complements a.
BitVector apply(BitOp op, const BitVector& a, const BitVector& b);

/// Copies `len` bits from `src` starting at bit `src_off` into `dst`
/// starting at bit `dst_off`, whole words at a time (masked head/tail,
/// shifted interior).  Ranges must lie inside the word arrays; bits of
/// `dst` outside [dst_off, dst_off + len) are preserved.  Overlapping
/// same-array copies are not supported.
void copy_bits(std::span<BitVector::Word> dst, std::size_t dst_off,
               std::span<const BitVector::Word> src, std::size_t src_off,
               std::size_t len);

}  // namespace pinatubo
