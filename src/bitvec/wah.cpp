#include "bitvec/wah.hpp"

#include <bit>

#include "common/error.hpp"

namespace pinatubo {
namespace {

constexpr std::uint32_t kGroupMask = 0x7fffffffu;

}  // namespace

void WahBitmap::append_group(std::uint32_t literal) {
  literal &= kGroupMask;
  const bool all_zero = literal == 0;
  const bool all_one = literal == kGroupMask;
  if (all_zero || all_one) {
    const std::uint32_t fill =
        kFillFlag | (all_one ? kFillValue : 0u);
    if (!words_.empty() && (words_.back() & ~kMaxRun) == fill &&
        (words_.back() & kMaxRun) < kMaxRun) {
      ++words_.back();
      return;
    }
    words_.push_back(fill | 1u);
    return;
  }
  words_.push_back(literal);
}

WahBitmap WahBitmap::from_words(std::uint64_t bits,
                                std::vector<std::uint32_t> words) {
  std::uint64_t groups = 0;
  for (const std::uint32_t word : words) {
    if ((word & kFillFlag) != 0) {
      const std::uint32_t run = word & kMaxRun;
      PIN_CHECK_MSG(run > 0, "WAH fill word with zero run");
      groups += run;
    } else {
      ++groups;
    }
  }
  const std::uint64_t expected = (bits + kGroupBits - 1) / kGroupBits;
  PIN_CHECK_MSG(groups == expected, "WAH words cover " << groups
                                                       << " groups, expected "
                                                       << expected);
  WahBitmap w;
  w.bits_ = bits;
  w.words_ = std::move(words);
  return w;
}

WahBitmap WahBitmap::compress(const BitVector& v) {
  WahBitmap w;
  w.bits_ = v.size();
  const std::uint64_t groups = (v.size() + kGroupBits - 1) / kGroupBits;
  for (std::uint64_t g = 0; g < groups; ++g) {
    std::uint32_t lit = 0;
    const std::uint64_t base = g * kGroupBits;
    const std::uint64_t n =
        std::min<std::uint64_t>(kGroupBits, v.size() - base);
    for (std::uint64_t i = 0; i < n; ++i)
      if (v.get(base + i)) lit |= 1u << i;
    w.append_group(lit);
  }
  return w;
}

std::uint32_t WahBitmap::Decoder::next() {
  if (run_left_ > 0) {
    --run_left_;
    return run_value_;
  }
  PIN_CHECK_MSG(idx_ < words_->size(), "WAH decoder exhausted");
  const std::uint32_t word = (*words_)[idx_++];
  if ((word & kFillFlag) != 0) {
    run_left_ = (word & kMaxRun) - 1;
    run_value_ = (word & kFillValue) != 0 ? kGroupMask : 0u;
    return run_value_;
  }
  return word & kGroupMask;
}

bool WahBitmap::Decoder::done() const {
  return run_left_ == 0 && idx_ >= words_->size();
}

BitVector WahBitmap::decompress() const {
  BitVector v(bits_);
  Decoder dec(*this);
  for (std::uint64_t base = 0; base < bits_; base += kGroupBits) {
    const std::uint32_t lit = dec.next();
    const std::uint64_t n = std::min<std::uint64_t>(kGroupBits, bits_ - base);
    for (std::uint64_t i = 0; i < n; ++i)
      if ((lit >> i) & 1u) v.set(base + i);
  }
  return v;
}

double WahBitmap::compression_ratio() const {
  if (bits_ == 0) return 1.0;
  return static_cast<double>(size_bytes()) /
         (static_cast<double>(bits_ + 7) / 8.0);
}

std::uint64_t WahBitmap::popcount() const {
  std::uint64_t count = 0;
  std::uint64_t groups_seen = 0;
  const std::uint64_t groups = (bits_ + kGroupBits - 1) / kGroupBits;
  const std::uint64_t tail_bits =
      bits_ - (groups > 0 ? (groups - 1) * kGroupBits : 0);
  for (const std::uint32_t word : words_) {
    if ((word & kFillFlag) != 0) {
      const std::uint64_t run = word & kMaxRun;
      if ((word & kFillValue) != 0) {
        count += run * kGroupBits;
        // Correct a one-fill covering the (possibly partial) tail group.
        if (groups_seen + run == groups && tail_bits < kGroupBits)
          count -= kGroupBits - tail_bits;
      }
      groups_seen += run;
    } else {
      std::uint32_t lit = word & kGroupMask;
      ++groups_seen;
      if (groups_seen == groups && tail_bits < kGroupBits)
        lit &= (1u << tail_bits) - 1;
      count += static_cast<std::uint64_t>(std::popcount(lit));
    }
  }
  return count;
}

template <typename Fn>
WahBitmap WahBitmap::combine(const WahBitmap& a, const WahBitmap& b,
                             Fn&& fn) {
  PIN_CHECK_MSG(a.bits_ == b.bits_,
                "WAH size mismatch: " << a.bits_ << " vs " << b.bits_);
  WahBitmap out;
  out.bits_ = a.bits_;
  Decoder da(a), db(b);
  const std::uint64_t groups = (a.bits_ + kGroupBits - 1) / kGroupBits;
  for (std::uint64_t g = 0; g < groups; ++g)
    out.append_group(fn(da.next(), db.next()));
  return out;
}

WahBitmap WahBitmap::logical_and(const WahBitmap& a, const WahBitmap& b) {
  return combine(a, b,
                 [](std::uint32_t x, std::uint32_t y) { return x & y; });
}

WahBitmap WahBitmap::logical_or(const WahBitmap& a, const WahBitmap& b) {
  return combine(a, b,
                 [](std::uint32_t x, std::uint32_t y) { return x | y; });
}

WahBitmap WahBitmap::logical_xor(const WahBitmap& a, const WahBitmap& b) {
  return combine(a, b,
                 [](std::uint32_t x, std::uint32_t y) { return x ^ y; });
}

WahBitmap WahBitmap::logical_not() const {
  WahBitmap out;
  out.bits_ = bits_;
  Decoder dec(*this);
  const std::uint64_t groups = (bits_ + kGroupBits - 1) / kGroupBits;
  for (std::uint64_t g = 0; g < groups; ++g)
    out.append_group(~dec.next() & kGroupMask);
  return out;
}

}  // namespace pinatubo
