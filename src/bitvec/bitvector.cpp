#include "bitvec/bitvector.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace pinatubo {

const char* to_string(BitOp op) {
  switch (op) {
    case BitOp::kOr:
      return "OR";
    case BitOp::kAnd:
      return "AND";
    case BitOp::kXor:
      return "XOR";
    case BitOp::kInv:
      return "INV";
  }
  return "?";
}

BitVector::BitVector(std::size_t size)
    : size_(size), words_((size + kWordBits - 1) / kWordBits, 0) {}

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    PIN_CHECK_MSG(bits[i] == '0' || bits[i] == '1',
                  "bad bit char '" << bits[i] << "' at " << i);
    if (bits[i] == '1') v.set(i);
  }
  return v;
}

BitVector BitVector::random(std::size_t size, double density, Rng& rng) {
  PIN_CHECK(density >= 0.0 && density <= 1.0);
  BitVector v(size);
  if (density == 0.5) {
    // Fast path: raw random words.
    for (auto& w : v.words_) w = rng.next();
  } else {
    // Per-word threshold draws assembled in a register.  The draw order is
    // one uniform per bit, index-ascending — the same sequence the bitwise
    // chance() loop consumed — so outputs are bit-identical across versions.
    std::size_t bit = 0;
    for (auto& w : v.words_) {
      const std::size_t n = std::min(size - bit, kWordBits);
      Word word = 0;
      for (std::size_t b = 0; b < n; ++b)
        word |= static_cast<Word>(rng.uniform() < density) << b;
      w = word;
      bit += n;
    }
  }
  v.mask_tail();
  return v;
}

BitVector BitVector::from_words(std::span<const Word> words, std::size_t size) {
  const std::size_t need = (size + kWordBits - 1) / kWordBits;
  PIN_CHECK_MSG(words.size() >= need,
                words.size() << " words for " << size << " bits");
  BitVector v(size);
  std::copy_n(words.begin(), need, v.words_.begin());
  v.mask_tail();
  return v;
}

bool BitVector::get(std::size_t i) const {
  PIN_CHECK_MSG(i < size_, "bit index " << i << " >= size " << size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVector::set(std::size_t i, bool v) {
  PIN_CHECK_MSG(i < size_, "bit index " << i << " >= size " << size_);
  const Word mask = Word{1} << (i % kWordBits);
  if (v)
    words_[i / kWordBits] |= mask;
  else
    words_[i / kWordBits] &= ~mask;
}

void BitVector::flip(std::size_t i) {
  PIN_CHECK_MSG(i < size_, "bit index " << i << " >= size " << size_);
  words_[i / kWordBits] ^= Word{1} << (i % kWordBits);
}

void BitVector::fill(bool v) {
  const Word pattern = v ? ~Word{0} : Word{0};
  for (auto& w : words_) w = pattern;
  mask_tail();
}

void BitVector::resize(std::size_t size) {
  size_ = size;
  words_.resize((size + kWordBits - 1) / kWordBits, 0);
  mask_tail();
}

BitVector& BitVector::operator|=(const BitVector& rhs) {
  PIN_CHECK_MSG(size_ == rhs.size_, size_ << " vs " << rhs.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& rhs) {
  PIN_CHECK_MSG(size_ == rhs.size_, size_ << " vs " << rhs.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& rhs) {
  PIN_CHECK_MSG(size_ == rhs.size_, size_ << " vs " << rhs.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= rhs.words_[i];
  return *this;
}

void BitVector::invert() {
  for (auto& w : words_) w = ~w;
  mask_tail();
}

BitVector BitVector::operator~() const {
  BitVector v = *this;
  v.invert();
  return v;
}

BitVector BitVector::reduce(BitOp op, std::span<const BitVector* const> srcs) {
  PIN_CHECK(!srcs.empty());
  for (const auto* s : srcs) PIN_CHECK(s != nullptr);
  BitVector acc = *srcs[0];
  if (op == BitOp::kInv) {
    PIN_CHECK_MSG(srcs.size() == 1, "INV takes exactly one operand");
    acc.invert();
    return acc;
  }
  for (std::size_t i = 1; i < srcs.size(); ++i) {
    switch (op) {
      case BitOp::kOr:
        acc |= *srcs[i];
        break;
      case BitOp::kAnd:
        acc &= *srcs[i];
        break;
      case BitOp::kXor:
        acc ^= *srcs[i];
        break;
      case BitOp::kInv:
        PIN_UNREACHABLE("handled above");
    }
  }
  return acc;
}

BitVector BitVector::and_not(const BitVector& a, const BitVector& b) {
  PIN_CHECK_MSG(a.size_ == b.size_, a.size_ << " vs " << b.size_);
  BitVector v = a;
  for (std::size_t i = 0; i < v.words_.size(); ++i)
    v.words_[i] &= ~b.words_[i];
  v.mask_tail();
  return v;
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVector::any() const {
  for (auto w : words_)
    if (w != 0) return true;
  return false;
}

bool BitVector::all() const {
  if (size_ == 0) return true;
  const std::size_t full = size_ / kWordBits;
  for (std::size_t i = 0; i < full; ++i)
    if (words_[i] != ~Word{0}) return false;
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0) {
    const Word mask = (Word{1} << tail) - 1;
    if ((words_.back() & mask) != mask) return false;
  }
  return true;
}

std::size_t BitVector::find_first() const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] != 0)
      return w * kWordBits + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
  return size_;
}

std::size_t BitVector::find_next(std::size_t i) const {
  if (i + 1 >= size_) return size_;
  std::size_t w = (i + 1) / kWordBits;
  const std::size_t off = (i + 1) % kWordBits;
  Word bits = words_[w] & (~Word{0} << off);
  while (true) {
    if (bits != 0)
      return w * kWordBits + static_cast<std::size_t>(__builtin_ctzll(bits));
    if (++w >= words_.size()) return size_;
    bits = words_[w];
  }
}

std::string BitVector::to_string() const {
  std::string s(size_, '0');
  for_each_set([&](std::size_t i) { s[i] = '1'; });
  return s;
}

std::vector<std::uint8_t> BitVector::to_bytes() const {
  std::vector<std::uint8_t> out((size_ + 7) / 8, 0);
  for (std::size_t b = 0; b < out.size(); ++b) {
    const std::size_t w = b / 8;
    const std::size_t sh = (b % 8) * 8;
    out[b] = static_cast<std::uint8_t>(words_[w] >> sh);
  }
  return out;
}

BitVector BitVector::from_bytes(std::span<const std::uint8_t> bytes,
                                std::size_t size) {
  PIN_CHECK_MSG(bytes.size() >= (size + 7) / 8,
                bytes.size() << " bytes for " << size << " bits");
  BitVector v(size);
  for (std::size_t b = 0; b < (size + 7) / 8; ++b) {
    const std::size_t w = b / 8;
    const std::size_t sh = (b % 8) * 8;
    v.words_[w] |= static_cast<Word>(bytes[b]) << sh;
  }
  v.mask_tail();
  return v;
}

void BitVector::mask_tail() {
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty())
    words_.back() &= (Word{1} << tail) - 1;
}

void copy_bits(std::span<BitVector::Word> dst, std::size_t dst_off,
               std::span<const BitVector::Word> src, std::size_t src_off,
               std::size_t len) {
  using Word = BitVector::Word;
  constexpr std::size_t kW = BitVector::kWordBits;
  if (len == 0) return;
  PIN_CHECK_MSG(dst_off + len <= dst.size() * kW,
                "dst range " << dst_off << "+" << len << " exceeds "
                             << dst.size() * kW << " bits");
  PIN_CHECK_MSG(src_off + len <= src.size() * kW,
                "src range " << src_off << "+" << len << " exceeds "
                             << src.size() * kW << " bits");
  // 64 source bits starting at bit p, stitched from up to two words;
  // positions past the array read as zero (masked off by the caller loop).
  auto read64 = [&src](std::size_t p) -> Word {
    const std::size_t w = p / kW, sh = p % kW;
    const Word lo = w < src.size() ? src[w] : 0;
    if (sh == 0) return lo;
    const Word hi = (w + 1) < src.size() ? src[w + 1] : 0;
    return (lo >> sh) | (hi << (kW - sh));
  };
  std::size_t sp = src_off, dp = dst_off, remaining = len;
  while (remaining > 0) {
    const std::size_t dw = dp / kW;
    const std::size_t doff = dp % kW;
    const std::size_t take = std::min(remaining, kW - doff);
    const Word keep = take == kW ? ~Word{0} : (Word{1} << take) - 1;
    dst[dw] = (dst[dw] & ~(keep << doff)) | ((read64(sp) & keep) << doff);
    dp += take;
    sp += take;
    remaining -= take;
  }
}

BitVector apply(BitOp op, const BitVector& a, const BitVector& b) {
  switch (op) {
    case BitOp::kOr:
      return a | b;
    case BitOp::kAnd:
      return a & b;
    case BitOp::kXor:
      return a ^ b;
    case BitOp::kInv:
      return ~a;
  }
  PIN_UNREACHABLE("bad BitOp");
}

}  // namespace pinatubo
