#include "pinatubo/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace pinatubo::core {

const char* to_string(StepKind k) {
  switch (k) {
    case StepKind::kIntraSub:
      return "intra-sub";
    case StepKind::kInterSub:
      return "inter-sub";
    case StepKind::kInterBank:
      return "inter-bank";
    case StepKind::kHostRead:
      return "host-read";
  }
  return "?";
}

std::string OpPlan::summary() const {
  std::ostringstream os;
  os << pinatubo::to_string(op) << '/' << bits << "b:";
  os << " intra=" << count(StepKind::kIntraSub)
     << " inter-sub=" << count(StepKind::kInterSub)
     << " inter-bank=" << count(StepKind::kInterBank);
  return os.str();
}

OpScheduler::OpScheduler(const mem::Geometry& geo, const SchedulerConfig& cfg)
    : geo_(geo), cfg_(cfg) {
  geo_.validate();
  PIN_CHECK(cfg.max_rows >= 2);
}

unsigned OpScheduler::effective_max_rows(BitOp op) const {
  const auto& cell = nvm::cell_params(cfg_.tech);
  switch (op) {
    case BitOp::kOr:
      return std::min(cfg_.max_rows, csa_.max_rows(BitOp::kOr, cell));
    case BitOp::kAnd:
    case BitOp::kXor:
      return 2;
    case BitOp::kInv:
      return 1;
  }
  PIN_UNREACHABLE("bad BitOp");
}

OpPlan OpScheduler::plan(BitOp op, const std::vector<Placement>& srcs,
                         const Placement& dst,
                         bool host_reads_result) const {
  PIN_CHECK(!srcs.empty());
  if (op == BitOp::kInv)
    PIN_CHECK_MSG(srcs.size() == 1, "INV takes one operand");
  else
    PIN_CHECK_MSG(srcs.size() >= 2, "binary ops need >= 2 operands");
  for (const auto& s : srcs) {
    PIN_CHECK_MSG(s.channel == dst.channel,
                  "cross-channel operands are not supported by the hardware");
    PIN_CHECK_MSG(s.bits == dst.bits, "operand lengths must match");
  }

  OpPlan out;
  out.op = op;
  out.bits = dst.bits;

  // Can this be an intra-subarray multi-row activation?  The technology's
  // sensing margin must support the op's minimal activation shape at all —
  // e.g. 2-row AND on STT-MRAM (boundary ratio 1.43) is below the CSA's
  // reliable threshold, so AND demotes to the digital buffer path there.
  const auto& cell = nvm::cell_params(cfg_.tech);
  bool intra =
      op == BitOp::kInv || csa_.supports(op, 2, cell);
  for (const auto& s : srcs) {
    intra &= s.same_subarray(dst) && s.column_aligned(dst) &&
             s.groups == dst.groups;
  }
  // Source rows must be pairwise distinct (one wordline per operand).
  for (std::size_t i = 0; intra && i < srcs.size(); ++i)
    for (std::size_t j = i + 1; j < srcs.size(); ++j)
      if (srcs[i].rows_overlap(srcs[j])) intra = false;

  if (intra) {
    plan_intra(out, op, srcs, dst);
  } else {
    // Same bank cluster -> global row buffer; otherwise IO buffer + bus.
    bool same_cluster = true;
    for (const auto& s : srcs) same_cluster &= s.same_rank(dst);
    plan_buffer(out, op,
                same_cluster ? StepKind::kInterSub : StepKind::kInterBank,
                srcs, dst);
  }

  if (host_reads_result) {
    PlanStep rd;
    rd.kind = StepKind::kHostRead;
    rd.op = op;
    rd.rows = 1;
    rd.bits = dst.bits;
    rd.col_steps = dst.stripes;
    rd.writeback = false;
    rd.channel = dst.channel;
    rd.rank = dst.rank;
    rd.subarray = dst.subarray;
    rd.row = dst.first_row;
    rd.col_start = dst.col_stripe;
    // One operand row per group so the engine sees the data dependency on
    // every group's result (groups rotate across ranks).  reads[0] is the
    // group-0 row, which is what the lowered RD bursts address.
    rd.reads.reserve(dst.groups);
    for (std::uint64_t g = 0; g < dst.groups; ++g)
      rd.reads.push_back(mem::RowAddr{
          dst.channel, dst.group_rank(g, geo_.ranks_per_channel), 0,
          dst.subarray, dst.group_row(g, geo_.ranks_per_channel)});
    out.steps.push_back(rd);
  }
  return out;
}

void OpScheduler::plan_intra(OpPlan& out, BitOp op,
                             const std::vector<Placement>& srcs,
                             const Placement& dst) const {
  const unsigned max_rows = effective_max_rows(op);
  const unsigned ranks = geo_.ranks_per_channel;
  const std::uint64_t group_bits = geo_.row_group_bits();
  const std::uint64_t step_bits = geo_.sense_step_bits();

  // In-place operands (aliasing dst) must be consumed by the FIRST
  // activation — later chain steps reuse the dst row as the accumulator.
  // The chained ops are commutative, so reordering is sound.
  std::vector<Placement> ordered = srcs;
  std::stable_partition(ordered.begin(), ordered.end(),
                        [&](const Placement& p) {
                          return p.same_subarray(dst) &&
                                 p.first_row == dst.first_row &&
                                 p.column_aligned(dst);
                        });

  for (std::uint64_t g = 0; g < dst.groups; ++g) {
    const std::uint64_t bits_g =
        std::min(dst.bits - g * group_bits,
                 dst.groups == 1 ? dst.bits : group_bits);
    const auto cols =
        static_cast<unsigned>((bits_g + step_bits - 1) / step_bits);
    auto addr_of = [&](const Placement& p) {
      return mem::RowAddr{p.channel, p.group_rank(g, ranks), 0, p.subarray,
                          p.group_row(g, ranks)};
    };
    auto make_step = [&](std::vector<mem::RowAddr> reads) {
      PlanStep st;
      st.kind = StepKind::kIntraSub;
      st.op = op;
      st.rows = static_cast<unsigned>(reads.size());
      st.col_steps = cols;
      st.bits = bits_g;
      st.writeback = true;
      st.channel = dst.channel;
      st.rank = dst.group_rank(g, ranks);
      st.subarray = dst.subarray;
      st.row = dst.group_row(g, ranks);
      st.col_start = dst.col_stripe;
      st.group = g;
      st.reads = std::move(reads);
      st.read_cols.assign(st.reads.size(), dst.col_stripe);  // aligned
      st.write = addr_of(dst);
      return st;
    };
    if (op == BitOp::kInv) {
      out.steps.push_back(make_step({addr_of(ordered[0])}));
      continue;
    }
    const auto n = static_cast<unsigned>(ordered.size());
    unsigned consumed = std::min(max_rows, n);
    std::vector<mem::RowAddr> reads;
    for (unsigned i = 0; i < consumed; ++i)
      reads.push_back(addr_of(ordered[i]));
    out.steps.push_back(make_step(std::move(reads)));
    while (consumed < n) {
      // Accumulator row (dst) re-activated with the next operand batch.
      const unsigned k = std::min(max_rows, n - consumed + 1);
      std::vector<mem::RowAddr> chain{addr_of(dst)};
      for (unsigned i = 0; i + 1 < k; ++i)
        chain.push_back(addr_of(ordered[consumed + i]));
      out.steps.push_back(make_step(std::move(chain)));
      consumed += k - 1;
    }
  }
}

void OpScheduler::plan_buffer(OpPlan& out, BitOp op, StepKind kind,
                              const std::vector<Placement>& srcs,
                              const Placement& dst) const {
  const std::uint64_t group_bits = geo_.row_group_bits();
  const std::uint64_t step_bits = geo_.sense_step_bits();
  const std::uint64_t groups = dst.groups;

  for (std::uint64_t g = 0; g < groups; ++g) {
    const std::uint64_t bits_g = std::min(
        dst.bits - g * group_bits, groups == 1 ? dst.bits : group_bits);
    const auto cols =
        static_cast<unsigned>((bits_g + step_bits - 1) / step_bits);
    const unsigned ranks = geo_.ranks_per_channel;
    auto addr_of = [&](const Placement& p) {
      return mem::RowAddr{p.channel, p.group_rank(g, ranks), 0, p.subarray,
                          p.group_row(g, ranks)};
    };
    const std::size_t steps =
        op == BitOp::kInv ? 1 : srcs.size() - 1;
    for (std::size_t i = 0; i < steps; ++i) {
      PlanStep st;
      st.kind = kind;
      st.op = op;
      st.rows = op == BitOp::kInv ? 1 : 2;
      st.col_steps = cols;
      st.bits = bits_g;
      st.writeback = true;
      st.channel = dst.channel;
      st.rank = dst.group_rank(g, ranks);
      st.subarray = dst.subarray;
      st.row = dst.group_row(g, ranks);
      st.col_start = dst.col_stripe;
      st.group = g;
      // Fold: first step combines the first two operands; later steps
      // combine the accumulator (at dst) with the next operand.
      const Placement& operand = srcs[std::min(i + 1, srcs.size() - 1)];
      if (op == BitOp::kInv) {
        st.reads = {addr_of(srcs[0])};
        st.read_cols = {srcs[0].col_stripe};
      } else if (i == 0) {
        st.reads = {addr_of(srcs[0]), addr_of(operand)};
        st.read_cols = {srcs[0].col_stripe, operand.col_stripe};
      } else {
        st.reads = {addr_of(dst), addr_of(operand)};
        st.read_cols = {dst.col_stripe, operand.col_stripe};
      }
      st.write = addr_of(dst);
      st.crosses_rank = !operand.same_rank(dst);
      out.steps.push_back(st);
    }
  }
}

}  // namespace pinatubo::core
