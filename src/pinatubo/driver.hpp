// The Pinatubo driver library — the programmer-facing API of paper Fig. 4:
//
//   pim_malloc(bits)                 -> Handle
//   pim_op(op, {srcs...}, dst)       -> executes in memory
//   pim_begin() / pim_barrier()      -> batch window: enqueued ops are
//                                      priced together by the execution
//                                      engine (independent steps overlap)
//
// plus data movement (pim_write / pim_read) and teardown (pim_free).
//
// This runtime is FUNCTIONAL and COSTED at once: every pim_op
//   1. is lowered by the scheduler into an execution plan,
//   2. is executed against the simulated NVM array *through the sensing
//      models* (multi-row activation really combines the stored rows), and
//   3. accrues the plan's time/energy and optionally the lowered DDR
//      command stream.
// Examples use it as the library a real system would ship; tests assert
// both the results and the op classification.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "mem/mainmem.hpp"
#include "obs/trace.hpp"
#include "pinatubo/allocator.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/engine.hpp"
#include "pinatubo/scheduler.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/recovery.hpp"
#include "sim/cpu_model.hpp"
#include "verify/verifier.hpp"

namespace pinatubo::core {

class PimRuntime {
 public:
  using Handle = std::uint64_t;

  struct Options {
    nvm::Tech tech = nvm::Tech::kPcm;
    mem::SenseFidelity fidelity = mem::SenseFidelity::kNominal;
    AllocPolicy policy = AllocPolicy::kPimAware;
    unsigned max_rows = 128;        ///< Pinatubo-2 vs Pinatubo-128
    double result_density = 0.5;    ///< SET/RESET mix for write energy
    bool record_commands = false;   ///< keep the lowered DDR stream
    bool serial_execution = false;  ///< price ops as the serial step sum
    std::uint64_t seed = 1;
    /// Fault injection / detection / recovery (DESIGN.md §10).  Defaults
    /// to everything off — the runtime behaves exactly as without it.
    reliability::Policy reliability;
  };

  /// Per-step-class share of the accumulated cost.
  struct ClassBreakdown {
    double time_ns = 0.0;    ///< summed (serial) step time of the class
    double energy_pj = 0.0;
    std::uint64_t steps = 0;
  };

  struct Stats {
    std::uint64_t ops = 0;
    std::uint64_t intra_steps = 0;
    std::uint64_t inter_sub_steps = 0;
    std::uint64_t inter_bank_steps = 0;
    std::uint64_t host_reads = 0;
    std::uint64_t batches = 0;     ///< engine flushes (sync op = batch of 1)
    std::uint64_t bus_bytes = 0;   ///< data moved over the DDR bus
    double serial_time_ns = 0.0;   ///< no-overlap baseline for cost().time_ns
    /// Breakdown by step class, indexed by `step_index(StepKind)`.
    ClassBreakdown by_class[kStepKindCount] = {};

    // ---- reliability (mirror of the recovery manager's counters) ---------
    std::uint64_t detected_faults = 0;  ///< verify mismatches (sense + write)
    std::uint64_t retries = 0;          ///< extra sense attempts
    std::uint64_t deescalations = 0;    ///< activation splits (128 -> 2x64..)
    std::uint64_t remaps = 0;           ///< rank-rows moved to spares
    std::uint64_t fallbacks = 0;        ///< ops completed on the CPU path
    double fallback_time_ns = 0.0;      ///< CPU-path share of cost().time_ns
    double fallback_energy_pj = 0.0;
  };

  explicit PimRuntime(const mem::Geometry& geo = {});
  PimRuntime(const mem::Geometry& geo, const Options& opts);

  /// Allocates a bit-vector in PIM-friendly rows.
  Handle pim_malloc(std::uint64_t bits);
  void pim_free(Handle h);

  /// Host -> memory data load (not counted in op cost, like the paper).
  void pim_write(Handle h, const BitVector& data);
  /// Memory -> host read of a whole vector.
  BitVector pim_read(Handle h) const;

  /// Executes `dst = op(srcs...)` in memory.  `host_reads_result` adds the
  /// result's bus transfer to the cost (e.g. the CPU popcounts it next).
  void pim_op(BitOp op, const std::vector<Handle>& srcs, Handle dst,
              bool host_reads_result = false);

  /// Row-granular copy (`dst = src`), the RowClone-style primitive the WD
  /// bypass enables: sense the source row, feed the SAs straight to the
  /// destination's write drivers.  Costs one 1-row intra step when the
  /// vectors are co-located, a buffer move otherwise.
  void pim_copy(Handle src, Handle dst);

  /// Opens a batch window.  Subsequent pim_op / pim_copy calls still
  /// execute functionally right away (program order, so interleaving
  /// pim_write / pim_read with enqueued ops keeps its meaning), but their
  /// plans accumulate and are priced together at pim_barrier().
  void pim_begin();
  /// Flushes the open batch through the execution engine: builds the
  /// read/write dependency graph over all enqueued plans, overlaps
  /// independent steps across ranks/channels, accrues the schedule's
  /// makespan + energy, and (when record_commands) appends the command
  /// streams interleaved in schedule order.
  void pim_barrier();
  /// Whether a pim_begin() window is currently open.
  bool in_batch() const { return in_batch_; }

  /// Convenience batched submission: equivalent to pim_begin(), the ops
  /// in order, pim_barrier().  Functionally identical to issuing the ops
  /// synchronously.
  struct BatchOp {
    BitOp op;
    std::vector<Handle> srcs;
    Handle dst;
  };
  void pim_op_batch(const std::vector<BatchOp>& ops);

  const Placement& placement(Handle h) const;
  std::uint64_t vector_bits(Handle h) const { return placement(h).bits; }

  /// Accumulated cost of every pim_op so far.
  const mem::Cost& cost() const { return cost_; }
  const Stats& stats() const { return stats_; }
  const std::vector<mem::Command>& commands() const { return commands_; }
  void reset_cost();

  /// Attaches an observability session (nullptr detaches).  While attached
  /// and enabled, every priced batch lands in the session as spans on
  /// per-rank / per-bus tracks tiled end-to-end (batch i starts where the
  /// accrued cost stood), and the `pim.*` counters mirror Stats — so the
  /// trace reconciles exactly: per-class span sums equal
  /// `stats().by_class[k].time_ns` and the max span end equals
  /// `cost().time_ns`.  Costs one branch per batch when disabled.
  void set_trace(obs::TraceSession* session) { trace_ = session; }
  obs::TraceSession* trace() const { return trace_; }

  const mem::Geometry& geometry() const { return mem_.geometry(); }
  const Options& options() const { return opts_; }
  mem::MainMemory& memory() { return mem_; }

  /// The attached fault model (nullptr when fault.enabled is off).
  reliability::FaultModel* fault_model() { return fault_model_.get(); }
  /// The recovery manager (nullptr when no verify mode is configured).
  reliability::RecoveryManager* recovery() { return relmgr_.get(); }
  /// The static verifier (nullptr when `reliability.verify.level` is off).
  /// At kAlways every submitted plan passes the protocol pass and every
  /// batch the full three-pass check; kPost skips the per-submit check.  A
  /// violation throws `Error` with the verifier's diagnostics.
  verify::Verifier* verifier() { return verifier_.get(); }

  /// Tears the runtime down to a fresh campaign: every vector freed, the
  /// memory array / wear ledger / remap table / sense epoch cleared, the
  /// fault model's dynamic state and the reliability counters reset, cost
  /// and stats zeroed.  The fault model's static stuck-at map survives
  /// (same chip, new campaign) — back-to-back campaigns in one process are
  /// independent.
  void reset_campaign();

 private:
  /// Scatters a logical vector into its placement's rows / column window.
  void scatter(const Placement& p, const BitVector& v);
  /// Gathers the logical vector back out of the rows.
  BitVector gather(const Placement& p) const;
  /// Bit-position mapping: logical bit q of group g -> (bank, row bit).
  struct RowBit {
    unsigned bank;
    std::size_t bit;
  };
  RowBit locate(const Placement& p, std::uint64_t in_group_offset) const;
  /// Executes an intra-subarray chained sense per the plan semantics.
  void execute_intra(BitOp op, const std::vector<Placement>& srcs,
                     const Placement& dst, unsigned max_rows);
  /// Routes a write through the recovery manager when one is attached
  /// (verify-after-write + remap); plain store otherwise.
  void store_row(const mem::RowAddr& addr, const BitVector& data);
  void store_window(const mem::RowAddr& addr, std::size_t bit_offset,
                    const BitVector& data);
  /// Reliable variant of execute_intra: every activation runs the
  /// verify/retry/de-escalate ladder and appends the steps it actually
  /// took (failed attempts included) to `executed`.  Returns false when
  /// the ladder is exhausted and the op must fall back to the CPU.
  bool execute_intra_reliable(BitOp op, const std::vector<Placement>& srcs,
                              const Placement& dst, unsigned max_rows,
                              OpPlan& executed);
  /// One logical activation (all banks, lock-step) under the ladder.
  bool reliable_activation(BitOp op, const std::vector<Placement>& operands,
                           const Placement& dst, std::uint64_t grp,
                           OpPlan& executed);
  /// Final rung: compute the op on the (priced) CPU path, never wrong.
  void fallback_op(BitOp op, const std::vector<Placement>& src_p,
                   const Placement& dst_p,
                   const std::vector<std::optional<BitVector>>& snapshots,
                   const std::vector<Handle>& srcs, Handle dst,
                   bool host_reads_result);
  /// Mirrors the recovery counters into Stats and the pim.* trace counters.
  void sync_reliability();
  /// Counts the plan into stats and routes it: enqueue when a batch is
  /// open, price as a batch-of-one otherwise.
  void submit(OpPlan plan);
  /// Prices a batch through the engine and accrues cost/stats/commands.
  void flush(const std::vector<OpPlan>& plans);

  Options opts_;
  mem::MainMemory mem_;
  RowAllocator alloc_;
  OpScheduler sched_;
  PinatuboCostModel cost_model_;
  ExecutionEngine engine_;
  std::unordered_map<Handle, Placement> vectors_;
  Handle next_handle_ = 1;
  mem::Cost cost_;
  Stats stats_;
  std::vector<mem::Command> commands_;
  obs::TraceSession* trace_ = nullptr;
  bool in_batch_ = false;
  std::vector<OpPlan> batch_plans_;
  std::unique_ptr<reliability::FaultModel> fault_model_;
  std::unique_ptr<reliability::RecoveryManager> relmgr_;
  std::unique_ptr<verify::Verifier> verifier_;
  std::unique_ptr<sim::SimdCpuModel> cpu_;  ///< lazy fallback cost model
  reliability::Counters last_rel_;          ///< sync_reliability snapshot
};

}  // namespace pinatubo::core
