#include "pinatubo/cost_model.hpp"

#include "common/error.hpp"

namespace pinatubo::core {

PinatuboCostModel::PinatuboCostModel(const mem::Geometry& geo, nvm::Tech tech,
                                     double result_density)
    : geo_(geo), tech_(tech), timing_(mem::pcm_timing()),
      bus_(mem::ddr3_1600_bus()), energy_(nvm::cell_params(tech)),
      result_density_(result_density) {
  geo_.validate();
  PIN_CHECK(result_density >= 0.0 && result_density <= 1.0);
}

std::uint64_t PinatuboCostModel::sensed_bits(const PlanStep& s) const {
  return static_cast<std::uint64_t>(s.col_steps) * geo_.sense_step_bits();
}

double PinatuboCostModel::stream_ns(unsigned cols) const {
  // Bits per chip per bank for one column stripe, over the GDL width.
  const double bits_per_chip_bank =
      static_cast<double>(geo_.sense_step_bits()) /
      (geo_.banks_per_chip * geo_.chips_per_rank);
  const double beats = bits_per_chip_bank / path_.gdl_beat_bits;
  return static_cast<double>(cols) * beats * path_.gdl_clk_ns;
}

std::uint64_t PinatuboCostModel::command_count(const PlanStep& s) const {
  // PIM commands broadcast to all banks of the rank (the lock-step bank
  // cluster shares row coordinates), so the command count is independent
  // of the bank count — without this the command bus would cap multi-row
  // ops far below the paper's Fig. 9 ceiling.
  switch (s.kind) {
    case StepKind::kIntraSub:
      // MRS, RESET, one ACT per opened row, one strobe per sense step, WB.
      return 1 + 1 + s.rows + s.col_steps + (s.writeback ? 1 : 0);
    case StepKind::kInterSub:
    case StepKind::kInterBank:
      // MRS, one read per operand row, logic strobe, writeback.
      return 1 + s.rows + 1 + (s.writeback ? 1 : 0);
    case StepKind::kHostRead:
      // Column read bursts: one per stripe per bank (real data moves).
      return static_cast<std::uint64_t>(geo_.banks_per_chip) * s.col_steps;
  }
  PIN_UNREACHABLE("bad StepKind");
}

mem::Cost PinatuboCostModel::step_cost(const PlanStep& s) const {
  PIN_CHECK(s.bits > 0);
  PIN_CHECK(s.col_steps >= 1);
  mem::Cost cost;
  const double t_cmds =
      static_cast<double>(command_count(s)) * bus_.cmd_slot_ns;
  const std::uint64_t hw_bits = sensed_bits(s);
  const double width = static_cast<double>(hw_bits);
  const double ones = width * result_density_;
  const double zeros = width - ones;
  cost.energy.add("ctrl.cmd",
                  static_cast<double>(command_count(s)) * energy_.command_pj());

  switch (s.kind) {
    case StepKind::kIntraSub: {
      // Sensing: tRCD covers activation + the first column step.
      double t = t_cmds + timing_.t_rcd_ns +
                 (s.col_steps - 1) * timing_.t_cl_ns;
      if (s.writeback) t += timing_.t_wr_ns;
      cost.time_ns = t;
      // Wordline energy: every opened row slice in every bank and chip.
      const double slices = static_cast<double>(s.rows) *
                            geo_.banks_per_chip * geo_.chips_per_rank;
      cost.energy.add("pim.activate", slices * energy_.activate_row_pj());
      cost.energy.add("pim.sense",
                      energy_.sense_pj(hw_bits, s.rows, timing_.t_cl_ns));
      if (s.writeback)
        cost.energy.add("pim.write",
                        energy_.write_pj(static_cast<std::uint64_t>(ones),
                                         static_cast<std::uint64_t>(zeros)));
      return cost;
    }
    case StepKind::kInterSub:
    case StepKind::kInterBank: {
      const double stream = stream_ns(s.col_steps);
      double t = t_cmds + 2.0 * (timing_.t_rcd_ns + stream) +
                 (s.writeback ? timing_.t_wr_ns + stream : 0.0);
      // Reads: sensing + GDL + buffer latch for both operands.
      const double read_pj_bit =
          energy_.sense_pj(1, 1, timing_.t_cl_ns) + path_.gdl_pj_per_bit +
          path_.latch_pj_per_bit;
      cost.energy.add("pim.buffer.read", 2.0 * width * read_pj_bit);
      cost.energy.add("pim.buffer.logic", width * path_.logic_pj_per_bit);
      if (s.writeback) {
        cost.energy.add("pim.write",
                        energy_.write_pj(static_cast<std::uint64_t>(ones),
                                         static_cast<std::uint64_t>(zeros)));
        cost.energy.add("pim.buffer.wb", width * path_.gdl_pj_per_bit);
      }
      if (s.kind == StepKind::kInterBank && s.crosses_rank) {
        // One operand hops over the DDR bus between ranks.
        t += width / 8.0 / bus_.data_gbps;
        cost.energy.add("bus.io", energy_.io_pj(hw_bits));
      }
      cost.time_ns = t;
      return cost;
    }
    case StepKind::kHostRead: {
      // Result already latched; burst it to the CPU.
      const double bytes = static_cast<double>(s.bits) / 8.0;
      cost.time_ns = t_cmds + bytes / bus_.data_gbps;
      cost.energy.add("bus.io", energy_.io_pj(s.bits));
      return cost;
    }
  }
  PIN_UNREACHABLE("bad StepKind");
}

mem::Cost PinatuboCostModel::plan_cost(const OpPlan& plan) const {
  mem::Cost total;
  for (const auto& s : plan.steps) total += step_cost(s);
  return total;
}

std::uint64_t PinatuboCostModel::step_bus_bytes(const PlanStep& s) const {
  if (s.kind == StepKind::kHostRead) return s.bits / 8;
  if (s.kind == StepKind::kInterBank && s.crosses_rank)
    return sensed_bits(s) / 8;  // one operand hops between ranks
  return 0;
}

std::vector<mem::Command> PinatuboCostModel::lower(const OpPlan& plan) const {
  // Command encoding (bank 0 stands for the broadcast lock-step cluster):
  //   ACT        addr = operand row,   aux = activation index
  //   PIM_SENSE  addr = dst row,       aux = ABSOLUTE column stripe
  //   PIM_LOAD   addr = operand row,   aux = slot | (operand col << 8)
  //   RD         addr = result row,    aux = column stripe (host bursts)
  //   PIM_GDL/IO addr = dst row,       aux = col_start | (col_steps << 8)
  //   PIM_WB     addr = dst row,       aux = col_start | (col_steps << 8)
  std::vector<mem::Command> cmds;
  for (const auto& s : plan.steps) lower_step(s, cmds);
  return cmds;
}

void PinatuboCostModel::lower_step(const PlanStep& s,
                                   std::vector<mem::Command>& out) const {
  mem::RowAddr base;
  base.channel = s.channel;
  base.rank = s.rank;
  base.subarray = s.subarray;
  base.row = s.row % geo_.rows_per_subarray;
  const std::uint32_t window =
      s.col_start | (static_cast<std::uint32_t>(s.col_steps) << 8);
  switch (s.kind) {
    case StepKind::kIntraSub: {
      out.push_back({mem::CmdKind::kModeSet, base, s.op, 0});
      out.push_back({mem::CmdKind::kPimReset, base, s.op, 0});
      for (std::uint32_t r = 0; r < s.reads.size(); ++r)
        out.push_back({mem::CmdKind::kAct, s.reads[r], s.op, r});
      for (unsigned c = 0; c < s.col_steps; ++c)
        out.push_back({mem::CmdKind::kPimSense, base, s.op,
                       s.col_start + c});
      if (s.writeback)
        out.push_back({mem::CmdKind::kPimWriteback, s.write, s.op, window});
      break;
    }
    case StepKind::kInterSub:
    case StepKind::kInterBank: {
      const auto kind = s.kind == StepKind::kInterSub
                            ? mem::CmdKind::kPimGdlOp
                            : mem::CmdKind::kPimIoOp;
      out.push_back({mem::CmdKind::kModeSet, base, s.op, 0});
      for (std::uint32_t r = 0; r < s.reads.size(); ++r) {
        const std::uint32_t col =
            r < s.read_cols.size() ? s.read_cols[r] : s.col_start;
        out.push_back({mem::CmdKind::kPimLoad, s.reads[r], s.op,
                       r | (col << 8)});
      }
      out.push_back({kind, base, s.op, window});
      if (s.writeback)
        out.push_back({mem::CmdKind::kPimWriteback, s.write, s.op, window});
      break;
    }
    case StepKind::kHostRead: {
      for (unsigned b = 0; b < geo_.banks_per_chip; ++b)
        for (unsigned c = 0; c < s.col_steps; ++c) {
          mem::RowAddr a = s.reads.empty() ? base : s.reads[0];
          a.bank = b;
          out.push_back({mem::CmdKind::kRead, a, s.op, s.col_start + c});
        }
      break;
    }
  }
}

}  // namespace pinatubo::core
