#include "pinatubo/allocator.hpp"

#include "common/error.hpp"

namespace pinatubo::core {

const char* to_string(AllocPolicy p) {
  return p == AllocPolicy::kPimAware ? "pim-aware" : "naive";
}

RowAllocator::RowAllocator(const mem::Geometry& geo, AllocPolicy policy,
                           unsigned spare_rows)
    : geo_(geo), policy_(policy), spare_rows_(spare_rows) {
  geo_.validate();
  PIN_CHECK_MSG(spare_rows_ < geo_.rows_per_subarray,
                "retry.spare_rows = " << spare_rows_
                                      << " leaves no usable rows per subarray ("
                                      << geo_.rows_per_subarray << " total)");
  usable_rows_ = geo_.rows_per_subarray - spare_rows_;
  big_subarray_ = geo_.subarrays_per_bank;
}

std::optional<unsigned> RowAllocator::take_spare(unsigned channel,
                                                 unsigned rank,
                                                 unsigned subarray) {
  unsigned& taken = spares_taken_[{channel, rank, subarray}];
  if (taken >= spare_rows_) return std::nullopt;
  ++taken;
  // Highest row first: spares live at the bottom of the subarray.
  return geo_.rows_per_subarray - taken;
}

VectorShape RowAllocator::shape_of(std::uint64_t bits) const {
  PIN_CHECK(bits > 0);
  const std::uint64_t step = geo_.sense_step_bits();
  const std::uint64_t group = geo_.row_group_bits();
  VectorShape s;
  if (bits <= group) {
    s.stripes = static_cast<unsigned>((bits + step - 1) / step);
    s.groups = 1;
    s.rows = 1;
  } else {
    s.stripes = geo_.sa_mux_share;  // full rows
    s.groups = (bits + group - 1) / group;
    const unsigned ranks = geo_.ranks_per_channel;
    s.rows = static_cast<unsigned>((s.groups + ranks - 1) / ranks);
  }
  return s;
}

Placement RowAllocator::allocate(std::uint64_t bits) {
  const VectorShape s = shape_of(bits);
  PIN_CHECK_MSG(s.rows <= usable_rows_,
                "vector of " << bits
                             << " bits exceeds one subarray per rank ("
                             << usable_rows_ << " usable rows)");
  // Reuse a freed slot of the same shape first.
  const auto key = std::make_pair(s.stripes, s.groups);
  if (auto it = free_.find(key); it != free_.end() && !it->second.empty()) {
    Placement p = it->second.back();
    it->second.pop_back();
    p.bits = bits;
    ++live_;
    return p;
  }
  Placement p = s.groups > 1 ? place_big(s, bits) : place_at_cursor(s, bits);
  ++live_;
  return p;
}

Placement RowAllocator::place_big(const VectorShape& s, std::uint64_t bits) {
  // Rank-mirrored region growing down from the top subarray.
  if (big_row_ == 0 || big_row_ + s.rows > usable_rows_) {
    PIN_CHECK_MSG(big_subarray_ > 0, "machine full (large vectors)");
    const unsigned target = big_subarray_ - 1;
    // The mirrored region occupies `target` in EVERY rank; the small-vector
    // cursor must not have reached it.
    const bool cursor_clear =
        cur_.subarray < target ||
        (cur_.subarray == target && cur_.row == 0 && cur_.col == 0);
    PIN_CHECK_MSG(cursor_clear,
                  "machine full (large-vector region met the cursor)");
    big_subarray_ = target;
    big_row_ = 0;
  }
  Placement p;
  p.channel = 0;
  p.rank = 0;
  p.subarray = big_subarray_;
  p.first_row = big_row_;
  p.col_stripe = 0;
  p.stripes = s.stripes;
  p.groups = s.groups;
  p.rows = s.rows;
  p.bits = bits;
  big_row_ += s.rows;
  return p;
}

Placement RowAllocator::place_at_cursor(const VectorShape& s,
                                        std::uint64_t bits) {
  const unsigned total_stripes = geo_.sa_mux_share;
  const unsigned rows = usable_rows_;
  const std::uint64_t subarrays_total =
      static_cast<std::uint64_t>(geo_.channels) * geo_.ranks_per_channel *
      geo_.subarrays_per_bank;

  if (policy_ == AllocPolicy::kNaive) {
    // Conventional placement: consecutive allocations land in different
    // subarrays (page-interleaved), destroying multi-row opportunities.
    const std::uint64_t idx = naive_counter_++;
    const std::uint64_t sub_linear = idx % subarrays_total;
    const std::uint64_t slot = idx / subarrays_total;
    const std::uint64_t rows_per_col = rows;
    const auto slots_per_sub = rows_per_col * (total_stripes / s.stripes);
    PIN_CHECK_MSG(slot < slots_per_sub, "machine full (naive policy)");
    Placement p;
    p.subarray = static_cast<unsigned>(sub_linear % geo_.subarrays_per_bank);
    const std::uint64_t rk = sub_linear / geo_.subarrays_per_bank;
    p.rank = static_cast<unsigned>(rk % geo_.ranks_per_channel);
    p.channel = static_cast<unsigned>(rk / geo_.ranks_per_channel);
    p.col_stripe = static_cast<unsigned>(slot / rows_per_col) * s.stripes;
    p.first_row = static_cast<unsigned>(slot % rows_per_col);
    p.stripes = s.stripes;
    p.groups = s.groups;
    p.rows = s.rows;
    p.bits = bits;
    return p;
  }

  // PIM-aware: fill a column window down the subarray's rows.
  if (cur_.width != s.stripes) {
    // Shape change: open a fresh window after the current column.
    if (cur_.row != 0) cur_.col += cur_.width;
    cur_.row = 0;
    cur_.width = s.stripes;
  }
  while (true) {
    if (cur_.col + s.stripes > total_stripes) {
      advance_subarray();
      cur_.width = s.stripes;
      continue;
    }
    if (cur_.row + 1 > rows) {
      cur_.col += s.stripes;
      cur_.row = 0;
      continue;
    }
    Placement p;
    p.channel = cur_.channel;
    p.rank = cur_.rank;
    p.subarray = cur_.subarray;
    p.first_row = cur_.row;
    p.col_stripe = cur_.col;
    p.stripes = s.stripes;
    p.groups = s.groups;
    p.rows = s.rows;
    p.bits = bits;
    cur_.row += 1;
    return p;
  }
}

void RowAllocator::advance_subarray() {
  cur_.col = 0;
  cur_.row = 0;
  ++cur_.subarray;
  // The big-vector region (subarrays >= big_subarray_) is reserved in
  // every rank, so the small-vector cursor skips to the next rank there.
  if (cur_.subarray >= big_subarray_) {
    cur_.subarray = 0;
    ++cur_.rank;
    if (cur_.rank >= geo_.ranks_per_channel) {
      cur_.rank = 0;
      ++cur_.channel;
      PIN_CHECK_MSG(cur_.channel < geo_.channels, "machine full");
    }
  }
}

void RowAllocator::free(const Placement& p) {
  PIN_CHECK(live_ > 0);
  --live_;
  free_[{p.stripes, p.groups}].push_back(p);
}

Placement RowAllocator::virtual_placement(std::uint64_t index,
                                          std::uint64_t bits) const {
  const VectorShape s = shape_of(bits);
  PIN_CHECK(s.rows <= usable_rows_);
  const unsigned rows = usable_rows_;
  const unsigned total_stripes = geo_.sa_mux_share;
  const std::uint64_t subarrays_total =
      static_cast<std::uint64_t>(geo_.channels) * geo_.ranks_per_channel *
      geo_.subarrays_per_bank;

  Placement p;
  p.stripes = s.stripes;
  p.groups = s.groups;
  p.rows = s.rows;
  p.bits = bits;

  if (s.groups > 1) {
    // Rank-mirrored big vectors from the top subarray down.
    const std::uint64_t per_sub = rows / s.rows;
    std::uint64_t sub_idx, slot;
    if (policy_ == AllocPolicy::kPimAware) {
      sub_idx = (index / per_sub) % geo_.subarrays_per_bank;
      slot = index % per_sub;
    } else {
      // Naive interleaving scatters consecutive big vectors too.
      sub_idx = index % geo_.subarrays_per_bank;
      slot = (index / geo_.subarrays_per_bank) % per_sub;
    }
    p.subarray =
        static_cast<unsigned>(geo_.subarrays_per_bank - 1 - sub_idx);
    p.first_row = static_cast<unsigned>(slot * s.rows);
    return p;
  }

  const std::uint64_t per_col = rows;
  const std::uint64_t cols = total_stripes / s.stripes;
  const std::uint64_t per_sub = per_col * cols;
  std::uint64_t sub_linear;
  if (policy_ == AllocPolicy::kPimAware) {
    p.first_row = static_cast<unsigned>(index % per_col);
    const std::uint64_t col_idx = (index / per_col) % cols;
    p.col_stripe = static_cast<unsigned>(col_idx * s.stripes);
    sub_linear = (index / per_sub) % subarrays_total;
  } else {
    // Naive interleaving: consecutive allocations scatter over subarrays.
    sub_linear = index % subarrays_total;
    const std::uint64_t slot = (index / subarrays_total) % per_sub;
    p.col_stripe = static_cast<unsigned>(slot / per_col) * s.stripes;
    p.first_row = static_cast<unsigned>(slot % per_col);
  }
  p.subarray = static_cast<unsigned>(sub_linear % geo_.subarrays_per_bank);
  const std::uint64_t rk = sub_linear / geo_.subarrays_per_bank;
  p.rank = static_cast<unsigned>(rk % geo_.ranks_per_channel);
  p.channel = static_cast<unsigned>(rk / geo_.ranks_per_channel);
  return p;
}

}  // namespace pinatubo::core
