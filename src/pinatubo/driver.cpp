#include "pinatubo/driver.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/schedule_trace.hpp"

namespace pinatubo::core {

PimRuntime::PimRuntime(const mem::Geometry& geo)
    : PimRuntime(geo, Options{}) {}

PimRuntime::PimRuntime(const mem::Geometry& geo, const Options& opts)
    : opts_(opts), mem_(geo, opts.tech, opts.fidelity, opts.seed),
      alloc_(geo, opts.policy),
      sched_(geo, SchedulerConfig{opts.max_rows, opts.tech}),
      cost_model_(geo, opts.tech, opts.result_density),
      engine_(cost_model_, EngineOptions{opts.serial_execution}) {}

PimRuntime::Handle PimRuntime::pim_malloc(std::uint64_t bits) {
  const Placement p = alloc_.allocate(bits);
  const Handle h = next_handle_++;
  vectors_.emplace(h, p);
  return h;
}

void PimRuntime::pim_free(Handle h) {
  const auto it = vectors_.find(h);
  PIN_CHECK_MSG(it != vectors_.end(), "bad handle " << h);
  alloc_.free(it->second);
  vectors_.erase(it);
}

const Placement& PimRuntime::placement(Handle h) const {
  const auto it = vectors_.find(h);
  PIN_CHECK_MSG(it != vectors_.end(), "bad handle " << h);
  return it->second;
}

PimRuntime::RowBit PimRuntime::locate(const Placement& p,
                                      std::uint64_t q) const {
  const auto& g = mem_.geometry();
  const std::uint64_t step = g.sense_step_bits();
  const std::uint64_t bank_share = step / g.banks_per_chip;
  const std::uint64_t stripe_local = q / step;
  const std::uint64_t within = q % step;
  RowBit rb;
  rb.bank = static_cast<unsigned>(within / bank_share);
  rb.bit = static_cast<std::size_t>(
      (p.col_stripe + stripe_local) * bank_share + within % bank_share);
  return rb;
}

void PimRuntime::scatter(const Placement& p, const BitVector& v) {
  // locate() maps each bank_share-long run of vector bits to a contiguous
  // bit range of one bank row, so scatter/gather move whole chunks with
  // copy_bits instead of walking bits.  Scatter stays read-modify-write +
  // one write_row per touched bank so the wear ledger sees exactly one
  // full-row write per physical row activation, as before.
  const auto& g = mem_.geometry();
  const std::uint64_t step = g.sense_step_bits();
  const std::uint64_t bank_share = step / g.banks_per_chip;
  const std::uint64_t group_bits = static_cast<std::uint64_t>(p.stripes) * step;
  for (std::uint64_t grp = 0; grp < p.groups; ++grp) {
    std::vector<BitVector> bank_rows;
    std::vector<bool> touched(g.banks_per_chip, false);
    bank_rows.reserve(g.banks_per_chip);
    const unsigned rk = p.group_rank(grp, g.ranks_per_channel);
    const unsigned row = p.group_row(grp, g.ranks_per_channel);
    for (unsigned b = 0; b < g.banks_per_chip; ++b) {
      mem::RowAddr a{p.channel, rk, b, p.subarray, row};
      bank_rows.push_back(mem_.read_row(a));
    }
    const std::uint64_t base = grp * group_bits;
    const std::uint64_t count = std::min<std::uint64_t>(
        group_bits, v.size() > base ? v.size() - base : 0);
    for (std::uint64_t q = 0; q < count;) {
      const std::uint64_t within = q % step;
      const auto b = static_cast<unsigned>(within / bank_share);
      const std::uint64_t in_share = within % bank_share;
      const std::uint64_t len = std::min(bank_share - in_share, count - q);
      const std::size_t bit =
          (p.col_stripe + q / step) * bank_share + in_share;
      copy_bits(bank_rows[b].words(), bit, v.words(), base + q, len);
      touched[b] = true;
      q += len;
    }
    for (unsigned b = 0; b < g.banks_per_chip; ++b) {
      if (!touched[b]) continue;
      mem::RowAddr a{p.channel, rk, b, p.subarray, row};
      mem_.write_row(a, bank_rows[b]);
    }
  }
}

BitVector PimRuntime::gather(const Placement& p) const {
  const auto& g = mem_.geometry();
  const std::uint64_t step = g.sense_step_bits();
  const std::uint64_t bank_share = step / g.banks_per_chip;
  const std::uint64_t group_bits = static_cast<std::uint64_t>(p.stripes) * step;
  BitVector v(p.bits);
  for (std::uint64_t grp = 0; grp < p.groups; ++grp) {
    const unsigned rk = p.group_rank(grp, g.ranks_per_channel);
    const unsigned row = p.group_row(grp, g.ranks_per_channel);
    const std::uint64_t base = grp * group_bits;
    const std::uint64_t count = std::min<std::uint64_t>(
        group_bits, v.size() > base ? v.size() - base : 0);
    // Chunk-wise zero-copy reads straight from the row arenas.
    for (std::uint64_t q = 0; q < count;) {
      const std::uint64_t within = q % step;
      const auto b = static_cast<unsigned>(within / bank_share);
      const std::uint64_t in_share = within % bank_share;
      const std::uint64_t len = std::min(bank_share - in_share, count - q);
      const std::size_t bit =
          (p.col_stripe + q / step) * bank_share + in_share;
      mem::RowAddr a{p.channel, rk, b, p.subarray, row};
      copy_bits(v.words(), base + q, mem_.row_view(a), bit, len);
      q += len;
    }
  }
  return v;
}

void PimRuntime::pim_write(Handle h, const BitVector& data) {
  const Placement& p = placement(h);
  PIN_CHECK_MSG(data.size() == p.bits,
                "vector is " << p.bits << " bits, got " << data.size());
  scatter(p, data);
}

BitVector PimRuntime::pim_read(Handle h) const { return gather(placement(h)); }

void PimRuntime::execute_intra(BitOp op, const std::vector<Placement>& srcs_in,
                               const Placement& dst, unsigned max_rows) {
  // In-place operations (dst also a source) must consume the dst operand in
  // the FIRST activation — later chain steps reuse the dst row as the
  // accumulator and would otherwise read the overwritten value.  All
  // chained ops here are commutative, so reordering is sound.
  std::vector<Placement> srcs = srcs_in;
  std::stable_partition(srcs.begin(), srcs.end(), [&](const Placement& p) {
    return p.same_subarray(dst) && p.first_row == dst.first_row &&
           p.column_aligned(dst);
  });
  const auto& g = mem_.geometry();
  const std::uint64_t bank_share = g.sense_step_bits() / g.banks_per_chip;
  const std::size_t win_lo = dst.col_stripe * bank_share;
  const std::size_t win_len = dst.stripes * bank_share;

  for (std::uint64_t grp = 0; grp < dst.groups; ++grp) {
    for (unsigned b = 0; b < g.banks_per_chip; ++b) {
      auto row_of = [&](const Placement& p) {
        return mem::RowAddr{p.channel, p.group_rank(grp, g.ranks_per_channel),
                            b, p.subarray,
                            p.group_row(grp, g.ranks_per_channel)};
      };
      auto write_window = [&](const BitVector& full_row) {
        BitVector window(win_len);
        copy_bits(window.words(), 0, full_row.words(), win_lo, win_len);
        mem_.write_row_partial(row_of(dst), win_lo, window);
      };
      if (op == BitOp::kInv) {
        write_window(mem_.sense_rows({row_of(srcs[0])}, BitOp::kInv));
        continue;
      }
      const auto n = static_cast<unsigned>(srcs.size());
      unsigned consumed = std::min(max_rows, n);
      std::vector<mem::RowAddr> rows;
      for (unsigned i = 0; i < consumed; ++i) rows.push_back(row_of(srcs[i]));
      write_window(mem_.sense_rows(rows, op));
      while (consumed < n) {
        const unsigned k = std::min(max_rows, n - consumed + 1);
        rows.clear();
        rows.push_back(row_of(dst));  // accumulator
        for (unsigned i = 0; i + 1 < k; ++i)
          rows.push_back(row_of(srcs[consumed + i]));
        write_window(mem_.sense_rows(rows, op));
        consumed += k - 1;
      }
    }
  }
}

void PimRuntime::submit(OpPlan plan) {
  ++stats_.ops;
  if (trace_ && trace_->enabled()) trace_->count("pim.ops");
  stats_.intra_steps += plan.count(StepKind::kIntraSub);
  stats_.inter_sub_steps += plan.count(StepKind::kInterSub);
  stats_.inter_bank_steps += plan.count(StepKind::kInterBank);
  stats_.host_reads += plan.count(StepKind::kHostRead);
  if (in_batch_) {
    batch_plans_.push_back(std::move(plan));
    return;
  }
  const std::vector<OpPlan> one{std::move(plan)};
  flush(one);
}

void PimRuntime::flush(const std::vector<OpPlan>& plans) {
  const ExecutionEngine::Result r = engine_.run(plans);
  if (trace_ && trace_->enabled()) {
    // Batches tile the trace timeline exactly where they accrue into
    // cost_: batch i starts at the makespan accumulated before it.
    obs::render_schedule(*trace_, plans, r, cost_.time_ns);
    trace_->count("pim.batches");
    trace_->count("pim.bus_bytes", r.profile.bus_bytes);
    for (std::size_t k = 0; k < kStepKindCount; ++k)
      trace_->count(std::string("pim.steps.") +
                        to_string(static_cast<StepKind>(k)),
                    r.profile.steps[k]);
  }
  cost_ += r.cost;
  ++stats_.batches;
  stats_.serial_time_ns += r.serial_time_ns;
  stats_.bus_bytes += r.profile.bus_bytes;
  for (std::size_t k = 0; k < kStepKindCount; ++k) {
    stats_.by_class[k].time_ns += r.profile.time_ns[k];
    stats_.by_class[k].energy_pj += r.profile.energy_pj[k];
    stats_.by_class[k].steps += r.profile.steps[k];
  }
  if (opts_.record_commands) {
    // Commands interleave across plans in schedule order; each step's
    // sequence is self-contained, so the stream stays replayable.
    for (const auto& ss : r.schedule)
      cost_model_.lower_step(plans[ss.plan].steps[ss.step], commands_);
  }
}

void PimRuntime::pim_begin() {
  PIN_CHECK_MSG(!in_batch_, "pim_begin: batch already open");
  in_batch_ = true;
}

void PimRuntime::pim_barrier() {
  PIN_CHECK_MSG(in_batch_, "pim_barrier without pim_begin");
  in_batch_ = false;
  const std::vector<OpPlan> plans = std::move(batch_plans_);
  batch_plans_.clear();
  if (!plans.empty()) flush(plans);
}

void PimRuntime::pim_op(BitOp op, const std::vector<Handle>& srcs, Handle dst,
                        bool host_reads_result) {
  std::vector<Placement> src_p;
  src_p.reserve(srcs.size());
  for (const Handle h : srcs) src_p.push_back(placement(h));
  const Placement& dst_p = placement(dst);

  OpPlan plan = sched_.plan(op, src_p, dst_p, host_reads_result);
  const bool intra = plan.count(StepKind::kIntraSub) > 0;
  submit(std::move(plan));

  // Functional execution (eager even inside a batch: program order keeps
  // interleaved pim_write / pim_read semantics; only pricing defers).
  if (intra) {
    execute_intra(op, src_p, dst_p, sched_.effective_max_rows(op));
  } else {
    // Buffer paths compute exactly in digital logic.
    std::vector<BitVector> operands;
    operands.reserve(src_p.size());
    for (const auto& p : src_p) operands.push_back(gather(p));
    std::vector<const BitVector*> ptrs;
    for (const auto& v : operands) ptrs.push_back(&v);
    scatter(dst_p, BitVector::reduce(op, ptrs));
  }
}

void PimRuntime::pim_copy(Handle src, Handle dst) {
  const Placement& src_p = placement(src);
  const Placement& dst_p = placement(dst);
  PIN_CHECK_MSG(src_p.bits == dst_p.bits, "copy length mismatch");
  // A copy is a 1-row sense feeding the WDs: price it as an INV plan
  // (identical datapath; the differential output tap is free) and execute
  // the straight copy functionally.
  submit(sched_.plan(BitOp::kInv, {src_p}, dst_p, false));
  scatter(dst_p, gather(src_p));
}

void PimRuntime::pim_op_batch(const std::vector<BatchOp>& ops) {
  pim_begin();
  for (const auto& o : ops) pim_op(o.op, o.srcs, o.dst, false);
  pim_barrier();
}

void PimRuntime::reset_cost() {
  cost_ = {};
  stats_ = {};
  commands_.clear();
}

}  // namespace pinatubo::core
