#include "pinatubo/driver.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/schedule_trace.hpp"

namespace pinatubo::core {

PimRuntime::PimRuntime(const mem::Geometry& geo)
    : PimRuntime(geo, Options{}) {}

PimRuntime::PimRuntime(const mem::Geometry& geo, const Options& opts)
    : opts_(opts), mem_(geo, opts.tech, opts.fidelity, opts.seed),
      alloc_(geo, opts.policy,
             opts.reliability.spares_needed() ? opts.reliability.retry.spare_rows
                                              : 0),
      sched_(geo, SchedulerConfig{opts.max_rows, opts.tech}),
      cost_model_(geo, opts.tech, opts.result_density),
      engine_(cost_model_, EngineOptions{opts.serial_execution}) {
  if (opts_.reliability.fault.enabled) {
    fault_model_ =
        std::make_unique<reliability::FaultModel>(opts_.reliability.fault);
    mem_.set_fault_hooks(fault_model_.get());
  }
  if (opts_.reliability.detection_enabled()) {
    relmgr_ = std::make_unique<reliability::RecoveryManager>(
        mem_, opts_.reliability,
        [this](unsigned ch, unsigned rk, unsigned sub) {
          return alloc_.take_spare(ch, rk, sub);
        });
  }
  if (opts_.reliability.verify.level != reliability::VerifyLevel::kOff)
    verifier_ =
        std::make_unique<verify::Verifier>(cost_model_, opts_.max_rows);
}

PimRuntime::Handle PimRuntime::pim_malloc(std::uint64_t bits) {
  const Placement p = alloc_.allocate(bits);
  const Handle h = next_handle_++;
  vectors_.emplace(h, p);
  return h;
}

void PimRuntime::pim_free(Handle h) {
  const auto it = vectors_.find(h);
  PIN_CHECK_MSG(it != vectors_.end(), "bad handle " << h);
  alloc_.free(it->second);
  vectors_.erase(it);
}

const Placement& PimRuntime::placement(Handle h) const {
  const auto it = vectors_.find(h);
  PIN_CHECK_MSG(it != vectors_.end(), "bad handle " << h);
  return it->second;
}

PimRuntime::RowBit PimRuntime::locate(const Placement& p,
                                      std::uint64_t q) const {
  const auto& g = mem_.geometry();
  const std::uint64_t step = g.sense_step_bits();
  const std::uint64_t bank_share = step / g.banks_per_chip;
  const std::uint64_t stripe_local = q / step;
  const std::uint64_t within = q % step;
  RowBit rb;
  rb.bank = static_cast<unsigned>(within / bank_share);
  rb.bit = static_cast<std::size_t>(
      (p.col_stripe + stripe_local) * bank_share + within % bank_share);
  return rb;
}

void PimRuntime::scatter(const Placement& p, const BitVector& v) {
  // locate() maps each bank_share-long run of vector bits to a contiguous
  // bit range of one bank row, so scatter/gather move whole chunks with
  // copy_bits instead of walking bits.  Scatter stays read-modify-write +
  // one write_row per touched bank so the wear ledger sees exactly one
  // full-row write per physical row activation, as before.
  const auto& g = mem_.geometry();
  const std::uint64_t step = g.sense_step_bits();
  const std::uint64_t bank_share = step / g.banks_per_chip;
  const std::uint64_t group_bits = static_cast<std::uint64_t>(p.stripes) * step;
  for (std::uint64_t grp = 0; grp < p.groups; ++grp) {
    std::vector<BitVector> bank_rows;
    std::vector<bool> touched(g.banks_per_chip, false);
    bank_rows.reserve(g.banks_per_chip);
    const unsigned rk = p.group_rank(grp, g.ranks_per_channel);
    const unsigned row = p.group_row(grp, g.ranks_per_channel);
    for (unsigned b = 0; b < g.banks_per_chip; ++b) {
      mem::RowAddr a{p.channel, rk, b, p.subarray, row};
      bank_rows.push_back(mem_.read_row(a));
    }
    const std::uint64_t base = grp * group_bits;
    const std::uint64_t count = std::min<std::uint64_t>(
        group_bits, v.size() > base ? v.size() - base : 0);
    for (std::uint64_t q = 0; q < count;) {
      const std::uint64_t within = q % step;
      const auto b = static_cast<unsigned>(within / bank_share);
      const std::uint64_t in_share = within % bank_share;
      const std::uint64_t len = std::min(bank_share - in_share, count - q);
      const std::size_t bit =
          (p.col_stripe + q / step) * bank_share + in_share;
      copy_bits(bank_rows[b].words(), bit, v.words(), base + q, len);
      touched[b] = true;
      q += len;
    }
    for (unsigned b = 0; b < g.banks_per_chip; ++b) {
      if (!touched[b]) continue;
      mem::RowAddr a{p.channel, rk, b, p.subarray, row};
      store_row(a, bank_rows[b]);
    }
  }
}

void PimRuntime::store_row(const mem::RowAddr& addr, const BitVector& data) {
  if (relmgr_)
    relmgr_->write(addr, 0, data);
  else
    mem_.write_row(addr, data);
}

void PimRuntime::store_window(const mem::RowAddr& addr, std::size_t bit_offset,
                              const BitVector& data) {
  if (relmgr_)
    relmgr_->write(addr, bit_offset, data);
  else
    mem_.write_row_partial(addr, bit_offset, data);
}

BitVector PimRuntime::gather(const Placement& p) const {
  const auto& g = mem_.geometry();
  const std::uint64_t step = g.sense_step_bits();
  const std::uint64_t bank_share = step / g.banks_per_chip;
  const std::uint64_t group_bits = static_cast<std::uint64_t>(p.stripes) * step;
  BitVector v(p.bits);
  for (std::uint64_t grp = 0; grp < p.groups; ++grp) {
    const unsigned rk = p.group_rank(grp, g.ranks_per_channel);
    const unsigned row = p.group_row(grp, g.ranks_per_channel);
    const std::uint64_t base = grp * group_bits;
    const std::uint64_t count = std::min<std::uint64_t>(
        group_bits, v.size() > base ? v.size() - base : 0);
    // Chunk-wise zero-copy reads straight from the row arenas.
    for (std::uint64_t q = 0; q < count;) {
      const std::uint64_t within = q % step;
      const auto b = static_cast<unsigned>(within / bank_share);
      const std::uint64_t in_share = within % bank_share;
      const std::uint64_t len = std::min(bank_share - in_share, count - q);
      const std::size_t bit =
          (p.col_stripe + q / step) * bank_share + in_share;
      mem::RowAddr a{p.channel, rk, b, p.subarray, row};
      copy_bits(v.words(), base + q, mem_.row_view(a), bit, len);
      q += len;
    }
  }
  return v;
}

void PimRuntime::pim_write(Handle h, const BitVector& data) {
  const Placement& p = placement(h);
  PIN_CHECK_MSG(data.size() == p.bits,
                "vector is " << p.bits << " bits, got " << data.size());
  scatter(p, data);
  sync_reliability();
}

BitVector PimRuntime::pim_read(Handle h) const { return gather(placement(h)); }

void PimRuntime::execute_intra(BitOp op, const std::vector<Placement>& srcs_in,
                               const Placement& dst, unsigned max_rows) {
  // In-place operations (dst also a source) must consume the dst operand in
  // the FIRST activation — later chain steps reuse the dst row as the
  // accumulator and would otherwise read the overwritten value.  All
  // chained ops here are commutative, so reordering is sound.
  std::vector<Placement> srcs = srcs_in;
  std::stable_partition(srcs.begin(), srcs.end(), [&](const Placement& p) {
    return p.same_subarray(dst) && p.first_row == dst.first_row &&
           p.column_aligned(dst);
  });
  const auto& g = mem_.geometry();
  const std::uint64_t bank_share = g.sense_step_bits() / g.banks_per_chip;
  const std::size_t win_lo = dst.col_stripe * bank_share;
  const std::size_t win_len = dst.stripes * bank_share;

  for (std::uint64_t grp = 0; grp < dst.groups; ++grp) {
    for (unsigned b = 0; b < g.banks_per_chip; ++b) {
      auto row_of = [&](const Placement& p) {
        return mem::RowAddr{p.channel, p.group_rank(grp, g.ranks_per_channel),
                            b, p.subarray,
                            p.group_row(grp, g.ranks_per_channel)};
      };
      auto write_window = [&](const BitVector& full_row) {
        BitVector window(win_len);
        copy_bits(window.words(), 0, full_row.words(), win_lo, win_len);
        mem_.write_row_partial(row_of(dst), win_lo, window);
      };
      if (op == BitOp::kInv) {
        write_window(mem_.sense_rows({row_of(srcs[0])}, BitOp::kInv));
        continue;
      }
      const auto n = static_cast<unsigned>(srcs.size());
      unsigned consumed = std::min(max_rows, n);
      std::vector<mem::RowAddr> rows;
      for (unsigned i = 0; i < consumed; ++i) rows.push_back(row_of(srcs[i]));
      write_window(mem_.sense_rows(rows, op));
      while (consumed < n) {
        const unsigned k = std::min(max_rows, n - consumed + 1);
        rows.clear();
        rows.push_back(row_of(dst));  // accumulator
        for (unsigned i = 0; i + 1 < k; ++i)
          rows.push_back(row_of(srcs[consumed + i]));
        write_window(mem_.sense_rows(rows, op));
        consumed += k - 1;
      }
    }
  }
}

bool PimRuntime::execute_intra_reliable(BitOp op,
                                        const std::vector<Placement>& srcs_in,
                                        const Placement& dst,
                                        unsigned max_rows, OpPlan& executed) {
  // Same in-place ordering rule as execute_intra: dst-aliasing operands
  // must be consumed by the first activation.
  std::vector<Placement> srcs = srcs_in;
  std::stable_partition(srcs.begin(), srcs.end(), [&](const Placement& p) {
    return p.same_subarray(dst) && p.first_row == dst.first_row &&
           p.column_aligned(dst);
  });
  for (std::uint64_t grp = 0; grp < dst.groups; ++grp) {
    if (op == BitOp::kInv) {
      if (!reliable_activation(op, {srcs[0]}, dst, grp, executed))
        return false;
      continue;
    }
    const auto n = static_cast<unsigned>(srcs.size());
    unsigned consumed = std::min(max_rows, n);
    std::vector<Placement> set(srcs.begin(), srcs.begin() + consumed);
    if (!reliable_activation(op, set, dst, grp, executed)) return false;
    while (consumed < n) {
      const unsigned k = std::min(max_rows, n - consumed + 1);
      set.assign(1, dst);  // accumulator
      set.insert(set.end(), srcs.begin() + consumed,
                 srcs.begin() + consumed + (k - 1));
      if (!reliable_activation(op, set, dst, grp, executed)) return false;
      consumed += k - 1;
    }
  }
  return true;
}

bool PimRuntime::reliable_activation(BitOp op,
                                     const std::vector<Placement>& operands,
                                     const Placement& dst, std::uint64_t grp,
                                     OpPlan& executed) {
  using reliability::SenseVerify;
  using reliability::WriteVerify;
  const auto& g = mem_.geometry();
  const unsigned ranks = g.ranks_per_channel;
  const std::uint64_t group_bits = g.row_group_bits();
  const std::uint64_t step_bits = g.sense_step_bits();
  const std::uint64_t bank_share = step_bits / g.banks_per_chip;
  const std::size_t win_lo = dst.col_stripe * bank_share;
  const std::size_t win_len = dst.stripes * bank_share;
  const std::uint64_t bits_g =
      std::min(dst.bits - grp * group_bits,
               dst.groups == 1 ? dst.bits : group_bits);
  const auto cols =
      static_cast<unsigned>((bits_g + step_bits - 1) / step_bits);
  const auto k = static_cast<unsigned>(operands.size());
  const auto& rel = opts_.reliability;

  auto addr_of = [&](const Placement& p, unsigned bank) {
    return mem::RowAddr{p.channel, p.group_rank(grp, ranks), bank, p.subarray,
                        p.group_row(grp, ranks)};
  };
  // Steps mirror plan_intra's shape so the cost model prices the executed
  // ladder exactly like a scheduler-produced plan would be.
  auto make_step = [&](StepKind kind, unsigned rows, bool writeback,
                       unsigned attempt, std::vector<mem::RowAddr> reads) {
    PlanStep st;
    st.kind = kind;
    st.op = op;
    st.rows = rows;
    st.col_steps = cols;
    st.bits = bits_g;
    st.writeback = writeback;
    st.channel = dst.channel;
    st.rank = dst.group_rank(grp, ranks);
    st.subarray = dst.subarray;
    st.row = dst.group_row(grp, ranks);
    st.col_start = dst.col_stripe;
    st.group = grp;
    st.attempt = attempt;
    st.reads = std::move(reads);
    st.read_cols.assign(st.reads.size(), dst.col_stripe);
    st.write = addr_of(dst, 0);
    return st;
  };
  std::vector<mem::RowAddr> plan_reads;
  plan_reads.reserve(operands.size());
  for (const auto& p : operands) plan_reads.push_back(addr_of(p, 0));

  for (unsigned attempt = 0; attempt <= rel.retry.max_resense; ++attempt) {
    if (attempt > 0) ++relmgr_->counters().retries;
    // Sense every bank of the lock-step cluster; verify per the policy.
    std::vector<BitVector> sensed(g.banks_per_chip);
    unsigned bad = 0;
    for (unsigned b = 0; b < g.banks_per_chip; ++b) {
      std::vector<mem::RowAddr> rows;
      rows.reserve(operands.size());
      for (const auto& p : operands) rows.push_back(addr_of(p, b));
      BitVector window(win_len);
      copy_bits(window.words(), 0, mem_.sense_rows(rows, op).words(), win_lo,
                win_len);
      bool ok_b = true;
      if (rel.verify.sense == SenseVerify::kReadback) {
        ok_b = window == relmgr_->expected_window(rows, op, win_lo, win_len);
      } else if (rel.verify.sense == SenseVerify::kDouble) {
        BitVector second(win_len);
        copy_bits(second.words(), 0, mem_.sense_rows(rows, op).words(),
                  win_lo, win_len);
        ok_b = window == second;
      }
      if (!ok_b) ++bad;
      sensed[b] = std::move(window);
    }
    const bool ok = bad == 0;

    // Price what actually happened.  Failed attempts keep their activation
    // cost but skip the writeback; double-sensing adds a shadow activation;
    // read-back verification is a digital fold at the global row buffer.
    if (rel.verify.sense == SenseVerify::kDouble)
      executed.steps.push_back(
          make_step(StepKind::kIntraSub, k, false, attempt, plan_reads));
    executed.steps.push_back(
        make_step(StepKind::kIntraSub, k, ok, attempt, plan_reads));
    if (rel.verify.sense == SenseVerify::kReadback) {
      const unsigned vsteps = k > 1 ? k - 1 : 1;
      for (unsigned i = 0; i < vsteps; ++i) {
        const std::size_t a = std::min<std::size_t>(i, plan_reads.size() - 1);
        const std::size_t b =
            std::min<std::size_t>(i + 1, plan_reads.size() - 1);
        std::vector<mem::RowAddr> pr{plan_reads[a]};
        if (b != a) pr.push_back(plan_reads[b]);
        // Hoisted: argument evaluation order is unspecified, so reading
        // pr.size() in the same call that moves pr yields 0 under gcc and
        // the verify step loses its row count.
        const auto nr = static_cast<unsigned>(pr.size());
        executed.steps.push_back(
            make_step(StepKind::kInterSub, nr, false, attempt, std::move(pr)));
      }
    }

    if (!ok) {
      relmgr_->counters().detected_faults += bad;
      continue;  // re-sense: a new epoch redraws the transient flips
    }

    // Commit through the verified write path (detects persistent faults in
    // the destination row and remaps them while the true result is known).
    const std::uint64_t remaps_before = relmgr_->counters().remaps;
    for (unsigned b = 0; b < g.banks_per_chip; ++b)
      store_window(addr_of(dst, b), win_lo, sensed[b]);
    if (rel.verify.writes != WriteVerify::kNone) {
      PlanStep wv = make_step(
          StepKind::kInterSub,
          rel.verify.writes == WriteVerify::kReadback ? 2u : 1u, false,
          attempt, {addr_of(dst, 0)});
      if (rel.verify.writes == WriteVerify::kParity) {
        // Parity checks one packed parity word per 64 data words.
        wv.col_steps = 1;
        wv.bits = std::max<std::uint64_t>(1, bits_g / 64);
      }
      executed.steps.push_back(std::move(wv));
    }
    // Each remap rewrote (and re-verified) a full rank-row in every bank.
    for (std::uint64_t i = remaps_before; i < relmgr_->counters().remaps;
         ++i) {
      PlanStep rm =
          make_step(StepKind::kIntraSub, 1, true, attempt, {addr_of(dst, 0)});
      rm.col_steps = g.sa_mux_share;
      rm.bits = g.row_group_bits();
      // The remap rewrites the full rank-row, not dst's column stripe:
      // make_step's window (col_start = col_stripe) would overflow the mux
      // share and hide the step's true footprint from hazard analysis.
      rm.col_start = 0;
      rm.read_cols.assign(rm.reads.size(), 0);
      executed.steps.push_back(std::move(rm));
    }
    return true;
  }

  // Retries exhausted: de-escalate the activation (OR only — AND/XOR/INV
  // shapes are already minimal).  Halving re-enters the ladder per half at
  // a wider sense margin, accumulating into dst.
  if (rel.retry.deescalate && op == BitOp::kOr && k > 2) {
    ++relmgr_->counters().deescalations;
    const unsigned h = (k + 1) / 2;
    const std::vector<Placement> first(operands.begin(), operands.begin() + h);
    if (!reliable_activation(op, first, dst, grp, executed)) return false;
    std::vector<Placement> rest{dst};  // accumulator holds the first half
    rest.insert(rest.end(), operands.begin() + h, operands.end());
    return reliable_activation(op, rest, dst, grp, executed);
  }
  return false;
}

void PimRuntime::submit(OpPlan plan) {
  ++stats_.ops;
  if (verifier_ &&
      opts_.reliability.verify.level == reliability::VerifyLevel::kAlways) {
    const verify::Report rep = verifier_->check(plan);
    PIN_CHECK_MSG(rep.ok(),
                  "static verifier rejected a submitted plan ("
                      << plan.summary() << "):\n"
                      << rep.to_string());
  }
  if (trace_ && trace_->enabled()) trace_->count("pim.ops");
  stats_.intra_steps += plan.count(StepKind::kIntraSub);
  stats_.inter_sub_steps += plan.count(StepKind::kInterSub);
  stats_.inter_bank_steps += plan.count(StepKind::kInterBank);
  stats_.host_reads += plan.count(StepKind::kHostRead);
  if (in_batch_) {
    batch_plans_.push_back(std::move(plan));
    return;
  }
  const std::vector<OpPlan> one{std::move(plan)};
  flush(one);
}

void PimRuntime::flush(const std::vector<OpPlan>& plans) {
  const ExecutionEngine::Result r = engine_.run(plans);
  if (verifier_) {
    const verify::Report rep =
        verifier_->check(plans, r, opts_.serial_execution);
    PIN_CHECK_MSG(rep.ok(), "static verifier rejected a batch of "
                                << plans.size() << " plans:\n"
                                << rep.to_string());
  }
  if (trace_ && trace_->enabled()) {
    // Batches tile the trace timeline exactly where they accrue into
    // cost_: batch i starts at the makespan accumulated before it.
    obs::render_schedule(*trace_, plans, r, cost_.time_ns);
    trace_->count("pim.batches");
    trace_->count("pim.bus_bytes", r.profile.bus_bytes);
    for (std::size_t k = 0; k < kStepKindCount; ++k)
      trace_->count(std::string("pim.steps.") +
                        to_string(static_cast<StepKind>(k)),
                    r.profile.steps[k]);
  }
  cost_ += r.cost;
  ++stats_.batches;
  stats_.serial_time_ns += r.serial_time_ns;
  stats_.bus_bytes += r.profile.bus_bytes;
  for (std::size_t k = 0; k < kStepKindCount; ++k) {
    stats_.by_class[k].time_ns += r.profile.time_ns[k];
    stats_.by_class[k].energy_pj += r.profile.energy_pj[k];
    stats_.by_class[k].steps += r.profile.steps[k];
  }
  if (opts_.record_commands) {
    // Commands interleave across plans in schedule order; each step's
    // sequence is self-contained, so the stream stays replayable.
    for (const auto& ss : r.schedule)
      cost_model_.lower_step(plans[ss.plan].steps[ss.step], commands_);
  }
}

void PimRuntime::pim_begin() {
  PIN_CHECK_MSG(!in_batch_, "pim_begin: batch already open");
  in_batch_ = true;
}

void PimRuntime::pim_barrier() {
  PIN_CHECK_MSG(in_batch_, "pim_barrier without pim_begin");
  in_batch_ = false;
  const std::vector<OpPlan> plans = std::move(batch_plans_);
  batch_plans_.clear();
  if (!plans.empty()) flush(plans);
}

void PimRuntime::pim_op(BitOp op, const std::vector<Handle>& srcs, Handle dst,
                        bool host_reads_result) {
  std::vector<Placement> src_p;
  src_p.reserve(srcs.size());
  for (const Handle h : srcs) src_p.push_back(placement(h));
  const Placement& dst_p = placement(dst);

  OpPlan plan = sched_.plan(op, src_p, dst_p, host_reads_result);
  const bool intra = plan.count(StepKind::kIntraSub) > 0;

  if (intra && relmgr_) {
    // Analog path under the recovery ladder.  Snapshot dst-aliasing
    // operands first: a partially-executed chain overwrites dst, and the
    // CPU fallback must still see the original operand values.
    std::vector<std::optional<BitVector>> snapshots(src_p.size());
    if (opts_.reliability.retry.cpu_fallback) {
      for (std::size_t i = 0; i < src_p.size(); ++i)
        if (src_p[i].rows_overlap(dst_p)) snapshots[i] = gather(src_p[i]);
    }
    OpPlan executed;
    executed.op = op;
    executed.bits = dst_p.bits;
    const bool ok = execute_intra_reliable(
        op, src_p, dst_p, sched_.effective_max_rows(op), executed);
    if (ok) {
      // Reuse the scheduler's host-read tail on the executed plan.
      for (auto& st : plan.steps)
        if (st.kind == StepKind::kHostRead)
          executed.steps.push_back(std::move(st));
      submit(std::move(executed));
    } else {
      PIN_CHECK_MSG(opts_.reliability.retry.cpu_fallback,
                    "recovery ladder exhausted for "
                        << to_string(op)
                        << " and retry.cpu_fallback is disabled");
      submit(std::move(executed));  // the failed attempts still cost time
      fallback_op(op, src_p, dst_p, snapshots, srcs, dst, host_reads_result);
    }
    sync_reliability();
    return;
  }

  submit(std::move(plan));

  // Functional execution (eager even inside a batch: program order keeps
  // interleaved pim_write / pim_read semantics; only pricing defers).
  if (intra) {
    execute_intra(op, src_p, dst_p, sched_.effective_max_rows(op));
  } else {
    // Buffer paths compute exactly in digital logic.
    std::vector<BitVector> operands;
    operands.reserve(src_p.size());
    for (const auto& p : src_p) operands.push_back(gather(p));
    std::vector<const BitVector*> ptrs;
    for (const auto& v : operands) ptrs.push_back(&v);
    scatter(dst_p, BitVector::reduce(op, ptrs));
    sync_reliability();  // scatter may have detected write faults
  }
}

void PimRuntime::fallback_op(BitOp op, const std::vector<Placement>& src_p,
                             const Placement& dst_p,
                             const std::vector<std::optional<BitVector>>& snapshots,
                             const std::vector<Handle>& srcs, Handle dst,
                             bool host_reads_result) {
  // Functional: recompute from the stored operands (clean — persistent
  // faults were healed at write time), or the pre-op snapshot when the
  // operand aliased dst.  The result is exact by construction.
  std::vector<BitVector> operands;
  operands.reserve(src_p.size());
  for (std::size_t i = 0; i < src_p.size(); ++i)
    operands.push_back(snapshots[i] ? *snapshots[i] : gather(src_p[i]));
  std::vector<const BitVector*> ptrs;
  for (const auto& v : operands) ptrs.push_back(&v);
  scatter(dst_p, BitVector::reduce(op, ptrs));

  // Costed: the whole op runs as a CPU bulk kernel streaming from PCM
  // (operand reads + result write included — no extra host-read steps, or
  // the transfer would be double-counted).
  if (!cpu_)
    cpu_ = std::make_unique<sim::SimdCpuModel>(sim::CpuConfig{},
                                               sim::MemKind::kPcm);
  sim::TraceOp top;
  top.op = op;
  top.srcs = srcs;
  top.dst = dst;
  top.bits = dst_p.bits;
  top.host_reads_result = host_reads_result;
  const mem::Cost c = cpu_->bulk_op(top);
  ++relmgr_->counters().fallbacks;
  stats_.fallback_time_ns += c.time_ns;
  stats_.fallback_energy_pj += c.energy.total_pj();
  if (trace_ && trace_->enabled()) {
    // The fallback tiles at the accrued makespan on its own host track;
    // its category is not a step class, so SpanSums-style per-class
    // reconciliation is unaffected while max_end still covers it.
    const std::uint32_t tr = trace_->track("host/cpu");
    trace_->span(std::string("cpu-fallback ") + to_string(op), cost_.time_ns,
                 c.time_ns, tr, "cpu-fallback");
  }
  cost_ += c;
  stats_.serial_time_ns += c.time_ns;
}

void PimRuntime::sync_reliability() {
  if (!relmgr_) return;
  const reliability::Counters& c = relmgr_->counters();
  auto bump = [&](const char* key, std::uint64_t cur, std::uint64_t& last,
                  std::uint64_t& stat) {
    const std::uint64_t d = cur - last;
    if (d == 0) return;
    if (trace_ && trace_->enabled()) trace_->count(key, d);
    stat += d;
    last = cur;
  };
  bump("pim.detected_faults", c.detected_faults, last_rel_.detected_faults,
       stats_.detected_faults);
  bump("pim.retries", c.retries, last_rel_.retries, stats_.retries);
  bump("pim.deescalations", c.deescalations, last_rel_.deescalations,
       stats_.deescalations);
  bump("pim.remaps", c.remaps, last_rel_.remaps, stats_.remaps);
  bump("pim.fallbacks", c.fallbacks, last_rel_.fallbacks, stats_.fallbacks);
}

void PimRuntime::pim_copy(Handle src, Handle dst) {
  const Placement& src_p = placement(src);
  const Placement& dst_p = placement(dst);
  PIN_CHECK_MSG(src_p.bits == dst_p.bits, "copy length mismatch");
  // A copy is a 1-row sense feeding the WDs: price it as an INV plan
  // (identical datapath; the differential output tap is free) and execute
  // the straight copy functionally.
  submit(sched_.plan(BitOp::kInv, {src_p}, dst_p, false));
  scatter(dst_p, gather(src_p));
  sync_reliability();
}

void PimRuntime::pim_op_batch(const std::vector<BatchOp>& ops) {
  pim_begin();
  for (const auto& o : ops) pim_op(o.op, o.srcs, o.dst, false);
  pim_barrier();
}

void PimRuntime::reset_cost() {
  cost_ = {};
  stats_ = {};
  commands_.clear();
}

void PimRuntime::reset_campaign() {
  PIN_CHECK_MSG(!in_batch_, "reset_campaign inside an open batch");
  vectors_.clear();
  next_handle_ = 1;
  alloc_ = RowAllocator(mem_.geometry(), opts_.policy, alloc_.spare_rows());
  mem_.reset_campaign();  // rows, wear ledger, remaps, sense epoch
  if (fault_model_) fault_model_->reset();
  if (relmgr_) relmgr_->reset();
  last_rel_ = {};
  batch_plans_.clear();
  reset_cost();
}

}  // namespace pinatubo::core
