#include "pinatubo/replay.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pinatubo::core {

CommandReplayer::CommandReplayer(mem::MainMemory& memory) : mem_(memory) {}

CommandReplayer::RankState& CommandReplayer::state_of(const mem::RowAddr& a) {
  return ranks_[{a.channel, a.rank}];
}

void CommandReplayer::write_stripes(const mem::RowAddr& dst,
                                    const std::vector<BitVector>& rows,
                                    const std::vector<unsigned>& stripes) {
  const auto& g = mem_.geometry();
  const std::size_t bank_share = g.sense_step_bits() / g.banks_per_chip;
  PIN_CHECK_MSG(rows.size() == g.banks_per_chip,
                "writeback needs one latched row per bank");
  for (unsigned b = 0; b < g.banks_per_chip; ++b) {
    mem::RowAddr a = dst;
    a.bank = b;
    for (const unsigned stripe : stripes) {
      const std::size_t lo = stripe * bank_share;
      BitVector window(bank_share);
      for (std::size_t i = 0; i < bank_share; ++i)
        if (rows[b].get(lo + i)) window.set(i);
      mem_.write_row_partial(a, lo, window);
    }
  }
}

void CommandReplayer::execute(const mem::Command& cmd) {
  ++stats_.commands;
  const auto& g = mem_.geometry();
  auto& rank = state_of(cmd.addr);

  switch (cmd.kind) {
    case mem::CmdKind::kModeSet: {
      rank.mode = cmd.op;
      rank.sa_latch.clear();
      rank.sensed_stripes.clear();
      rank.buffer.clear();
      rank.buffer_result.clear();
      return;
    }
    case mem::CmdKind::kPimReset: {
      const SubarrayKey key{cmd.addr.channel, cmd.addr.rank,
                            cmd.addr.subarray};
      auto it = lwl_.find(key);
      if (it == lwl_.end())
        it = lwl_.emplace(key,
                          circuit::LwlDriverArray(g.rows_per_subarray)).first;
      it->second.reset();
      rank.open_subarray = key;
      rank.open_rows.clear();
      return;
    }
    case mem::CmdKind::kAct: {
      ++stats_.activations;
      const SubarrayKey key{cmd.addr.channel, cmd.addr.rank,
                            cmd.addr.subarray};
      PIN_CHECK_MSG(rank.open_subarray && !(key < *rank.open_subarray) &&
                        !(*rank.open_subarray < key),
                    "multi-row ACT without PIM_RESET on that subarray");
      auto& drivers = lwl_.at(key);
      if (!drivers.is_active(cmd.addr.row)) {
        drivers.decode(cmd.addr.row);
        mem::RowAddr a = cmd.addr;
        a.bank = 0;
        rank.open_rows.push_back(a);
      }
      return;
    }
    case mem::CmdKind::kPimSense: {
      ++stats_.sense_steps;
      PIN_CHECK_MSG(!rank.open_rows.empty(), "PIM_SENSE with no open rows");
      if (rank.sa_latch.empty()) {
        // The SAs resolve all banks in lock-step; compute per bank once,
        // subsequent sense commands add column stripes to the latch set.
        rank.sa_latch.reserve(g.banks_per_chip);
        for (unsigned b = 0; b < g.banks_per_chip; ++b) {
          std::vector<mem::RowAddr> rows = rank.open_rows;
          for (auto& r : rows) r.bank = b;
          rank.sa_latch.push_back(mem_.sense_rows(rows, rank.mode));
        }
      }
      rank.sensed_stripes.push_back(cmd.aux);
      return;
    }
    case mem::CmdKind::kPimLoad: {
      // Buffer-path row read into slot aux&0xff (broadcast across banks);
      // the operand's column window starts at stripe aux>>8.
      const auto slot = cmd.aux & 0xff;
      PIN_CHECK_MSG(slot < 4, "buffer slot out of range");
      if (rank.buffer.size() <= slot) rank.buffer.resize(slot + 1);
      rank.buffer[slot].rows.clear();
      rank.buffer[slot].col = cmd.aux >> 8;
      for (unsigned b = 0; b < g.banks_per_chip; ++b) {
        mem::RowAddr a = cmd.addr;
        a.bank = b;
        rank.buffer[slot].rows.push_back(mem_.read_row(a));
      }
      return;
    }
    case mem::CmdKind::kPimGdlOp:
    case mem::CmdKind::kPimIoOp: {
      ++stats_.buffer_ops;
      PIN_CHECK_MSG(!rank.buffer.empty() && !rank.buffer[0].rows.empty(),
                    "buffer op with empty buffer");
      // The datapath's alignment shifter maps each operand's column window
      // onto the destination's (aux = dst col_start | cols << 8).
      const unsigned dst_col = cmd.aux & 0xff;
      const unsigned cols = cmd.aux >> 8;
      const std::size_t bank_share =
          g.sense_step_bits() / g.banks_per_chip;
      auto shifted = [&](const RankState::BufferSlot& slot, unsigned bank) {
        BitVector out(g.rank_row_bits());
        const std::ptrdiff_t delta =
            (static_cast<std::ptrdiff_t>(dst_col) - slot.col) *
            static_cast<std::ptrdiff_t>(bank_share);
        for (unsigned c = 0; c < cols; ++c) {
          const std::size_t src_lo = (slot.col + c) * bank_share;
          for (std::size_t i = 0; i < bank_share; ++i)
            if (slot.rows[bank].get(src_lo + i))
              out.set(static_cast<std::size_t>(
                  static_cast<std::ptrdiff_t>(src_lo + i) + delta));
        }
        return out;
      };
      rank.buffer_result.clear();
      for (unsigned b = 0; b < g.banks_per_chip; ++b) {
        if (rank.mode == BitOp::kInv) {
          rank.buffer_result.push_back(~shifted(rank.buffer[0], b));
        } else {
          PIN_CHECK_MSG(rank.buffer.size() >= 2 &&
                            !rank.buffer[1].rows.empty(),
                        "binary buffer op needs two latched rows");
          rank.buffer_result.push_back(apply(rank.mode,
                                             shifted(rank.buffer[0], b),
                                             shifted(rank.buffer[1], b)));
        }
      }
      return;
    }
    case mem::CmdKind::kPimWriteback: {
      ++stats_.writebacks;
      if (!rank.buffer_result.empty()) {
        // Buffer path: window encoded in aux = col_start | (cols << 8).
        const unsigned col_start = cmd.aux & 0xff;
        const unsigned cols = cmd.aux >> 8;
        PIN_CHECK_MSG(cols >= 1, "buffer writeback without a window");
        std::vector<unsigned> stripes;
        for (unsigned c = 0; c < cols; ++c) stripes.push_back(col_start + c);
        write_stripes(cmd.addr, rank.buffer_result, stripes);
        rank.buffer_result.clear();
        rank.buffer.clear();
        return;
      }
      PIN_CHECK_MSG(!rank.sa_latch.empty(),
                    "PIM_WB with neither SA nor buffer results latched");
      write_stripes(cmd.addr, rank.sa_latch, rank.sensed_stripes);
      rank.sa_latch.clear();
      rank.sensed_stripes.clear();
      return;
    }
    case mem::CmdKind::kRead:   // host result burst: no PIM state change
    case mem::CmdKind::kWrite:
    case mem::CmdKind::kPrecharge:
      return;  // plain DRAM-protocol commands
  }
  PIN_UNREACHABLE("bad CmdKind");
}

void CommandReplayer::execute_all(const std::vector<mem::Command>& cmds) {
  for (const auto& c : cmds) execute(c);
}

}  // namespace pinatubo::core
