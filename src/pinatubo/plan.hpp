// Execution plans: what the driver's scheduler turns one logical bitwise
// operation into (paper §4.1's three op classes plus the host fallback).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "mem/address.hpp"

namespace pinatubo::core {

enum class StepKind : std::uint8_t {
  kIntraSub,   ///< multi-row activation + modified SA, WD in-place update
  kInterSub,   ///< global-row-buffer digital logic (same bank cluster)
  kInterBank,  ///< IO-buffer digital logic; crosses clusters (bus hop)
  kHostRead,   ///< result streamed to the host over the DDR bus
};

/// Number of step classes (per-class accounting arrays index by StepKind).
inline constexpr std::size_t kStepKindCount = 4;
constexpr std::size_t step_index(StepKind k) {
  return static_cast<std::size_t>(k);
}

const char* to_string(StepKind k);

/// One scheduled hardware step.  Steps of a plan execute in order; the
/// parallelism (banks/chips in lock-step) lives *inside* a step.
struct PlanStep {
  StepKind kind = StepKind::kIntraSub;
  BitOp op = BitOp::kOr;
  unsigned rows = 2;          ///< rows opened (intra) / operands (inter)
  unsigned col_steps = 1;     ///< sensing steps (column groups touched)
  std::uint64_t bits = 0;     ///< logical bits this step processes
  bool writeback = true;      ///< result written through the WDs
  unsigned channel = 0;
  unsigned rank = 0;          ///< executing rank (multi-group ops rotate)
  unsigned subarray = 0;      ///< executing subarray (intra)
  unsigned row = 0;           ///< destination row coordinate
  unsigned col_start = 0;     ///< first column stripe the step touches
  std::uint64_t group = 0;    ///< group index within the op
  bool crosses_rank = false;  ///< inter-bank step needing a bus hop
  unsigned attempt = 0;       ///< reliability retry ordinal (0 = first try)

  /// Concrete operand rows this step opens (intra: all simultaneously
  /// activated rows; buffer: the rows latched into the buffer; host-read:
  /// the row burst out).  Bank fields are 0 — commands broadcast across
  /// the lock-step bank cluster.
  std::vector<mem::RowAddr> reads;
  /// First column stripe of each read (buffer path: the alignment shifter
  /// in the global row buffer maps each operand's window onto the dst's).
  std::vector<unsigned> read_cols;
  /// Destination row of the writeback (valid when `writeback`).
  mem::RowAddr write;

  // ---- resource annotations (execution-engine scheduling) ---------------
  /// Global id of the execution resource this step occupies: the lock-step
  /// bank cluster, i.e. one rank of one channel.  Steps with different
  /// resource ids can overlap in time (different ranks/channels); steps
  /// sharing one serialize on it.
  unsigned resource(unsigned ranks_per_channel) const {
    return channel * ranks_per_channel + rank;
  }
  /// Whether the step moves real data over the shared DDR data bus (host
  /// result bursts and cross-rank operand hops); such transfers serialize
  /// at the channel bandwidth even across ranks.
  bool uses_data_bus() const {
    return kind == StepKind::kHostRead ||
           (kind == StepKind::kInterBank && crosses_rank);
  }
};

/// A lowered logical operation.
struct OpPlan {
  BitOp op = BitOp::kOr;
  std::uint64_t bits = 0;
  std::vector<PlanStep> steps;

  std::size_t count(StepKind k) const {
    std::size_t n = 0;
    for (const auto& s : steps) n += s.kind == k;
    return n;
  }
  std::string summary() const;
};

}  // namespace pinatubo::core
