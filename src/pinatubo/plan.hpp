// Execution plans: what the driver's scheduler turns one logical bitwise
// operation into (paper §4.1's three op classes plus the host fallback).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "mem/address.hpp"

namespace pinatubo::core {

enum class StepKind : std::uint8_t {
  kIntraSub,   ///< multi-row activation + modified SA, WD in-place update
  kInterSub,   ///< global-row-buffer digital logic (same bank cluster)
  kInterBank,  ///< IO-buffer digital logic; crosses clusters (bus hop)
  kHostRead,   ///< result streamed to the host over the DDR bus
};

const char* to_string(StepKind k);

/// One scheduled hardware step.  Steps of a plan execute in order; the
/// parallelism (banks/chips in lock-step) lives *inside* a step.
struct PlanStep {
  StepKind kind = StepKind::kIntraSub;
  BitOp op = BitOp::kOr;
  unsigned rows = 2;          ///< rows opened (intra) / operands (inter)
  unsigned col_steps = 1;     ///< sensing steps (column groups touched)
  std::uint64_t bits = 0;     ///< logical bits this step processes
  bool writeback = true;      ///< result written through the WDs
  unsigned channel = 0;
  unsigned rank = 0;          ///< executing rank (multi-group ops rotate)
  unsigned subarray = 0;      ///< executing subarray (intra)
  unsigned row = 0;           ///< destination row coordinate
  unsigned col_start = 0;     ///< first column stripe the step touches
  std::uint64_t group = 0;    ///< group index within the op
  bool crosses_rank = false;  ///< inter-bank step needing a bus hop

  /// Concrete operand rows this step opens (intra: all simultaneously
  /// activated rows; buffer: the rows latched into the buffer; host-read:
  /// the row burst out).  Bank fields are 0 — commands broadcast across
  /// the lock-step bank cluster.
  std::vector<mem::RowAddr> reads;
  /// First column stripe of each read (buffer path: the alignment shifter
  /// in the global row buffer maps each operand's window onto the dst's).
  std::vector<unsigned> read_cols;
  /// Destination row of the writeback (valid when `writeback`).
  mem::RowAddr write;
};

/// A lowered logical operation.
struct OpPlan {
  BitOp op = BitOp::kOr;
  std::uint64_t bits = 0;
  std::vector<PlanStep> steps;

  std::size_t count(StepKind k) const {
    std::size_t n = 0;
    for (const auto& s : steps) n += s.kind == k;
    return n;
  }
  std::string summary() const;
};

}  // namespace pinatubo::core
