// PIM-aware bit-vector allocation (paper §5, "pim-aware malloc" + the OS
// memory management that "maximizes the opportunity for calling
// intra-subarray operations").
//
// Layout model.  A bit-vector stripes across the 8 banks x 8 chips of a
// rank in lock-step, so its placement is described by rank/subarray
// coordinates plus a column window:
//   * a *group* is one (subarray, row) coordinate across the whole rank
//     (2^19 bits, the full-parallelism unit — turning point B);
//   * a group splits into `sa_mux_share` (32) *column stripes* of
//     sense_step_bits (2^14) each — one sensing step per stripe
//     (turning point A);
//   * a vector occupies `stripes` consecutive stripes in `groups`
//     consecutive rows of ONE subarray.
//
// The PIM-aware policy fills a column window downward through a subarray's
// rows before moving to the next window/subarray, so consecutively
// allocated same-shape vectors sit on distinct rows of the same subarray
// with aligned columns — exactly the multi-row-activation shape.  The
// naive policy scatters allocations round-robin across subarrays and ranks
// (the ablation showing why the OS support matters).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "mem/geometry.hpp"

namespace pinatubo::core {

/// Where a logical bit-vector lives.
///
/// Single-group vectors (bits <= 2^19) occupy one (rank, subarray,
/// first_row) coordinate.  Multi-group vectors follow the paper's
/// "mapped to multiple ranks that work in serial": group g executes on
/// rank (g % ranks) at row first_row + g / ranks, the same subarray /
/// column coordinates mirrored across every rank of the channel.
struct Placement {
  unsigned channel = 0;
  unsigned rank = 0;        ///< base rank (group 0)
  unsigned subarray = 0;    ///< within the rank's bank-set
  unsigned first_row = 0;
  unsigned col_stripe = 0;  ///< first column stripe within the group
  unsigned stripes = 1;     ///< stripes per group
  std::uint64_t groups = 1;
  unsigned rows = 1;        ///< rows spanned per rank = ceil(groups/ranks)
  std::uint64_t bits = 0;   ///< logical length

  bool operator==(const Placement&) const = default;

  /// Rank executing group `g` on a machine with `ranks` ranks/channel.
  unsigned group_rank(std::uint64_t g, unsigned ranks) const {
    return (rank + static_cast<unsigned>(g % ranks)) % ranks;
  }
  /// Row coordinate of group `g`.
  unsigned group_row(std::uint64_t g, unsigned ranks) const {
    return first_row + static_cast<unsigned>(g / ranks);
  }

  /// Column alignment: multi-row activation combines cells on the same
  /// bitlines, so operands must share the column window.
  bool column_aligned(const Placement& o) const {
    return col_stripe == o.col_stripe && stripes == o.stripes;
  }
  bool same_subarray(const Placement& o) const {
    return channel == o.channel && rank == o.rank && subarray == o.subarray;
  }
  bool same_rank(const Placement& o) const {
    return channel == o.channel && rank == o.rank;
  }
  /// Row ranges overlap (operands sharing a row cannot be combined).
  bool rows_overlap(const Placement& o) const {
    return same_subarray(o) && first_row < o.first_row + o.rows &&
           o.first_row < first_row + rows;
  }
};

enum class AllocPolicy {
  kPimAware,  ///< co-locate consecutive allocations for intra-subarray ops
  kNaive,     ///< round-robin scatter (conventional OS page placement)
};

const char* to_string(AllocPolicy p);

/// Shape of a vector in placement units.
struct VectorShape {
  unsigned stripes = 1;
  std::uint64_t groups = 1;
  unsigned rows = 1;  ///< rows per rank (multi-group: ceil(groups/ranks))
};

class RowAllocator {
 public:
  /// `spare_rows` rows at the bottom of every subarray are withheld from
  /// allocation and handed out only through `take_spare` — the reliability
  /// layer's remap targets.  0 (the default) changes nothing.
  RowAllocator(const mem::Geometry& geo, AllocPolicy policy,
               unsigned spare_rows = 0);

  /// Shape a vector of `bits` takes (stripes within a group, group count).
  VectorShape shape_of(std::uint64_t bits) const;

  /// Allocates a placement; throws when the machine is full or the vector
  /// exceeds one subarray (groups > rows_per_subarray).
  Placement allocate(std::uint64_t bits);

  /// Returns a placement's stripes to the free pool.
  void free(const Placement& p);

  std::uint64_t allocated_vectors() const { return live_; }
  AllocPolicy policy() const { return policy_; }
  const mem::Geometry& geometry() const { return geo_; }
  unsigned spare_rows() const { return spare_rows_; }

  /// Hands out the next reserved spare row of (channel, rank, subarray),
  /// highest row first; nullopt when the subarray's spares are exhausted.
  std::optional<unsigned> take_spare(unsigned channel, unsigned rank,
                                     unsigned subarray);

  /// Purely arithmetic placement for virtual (capacity-unbounded) timing
  /// studies: the placement this allocator's policy would give the
  /// `index`-th same-shape allocation, wrapped modulo the machine.  Used by
  /// the Pinatubo backend to price traces whose working sets exceed the
  /// simulated DIMM (the paper's biggest Vector datasets).
  Placement virtual_placement(std::uint64_t index, std::uint64_t bits) const;

 private:
  struct Cursor {
    unsigned channel = 0, rank = 0, subarray = 0;
    unsigned col = 0;   ///< current column window start
    unsigned row = 0;   ///< next free row in the window
    unsigned width = 0; ///< window width the cursor was opened with
  };

  Placement place_at_cursor(const VectorShape& s, std::uint64_t bits);
  Placement place_big(const VectorShape& s, std::uint64_t bits);
  void advance_subarray();

  mem::Geometry geo_;
  AllocPolicy policy_;
  unsigned spare_rows_ = 0;
  unsigned usable_rows_ = 0;  ///< rows_per_subarray - spare_rows_
  // Spares handed out per (channel, rank, subarray).
  std::map<std::tuple<unsigned, unsigned, unsigned>, unsigned> spares_taken_;
  Cursor cur_;
  // Multi-group (rank-mirrored) vectors grow downward from the top
  // subarray so they never collide with the single-group cursor.
  unsigned big_subarray_;  ///< next big subarray (exclusive fence)
  unsigned big_row_ = 0;   ///< next free row in the current big subarray
  std::uint64_t live_ = 0;
  std::uint64_t naive_counter_ = 0;
  // Free lists keyed by (stripes, groups).
  std::map<std::pair<unsigned, std::uint64_t>, std::vector<Placement>> free_;
};

}  // namespace pinatubo::core
