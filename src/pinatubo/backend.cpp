#include "pinatubo/backend.hpp"

#include "common/error.hpp"
#include "obs/schedule_trace.hpp"
#include "pinatubo/engine.hpp"
#include "verify/verifier.hpp"

namespace pinatubo::core {

PinatuboBackend::PinatuboBackend(const mem::Geometry& geo,
                                 const PinatuboBackendConfig& cfg)
    : geo_(geo), cfg_(cfg), alloc_(geo, cfg.policy),
      sched_(geo, SchedulerConfig{cfg.max_rows, cfg.tech}) {
  geo_.validate();
}

std::string PinatuboBackend::name() const {
  return "Pinatubo-" + std::to_string(sched_.effective_max_rows(BitOp::kOr));
}

mem::Cost PinatuboBackend::op_cost(BitOp op,
                                   const std::vector<std::uint64_t>& src_ids,
                                   std::uint64_t dst_id, std::uint64_t bits,
                                   bool host_reads_result,
                                   double result_density) const {
  std::vector<Placement> srcs;
  srcs.reserve(src_ids.size());
  for (const auto id : src_ids)
    srcs.push_back(alloc_.virtual_placement(id, bits));
  const Placement dst = alloc_.virtual_placement(dst_id, bits);
  const OpPlan plan = sched_.plan(op, srcs, dst, host_reads_result);
  PinatuboCostModel model(geo_, cfg_.tech, result_density);
  return model.plan_cost(plan);
}

sim::BackendResult PinatuboBackend::execute(const sim::OpTrace& trace) {
  PinatuboCostModel model(geo_, cfg_.tech, trace.result_density);
  classes_ = {};
  sim::BackendResult result;
  std::vector<OpPlan> plans;
  plans.reserve(trace.ops.size());
  for (const auto& op : trace.ops) {
    std::vector<Placement> srcs;
    srcs.reserve(op.srcs.size());
    for (const auto id : op.srcs)
      srcs.push_back(alloc_.virtual_placement(id, op.bits));
    const Placement dst = alloc_.virtual_placement(op.dst, op.bits);
    plans.push_back(sched_.plan(op.op, srcs, dst, op.host_reads_result));
    classes_.intra += plans.back().count(StepKind::kIntraSub);
    classes_.inter_sub += plans.back().count(StepKind::kInterSub);
    classes_.inter_bank += plans.back().count(StepKind::kInterBank);
  }
  // The whole trace is one batch: the engine overlaps independent ops
  // across ranks (or serializes them under cfg.serial).
  const ExecutionEngine engine(model, EngineOptions{cfg_.serial});
  const ExecutionEngine::Result r = engine.run(plans);
  if (cfg_.verify != reliability::VerifyLevel::kOff) {
    const verify::Verifier verifier(model, cfg_.max_rows);
    const verify::Report rep = verifier.check(plans, r, cfg_.serial);
    PIN_CHECK_MSG(rep.ok(), "static verifier rejected trace '"
                                << trace.name << "':\n"
                                << rep.to_string());
  }
  if (trace_ && trace_->enabled()) {
    trace_t0_ = obs::render_schedule(*trace_, plans, r, trace_t0_);
    trace_->count("backend.batches");
    trace_->count("backend.bus_bytes", r.profile.bus_bytes);
  }
  result.bitwise = r.cost;
  // Scalar remainder on the host CPU over PCM.
  sim::SimdCpuModel host({}, sim::MemKind::kPcm);
  result.scalar = host.scalar(trace.scalar_ops, trace.scalar_bytes);
  return result;
}

}  // namespace pinatubo::core
