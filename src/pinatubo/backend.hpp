// The Pinatubo timing/energy backend for architecture comparisons.
//
// Prices an OpTrace on the Pinatubo hardware without materializing data:
// logical vector ids map to placements arithmetically (the allocator's
// virtual_placement), the scheduler classifies each op, and the cost model
// prices the plan.  This lets the Fig. 9-12 benches sweep working sets far
// bigger than the simulated DIMM, as the paper's datasets are.
//
// `max_rows` selects the paper's Pinatubo-2 / Pinatubo-128 configurations;
// the technology margin (CSA reference analysis) can only lower it.
#pragma once

#include "obs/trace.hpp"
#include "pinatubo/allocator.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/scheduler.hpp"
#include "reliability/policy.hpp"
#include "sim/backend.hpp"
#include "sim/cpu_model.hpp"

namespace pinatubo::core {

struct PinatuboBackendConfig {
  nvm::Tech tech = nvm::Tech::kPcm;
  unsigned max_rows = 128;
  AllocPolicy policy = AllocPolicy::kPimAware;
  /// Price traces as the program-order serial sum instead of the
  /// execution engine's dependency-aware overlapped schedule.
  bool serial = false;
  /// Static verifier gate over every priced trace (DESIGN.md §11).  kPost
  /// and kAlways are equivalent here — the backend sees whole batches, not
  /// incremental submissions.  Defaults to the build-type default.
  reliability::VerifyLevel verify = reliability::VerifyConfig{}.level;
};

class PinatuboBackend final : public sim::Backend {
 public:
  explicit PinatuboBackend(const mem::Geometry& geo = {},
                           const PinatuboBackendConfig& cfg = {});

  std::string name() const override;
  sim::BackendResult execute(const sim::OpTrace& trace) override;

  /// Step-class counts of the last executed trace (workload analysis).
  struct ClassCounts {
    std::uint64_t intra = 0, inter_sub = 0, inter_bank = 0;
  };
  const ClassCounts& last_class_counts() const { return classes_; }

  /// Cost of a single op given operand/destination indices (benches).
  mem::Cost op_cost(BitOp op, const std::vector<std::uint64_t>& src_ids,
                    std::uint64_t dst_id, std::uint64_t bits,
                    bool host_reads_result, double result_density) const;

  /// Attaches an observability session (nullptr detaches): each executed
  /// trace is rendered as one batch of spans, successive traces tiled
  /// end-to-end on the session timeline.
  void set_trace(obs::TraceSession* session) { trace_ = session; }

 private:
  mem::Geometry geo_;
  PinatuboBackendConfig cfg_;
  RowAllocator alloc_;
  OpScheduler sched_;
  ClassCounts classes_;
  obs::TraceSession* trace_ = nullptr;
  double trace_t0_ = 0.0;  ///< session-timeline end of the last trace
};

}  // namespace pinatubo::core
