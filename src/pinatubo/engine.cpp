#include "pinatubo/engine.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "mem/cmd_timer.hpp"

namespace pinatubo::core {

namespace {

/// Hazard key: a row address with the bank field collapsed (PIM commands
/// broadcast across the lock-step bank cluster, so the whole (channel,
/// rank, subarray, row) slice is one unit of data).
std::uint64_t row_key(const mem::RowAddr& a) {
  return (static_cast<std::uint64_t>(a.channel) << 48) |
         (static_cast<std::uint64_t>(a.rank) << 40) |
         (static_cast<std::uint64_t>(a.subarray) << 24) |
         static_cast<std::uint64_t>(a.row);
}

struct Node {
  std::uint32_t plan = 0;
  std::uint32_t step = 0;
  const PlanStep* s = nullptr;
  mem::Cost cost;
  std::vector<std::uint32_t> succ;   ///< steps that must wait for this one
  std::uint32_t pending = 0;         ///< unscheduled predecessors
  double ready_ns = 0.0;             ///< max completion of predecessors
};

/// A scheduled step plus the key it was issued under (for the cross-channel
/// merge back into global issue order).
struct IssuedStep {
  double pick_ns = 0.0;      ///< greedy key at issue time
  std::uint32_t node = 0;    ///< program index (flatten order)
  ExecutionEngine::ScheduledStep step;
};

}  // namespace

ExecutionEngine::ExecutionEngine(const PinatuboCostModel& model,
                                 EngineOptions opts)
    : model_(&model), opts_(opts) {}

ExecutionEngine::Result ExecutionEngine::run(
    const std::vector<OpPlan>& plans) const {
  Result res;

  // ---- flatten + price -------------------------------------------------
  std::vector<Node> nodes;
  for (std::uint32_t p = 0; p < plans.size(); ++p)
    for (std::uint32_t i = 0; i < plans[p].steps.size(); ++i) {
      Node n;
      n.plan = p;
      n.step = i;
      n.s = &plans[p].steps[i];
      n.cost = model_->step_cost(*n.s);
      nodes.push_back(std::move(n));
    }

  for (const Node& n : nodes) {
    const std::size_t k = step_index(n.s->kind);
    res.profile.time_ns[k] += n.cost.time_ns;
    res.profile.energy_pj[k] += n.cost.energy.total_pj();
    res.profile.steps[k] += 1;
    res.profile.bus_bytes += model_->step_bus_bytes(*n.s);
    res.serial_time_ns += n.cost.time_ns;
    res.cost.energy.merge(n.cost.energy);  // energy is schedule-invariant
  }

  const auto burst_ns = [&](const Node& n) {
    const std::uint64_t bytes = model_->step_bus_bytes(*n.s);
    if (bytes == 0) return 0.0;
    return std::min(static_cast<double>(bytes) / model_->bus().data_gbps,
                    n.cost.time_ns);
  };

  if (opts_.serial) {
    // Program-order serial sum: the synchronous-driver baseline.
    double now = 0.0;
    res.schedule.reserve(nodes.size());
    for (const Node& n : nodes) {
      const double done = now + n.cost.time_ns;
      res.schedule.push_back({n.plan, n.step, now, done, burst_ns(n)});
      now = done;
    }
    res.cost.time_ns = now;
    return res;
  }

  // ---- per-channel scheduling ------------------------------------------
  // Hazard keys carry the channel, and every row a step touches lives on
  // the step's own channel (asserted below), so the dependency graph never
  // crosses channels and each channel's timeline only consults its own
  // timer.  Channels are therefore priced independently — in parallel on
  // the thread pool — and the merged result is byte-identical to the old
  // single-pass global scheduler: a channel's greedy schedule is exactly
  // the channel-subsequence of the global greedy schedule, and issue order
  // is recovered by sorting on (start time, program index).
  const mem::Geometry& geo = model_->geometry();
  std::vector<std::vector<std::uint32_t>> by_channel(geo.channels);
  for (std::uint32_t i = 0; i < nodes.size(); ++i) {
    const PlanStep& s = *nodes[i].s;
    PIN_CHECK_MSG(s.channel < geo.channels, "channel " << s.channel);
    for (const mem::RowAddr& r : s.reads)
      PIN_CHECK_MSG(r.channel == s.channel,
                    "step on channel " << s.channel << " reads "
                                       << r.to_string());
    if (s.writeback)
      PIN_CHECK_MSG(s.write.channel == s.channel,
                    "step on channel " << s.channel << " writes "
                                       << s.write.to_string());
    by_channel[s.channel].push_back(i);
  }

  // One ChannelTimer per channel with the ranks as its parallel "banks"
  // (each rank is one lock-step bank cluster — the execution resource).
  std::vector<mem::ChannelTimer> timers;
  timers.reserve(geo.channels);
  for (unsigned c = 0; c < geo.channels; ++c)
    timers.emplace_back(geo.ranks_per_channel, model_->bus());

  const auto schedule_channel = [&](unsigned c) {
    const std::vector<std::uint32_t>& mine = by_channel[c];

    // Dependency graph: program order scan; hazards resolve against the
    // latest writer and the readers since that write.
    std::unordered_map<std::uint64_t, std::uint32_t> last_writer;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> readers;
    std::vector<std::uint32_t> deps;
    for (const std::uint32_t i : mine) {
      const PlanStep& s = *nodes[i].s;
      deps.clear();
      for (const mem::RowAddr& r : s.reads) {  // RAW
        const auto it = last_writer.find(row_key(r));
        if (it != last_writer.end()) deps.push_back(it->second);
      }
      if (s.writeback) {
        const std::uint64_t w = row_key(s.write);
        const auto it = last_writer.find(w);
        if (it != last_writer.end()) deps.push_back(it->second);  // WAW
        const auto rd = readers.find(w);
        if (rd != readers.end())
          for (std::uint32_t r : rd->second) deps.push_back(r);  // WAR
      }
      std::sort(deps.begin(), deps.end());
      deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
      for (std::uint32_t d : deps) {
        if (d == i) continue;
        nodes[d].succ.push_back(i);
        ++nodes[i].pending;
      }
      for (const mem::RowAddr& r : s.reads) readers[row_key(r)].push_back(i);
      if (s.writeback) {
        const std::uint64_t w = row_key(s.write);
        last_writer[w] = i;
        readers[w].clear();
      }
    }

    // Greedy list scheduling.  Among the dependency-ready steps, always
    // issue the one whose actual start time — max(data-ready, rank
    // cluster free, command bus free) — is earliest (program index
    // breaking ties).  Issuing in start-time order, not ready-time order,
    // matters: the timer's bus cursors are monotonic, so a step that must
    // wait long for its rank would otherwise drag the command bus into
    // the future for every later-issued step.
    std::vector<std::uint32_t> ready_list;
    for (const std::uint32_t i : mine)
      if (nodes[i].pending == 0) ready_list.push_back(i);

    std::vector<IssuedStep> sched;
    sched.reserve(mine.size());
    std::size_t issued = 0;
    while (!ready_list.empty()) {
      std::size_t pick = 0;
      double pick_start = 0.0;
      for (std::size_t j = 0; j < ready_list.size(); ++j) {
        const Node& n = nodes[ready_list[j]];
        const double start =
            std::max(n.ready_ns, timers[c].bank_free_ns(n.s->rank));
        if (j == 0 || start < pick_start ||
            (start == pick_start && ready_list[j] < ready_list[pick])) {
          pick = j;
          pick_start = start;
        }
      }
      const std::uint32_t i = ready_list[pick];
      ready_list[pick] = ready_list.back();
      ready_list.pop_back();

      Node& n = nodes[i];
      const PlanStep& s = *n.s;
      const std::uint64_t bytes = model_->step_bus_bytes(s);
      const double burst = burst_ns(n);
      double done;
      if (bytes > 0) {
        // The trailing data burst serializes on the channel's shared DDR
        // bus; the bank-cluster part of the step occupies the rank.
        const double occupy = std::max(0.0, n.cost.time_ns - burst);
        done = timers[c].issue_data_after(s.rank, n.ready_ns, occupy, bytes);
      } else {
        done = timers[c].issue_after(s.rank, n.ready_ns, n.cost.time_ns);
      }
      sched.push_back({pick_start, i,
                       {n.plan, n.step, done - n.cost.time_ns, done, burst}});
      ++issued;
      for (std::uint32_t sidx : n.succ) {
        Node& t = nodes[sidx];
        t.ready_ns = std::max(t.ready_ns, done);
        if (--t.pending == 0) ready_list.push_back(sidx);
      }
    }
    PIN_CHECK_MSG(issued == mine.size(), "dependency cycle in batch");
    return sched;
  };

  std::vector<std::vector<IssuedStep>> channel_sched(geo.channels);
  parallel_for(
      0, geo.channels,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c)
          channel_sched[c] = schedule_channel(static_cast<unsigned>(c));
      },
      /*grain=*/1);

  // Merge into global issue order.  The old global scheduler issued steps
  // in non-decreasing greedy-key order (the pick start: max of data-ready
  // and rank-free), breaking ties by program index, and each channel's
  // sequence is already sorted that way — so a stable merge on (pick key,
  // program index) reproduces the old issue order exactly.
  std::vector<IssuedStep> merged;
  merged.reserve(nodes.size());
  for (auto& cs : channel_sched)
    merged.insert(merged.end(), cs.begin(), cs.end());
  std::sort(merged.begin(), merged.end(),
            [](const IssuedStep& a, const IssuedStep& b) {
              if (a.pick_ns != b.pick_ns) return a.pick_ns < b.pick_ns;
              return a.node < b.node;
            });
  res.schedule.reserve(merged.size());
  for (const auto& m : merged) res.schedule.push_back(m.step);

  double makespan = 0.0;
  for (const auto& t : timers) makespan = std::max(makespan, t.finish_ns());
  res.cost.time_ns = makespan;
  return res;
}

}  // namespace pinatubo::core
