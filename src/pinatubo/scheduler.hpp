// The driver library's operation scheduler (paper §5: "optimizes and
// reschedules the operation requests, and then issues extended
// instructions").
//
// Given the placements of an op's operands it picks the cheapest hardware
// path the placements allow:
//
//   all operands on distinct rows of one subarray, column-aligned
//       -> intra-subarray multi-row activations, chained when the operand
//          count exceeds what one activation can open (tech/table limit);
//   same rank (bank cluster), different subarrays / misaligned columns
//       -> inter-subarray chain at the global row buffer, 2 operands/step;
//   different rank or cluster
//       -> inter-bank chain at the IO buffer, with a bus hop;
//
// plus a trailing host-read step when the CPU consumes the result.
// Operations whose operands share a row (within-row vectors) are rejected —
// the paper's §4.1 explicitly leaves them to remapping.
#pragma once

#include <vector>

#include "circuit/csa.hpp"
#include "mem/geometry.hpp"
#include "pinatubo/allocator.hpp"
#include "pinatubo/plan.hpp"

namespace pinatubo::core {

struct SchedulerConfig {
  /// Cap on rows per activation (the "Pinatubo-2" / "Pinatubo-128"
  /// configurations); the technology margin may cap it lower.
  unsigned max_rows = 128;
  nvm::Tech tech = nvm::Tech::kPcm;
};

class OpScheduler {
 public:
  OpScheduler(const mem::Geometry& geo, const SchedulerConfig& cfg);

  /// Lowers one logical op.  `srcs` are operand placements, `dst` the
  /// destination.  Throws on impossible shapes (same-row operands,
  /// cross-channel operands, empty operand list).
  OpPlan plan(BitOp op, const std::vector<Placement>& srcs,
              const Placement& dst, bool host_reads_result) const;

  /// Effective rows one activation may open for `op` (config cap and
  /// technology sensing margin combined).
  unsigned effective_max_rows(BitOp op) const;

  const SchedulerConfig& config() const { return cfg_; }

 private:
  void plan_intra(OpPlan& out, BitOp op, const std::vector<Placement>& srcs,
                  const Placement& dst) const;
  void plan_buffer(OpPlan& out, BitOp op, StepKind kind,
                   const std::vector<Placement>& srcs,
                   const Placement& dst) const;

  mem::Geometry geo_;
  SchedulerConfig cfg_;
  circuit::CsaModel csa_;
};

}  // namespace pinatubo::core
