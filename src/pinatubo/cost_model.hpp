// Prices execution plans on the Pinatubo hardware and lowers them to DDR
// command sequences (paper §5's "extended instructions are translated to
// DDR commands").
//
// Timing model per step (banks and chips of the executing rank operate in
// lock-step *inside* a step; the execution engine decides how steps
// compose — serial sum within a dependency chain, overlapped across
// independent ranks/channels):
//
//   intra-sub:  [MRS] [RESET]xB [ACT]xrowsxB [SENSE]xcolsxB [WB]xB on the
//               command bus, then tRCD + (cols-1)*tCL sensing and tWR
//               write recovery in the banks;
//   inter-sub:  two row reads streamed through the per-bank GDL into the
//               global row buffer logic, result written back;
//   inter-bank: the same through the IO buffer, plus a DDR bus hop when
//               the operands live in different ranks;
//   host-read:  result burst over the DDR bus to the CPU.
//
// Energy uses the NVM array model (activation, analog sensing, SET/RESET
// writes) plus the shared buffer-path constants (GDL, logic, latch) and
// the off-chip I/O energy for anything that crosses the bus.
#pragma once

#include "mem/cmd_timer.hpp"
#include "mem/energy.hpp"
#include "mem/commands.hpp"
#include "mem/geometry.hpp"
#include "mem/timing.hpp"
#include "nvm/energy_model.hpp"
#include "pinatubo/plan.hpp"
#include "sim/pim_params.hpp"

namespace pinatubo::core {

class PinatuboCostModel {
 public:
  PinatuboCostModel(const mem::Geometry& geo, nvm::Tech tech,
                    double result_density = 0.5);

  /// Cost of one step in isolation (the unit the execution engine prices;
  /// energy is schedule-invariant, time composes per the schedule).
  mem::Cost step_cost(const PlanStep& step) const;
  /// Serial-sum cost of a full plan (a dependency chain of its steps).
  mem::Cost plan_cost(const OpPlan& plan) const;

  /// Bytes the step moves over the shared DDR data bus (host-read bursts
  /// and cross-rank operand hops; 0 for steps that stay inside a rank).
  std::uint64_t step_bus_bytes(const PlanStep& step) const;

  /// Lowers one step into its DDR command sequence.  Sequences are
  /// self-contained (each starts with a mode-set), so the engine may
  /// interleave steps of different plans in schedule order.
  void lower_step(const PlanStep& step, std::vector<mem::Command>& out) const;
  /// Lowers a plan into the DDR command stream the driver would issue.
  std::vector<mem::Command> lower(const OpPlan& plan) const;

  /// Commands a step occupies on the bus (used by timing and by tests).
  std::uint64_t command_count(const PlanStep& step) const;

  const mem::Geometry& geometry() const { return geo_; }
  const mem::BusParams& bus() const { return bus_; }
  nvm::Tech tech() const { return tech_; }

 private:
  /// Bits the hardware actually senses/moves for a step (whole column
  /// stripes, even when the logical vector only fills part of one).
  std::uint64_t sensed_bits(const PlanStep& s) const;
  /// Per-bank GDL streaming time for `cols` column stripes.
  double stream_ns(unsigned cols) const;

  mem::Geometry geo_;
  nvm::Tech tech_;
  mem::TimingParams timing_;
  mem::BusParams bus_;
  sim::BufferPathParams path_;
  nvm::ArrayEnergyModel energy_;
  double result_density_;
};

}  // namespace pinatubo::core
