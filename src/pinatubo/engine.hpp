// Batched, dependency-aware execution engine.
//
// Takes a window of lowered `OpPlan`s (a batch), builds a read/write
// dependency graph over their `mem::RowAddr` placements, and issues the
// steps out-of-order through per-channel `mem::ChannelTimer`s.  Steps of
// independent ops that execute on different ranks or channels overlap in
// time; host-read bursts hide behind compute, serializing only on the
// shared DDR data bus.  Functional results are unaffected — the engine
// prices a schedule, it does not reorder the driver's functional
// execution — and energy is schedule-invariant, so only the makespan
// changes relative to the serial sum.
//
// Dependency rules (hazards over normalized row addresses; the bank field
// is collapsed because PIM commands broadcast across the lock-step bank
// cluster):
//   RAW — a step reading a row waits for the last step that wrote it;
//   WAW — a step writing a row waits for the previous writer of that row;
//   WAR — a step writing a row waits for every reader since that write.
// Steps with no path between them in this graph may execute in any order;
// a greedy list scheduler (earliest-ready first, program order as the
// tie-break) assigns them to their executing rank's timeline.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/energy.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/plan.hpp"

namespace pinatubo::core {

struct EngineOptions {
  /// Disable out-of-order overlap: price the batch as the program-order
  /// serial sum of step costs (the paper's synchronous-driver baseline).
  bool serial = false;
};

/// Per-step-class accounting accumulated while pricing a batch.
struct ClassProfile {
  double time_ns[kStepKindCount] = {};     ///< serial (summed) step time
  double energy_pj[kStepKindCount] = {};   ///< energy by step class
  std::uint64_t steps[kStepKindCount] = {};
  std::uint64_t bus_bytes = 0;  ///< bytes moved over the DDR data bus

  ClassProfile& operator+=(const ClassProfile& o) {
    for (std::size_t k = 0; k < kStepKindCount; ++k) {
      time_ns[k] += o.time_ns[k];
      energy_pj[k] += o.energy_pj[k];
      steps[k] += o.steps[k];
    }
    bus_bytes += o.bus_bytes;
    return *this;
  }
};

class ExecutionEngine {
 public:
  /// One step placed on the schedule: which plan/step of the batch, and
  /// its start/completion times on the machine.
  struct ScheduledStep {
    std::uint32_t plan = 0;   ///< index into the batch
    std::uint32_t step = 0;   ///< index into that plan's steps
    double start_ns = 0.0;
    double done_ns = 0.0;
    /// Data-bus burst duration inside [start, done]: the step's trailing
    /// `bus_ns` occupy the channel's shared DDR bus (0 for steps that
    /// stay inside their rank).  Observability renders this window on
    /// the per-channel bus track.
    double bus_ns = 0.0;
  };

  struct Result {
    /// Batch cost: makespan (overlapped) or serial sum, plus total energy.
    mem::Cost cost;
    /// Program-order serial sum of step times (the no-overlap baseline;
    /// equals cost.time_ns when EngineOptions::serial is set).
    double serial_time_ns = 0.0;
    /// Per-class breakdown of where time/energy went.
    ClassProfile profile;
    /// Steps in issue order (command streams interleave in this order).
    std::vector<ScheduledStep> schedule;
  };

  explicit ExecutionEngine(const PinatuboCostModel& model,
                           EngineOptions opts = {});

  /// Prices a batch of plans.  Plans are in program order; the schedule
  /// respects every read/write hazard between their steps.
  Result run(const std::vector<OpPlan>& plans) const;

  const EngineOptions& options() const { return opts_; }

 private:
  const PinatuboCostModel* model_;
  EngineOptions opts_;
};

}  // namespace pinatubo::core
