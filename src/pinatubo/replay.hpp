// DDR command-stream replay: the executable semantics of the PIM ISA.
//
// The driver lowers every operation into DDR commands (paper §5: extended
// instructions → DDR commands through the MR4-configured controller).
// `CommandReplayer` executes such a stream against a MainMemory image,
// modelling exactly what the modified chip does per command:
//
//   MRS4       latch the op into the mode register, clear PIM state
//   PIM_RESET  release the addressed subarray's latched wordlines
//   ACT        latch one more wordline (LwlDriverArray semantics)
//   PIM_SENSE  resolve one column stripe through the modified SA over the
//              currently open rows
//   RD (slotN) latch a row into global/IO buffer slot N   (buffer paths)
//   PIM_GDL/IO evaluate the buffer logic over a column window
//   PIM_WB     feed the SA latches / buffer result to the write drivers
//              of the addressed row (the in-place-update path)
//
// Replaying a recorded stream on a fresh memory image must reproduce the
// functional runtime's results bit for bit — the integration tests assert
// this, which makes the lowering a complete, executable specification
// rather than documentation.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "circuit/lwl_driver.hpp"
#include "mem/commands.hpp"
#include "mem/mainmem.hpp"

namespace pinatubo::core {

class CommandReplayer {
 public:
  explicit CommandReplayer(mem::MainMemory& memory);

  /// Executes one command; throws on protocol violations (sensing with no
  /// open rows, writeback with nothing latched, unsupported shapes).
  void execute(const mem::Command& cmd);
  void execute_all(const std::vector<mem::Command>& cmds);

  struct Stats {
    std::uint64_t commands = 0;
    std::uint64_t activations = 0;
    std::uint64_t sense_steps = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t buffer_ops = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct SubarrayKey {
    unsigned channel, rank, subarray;
    bool operator<(const SubarrayKey& o) const {
      return std::tie(channel, rank, subarray) <
             std::tie(o.channel, o.rank, o.subarray);
    }
  };
  /// Per-rank PIM state: the MR4 mode register, the open-row set, the SA
  /// result latches (one full rank-row per bank), sensed stripes, and the
  /// two buffer slots.  Keeping MR4 per rank lets the engine interleave
  /// the command streams of steps executing on different ranks.
  struct RankState {
    BitOp mode = BitOp::kOr;  ///< MR4 contents
    std::optional<SubarrayKey> open_subarray;
    std::vector<mem::RowAddr> open_rows;        // bank 0 coordinates
    std::vector<BitVector> sa_latch;            // per bank, after sensing
    std::vector<unsigned> sensed_stripes;
    struct BufferSlot {
      std::vector<BitVector> rows;  // per bank
      unsigned col = 0;             // operand's first column stripe
    };
    std::vector<BufferSlot> buffer;
    std::vector<BitVector> buffer_result;       // per bank, after logic
  };

  RankState& state_of(const mem::RowAddr& a);
  /// Writes the given stripes of `rows` into the addressed row via WDs.
  void write_stripes(const mem::RowAddr& dst,
                     const std::vector<BitVector>& rows,
                     const std::vector<unsigned>& stripes);

  mem::MainMemory& mem_;
  std::map<std::pair<unsigned, unsigned>, RankState> ranks_;
  std::map<SubarrayKey, circuit::LwlDriverArray> lwl_;
  Stats stats_;
};

}  // namespace pinatubo::core
