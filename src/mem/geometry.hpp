// Main-memory organization (paper §4.1, Fig. 3).
//
// Channels run in parallel; each channel has ranks sharing the bus; a rank
// has 8 chips in lock-step; a chip has banks; banks have subarrays; a
// subarray has MATs with private (MUX-shared) sense amplifiers.
//
// The evaluated machine: 1 channel x 2 ranks x 8 chips x 8 banks x
// 64 subarrays x 128 rows x 8 Kb row slice per chip-bank.  Two quantities
// drive the paper's Fig. 9 turning points:
//   row_group_bits  = chips * banks * row_slice = 2^19  (turning point B)
//   sense_step_bits = row_group / sa_mux_share  = 2^14  (turning point A)
#pragma once

#include <cstdint>

#include "common/config.hpp"

namespace pinatubo::mem {

struct Geometry {
  unsigned channels = 1;
  unsigned ranks_per_channel = 2;
  unsigned chips_per_rank = 8;
  unsigned banks_per_chip = 8;
  unsigned subarrays_per_bank = 64;
  unsigned mats_per_subarray = 8;
  unsigned rows_per_subarray = 128;
  std::uint64_t row_slice_bits = 8192;  ///< per chip, per bank row
  unsigned sa_mux_share = 32;           ///< columns per sense amplifier

  /// Throws if internally inconsistent (divisibility, non-zero fields).
  void validate() const;

  // ---- derived sizes --------------------------------------------------------
  /// Bits covered by one (subarray,row) coordinate across a whole rank's
  /// chips — the unit the functional store keeps per row address.
  std::uint64_t rank_row_bits() const {
    return row_slice_bits * chips_per_rank;
  }
  /// Bits processed fully in parallel when the same row coordinate is used
  /// in every bank of a rank (the paper's maximum-parallelism row group).
  std::uint64_t row_group_bits() const {
    return rank_row_bits() * banks_per_chip;
  }
  /// Bits resolved per sensing step (SA sharing limits a step to 1/mux of
  /// the row group).
  std::uint64_t sense_step_bits() const {
    return row_group_bits() / sa_mux_share;
  }
  std::uint64_t rows_per_bank() const {
    return static_cast<std::uint64_t>(subarrays_per_bank) * rows_per_subarray;
  }
  std::uint64_t rows_per_rank() const {
    return rows_per_bank() * banks_per_chip;
  }
  std::uint64_t rank_bits() const {
    return rows_per_rank() * rank_row_bits();
  }
  std::uint64_t total_bits() const {
    return rank_bits() * ranks_per_channel * channels;
  }
  std::uint64_t total_bytes() const { return total_bits() / 8; }
  unsigned total_ranks() const { return channels * ranks_per_channel; }
  /// Banks visible to one channel's scheduler.
  unsigned banks_per_rank() const { return banks_per_chip; }
};

/// Builds a geometry from `geometry.*` config keys (missing keys keep the
/// defaults above); validates before returning.  Keys:
///   geometry.channels, geometry.ranks, geometry.chips, geometry.banks,
///   geometry.subarrays, geometry.mats, geometry.rows,
///   geometry.row_slice_bits, geometry.sa_mux_share
Geometry geometry_from_config(const Config& cfg);

}  // namespace pinatubo::mem
