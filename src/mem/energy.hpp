// Energy/time accounting shared by every backend.
//
// `EnergyCounter` accumulates named picojoule components so reports can show
// where the energy went (activation vs sensing vs writes vs bus vs CPU).
// `Cost` is the (time, energy) pair each backend returns per op or workload.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pinatubo::mem {

class EnergyCounter {
 public:
  void add(const std::string& component, double pj);
  void merge(const EnergyCounter& other);
  double total_pj() const;
  double get(const std::string& component) const;  ///< 0 if absent
  const std::map<std::string, double>& components() const { return parts_; }
  std::string to_string() const;

 private:
  std::map<std::string, double> parts_;
};

/// The unit of comparison across backends.
struct Cost {
  double time_ns = 0.0;
  EnergyCounter energy;

  /// Serial composition: times add.
  Cost& operator+=(const Cost& o) {
    time_ns += o.time_ns;
    energy.merge(o.energy);
    return *this;
  }
};

}  // namespace pinatubo::mem
