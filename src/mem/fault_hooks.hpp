// Fault-injection seam of the functional memory.
//
// `MainMemory` itself stays fault-free by default; a reliability layer can
// attach a `FaultHooks` implementation (see src/reliability/) and the
// memory calls back at the two places real NVM fails:
//
//   * after every row write  — persistent cell faults (manufacturing
//     stuck-at, endurance wear-out) corrupt the *stored* words in place;
//   * during every sense     — transient read failures (margin-limited
//     BER, widened by resistance drift of aged data) flip bits of the
//     sensed output only, leaving the array contents intact.
//
// The interface is declared here, inside pin_mem, so the memory does not
// depend on the reliability library (which depends on pin_mem); the hook
// pointer is non-owning and null by default.  Implementations must be
// deterministic pure functions of their seed and the arguments — the
// memory calls them in program order and `sense_flips` per output word,
// which keeps the runtime's determinism contract (same seed => identical
// results for any thread count) intact.
#pragma once

#include <cstdint>
#include <span>

#include "bitvec/bitvector.hpp"

namespace pinatubo::mem {

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// Called after a row's words were updated by a write.  `row_id` is the
  /// PHYSICAL encoded row id (spare-row remaps already applied),
  /// `write_count` the row's cumulative write count including this write,
  /// `epoch` the memory's current sense epoch (a simulated-time proxy for
  /// data age).  [word_lo, word_hi) bounds the words the write touched.
  /// The hook may mutate `row` in place to model persistent cell faults;
  /// the memory re-masks the tail bits past the row width afterwards.
  virtual void on_write(std::uint64_t row_id, std::uint64_t write_count,
                        std::uint64_t epoch, std::span<BitVector::Word> row,
                        std::size_t word_lo, std::size_t word_hi) = 0;

  /// BER multiplier for a sense over the given physical rows at `epoch`
  /// (resistance drift: the longer since a row was written, the worse it
  /// senses).  Returning 0 disables flips for this sense.
  virtual double sense_scale(std::uint64_t epoch,
                             std::span<const std::uint64_t> row_ids) = 0;

  /// XOR flip mask applied to output word `word` of the sense at `epoch`.
  /// Must be a pure function of (implementation seed, epoch, word, scale).
  virtual BitVector::Word sense_flips(std::uint64_t epoch,
                                      std::uint64_t word, double scale) = 0;
};

}  // namespace pinatubo::mem
