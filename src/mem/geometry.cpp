#include "mem/geometry.hpp"

#include "common/error.hpp"

namespace pinatubo::mem {

void Geometry::validate() const {
  PIN_CHECK(channels >= 1);
  PIN_CHECK(ranks_per_channel >= 1);
  PIN_CHECK(chips_per_rank >= 1);
  PIN_CHECK(banks_per_chip >= 1);
  PIN_CHECK(subarrays_per_bank >= 1);
  PIN_CHECK(mats_per_subarray >= 1);
  PIN_CHECK(rows_per_subarray >= 1);
  PIN_CHECK(row_slice_bits >= 8);
  PIN_CHECK(sa_mux_share >= 1);
  PIN_CHECK_MSG(row_slice_bits % mats_per_subarray == 0,
                "row slice must split evenly over MATs");
  PIN_CHECK_MSG(row_group_bits() % sa_mux_share == 0,
                "row group must split evenly over sense steps");
  PIN_CHECK_MSG(rank_row_bits() % 8 == 0, "rank row must be byte aligned");
}

Geometry geometry_from_config(const Config& cfg) {
  Geometry g;
  auto u = [&](const char* key, unsigned def) {
    return static_cast<unsigned>(cfg.get_u64(key, def));
  };
  g.channels = u("geometry.channels", g.channels);
  g.ranks_per_channel = u("geometry.ranks", g.ranks_per_channel);
  g.chips_per_rank = u("geometry.chips", g.chips_per_rank);
  g.banks_per_chip = u("geometry.banks", g.banks_per_chip);
  g.subarrays_per_bank = u("geometry.subarrays", g.subarrays_per_bank);
  g.mats_per_subarray = u("geometry.mats", g.mats_per_subarray);
  g.rows_per_subarray = u("geometry.rows", g.rows_per_subarray);
  g.row_slice_bits = cfg.get_u64("geometry.row_slice_bits", g.row_slice_bits);
  g.sa_mux_share = u("geometry.sa_mux_share", g.sa_mux_share);
  g.validate();
  return g;
}

}  // namespace pinatubo::mem
