// Functional NVM main-memory array.
//
// Stores data at rank-row granularity and *derives* the result of every PIM
// operation through the sensing models:
//
//  * intra-subarray multi-row ops go through the CSA reference machinery —
//    in `kNominal` mode via the word-parallel boolean equivalent (proven
//    equal to nominal analog sensing by the reference algebra and asserted
//    by tests), in `kAnalog` mode through the batched SenseBatch kernel
//    (64 bitlines per call, counter-based variation draws, sharded across
//    the thread pool), so sensing *can fail* when the operation exceeds the
//    technology's margin;
//  * inter-subarray / inter-bank ops use the digital add-on logic (always
//    exact).
//
// Storage is a per-bank arena: each bank owns a slot table (row-in-bank ->
// slot) plus stable slabs of contiguous row words, materialized lazily on
// first write.  Rows that were never written read as zero without
// allocating.  `row_view` exposes a row's words zero-copy; all row I/O is
// whole-word (masked head/tail for partial accesses), never per-bit.
//
// Unsupported shapes (e.g. 4-row AND, 4-row OR on STT-MRAM) throw — the
// hardware has no reference for them, and the scheduler above must never
// emit them.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "circuit/csa.hpp"
#include "common/random.hpp"
#include "mem/address.hpp"
#include "mem/fault_hooks.hpp"
#include "mem/wear.hpp"
#include "nvm/technology.hpp"

namespace pinatubo::mem {

enum class SenseFidelity {
  kNominal,  ///< variation-free; word-parallel boolean path
  kAnalog,   ///< sampled cell variation + SA offset (batched, thread-pooled)
};

class MainMemory {
 public:
  using Word = BitVector::Word;

  MainMemory(const Geometry& geo, nvm::Tech tech,
             SenseFidelity fidelity = SenseFidelity::kNominal,
             std::uint64_t seed = 1);

  const AddressCodec& codec() const { return codec_; }
  const Geometry& geometry() const { return codec_.geometry(); }
  nvm::Tech tech() const { return tech_; }
  const nvm::CellParams& cell() const { return *cell_; }
  const circuit::CsaModel& csa() const { return csa_; }
  SenseFidelity fidelity() const { return fidelity_; }

  /// Full-row write; `data` must be exactly rank_row_bits wide.
  void write_row(const RowAddr& addr, const BitVector& data);
  /// Writes `data` into the row starting at `bit_offset` (masked
  /// whole-word read-modify-write, not per-bit).
  void write_row_partial(const RowAddr& addr, std::size_t bit_offset,
                         const BitVector& data);
  /// Full-row read (all-zero for never-written rows).
  BitVector read_row(const RowAddr& addr) const;
  /// Reads `bits` starting at `bit_offset` (masked whole-word copies).
  BitVector read_row_partial(const RowAddr& addr, std::size_t bit_offset,
                             std::size_t bits) const;
  /// Whether the row has ever been written.
  bool row_exists(const RowAddr& addr) const;

  /// Zero-copy view of a row's words (ceil(rank_row_bits/64) of them).
  /// Never-written rows view a shared all-zero row.  Views into written
  /// rows stay valid and track later writes (slabs are stable); a view of
  /// the zero row does *not* follow the row once it is first written.
  std::span<const Word> row_view(const RowAddr& addr) const;

  /// Intra-subarray PIM op: multi-row activation + modified SA.  All
  /// operand rows must lie in the same subarray; shape must be supported
  /// by the CSA for this technology.  Returns the sensed row (full width).
  BitVector sense_rows(const std::vector<RowAddr>& rows, BitOp op);

  /// Digital op at the global row buffer (inter-subarray) or IO buffer
  /// (inter-bank): exact two-operand logic.  `op` may be any BitOp; kInv
  /// uses only `a`.
  BitVector buffer_op(const RowAddr& a, const RowAddr& b, BitOp op) const;

  /// Number of distinct rows ever written (memory footprint proxy).
  std::size_t rows_written() const { return rows_written_; }

  /// Endurance ledger: every row write is recorded here.
  const WearTracker& wear() const { return wear_; }
  WearTracker& wear() { return wear_; }

  // ---- reliability seams ---------------------------------------------------

  /// Attaches a fault model (nullptr detaches; non-owning).  While
  /// attached, writes corrupt stored words through `FaultHooks::on_write`
  /// and senses XOR `FaultHooks::sense_flips` into their output.
  void set_fault_hooks(FaultHooks* hooks) { hooks_ = hooks; }
  FaultHooks* fault_hooks() const { return hooks_; }

  /// Redirects every future access to `logical` (all of find/materialize,
  /// wear accounting and fault keying) to `replacement` — the spare-row
  /// remap a reliability layer performs when a row goes persistently bad.
  /// Re-remapping a row overwrites the entry (the old spare is orphaned).
  /// Stored data is NOT copied; callers rewrite the row afterwards.
  void remap_row(const RowAddr& logical, const RowAddr& replacement);
  /// Number of rows currently remapped to spares.
  std::size_t remapped_rows() const { return remap_.size(); }
  /// The physical location `logical` resolves to (identity when unmapped).
  RowAddr physical(const RowAddr& logical) const;

  /// Senses performed so far (the fault model's simulated-time proxy).
  std::uint64_t sense_epoch() const { return sense_epoch_; }

  /// Forgets all stored rows, wear, remaps and the sense epoch — a fresh
  /// memory for back-to-back campaigns in one process.  The attached fault
  /// hooks (if any) are kept; reset them separately.
  void reset_campaign();

 private:
  /// Per-bank row storage: slot table + stable slabs of row words.
  /// Slabs are never reallocated, so row word pointers (and row_view
  /// spans) remain valid for the memory's lifetime.
  struct BankArena {
    std::vector<std::uint32_t> slots;  ///< row-in-bank -> slot index + 1
    std::vector<std::unique_ptr<Word[]>> slabs;
    std::uint32_t used = 0;  ///< slots handed out
  };
  static constexpr std::size_t kRowsPerSlab = 64;

  /// Words of the row, or nullptr if never materialized.  Single lookup.
  /// Applies the remap translation; `addr` is the logical coordinate.
  const Word* find_row(const RowAddr& addr) const;
  /// Words of the row, allocating a zeroed slot on first touch.
  Word* materialize_row(const RowAddr& addr);

  std::size_t bank_index(const RowAddr& a) const;
  std::size_t row_in_bank(const RowAddr& a) const;
  /// Wear accounting + persistent-fault hook shared by both write paths.
  void finish_write(const RowAddr& logical, Word* row, std::size_t bits,
                    std::size_t word_lo, std::size_t word_hi);

  AddressCodec codec_;
  nvm::Tech tech_;
  const nvm::CellParams* cell_;
  circuit::CsaModel csa_;
  SenseFidelity fidelity_;
  std::uint64_t seed_;
  std::uint64_t sense_epoch_ = 0;  ///< analog senses performed (RNG keying)
  std::size_t row_words_;
  std::vector<BankArena> banks_;
  std::vector<Word> zero_row_;
  std::size_t rows_written_ = 0;
  WearTracker wear_;
  FaultHooks* hooks_ = nullptr;
  /// Spare-row translation: encoded logical row id -> encoded physical id.
  std::unordered_map<std::uint64_t, std::uint64_t> remap_;
};

}  // namespace pinatubo::mem
