// Functional NVM main-memory array.
//
// Stores data at rank-row granularity (one BitVector of rank_row_bits per
// (channel, rank, bank, subarray, row) coordinate) and *derives* the result
// of every PIM operation through the sensing models:
//
//  * intra-subarray multi-row ops go through the CSA reference machinery —
//    in `kNominal` mode via the word-parallel boolean equivalent (proven
//    equal to nominal analog sensing by the reference algebra and asserted
//    by tests), in `kAnalog` mode bit-by-bit through CsaModel::sense_op
//    with sampled cell variation and SA offset, so sensing *can fail* when
//    the operation exceeds the technology's margin;
//  * inter-subarray / inter-bank ops use the digital add-on logic (always
//    exact).
//
// Unsupported shapes (e.g. 4-row AND, 4-row OR on STT-MRAM) throw — the
// hardware has no reference for them, and the scheduler above must never
// emit them.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "bitvec/bitvector.hpp"
#include "circuit/csa.hpp"
#include "common/random.hpp"
#include "mem/address.hpp"
#include "mem/wear.hpp"
#include "nvm/technology.hpp"

namespace pinatubo::mem {

enum class SenseFidelity {
  kNominal,  ///< variation-free; fast word-parallel path
  kAnalog,   ///< per-bit sampled variation + SA offset (slow; tests/MC)
};

class MainMemory {
 public:
  MainMemory(const Geometry& geo, nvm::Tech tech,
             SenseFidelity fidelity = SenseFidelity::kNominal,
             std::uint64_t seed = 1);

  const AddressCodec& codec() const { return codec_; }
  const Geometry& geometry() const { return codec_.geometry(); }
  nvm::Tech tech() const { return tech_; }
  const nvm::CellParams& cell() const { return *cell_; }
  const circuit::CsaModel& csa() const { return csa_; }
  SenseFidelity fidelity() const { return fidelity_; }

  /// Full-row write; `data` must be exactly rank_row_bits wide.
  void write_row(const RowAddr& addr, const BitVector& data);
  /// Writes `data` into the row starting at `bit_offset`.
  void write_row_partial(const RowAddr& addr, std::size_t bit_offset,
                         const BitVector& data);
  /// Full-row read (all-zero for never-written rows).
  BitVector read_row(const RowAddr& addr) const;
  /// Reads `bits` starting at `bit_offset`.
  BitVector read_row_partial(const RowAddr& addr, std::size_t bit_offset,
                             std::size_t bits) const;
  /// Whether the row has ever been written.
  bool row_exists(const RowAddr& addr) const;

  /// Intra-subarray PIM op: multi-row activation + modified SA.  All
  /// operand rows must lie in the same subarray; shape must be supported
  /// by the CSA for this technology.  Returns the sensed row (full width).
  BitVector sense_rows(const std::vector<RowAddr>& rows, BitOp op);

  /// Digital op at the global row buffer (inter-subarray) or IO buffer
  /// (inter-bank): exact two-operand logic.  `op` may be any BitOp; kInv
  /// uses only `a`.
  BitVector buffer_op(const RowAddr& a, const RowAddr& b, BitOp op) const;

  /// Number of distinct rows ever written (memory footprint proxy).
  std::size_t rows_written() const { return rows_.size(); }

  /// Endurance ledger: every row write is recorded here.
  const WearTracker& wear() const { return wear_; }
  WearTracker& wear() { return wear_; }

 private:
  const BitVector& row_ref(std::uint64_t id) const;
  BitVector& row_mut(std::uint64_t id);

  AddressCodec codec_;
  nvm::Tech tech_;
  const nvm::CellParams* cell_;
  circuit::CsaModel csa_;
  SenseFidelity fidelity_;
  mutable Rng rng_;
  std::unordered_map<std::uint64_t, BitVector> rows_;
  BitVector zero_row_;
  WearTracker wear_;
};

}  // namespace pinatubo::mem
