#include "mem/cmd_timer.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pinatubo::mem {

ChannelTimer::ChannelTimer(unsigned n_banks, const BusParams& bus)
    : cmd_slot_ns_(bus.cmd_slot_ns), bytes_per_ns_(bus.data_gbps),
      banks_(n_banks, 0.0) {
  PIN_CHECK(n_banks >= 1);
  PIN_CHECK(bus.cmd_slot_ns > 0);
  PIN_CHECK(bus.data_gbps > 0);
}

double ChannelTimer::issue(unsigned bank, double occupy_ns) {
  return issue_after(bank, 0.0, occupy_ns);
}

double ChannelTimer::issue_after(unsigned bank, double ready_ns,
                                 double occupy_ns) {
  PIN_CHECK_MSG(bank < banks_.size(), "bank " << bank);
  PIN_CHECK(occupy_ns >= 0.0);
  PIN_CHECK(ready_ns >= 0.0);
  const double start = std::max({cmd_free_, banks_[bank], ready_ns});
  cmd_free_ = start + cmd_slot_ns_;
  banks_[bank] = start + std::max(occupy_ns, cmd_slot_ns_);
  return banks_[bank];
}

double ChannelTimer::issue_all_banks(double occupy_ns) {
  PIN_CHECK(occupy_ns >= 0.0);
  double start = cmd_free_;
  for (double b : banks_) start = std::max(start, b);
  cmd_free_ = start + cmd_slot_ns_;
  const double done = start + std::max(occupy_ns, cmd_slot_ns_);
  std::fill(banks_.begin(), banks_.end(), done);
  return done;
}

double ChannelTimer::issue_data(unsigned bank, double occupy_ns,
                                std::uint64_t bytes) {
  return issue_data_after(bank, 0.0, occupy_ns, bytes);
}

double ChannelTimer::issue_data_after(unsigned bank, double ready_ns,
                                      double occupy_ns, std::uint64_t bytes) {
  const double bank_done = issue_after(bank, ready_ns, occupy_ns);
  const double start = std::max(bank_done, data_free_);
  data_free_ = start + static_cast<double>(bytes) / bytes_per_ns_;
  // The bank's buffers hold the result until the burst drains: a later
  // command to the same bank mid-burst would clobber the latched data, so
  // the bank stays occupied through the transfer.
  banks_[bank] = std::max(banks_[bank], data_free_);
  return data_free_;
}

double ChannelTimer::transfer(std::uint64_t bytes) {
  // Even a pure buffer read owns the command-bus slot that starts the
  // burst, and the burst serializes behind in-flight transfers.
  const double start = std::max(cmd_free_, data_free_);
  cmd_free_ = start + cmd_slot_ns_;
  data_free_ = start + static_cast<double>(bytes) / bytes_per_ns_;
  return data_free_;
}

double ChannelTimer::bank_free_ns(unsigned bank) const {
  PIN_CHECK_MSG(bank < banks_.size(), "bank " << bank);
  return std::max(cmd_free_, banks_[bank]);
}

double ChannelTimer::finish_ns() const {
  double t = std::max(cmd_free_, data_free_);
  for (double b : banks_) t = std::max(t, b);
  return t;
}

void ChannelTimer::reset() {
  cmd_free_ = 0.0;
  data_free_ = 0.0;
  std::fill(banks_.begin(), banks_.end(), 0.0);
}

}  // namespace pinatubo::mem
