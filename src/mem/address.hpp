// Physical row addressing.
//
// A `RowAddr` names one rank-row: the (channel, rank, bank, subarray, row)
// coordinate whose data spans all chips of the rank in lock-step.  The
// linear encoding orders rows so that consecutive ids walk banks first —
// the layout the PIM-aware allocator wants, since a maximally parallel
// 2^19-bit row group is "the same (subarray,row) in every bank".
#pragma once

#include <cstdint>
#include <string>

#include "mem/geometry.hpp"

namespace pinatubo::mem {

struct RowAddr {
  unsigned channel = 0;
  unsigned rank = 0;
  unsigned bank = 0;
  unsigned subarray = 0;
  unsigned row = 0;  ///< within the subarray

  bool operator==(const RowAddr&) const = default;

  /// Same physical subarray (the intra-subarray op requirement).
  bool same_subarray(const RowAddr& o) const {
    return channel == o.channel && rank == o.rank && bank == o.bank &&
           subarray == o.subarray;
  }
  /// Same bank (the inter-subarray op requirement).
  bool same_bank(const RowAddr& o) const {
    return channel == o.channel && rank == o.rank && bank == o.bank;
  }
  /// Same chip set (the inter-bank op requirement).
  bool same_rank(const RowAddr& o) const {
    return channel == o.channel && rank == o.rank;
  }

  std::string to_string() const;
};

class AddressCodec {
 public:
  explicit AddressCodec(const Geometry& g);

  /// Total number of addressable rank-rows.
  std::uint64_t row_count() const { return rows_; }

  /// Linear id -> coordinates.  Order (fastest varying first):
  /// bank, subarray, row, rank, channel.
  RowAddr decode(std::uint64_t row_id) const;
  std::uint64_t encode(const RowAddr& a) const;

  /// Validates coordinates against the geometry.
  void check(const RowAddr& a) const;

  const Geometry& geometry() const { return geo_; }

 private:
  Geometry geo_;
  std::uint64_t rows_;
};

}  // namespace pinatubo::mem
