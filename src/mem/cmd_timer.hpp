// Channel-level resource scheduler.
//
// Models the two contended resources of one memory channel:
//   * the command bus — every command occupies one slot (1.25 ns @ DDR3-1600),
//   * per-bank occupancy — a bank is busy until its current row operation
//     (activate / sense steps / write recovery) finishes,
//   * the data bus — read/write bursts serialize at the channel bandwidth.
// Banks otherwise proceed in parallel, which is exactly the parallelism the
// paper exploits when a bit-vector is striped across the 8 banks of a rank.
// Ranks on the same channel share the buses; the timer flattens
// (rank, bank) into a global bank index.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/timing.hpp"

namespace pinatubo::mem {

class ChannelTimer {
 public:
  ChannelTimer(unsigned n_banks, const BusParams& bus);

  /// Issues a command to `bank`: waits for a command-bus slot and for the
  /// bank to be free, then occupies the bank for `occupy_ns`.
  /// Returns the completion time of the bank operation.
  double issue(unsigned bank, double occupy_ns);

  /// Like `issue`, but the command additionally waits until `ready_ns`
  /// (a data dependency on an earlier operation).
  double issue_after(unsigned bank, double ready_ns, double occupy_ns);

  /// Like `issue` but the command applies to every bank simultaneously
  /// (lock-step multi-bank PIM step): one bus slot, all banks occupied.
  double issue_all_banks(double occupy_ns);

  /// Command plus a data burst of `bytes`: the burst occupies the data bus
  /// after the bank operation completes, and the bank stays busy until the
  /// burst drains (its buffers hold the outgoing data).  Returns burst
  /// completion time.
  double issue_data(unsigned bank, double occupy_ns, std::uint64_t bytes);

  /// Like `issue_data`, but the command additionally waits until `ready_ns`
  /// (a data dependency on an earlier operation).  The burst still
  /// serializes on the shared data bus.  Returns burst completion time.
  double issue_data_after(unsigned bank, double ready_ns, double occupy_ns,
                          std::uint64_t bytes);

  /// Data-bus transfer of a result already in a buffer (e.g. a CPU read):
  /// consumes one command-bus slot, then serializes on the data bus.
  double transfer(std::uint64_t bytes);

  /// Latest completion time across all resources.
  double finish_ns() const;
  double now_cmd_bus() const { return cmd_free_; }
  /// Earliest time a command to `bank` could start (bank + command bus
  /// free); lets a scheduler pick the next issue without mutating state.
  double bank_free_ns(unsigned bank) const;
  unsigned bank_count() const { return static_cast<unsigned>(banks_.size()); }

  void reset();

 private:
  double cmd_slot_ns_;
  double bytes_per_ns_;
  double cmd_free_ = 0.0;
  double data_free_ = 0.0;
  std::vector<double> banks_;
};

}  // namespace pinatubo::mem
