#include "mem/commands.hpp"

#include <sstream>

namespace pinatubo::mem {

const char* to_string(CmdKind k) {
  switch (k) {
    case CmdKind::kAct:
      return "ACT";
    case CmdKind::kRead:
      return "RD";
    case CmdKind::kWrite:
      return "WR";
    case CmdKind::kPrecharge:
      return "PRE";
    case CmdKind::kModeSet:
      return "MRS4";
    case CmdKind::kPimReset:
      return "PIM_RESET";
    case CmdKind::kPimLoad:
      return "PIM_LOAD";
    case CmdKind::kPimSense:
      return "PIM_SENSE";
    case CmdKind::kPimWriteback:
      return "PIM_WB";
    case CmdKind::kPimGdlOp:
      return "PIM_GDL";
    case CmdKind::kPimIoOp:
      return "PIM_IO";
  }
  return "?";
}

std::string Command::to_string() const {
  std::ostringstream os;
  os << mem::to_string(kind) << ' ' << addr.to_string();
  if (kind == CmdKind::kModeSet) os << " op=" << pinatubo::to_string(op);
  if (aux != 0) os << " aux=" << aux;
  return os.str();
}

}  // namespace pinatubo::mem
