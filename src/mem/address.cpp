#include "mem/address.hpp"

#include <sstream>

#include "common/error.hpp"

namespace pinatubo::mem {

std::string RowAddr::to_string() const {
  std::ostringstream os;
  os << "ch" << channel << ".rk" << rank << ".bk" << bank << ".sa" << subarray
     << ".row" << row;
  return os.str();
}

AddressCodec::AddressCodec(const Geometry& g) : geo_(g) {
  geo_.validate();
  rows_ = static_cast<std::uint64_t>(geo_.channels) * geo_.ranks_per_channel *
          geo_.banks_per_chip * geo_.subarrays_per_bank * geo_.rows_per_subarray;
}

RowAddr AddressCodec::decode(std::uint64_t row_id) const {
  PIN_CHECK_MSG(row_id < rows_, "row id " << row_id << " >= " << rows_);
  RowAddr a;
  a.bank = static_cast<unsigned>(row_id % geo_.banks_per_chip);
  row_id /= geo_.banks_per_chip;
  a.subarray = static_cast<unsigned>(row_id % geo_.subarrays_per_bank);
  row_id /= geo_.subarrays_per_bank;
  a.row = static_cast<unsigned>(row_id % geo_.rows_per_subarray);
  row_id /= geo_.rows_per_subarray;
  a.rank = static_cast<unsigned>(row_id % geo_.ranks_per_channel);
  row_id /= geo_.ranks_per_channel;
  a.channel = static_cast<unsigned>(row_id);
  return a;
}

std::uint64_t AddressCodec::encode(const RowAddr& a) const {
  check(a);
  std::uint64_t id = a.channel;
  id = id * geo_.ranks_per_channel + a.rank;
  id = id * geo_.rows_per_subarray + a.row;
  id = id * geo_.subarrays_per_bank + a.subarray;
  id = id * geo_.banks_per_chip + a.bank;
  return id;
}

void AddressCodec::check(const RowAddr& a) const {
  PIN_CHECK_MSG(a.channel < geo_.channels, a.to_string());
  PIN_CHECK_MSG(a.rank < geo_.ranks_per_channel, a.to_string());
  PIN_CHECK_MSG(a.bank < geo_.banks_per_chip, a.to_string());
  PIN_CHECK_MSG(a.subarray < geo_.subarrays_per_bank, a.to_string());
  PIN_CHECK_MSG(a.row < geo_.rows_per_subarray, a.to_string());
}

}  // namespace pinatubo::mem
