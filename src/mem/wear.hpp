// PCM write-endurance accounting.
//
// NVM cells survive a bounded number of SET/RESET cycles (~1e8-1e9 for
// PCM).  Every write through the functional memory is recorded per row,
// so workloads can be audited for wear hot spots — which matters for
// Pinatubo specifically: a 2-row chained OR writes its accumulator row
// once per step (127 writes per 128-operand op), while one 128-row
// activation writes it once.  `bench_endurance` quantifies the lifetime
// difference.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mem/address.hpp"

namespace pinatubo::mem {

class WearTracker {
 public:
  /// Records one write of `bits` cell-writes to the row.
  void record(std::uint64_t row_id, std::uint64_t bits);

  std::uint64_t total_row_writes() const { return total_; }
  std::uint64_t total_cell_writes() const { return cells_; }
  /// Most-written row and its count (the lifetime-limiting hot spot).
  std::uint64_t max_row_writes() const { return max_; }
  std::uint64_t rows_touched() const { return per_row_.size(); }
  std::uint64_t writes_of(std::uint64_t row_id) const;

  /// Wear imbalance: max / mean over touched rows (1.0 = perfectly even).
  double imbalance() const;

  /// Years until the hottest row exhausts `cell_endurance` write cycles,
  /// given the observed write mix continues at `row_writes_per_second`.
  double lifetime_years(double cell_endurance,
                        double row_writes_per_second) const;

  void reset();

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> per_row_;
  std::uint64_t total_ = 0;
  std::uint64_t cells_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace pinatubo::mem
