// DDR command set plus Pinatubo's PIM extensions (paper §5).
//
// The driver library lowers bit-vector operations into these commands; the
// timing engine charges bus slots and bank occupancy per command; tests
// assert the lowering (e.g. an intra-subarray 4-row OR becomes
// PIM_RESET, 4x ACT, PIM_SENSE per column step, PIM_WRITEBACK).
#pragma once

#include <cstdint>
#include <string>

#include "bitvec/bitvector.hpp"  // BitOp
#include "mem/address.hpp"

namespace pinatubo::mem {

enum class CmdKind : std::uint8_t {
  kAct,           ///< activate a row (also each extra row of a multi-ACT)
  kRead,          ///< column read burst to the bus
  kWrite,         ///< column write burst from the bus
  kPrecharge,
  kModeSet,       ///< MR4 write: selects PIM op / reference (paper Fig. 4)
  kPimReset,      ///< release latched wordlines before multi-row activation
  kPimLoad,       ///< latch a row into a global/IO buffer slot (aux = slot)
  kPimSense,      ///< one PIM sensing step (one column group)
  kPimWriteback,  ///< SA result fed to local write drivers (in-place WD path)
  kPimGdlOp,      ///< inter-subarray op step at the global row buffer
  kPimIoOp,       ///< inter-bank op step at the IO buffer
};

const char* to_string(CmdKind k);

struct Command {
  CmdKind kind = CmdKind::kAct;
  RowAddr addr;           ///< target row (bank-level commands use bank part)
  BitOp op = BitOp::kOr;  ///< for kModeSet
  std::uint32_t aux = 0;  ///< column step index / operand count

  std::string to_string() const;
};

}  // namespace pinatubo::mem
