#include "mem/energy.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace pinatubo::mem {

void EnergyCounter::add(const std::string& component, double pj) {
  PIN_CHECK_MSG(pj >= 0.0, component << " energy " << pj << " < 0");
  parts_[component] += pj;
}

void EnergyCounter::merge(const EnergyCounter& other) {
  for (const auto& [k, v] : other.parts_) parts_[k] += v;
}

double EnergyCounter::total_pj() const {
  double t = 0;
  for (const auto& [k, v] : parts_) t += v;
  return t;
}

double EnergyCounter::get(const std::string& component) const {
  const auto it = parts_.find(component);
  return it == parts_.end() ? 0.0 : it->second;
}

std::string EnergyCounter::to_string() const {
  std::ostringstream os;
  os << "total " << units::format_energy(total_pj());
  for (const auto& [k, v] : parts_)
    os << "; " << k << ' ' << units::format_energy(v);
  return os.str();
}

}  // namespace pinatubo::mem
