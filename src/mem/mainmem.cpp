#include "mem/mainmem.hpp"

#include "common/error.hpp"

namespace pinatubo::mem {

MainMemory::MainMemory(const Geometry& geo, nvm::Tech tech,
                       SenseFidelity fidelity, std::uint64_t seed)
    : codec_(geo), tech_(tech), cell_(&nvm::cell_params(tech)),
      fidelity_(fidelity), rng_(seed),
      zero_row_(geo.rank_row_bits()) {}

void MainMemory::write_row(const RowAddr& addr, const BitVector& data) {
  PIN_CHECK_MSG(data.size() == geometry().rank_row_bits(),
                "row write size " << data.size() << " != "
                                  << geometry().rank_row_bits());
  const std::uint64_t id = codec_.encode(addr);
  wear_.record(id, data.size());
  rows_[id] = data;
}

void MainMemory::write_row_partial(const RowAddr& addr,
                                   std::size_t bit_offset,
                                   const BitVector& data) {
  const std::size_t row_bits = geometry().rank_row_bits();
  PIN_CHECK_MSG(bit_offset + data.size() <= row_bits,
                "partial write [" << bit_offset << ", "
                                  << bit_offset + data.size() << ") exceeds row "
                                  << row_bits);
  const std::uint64_t id = codec_.encode(addr);
  wear_.record(id, data.size());
  auto& row = row_mut(id);
  for (std::size_t i = 0; i < data.size(); ++i)
    row.set(bit_offset + i, data.get(i));
}

BitVector MainMemory::read_row(const RowAddr& addr) const {
  return row_ref(codec_.encode(addr));
}

BitVector MainMemory::read_row_partial(const RowAddr& addr,
                                       std::size_t bit_offset,
                                       std::size_t bits) const {
  const std::size_t row_bits = geometry().rank_row_bits();
  PIN_CHECK_MSG(bit_offset + bits <= row_bits,
                "partial read beyond row width");
  const BitVector& row = row_ref(codec_.encode(addr));
  BitVector out(bits);
  for (std::size_t i = 0; i < bits; ++i)
    if (row.get(bit_offset + i)) out.set(i);
  return out;
}

bool MainMemory::row_exists(const RowAddr& addr) const {
  return rows_.count(codec_.encode(addr)) != 0;
}

BitVector MainMemory::sense_rows(const std::vector<RowAddr>& rows, BitOp op) {
  PIN_CHECK(!rows.empty());
  const auto n = static_cast<unsigned>(rows.size());
  for (const auto& r : rows) {
    codec_.check(r);
    PIN_CHECK_MSG(r.same_subarray(rows.front()),
                  "intra-subarray op requires co-located rows: "
                      << r.to_string() << " vs " << rows.front().to_string());
  }
  PIN_CHECK_MSG(csa_.supports(op, n, *cell_),
                "unsupported sense shape: " << pinatubo::to_string(op)
                                            << " over " << n << " rows on "
                                            << nvm::to_string(tech_));

  const std::size_t width = geometry().rank_row_bits();
  if (fidelity_ == SenseFidelity::kNominal) {
    // Word-parallel equivalent of nominal analog sensing.
    std::vector<const BitVector*> srcs;
    std::vector<BitVector> storage;
    storage.reserve(rows.size());
    for (const auto& r : rows) storage.push_back(read_row(r));
    for (const auto& s : storage) srcs.push_back(&s);
    return BitVector::reduce(op, srcs);
  }

  // Analog path: every bitline sensed independently with fresh variation.
  std::vector<BitVector> operands;
  operands.reserve(rows.size());
  for (const auto& r : rows) operands.push_back(read_row(r));
  BitVector out(width);
  std::vector<bool> column(rows.size());
  for (std::size_t bit = 0; bit < width; ++bit) {
    for (std::size_t r = 0; r < operands.size(); ++r)
      column[r] = operands[r].get(bit);
    if (csa_.sense_op(op, column, *cell_, &rng_)) out.set(bit);
  }
  return out;
}

BitVector MainMemory::buffer_op(const RowAddr& a, const RowAddr& b,
                                BitOp op) const {
  codec_.check(a);
  if (op != BitOp::kInv) codec_.check(b);
  const BitVector ra = read_row(a);
  if (op == BitOp::kInv) return ~ra;
  return apply(op, ra, read_row(b));
}

const BitVector& MainMemory::row_ref(std::uint64_t id) const {
  const auto it = rows_.find(id);
  return it == rows_.end() ? zero_row_ : it->second;
}

BitVector& MainMemory::row_mut(std::uint64_t id) {
  auto it = rows_.find(id);
  if (it == rows_.end())
    it = rows_.emplace(id, BitVector(geometry().rank_row_bits())).first;
  return it->second;
}

}  // namespace pinatubo::mem
