#include "mem/mainmem.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace pinatubo::mem {

MainMemory::MainMemory(const Geometry& geo, nvm::Tech tech,
                       SenseFidelity fidelity, std::uint64_t seed)
    : codec_(geo), tech_(tech), cell_(&nvm::cell_params(tech)),
      fidelity_(fidelity), seed_(seed),
      row_words_((geo.rank_row_bits() + BitVector::kWordBits - 1) /
                 BitVector::kWordBits),
      banks_(static_cast<std::size_t>(geo.channels) * geo.ranks_per_channel *
             geo.banks_per_chip),
      zero_row_(row_words_, 0) {}

std::size_t MainMemory::bank_index(const RowAddr& a) const {
  const auto& g = geometry();
  return (static_cast<std::size_t>(a.channel) * g.ranks_per_channel + a.rank) *
             g.banks_per_chip +
         a.bank;
}

std::size_t MainMemory::row_in_bank(const RowAddr& a) const {
  return static_cast<std::size_t>(a.subarray) *
             geometry().rows_per_subarray +
         a.row;
}

RowAddr MainMemory::physical(const RowAddr& logical) const {
  if (remap_.empty()) return logical;
  const auto it = remap_.find(codec_.encode(logical));
  return it == remap_.end() ? logical : codec_.decode(it->second);
}

void MainMemory::remap_row(const RowAddr& logical, const RowAddr& replacement) {
  codec_.check(logical);
  codec_.check(replacement);
  remap_[codec_.encode(logical)] = codec_.encode(replacement);
}

void MainMemory::reset_campaign() {
  for (BankArena& b : banks_) {
    b.slots.clear();
    b.slabs.clear();
    b.used = 0;
  }
  rows_written_ = 0;
  sense_epoch_ = 0;
  remap_.clear();
  wear_.reset();
}

const MainMemory::Word* MainMemory::find_row(const RowAddr& logical) const {
  codec_.check(logical);
  const RowAddr addr = physical(logical);
  const BankArena& bank = banks_[bank_index(addr)];
  if (bank.slots.empty()) return nullptr;
  const std::uint32_t slot = bank.slots[row_in_bank(addr)];
  if (slot == 0) return nullptr;
  const std::size_t idx = slot - 1;
  return bank.slabs[idx / kRowsPerSlab].get() +
         (idx % kRowsPerSlab) * row_words_;
}

MainMemory::Word* MainMemory::materialize_row(const RowAddr& logical) {
  codec_.check(logical);
  const RowAddr addr = physical(logical);
  BankArena& bank = banks_[bank_index(addr)];
  if (bank.slots.empty())
    bank.slots.assign(geometry().rows_per_bank(), 0);
  std::uint32_t& slot = bank.slots[row_in_bank(addr)];
  if (slot == 0) {
    if (bank.used % kRowsPerSlab == 0)
      bank.slabs.push_back(
          std::make_unique<Word[]>(kRowsPerSlab * row_words_));
    slot = ++bank.used;
    ++rows_written_;
  }
  const std::size_t idx = slot - 1;
  return bank.slabs[idx / kRowsPerSlab].get() +
         (idx % kRowsPerSlab) * row_words_;
}

void MainMemory::finish_write(const RowAddr& logical, Word* row,
                              std::size_t bits, std::size_t word_lo,
                              std::size_t word_hi) {
  // Wear and fault keying follow the PHYSICAL row: a remapped row wears
  // its spare, and the spare's own manufacturing faults apply to it.
  const std::uint64_t pid = codec_.encode(physical(logical));
  wear_.record(pid, bits);
  if (hooks_ == nullptr) return;
  hooks_->on_write(pid, wear_.writes_of(pid), sense_epoch_,
                   {row, row_words_}, word_lo, word_hi);
  // Re-establish the trailing-zero invariant (a stuck-at-1 cell past the
  // row width is physically real but outside the addressable array).
  const std::size_t tail = geometry().rank_row_bits() % BitVector::kWordBits;
  if (tail != 0) row[row_words_ - 1] &= (Word{1} << tail) - 1;
}

void MainMemory::write_row(const RowAddr& addr, const BitVector& data) {
  PIN_CHECK_MSG(data.size() == geometry().rank_row_bits(),
                "row write size " << data.size() << " != "
                                  << geometry().rank_row_bits());
  Word* dst = materialize_row(addr);
  const auto src = data.words();
  std::copy(src.begin(), src.end(), dst);
  finish_write(addr, dst, data.size(), 0, row_words_);
}

void MainMemory::write_row_partial(const RowAddr& addr,
                                   std::size_t bit_offset,
                                   const BitVector& data) {
  const std::size_t row_bits = geometry().rank_row_bits();
  PIN_CHECK_MSG(bit_offset + data.size() <= row_bits,
                "partial write [" << bit_offset << ", "
                                  << bit_offset + data.size() << ") exceeds row "
                                  << row_bits);
  Word* dst = materialize_row(addr);
  copy_bits({dst, row_words_}, bit_offset, data.words(), 0, data.size());
  finish_write(addr, dst, data.size(), bit_offset / BitVector::kWordBits,
               (bit_offset + data.size() + BitVector::kWordBits - 1) /
                   BitVector::kWordBits);
}

BitVector MainMemory::read_row(const RowAddr& addr) const {
  return BitVector::from_words(row_view(addr), geometry().rank_row_bits());
}

BitVector MainMemory::read_row_partial(const RowAddr& addr,
                                       std::size_t bit_offset,
                                       std::size_t bits) const {
  const std::size_t row_bits = geometry().rank_row_bits();
  PIN_CHECK_MSG(bit_offset + bits <= row_bits,
                "partial read beyond row width");
  BitVector out(bits);
  copy_bits(out.words(), 0, row_view(addr), bit_offset, bits);
  return out;
}

bool MainMemory::row_exists(const RowAddr& addr) const {
  return find_row(addr) != nullptr;
}

std::span<const MainMemory::Word> MainMemory::row_view(
    const RowAddr& addr) const {
  const Word* words = find_row(addr);
  return {words != nullptr ? words : zero_row_.data(), row_words_};
}

BitVector MainMemory::sense_rows(const std::vector<RowAddr>& rows, BitOp op) {
  PIN_CHECK(!rows.empty());
  const auto n = static_cast<unsigned>(rows.size());
  for (const auto& r : rows) {
    codec_.check(r);
    PIN_CHECK_MSG(r.same_subarray(rows.front()),
                  "intra-subarray op requires co-located rows: "
                      << r.to_string() << " vs " << rows.front().to_string());
  }
  PIN_CHECK_MSG(csa_.supports(op, n, *cell_),
                "unsupported sense shape: " << pinatubo::to_string(op)
                                            << " over " << n << " rows on "
                                            << nvm::to_string(tech_));

  // One epoch per sense: keys both the analog variation draws and the
  // fault model's flip draws, so every sense (and every re-sense retry)
  // samples fresh, thread-count-independent randomness.
  ++sense_epoch_;

  const std::size_t width = geometry().rank_row_bits();
  std::vector<std::span<const Word>> views;
  views.reserve(rows.size());
  for (const auto& r : rows) views.push_back(row_view(r));

  BitVector out(width);
  const auto outw = out.words();
  if (fidelity_ == SenseFidelity::kNominal) {
    // Word-parallel equivalent of nominal analog sensing, straight from the
    // row views (no operand copies).
    std::copy(views[0].begin(), views[0].end(), outw.begin());
    for (std::size_t r = 1; r < views.size(); ++r) {
      const auto v = views[r];
      switch (op) {
        case BitOp::kOr:
          for (std::size_t w = 0; w < row_words_; ++w) outw[w] |= v[w];
          break;
        case BitOp::kAnd:
          for (std::size_t w = 0; w < row_words_; ++w) outw[w] &= v[w];
          break;
        case BitOp::kXor:
          for (std::size_t w = 0; w < row_words_; ++w) outw[w] ^= v[w];
          break;
        case BitOp::kInv:
          PIN_UNREACHABLE("INV is 1-row");
      }
    }
    if (op == BitOp::kInv)
      for (std::size_t w = 0; w < row_words_; ++w) outw[w] = ~outw[w];
  } else {
    // Analog path: the batched kernel senses 64 bitlines per call; word
    // blocks are sharded over the pool.  Every word derives its own
    // counter-based draw stream from (seed, sense epoch, word index), so
    // results are bit-identical for any thread count.
    const circuit::SenseBatch batch(csa_, *cell_, op, n);
    const std::uint64_t key = CounterRng::stream_base(seed_, sense_epoch_);
    parallel_for(
        0, row_words_,
        [&](std::size_t lo, std::size_t hi) {
          std::vector<std::uint64_t> ops(views.size());
          for (std::size_t w = lo; w < hi; ++w) {
            for (std::size_t r = 0; r < views.size(); ++r) ops[r] = views[r][w];
            outw[w] =
                batch.sense_words(ops, CounterRng::stream_base(key, w));
          }
        },
        /*grain=*/16);
  }
  // BER-driven sense flips (fault model): transient read failures XOR into
  // the sensed output only; the array contents stay intact.  Applied in a
  // serial pass — sense_flips is a pure function of (epoch, word), so the
  // result is identical for any thread count either way.
  if (hooks_ != nullptr) {
    std::vector<std::uint64_t> ids;
    ids.reserve(rows.size());
    for (const auto& r : rows) ids.push_back(codec_.encode(physical(r)));
    const double scale = hooks_->sense_scale(sense_epoch_, ids);
    if (scale > 0.0)
      for (std::size_t w = 0; w < row_words_; ++w)
        outw[w] ^= hooks_->sense_flips(sense_epoch_, w, scale);
  }
  // Restore the trailing-zero invariant (INV, analog lanes and fault flips
  // can set tail bits past the row width).
  const std::size_t tail = width % BitVector::kWordBits;
  if (tail != 0) outw[row_words_ - 1] &= (Word{1} << tail) - 1;
  return out;
}

BitVector MainMemory::buffer_op(const RowAddr& a, const RowAddr& b,
                                BitOp op) const {
  codec_.check(a);
  if (op != BitOp::kInv) codec_.check(b);
  const BitVector ra = read_row(a);
  if (op == BitOp::kInv) return ~ra;
  return apply(op, ra, read_row(b));
}

}  // namespace pinatubo::mem
