#include "mem/mainmem.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace pinatubo::mem {

MainMemory::MainMemory(const Geometry& geo, nvm::Tech tech,
                       SenseFidelity fidelity, std::uint64_t seed)
    : codec_(geo), tech_(tech), cell_(&nvm::cell_params(tech)),
      fidelity_(fidelity), seed_(seed),
      row_words_((geo.rank_row_bits() + BitVector::kWordBits - 1) /
                 BitVector::kWordBits),
      banks_(static_cast<std::size_t>(geo.channels) * geo.ranks_per_channel *
             geo.banks_per_chip),
      zero_row_(row_words_, 0) {}

std::size_t MainMemory::bank_index(const RowAddr& a) const {
  const auto& g = geometry();
  return (static_cast<std::size_t>(a.channel) * g.ranks_per_channel + a.rank) *
             g.banks_per_chip +
         a.bank;
}

std::size_t MainMemory::row_in_bank(const RowAddr& a) const {
  return static_cast<std::size_t>(a.subarray) *
             geometry().rows_per_subarray +
         a.row;
}

const MainMemory::Word* MainMemory::find_row(const RowAddr& addr) const {
  codec_.check(addr);
  const BankArena& bank = banks_[bank_index(addr)];
  if (bank.slots.empty()) return nullptr;
  const std::uint32_t slot = bank.slots[row_in_bank(addr)];
  if (slot == 0) return nullptr;
  const std::size_t idx = slot - 1;
  return bank.slabs[idx / kRowsPerSlab].get() +
         (idx % kRowsPerSlab) * row_words_;
}

MainMemory::Word* MainMemory::materialize_row(const RowAddr& addr) {
  codec_.check(addr);
  BankArena& bank = banks_[bank_index(addr)];
  if (bank.slots.empty())
    bank.slots.assign(geometry().rows_per_bank(), 0);
  std::uint32_t& slot = bank.slots[row_in_bank(addr)];
  if (slot == 0) {
    if (bank.used % kRowsPerSlab == 0)
      bank.slabs.push_back(
          std::make_unique<Word[]>(kRowsPerSlab * row_words_));
    slot = ++bank.used;
    ++rows_written_;
  }
  const std::size_t idx = slot - 1;
  return bank.slabs[idx / kRowsPerSlab].get() +
         (idx % kRowsPerSlab) * row_words_;
}

void MainMemory::write_row(const RowAddr& addr, const BitVector& data) {
  PIN_CHECK_MSG(data.size() == geometry().rank_row_bits(),
                "row write size " << data.size() << " != "
                                  << geometry().rank_row_bits());
  wear_.record(codec_.encode(addr), data.size());
  Word* dst = materialize_row(addr);
  const auto src = data.words();
  std::copy(src.begin(), src.end(), dst);
}

void MainMemory::write_row_partial(const RowAddr& addr,
                                   std::size_t bit_offset,
                                   const BitVector& data) {
  const std::size_t row_bits = geometry().rank_row_bits();
  PIN_CHECK_MSG(bit_offset + data.size() <= row_bits,
                "partial write [" << bit_offset << ", "
                                  << bit_offset + data.size() << ") exceeds row "
                                  << row_bits);
  wear_.record(codec_.encode(addr), data.size());
  Word* dst = materialize_row(addr);
  copy_bits({dst, row_words_}, bit_offset, data.words(), 0, data.size());
}

BitVector MainMemory::read_row(const RowAddr& addr) const {
  return BitVector::from_words(row_view(addr), geometry().rank_row_bits());
}

BitVector MainMemory::read_row_partial(const RowAddr& addr,
                                       std::size_t bit_offset,
                                       std::size_t bits) const {
  const std::size_t row_bits = geometry().rank_row_bits();
  PIN_CHECK_MSG(bit_offset + bits <= row_bits,
                "partial read beyond row width");
  BitVector out(bits);
  copy_bits(out.words(), 0, row_view(addr), bit_offset, bits);
  return out;
}

bool MainMemory::row_exists(const RowAddr& addr) const {
  return find_row(addr) != nullptr;
}

std::span<const MainMemory::Word> MainMemory::row_view(
    const RowAddr& addr) const {
  const Word* words = find_row(addr);
  return {words != nullptr ? words : zero_row_.data(), row_words_};
}

BitVector MainMemory::sense_rows(const std::vector<RowAddr>& rows, BitOp op) {
  PIN_CHECK(!rows.empty());
  const auto n = static_cast<unsigned>(rows.size());
  for (const auto& r : rows) {
    codec_.check(r);
    PIN_CHECK_MSG(r.same_subarray(rows.front()),
                  "intra-subarray op requires co-located rows: "
                      << r.to_string() << " vs " << rows.front().to_string());
  }
  PIN_CHECK_MSG(csa_.supports(op, n, *cell_),
                "unsupported sense shape: " << pinatubo::to_string(op)
                                            << " over " << n << " rows on "
                                            << nvm::to_string(tech_));

  const std::size_t width = geometry().rank_row_bits();
  std::vector<std::span<const Word>> views;
  views.reserve(rows.size());
  for (const auto& r : rows) views.push_back(row_view(r));

  BitVector out(width);
  const auto outw = out.words();
  if (fidelity_ == SenseFidelity::kNominal) {
    // Word-parallel equivalent of nominal analog sensing, straight from the
    // row views (no operand copies).
    std::copy(views[0].begin(), views[0].end(), outw.begin());
    for (std::size_t r = 1; r < views.size(); ++r) {
      const auto v = views[r];
      switch (op) {
        case BitOp::kOr:
          for (std::size_t w = 0; w < row_words_; ++w) outw[w] |= v[w];
          break;
        case BitOp::kAnd:
          for (std::size_t w = 0; w < row_words_; ++w) outw[w] &= v[w];
          break;
        case BitOp::kXor:
          for (std::size_t w = 0; w < row_words_; ++w) outw[w] ^= v[w];
          break;
        case BitOp::kInv:
          PIN_UNREACHABLE("INV is 1-row");
      }
    }
    if (op == BitOp::kInv)
      for (std::size_t w = 0; w < row_words_; ++w) outw[w] = ~outw[w];
  } else {
    // Analog path: the batched kernel senses 64 bitlines per call; word
    // blocks are sharded over the pool.  Every word derives its own
    // counter-based draw stream from (seed, sense epoch, word index), so
    // results are bit-identical for any thread count.
    const circuit::SenseBatch batch(csa_, *cell_, op, n);
    const std::uint64_t key = CounterRng::stream_base(seed_, ++sense_epoch_);
    parallel_for(
        0, row_words_,
        [&](std::size_t lo, std::size_t hi) {
          std::vector<std::uint64_t> ops(views.size());
          for (std::size_t w = lo; w < hi; ++w) {
            for (std::size_t r = 0; r < views.size(); ++r) ops[r] = views[r][w];
            outw[w] =
                batch.sense_words(ops, CounterRng::stream_base(key, w));
          }
        },
        /*grain=*/16);
  }
  // Restore the trailing-zero invariant (INV and analog lanes can set tail
  // bits past the row width).
  const std::size_t tail = width % BitVector::kWordBits;
  if (tail != 0) outw[row_words_ - 1] &= (Word{1} << tail) - 1;
  return out;
}

BitVector MainMemory::buffer_op(const RowAddr& a, const RowAddr& b,
                                BitOp op) const {
  codec_.check(a);
  if (op != BitOp::kInv) codec_.check(b);
  const BitVector ra = read_row(a);
  if (op == BitOp::kInv) return ~ra;
  return apply(op, ra, read_row(b));
}

}  // namespace pinatubo::mem
