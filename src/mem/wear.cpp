#include "mem/wear.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pinatubo::mem {

void WearTracker::record(std::uint64_t row_id, std::uint64_t bits) {
  const std::uint64_t n = ++per_row_[row_id];
  max_ = std::max(max_, n);
  ++total_;
  cells_ += bits;
}

std::uint64_t WearTracker::writes_of(std::uint64_t row_id) const {
  const auto it = per_row_.find(row_id);
  return it == per_row_.end() ? 0 : it->second;
}

double WearTracker::imbalance() const {
  if (per_row_.empty()) return 1.0;
  const double mean =
      static_cast<double>(total_) / static_cast<double>(per_row_.size());
  return static_cast<double>(max_) / mean;
}

double WearTracker::lifetime_years(double cell_endurance,
                                   double row_writes_per_second) const {
  PIN_CHECK(cell_endurance > 0 && row_writes_per_second > 0);
  if (total_ == 0) return 1e18;  // nothing written: effectively unlimited
  // The hottest row receives max_/total_ of the write stream.
  const double hot_rate = row_writes_per_second *
                          static_cast<double>(max_) /
                          static_cast<double>(total_);
  const double seconds = cell_endurance / hot_rate;
  return seconds / (365.25 * 24 * 3600);
}

void WearTracker::reset() {
  per_row_.clear();
  total_ = 0;
  cells_ = 0;
  max_ = 0;
}

}  // namespace pinatubo::mem
