// Memory timing parameter sets.
//
// PCM numbers are the paper's quoted CACTI-3DD triplet
// (tRCD-tCL-tWR = 18.3-8.9-151.1 ns); DRAM numbers are standard DDR3-1600.
// The DDR3-1600 channel carries commands in 1.25 ns slots (800 MHz command
// clock) and moves data at 12.8 GB/s per channel.
#pragma once

namespace pinatubo::mem {

struct TimingParams {
  double t_cmd_ns;   ///< one command-bus slot
  double t_rcd_ns;   ///< activate -> first data sense complete
  double t_cl_ns;    ///< additional column (sense) step
  double t_wr_ns;    ///< row write / write recovery
  double t_rp_ns;    ///< precharge
  double t_ras_ns;   ///< min activate-to-precharge
};

/// Channel (bus) characteristics.
struct BusParams {
  double cmd_slot_ns = 1.25;   ///< command issue granularity
  double data_gbps = 12.8;     ///< peak data bandwidth per channel (GB/s)
};

/// 1T1R PCM main memory (paper §6.1).
constexpr TimingParams pcm_timing() {
  return {1.25, 18.3, 8.9, 151.1, 5.0, 25.0};
}

/// 65 nm DDR3-1600 DRAM (the S-DRAM substrate).
constexpr TimingParams dram_timing() {
  return {1.25, 13.75, 13.75, 15.0, 13.75, 35.0};
}

constexpr BusParams ddr3_1600_bus() { return {}; }

}  // namespace pinatubo::mem
