// Reproduces Fig. 7: the modified local-wordline driver's multi-row
// activation — RESET, sequential row-address decodes, wordlines latched
// until the next RESET.  The transient testbench replaces the paper's
// HSPICE run; the rendered waves mirror its RESET / DEC_n / WL_n panels.
#include <cstdio>

#include "circuit/lwl_driver.hpp"
#include "common/table.hpp"

using namespace pinatubo;
using namespace pinatubo::circuit;

int main() {
  // Paper-style stimulus: RESET pulse, then decode rows 0 and 2; row 1
  // never addressed; a second RESET at 4 ns releases everything.
  const std::vector<LwlEvent> events{
      {0.1, 0.4, -1},  // RESET
      {1.0, 0.5, 0},   // decode row 0
      {2.0, 0.5, 2},   // decode row 2
  };
  const auto res = simulate_lwl_transient(3, events, 5.0);

  std::printf("Fig. 7 — LWL driver multi-row activation transient:\n\n%s\n",
              res.waveform.to_ascii(72, 0.0, 1.5).c_str());

  Table t("Wordline latch state at t = 5 ns");
  t.set_header({"wordline", "decoded?", "latched high?", "expected"});
  const bool expect[] = {true, false, true};
  int failures = 0;
  for (std::size_t i = 0; i < res.final_states.size(); ++i) {
    t.add_row({"WL_" + std::to_string(i), expect[i] ? "yes" : "no",
               res.final_states[i] ? "yes" : "no",
               expect[i] ? "high" : "low"});
    failures += res.final_states[i] != expect[i];
  }
  t.print();

  // Release check: a trailing RESET must drop every latched wordline.
  auto with_release = events;
  with_release.push_back({4.0, 0.5, -1});
  const auto rel = simulate_lwl_transient(3, with_release, 5.2);
  bool any_high = false;
  for (const bool s : rel.final_states) any_high |= s;
  std::printf("\nafter trailing RESET: %s\n",
              any_high ? "FAIL — wordline stuck" : "all wordlines released");
  failures += any_high;

  std::printf("Fig. 7 validation: %s\n",
              failures == 0 ? "LATCH BEHAVIOUR CORRECT" : "FAILURES");
  return failures == 0 ? 0 : 1;
}
