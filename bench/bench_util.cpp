#include "bench_util.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "sim/simd_backend.hpp"

namespace pinatubo::bench {

SuiteRun run_suite(sim::Backend& backend,
                   const std::vector<apps::NamedTrace>& workloads) {
  SuiteRun run;
  run.backend = backend.name();
  run.results.reserve(workloads.size());
  for (const auto& w : workloads) run.results.push_back(backend.execute(w.trace));
  return run;
}

Baselines run_baselines(const std::vector<apps::NamedTrace>& workloads) {
  sim::SimdBackend dram(sim::MemKind::kDram);
  sim::SimdBackend pcm(sim::MemKind::kPcm);
  return {run_suite(dram, workloads), run_suite(pcm, workloads)};
}

RatioMatrix build_matrix(const std::vector<apps::NamedTrace>& workloads,
                         const Baselines& baselines,
                         const std::vector<SuiteRun>& backends,
                         const std::vector<bool>& vs_dram,
                         const Metric& metric) {
  PIN_CHECK(backends.size() == vs_dram.size());
  RatioMatrix m;
  for (const auto& w : workloads) m.workload_names.push_back(w.name);
  for (std::size_t b = 0; b < backends.size(); ++b) {
    m.backend_names.push_back(backends[b].backend);
    const auto& base = vs_dram[b] ? baselines.simd_dram : baselines.simd_pcm;
    std::vector<double> col;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      const double ref = metric(base.results[w]);
      const double val = metric(backends[b].results[w]);
      PIN_CHECK_MSG(val > 0, backends[b].backend << " on " << workloads[w].name);
      col.push_back(ref / val);
    }
    m.gmean.push_back(geomean(col));
    // Transpose into [workload][backend].
    if (m.ratios.empty()) m.ratios.resize(workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w)
      m.ratios[w].push_back(col[w]);
  }
  return m;
}

Table matrix_table(const std::string& title, const RatioMatrix& m,
                   const std::vector<apps::NamedTrace>& workloads) {
  Table t(title);
  std::vector<std::string> header{"group", "workload"};
  for (const auto& b : m.backend_names) header.push_back(b);
  t.set_header(header);
  for (std::size_t w = 0; w < m.workload_names.size(); ++w) {
    std::vector<std::string> row{workloads[w].group, m.workload_names[w]};
    for (const double r : m.ratios[w]) row.push_back(Table::mult(r));
    t.add_row(row);
  }
  t.add_separator();
  std::vector<std::string> grow{"", "Gmean"};
  for (const double g : m.gmean) grow.push_back(Table::mult(g));
  t.add_row(grow);
  return t;
}

double parse_scale(int argc, char** argv, double def) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      return std::strtod(argv[i] + 8, nullptr);
  }
  return def;
}

bool parse_flag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

std::string parse_path_arg(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return argv[i] + prefix.size();
    if (flag == argv[i] && i + 1 < argc) return argv[i + 1];
  }
  return {};
}

std::string parse_json_path(int argc, char** argv) {
  return parse_path_arg(argc, argv, "json");
}

std::string parse_trace_path(int argc, char** argv) {
  return parse_path_arg(argc, argv, "trace-out");
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string json_number(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

void JsonReport::add(const std::string& key, double value) {
  fields_.push_back("\"" + json_escape(key) + "\": " + json_number(value));
}

void JsonReport::add(const std::string& key, const std::string& value) {
  fields_.push_back("\"" + json_escape(key) + "\": \"" + json_escape(value) +
                    "\"");
}

void JsonReport::add_array(const std::string& key,
                           const std::vector<double>& values) {
  std::string out = "\"" + json_escape(key) + "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += json_number(values[i]);
  }
  fields_.push_back(out + "]");
}

void JsonReport::add_matrix(const std::string& key, const RatioMatrix& m) {
  std::ostringstream os;
  os << "\"" << json_escape(key) << "\": {\"workloads\": [";
  for (std::size_t i = 0; i < m.workload_names.size(); ++i)
    os << (i ? ", " : "") << "\"" << json_escape(m.workload_names[i]) << "\"";
  os << "], \"backends\": [";
  for (std::size_t i = 0; i < m.backend_names.size(); ++i)
    os << (i ? ", " : "") << "\"" << json_escape(m.backend_names[i]) << "\"";
  os << "], \"ratios\": [";
  for (std::size_t w = 0; w < m.ratios.size(); ++w) {
    os << (w ? ", " : "") << "[";
    for (std::size_t b = 0; b < m.ratios[w].size(); ++b)
      os << (b ? ", " : "") << json_number(m.ratios[w][b]);
    os << "]";
  }
  os << "], \"gmean\": [";
  for (std::size_t i = 0; i < m.gmean.size(); ++i)
    os << (i ? ", " : "") << json_number(m.gmean[i]);
  os << "]}";
  fields_.push_back(os.str());
}

void JsonReport::write(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream f(path);
  PIN_CHECK_MSG(f.good(), "cannot write " << path);
  f << "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i)
    f << "  " << fields_[i] << (i + 1 < fields_.size() ? "," : "") << "\n";
  f << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace pinatubo::bench
