#include "bench_util.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "sim/simd_backend.hpp"

namespace pinatubo::bench {

SuiteRun run_suite(sim::Backend& backend,
                   const std::vector<apps::NamedTrace>& workloads) {
  SuiteRun run;
  run.backend = backend.name();
  run.results.reserve(workloads.size());
  for (const auto& w : workloads) run.results.push_back(backend.execute(w.trace));
  return run;
}

Baselines run_baselines(const std::vector<apps::NamedTrace>& workloads) {
  sim::SimdBackend dram(sim::MemKind::kDram);
  sim::SimdBackend pcm(sim::MemKind::kPcm);
  return {run_suite(dram, workloads), run_suite(pcm, workloads)};
}

RatioMatrix build_matrix(const std::vector<apps::NamedTrace>& workloads,
                         const Baselines& baselines,
                         const std::vector<SuiteRun>& backends,
                         const std::vector<bool>& vs_dram,
                         const Metric& metric) {
  PIN_CHECK(backends.size() == vs_dram.size());
  RatioMatrix m;
  for (const auto& w : workloads) m.workload_names.push_back(w.name);
  for (std::size_t b = 0; b < backends.size(); ++b) {
    m.backend_names.push_back(backends[b].backend);
    const auto& base = vs_dram[b] ? baselines.simd_dram : baselines.simd_pcm;
    std::vector<double> col;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
      const double ref = metric(base.results[w]);
      const double val = metric(backends[b].results[w]);
      PIN_CHECK_MSG(val > 0, backends[b].backend << " on " << workloads[w].name);
      col.push_back(ref / val);
    }
    m.gmean.push_back(geomean(col));
    // Transpose into [workload][backend].
    if (m.ratios.empty()) m.ratios.resize(workloads.size());
    for (std::size_t w = 0; w < workloads.size(); ++w)
      m.ratios[w].push_back(col[w]);
  }
  return m;
}

Table matrix_table(const std::string& title, const RatioMatrix& m,
                   const std::vector<apps::NamedTrace>& workloads) {
  Table t(title);
  std::vector<std::string> header{"group", "workload"};
  for (const auto& b : m.backend_names) header.push_back(b);
  t.set_header(header);
  for (std::size_t w = 0; w < m.workload_names.size(); ++w) {
    std::vector<std::string> row{workloads[w].group, m.workload_names[w]};
    for (const double r : m.ratios[w]) row.push_back(Table::mult(r));
    t.add_row(row);
  }
  t.add_separator();
  std::vector<std::string> grow{"", "Gmean"};
  for (const double g : m.gmean) grow.push_back(Table::mult(g));
  t.add_row(grow);
  return t;
}

double parse_scale(int argc, char** argv, double def) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0)
      return std::strtod(argv[i] + 8, nullptr);
  }
  return def;
}

}  // namespace pinatubo::bench
