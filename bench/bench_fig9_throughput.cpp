// Reproduces Fig. 9: Pinatubo's OR-operation throughput (GBps) versus
// bit-vector length (2^10 .. 2^20) for 2..128-row operations.
//
// Expected shape (paper):
//   * throughput rises with vector length;
//   * turning point A at 2^14 (SA sharing: longer vectors need serial
//     column sensing steps);
//   * turning point B at 2^19 (row-group limit: longer vectors map to
//     ranks that work in serial);
//   * more rows per op => proportionally more equivalent bandwidth,
//     crossing from below the DDR3 bus bandwidth (12.8 GB/s) through the
//     memory-internal region into the beyond-internal region (~1e4 GBps).
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "pinatubo/backend.hpp"

using namespace pinatubo;

int main() {
  const mem::Geometry geo;
  core::PinatuboBackend pin(geo, {nvm::Tech::kPcm, 128});

  const std::vector<unsigned> row_counts{2, 4, 8, 16, 32, 64, 128};
  std::vector<std::string> x_labels;
  for (unsigned a = 10; a <= 20; ++a) x_labels.push_back(std::to_string(a));

  Table table("Fig. 9 — Pinatubo OR throughput (GBps) vs bit-vector length");
  std::vector<std::string> header{"rows\\len(2^n)"};
  for (const auto& x : x_labels) header.push_back(x);
  table.set_header(header);

  LogChart chart("Fig. 9 — OR throughput", "GBps");
  chart.set_x_labels(x_labels);
  chart.add_hline("DDR3 bus bandwidth", 12.8);

  for (const unsigned n : row_counts) {
    std::vector<std::string> row{std::to_string(n) + "-row"};
    std::vector<double> series;
    for (unsigned a = 10; a <= 20; ++a) {
      const std::uint64_t bits = 1ull << a;
      // n consecutively allocated vectors, in-place destination.
      std::vector<std::uint64_t> ids;
      for (unsigned k = 0; k < n; ++k) ids.push_back(k);
      const auto cost = pin.op_cost(BitOp::kOr, ids, n - 1, bits, false, 0.5);
      const double gbps =
          static_cast<double>(n) * static_cast<double>(bits) / 8.0 /
          cost.time_ns;
      row.push_back(Table::num(gbps, 3));
      series.push_back(gbps);
    }
    table.add_row(row);
    chart.add_series(std::to_string(n) + "-row", series);
  }
  table.add_note("turning point A expected at 2^14 (SA 32:1 sharing)");
  table.add_note("turning point B expected at 2^19 (row-group / rank limit)");
  table.add_note("DDR3-1600 bus bandwidth = 12.8 GBps");
  table.print();
  std::printf("\n");
  chart.print();
  return 0;
}
