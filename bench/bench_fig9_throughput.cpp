// Reproduces Fig. 9: Pinatubo's OR-operation throughput (GBps) versus
// bit-vector length (2^10 .. 2^20) for 2..128-row operations.
//
// Expected shape (paper):
//   * throughput rises with vector length;
//   * turning point A at 2^14 (SA sharing: longer vectors need serial
//     column sensing steps);
//   * turning point B at 2^19 (row-group limit: longer vectors map to
//     ranks that work in serial);
//   * more rows per op => proportionally more equivalent bandwidth,
//     crossing from below the DDR3 bus bandwidth (12.8 GB/s) through the
//     memory-internal region into the beyond-internal region (~1e4 GBps).
//
// Extension section (beyond the paper): batched throughput through the
// execution engine on a two-rank workload.  `--serial` prices the same
// batch in program order (the paper's synchronous driver); `--json <path>`
// dumps both sections machine-readably.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/schedule_trace.hpp"
#include "pinatubo/allocator.hpp"
#include "pinatubo/backend.hpp"
#include "pinatubo/engine.hpp"
#include "pinatubo/scheduler.hpp"

using namespace pinatubo;
using namespace pinatubo::bench;

int main(int argc, char** argv) {
  const bool serial_only = parse_flag(argc, argv, "serial");
  JsonReport json;

  const mem::Geometry geo;
  core::PinatuboBackend pin(geo, {nvm::Tech::kPcm, 128});

  const std::vector<unsigned> row_counts{2, 4, 8, 16, 32, 64, 128};
  std::vector<std::string> x_labels;
  for (unsigned a = 10; a <= 20; ++a) x_labels.push_back(std::to_string(a));

  Table table("Fig. 9 — Pinatubo OR throughput (GBps) vs bit-vector length");
  std::vector<std::string> header{"rows\\len(2^n)"};
  for (const auto& x : x_labels) header.push_back(x);
  table.set_header(header);

  LogChart chart("Fig. 9 — OR throughput", "GBps");
  chart.set_x_labels(x_labels);
  chart.add_hline("DDR3 bus bandwidth", 12.8);

  for (const unsigned n : row_counts) {
    std::vector<std::string> row{std::to_string(n) + "-row"};
    std::vector<double> series;
    for (unsigned a = 10; a <= 20; ++a) {
      const std::uint64_t bits = 1ull << a;
      // n consecutively allocated vectors, in-place destination.
      std::vector<std::uint64_t> ids;
      for (unsigned k = 0; k < n; ++k) ids.push_back(k);
      const auto cost = pin.op_cost(BitOp::kOr, ids, n - 1, bits, false, 0.5);
      const double gbps =
          static_cast<double>(n) * static_cast<double>(bits) / 8.0 /
          cost.time_ns;
      row.push_back(Table::num(gbps, 3));
      series.push_back(gbps);
    }
    table.add_row(row);
    chart.add_series(std::to_string(n) + "-row", series);
    json.add_array("or_gbps_" + std::to_string(n) + "row", series);
  }
  table.add_note("turning point A expected at 2^14 (SA 32:1 sharing)");
  table.add_note("turning point B expected at 2^19 (row-group / rank limit)");
  table.add_note("DDR3-1600 bus bandwidth = 12.8 GBps");
  table.print();
  std::printf("\n");
  chart.print();

  // --- Extension: batched engine throughput on a two-rank workload ----
  // 64 independent 8-row ORs on full-group (2^19-bit) vectors whose
  // consecutive ops alternate ranks: the engine overlaps the two rank
  // clusters, the serial baseline sums every op.
  core::RowAllocator alloc(geo, core::AllocPolicy::kPimAware);
  core::OpScheduler sched(geo, core::SchedulerConfig{128, nvm::Tech::kPcm});
  core::PinatuboCostModel model(geo, nvm::Tech::kPcm);

  constexpr unsigned kOps = 64;
  constexpr unsigned kRowsPerOp = 8;
  constexpr std::uint64_t kBits = 1ull << 19;
  // Full-group vectors: 128 rows/subarray, 64 subarrays/rank, so index
  // 8192 is the first vector of rank 1.
  const std::uint64_t rank1 = 64ull * 128;
  std::vector<core::OpPlan> plans;
  std::vector<std::uint64_t> cursor{0, rank1};
  for (unsigned op = 0; op < kOps; ++op) {
    auto& index = cursor[op % 2];
    std::vector<core::Placement> srcs;
    for (unsigned k = 0; k < kRowsPerOp; ++k)
      srcs.push_back(alloc.virtual_placement(index++, kBits));
    plans.push_back(sched.plan(BitOp::kOr, srcs, srcs.back(), false));
  }

  const double moved_bytes =
      static_cast<double>(kOps) * kRowsPerOp * kBits / 8.0;
  mem::Cost serial;
  for (const auto& p : plans) serial += model.plan_cost(p);
  const double serial_gbps = moved_bytes / serial.time_ns;

  const core::ExecutionEngine engine(
      model, core::EngineOptions{serial_only});
  const auto r = engine.run(plans);
  const double engine_gbps = moved_bytes / r.cost.time_ns;

  Table bt(serial_only
               ? "Batched throughput — serial baseline (--serial)"
               : "Batched throughput — engine vs serial baseline");
  bt.set_header({"schedule", "time", "GBps"});
  bt.add_row({"serial sum", units::format_time(serial.time_ns),
              Table::num(serial_gbps, 3)});
  bt.add_row({serial_only ? "engine (serial mode)" : "engine (overlapped)",
              units::format_time(r.cost.time_ns),
              Table::num(engine_gbps, 3)});
  bt.add_row({"speedup", "-", Table::mult(serial.time_ns / r.cost.time_ns)});
  bt.add_note("64 independent 8-row ORs on 2^19-bit vectors, ops alternate");
  bt.add_note("ranks; the engine overlaps the two rank clusters");
  std::printf("\n");
  bt.print();

  json.add("batched_ops", static_cast<double>(kOps));
  json.add("batched_serial_gbps", serial_gbps);
  json.add("batched_engine_gbps", engine_gbps);
  json.add("batched_speedup", serial.time_ns / r.cost.time_ns);
  json.add("engine_mode", serial_only ? "serial" : "overlapped");
  json.write(parse_json_path(argc, argv));

  const std::string trace_path = parse_trace_path(argc, argv);
  if (!trace_path.empty()) {
    obs::TraceSession trace(true);
    obs::render_schedule(trace, plans, r, 0.0);
    trace.write_chrome_json(trace_path);
    std::printf("\nwrote batched-section schedule trace to %s (%zu spans)\n",
                trace_path.c_str(), trace.spans().size());
  }
  return 0;
}
