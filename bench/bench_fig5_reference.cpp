// Reproduces Fig. 5: how the SA reference value moves to turn a read into
// an OR — the bitline resistance cases and the reference placement, for
// normal reads and for 2..128-row OR/AND on each NVM technology.
#include <cstdio>

#include "circuit/csa.hpp"
#include "circuit/reference.hpp"
#include "common/table.hpp"
#include "nvm/cell.hpp"

using namespace pinatubo;
using namespace pinatubo::circuit;

int main() {
  for (const auto tech :
       {nvm::Tech::kPcm, nvm::Tech::kSttMram, nvm::Tech::kReRam}) {
    const auto& cell = nvm::cell_params(tech);
    Table t(std::string("Fig. 5 — reference placement, ") +
            nvm::to_string(tech));
    t.set_header({"operation", "I(result=1) uA", "I_ref uA",
                  "I(result=0) uA", "boundary ratio", "sensible?"});
    auto add = [&](const char* name, const Reference& r, bool ok) {
      t.add_row({name, Table::num(r.i_result1_a * 1e6, 4),
                 Table::num(r.i_ref_a * 1e6, 4),
                 Table::num(r.i_result0_a * 1e6, 4),
                 Table::num(r.boundary_ratio(), 4), ok ? "yes" : "no"});
    };
    const CsaModel csa;
    add("READ", read_reference(cell), true);
    for (unsigned n : {2u, 4u, 8u, 32u, 128u, 256u}) {
      const auto r = op_reference(cell, BitOp::kOr, n);
      add((std::to_string(n) + "-row OR").c_str(), r,
          csa.supports(BitOp::kOr, n, cell));
    }
    add("2-row AND", op_reference(cell, BitOp::kAnd, 2),
        csa.supports(BitOp::kAnd, 2, cell));
    t.add_note("Rlow = " + Table::num(cell.r_low_ohm / 1e3) +
               " kOhm, Rhigh = " + Table::num(cell.r_high_ohm / 1e3) +
               " kOhm (ON/OFF " + Table::num(cell.on_off_ratio()) + ")");
    t.add_note("sensible = boundary ratio >= CSA minimum (" +
               Table::num(csa.config().min_boundary_ratio) + ")");
    t.print();
    std::printf("\n");
  }
  return 0;
}
