// Extension beyond the paper: PCM write endurance under PIM.
//
// Every Pinatubo op ends in a row write, and chained ops (Pinatubo-2, or
// any AND/XOR fold) hammer their accumulator row once per step.  This runs
// a sustained multi-operand OR workload through the functional runtime for
// both configurations and reads the wear ledger: row writes, hot-spot
// imbalance, and the implied lifetime of the hottest row at a sustained
// op rate — multi-row activation turns out to be an ENDURANCE feature,
// not just a performance one.
#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "pinatubo/driver.hpp"

using namespace pinatubo;

namespace {

struct WearResult {
  mem::WearTracker wear;
  double op_time_ns;
};

WearResult run(unsigned max_rows) {
  core::PimRuntime::Options opts;
  opts.max_rows = max_rows;
  core::PimRuntime pim(mem::Geometry{}, opts);
  Rng rng(5);

  const std::uint64_t bits = 1ull << 14;
  std::vector<core::PimRuntime::Handle> vecs;
  for (int i = 0; i < 64; ++i) {
    vecs.push_back(pim.pim_malloc(bits));
    pim.pim_write(vecs.back(), BitVector::random(bits, 0.3, rng));
  }
  pim.memory().wear().reset();  // measure op-induced wear only
  pim.reset_cost();

  // 50 rounds of a 64-operand OR accumulated into the last vector.
  for (int round = 0; round < 50; ++round)
    pim.pim_op(BitOp::kOr, vecs, vecs.back());
  return {pim.memory().wear(), pim.cost().time_ns};
}

}  // namespace

int main() {
  const auto pin128 = run(128);
  const auto pin2 = run(2);

  // PCM cell endurance ~1e8; assume the DIMM sustains ops back-to-back.
  const double endurance = 1e8;
  auto rate = [](const WearResult& r) {
    return static_cast<double>(r.wear.total_row_writes()) /
           (r.op_time_ns * 1e-9);
  };

  Table t("Extension — PCM endurance under chained vs multi-row ops");
  t.set_header({"metric", "Pinatubo-128", "Pinatubo-2"});
  t.add_row({"row writes (50x 64-op OR)",
             std::to_string(pin128.wear.total_row_writes()),
             std::to_string(pin2.wear.total_row_writes())});
  t.add_row({"hottest row writes", std::to_string(pin128.wear.max_row_writes()),
             std::to_string(pin2.wear.max_row_writes())});
  t.add_row({"wear imbalance (max/mean)",
             Table::num(pin128.wear.imbalance(), 3),
             Table::num(pin2.wear.imbalance(), 3)});
  t.add_row({"workload time", units::format_time(pin128.op_time_ns),
             units::format_time(pin2.op_time_ns)});
  auto lifetime_s = [&](const WearResult& r) {
    return r.wear.lifetime_years(endurance, rate(r)) * 365.25 * 24 * 3600;
  };
  t.add_row({"hot-row lifetime @1e8 cycles, 100% duty",
             Table::num(lifetime_s(pin128), 3) + " s",
             Table::num(lifetime_s(pin2), 3) + " s"});
  // Rotating the accumulator across the subarray's 128 rows (a trivial
  // allocator policy) spreads the hot spot.
  t.add_row({"ditto, with 128-row accumulator rotation",
             Table::num(lifetime_s(pin128) * 128 / 3600, 3) + " h",
             Table::num(lifetime_s(pin2) * 128 / 3600, 3) + " h"});
  t.add_note("a 2-row chain writes its accumulator once per step: 63");
  t.add_note("intermediate writes per op vs one for a 128-row activation —");
  t.add_note("multi-row activation is an endurance feature, and sustained");
  t.add_note("PIM accumulation NEEDS wear rotation: a hammered PCM row");
  t.add_note("dies in seconds at full duty cycle");
  t.print();

  const double wear_ratio =
      static_cast<double>(pin2.wear.max_row_writes()) /
      static_cast<double>(pin128.wear.max_row_writes());
  std::printf("\nhot-row wear, Pinatubo-2 vs Pinatubo-128: %.0fx\n",
              wear_ratio);
  return 0;
}
