// Extension beyond the paper: PCM write endurance under PIM.
//
// Every Pinatubo op ends in a row write, and chained ops (Pinatubo-2, or
// any AND/XOR fold) hammer their accumulator row once per step.  This runs
// a sustained multi-operand OR workload through the functional runtime for
// both configurations and reads the wear ledger: row writes, hot-spot
// imbalance, and the implied lifetime of the hottest row at a sustained
// op rate — multi-row activation turns out to be an ENDURANCE feature,
// not just a performance one.
//
// A second section closes the loop with the fault model (DESIGN.md §10):
// the same hammering runs with an endurance knee + wear-out injection and
// write-verify + spare-row remapping enabled, measuring how long the
// accumulator row actually survives and how far row sparing stretches it.
//
// `--json BENCH_endurance.json` writes the headline numbers.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "pinatubo/driver.hpp"

using namespace pinatubo;

namespace {

struct WearResult {
  mem::WearTracker wear;
  double op_time_ns;
};

WearResult run(unsigned max_rows) {
  core::PimRuntime::Options opts;
  opts.max_rows = max_rows;
  core::PimRuntime pim(mem::Geometry{}, opts);
  Rng rng(5);

  const std::uint64_t bits = 1ull << 14;
  std::vector<core::PimRuntime::Handle> vecs;
  for (int i = 0; i < 64; ++i) {
    vecs.push_back(pim.pim_malloc(bits));
    pim.pim_write(vecs.back(), BitVector::random(bits, 0.3, rng));
  }
  pim.memory().wear().reset();  // measure op-induced wear only
  pim.reset_cost();

  // 50 rounds of a 64-operand OR accumulated into the last vector.
  for (int round = 0; round < 50; ++round)
    pim.pim_op(BitOp::kOr, vecs, vecs.back());
  return {pim.memory().wear(), pim.cost().time_ns};
}

// Hammer an accumulator row through the wear-out fault model until spare
// rows start dying: measures writes-to-first-remap (the row's real
// lifetime under the injected knee) and how many spares the workload eats.
struct WearoutRun {
  std::uint64_t rounds = 0;
  std::uint64_t first_remap_round = 0;  ///< 0 = the row never died
  std::uint64_t remaps = 0;
  std::uint64_t wearout_cells = 0;
  std::uint64_t detected = 0;
  double knee = 0;
  double wearout_rate = 0;
};

WearoutRun run_wearout() {
  core::PimRuntime::Options opts;
  opts.max_rows = 2;  // the chained config: 63 accumulator writes per op
  opts.reliability.fault.enabled = true;
  opts.reliability.fault.endurance_cycles = 500;
  opts.reliability.fault.wearout_rate = 0.1;
  // Persistent faults only: write-verify + remap, no sense noise.
  opts.reliability.verify.sense = reliability::SenseVerify::kNone;
  opts.reliability.verify.writes = reliability::WriteVerify::kReadback;
  opts.reliability.retry.spare_rows = 16;
  core::PimRuntime pim(mem::Geometry{}, opts);
  Rng rng(5);

  const std::uint64_t bits = 1ull << 14;
  std::vector<core::PimRuntime::Handle> vecs;
  for (int i = 0; i < 64; ++i) {
    vecs.push_back(pim.pim_malloc(bits));
    pim.pim_write(vecs.back(), BitVector::random(bits, 0.3, rng));
  }

  WearoutRun r;
  r.rounds = 40;
  r.knee = opts.reliability.fault.endurance_cycles;
  r.wearout_rate = opts.reliability.fault.wearout_rate;
  for (std::uint64_t round = 1; round <= r.rounds; ++round) {
    pim.pim_op(BitOp::kOr, vecs, vecs.back());
    if (r.first_remap_round == 0 && pim.stats().remaps > 0)
      r.first_remap_round = round;
  }
  r.remaps = pim.stats().remaps;
  r.detected = pim.stats().detected_faults;
  r.wearout_cells = pim.fault_model()->wearout_cells();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_path(argc, argv);
  const auto pin128 = run(128);
  const auto pin2 = run(2);

  // PCM cell endurance ~1e8; assume the DIMM sustains ops back-to-back.
  const double endurance = 1e8;
  auto rate = [](const WearResult& r) {
    return static_cast<double>(r.wear.total_row_writes()) /
           (r.op_time_ns * 1e-9);
  };

  Table t("Extension — PCM endurance under chained vs multi-row ops");
  t.set_header({"metric", "Pinatubo-128", "Pinatubo-2"});
  t.add_row({"row writes (50x 64-op OR)",
             std::to_string(pin128.wear.total_row_writes()),
             std::to_string(pin2.wear.total_row_writes())});
  t.add_row({"hottest row writes", std::to_string(pin128.wear.max_row_writes()),
             std::to_string(pin2.wear.max_row_writes())});
  t.add_row({"wear imbalance (max/mean)",
             Table::num(pin128.wear.imbalance(), 3),
             Table::num(pin2.wear.imbalance(), 3)});
  t.add_row({"workload time", units::format_time(pin128.op_time_ns),
             units::format_time(pin2.op_time_ns)});
  auto lifetime_s = [&](const WearResult& r) {
    return r.wear.lifetime_years(endurance, rate(r)) * 365.25 * 24 * 3600;
  };
  t.add_row({"hot-row lifetime @1e8 cycles, 100% duty",
             Table::num(lifetime_s(pin128), 3) + " s",
             Table::num(lifetime_s(pin2), 3) + " s"});
  // Rotating the accumulator across the subarray's 128 rows (a trivial
  // allocator policy) spreads the hot spot.
  t.add_row({"ditto, with 128-row accumulator rotation",
             Table::num(lifetime_s(pin128) * 128 / 3600, 3) + " h",
             Table::num(lifetime_s(pin2) * 128 / 3600, 3) + " h"});
  t.add_note("a 2-row chain writes its accumulator once per step: 63");
  t.add_note("intermediate writes per op vs one for a 128-row activation —");
  t.add_note("multi-row activation is an endurance feature, and sustained");
  t.add_note("PIM accumulation NEEDS wear rotation: a hammered PCM row");
  t.add_note("dies in seconds at full duty cycle");
  t.print();

  const double wear_ratio =
      static_cast<double>(pin2.wear.max_row_writes()) /
      static_cast<double>(pin128.wear.max_row_writes());
  std::printf("\nhot-row wear, Pinatubo-2 vs Pinatubo-128: %.0fx\n",
              wear_ratio);

  // Lifetime under the injected wear-out model: same Pinatubo-2 hammering,
  // but cells actually die past the endurance knee and write-verify +
  // spare-row remapping keep the results correct (DESIGN.md §10).
  const auto wo = run_wearout();
  Table w("Lifetime under the wear-out fault model (Pinatubo-2)");
  w.set_header({"metric", "value"});
  w.add_row({"endurance knee (writes)",
             std::to_string(static_cast<std::uint64_t>(wo.knee))});
  w.add_row({"cell-kill rate past knee", Table::num(wo.wearout_rate, 2)});
  w.add_row({"rounds of 64-op OR", std::to_string(wo.rounds)});
  w.add_row({"round of first remap",
             wo.first_remap_round ? std::to_string(wo.first_remap_round)
                                  : "never"});
  // 63 accumulator writes per round: writes the hot row survived before
  // its first cell died and the row was retired to a spare.
  w.add_row({"hot-row writes at first death",
             wo.first_remap_round
                 ? std::to_string(wo.first_remap_round * 63)
                 : "-"});
  w.add_row({"wear-out cells killed", std::to_string(wo.wearout_cells)});
  w.add_row({"faults caught by write-verify", std::to_string(wo.detected)});
  w.add_row({"spare-row remaps", std::to_string(wo.remaps)});
  w.add_note("each remap retires the worn row and restarts the wear clock");
  w.add_note("on a fresh spare: N spares stretch hot-row lifetime ~(N+1)x");
  w.print();

  bench::JsonReport rep;
  rep.add("row_writes_pin128",
          static_cast<double>(pin128.wear.total_row_writes()));
  rep.add("row_writes_pin2",
          static_cast<double>(pin2.wear.total_row_writes()));
  rep.add("hot_row_writes_pin128",
          static_cast<double>(pin128.wear.max_row_writes()));
  rep.add("hot_row_writes_pin2",
          static_cast<double>(pin2.wear.max_row_writes()));
  rep.add("wear_imbalance_pin128", pin128.wear.imbalance());
  rep.add("wear_imbalance_pin2", pin2.wear.imbalance());
  rep.add("hot_row_lifetime_s_pin128", lifetime_s(pin128));
  rep.add("hot_row_lifetime_s_pin2", lifetime_s(pin2));
  rep.add("hot_row_wear_ratio", wear_ratio);
  rep.add("wearout_knee_writes", wo.knee);
  rep.add("wearout_rate", wo.wearout_rate);
  rep.add("wearout_first_remap_round",
          static_cast<double>(wo.first_remap_round));
  rep.add("wearout_hot_row_writes_at_death",
          static_cast<double>(wo.first_remap_round * 63));
  rep.add("wearout_cells_killed", static_cast<double>(wo.wearout_cells));
  rep.add("wearout_detected_faults", static_cast<double>(wo.detected));
  rep.add("wearout_remaps", static_cast<double>(wo.remaps));
  rep.write(json_path);
  return 0;
}
