// Extension study (beyond the paper): the paper's driver issues one
// operation's command sequence at a time ("ranks work in serial").  The
// execution engine overlaps INDEPENDENT operations that execute on
// different ranks, serializing only on the shared buses.  This prices
// both schedules for sequential multi-row OR workloads whose consecutive
// ops alternate ranks.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "pinatubo/allocator.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/engine.hpp"
#include "pinatubo/scheduler.hpp"

using namespace pinatubo;
using namespace pinatubo::core;

int main() {
  const mem::Geometry geo;
  RowAllocator alloc(geo, AllocPolicy::kPimAware);
  OpScheduler sched(geo, SchedulerConfig{128, nvm::Tech::kPcm});
  PinatuboCostModel model(geo, nvm::Tech::kPcm);

  Table t("Extension — synchronous driver vs execution engine");
  t.set_header({"workload", "ops", "serial", "engine", "speedup"});

  // Full-group vectors: 128 rows/subarray, 64 subarrays/rank, so index
  // 8192 is the first vector of rank 1.
  const std::uint64_t rank1 = 64ull * 128;
  for (const unsigned n : {2u, 8u, 128u}) {
    // 64 independent n-row ORs, consecutive ops on alternating ranks
    // (a batch scheduler would interleave exactly like this).
    std::vector<OpPlan> plans;
    std::vector<std::uint64_t> cursor{0, rank1};
    for (int op = 0; op < 64; ++op) {
      auto& index = cursor[op % 2];
      std::vector<Placement> srcs;
      for (unsigned k = 0; k < n; ++k)
        srcs.push_back(alloc.virtual_placement(index++, 1ull << 19));
      plans.push_back(sched.plan(BitOp::kOr, srcs, srcs.back(), false));
    }
    mem::Cost serial;
    for (const auto& p : plans) serial += model.plan_cost(p);
    const ExecutionEngine engine(model);
    const auto r = engine.run(plans);
    t.add_row({std::to_string(n) + "-row OR x64", "64",
               units::format_time(serial.time_ns),
               units::format_time(r.cost.time_ns),
               Table::mult(serial.time_ns / r.cost.time_ns)});
    // Energy must be schedule-invariant.
    if (std::abs(serial.energy.total_pj() - r.cost.energy.total_pj()) >
        1e-6 * serial.energy.total_pj())
      std::printf("WARNING: energy changed under the engine schedule!\n");
  }
  t.add_note("ops alternate ranks every 128 rows of allocation, so the");
  t.add_note("engine's overlapped schedule approaches 2x on two ranks; the");
  t.add_note("paper's synchronous driver (pim_op without a batch) gets 1x");
  t.print();
  return 0;
}
