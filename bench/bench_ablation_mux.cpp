// Ablation: sense-amplifier sharing (column MUX) width.  The paper's NVM
// point is 32 columns per SA (turning point A at 2^14); this sweeps the
// MUX 8..64 and shows where point A moves and what peak OR throughput and
// SA area do — the density/latency trade the SA sharing embodies.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "nvm/area_model.hpp"
#include "pinatubo/backend.hpp"

using namespace pinatubo;

int main() {
  Table t("Ablation — SA column-MUX sharing");
  t.set_header({"mux", "sense step bits", "128-row OR @2^19", "GBps",
                "point A at 2^", "SA area mm^2"});
  for (const unsigned mux : {8u, 16u, 32u, 64u}) {
    mem::Geometry geo;
    geo.sa_mux_share = mux;
    geo.validate();
    core::PinatuboBackend pin(geo, {nvm::Tech::kPcm, 128});
    std::vector<std::uint64_t> ids;
    for (unsigned k = 0; k < 128; ++k) ids.push_back(k);
    const auto cost =
        pin.op_cost(BitOp::kOr, ids, 127, 1ull << 19, false, 0.5);
    const double gbps = 128.0 * 65536.0 / cost.time_ns;

    nvm::ChipStructure chip;
    chip.sa_mux_share = mux;
    const nvm::AreaModel area(nvm::cell_params(nvm::Tech::kPcm), chip);
    const double sa_mm2 = area.baseline().find("sense amps") / 1e6;

    t.add_row({std::to_string(mux),
               std::to_string(geo.sense_step_bits()),
               pinatubo::units::format_time(cost.time_ns), Table::num(gbps, 4),
               std::to_string(63 - __builtin_clzll(geo.sense_step_bits())),
               Table::num(sa_mm2, 4)});
  }
  t.add_note("narrower MUX = faster ops but proportionally more SA area;");
  t.add_note("the paper's NVM design point is 32 (large current-sense SAs)");
  t.print();
  return 0;
}
