// Ablation: how much of Pinatubo's win comes from the PIM-aware OS
// mapping (paper §5)?  The same traces priced under the PIM-aware
// allocator vs a conventional page-interleaving ("naive") allocator that
// scatters consecutive bit-vectors across subarrays.
#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "pinatubo/backend.hpp"

using namespace pinatubo;
using namespace pinatubo::bench;

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv, 0.25);
  const auto workloads = apps::paper_workloads(scale);

  core::PinatuboBackend aware({}, {nvm::Tech::kPcm, 128,
                                   core::AllocPolicy::kPimAware});
  core::PinatuboBackend naive({}, {nvm::Tech::kPcm, 128,
                                   core::AllocPolicy::kNaive});

  Table t("Ablation — PIM-aware vs naive allocation (Pinatubo-128)");
  t.set_header({"workload", "aware intra%", "naive intra%", "aware time",
                "naive time", "slowdown"});
  for (const auto& w : workloads) {
    const auto ra = aware.execute(w.trace);
    const auto ca = aware.last_class_counts();
    const auto rn = naive.execute(w.trace);
    const auto cn = naive.last_class_counts();
    auto pct = [](const core::PinatuboBackend::ClassCounts& c) {
      const double total =
          static_cast<double>(c.intra + c.inter_sub + c.inter_bank);
      return total > 0 ? 100.0 * static_cast<double>(c.intra) / total : 0.0;
    };
    t.add_row({w.name, Table::num(pct(ca), 3), Table::num(pct(cn), 3),
               pinatubo::units::format_time(ra.bitwise.time_ns),
               pinatubo::units::format_time(rn.bitwise.time_ns),
               Table::mult(rn.bitwise.time_ns / ra.bitwise.time_ns)});
  }
  t.add_note("naive placement demotes intra-subarray ops to the buffer");
  t.add_note("paths, erasing the multi-row activation advantage");
  t.print();
  return 0;
}
