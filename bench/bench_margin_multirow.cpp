// Reproduces the paper's §4.2 multi-row limits: "maximal 128-row
// operations for PCM [and ReRAM] ... for STT-MRAM, since the ON/OFF ratio
// is already low, we conservatively assume maximal 2-row operation", and
// footnote 3: multi-row AND is not supported beyond 2 rows.
//
// Derived here, not asserted: the analytic boundary-ratio sweep plus a
// Monte-Carlo yield analysis with sampled cell variation and SA offset.
#include <cstdio>

#include "circuit/margin.hpp"
#include "common/table.hpp"

using namespace pinatubo;
using namespace pinatubo::circuit;

int main() {
  const CsaModel csa;
  Rng rng(2024);

  for (const auto tech :
       {nvm::Tech::kPcm, nvm::Tech::kSttMram, nvm::Tech::kReRam}) {
    const auto& cell = nvm::cell_params(tech);
    Table t(std::string("n-row OR sensing margin, ") + nvm::to_string(tech));
    t.set_header({"rows", "boundary ratio", "per-side margin", "feasible",
                  "MC yield", "MC worst side"});
    for (const auto& p : margin_sweep(cell, BitOp::kOr, csa, 512)) {
      std::string yield = "-", worst = "-";
      if (p.n_rows <= 256) {
        const auto y =
            monte_carlo_yield(cell, BitOp::kOr, p.n_rows, 20000, csa, rng);
        yield = Table::num(y.yield, 6);
        worst = Table::num(y.worst_side, 6);
      }
      t.add_row({std::to_string(p.n_rows), Table::num(p.boundary_ratio, 4),
                 Table::num(p.side_margin, 4), p.feasible ? "yes" : "NO",
                 yield, worst});
    }
    t.add_note("derived max OR rows: " +
               std::to_string(derived_max_or_rows(tech, csa)));
    t.print();
    std::printf("\n");
  }

  Table and_t("Multi-row AND infeasibility (paper footnote 3), PCM");
  and_t.set_header({"rows", "boundary ratio", "feasible"});
  for (const auto& p :
       margin_sweep(nvm::cell_params(nvm::Tech::kPcm), BitOp::kAnd, csa, 8))
    and_t.add_row({std::to_string(p.n_rows), Table::num(p.boundary_ratio, 4),
                   p.feasible ? "yes" : "NO"});
  and_t.print();

  std::printf(
      "\npaper: PCM/ReRAM support up to 128-row OR; STT-MRAM only 2-row;\n"
      "multi-row AND cannot distinguish Rlow/(n-1)||Rhigh from Rlow/n.\n");
  return 0;
}
