// Reproduces Fig. 6: the modified CSA resolving OR / AND / XOR — the
// HSPICE validation replaced by our transient solver.  For each input
// pattern the three-phase sense runs on real bitline currents; the output
// truth tables and waveforms must match the target op.  Swept across the
// PCM / STT-MRAM / ReRAM resistance corners like the paper's validation.
#include <cstdio>

#include "circuit/csa.hpp"
#include "common/table.hpp"
#include "nvm/cell.hpp"

using namespace pinatubo;
using namespace pinatubo::circuit;

int main() {
  const CsaModel csa;
  int failures = 0;

  for (const auto tech :
       {nvm::Tech::kPcm, nvm::Tech::kSttMram, nvm::Tech::kReRam}) {
    const auto& cell = nvm::cell_params(tech);
    const nvm::BitlineModel bl(cell);
    Table t(std::string("Fig. 6 — CSA transient validation, ") +
            nvm::to_string(tech));
    t.set_header({"op", "row data", "I_bl uA", "I_ref uA", "out", "expect",
                  "resolve ns", "margin V"});

    auto run = [&](BitOp op, std::vector<bool> bits, bool expect) {
      const auto ref = op == BitOp::kXor || op == BitOp::kInv
                           ? read_reference(cell)
                           : op_reference(cell, op,
                                          static_cast<unsigned>(bits.size()));
      std::string pattern;
      for (const bool b : bits) pattern += b ? '1' : '0';
      if (op == BitOp::kXor) {
        // Two micro-steps; report the behavioural result and the second
        // step's transient.
        const bool out = csa.sense_op(op, bits, cell, nullptr);
        const auto tr = csa.sense_transient(
            bl.nominal_current_a({bits[1]}), ref.i_ref_a);
        t.add_row({to_string(op), pattern, "-",
                   Table::num(ref.i_ref_a * 1e6, 3), out ? "1" : "0",
                   expect ? "1" : "0", Table::num(tr.resolve_time_ns, 3),
                   Table::num(tr.margin_v, 3)});
        failures += out != expect;
        return;
      }
      const double i_bl = bl.nominal_current_a(bits);
      const auto tr = csa.sense_transient(i_bl, ref.i_ref_a);
      const bool out = op == BitOp::kInv ? !tr.output : tr.output;
      t.add_row({to_string(op), pattern, Table::num(i_bl * 1e6, 3),
                 Table::num(ref.i_ref_a * 1e6, 3), out ? "1" : "0",
                 expect ? "1" : "0", Table::num(tr.resolve_time_ns, 3),
                 Table::num(tr.margin_v, 3)});
      failures += out != expect;
    };

    run(BitOp::kOr, {false, false}, false);
    run(BitOp::kOr, {true, false}, true);
    run(BitOp::kOr, {true, true}, true);
    run(BitOp::kAnd, {false, false}, false);
    run(BitOp::kAnd, {true, false}, false);
    run(BitOp::kAnd, {true, true}, true);
    run(BitOp::kXor, {false, false}, false);
    run(BitOp::kXor, {true, false}, true);
    run(BitOp::kXor, {true, true}, false);
    run(BitOp::kInv, {false}, true);
    run(BitOp::kInv, {true}, false);
    t.print();
    std::printf("\n");
  }

  // One waveform, rendered like the paper's scope shot: a PCM 2-row OR
  // with pattern (1,0) — the hard case for the OR reference.
  const auto& pcm = nvm::cell_params(nvm::Tech::kPcm);
  const nvm::BitlineModel bl(pcm);
  const auto ref = op_reference(pcm, BitOp::kOr, 2);
  const auto tr =
      CsaModel().sense_transient(bl.nominal_current_a({true, false}),
                                 ref.i_ref_a);
  std::printf("PCM 2-row OR, rows=(1,0) — three-phase transient:\n%s\n",
              tr.waveform.to_ascii().c_str());
  std::printf("Fig. 6 validation: %s (%d mismatches)\n",
              failures == 0 ? "ALL PATTERNS RESOLVE CORRECTLY" : "FAILURES",
              failures);
  return failures == 0 ? 0 : 1;
}
