// Ablation: NVM technology.  The paper evaluates 1T1R PCM but claims
// Pinatubo "does not rely on a certain NVM technology"; this prices the
// same sequential multi-row OR workload on PCM / STT-MRAM / ReRAM with
// each technology's derived row limit, write energetics, and margins.
#include <cstdio>
#include <vector>

#include "circuit/margin.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "pinatubo/backend.hpp"
#include "sim/backend.hpp"

using namespace pinatubo;

int main() {
  // One 128-operand OR over full row groups, sequential placements.
  sim::OpTrace trace;
  trace.name = "128-seq-or";
  for (std::uint64_t i = 0; i < 8; ++i) {
    sim::TraceOp op;
    op.op = BitOp::kOr;
    op.bits = 1ull << 19;
    for (std::uint64_t k = 0; k < 128; ++k) op.srcs.push_back(i * 128 + k);
    op.dst = op.srcs.back();
    trace.ops.push_back(op);
  }

  Table t("Ablation — NVM technology (8x 128-operand OR over 2^19 bits)");
  t.set_header({"tech", "max OR rows", "ON/OFF", "time", "energy",
                "write pJ/bit (SET/RESET)"});
  for (const auto tech :
       {nvm::Tech::kPcm, nvm::Tech::kSttMram, nvm::Tech::kReRam}) {
    core::PinatuboBackend pin({}, {tech, 128});
    const auto r = pin.execute(trace);
    const auto& cell = nvm::cell_params(tech);
    t.add_row({nvm::to_string(tech),
               std::to_string(circuit::derived_max_or_rows(tech)),
               Table::num(cell.on_off_ratio(), 4),
               pinatubo::units::format_time(r.bitwise.time_ns),
               pinatubo::units::format_energy(r.bitwise.energy.total_pj()),
               Table::num(cell.set_energy_pj, 3) + "/" +
                   Table::num(cell.reset_energy_pj, 3)});
  }
  t.add_note("STT-MRAM's low ON/OFF ratio forces 2-row chains (127 steps");
  t.add_note("per op) but its cheap, fast writes soften the energy blow");
  t.print();
  return 0;
}
