// Reproduces Table 1: the benchmark & dataset suite, characterized —
// op counts and mixes, vector lengths, total bits in flight, scalar work,
// and (for Pinatubo) the intra/inter op classification the allocation
// produces.  This is the workload-side ground truth for Figs. 10-12.
#include <cstdio>

#include "bench_util.hpp"
#include "apps/graph.hpp"
#include "common/units.hpp"
#include "pinatubo/backend.hpp"

using namespace pinatubo;
using namespace pinatubo::bench;

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const auto workloads = apps::paper_workloads(scale);

  Table t("Table 1 — benchmarks and data sets (characterized)");
  t.set_header({"group", "workload", "ops", "OR", "AND", "XOR", "INV",
                "vector bits", "src data", "scalar Mops", "intra%"});
  for (const auto& w : workloads) {
    std::size_t n_or = 0, n_and = 0, n_xor = 0, n_inv = 0;
    std::uint64_t bits = 0;
    for (const auto& op : w.trace.ops) {
      switch (op.op) {
        case BitOp::kOr: ++n_or; break;
        case BitOp::kAnd: ++n_and; break;
        case BitOp::kXor: ++n_xor; break;
        case BitOp::kInv: ++n_inv; break;
      }
      bits = std::max(bits, op.bits);
    }
    core::PinatuboBackend pin({}, {nvm::Tech::kPcm, 128});
    pin.execute(w.trace);
    const auto& c = pin.last_class_counts();
    const double total = static_cast<double>(c.intra + c.inter_sub + c.inter_bank);
    t.add_row({w.group, w.name, std::to_string(w.trace.op_count()),
               std::to_string(n_or), std::to_string(n_and),
               std::to_string(n_xor), std::to_string(n_inv),
               std::to_string(bits),
               pinatubo::units::format_bytes(w.trace.total_src_bits() / 8),
               Table::num(w.trace.scalar_ops / 1e6, 3),
               total > 0 ? Table::num(100.0 * c.intra / total, 3) : "-"});
  }
  t.add_note("Vector: a-b-c(s|r) = 2^a-bit vectors, 2^b of them, 2^c-row OR");
  t.add_note("Graph: bitmap BFS on synthetic stand-ins for dblp/eswiki/amazon");
  t.add_note("Fastbit: bitmap-index query batches on a STAR-like event table");
  t.print();

  Table g("Graph dataset stand-ins vs published originals");
  g.set_header({"dataset", "character", "synthetic nodes", "synthetic edges",
                "real nodes", "real edges"});
  for (const auto& preset : {apps::dblp2010_like(), apps::eswiki2013_like(),
                             apps::amazon2008_like()}) {
    const auto graph = apps::build_dataset(preset, 17);
    g.add_row({preset.name, preset.character, std::to_string(graph.nodes()),
               std::to_string(graph.edges()),
               std::to_string(preset.real_nodes),
               std::to_string(preset.real_edges)});
  }
  g.print();
  return 0;
}
