// Reproduces Fig. 12: OVERALL application speedup and energy saving
// (scalar + bitwise) on the Graph and Fastbit applications, normalized to
// the SIMD baseline, including the Ideal bound (zero-cost bitwise ops).
//
// Expected shape (paper): Pinatubo almost reaches Ideal; dblp ~1.37x,
// the loose graphs (eswiki, amazon) far less; Fastbit ~1.29x; overall
// ~1.12x speedup / ~1.11x energy (abstract).  The ceiling is Amdahl's law
// on the bitwise fraction of each application.
#include <cstdio>

#include "bench_util.hpp"
#include "pinatubo/backend.hpp"
#include "sim/acpim_backend.hpp"
#include "sim/ideal_backend.hpp"
#include "sim/sdram_backend.hpp"

using namespace pinatubo;
using namespace pinatubo::bench;

namespace {

void print_matrix(const char* title, const std::vector<apps::NamedTrace>& w,
                  const Baselines& base, const std::vector<SuiteRun>& runs,
                  const std::vector<bool>& vs_dram, const Metric& metric) {
  const auto matrix = build_matrix(w, base, runs, vs_dram, metric);
  auto table = matrix_table(title, matrix, w);
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  auto workloads = apps::graph_workloads();
  for (auto& t : apps::fastbit_workloads()) workloads.push_back(std::move(t));
  const auto baselines = run_baselines(workloads);

  sim::SdramBackend sdram;
  sim::AcPimBackend acpim;
  core::PinatuboBackend pin2({}, {nvm::Tech::kPcm, 2});
  core::PinatuboBackend pin128({}, {nvm::Tech::kPcm, 128});
  sim::IdealBackend ideal(sim::MemKind::kPcm);

  const std::vector<SuiteRun> runs{
      run_suite(sdram, workloads), run_suite(acpim, workloads),
      run_suite(pin2, workloads), run_suite(pin128, workloads),
      run_suite(ideal, workloads)};
  const std::vector<bool> vs_dram{true, false, false, false, false};

  print_matrix("Fig. 12 (left) — overall speedup normalized to SIMD",
               workloads, baselines, runs, vs_dram,
               [](const sim::BackendResult& r) { return r.total_time_ns(); });
  print_matrix("Fig. 12 (right) — overall energy saving normalized to SIMD",
               workloads, baselines, runs, vs_dram,
               [](const sim::BackendResult& r) { return r.total_energy_pj(); });

  // Bitwise time fraction under the SIMD baseline — the Amdahl ceiling.
  Table frac("Bitwise fraction of SIMD-PCM execution (Amdahl ceiling)");
  frac.set_header({"workload", "bitwise %", "ideal speedup"});
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& r = baselines.simd_pcm.results[i];
    const double f = r.bitwise.time_ns / r.total_time_ns();
    frac.add_row({workloads[i].name, Table::num(100 * f, 3),
                  Table::mult(1.0 / (1.0 - f))});
  }
  frac.add_note("paper: dblp 1.37x, Fastbit ~1.29x, overall 1.12x");
  frac.print();
  return 0;
}
