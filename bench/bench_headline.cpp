// The abstract's headline numbers, regenerated end-to-end:
//   "~500x speedup, ~28000x energy saving on bitwise operations, and
//    1.12x overall speedup, 1.11x overall energy saving over the
//    conventional processor"  (§6.2 quotes 2800x for the energy Gmean).
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "pinatubo/backend.hpp"

using namespace pinatubo;
using namespace pinatubo::bench;

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const std::string trace_path = parse_trace_path(argc, argv);
  obs::TraceSession trace(!trace_path.empty());

  const auto workloads = apps::paper_workloads(scale);
  const auto baselines = run_baselines(workloads);
  core::PinatuboBackend pin128({}, {nvm::Tech::kPcm, 128});
  pin128.set_trace(&trace);
  const auto run = run_suite(pin128, workloads);

  std::vector<double> sp_bit, en_bit, sp_all, en_all, sp_best, en_best;
  std::vector<double> sp_apps, en_apps;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& base = baselines.simd_pcm.results[i];
    const auto& ours = run.results[i];
    sp_bit.push_back(base.bitwise.time_ns / ours.bitwise.time_ns);
    en_bit.push_back(base.bitwise.energy.total_pj() /
                     ours.bitwise.energy.total_pj());
    if (workloads[i].group != "Vector") {
      sp_apps.push_back(base.total_time_ns() / ours.total_time_ns());
      en_apps.push_back(base.total_energy_pj() / ours.total_energy_pj());
    }
  }

  Table t("Headline numbers (abstract) — measured vs paper");
  t.set_header({"metric", "measured", "paper"});
  t.add_row({"bitwise speedup (Gmean)", Table::mult(geomean(sp_bit)),
             "~500x"});
  t.add_row({"bitwise speedup (best workload)",
             Table::mult(*std::max_element(sp_bit.begin(), sp_bit.end())),
             "-"});
  t.add_row({"bitwise energy saving (Gmean)", Table::mult(geomean(en_bit)),
             "~2800x (abstract: ~28000x)"});
  t.add_row({"bitwise energy saving (best)",
             Table::mult(*std::max_element(en_bit.begin(), en_bit.end())),
             "-"});
  t.add_row({"overall app speedup (Gmean)", Table::mult(geomean(sp_apps)),
             "1.12x"});
  t.add_row({"overall app energy saving (Gmean)",
             Table::mult(geomean(en_apps)), "1.11x"});
  t.add_note("overall = Graph + Fastbit applications, vs SIMD on PCM");
  t.print();

  JsonReport json;
  json.add("scale", scale);
  json.add("bitwise_speedup_gmean", geomean(sp_bit));
  json.add("bitwise_energy_gmean", geomean(en_bit));
  json.add("app_speedup_gmean", geomean(sp_apps));
  json.add("app_energy_gmean", geomean(en_apps));
  json.add_array("bitwise_speedup", sp_bit);
  json.add_array("bitwise_energy", en_bit);
  json.add_array("app_speedup", sp_apps);
  json.add_array("app_energy", en_apps);
  json.write(parse_json_path(argc, argv));

  if (trace.enabled()) {
    trace.write_chrome_json(trace_path);
    std::printf("wrote schedule trace to %s (%zu spans); open in "
                "chrome://tracing or ui.perfetto.dev\n",
                trace_path.c_str(), trace.spans().size());
  }
  return 0;
}
