// Ablation beyond the paper: compressed bitmaps vs processing-in-memory.
//
// Production FastBit compresses its bitmaps with WAH, which shrinks the
// CPU's memory traffic — the strongest software answer to the memory wall
// that Pinatubo attacks with hardware.  PIM cannot exploit compression
// (the analog sensing needs bits laid out in the rows), so the fair
// question is: CPU+WAH vs Pinatubo on uncompressed rows.
//
// We compress the actual index (Zipf-skewed bins: heads stay literal,
// tails collapse to fills), re-price every query op's CPU cost from the
// real compressed sizes, and compare against the raw-CPU baseline and
// Pinatubo-128.
#include <cstdio>
#include <map>

#include "apps/bitmap_index.hpp"
#include "bitvec/wah.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "pinatubo/backend.hpp"
#include "sim/simd_backend.hpp"

using namespace pinatubo;

int main() {
  const apps::IndexConfig cfg;
  const apps::BitmapIndex index(cfg, 17);

  // Compress every bin bitmap; remember sizes by logical id.
  std::map<std::uint64_t, std::size_t> compressed_bytes;
  double ratio_sum = 0;
  std::size_t nbins = 0;
  for (unsigned a = 0; a < cfg.attributes; ++a)
    for (unsigned b = 0; b < cfg.bins; ++b) {
      const auto w = WahBitmap::compress(index.bin_bitmap(a, b));
      compressed_bytes[index.bitmap_id(a, b)] = w.size_bytes();
      ratio_sum += w.compression_ratio();
      ++nbins;
    }
  const std::size_t raw_bytes = (cfg.rows + 7) / 8;

  const auto queries = apps::generate_queries(cfg, 240, 17 + 240);
  const auto batch = apps::run_queries(index, queries);

  // CPU+WAH pricing: per op, traffic = sum of operand compressed sizes +
  // result (conservatively half-raw for intermediates); decode/merge
  // compute ~2 cycles per compressed word on one 3.3 GHz core.
  const auto mem = sim::stream_params(sim::MemKind::kPcm);
  const sim::CpuConfig cpu;
  double wah_time = 0, wah_bytes = 0;
  for (const auto& op : batch.trace.ops) {
    std::size_t bytes = 0;
    for (const auto id : op.srcs) {
      const auto it = compressed_bytes.find(id);
      bytes += it != compressed_bytes.end() ? it->second : raw_bytes;
    }
    bytes += raw_bytes / 2;  // result write (intermediates partly fill-run)
    const double t_mem =
        (static_cast<double>(bytes) / 64.0) * mem.latency_ns /
        (cpu.mlp * cpu.bulk_cores);
    const double t_cpu = static_cast<double>(bytes) / 4.0 * 0.61;
    wah_time += std::max(t_mem, t_cpu);
    wah_bytes += static_cast<double>(bytes);
  }

  sim::SimdBackend raw(sim::MemKind::kPcm);
  core::PinatuboBackend pin({}, {nvm::Tech::kPcm, 128});
  const double raw_time = raw.execute(batch.trace).bitwise.time_ns;
  const double pin_time = pin.execute(batch.trace).bitwise.time_ns;

  Table t("Ablation — WAH-compressed CPU vs Pinatubo (Fastbit, 240 queries)");
  t.set_header({"system", "bitwise time", "vs raw CPU"});
  t.add_row({"CPU, raw bitmaps", pinatubo::units::format_time(raw_time), "1x"});
  t.add_row({"CPU, WAH bitmaps", pinatubo::units::format_time(wah_time),
             Table::mult(raw_time / wah_time)});
  t.add_row({"Pinatubo-128 (uncompressed rows)",
             pinatubo::units::format_time(pin_time),
             Table::mult(raw_time / pin_time)});
  t.add_note("mean bin compression ratio " +
             Table::num(ratio_sum / static_cast<double>(nbins), 3) +
             " (Zipf heads stay literal, tails collapse)");
  t.add_note("compression narrows the gap but cannot reach the in-memory");
  t.add_note("path: Pinatubo wins even against WAH-compressed execution");
  t.print();

  std::printf("\nPinatubo-128 over CPU+WAH: %.1fx\n", wah_time / pin_time);
  return 0;
}
