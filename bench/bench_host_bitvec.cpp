// google-benchmark microbench of the host bit-vector substrate: the
// kernels every functional path and the SIMD baseline's ground truth run
// on.  Not a paper figure — a regression guard for the simulator's own
// performance.
#include <benchmark/benchmark.h>

#include "bitvec/bitvector.hpp"
#include "common/random.hpp"

using namespace pinatubo;

namespace {

BitVector make_vec(std::size_t bits, std::uint64_t seed) {
  Rng rng(seed);
  return BitVector::random(bits, 0.5, rng);
}

void BM_BitVectorOr(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  auto a = make_vec(bits, 1);
  const auto b = make_vec(bits, 2);
  for (auto _ : state) {
    a |= b;
    benchmark::DoNotOptimize(a.words().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}

void BM_BitVectorAndNot(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto a = make_vec(bits, 3);
  const auto b = make_vec(bits, 4);
  for (auto _ : state) {
    auto r = BitVector::and_not(a, b);
    benchmark::DoNotOptimize(r.words().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}

void BM_BitVectorPopcount(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto a = make_vec(bits, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.popcount());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}

void BM_MultiOperandReduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<BitVector> vecs;
  std::vector<const BitVector*> ptrs;
  for (std::size_t i = 0; i < n; ++i) vecs.push_back(make_vec(1 << 19, i));
  for (const auto& v : vecs) ptrs.push_back(&v);
  for (auto _ : state) {
    auto r = BitVector::reduce(BitOp::kOr, ptrs);
    benchmark::DoNotOptimize(r.words().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * (1 << 16)));
}

void BM_ForEachSet(benchmark::State& state) {
  Rng rng(7);
  const auto a = BitVector::random(1 << 19, 0.01, rng);
  for (auto _ : state) {
    std::size_t sum = 0;
    a.for_each_set([&](std::size_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}

BENCHMARK(BM_BitVectorOr)->Arg(1 << 14)->Arg(1 << 19)->Arg(1 << 23);
BENCHMARK(BM_BitVectorAndNot)->Arg(1 << 14)->Arg(1 << 19);
BENCHMARK(BM_BitVectorPopcount)->Arg(1 << 14)->Arg(1 << 19);
BENCHMARK(BM_MultiOperandReduce)->Arg(2)->Arg(16)->Arg(128);
BENCHMARK(BM_ForEachSet);

}  // namespace

BENCHMARK_MAIN();
