// Ablation: subarray height.  Taller subarrays amortize periphery (fewer
// SAs and drivers per bit) but lengthen the bitlines the cells must drive
// — the physics behind the evaluated 128-row subarray.  Timing comes from
// the first-principles latency model (validated against the paper's
// 18.3-8.9-151.1 ns triplet at 128 rows); throughput re-prices the
// 128-row OR under each derived triplet.
#include <cstdio>

#include "circuit/latency_model.hpp"
#include "common/table.hpp"
#include "nvm/area_model.hpp"

using namespace pinatubo;

int main() {
  const circuit::LatencyModel model(nvm::cell_params(nvm::Tech::kPcm));

  Table t("Ablation — subarray height (derived timing, PCM)");
  t.set_header({"rows", "tRCD ns", "tCL ns", "tWR ns", "128-row OR @2^19",
                "periphery mm^2"});
  for (const unsigned rows : {64u, 128u, 256u, 512u}) {
    const auto d = model.derive(rows, 1024);
    // One 128-row OR over a full row group under this triplet:
    // cmds + tRCD + 31*tCL + tWR (see PinatuboCostModel).
    const double cmds = (1 + 1 + 128 + 32 + 1) * 1.25;
    const double op_ns = cmds + d.t_rcd_ns + 31 * d.t_cl_ns + d.t_wr_ns;

    nvm::ChipStructure chip;  // constant capacity: trade rows vs subarrays
    chip.rows_per_subarray = rows;
    chip.subarrays_per_bank = 64 * 128 / rows;
    const nvm::AreaModel area(nvm::cell_params(nvm::Tech::kPcm), chip);
    const auto base = area.baseline();
    const double periphery =
        (base.total_um2() - base.find("cell array")) / 1e6;

    t.add_row({std::to_string(rows), Table::num(d.t_rcd_ns, 4),
               Table::num(d.t_cl_ns, 4), Table::num(d.t_wr_ns, 4),
               Table::num(op_ns, 4) + " ns", Table::num(periphery, 4)});
  }
  t.add_note("paper's design point: 128 rows -> 18.3-8.9-151.1 ns (CACTI)");
  t.add_note("derived at 128 rows: see tests/circuit/test_latency_model.cpp");
  t.print();
  return 0;
}
