// Analog sensing throughput: legacy per-bit CSA loop vs the batched
// word-parallel SenseBatch path that MainMemory now uses.  Not a paper
// figure — a regression guard for the functional layer's own performance
// plus a cross-thread determinism check of the counter-based RNG keying.
//
//   bench_sense_fidelity [--threads N] [--json <path>]
//
// Exits non-zero if the multi-threaded analog results are not bit-identical
// to the single-threaded run (the contract CI enforces).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuit/csa.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "mem/mainmem.hpp"

using namespace pinatubo;
using Clock = std::chrono::steady_clock;

namespace {

struct OpCase {
  const char* name;
  BitOp op;
  unsigned rows;
};

constexpr OpCase kCases[] = {
    {"or2", BitOp::kOr, 2},
    {"and2", BitOp::kAnd, 2},
    {"xor2", BitOp::kXor, 2},
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The pre-batching analog path, verbatim: one CsaModel::sense_op call per
/// bitline with a column gathered through BitVector::get and a sequential
/// xoshiro stream.  Best-of-reps timing: the minimum is robust against the
/// scheduler noise of shared CI machines.
double legacy_ns_per_bit(const circuit::CsaModel& csa,
                         const nvm::CellParams& cell, BitOp op,
                         const std::vector<BitVector>& operands, int reps) {
  const std::size_t width = operands.front().size();
  Rng rng(123);
  std::vector<bool> column(operands.size());
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    BitVector out(width);
    for (std::size_t bit = 0; bit < width; ++bit) {
      for (std::size_t r = 0; r < operands.size(); ++r)
        column[r] = operands[r].get(bit);
      if (csa.sense_op(op, column, cell, &rng)) out.set(bit);
    }
    if (out.popcount() == width + 1) std::abort();  // keep `out` live
    best = std::min(best, seconds_since(t0));
  }
  return best * 1e9 / static_cast<double>(width);
}

double batched_ns_per_bit(mem::MainMemory& mem,
                          const std::vector<mem::RowAddr>& rows, BitOp op,
                          int reps) {
  const auto width = static_cast<double>(mem.geometry().rank_row_bits());
  mem.sense_rows(rows, op);  // warm-up (pool spin-up, arena touch)
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    const auto out = mem.sense_rows(rows, op);
    if (out.size() == 0) std::abort();
    best = std::min(best, seconds_since(t0));
  }
  return best * 1e9 / width;
}

/// Runs the full analog op sequence on a fresh memory with `threads`
/// pool threads; used for the 1-vs-N bit-identity check.
std::vector<BitVector> sense_sequence(const mem::Geometry& g,
                                      unsigned threads) {
  ThreadPool::set_global_threads(threads);
  mem::MainMemory mem(g, nvm::Tech::kPcm, mem::SenseFidelity::kAnalog, 99);
  const mem::RowAddr r0{0, 0, 0, 0, 0}, r1{0, 0, 0, 0, 1};
  Rng rng(5);
  mem.write_row(r0, BitVector::random(g.rank_row_bits(), 0.5, rng));
  mem.write_row(r1, BitVector::random(g.rank_row_bits(), 0.5, rng));
  std::vector<BitVector> out;
  for (const auto& c : kCases)
    out.push_back(mem.sense_rows({r0, r1}, c.op));
  out.push_back(mem.sense_rows({r0}, BitOp::kInv));
  return out;
}

unsigned parse_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads" && i + 1 < argc)
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    if (a.rfind("--threads=", 0) == 0)
      return static_cast<unsigned>(std::strtoul(a.c_str() + 10, nullptr, 10));
  }
  return 0;  // pool default (PINATUBO_THREADS or hardware concurrency)
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = parse_threads(argc, argv);
  ThreadPool::set_global_threads(threads);

  mem::Geometry g;  // evaluated machine: 64 Kb functional rows
  const auto& cell = nvm::cell_params(nvm::Tech::kPcm);

  mem::MainMemory mem(g, nvm::Tech::kPcm, mem::SenseFidelity::kAnalog, 7);
  const mem::RowAddr r0{0, 0, 0, 0, 0}, r1{0, 0, 0, 0, 1};
  Rng rng(5);
  mem.write_row(r0, BitVector::random(g.rank_row_bits(), 0.5, rng));
  mem.write_row(r1, BitVector::random(g.rank_row_bits(), 0.5, rng));
  const std::vector<BitVector> operands = {mem.read_row(r0), mem.read_row(r1)};
  const std::vector<mem::RowAddr> rows = {r0, r1};

  bench::JsonReport report;
  report.add("threads", static_cast<double>(ThreadPool::global_threads()));
  std::printf("analog sensing, %llu bits/row, %u pool thread(s)\n",
              static_cast<unsigned long long>(g.rank_row_bits()),
              ThreadPool::global_threads());
  std::printf("%-6s %14s %14s %9s\n", "op", "per-bit ns/b", "batched ns/b",
              "speedup");
  double log_sum = 0.0;
  for (const auto& c : kCases) {
    const double base =
        legacy_ns_per_bit(mem.csa(), cell, c.op, operands, 3);
    const double batched = batched_ns_per_bit(mem, rows, c.op, 30);
    const double speedup = base / batched;
    log_sum += std::log(speedup);
    std::printf("%-6s %14.2f %14.3f %8.1fx\n", c.name, base, batched, speedup);
    report.add(std::string(c.name) + "_baseline_ns_per_bit", base);
    report.add(std::string(c.name) + "_batched_ns_per_bit", batched);
    report.add(std::string(c.name) + "_speedup", speedup);
  }
  const double gmean = std::exp(log_sum / std::size(kCases));
  std::printf("gmean speedup: %.1fx\n", gmean);
  report.add("gmean_speedup", gmean);

  // Cross-thread determinism: N-thread analog results must be bit-identical
  // to the single-threaded reference.
  const unsigned check_threads =
      ThreadPool::global_threads() > 1 ? ThreadPool::global_threads() : 4u;
  const bool identical = sense_sequence(g, 1) == sense_sequence(g, check_threads);
  ThreadPool::set_global_threads(threads);
  std::printf("determinism (1 vs %u threads): %s\n", check_threads,
              identical ? "bit-identical" : "MISMATCH");
  report.add("determinism", identical ? "pass" : "fail");
  report.write(bench::parse_json_path(argc, argv));
  return identical ? 0 : 1;
}
