// Reproduces Fig. 11: energy saving on the bitwise operations, normalized
// to the SIMD baseline, same workload/architecture matrix as Fig. 10.
//
// Expected shape (paper): S-DRAM better than Pinatubo-2 in some cases but
// worse than Pinatubo-128 on average; AC-PIM never saves more energy than
// any of the other three; Pinatubo saves ~2800x on average (the abstract
// headlines ~28000x on the best cases).
#include <cstdio>

#include "bench_util.hpp"
#include "pinatubo/backend.hpp"
#include "sim/acpim_backend.hpp"
#include "sim/sdram_backend.hpp"

using namespace pinatubo;
using namespace pinatubo::bench;

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const auto workloads = apps::paper_workloads(scale);
  const auto baselines = run_baselines(workloads);

  sim::SdramBackend sdram;
  sim::AcPimBackend acpim;
  core::PinatuboBackend pin2({}, {nvm::Tech::kPcm, 2});
  core::PinatuboBackend pin128({}, {nvm::Tech::kPcm, 128});

  const std::vector<SuiteRun> runs{
      run_suite(sdram, workloads), run_suite(acpim, workloads),
      run_suite(pin2, workloads), run_suite(pin128, workloads)};
  const std::vector<bool> vs_dram{true, false, false, false};

  const auto matrix = build_matrix(
      workloads, baselines, runs, vs_dram,
      [](const sim::BackendResult& r) { return r.bitwise.energy.total_pj(); });

  auto table = matrix_table(
      "Fig. 11 — bitwise-op energy saving normalized to SIMD", matrix,
      workloads);
  table.add_note("paper: Pinatubo saves ~2800x on average (Gmean);");
  table.add_note("paper: AC-PIM never beats S-DRAM/Pinatubo on energy.");
  table.print();

  LogChart chart("Fig. 11 — energy saving over SIMD", "saving (x)");
  std::vector<std::string> labels;
  for (const auto& w : workloads) labels.push_back(w.name);
  chart.set_x_labels(labels);
  for (std::size_t b = 0; b < runs.size(); ++b) {
    std::vector<double> ys;
    for (const auto& row : matrix.ratios) ys.push_back(row[b]);
    chart.add_series(matrix.backend_names[b], ys);
  }
  chart.print();
  return 0;
}
