// Shared plumbing for the figure-reproduction benches: runs the backend
// matrix over the paper's workload suite and renders Fig. 10/11-style
// tables (one row per workload, one column per architecture, Gmean last).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/workloads.hpp"
#include "common/table.hpp"
#include "sim/backend.hpp"

namespace pinatubo::bench {

/// One backend's results over the whole workload suite.
struct SuiteRun {
  std::string backend;
  std::vector<sim::BackendResult> results;  // aligned with the workloads
};

/// Runs `backend` over every workload.
SuiteRun run_suite(sim::Backend& backend,
                   const std::vector<apps::NamedTrace>& workloads);

/// What Fig. 10/11 normalize against: S-DRAM compares to SIMD on DRAM,
/// the PCM-resident architectures to SIMD on PCM.
struct Baselines {
  SuiteRun simd_dram;
  SuiteRun simd_pcm;
};

Baselines run_baselines(const std::vector<apps::NamedTrace>& workloads);

/// Ratio table (speedup or energy saving), paper layout: rows = workloads
/// plus Gmean, columns = architectures.
struct RatioMatrix {
  std::vector<std::string> workload_names;
  std::vector<std::string> backend_names;
  std::vector<std::vector<double>> ratios;  // [workload][backend]
  std::vector<double> gmean;                // per backend
};

using Metric = std::function<double(const sim::BackendResult&)>;

/// ratios[w][b] = metric(baseline for b) / metric(backend b) on workload w.
RatioMatrix build_matrix(const std::vector<apps::NamedTrace>& workloads,
                         const Baselines& baselines,
                         const std::vector<SuiteRun>& backends,
                         const std::vector<bool>& vs_dram,
                         const Metric& metric);

/// Renders the matrix as a table (rows: workloads + Gmean).
Table matrix_table(const std::string& title, const RatioMatrix& m,
                   const std::vector<apps::NamedTrace>& workloads);

/// Parses a leading "--scale=<f>" style arg list into a workload scale.
double parse_scale(int argc, char** argv, double def = 1.0);

/// True when `--<name>` appears among the args.
bool parse_flag(int argc, char** argv, const std::string& name);

/// Path given as "--<name> <path>" or "--<name>=<path>"; empty when absent.
std::string parse_path_arg(int argc, char** argv, const std::string& name);

/// Path given as "--json <path>" or "--json=<path>"; empty when absent.
std::string parse_json_path(int argc, char** argv);

/// Path given as "--trace-out <path>" or "--trace-out=<path>"; empty when
/// absent.  Benches that price through the execution engine write a
/// Chrome trace-event JSON of the schedule there (see DESIGN.md §9).
std::string parse_trace_path(int argc, char** argv);

/// Minimal JSON object writer for machine-readable bench output
/// (BENCH_*.json files consumed by the perf-trajectory tooling).
class JsonReport {
 public:
  void add(const std::string& key, double value);
  void add(const std::string& key, const std::string& value);
  void add_array(const std::string& key, const std::vector<double>& values);
  /// Emits the ratio matrix as {"workloads", "backends", "ratios", "gmean"}
  /// under `key`.
  void add_matrix(const std::string& key, const RatioMatrix& m);

  /// Writes `{ ... }` to `path` and prints a one-line note; no-op when
  /// `path` is empty (callers pass parse_json_path's result directly).
  void write(const std::string& path) const;

 private:
  std::vector<std::string> fields_;  // pre-rendered `"key": value` pairs
};

}  // namespace pinatubo::bench
