// Reproduces Fig. 10: speedup on the bitwise operations themselves,
// normalized to the SIMD baseline, over the Table-1 workload suite
// (5 Vector configs, 3 graphs, 3 Fastbit batches) for S-DRAM, AC-PIM,
// Pinatubo-2 and Pinatubo-128.
//
// Normalization follows the paper: S-DRAM vs SIMD-on-DRAM; AC-PIM and
// Pinatubo vs SIMD-on-PCM.
//
// Expected shape (paper): S-DRAM beats Pinatubo-2 on the long 2-row
// sequential case; Pinatubo-128 ~22x over S-DRAM on average; AC-PIM slower
// than Pinatubo everywhere; 14-16-7r (random) collapses Pinatubo-128 to
// Pinatubo-2; overall Gmean for Pinatubo-128 ~500x.
#include <cstdio>

#include "bench_util.hpp"
#include "pinatubo/backend.hpp"
#include "sim/acpim_backend.hpp"
#include "sim/sdram_backend.hpp"

using namespace pinatubo;
using namespace pinatubo::bench;

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  const auto workloads = apps::paper_workloads(scale);
  const auto baselines = run_baselines(workloads);

  sim::SdramBackend sdram;
  sim::AcPimBackend acpim;
  core::PinatuboBackend pin2({}, {nvm::Tech::kPcm, 2});
  core::PinatuboBackend pin128({}, {nvm::Tech::kPcm, 128});

  const std::vector<SuiteRun> runs{
      run_suite(sdram, workloads), run_suite(acpim, workloads),
      run_suite(pin2, workloads), run_suite(pin128, workloads)};
  const std::vector<bool> vs_dram{true, false, false, false};

  const auto matrix = build_matrix(
      workloads, baselines, runs, vs_dram,
      [](const sim::BackendResult& r) { return r.bitwise.time_ns; });

  auto table = matrix_table(
      "Fig. 10 — bitwise-op speedup normalized to SIMD", matrix, workloads);
  table.add_note("paper: Pinatubo-128 ~22x over S-DRAM; Gmean ~500x;");
  table.add_note("paper: 14-16-7r collapses Pinatubo-128 to Pinatubo-2;");
  table.add_note("paper: AC-PIM slower than Pinatubo in every case.");
  table.print();

  std::printf("\nPinatubo-128 / S-DRAM (Gmean): %.1fx\n",
              matrix.gmean[3] / matrix.gmean[0]);

  LogChart chart("Fig. 10 — speedup over SIMD", "speedup (x)");
  std::vector<std::string> labels;
  for (const auto& w : workloads) labels.push_back(w.name);
  chart.set_x_labels(labels);
  for (std::size_t b = 0; b < runs.size(); ++b) {
    std::vector<double> ys;
    for (const auto& row : matrix.ratios) ys.push_back(row[b]);
    chart.add_series(matrix.backend_names[b], ys);
  }
  chart.print();
  return 0;
}
