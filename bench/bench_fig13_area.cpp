// Reproduces Fig. 13: chip area overhead of Pinatubo vs AC-PIM on the PCM
// chip, with the breakdown of Pinatubo's additions.
//
// Expected (paper): Pinatubo ~0.9% total vs AC-PIM ~6.4%; breakdown
// inter-sub 0.72%, inter-bank 0.09%, xor 0.06%, wl act 0.05%,
// and/or 0.02% (intra-sub total 0.13%).
#include <cstdio>

#include "common/table.hpp"
#include "nvm/area_model.hpp"

using namespace pinatubo;

int main() {
  const nvm::AreaModel model(nvm::cell_params(nvm::Tech::kPcm),
                             nvm::ChipStructure{});
  const auto base = model.baseline();
  const auto pin = model.pinatubo_overhead();
  const auto acpim = model.acpim_overhead();

  Table chip("Baseline 64 MB 1T1R PCM chip floorplan (65 nm)");
  chip.set_header({"block", "area (mm^2)", "share"});
  for (const auto& item : base.items)
    chip.add_row({item.name, Table::num(item.area_um2 / 1e6, 4),
                  Table::num(100 * item.area_um2 / base.total_um2(), 3) + "%"});
  chip.add_separator();
  chip.add_row({"total", Table::num(base.total_um2() / 1e6, 4), "100%"});
  chip.print();
  std::printf("\n");

  Table cmp("Fig. 13 (left) — area overhead");
  cmp.set_header({"design", "overhead", "paper"});
  cmp.add_row({"Pinatubo", Table::num(pin.total_percent(), 3) + "%", "0.9%"});
  cmp.add_row({"AC-PIM", Table::num(acpim.total_percent(), 3) + "%", "6.4%"});
  cmp.print();
  std::printf("\n");

  Table brk("Fig. 13 (right) — Pinatubo overhead breakdown");
  brk.set_header({"component", "measured", "paper"});
  const std::pair<const char*, const char*> expect[] = {
      {"inter-sub", "0.72%"}, {"inter-bank", "0.09%"}, {"xor", "0.06%"},
      {"wl act", "0.05%"},    {"and/or", "0.02%"},
  };
  double intra = 0;
  for (const auto& [name, paper] : expect) {
    brk.add_row({name, Table::num(pin.percent(name), 3) + "%", paper});
    if (std::string(name) != "inter-sub" && std::string(name) != "inter-bank")
      intra += pin.percent(name);
  }
  brk.add_separator();
  brk.add_row({"intra-sub total", Table::num(intra, 3) + "%", "0.13%"});
  brk.print();
  return 0;
}
