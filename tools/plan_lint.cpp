// plan_lint: the static verifier as a CLI gate (DESIGN.md §11).
//
//   plan_lint <trace-file>...             lint op-trace files (trace_io
//                                         line format): plans + schedule +
//                                         accounting through all passes
//   plan_lint --spec 19-16-7s             lint a generated Vector workload
//   plan_lint --suite [--scale=0.05]      lint the full Fig. 10 suite
//   plan_lint --trace sched.json          lint an exported Chrome trace
//            [--summary out.json]         (rules T01-T04); the summary is
//                                         machine-readable for CI
//                                         cross-checks (check_trace.py)
//
// Common options: --tech=pcm|sttmram|reram, --max-rows=N, --serial.
// Exit status: 0 = every rule held, 1 = diagnostics were reported,
// 2 = usage / IO error.  CI runs this over every example/bench plan, so an
// illegal plan or a dishonest schedule fails the build, not a benchmark.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/vector_workload.hpp"
#include "apps/workloads.hpp"
#include "common/error.hpp"
#include "pinatubo/allocator.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/engine.hpp"
#include "pinatubo/scheduler.hpp"
#include "sim/trace_io.hpp"
#include "verify/rules.hpp"
#include "verify/trace_lint.hpp"
#include "verify/verifier.hpp"

using namespace pinatubo;

namespace {

struct LintOptions {
  nvm::Tech tech = nvm::Tech::kPcm;
  unsigned max_rows = 128;
  bool serial = false;
  double scale = 0.05;
};

/// Lints one op trace end to end: plans from the scheduler, a schedule
/// from the engine, all three verifier passes.  Mirrors how
/// PinatuboBackend prices traces, so what CI lints is what benches run.
verify::Report lint_op_trace(const sim::OpTrace& trace,
                             const LintOptions& opt) {
  const mem::Geometry geo;
  core::RowAllocator alloc(geo, core::AllocPolicy::kPimAware);
  core::OpScheduler sched(geo, core::SchedulerConfig{opt.max_rows, opt.tech});
  const core::PinatuboCostModel model(geo, opt.tech, trace.result_density);

  std::vector<core::OpPlan> plans;
  plans.reserve(trace.ops.size());
  for (const auto& op : trace.ops) {
    std::vector<core::Placement> srcs;
    srcs.reserve(op.srcs.size());
    for (const auto id : op.srcs)
      srcs.push_back(alloc.virtual_placement(id, op.bits));
    const core::Placement dst = alloc.virtual_placement(op.dst, op.bits);
    plans.push_back(sched.plan(op.op, srcs, dst, op.host_reads_result));
  }
  const core::ExecutionEngine engine(model, core::EngineOptions{opt.serial});
  const core::ExecutionEngine::Result result = engine.run(plans);
  const verify::Verifier verifier(model, opt.max_rows);
  return verifier.check(plans, result, opt.serial);
}

/// Prints a lint outcome; returns 1 on diagnostics, 0 when clean.
int report_outcome(const std::string& what, const verify::Report& rep) {
  if (rep.ok()) {
    std::printf("plan_lint: %s: OK\n", what.c_str());
    return 0;
  }
  std::fprintf(stderr, "plan_lint: %s: %zu finding(s)\n%s", what.c_str(),
               rep.diags.size(), rep.to_string().c_str());
  return 1;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <trace-file>...\n"
      "       %s [options] --spec <a-b-c(s|r)>\n"
      "       %s [options] --suite [--scale=<0..1>]\n"
      "       %s --trace <sched.json> [--summary <out.json>]\n"
      "options: --tech=pcm|sttmram|reram  --max-rows=<n>  --serial\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LintOptions opt;
  std::vector<std::string> trace_files;
  std::string spec, chrome_trace, summary_out;
  bool suite = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) == 0 && arg.size() > n && arg[n] == '=')
        return arg.c_str() + n + 1;
      if (arg == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--tech")) {
      try {
        opt.tech = nvm::tech_from_string(v);
      } catch (const Error& e) {
        std::fprintf(stderr, "plan_lint: %s\n", e.what());
        return 2;
      }
    } else if (const char* v = value("--max-rows")) {
      opt.max_rows = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--scale")) {
      opt.scale = std::strtod(v, nullptr);
    } else if (const char* v = value("--spec")) {
      spec = v;
    } else if (const char* v = value("--trace")) {
      chrome_trace = v;
    } else if (const char* v = value("--summary")) {
      summary_out = v;
    } else if (arg == "--serial") {
      opt.serial = true;
    } else if (arg == "--suite") {
      suite = true;
    } else if (arg == "--help" || arg == "-h" ||
               arg.compare(0, 2, "--") == 0) {
      return usage(argv[0]);
    } else {
      trace_files.push_back(arg);
    }
  }
  if (!suite && spec.empty() && chrome_trace.empty() && trace_files.empty())
    return usage(argv[0]);

  int status = 0;
  try {
    if (!chrome_trace.empty()) {
      verify::TraceStats stats;
      const verify::Report rep =
          verify::lint_trace_file(chrome_trace, &stats);
      status |= report_outcome("trace " + chrome_trace, rep);
      if (rep.ok())
        std::printf("  %zu spans on %zu tracks, max end %.1f ns\n",
                    stats.spans, stats.tracks, stats.max_end_ns);
      if (!summary_out.empty()) {
        std::ofstream f(summary_out);
        if (!f.good()) {
          std::fprintf(stderr, "plan_lint: cannot write %s\n",
                       summary_out.c_str());
          return 2;
        }
        f << stats.to_json(rep) << '\n';
      }
    }
    if (!spec.empty()) {
      const auto trace =
          apps::vector_trace(apps::VectorSpec::parse(spec));
      status |= report_outcome("spec " + spec, lint_op_trace(trace, opt));
    }
    if (suite)
      for (const auto& named : apps::paper_workloads(opt.scale))
        status |= report_outcome(named.group + "/" + named.name,
                                 lint_op_trace(named.trace, opt));
    for (const std::string& file : trace_files)
      status |= report_outcome(
          file, lint_op_trace(sim::load_trace_file(file), opt));
  } catch (const Error& e) {
    std::fprintf(stderr, "plan_lint: %s\n", e.what());
    return 2;
  }
  return status;
}
