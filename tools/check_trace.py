#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by the obs layer.

Checks (stdlib only, used by the bench-smoke CI job):
  * the file parses as JSON and uses the object form {"traceEvents": [...]};
  * there is at least one complete ("ph": "X") event;
  * every complete event carries name/ts/dur/pid/tid with sane values;
  * metadata events are limited to the known thread-layout kinds;
  * every span ends by otherData.max_span_end_ns (the reconciled makespan).

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import sys

# Slack for the ns -> us fixed-point rounding in the exporter: ts and dur
# are each written at 4-decimal (0.1 ns) resolution, so their sum can land
# up to 1e-4 us past the exactly-reported max_span_end_ns.
EPS_US = 1.01e-4


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <trace.json>")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' is not an array")

    max_end_ns = doc.get("otherData", {}).get("max_span_end_ns")
    limit_us = None
    if max_end_ns is not None:
        limit_us = float(max_end_ns) / 1e3 + EPS_US

    spans = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") not in ("thread_name", "thread_sort_index",
                                      "process_name"):
                fail(f"event {i}: unexpected metadata kind {ev.get('name')!r}")
            continue
        if ph != "X":
            fail(f"event {i}: unexpected phase {ph!r} (want 'X' or 'M')")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in ev:
                fail(f"event {i}: complete event missing {key!r}")
        ts, dur = float(ev["ts"]), float(ev["dur"])
        if ts < 0 or dur < 0:
            fail(f"event {i}: negative ts/dur ({ts}, {dur})")
        if limit_us is not None and ts + dur > limit_us:
            fail(f"event {i}: span ends at {ts + dur} us, past the "
                 f"reported makespan {limit_us} us")
        spans += 1

    if spans == 0:
        fail("no complete ('ph': 'X') events — empty schedule?")
    print(f"check_trace: OK: {path}: {spans} spans, "
          f"makespan {max_end_ns if max_end_ns is not None else 'n/a'} ns")


if __name__ == "__main__":
    main()
