#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by the obs layer.

Checks (stdlib only, used by the bench-smoke CI job):
  * the file parses as JSON and uses the object form {"traceEvents": [...]};
  * there is at least one complete ("ph": "X") event;
  * every complete event carries name/ts/dur/pid/tid with sane values;
  * metadata events are limited to the known thread-layout kinds;
  * every span ends by otherData.max_span_end_ns (the reconciled makespan).

With --lint-summary <summary.json>, additionally cross-checks the trace
against the summary plan_lint --trace wrote for the same file: the two
readers (this script's json module and plan_lint's C++ parser) must agree
on span count, category histogram, makespan, and counters — a disagreement
means one of the readers, or the exporter, is lying.

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

# Slack for the ns -> us fixed-point rounding in the exporter: ts and dur
# are each written at 4-decimal (0.1 ns) resolution, so their sum can land
# up to 1e-4 us past the exactly-reported max_span_end_ns.
EPS_US = 1.01e-4
# Same slack expressed in ns, doubled for the two independent roundings
# compared in the summary cross-check (matches verify::kEpsNs).
EPS_NS = 0.21


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{what} {path}: {e}")


def scan_trace(doc):
    """Validate the event stream; return (spans, by_category, max_end_us)."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' is not an array")

    max_end_ns = doc.get("otherData", {}).get("max_span_end_ns")
    limit_us = None
    if max_end_ns is not None:
        limit_us = float(max_end_ns) / 1e3 + EPS_US

    spans = 0
    by_category = {}
    max_end_us = 0.0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") not in ("thread_name", "thread_sort_index",
                                      "process_name"):
                fail(f"event {i}: unexpected metadata kind {ev.get('name')!r}")
            continue
        if ph != "X":
            fail(f"event {i}: unexpected phase {ph!r} (want 'X' or 'M')")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in ev:
                fail(f"event {i}: complete event missing {key!r}")
        ts, dur = float(ev["ts"]), float(ev["dur"])
        if ts < 0 or dur < 0:
            fail(f"event {i}: negative ts/dur ({ts}, {dur})")
        if limit_us is not None and ts + dur > limit_us:
            fail(f"event {i}: span ends at {ts + dur} us, past the "
                 f"reported makespan {limit_us} us")
        cat = ev.get("cat", "")
        by_category[cat] = by_category.get(cat, 0) + 1
        max_end_us = max(max_end_us, ts + dur)
        spans += 1

    if spans == 0:
        fail("no complete ('ph': 'X') events — empty schedule?")
    return spans, by_category, max_end_us


def cross_check(doc, spans, by_category, max_end_us, summary):
    """Compare this script's read of the trace with plan_lint's summary."""
    if summary.get("ok") is not True:
        fail(f"lint summary says the trace is dirty: "
             f"{summary.get('diagnostics')}")
    if summary.get("spans") != spans:
        fail(f"span count disagrees: summary says {summary.get('spans')}, "
             f"trace has {spans}")
    lint_cats = summary.get("spans_by_category", {})
    if lint_cats and lint_cats != by_category:
        fail(f"category histogram disagrees: summary {lint_cats} vs "
             f"trace {by_category}")
    lint_end = summary.get("max_end_ns")
    if lint_end is not None and abs(lint_end - max_end_us * 1e3) > EPS_NS:
        fail(f"max span end disagrees: summary {lint_end} ns vs "
             f"trace {max_end_us * 1e3} ns")
    counters = doc.get("otherData", {}).get("counters")
    lint_counters = summary.get("counters")
    if counters and lint_counters:
        for name, val in counters.items():
            got = lint_counters.get(name)
            if got is None or abs(float(got) - float(val)) > 1e-4:
                fail(f"counter {name!r} disagrees: summary {got}, "
                     f"trace {val}")
    print(f"check_trace: OK: summary cross-check agrees "
          f"({spans} spans, {len(by_category)} categories)")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--lint-summary", metavar="FILE",
                    help="summary JSON written by plan_lint --trace "
                         "... --summary FILE; cross-checked against the trace")
    args = ap.parse_args()

    doc = load_json(args.trace, "trace")
    spans, by_category, max_end_us = scan_trace(doc)

    max_end_ns = doc.get("otherData", {}).get("max_span_end_ns")
    print(f"check_trace: OK: {args.trace}: {spans} spans, "
          f"makespan {max_end_ns if max_end_ns is not None else 'n/a'} ns")

    if args.lint_summary:
        summary = load_json(args.lint_summary, "lint summary")
        cross_check(doc, spans, by_category, max_end_us, summary)


if __name__ == "__main__":
    main()
