// Adversarial verifier tests: every hand-built illegal plan / tampered
// schedule must trip the *exact* rule it violates — the rule ids are the
// contract CI greps for, so they are asserted here, not just "some error".
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mem/commands.hpp"
#include "pinatubo/allocator.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/engine.hpp"
#include "pinatubo/scheduler.hpp"
#include "verify/verifier.hpp"

namespace pinatubo::verify {
namespace {

using core::ExecutionEngine;
using core::OpPlan;
using core::PlanStep;
using core::StepKind;

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : model_(geo_, nvm::Tech::kPcm, 0.5),
        alloc_(geo_, core::AllocPolicy::kPimAware),
        sched_(geo_, core::SchedulerConfig{128, nvm::Tech::kPcm}),
        verifier_(model_, 128) {}

  /// A legal n-operand plan over virtually placed vectors.
  OpPlan plan_of(BitOp op, unsigned operands, bool host_read = false,
                 std::uint64_t first_id = 0) {
    std::vector<core::Placement> srcs;
    const std::uint64_t bits = geo_.row_group_bits();
    for (unsigned i = 0; i < operands; ++i)
      srcs.push_back(alloc_.virtual_placement(first_id + i, bits));
    const core::Placement dst =
        alloc_.virtual_placement(first_id + operands, bits);
    return sched_.plan(op, srcs, dst, host_read);
  }

  /// The one rule (or rule set) a mutation should trip.
  void expect_only(const Report& rep, Rule rule) {
    EXPECT_TRUE(rep.tripped(rule))
        << "expected " << rule_id(rule) << ":\n" << rep.to_string();
    for (const Diagnostic& d : rep.diags)
      EXPECT_EQ(d.rule, rule) << d.to_string();
  }

  mem::Geometry geo_;
  core::PinatuboCostModel model_;
  core::RowAllocator alloc_;
  core::OpScheduler sched_;
  Verifier verifier_;
};

// ---- protocol pass ---------------------------------------------------------

TEST_F(VerifierTest, LegalPlansPass) {
  for (const BitOp op : {BitOp::kOr, BitOp::kAnd, BitOp::kXor, BitOp::kInv}) {
    const unsigned n = op == BitOp::kInv ? 1 : (op == BitOp::kOr ? 8 : 2);
    const OpPlan plan = plan_of(op, n, /*host_read=*/true);
    const Report rep = verifier_.check(plan);
    EXPECT_TRUE(rep.ok()) << to_string(op) << ":\n" << rep.to_string();
  }
}

TEST_F(VerifierTest, EmptyReadsTripP01) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  plan.steps[0].reads.clear();
  plan.steps[0].read_cols.clear();
  plan.steps[0].rows = 0;
  const Report rep = verifier_.check(plan);
  EXPECT_TRUE(rep.tripped(Rule::kStepEmptyReads)) << rep.to_string();
}

TEST_F(VerifierTest, DoubleActivateTripsP07) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  ASSERT_GE(plan.steps[0].reads.size(), 2u);
  plan.steps[0].reads[1] = plan.steps[0].reads[0];
  expect_only(verifier_.check(plan), Rule::kDoubleActivate);
}

TEST_F(VerifierTest, WriteBypassWithoutSenseTripsP08) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  plan.steps[0].col_steps = 0;  // writeback stays set: bypass with no sense
  const Report rep = verifier_.check(plan);
  EXPECT_TRUE(rep.tripped(Rule::kWriteBypassNoSense)) << rep.to_string();
}

TEST_F(VerifierTest, HostReadWritebackTripsP08) {
  OpPlan plan = plan_of(BitOp::kOr, 4, /*host_read=*/true);
  auto& tail = plan.steps.back();
  ASSERT_EQ(tail.kind, StepKind::kHostRead);
  tail.writeback = true;
  tail.write = tail.reads[0];
  const Report rep = verifier_.check(plan);
  EXPECT_TRUE(rep.tripped(Rule::kWriteBypassNoSense)) << rep.to_string();
}

TEST_F(VerifierTest, TooManyRowsTripsP03) {
  // AND is a 2-row op: the CSA's reference cannot separate 3-row sums.
  OpPlan or_plan = plan_of(BitOp::kOr, 3);
  OpPlan plan = plan_of(BitOp::kAnd, 2);
  PlanStep& s = plan.steps[0];
  PlanStep& wide = or_plan.steps[0];
  ASSERT_EQ(wide.reads.size(), 3u);
  s.reads = wide.reads;
  s.read_cols = wide.read_cols;
  s.rows = wide.rows;
  expect_only(verifier_.check(plan), Rule::kActivationOverflow);
}

TEST_F(VerifierTest, RowCapOverflowTripsP03) {
  const Verifier two_row(model_, 2);  // Pinatubo-2 configuration
  const OpPlan plan = plan_of(BitOp::kOr, 4);
  ASSERT_GT(plan.steps[0].reads.size(), 2u);
  expect_only(two_row.check(plan), Rule::kActivationOverflow);
}

TEST_F(VerifierTest, OutOfRangeRowTripsP04) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  plan.steps[0].reads[0].row = geo_.rows_per_subarray;
  const Report rep = verifier_.check(plan);
  EXPECT_TRUE(rep.tripped(Rule::kAddrOutOfRange)) << rep.to_string();
}

TEST_F(VerifierTest, CrossChannelReadTripsP05) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  plan.steps[0].reads[0].channel = plan.steps[0].channel + 1;
  const Report rep = verifier_.check(plan);
  // The forged channel is also outside the 1-channel default geometry.
  EXPECT_TRUE(rep.tripped(Rule::kCrossChannel) ||
              rep.tripped(Rule::kAddrOutOfRange))
      << rep.to_string();
}

TEST_F(VerifierTest, BankedReadTripsP06) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  plan.steps[0].reads[0].bank = 1;  // PIM reads broadcast the cluster
  expect_only(verifier_.check(plan), Rule::kClusterMismatch);
}

TEST_F(VerifierTest, ForeignSubarrayReadTripsP06) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  plan.steps[0].reads[0].subarray =
      (plan.steps[0].subarray + 1) % geo_.subarrays_per_bank;
  expect_only(verifier_.check(plan), Rule::kClusterMismatch);
}

TEST_F(VerifierTest, ColumnOverflowTripsP09) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  plan.steps[0].col_start = geo_.sa_mux_share;  // window starts past the mux
  expect_only(verifier_.check(plan), Rule::kColumnOverflow);
}

TEST_F(VerifierTest, ReadColsMismatchTripsP10) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  ASSERT_FALSE(plan.steps[0].read_cols.empty());
  plan.steps[0].read_cols.pop_back();
  expect_only(verifier_.check(plan), Rule::kReadColsMismatch);
}

TEST_F(VerifierTest, ForeignWriteTargetTripsP11) {
  OpPlan plan = plan_of(BitOp::kOr, 4);
  ASSERT_TRUE(plan.steps[0].writeback);
  plan.steps[0].write.row =
      (plan.steps[0].write.row + 1) % geo_.rows_per_subarray;
  expect_only(verifier_.check(plan), Rule::kWriteKeyMismatch);
}

// ---- command automaton (P12) -----------------------------------------------

TEST_F(VerifierTest, LoweredStreamsPassTheAutomaton) {
  std::vector<mem::Command> cmds;
  for (const BitOp op : {BitOp::kOr, BitOp::kInv})
    for (const PlanStep& s : plan_of(op, op == BitOp::kInv ? 1 : 6,
                                     /*host_read=*/true)
             .steps)
      model_.lower_step(s, cmds);
  const Report rep = verifier_.check_commands(cmds);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST_F(VerifierTest, ActWithoutResetTripsP12) {
  std::vector<mem::Command> cmds;
  model_.lower_step(plan_of(BitOp::kOr, 4).steps[0], cmds);
  // Drop the PIM_RESET: the multi-ACT window was never armed.
  std::vector<mem::Command> broken;
  for (const mem::Command& c : cmds)
    if (c.kind != mem::CmdKind::kPimReset) broken.push_back(c);
  ASSERT_LT(broken.size(), cmds.size());
  expect_only(verifier_.check_commands(broken), Rule::kBadCommandOrder);
}

TEST_F(VerifierTest, SenseWithoutActTripsP12) {
  std::vector<mem::Command> cmds;
  model_.lower_step(plan_of(BitOp::kOr, 4).steps[0], cmds);
  std::vector<mem::Command> broken;
  for (const mem::Command& c : cmds)
    if (c.kind != mem::CmdKind::kAct) broken.push_back(c);
  expect_only(verifier_.check_commands(broken), Rule::kBadCommandOrder);
}

TEST_F(VerifierTest, BypassWithoutSenseTripsP08InTheStream) {
  std::vector<mem::Command> cmds;
  model_.lower_step(plan_of(BitOp::kOr, 4).steps[0], cmds);
  std::vector<mem::Command> broken;
  for (const mem::Command& c : cmds)
    if (c.kind != mem::CmdKind::kPimSense) broken.push_back(c);
  expect_only(verifier_.check_commands(broken), Rule::kWriteBypassNoSense);
}

// ---- hazard & resource pass ------------------------------------------------

/// A batch with real dependencies: b = a|x, c = b&y (RAW on b), plus an
/// independent op to give the scheduler overlap opportunities.
class ScheduleTest : public VerifierTest {
 protected:
  ScheduleTest() {
    const std::uint64_t bits = geo_.row_group_bits();
    auto place = [&](std::uint64_t id) {
      return alloc_.virtual_placement(id, bits);
    };
    plans_.push_back(sched_.plan(BitOp::kOr, {place(0), place(1)}, place(2),
                                 false));
    plans_.push_back(sched_.plan(BitOp::kAnd, {place(2), place(3)}, place(4),
                                 false));
    plans_.push_back(sched_.plan(BitOp::kOr, {place(5), place(6)}, place(7),
                                 /*host_read=*/true));
    const ExecutionEngine engine(model_);
    result_ = engine.run(plans_);
  }

  std::vector<OpPlan> plans_;
  ExecutionEngine::Result result_;
};

TEST_F(ScheduleTest, LegalSchedulePassesAllPasses) {
  const Report rep = verifier_.check(plans_, result_);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST_F(ScheduleTest, HazardInvertedScheduleTripsH02) {
  // Pull the dependent AND (plan 1 reads plan 0's destination) to time 0,
  // before its producer completes.
  ExecutionEngine::Result r = result_;
  for (auto& ss : r.schedule) {
    if (ss.plan != 1) continue;
    const double dur = ss.done_ns - ss.start_ns;
    ss.start_ns = 0.0;
    ss.done_ns = dur;
    break;
  }
  const Report rep = verifier_.check(plans_, r);
  EXPECT_TRUE(rep.tripped(Rule::kHazardViolated)) << rep.to_string();
}

TEST_F(ScheduleTest, OverlappingRankWindowsTripH03) {
  // Slide the second step scheduled on some (channel,rank) into the first.
  ExecutionEngine::Result r = result_;
  std::map<std::pair<unsigned, unsigned>, std::size_t> first_on;
  bool mutated = false;
  for (std::size_t i = 0; i < r.schedule.size() && !mutated; ++i) {
    auto& ss = r.schedule[i];
    const auto& s = plans_[ss.plan].steps[ss.step];
    const auto key = std::make_pair(s.channel, s.rank);
    const auto it = first_on.find(key);
    if (it == first_on.end()) {
      first_on.emplace(key, i);
      continue;
    }
    const auto& prev = r.schedule[it->second];
    const double dur = ss.done_ns - ss.start_ns;
    ss.start_ns = (prev.start_ns + prev.done_ns) / 2.0;  // mid-overlap
    ss.done_ns = ss.start_ns + dur;
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const Report rep = verifier_.check(plans_, r);
  EXPECT_TRUE(rep.tripped(Rule::kRankOverlap)) << rep.to_string();
}

TEST_F(ScheduleTest, OverlappingBusBurstsTripH04) {
  // Two host-read batches: their bursts share the channel's data bus.
  const std::uint64_t bits = geo_.row_group_bits();
  auto place = [&](std::uint64_t id) {
    return alloc_.virtual_placement(id, bits);
  };
  std::vector<OpPlan> plans;
  plans.push_back(
      sched_.plan(BitOp::kOr, {place(0), place(1)}, place(2), true));
  plans.push_back(
      sched_.plan(BitOp::kOr, {place(3), place(4)}, place(5), true));
  const ExecutionEngine engine(model_);
  ExecutionEngine::Result r = engine.run(plans);
  std::vector<std::size_t> bursts;
  for (std::size_t i = 0; i < r.schedule.size(); ++i)
    if (r.schedule[i].bus_ns > 0.0) bursts.push_back(i);
  ASSERT_GE(bursts.size(), 2u);
  // Align the second burst's window onto the first's.
  auto& a = r.schedule[bursts[0]];
  auto& b = r.schedule[bursts[1]];
  const double dur = b.done_ns - b.start_ns;
  b.done_ns = a.done_ns;
  b.start_ns = b.done_ns - dur;
  const Report rep = verifier_.check(plans, r);
  EXPECT_TRUE(rep.tripped(Rule::kBusOverlap)) << rep.to_string();
}

TEST_F(ScheduleTest, TamperedDurationTripsH01) {
  ExecutionEngine::Result r = result_;
  r.schedule[0].done_ns += 5.0;
  const Report rep = verifier_.check(plans_, r);
  EXPECT_TRUE(rep.tripped(Rule::kScheduleShape)) << rep.to_string();
}

TEST_F(ScheduleTest, MissingStepTripsH01) {
  ExecutionEngine::Result r = result_;
  r.schedule.pop_back();
  const Report rep = verifier_.check(plans_, r);
  EXPECT_TRUE(rep.tripped(Rule::kScheduleShape)) << rep.to_string();
}

// ---- reconciliation pass ---------------------------------------------------

TEST_F(ScheduleTest, TamperedClassTimeTripsR01) {
  ExecutionEngine::Result r = result_;
  r.profile.time_ns[0] += 3.0;
  expect_only(verifier_.check(plans_, r), Rule::kClassTimeMismatch);
}

TEST_F(ScheduleTest, TamperedClassCountTripsR02) {
  ExecutionEngine::Result r = result_;
  ++r.profile.steps[0];
  expect_only(verifier_.check(plans_, r), Rule::kClassCountMismatch);
}

TEST_F(ScheduleTest, TamperedEnergyTripsR03) {
  ExecutionEngine::Result r = result_;
  r.cost.energy.add("tamper", 10.0);
  expect_only(verifier_.check(plans_, r), Rule::kEnergyMismatch);
}

TEST_F(ScheduleTest, TamperedMakespanTripsR04) {
  ExecutionEngine::Result r = result_;
  r.cost.time_ns += 10.0;
  expect_only(verifier_.check(plans_, r), Rule::kMakespanMismatch);
}

TEST_F(ScheduleTest, TamperedSerialBaselineTripsR05) {
  ExecutionEngine::Result r = result_;
  r.serial_time_ns -= 1.0;
  expect_only(verifier_.check(plans_, r), Rule::kSerialSumMismatch);
}

// ---- rule catalog ----------------------------------------------------------

TEST(RuleCatalog, EveryRuleHasStableIdNameInvariant) {
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    const Rule r = static_cast<Rule>(i);
    ASSERT_NE(rule_id(r), nullptr);
    EXPECT_EQ(std::string(rule_id(r)).size(), 3u) << rule_id(r);
    EXPECT_FALSE(std::string(rule_name(r)).empty());
    EXPECT_FALSE(std::string(rule_invariant(r)).empty());
  }
  // Ids are unique.
  for (std::size_t i = 0; i < kRuleCount; ++i)
    for (std::size_t j = i + 1; j < kRuleCount; ++j)
      EXPECT_STRNE(rule_id(static_cast<Rule>(i)),
                   rule_id(static_cast<Rule>(j)));
}

TEST(RuleCatalog, DiagnosticFormatIsGreppable) {
  Report rep;
  rep.add(Rule::kDoubleActivate, 2, 0, "row X activated twice");
  EXPECT_EQ(rep.diags[0].to_string(),
            "P07 double-activate [plan 2 step 0]: row X activated twice");
  EXPECT_TRUE(rep.tripped(Rule::kDoubleActivate));
  EXPECT_EQ(rep.count(Rule::kDoubleActivate), 1u);
  EXPECT_FALSE(rep.ok());
}

}  // namespace
}  // namespace pinatubo::verify
