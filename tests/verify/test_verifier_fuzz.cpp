// Verifier fuzz: every legal plan the stack can generate must verify
// clean.  Random op streams across technologies, ops, row caps, serial and
// overlapped scheduling, thread counts, and fault campaigns (whose
// recovery ladders inject retry/de-escalation/remap steps) all run with
// `verify.level = always` — the runtime throws on the first diagnostic, so
// a single false positive fails the trial loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "common/random.hpp"
#include "pinatubo/allocator.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/driver.hpp"
#include "pinatubo/engine.hpp"
#include "pinatubo/scheduler.hpp"
#include "reliability/policy.hpp"
#include "verify/verifier.hpp"

namespace pinatubo {
namespace {

using core::PimRuntime;

const nvm::Tech kTechs[] = {nvm::Tech::kPcm, nvm::Tech::kReRam,
                            nvm::Tech::kSttMram};

/// Random op stream through the live runtime with the verifier always-on.
void run_runtime_trial(std::uint64_t trial, bool faults) {
  Rng cfg_rng(2000 + trial);
  ThreadPool::set_global_threads(1 + cfg_rng.next() % 4);
  PimRuntime::Options opts;
  opts.tech = kTechs[cfg_rng.next() % 3];
  opts.max_rows = (cfg_rng.next() % 2) ? 128 : 2;
  opts.serial_execution = (cfg_rng.next() % 2) != 0;
  opts.reliability.verify.level = reliability::VerifyLevel::kAlways;
  if (faults) {
    opts.reliability.fault.enabled = true;
    opts.reliability.fault.seed = cfg_rng.next();
    opts.reliability.fault.sense_ber = (cfg_rng.next() % 2) ? 1e-4 : 0.0;
    opts.reliability.fault.stuck_rate = (cfg_rng.next() % 2) ? 1e-7 : 0.0;
    if (cfg_rng.next() % 2) {
      opts.reliability.fault.endurance_cycles = 30;
      opts.reliability.fault.wearout_rate = 0.02;
    }
    opts.reliability.verify.sense = reliability::SenseVerify::kReadback;
    opts.reliability.verify.writes = reliability::WriteVerify::kReadback;
    opts.reliability.retry.max_resense =
        static_cast<unsigned>(cfg_rng.next() % 3);
    opts.reliability.retry.spare_rows = 16;
  }
  PimRuntime pim({}, opts);
  ASSERT_NE(pim.verifier(), nullptr);

  const std::uint64_t bits = pim.geometry().sense_step_bits();
  const std::size_t n_vecs = 8;
  Rng rng(700 + trial);
  std::vector<PimRuntime::Handle> vecs(n_vecs);
  for (std::size_t i = 0; i < n_vecs; ++i) {
    vecs[i] = pim.pim_malloc(bits);
    pim.pim_write(vecs[i], BitVector::random(bits, 0.3, rng));
  }
  const unsigned n_ops = 24;
  const bool batched = (cfg_rng.next() % 2) != 0;
  for (unsigned it = 0; it < n_ops; ++it) {
    if (batched && it % 6 == 0) pim.pim_begin();
    const unsigned pick = static_cast<unsigned>(rng.next() % 8);
    BitOp op = BitOp::kOr;
    std::size_t fan = 2 + rng.next() % 5;
    if (pick == 5) op = BitOp::kAnd, fan = 2;
    if (pick == 6) op = BitOp::kXor, fan = 2;
    if (pick == 7) op = BitOp::kInv, fan = 1;
    std::vector<std::size_t> idx(n_vecs);
    for (std::size_t i = 0; i < n_vecs; ++i) idx[i] = i;
    for (std::size_t i = 0; i < fan; ++i)
      std::swap(idx[i], idx[i + rng.next() % (n_vecs - i)]);
    std::vector<PimRuntime::Handle> srcs;
    for (std::size_t i = 0; i < fan; ++i) srcs.push_back(vecs[idx[i]]);
    const bool host_read = (rng.next() % 4) == 0;
    // Throws (fails the test) if any pass rejects a generated plan or the
    // engine's schedule for it.
    ASSERT_NO_THROW(
        pim.pim_op(op, srcs, vecs[idx[rng.next() % fan]], host_read));
    if (batched && (it % 6 == 5 || it + 1 == n_ops)) pim.pim_barrier();
  }
  ThreadPool::set_global_threads(0);
}

TEST(VerifierFuzz, LegalRuntimePlansAlwaysVerify) {
  for (std::uint64_t trial = 0; trial < 8; ++trial)
    run_runtime_trial(trial, /*faults=*/false);
}

TEST(VerifierFuzz, FaultCampaignRecoveryPlansAlwaysVerify) {
  // Recovery ladders inject retry / de-escalation / verify / remap steps;
  // each must carry full metadata or the hazard pass rejects the batch.
  for (std::uint64_t trial = 0; trial < 8; ++trial)
    run_runtime_trial(trial, /*faults=*/true);
}

TEST(VerifierFuzz, RandomVirtualBatchesAlwaysVerify) {
  // Scheduler + engine without a live runtime (the backend path): random
  // batches of virtually placed ops across techs / caps / serial modes.
  for (std::uint64_t trial = 0; trial < 24; ++trial) {
    Rng rng(3000 + trial);
    const mem::Geometry geo;
    const nvm::Tech tech = kTechs[rng.next() % 3];
    const unsigned cap = (rng.next() % 2) ? 128 : 2;
    const bool serial = (rng.next() % 2) != 0;
    core::RowAllocator alloc(geo, core::AllocPolicy::kPimAware);
    core::OpScheduler sched(geo, core::SchedulerConfig{cap, tech});
    const core::PinatuboCostModel model(geo, tech, 0.5);
    const std::uint64_t bits =
        geo.sense_step_bits() << (rng.next() % 4);  // 1-8 column stripes
    std::vector<core::OpPlan> plans;
    const unsigned n_ops = 1 + rng.next() % 10;
    for (unsigned i = 0; i < n_ops; ++i) {
      const unsigned pick = static_cast<unsigned>(rng.next() % 8);
      BitOp op = BitOp::kOr;
      std::size_t fan = 2 + rng.next() % 6;
      if (pick == 5) op = BitOp::kAnd, fan = 2;
      if (pick == 6) op = BitOp::kXor, fan = 2;
      if (pick == 7) op = BitOp::kInv, fan = 1;
      std::vector<core::Placement> srcs;
      for (std::size_t s = 0; s < fan; ++s)
        srcs.push_back(alloc.virtual_placement(rng.next() % 32, bits));
      const auto dst = alloc.virtual_placement(rng.next() % 32, bits);
      plans.push_back(sched.plan(op, srcs, dst, (rng.next() % 3) == 0));
    }
    const core::ExecutionEngine engine(model, core::EngineOptions{serial});
    const auto result = engine.run(plans);
    const verify::Verifier verifier(model, cap);
    const verify::Report rep = verifier.check(plans, result, serial);
    EXPECT_TRUE(rep.ok()) << "trial " << trial << ":\n" << rep.to_string();
  }
}

}  // namespace
}  // namespace pinatubo
