// Trace-lint tests: real exported traces lint clean; hand-tampered JSON
// trips the exact T-rule it violates.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "obs/trace.hpp"
#include "pinatubo/driver.hpp"
#include "verify/trace_lint.hpp"

namespace pinatubo::verify {
namespace {

/// A real runtime trace: mixed classes, two ranks, host bursts on the bus.
std::string runtime_trace_json(core::PimRuntime& pim) {
  obs::TraceSession trace(true);
  pim.set_trace(&trace);
  const std::uint64_t bits = 2 * pim.geometry().row_group_bits();
  Rng rng(42);
  std::vector<core::PimRuntime::Handle> vecs;
  for (int i = 0; i < 8; ++i) {
    vecs.push_back(pim.pim_malloc(bits));
    pim.pim_write(vecs.back(), BitVector::random(bits, 0.5, rng));
  }
  pim.pim_begin();
  for (int i = 0; i < 4; ++i)
    pim.pim_op(BitOp::kOr, {vecs[2 * i], vecs[2 * i + 1]}, vecs[2 * i]);
  pim.pim_op(BitOp::kAnd, {vecs[0], vecs[2]}, vecs[0], true);
  pim.pim_op(BitOp::kXor, {vecs[4], vecs[6]}, vecs[4], true);
  pim.pim_barrier();
  return trace.to_chrome_json();
}

/// Minimal well-formed trace with full control over every field.
std::string synthetic(const std::string& events, const std::string& other) {
  return "{\"traceEvents\":[{\"ph\":\"M\",\"name\":\"thread_name\","
         "\"pid\":1,\"tid\":0,\"args\":{\"name\":\"ch0/rank0\"}}" +
         (events.empty() ? "" : "," + events) +
         "],\"displayTimeUnit\":\"ns\",\"otherData\":{" + other + "}}";
}

std::string span(double ts_us, double dur_us, const char* cat = "intra-sub",
                 int tid = 0) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
     << ",\"name\":\"op\",\"cat\":\"" << cat << "\",\"ts\":" << ts_us
     << ",\"dur\":" << dur_us << "}";
  return os.str();
}

TEST(TraceLint, RealRuntimeTraceLintsClean) {
  core::PimRuntime pim;
  TraceStats stats;
  const Report rep = lint_trace_text(runtime_trace_json(pim), &stats);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_GT(stats.spans, 0u);
  EXPECT_GT(stats.tracks, 1u);  // two ranks + a bus track at least
  EXPECT_NEAR(stats.max_end_ns, pim.cost().time_ns,
              1.0 + 1e-9 * pim.cost().time_ns);
  EXPECT_GT(stats.spans_by_category.count("intra-sub"), 0u);
}

TEST(TraceLint, MalformedJsonTripsT01) {
  for (const char* bad :
       {"", "not json at all", "{\"traceEvents\":", "[1,2,3]",
        "{\"traceEvents\":[]}", "{\"otherData\":{}}"}) {
    const Report rep = lint_trace_text(bad);
    EXPECT_TRUE(rep.tripped(Rule::kTraceParse)) << "input: " << bad;
  }
  const Report rep = lint_trace_file("/nonexistent/trace.json");
  EXPECT_TRUE(rep.tripped(Rule::kTraceParse));
}

TEST(TraceLint, TruncatedRealTraceTripsT01) {
  core::PimRuntime pim;
  const std::string json = runtime_trace_json(pim);
  const Report rep = lint_trace_text(json.substr(0, json.size() / 2));
  EXPECT_TRUE(rep.tripped(Rule::kTraceParse));
}

TEST(TraceLint, SpanPastDeclaredMakespanTripsT02) {
  // One 2000 ns span, but the file claims the timeline ends at 1000 ns.
  const std::string json =
      synthetic(span(0.0, 2.0),
                "\"max_span_end_ns\":1000.0,\"spans\":1,\"counters\":{}");
  const Report rep = lint_trace_text(json);
  EXPECT_TRUE(rep.tripped(Rule::kTracePastMakespan)) << rep.to_string();
}

TEST(TraceLint, OverstatedMakespanTripsT02) {
  // No span comes near the declared end: the makespan is padded.
  const std::string json =
      synthetic(span(0.0, 1.0),
                "\"max_span_end_ns\":5000.0,\"spans\":1,\"counters\":{}");
  const Report rep = lint_trace_text(json);
  EXPECT_TRUE(rep.tripped(Rule::kTracePastMakespan)) << rep.to_string();
}

TEST(TraceLint, OverlappingTrackSpansTripT03) {
  const std::string json =
      synthetic(span(0.0, 1.0) + "," + span(0.5, 1.0),
                "\"max_span_end_ns\":1500.0,\"spans\":2,\"counters\":{}");
  const Report rep = lint_trace_text(json);
  EXPECT_TRUE(rep.tripped(Rule::kTraceTrackOverlap)) << rep.to_string();
}

TEST(TraceLint, AdjacentSpansDoNotOverlap) {
  // Back-to-back tiling (end == next start) is the normal serial layout.
  const std::string json =
      synthetic(span(0.0, 1.0) + "," + span(1.0, 1.0),
                "\"max_span_end_ns\":2000.0,\"spans\":2,\"counters\":{}");
  const Report rep = lint_trace_text(json);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(TraceLint, CounterSpanMismatchTripsT04) {
  const std::string json = synthetic(
      span(0.0, 1.0) + "," + span(1.0, 1.0),
      "\"max_span_end_ns\":2000.0,\"spans\":2,"
      "\"counters\":{\"pim.steps.intra-sub\":3.0000}");
  const Report rep = lint_trace_text(json);
  EXPECT_TRUE(rep.tripped(Rule::kTraceCounterMismatch)) << rep.to_string();
}

TEST(TraceLint, DishonestSpanCountTripsT04) {
  const std::string json =
      synthetic(span(0.0, 1.0),
                "\"max_span_end_ns\":1000.0,\"spans\":7,\"counters\":{}");
  const Report rep = lint_trace_text(json);
  EXPECT_TRUE(rep.tripped(Rule::kTraceCounterMismatch)) << rep.to_string();
}

TEST(TraceLint, StatsSummaryIsWellFormedJson) {
  core::PimRuntime pim;
  TraceStats stats;
  const Report rep = lint_trace_text(runtime_trace_json(pim), &stats);
  const std::string summary = stats.to_json(rep);
  // The summary must itself survive the lint parser's JSON reader — lint
  // a wrapper that embeds it as otherData (cheap structural round-trip).
  EXPECT_EQ(summary.front(), '{');
  EXPECT_EQ(summary.back(), '}');
  EXPECT_NE(summary.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(summary.find("\"spans\":"), std::string::npos);
}

}  // namespace
}  // namespace pinatubo::verify
