#include "bitvec/wah.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"

namespace pinatubo {
namespace {

TEST(Wah, RoundTripSimple) {
  const auto v = BitVector::from_string("101100111000");
  const auto w = WahBitmap::compress(v);
  EXPECT_EQ(w.decompress(), v);
  EXPECT_EQ(w.size_bits(), 12u);
}

TEST(Wah, CompressesRuns) {
  // 10k zeros with a couple of set bits: tiny compressed form.
  BitVector v(10000);
  v.set(5000);
  const auto w = WahBitmap::compress(v);
  EXPECT_LT(w.word_count(), 8u);
  EXPECT_LT(w.compression_ratio(), 0.05);
  EXPECT_EQ(w.decompress(), v);
}

TEST(Wah, AllOnesCompresses) {
  BitVector v(31 * 100);
  v.fill(true);
  const auto w = WahBitmap::compress(v);
  EXPECT_EQ(w.word_count(), 1u);  // one fill word, run 100
  EXPECT_EQ(w.decompress(), v);
  EXPECT_EQ(w.popcount(), v.size());
}

TEST(Wah, RandomDataBarelyCompresses) {
  Rng rng(3);
  const auto v = BitVector::random(10000, 0.5, rng);
  const auto w = WahBitmap::compress(v);
  EXPECT_GT(w.compression_ratio(), 0.9);  // literals + 3% group overhead
  EXPECT_EQ(w.decompress(), v);
}

TEST(Wah, PopcountMatchesAcrossTails) {
  Rng rng(5);
  for (const std::size_t bits : {1u, 30u, 31u, 32u, 62u, 1000u, 4096u}) {
    for (const double d : {0.0, 0.01, 0.5, 1.0}) {
      const auto v = BitVector::random(bits, d, rng);
      const auto w = WahBitmap::compress(v);
      EXPECT_EQ(w.popcount(), v.popcount()) << bits << "/" << d;
    }
  }
}

class WahProps
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(WahProps, OpsMatchUncompressed) {
  const auto [bits, density] = GetParam();
  Rng rng(bits * 31 + static_cast<std::uint64_t>(density * 100));
  const auto a = BitVector::random(bits, density, rng);
  const auto b = BitVector::random(bits, 1.0 - density, rng);
  const auto wa = WahBitmap::compress(a);
  const auto wb = WahBitmap::compress(b);
  EXPECT_EQ(WahBitmap::logical_and(wa, wb).decompress(), (a & b));
  EXPECT_EQ(WahBitmap::logical_or(wa, wb).decompress(), (a | b));
  EXPECT_EQ(WahBitmap::logical_xor(wa, wb).decompress(), (a ^ b));
  EXPECT_EQ(wa.logical_not().decompress(), ~a);
}

TEST_P(WahProps, OpsStayCanonical) {
  // Results of compressed ops must themselves be well-formed WAH
  // (re-compressing the decompressed result gives the identical encoding).
  const auto [bits, density] = GetParam();
  Rng rng(bits * 7 + 1);
  const auto a = BitVector::random(bits, density, rng);
  const auto b = BitVector::random(bits, density, rng);
  const auto r = WahBitmap::logical_or(WahBitmap::compress(a),
                                       WahBitmap::compress(b));
  EXPECT_EQ(r, WahBitmap::compress(r.decompress()));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, WahProps,
    ::testing::Combine(::testing::Values<std::size_t>(1, 31, 62, 93, 1000,
                                                      4096, 100000),
                       ::testing::Values(0.001, 0.05, 0.5, 0.999)));

TEST(Wah, SizeMismatchThrows) {
  const auto a = WahBitmap::compress(BitVector(100));
  const auto b = WahBitmap::compress(BitVector(101));
  EXPECT_THROW(WahBitmap::logical_and(a, b), Error);
}

TEST(Wah, SparseBitmapIndexScale) {
  // A sparse FastBit bin bitmap (tail bin, ~2% density) over 2^20 rows:
  // enough all-zero 31-bit groups to compress well below 1.0.
  Rng rng(11);
  const auto v = BitVector::random(1 << 20, 0.02, rng);
  const auto w = WahBitmap::compress(v);
  EXPECT_LT(w.compression_ratio(), 0.8);
  EXPECT_EQ(w.popcount(), v.popcount());
  // Uniform 7% density is the break-even zone: WAH stops paying off,
  // which is itself the behaviour FastBit documents.
  const auto dense = BitVector::random(1 << 20, 0.07, rng);
  EXPECT_GT(WahBitmap::compress(dense).compression_ratio(), 0.8);
}

}  // namespace
}  // namespace pinatubo
