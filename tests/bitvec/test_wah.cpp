#include "bitvec/wah.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"

namespace pinatubo {
namespace {

TEST(Wah, RoundTripSimple) {
  const auto v = BitVector::from_string("101100111000");
  const auto w = WahBitmap::compress(v);
  EXPECT_EQ(w.decompress(), v);
  EXPECT_EQ(w.size_bits(), 12u);
}

TEST(Wah, CompressesRuns) {
  // 10k zeros with a couple of set bits: tiny compressed form.
  BitVector v(10000);
  v.set(5000);
  const auto w = WahBitmap::compress(v);
  EXPECT_LT(w.word_count(), 8u);
  EXPECT_LT(w.compression_ratio(), 0.05);
  EXPECT_EQ(w.decompress(), v);
}

TEST(Wah, AllOnesCompresses) {
  BitVector v(31 * 100);
  v.fill(true);
  const auto w = WahBitmap::compress(v);
  EXPECT_EQ(w.word_count(), 1u);  // one fill word, run 100
  EXPECT_EQ(w.decompress(), v);
  EXPECT_EQ(w.popcount(), v.size());
}

TEST(Wah, RandomDataBarelyCompresses) {
  Rng rng(3);
  const auto v = BitVector::random(10000, 0.5, rng);
  const auto w = WahBitmap::compress(v);
  EXPECT_GT(w.compression_ratio(), 0.9);  // literals + 3% group overhead
  EXPECT_EQ(w.decompress(), v);
}

TEST(Wah, PopcountMatchesAcrossTails) {
  Rng rng(5);
  for (const std::size_t bits : {1u, 30u, 31u, 32u, 62u, 1000u, 4096u}) {
    for (const double d : {0.0, 0.01, 0.5, 1.0}) {
      const auto v = BitVector::random(bits, d, rng);
      const auto w = WahBitmap::compress(v);
      EXPECT_EQ(w.popcount(), v.popcount()) << bits << "/" << d;
    }
  }
}

class WahProps
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(WahProps, OpsMatchUncompressed) {
  const auto [bits, density] = GetParam();
  Rng rng(bits * 31 + static_cast<std::uint64_t>(density * 100));
  const auto a = BitVector::random(bits, density, rng);
  const auto b = BitVector::random(bits, 1.0 - density, rng);
  const auto wa = WahBitmap::compress(a);
  const auto wb = WahBitmap::compress(b);
  EXPECT_EQ(WahBitmap::logical_and(wa, wb).decompress(), (a & b));
  EXPECT_EQ(WahBitmap::logical_or(wa, wb).decompress(), (a | b));
  EXPECT_EQ(WahBitmap::logical_xor(wa, wb).decompress(), (a ^ b));
  EXPECT_EQ(wa.logical_not().decompress(), ~a);
}

TEST_P(WahProps, OpsStayCanonical) {
  // Results of compressed ops must themselves be well-formed WAH
  // (re-compressing the decompressed result gives the identical encoding).
  const auto [bits, density] = GetParam();
  Rng rng(bits * 7 + 1);
  const auto a = BitVector::random(bits, density, rng);
  const auto b = BitVector::random(bits, density, rng);
  const auto r = WahBitmap::logical_or(WahBitmap::compress(a),
                                       WahBitmap::compress(b));
  EXPECT_EQ(r, WahBitmap::compress(r.decompress()));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, WahProps,
    ::testing::Combine(::testing::Values<std::size_t>(1, 31, 62, 93, 1000,
                                                      4096, 100000),
                       ::testing::Values(0.001, 0.05, 0.5, 0.999)));

TEST(Wah, SizeMismatchThrows) {
  const auto a = WahBitmap::compress(BitVector(100));
  const auto b = WahBitmap::compress(BitVector(101));
  EXPECT_THROW(WahBitmap::logical_and(a, b), Error);
}

TEST(Wah, RoundTripFuzz) {
  // Random densities crossed with sizes that land just before / on / just
  // after 31-bit group boundaries (partial trailing groups included).
  Rng rng(2026);
  const std::size_t sizes[] = {1,   30,   31,   32,   61,  62,
                               63,  92,   93,   94,   961, 992,
                               993, 1023, 4095, 4097, 99937};
  const double densities[] = {0.0, 0.01, 0.5, 0.99, 1.0};
  for (const std::size_t bits : sizes) {
    for (const double d : densities) {
      const auto v = BitVector::random(bits, d, rng);
      const auto w = WahBitmap::compress(v);
      EXPECT_EQ(w.decompress(), v) << bits << "/" << d;
      EXPECT_EQ(w.popcount(), v.popcount()) << bits << "/" << d;
    }
  }
}

TEST(Wah, DecoderDoneIsExact) {
  // done() flips exactly when the last encoded group is consumed — not a
  // group early (mid-run) and not a group late.
  Rng rng(99);
  for (const std::size_t bits : {1u, 31u, 62u, 63u, 310u, 1000u}) {
    for (const double d : {0.0, 0.5, 1.0}) {
      const auto w = WahBitmap::compress(BitVector::random(bits, d, rng));
      WahBitmap::Decoder dec(w);
      const std::size_t groups =
          (bits + WahBitmap::kGroupBits - 1) / WahBitmap::kGroupBits;
      for (std::size_t g = 0; g < groups; ++g) {
        EXPECT_FALSE(dec.done()) << bits << "/" << d << " group " << g;
        dec.next();
      }
      EXPECT_TRUE(dec.done()) << bits << "/" << d;
      EXPECT_THROW(dec.next(), Error);
    }
  }
}

TEST(Wah, FromWordsAcceptsNonCanonicalFills) {
  // Adjacent same-value fills and all-zero literals never come out of
  // compress(), but readers must handle them (e.g. streams written by
  // other WAH implementations).  4 groups: 0-fill(2) + 0-fill(1) + literal.
  const std::uint32_t kFill0 = WahBitmap::kFillFlag;
  const auto w = WahBitmap::from_words(
      4 * WahBitmap::kGroupBits, {kFill0 | 2u, kFill0 | 1u, 0x12345678u});
  BitVector expect(4 * WahBitmap::kGroupBits);
  for (unsigned i = 0; i < WahBitmap::kGroupBits; ++i)
    if ((0x12345678u >> i) & 1u) expect.set(3 * WahBitmap::kGroupBits + i);
  EXPECT_EQ(w.decompress(), expect);
  EXPECT_EQ(w.popcount(), expect.popcount());
  // Recompressing yields the canonical form: one merged fill word.
  const auto canonical = WahBitmap::compress(w.decompress());
  EXPECT_EQ(canonical.word_count(), 2u);
  EXPECT_EQ(canonical.words()[0], kFill0 | 3u);
}

TEST(Wah, MaxRunFillPopcount) {
  // A single fill word at the encoding's run-length ceiling covers
  // kMaxRun * 31 ≈ 3.3e10 bits — unreachable through compress() (the
  // input wouldn't fit in memory) but valid WAH.  Popcount must stay
  // run-aware (O(words), not O(groups)) and accumulate in 64 bits.
  const std::uint64_t bits =
      std::uint64_t{WahBitmap::kMaxRun} * WahBitmap::kGroupBits;
  const auto ones = WahBitmap::from_words(
      bits, {WahBitmap::kFillFlag | WahBitmap::kFillValue | WahBitmap::kMaxRun});
  EXPECT_EQ(ones.popcount(), bits);  // > 2^32: would wrap a 32-bit count
  // Same run ending on a partial tail group: the correction is applied.
  const auto tail = WahBitmap::from_words(
      bits - 30,
      {WahBitmap::kFillFlag | WahBitmap::kFillValue | WahBitmap::kMaxRun});
  EXPECT_EQ(tail.popcount(), bits - 30);
}

TEST(Wah, FromWordsValidates) {
  // Word stream must cover exactly ceil(bits/31) groups.
  EXPECT_THROW(WahBitmap::from_words(62, {0u}), Error);        // too few
  EXPECT_THROW(WahBitmap::from_words(31, {0u, 0u}), Error);    // too many
  // A fill word with run 0 encodes nothing and is malformed.
  EXPECT_THROW(WahBitmap::from_words(0, {WahBitmap::kFillFlag}), Error);
  // Exact cover is fine, including an empty bitmap.
  EXPECT_EQ(WahBitmap::from_words(0, {}).decompress(), BitVector(0));
  EXPECT_EQ(WahBitmap::from_words(62, {0u, 0u}).decompress(), BitVector(62));
}

TEST(Wah, SparseBitmapIndexScale) {
  // A sparse FastBit bin bitmap (tail bin, ~2% density) over 2^20 rows:
  // enough all-zero 31-bit groups to compress well below 1.0.
  Rng rng(11);
  const auto v = BitVector::random(1 << 20, 0.02, rng);
  const auto w = WahBitmap::compress(v);
  EXPECT_LT(w.compression_ratio(), 0.8);
  EXPECT_EQ(w.popcount(), v.popcount());
  // Uniform 7% density is the break-even zone: WAH stops paying off,
  // which is itself the behaviour FastBit documents.
  const auto dense = BitVector::random(1 << 20, 0.07, rng);
  EXPECT_GT(WahBitmap::compress(dense).compression_ratio(), 0.8);
}

}  // namespace
}  // namespace pinatubo
