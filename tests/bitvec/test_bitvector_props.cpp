// Property-based sweeps over sizes and densities: boolean-algebra laws that
// must hold for every BitVector regardless of packing edge cases.
#include <gtest/gtest.h>

#include <tuple>

#include "bitvec/bitvector.hpp"

namespace pinatubo {
namespace {

class BitVectorProps
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {
 protected:
  std::size_t size() const { return std::get<0>(GetParam()); }
  double density() const { return std::get<1>(GetParam()); }
  Rng rng_{std::get<0>(GetParam()) * 1315423911u + 17};
};

TEST_P(BitVectorProps, DeMorgan) {
  const auto a = BitVector::random(size(), density(), rng_);
  const auto b = BitVector::random(size(), 1.0 - density(), rng_);
  EXPECT_EQ(~(a | b), (~a & ~b));
  EXPECT_EQ(~(a & b), (~a | ~b));
}

TEST_P(BitVectorProps, XorIsAddMod2) {
  const auto a = BitVector::random(size(), density(), rng_);
  const auto b = BitVector::random(size(), density(), rng_);
  EXPECT_EQ((a ^ b), ((a | b) & ~(a & b)));
  EXPECT_EQ((a ^ a).popcount(), 0u);
  EXPECT_EQ((a ^ b) ^ b, a);
}

TEST_P(BitVectorProps, OrAndIdempotentCommutative) {
  const auto a = BitVector::random(size(), density(), rng_);
  const auto b = BitVector::random(size(), density(), rng_);
  EXPECT_EQ((a | a), a);
  EXPECT_EQ((a & a), a);
  EXPECT_EQ((a | b), (b | a));
  EXPECT_EQ((a & b), (b & a));
}

TEST_P(BitVectorProps, AbsorptionAndDistribution) {
  const auto a = BitVector::random(size(), density(), rng_);
  const auto b = BitVector::random(size(), density(), rng_);
  const auto c = BitVector::random(size(), density(), rng_);
  EXPECT_EQ((a & (a | b)), a);
  EXPECT_EQ((a | (a & b)), a);
  EXPECT_EQ((a & (b | c)), ((a & b) | (a & c)));
}

TEST_P(BitVectorProps, PopcountInclusionExclusion) {
  const auto a = BitVector::random(size(), density(), rng_);
  const auto b = BitVector::random(size(), density(), rng_);
  EXPECT_EQ((a | b).popcount() + (a & b).popcount(),
            a.popcount() + b.popcount());
}

TEST_P(BitVectorProps, ComplementPopcount) {
  const auto a = BitVector::random(size(), density(), rng_);
  EXPECT_EQ(a.popcount() + (~a).popcount(), size());
}

TEST_P(BitVectorProps, AndNotIdentity) {
  const auto a = BitVector::random(size(), density(), rng_);
  const auto b = BitVector::random(size(), density(), rng_);
  EXPECT_EQ(BitVector::and_not(a, b), (a & ~b));
}

TEST_P(BitVectorProps, FindIterationMatchesPopcount) {
  const auto a = BitVector::random(size(), density(), rng_);
  std::size_t count = 0;
  for (std::size_t i = a.find_first(); i < a.size(); i = a.find_next(i))
    ++count;
  EXPECT_EQ(count, a.popcount());
}

TEST_P(BitVectorProps, StringRoundTrip) {
  if (size() > 4096) GTEST_SKIP() << "string round-trip kept small";
  const auto a = BitVector::random(size(), density(), rng_);
  EXPECT_EQ(BitVector::from_string(a.to_string()), a);
}

TEST_P(BitVectorProps, ReduceOrEqualsFold) {
  const auto a = BitVector::random(size(), density(), rng_);
  const auto b = BitVector::random(size(), density(), rng_);
  const auto c = BitVector::random(size(), density(), rng_);
  const auto d = BitVector::random(size(), density(), rng_);
  const BitVector* ops[] = {&a, &b, &c, &d};
  EXPECT_EQ(BitVector::reduce(BitOp::kOr, ops), (((a | b) | c) | d));
  EXPECT_EQ(BitVector::reduce(BitOp::kAnd, ops), (((a & b) & c) & d));
  EXPECT_EQ(BitVector::reduce(BitOp::kXor, ops), (((a ^ b) ^ c) ^ d));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, BitVectorProps,
    ::testing::Combine(
        // Word-boundary adversarial sizes plus larger blocks.
        ::testing::Values<std::size_t>(1, 63, 64, 65, 127, 128, 1000, 4096,
                                       16384),
        ::testing::Values(0.0, 0.03, 0.5, 0.97, 1.0)));

}  // namespace
}  // namespace pinatubo
