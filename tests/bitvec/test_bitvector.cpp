#include "bitvec/bitvector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo {
namespace {

TEST(BitVector, ConstructsZeroed) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.word_count(), 3u);
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, SetGetClearFlip) {
  BitVector v(100);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.clear(63);
  EXPECT_FALSE(v.get(63));
  v.flip(1);
  EXPECT_TRUE(v.get(1));
  v.flip(1);
  EXPECT_FALSE(v.get(1));
}

TEST(BitVector, BoundsChecked) {
  BitVector v(10);
  EXPECT_THROW(v.get(10), Error);
  EXPECT_THROW(v.set(10), Error);
  EXPECT_THROW(v.flip(10), Error);
}

TEST(BitVector, FromToString) {
  const auto v = BitVector::from_string("1011001");
  EXPECT_EQ(v.size(), 7u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.to_string(), "1011001");
  EXPECT_THROW(BitVector::from_string("10x"), Error);
}

TEST(BitVector, BulkOps) {
  const auto a = BitVector::from_string("1100");
  const auto b = BitVector::from_string("1010");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(8), b(9);
  EXPECT_THROW(a |= b, Error);
  EXPECT_THROW(a &= b, Error);
  EXPECT_THROW(a ^= b, Error);
  EXPECT_THROW(BitVector::and_not(a, b), Error);
}

TEST(BitVector, InvertKeepsTailZero) {
  BitVector v(70);
  v.invert();
  EXPECT_EQ(v.popcount(), 70u);
  EXPECT_TRUE(v.all());
  // The packing invariant: trailing word bits past size stay zero.
  EXPECT_EQ(v.words()[1] >> 6, 0u);
}

TEST(BitVector, AndNot) {
  const auto a = BitVector::from_string("1111");
  const auto b = BitVector::from_string("0101");
  EXPECT_EQ(BitVector::and_not(a, b).to_string(), "1010");
}

TEST(BitVector, ReduceMultiOperand) {
  const auto a = BitVector::from_string("1000");
  const auto b = BitVector::from_string("0100");
  const auto c = BitVector::from_string("0010");
  const BitVector* ops[] = {&a, &b, &c};
  EXPECT_EQ(BitVector::reduce(BitOp::kOr, ops).to_string(), "1110");
  EXPECT_EQ(BitVector::reduce(BitOp::kAnd, ops).to_string(), "0000");
  EXPECT_EQ(BitVector::reduce(BitOp::kXor, ops).to_string(), "1110");
}

TEST(BitVector, ReduceInvTakesOneOperand) {
  const auto a = BitVector::from_string("10");
  const BitVector* one[] = {&a};
  EXPECT_EQ(BitVector::reduce(BitOp::kInv, one).to_string(), "01");
  const BitVector* two[] = {&a, &a};
  EXPECT_THROW(BitVector::reduce(BitOp::kInv, two), Error);
}

TEST(BitVector, FindFirstNext) {
  auto v = BitVector(200);
  EXPECT_EQ(v.find_first(), 200u);
  v.set(5);
  v.set(64);
  v.set(199);
  EXPECT_EQ(v.find_first(), 5u);
  EXPECT_EQ(v.find_next(5), 64u);
  EXPECT_EQ(v.find_next(64), 199u);
  EXPECT_EQ(v.find_next(199), 200u);
  EXPECT_EQ(v.find_next(0), 5u);
}

TEST(BitVector, ForEachSetAscending) {
  auto v = BitVector(150);
  v.set(3);
  v.set(77);
  v.set(149);
  std::vector<std::size_t> seen;
  v.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 77, 149}));
}

TEST(BitVector, FillAndAll) {
  BitVector v(65);
  v.fill(true);
  EXPECT_TRUE(v.all());
  EXPECT_EQ(v.popcount(), 65u);
  v.fill(false);
  EXPECT_TRUE(v.none());
}

TEST(BitVector, ResizePreservesAndZeroes) {
  BitVector v(10);
  v.set(9);
  v.resize(100);
  EXPECT_TRUE(v.get(9));
  EXPECT_EQ(v.popcount(), 1u);
  v.resize(9);
  EXPECT_EQ(v.popcount(), 0u);
  v.resize(64);
  EXPECT_TRUE(v.none());
}

TEST(BitVector, BytesRoundTrip) {
  Rng rng(5);
  const auto v = BitVector::random(1234, 0.3, rng);
  const auto bytes = v.to_bytes();
  EXPECT_EQ(bytes.size(), (1234u + 7) / 8);
  const auto back = BitVector::from_bytes(bytes, 1234);
  EXPECT_EQ(v, back);
}

TEST(BitVector, RandomDensity) {
  Rng rng(9);
  const auto sparse = BitVector::random(100000, 0.1, rng);
  const auto dense = BitVector::random(100000, 0.9, rng);
  EXPECT_NEAR(sparse.popcount() / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(dense.popcount() / 100000.0, 0.9, 0.01);
  const auto half = BitVector::random(100000, 0.5, rng);
  EXPECT_NEAR(half.popcount() / 100000.0, 0.5, 0.02);
}

TEST(BitVector, EqualityAndApply) {
  const auto a = BitVector::from_string("110");
  const auto b = BitVector::from_string("011");
  EXPECT_EQ(apply(BitOp::kOr, a, b).to_string(), "111");
  EXPECT_EQ(apply(BitOp::kAnd, a, b).to_string(), "010");
  EXPECT_EQ(apply(BitOp::kXor, a, b).to_string(), "101");
  EXPECT_EQ(apply(BitOp::kInv, a, b).to_string(), "001");
}

TEST(BitVector, FromWordsRoundTrip) {
  Rng rng(71);
  const auto v = BitVector::random(300, 0.5, rng);
  const auto back = BitVector::from_words(v.words(), 300);
  EXPECT_EQ(back, v);
  // Tail bits of the source words are masked off.
  std::vector<BitVector::Word> words = {~BitVector::Word{0},
                                        ~BitVector::Word{0}};
  const auto masked = BitVector::from_words(words, 70);
  EXPECT_EQ(masked.popcount(), 70u);
  EXPECT_EQ(masked.size(), 70u);
}

TEST(BitVector, RandomDensityWordPathMatchesBitPath) {
  // The word-assembled threshold path must consume draws exactly like the
  // historical one-uniform-per-bit loop, so seeds reproduce old outputs.
  Rng rng(101);
  const auto v = BitVector::random(517, 0.3, rng);
  Rng ref_rng(101);
  BitVector ref(517);
  for (std::size_t i = 0; i < 517; ++i)
    if (ref_rng.chance(0.3)) ref.set(i);
  EXPECT_EQ(v, ref);
}

TEST(CopyBits, MatchesPerBitReferenceAtAllAlignments) {
  Rng rng(72);
  const auto src = BitVector::random(500, 0.5, rng);
  for (const std::size_t src_off : {0u, 1u, 63u, 64u, 65u, 130u}) {
    for (const std::size_t dst_off : {0u, 7u, 63u, 64u, 128u}) {
      for (const std::size_t len : {0u, 1u, 37u, 64u, 200u}) {
        auto dst = BitVector::random(500, 0.5, rng);
        auto expect = dst;
        for (std::size_t i = 0; i < len; ++i)
          expect.set(dst_off + i, src.get(src_off + i));
        copy_bits(dst.words(), dst_off, src.words(), src_off, len);
        EXPECT_EQ(dst, expect) << "src_off=" << src_off
                               << " dst_off=" << dst_off << " len=" << len;
      }
    }
  }
}

TEST(CopyBits, PreservesBitsOutsideRange) {
  BitVector dst(200);
  dst.fill(true);
  BitVector src(100);  // all zero
  copy_bits(dst.words(), 50, src.words(), 10, 40);
  for (std::size_t i = 0; i < 200; ++i)
    EXPECT_EQ(dst.get(i), i < 50 || i >= 90) << i;
}

TEST(CopyBits, BoundsChecked) {
  BitVector dst(128), src(128);
  EXPECT_THROW(copy_bits(dst.words(), 100, src.words(), 0, 29), Error);
  EXPECT_THROW(copy_bits(dst.words(), 0, src.words(), 100, 29), Error);
  EXPECT_NO_THROW(copy_bits(dst.words(), 100, src.words(), 99, 28));
}

TEST(BitOpNames, AllNamed) {
  EXPECT_STREQ(to_string(BitOp::kOr), "OR");
  EXPECT_STREQ(to_string(BitOp::kAnd), "AND");
  EXPECT_STREQ(to_string(BitOp::kXor), "XOR");
  EXPECT_STREQ(to_string(BitOp::kInv), "INV");
}

}  // namespace
}  // namespace pinatubo
