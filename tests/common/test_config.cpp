#include "common/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const auto cfg = Config::from_string(
      "a = 1\n"
      "# comment\n"
      "b.c = hello world  # trailing comment\n"
      "\n"
      "flag = true\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_or("b.c", ""), "hello world");
  EXPECT_TRUE(cfg.get_bool("flag", false));
}

TEST(Config, DefaultsWhenMissing) {
  Config cfg;
  EXPECT_EQ(cfg.get_int("nope", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("nope", 2.5), 2.5);
  EXPECT_FALSE(cfg.get("nope").has_value());
}

TEST(Config, ThrowsOnMalformedLine) {
  EXPECT_THROW(Config::from_string("no equals sign"), Error);
}

TEST(Config, ThrowsOnBadTypedValue) {
  auto cfg = Config::from_string("x = abc");
  EXPECT_THROW(cfg.get_int("x", 0), Error);
  EXPECT_THROW(cfg.get_double("x", 0), Error);
  EXPECT_THROW(cfg.get_bool("x", false), Error);
}

TEST(Config, FromArgsAndMerge) {
  auto base = Config::from_string("a=1\nb=2");
  const auto over = Config::from_args({"b=3", "c=4"});
  base.merge(over);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

TEST(Config, BoolSpellings) {
  const auto cfg = Config::from_string("a=yes\nb=off\nc=1\nd=false");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(Config, HexIntegers) {
  const auto cfg = Config::from_string("addr = 0x1000");
  EXPECT_EQ(cfg.get_u64("addr", 0), 0x1000u);
}

}  // namespace
}  // namespace pinatubo
