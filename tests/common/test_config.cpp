#include "common/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo {
namespace {

TEST(Config, ParsesKeyValueLines) {
  const auto cfg = Config::from_string(
      "a = 1\n"
      "# comment\n"
      "b.c = hello world  # trailing comment\n"
      "\n"
      "flag = true\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_or("b.c", ""), "hello world");
  EXPECT_TRUE(cfg.get_bool("flag", false));
}

TEST(Config, DefaultsWhenMissing) {
  Config cfg;
  EXPECT_EQ(cfg.get_int("nope", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("nope", 2.5), 2.5);
  EXPECT_FALSE(cfg.get("nope").has_value());
}

TEST(Config, ThrowsOnMalformedLine) {
  EXPECT_THROW(Config::from_string("no equals sign"), Error);
}

TEST(Config, ThrowsOnBadTypedValue) {
  auto cfg = Config::from_string("x = abc");
  EXPECT_THROW(cfg.get_int("x", 0), Error);
  EXPECT_THROW(cfg.get_double("x", 0), Error);
  EXPECT_THROW(cfg.get_bool("x", false), Error);
}

TEST(Config, FromArgsAndMerge) {
  auto base = Config::from_string("a=1\nb=2");
  const auto over = Config::from_args({"b=3", "c=4"});
  base.merge(over);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

TEST(Config, BoolSpellings) {
  const auto cfg = Config::from_string("a=yes\nb=off\nc=1\nd=false");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(Config, HexIntegers) {
  const auto cfg = Config::from_string("addr = 0x1000");
  EXPECT_EQ(cfg.get_u64("addr", 0), 0x1000u);
}

TEST(Config, RejectsNegativeU64) {
  // Regression: strtoull accepts a sign and wraps negatives mod 2^64, so
  // "-1" used to come back as 18446744073709551615.
  const auto cfg = Config::from_string("n = -1\nm = -0x10");
  EXPECT_THROW(cfg.get_u64("n", 0), Error);
  EXPECT_THROW(cfg.get_u64("m", 0), Error);
  // get_int still takes signed values, of course.
  EXPECT_EQ(cfg.get_int("n", 0), -1);
}

TEST(Config, RejectsOutOfRangeIntegers) {
  // Regression: ERANGE from strtoll/strtoull went unchecked, silently
  // clamping to the type extremes.
  const auto cfg = Config::from_string(
      "u = 18446744073709551616\n"   // 2^64
      "i = 9223372036854775808\n"    // 2^63
      "ineg = -9223372036854775809\n"
      "umax = 18446744073709551615\n"
      "imax = 9223372036854775807");
  EXPECT_THROW(cfg.get_u64("u", 0), Error);
  EXPECT_THROW(cfg.get_int("i", 0), Error);
  EXPECT_THROW(cfg.get_int("ineg", 0), Error);
  // The exact extremes still parse.
  EXPECT_EQ(cfg.get_u64("umax", 0), 18446744073709551615ull);
  EXPECT_EQ(cfg.get_int("imax", 0), 9223372036854775807ll);
}

TEST(Config, RejectsOutOfRangeDouble) {
  const auto cfg = Config::from_string("big = 1e999\nsmall = 1e-999");
  EXPECT_THROW(cfg.get_double("big", 0), Error);
  // Underflow is not an error: it rounds toward zero, a usable value.
  EXPECT_NEAR(cfg.get_double("small", 1.0), 0.0, 1e-300);
}

TEST(Config, RejectsEmptyTypedValue) {
  const auto cfg = Config::from_string("x =");
  EXPECT_THROW(cfg.get_int("x", 0), Error);
  EXPECT_THROW(cfg.get_u64("x", 0), Error);
  EXPECT_THROW(cfg.get_double("x", 0), Error);
}

}  // namespace
}  // namespace pinatubo
