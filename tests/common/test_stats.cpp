#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace pinatubo {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Geomean, KnownValue) {
  EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive) {
  EXPECT_THROW(geomean({1.0, 0.0}), Error);
  EXPECT_THROW(geomean({}), Error);
}

TEST(Percentile, Endpoints) {
  std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25), 2.5);
}

TEST(Histogram, CountsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1);   // clamps to first bin
  h.add(0.5);
  h.add(9.9);
  h.add(11);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Percentile, RejectsNaN) {
  // Regression: NaN in the sample set broke std::sort's strict weak
  // ordering (UB) and poisoned the interpolation.
  EXPECT_THROW(percentile({1.0, std::nan(""), 3.0}, 50), Error);
  EXPECT_THROW(percentile({std::nan("")}, 0), Error);
}

TEST(Histogram, RejectsNaN) {
  // Regression: casting a NaN-derived bin fraction to an integer is UB;
  // in practice it produced a wild index.
  Histogram h(0.0, 10.0, 5);
  EXPECT_THROW(h.add(std::nan("")), Error);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, InfinitiesClampToEdgeBins) {
  // +-inf scaled the bin fraction to +-inf before the (UB) cast; they now
  // clamp like any other out-of-range sample.
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[4], 1u);
}

TEST(Histogram, RendersWithoutCrashing) {
  Histogram h(0, 1, 4);
  for (int i = 0; i < 10; ++i) h.add(i / 10.0);
  EXPECT_FALSE(h.to_string().empty());
}

}  // namespace
}  // namespace pinatubo
