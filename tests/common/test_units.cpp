#include "common/units.hpp"

#include <gtest/gtest.h>

namespace pinatubo::units {
namespace {

TEST(Units, PowerToEnergy) {
  // 1 W for 1 ns = 1e-9 J = 1000 pJ.
  EXPECT_DOUBLE_EQ(power_to_energy_pj(1.0, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(power_to_energy_pj(40.0, 1000.0), 40.0 * 1e6);
}

TEST(Units, Gbps) {
  // bytes / ns == GB/s numerically.
  EXPECT_DOUBLE_EQ(gbps(128, 10.0), 12.8);
  EXPECT_DOUBLE_EQ(gbps(100, 0.0), 0.0);
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(1.0), "1 ns");
  EXPECT_EQ(format_time(1500.0), "1.5 us");
  EXPECT_EQ(format_time(2.5e6), "2.5 ms");
  EXPECT_EQ(format_time(3e9), "3 s");
}

TEST(Units, FormatEnergy) {
  EXPECT_EQ(format_energy(1.0), "1 pJ");
  EXPECT_EQ(format_energy(2000.0), "2 nJ");
  EXPECT_EQ(format_energy(5e6), "5 uJ");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2 KiB");
  EXPECT_EQ(format_bytes(3 * MiB), "3 MiB");
}

}  // namespace
}  // namespace pinatubo::units
