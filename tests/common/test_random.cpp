#include "common/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace pinatubo {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_u64(17), 17u);
}

TEST(Rng, UniformU64CoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformU64RejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_u64(0), Error);
}

TEST(Rng, UniformIntInclusiveEnds) {
  Rng rng(3);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= v == -2;
    hi |= v == 2;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal(0.0, 0.3));
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 1.0, 0.05);
}

TEST(Rng, ChanceProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng rng(23);
  Rng child = rng.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (rng.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(InvNormalCdf, MatchesKnownQuantiles) {
  // Acklam's approximation: relative error < 1.2e-9.
  EXPECT_NEAR(inv_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inv_normal_cdf(0.975), 1.959963984540054, 1e-7);
  EXPECT_NEAR(inv_normal_cdf(0.025), -1.959963984540054, 1e-7);
  EXPECT_NEAR(inv_normal_cdf(0.841344746068543), 1.0, 1e-7);
  // Deep tails (the branch the batched kernel patches scalar).
  EXPECT_NEAR(inv_normal_cdf(1e-9), -5.997807015008182, 1e-5);
  EXPECT_NEAR(inv_normal_cdf(1.0 - 1e-9), 5.997807015008182, 1e-5);
  EXPECT_THROW(inv_normal_cdf(0.0), Error);
  EXPECT_THROW(inv_normal_cdf(1.0), Error);
}

TEST(CounterRng, DrawIsPureFunctionOfKeyStreamIndex) {
  const std::uint64_t base = CounterRng::stream_base(123, 4);
  CounterRng a(123, 4), b(123, 4);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t v = CounterRng::draw(base, i);
    EXPECT_EQ(a.next(), v);
    EXPECT_EQ(b.next(), v);
  }
}

TEST(CounterRng, OutOfOrderDrawsMatchSequential) {
  // The property the thread-pool sharding relies on: any evaluation order
  // of the indices yields the same values.
  const std::uint64_t base = CounterRng::stream_base(7, 0);
  std::vector<std::uint64_t> fwd, rev;
  for (std::uint64_t i = 0; i < 64; ++i) fwd.push_back(CounterRng::draw(base, i));
  for (std::uint64_t i = 64; i-- > 0;) rev.push_back(CounterRng::draw(base, i));
  std::reverse(rev.begin(), rev.end());
  EXPECT_EQ(fwd, rev);
}

TEST(CounterRng, StreamsAreDecorrelated) {
  CounterRng a(99, 0), b(99, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(CounterRng, SplitDerivesIndependentChild) {
  CounterRng parent(55, 0);
  CounterRng child = parent.split(3);
  CounterRng again = CounterRng(55, 0).split(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child.next(), again.next());
  EXPECT_NE(CounterRng(55, 0).split(4).base(), child.base());
}

TEST(CounterRng, UniformInOpenUnitInterval) {
  CounterRng rng(111, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CounterRng, NormalMomentsMatch) {
  CounterRng rng(13, 0);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(ZipfSampler, SkewsTowardHead) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20 * counts[99] / 2);
}

TEST(ZipfSampler, ThetaZeroIsUniform) {
  Rng rng(31);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(ZipfSampler, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), Error);
}

}  // namespace
}  // namespace pinatubo
