#include "common/table.hpp"

#include <gtest/gtest.h>

namespace pinatubo {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1234.5678, 4), "1235");
  EXPECT_EQ(Table::mult(2.0, 3), "2x");
}

TEST(Table, SeparatorAndNotes) {
  Table t;
  t.add_row({"a"});
  t.add_separator();
  t.add_row({"b"});
  t.add_note("footnote");
  EXPECT_NE(t.to_string().find("footnote"), std::string::npos);
}

TEST(LogChart, RendersSeries) {
  LogChart c("chart", "GBps");
  c.set_x_labels({"10", "11", "12"});
  c.add_series("s1", {1.0, 10.0, 100.0});
  c.add_hline("ddr", 12.8);
  const auto s = c.to_string();
  EXPECT_NE(s.find("chart"), std::string::npos);
  EXPECT_NE(s.find("s1"), std::string::npos);
  EXPECT_NE(s.find("ddr"), std::string::npos);
}

TEST(LogChart, HandlesNoData) {
  LogChart c("empty", "y");
  EXPECT_NE(c.to_string().find("no positive data"), std::string::npos);
}

}  // namespace
}  // namespace pinatubo
