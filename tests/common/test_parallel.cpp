#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace pinatubo {
namespace {

TEST(ThreadPool, SizeAtLeastOne) {
  ThreadPool one(1);
  EXPECT_EQ(one.size(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range no bigger than the grain runs inline as one chunk.
  std::vector<int> seen;
  pool.parallel_for(3, 6, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) seen.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(seen, (std::vector<int>{3, 4, 5}));
}

TEST(ThreadPool, ChunkOrderReductionDeterministic) {
  // Per-chunk partials folded in chunk order give the same sum for any
  // thread count — the reduction pattern the simulators rely on.
  const std::size_t n = 4096;
  auto run = [&](unsigned threads) {
    ThreadPool pool(threads);
    const std::size_t grain = 64;
    std::vector<double> partial((n + grain - 1) / grain, 0.0);
    pool.parallel_for(0, n, grain, [&](std::size_t lo, std::size_t hi) {
      double s = 0.0;
      for (std::size_t i = lo; i < hi; ++i)
        s += 1.0 / static_cast<double>(i + 1);
      partial[lo / grain] += s;
    });
    return std::accumulate(partial.begin(), partial.end(), 0.0);
  };
  const double one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(5));
}

TEST(ThreadPool, PropagatesBodyException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 42) PIN_CHECK_MSG(false, "boom");
                        }),
      Error);
  // The pool survives for the next task.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, 1,
                    [&](std::size_t lo, std::size_t hi) {
                      count += static_cast<int>(hi - lo);
                    });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, GlobalPoolResizable) {
  const unsigned before = ThreadPool::global_threads();
  ThreadPool::set_global_threads(2);
  EXPECT_EQ(ThreadPool::global_threads(), 2u);
  ThreadPool::set_global_threads(before);
  EXPECT_EQ(ThreadPool::global_threads(), before);
}

TEST(ParallelFor, FreeFunctionUsesGlobalPool) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace pinatubo
