// End-to-end integration tests: applications executed THROUGH the
// simulated Pinatubo memory (driver + allocator + scheduler + sensing),
// cross-checked against pure-CPU references; plus cross-backend
// consistency of the evaluation pipeline.
#include <gtest/gtest.h>

#include <limits>
#include <queue>

#include "apps/bitmap_index.hpp"
#include "apps/graph.hpp"
#include "apps/workloads.hpp"
#include "common/error.hpp"
#include "pinatubo/backend.hpp"
#include "pinatubo/driver.hpp"
#include "sim/acpim_backend.hpp"
#include "sim/sdram_backend.hpp"
#include "sim/simd_backend.hpp"

namespace pinatubo {
namespace {

TEST(EndToEnd, PimBfsMatchesCpuBfs) {
  apps::GraphGenParams p;
  p.nodes = 4096;
  p.avg_degree = 6;
  p.communities = 3;
  p.bridge_edges = 8;
  Rng rng(9);
  const auto g = apps::generate_graph(p, rng);

  // Reference.
  std::vector<bool> cpu_visited(g.nodes(), false);
  std::queue<std::uint32_t> q;
  cpu_visited[0] = true;
  q.push(0);
  while (!q.empty()) {
    const auto v = q.front();
    q.pop();
    const auto [b, e] = g.neighbors(v);
    for (const auto* w = b; w != e; ++w)
      if (!cpu_visited[*w]) {
        cpu_visited[*w] = true;
        q.push(*w);
      }
  }

  // PIM execution.
  core::PimRuntime pim;
  const unsigned P = 8;
  std::vector<core::PimRuntime::Handle> partial(P);
  for (auto& h : partial) h = pim.pim_malloc(g.nodes());
  const auto visited = pim.pim_malloc(g.nodes());
  const auto next = pim.pim_malloc(g.nodes());
  BitVector init(g.nodes());
  init.set(0);
  pim.pim_write(visited, init);

  BitVector frontier = init;
  const std::uint32_t span = (g.nodes() + P - 1) / P;
  while (frontier.any()) {
    std::vector<BitVector> parts(P, BitVector(g.nodes()));
    std::vector<core::PimRuntime::Handle> dirty;
    frontier.for_each_set([&](std::size_t v) {
      const auto [b, e] = g.neighbors(static_cast<std::uint32_t>(v));
      for (const auto* w = b; w != e; ++w)
        parts[static_cast<std::uint32_t>(v) / span].set(*w);
    });
    for (unsigned pi = 0; pi < P; ++pi)
      if (parts[pi].any()) {
        pim.pim_write(partial[pi], parts[pi]);
        dirty.push_back(partial[pi]);
      }
    if (dirty.empty()) break;
    if (dirty.size() >= 2) pim.pim_op(BitOp::kOr, dirty, dirty.front());
    pim.pim_op(BitOp::kInv, {visited}, next);
    pim.pim_op(BitOp::kAnd, {next, dirty.front()}, next);
    pim.pim_op(BitOp::kOr, {visited, next}, visited);
    frontier = pim.pim_read(next);
    for (const auto h : dirty) pim.pim_write(h, BitVector(g.nodes()));
  }

  const auto pim_visited = pim.pim_read(visited);
  for (std::uint32_t v = 0; v < g.nodes(); ++v)
    ASSERT_EQ(pim_visited.get(v), cpu_visited[v]) << "vertex " << v;
  EXPECT_GT(pim.stats().intra_steps, 0u);
}

TEST(EndToEnd, PimQueriesMatchRawScan) {
  apps::IndexConfig cfg;
  cfg.rows = 1ull << 12;
  const apps::BitmapIndex index(cfg, 21);
  core::PimRuntime pim;

  const std::uint64_t block = 2ull * cfg.bins + cfg.scratch_per_pair;
  std::vector<core::PimRuntime::Handle> by_id((cfg.attributes / 2) * block);
  for (auto& h : by_id) h = pim.pim_malloc(cfg.rows);
  for (unsigned a = 0; a < cfg.attributes; ++a)
    for (unsigned b = 0; b < cfg.bins; ++b)
      pim.pim_write(by_id[index.bitmap_id(a, b)], index.bin_bitmap(a, b));

  for (const auto& qy : apps::generate_queries(cfg, 25, 5)) {
    std::vector<unsigned> use(cfg.attributes / 2 + 1, 0);
    std::vector<core::PimRuntime::Handle> preds;
    for (const auto& p : qy.preds) {
      const auto slot = by_id[index.scratch_id(p.attr, use[p.attr / 2]++)];
      if (p.hi_bin > p.lo_bin) {
        std::vector<core::PimRuntime::Handle> bins;
        for (unsigned b = p.lo_bin; b <= p.hi_bin; ++b)
          bins.push_back(by_id[index.bitmap_id(p.attr, b)]);
        pim.pim_op(BitOp::kOr, bins, slot);
        if (p.negate) pim.pim_op(BitOp::kInv, {slot}, slot);
        preds.push_back(slot);
      } else if (p.negate) {
        pim.pim_op(BitOp::kInv, {by_id[index.bitmap_id(p.attr, p.lo_bin)]},
                   slot);
        preds.push_back(slot);
      } else {
        preds.push_back(by_id[index.bitmap_id(p.attr, p.lo_bin)]);
      }
    }
    const auto out =
        by_id[index.scratch_id(qy.preds[0].attr, use[qy.preds[0].attr / 2]++)];
    pim.pim_op(BitOp::kAnd, {preds[0], preds[1]}, out);
    for (std::size_t i = 2; i < preds.size(); ++i)
      pim.pim_op(BitOp::kAnd, {out, preds[i]}, out);
    EXPECT_EQ(pim.pim_read(out).popcount(),
              apps::count_matches_reference(index, qy));
  }
}

TEST(EndToEnd, SttRuntimeFallsBackGracefully) {
  // On STT-MRAM the same 8-operand OR must still compute correctly via
  // 2-row chains (the margin-derived limit), just more slowly.
  core::PimRuntime::Options opts;
  opts.tech = nvm::Tech::kSttMram;
  core::PimRuntime stt(mem::Geometry{}, opts);
  core::PimRuntime pcm;
  Rng rng(3);
  const std::uint64_t bits = 4096;
  BitVector expect(bits);
  std::vector<core::PimRuntime::Handle> hs, hp;
  for (int i = 0; i < 8; ++i) {
    const auto v = BitVector::random(bits, 0.2, rng);
    expect |= v;
    hs.push_back(stt.pim_malloc(bits));
    stt.pim_write(hs.back(), v);
    hp.push_back(pcm.pim_malloc(bits));
    pcm.pim_write(hp.back(), v);
  }
  stt.pim_op(BitOp::kOr, hs, hs.back());
  pcm.pim_op(BitOp::kOr, hp, hp.back());
  EXPECT_EQ(stt.pim_read(hs.back()), expect);
  EXPECT_EQ(pcm.pim_read(hp.back()), expect);
  // Chained STT execution: 7 activations vs 1, proportionally slower.
  EXPECT_EQ(stt.stats().intra_steps, 7u);
  EXPECT_EQ(pcm.stats().intra_steps, 1u);
  EXPECT_GT(stt.cost().time_ns, 3 * pcm.cost().time_ns);
}

TEST(EndToEnd, WorkloadSuiteIsWellFormed) {
  const auto workloads = apps::paper_workloads(1.0 / 64);
  ASSERT_EQ(workloads.size(), 11u);
  EXPECT_EQ(workloads[0].group, "Vector");
  EXPECT_EQ(workloads[5].group, "Graph");
  EXPECT_EQ(workloads[8].group, "Fastbit");
  for (const auto& w : workloads) {
    EXPECT_FALSE(w.trace.ops.empty()) << w.name;
    EXPECT_GT(w.trace.result_density, 0.0) << w.name;
    EXPECT_LE(w.trace.result_density, 1.0) << w.name;
  }
}

TEST(EndToEnd, AllBackendsPriceTheSuite) {
  const auto workloads = apps::paper_workloads(1.0 / 64);
  sim::SimdBackend simd(sim::MemKind::kPcm);
  sim::SdramBackend sdram;
  sim::AcPimBackend acpim;
  core::PinatuboBackend pin({}, {nvm::Tech::kPcm, 128});
  for (auto* backend : std::initializer_list<sim::Backend*>{
           &simd, &sdram, &acpim, &pin}) {
    for (const auto& w : workloads) {
      const auto r = backend->execute(w.trace);
      EXPECT_GT(r.bitwise.time_ns, 0.0) << backend->name() << "/" << w.name;
      EXPECT_GT(r.bitwise.energy.total_pj(), 0.0)
          << backend->name() << "/" << w.name;
    }
  }
}

TEST(EndToEnd, BatchedExecutionBitIdenticalToSync) {
  // The same random op program, once synchronous and once with a
  // pim_begin/pim_barrier window around every run of 8 ops, must leave
  // all vectors bit-identical; batching may only shrink the makespan.
  core::PimRuntime sync, batched;
  Rng rng(42);
  const std::uint64_t bits = (1ull << 20) + 777;  // multi-group, ragged tail
  constexpr int kVectors = 10;
  std::vector<core::PimRuntime::Handle> hs, hb;
  for (int i = 0; i < kVectors; ++i) {
    hs.push_back(sync.pim_malloc(bits));
    hb.push_back(batched.pim_malloc(bits));
    const auto v = BitVector::random(bits, rng.uniform(0.1, 0.9), rng);
    sync.pim_write(hs.back(), v);
    batched.pim_write(hb.back(), v);
  }
  for (int step = 0; step < 24; ++step) {
    if (step % 8 == 0) batched.pim_begin();
    const auto op = static_cast<BitOp>(rng.uniform_u64(4));
    const auto dst = static_cast<std::size_t>(rng.uniform_u64(kVectors));
    std::vector<std::size_t> src_idx;
    if (op == BitOp::kInv) {
      std::size_t s;
      do {
        s = static_cast<std::size_t>(rng.uniform_u64(kVectors));
      } while (s == dst);
      src_idx.push_back(s);
    } else {
      while (src_idx.size() < 2) {
        const auto s = static_cast<std::size_t>(rng.uniform_u64(kVectors));
        bool dup = false;
        for (const auto x : src_idx) dup |= x == s;
        if (!dup) src_idx.push_back(s);
      }
    }
    std::vector<core::PimRuntime::Handle> ss, sb;
    for (const auto s : src_idx) {
      ss.push_back(hs[s]);
      sb.push_back(hb[s]);
    }
    sync.pim_op(op, ss, hs[dst]);
    batched.pim_op(op, sb, hb[dst]);
    if (step % 8 == 7) batched.pim_barrier();
  }
  if (batched.in_batch()) batched.pim_barrier();

  for (int i = 0; i < kVectors; ++i)
    ASSERT_EQ(batched.pim_read(hb[static_cast<std::size_t>(i)]),
              sync.pim_read(hs[static_cast<std::size_t>(i)]))
        << "vector " << i;
  EXPECT_LE(batched.cost().time_ns, sync.cost().time_ns + 1e-9);
  EXPECT_NEAR(batched.cost().energy.total_pj(),
              sync.cost().energy.total_pj(),
              1e-6 * sync.cost().energy.total_pj());
  EXPECT_NEAR(batched.stats().serial_time_ns, sync.stats().serial_time_ns,
              1e-6 * sync.stats().serial_time_ns);
}

TEST(EndToEnd, RuntimeCostAgreesWithBackend) {
  // The functional runtime and the analytic backend must charge the same
  // cost for the same op stream (same placements, same plans).
  core::PimRuntime rt;
  std::vector<core::PimRuntime::Handle> hs;
  for (int i = 0; i < 4; ++i) hs.push_back(rt.pim_malloc(1ull << 14));
  rt.pim_op(BitOp::kOr, {hs[0], hs[1], hs[2], hs[3]}, hs[3]);

  core::PinatuboBackend backend({}, {nvm::Tech::kPcm, 128});
  const auto cost =
      backend.op_cost(BitOp::kOr, {0, 1, 2, 3}, 3, 1ull << 14, false, 0.5);
  EXPECT_NEAR(rt.cost().time_ns, cost.time_ns, 1e-9);
  EXPECT_NEAR(rt.cost().energy.total_pj(), cost.energy.total_pj(), 1e-6);
}

}  // namespace
}  // namespace pinatubo
