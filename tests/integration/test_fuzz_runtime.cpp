// Randomized differential testing: long random op sequences executed
// through the PIM runtime must match a plain host-side BitVector oracle,
// across vector shapes (sub-stripe, stripe, full-row, multi-group),
// technologies, allocation policies, op mixes, sense fidelities and
// thread counts.  The oracle is always the single-threaded host result,
// so the analog/multi-thread cases double as determinism checks.
#include <gtest/gtest.h>

#include <map>

#include "common/parallel.hpp"
#include "pinatubo/driver.hpp"

namespace pinatubo {
namespace {

struct FuzzParams {
  nvm::Tech tech;
  core::AllocPolicy policy;
  std::uint64_t bits;
  std::uint64_t seed;
  /// kAnalog is only fuzzed on PCM, whose ratio-100 cells give the read-
  /// based shapes (OR-n, XOR micro-steps, INV) >= 19 sigma of sense margin:
  /// sampled variation can never flip such a lane, so the exact-match host
  /// oracle still applies.  AND-2 is excluded from analog runs (see the op
  /// picker) and other technologies stay nominal — their few-sigma margins
  /// are exercised by the statistical margin tests instead.
  mem::SenseFidelity fidelity = mem::SenseFidelity::kNominal;
  unsigned threads = 1;  ///< global pool size while the sequence runs
};

class RuntimeFuzz : public ::testing::TestWithParam<FuzzParams> {};

/// Pins the global pool to `threads` for the test's scope.
class ScopedThreads {
 public:
  explicit ScopedThreads(unsigned threads) {
    ThreadPool::set_global_threads(threads);
  }
  ~ScopedThreads() { ThreadPool::set_global_threads(0); }
};

TEST_P(RuntimeFuzz, MatchesHostOracle) {
  const auto [tech, policy, bits, seed, fidelity, threads] = GetParam();
  const ScopedThreads pool(threads);
  core::PimRuntime::Options opts;
  opts.tech = tech;
  opts.policy = policy;
  opts.fidelity = fidelity;
  core::PimRuntime pim(mem::Geometry{}, opts);
  Rng rng(seed);

  constexpr int kVectors = 24;
  std::vector<core::PimRuntime::Handle> handles;
  std::vector<BitVector> oracle;
  for (int i = 0; i < kVectors; ++i) {
    handles.push_back(pim.pim_malloc(bits));
    oracle.push_back(BitVector::random(bits, rng.uniform(0.05, 0.95), rng));
    pim.pim_write(handles.back(), oracle.back());
  }

  // Randomly toggle batch windows: enqueued ops execute eagerly in
  // program order, so the oracle needs no special handling — only the
  // pricing defers to the barrier.
  bool batching = false;
  for (int step = 0; step < 60; ++step) {
    if (!batching && rng.uniform_u64(4) == 0) {
      pim.pim_begin();
      batching = true;
    }
    // AND-2's boundary current ratio is ~2 on every technology (2*g_low vs
    // g_low + g_high), leaving only ~5 sigma of sampled margin — a few
    // lane flips are expected over the millions of analog AND lanes a run
    // senses, so the exact-match oracle can only fuzz the >= 19-sigma
    // shapes under kAnalog.
    auto op = static_cast<BitOp>(rng.uniform_u64(4));
    if (fidelity == mem::SenseFidelity::kAnalog && op == BitOp::kAnd)
      op = BitOp::kOr;
    const auto dst = static_cast<std::size_t>(rng.uniform_u64(kVectors));
    std::vector<core::PimRuntime::Handle> srcs;
    std::vector<std::size_t> src_idx;
    if (op == BitOp::kInv) {
      std::size_t s;
      do {
        s = static_cast<std::size_t>(rng.uniform_u64(kVectors));
      } while (s == dst);  // keep INV out-of-place for a simple oracle
      src_idx.push_back(s);
    } else {
      const auto n = 2 + rng.uniform_u64(op == BitOp::kOr ? 6 : 2);
      while (src_idx.size() < n) {
        const auto s = static_cast<std::size_t>(rng.uniform_u64(kVectors));
        bool dup = false;
        for (const auto x : src_idx) dup |= x == s;
        if (!dup) src_idx.push_back(s);
      }
    }
    for (const auto s : src_idx) srcs.push_back(handles[s]);

    pim.pim_op(op, srcs, handles[dst]);
    std::vector<const BitVector*> ptrs;
    for (const auto s : src_idx) ptrs.push_back(&oracle[s]);
    oracle[dst] = BitVector::reduce(op, ptrs);

    if (batching && rng.uniform_u64(3) == 0) {
      pim.pim_barrier();
      batching = false;
    }

    // Occasionally free + reallocate a vector (slot reuse paths).
    if (step % 17 == 9) {
      const auto victim = static_cast<std::size_t>(rng.uniform_u64(kVectors));
      pim.pim_free(handles[victim]);
      handles[victim] = pim.pim_malloc(bits);
      oracle[victim] = BitVector::random(bits, 0.5, rng);
      pim.pim_write(handles[victim], oracle[victim]);
    }
  }

  if (batching) pim.pim_barrier();

  for (int i = 0; i < kVectors; ++i)
    ASSERT_EQ(pim.pim_read(handles[i]), oracle[i]) << "vector " << i;
  EXPECT_GT(pim.cost().time_ns, 0.0);
  EXPECT_GT(pim.stats().batches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RuntimeFuzz,
    ::testing::Values(
        // Sub-stripe vectors.
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kPimAware, 777, 1},
        // Exactly one stripe.
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kPimAware, 1ull << 14, 2},
        // Multi-stripe, sub-row.
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kPimAware, 3u << 14, 3},
        // Full row group.
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kPimAware, 1ull << 19, 4},
        // Multi-group (rank-mirrored).
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kPimAware,
                   (1ull << 20) + 12345, 5},
        // Naive policy: everything goes through the buffer paths.
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kNaive, 1ull << 14, 6},
        // STT-MRAM: 2-row chains everywhere.
        FuzzParams{nvm::Tech::kSttMram, core::AllocPolicy::kPimAware, 5000, 7},
        // ReRAM.
        FuzzParams{nvm::Tech::kReRam, core::AllocPolicy::kPimAware, 9999, 8},
        // Analog sensing (PCM only, wide margins => oracle-exact) across
        // thread counts: the batched sampled kernel must agree with the
        // nominal host oracle bit for bit regardless of the pool size.
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kPimAware, 1ull << 14,
                   9, mem::SenseFidelity::kAnalog, 1},
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kPimAware, 3u << 14,
                   10, mem::SenseFidelity::kAnalog, 3},
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kPimAware,
                   (1ull << 19) + 777, 11, mem::SenseFidelity::kAnalog, 4},
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kNaive, 1ull << 14, 12,
                   mem::SenseFidelity::kAnalog, 2},
        // Nominal fidelity on a multi-thread pool (engine-level sharding).
        FuzzParams{nvm::Tech::kPcm, core::AllocPolicy::kPimAware,
                   (1ull << 20) + 12345, 13, mem::SenseFidelity::kNominal,
                   2}));

}  // namespace
}  // namespace pinatubo
