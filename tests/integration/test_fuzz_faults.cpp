// Fault-recovery fuzz: randomized fault maps x op streams x technologies,
// always with exact detection on — the recovered result must be
// bit-identical to a host-side golden model, and bit-identical again at a
// different thread count and under batched submission.  This is the
// subsystem's core contract: whatever the injected faults do, a
// detection-enabled runtime NEVER returns a wrong answer.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "common/random.hpp"
#include "pinatubo/driver.hpp"
#include "reliability/policy.hpp"

namespace pinatubo {
namespace {

using core::PimRuntime;

struct TrialOutcome {
  std::vector<BitVector> finals;
  std::uint64_t wrong = 0;
  std::uint64_t detected = 0, retries = 0, deescalations = 0, remaps = 0,
                fallbacks = 0;
};

/// Draws a random (but trial-seeded) fault policy.  Detection stays exact
/// (read-back on both paths) — the knobs fuzzed are the fault mechanisms
/// and the ladder shape, not the safety contract.
reliability::Policy random_policy(Rng& rng) {
  reliability::Policy p;
  p.fault.enabled = true;
  p.fault.seed = rng.next();
  const double bers[] = {0.0, 1e-5, 1e-4};
  p.fault.sense_ber = bers[rng.next() % 3];
  p.fault.stuck_rate = (rng.next() % 2) ? 1e-7 : 0.0;
  p.fault.drift_rate = (rng.next() % 2) ? 0.01 : 0.0;
  if (rng.next() % 2) {
    p.fault.endurance_cycles = 30;
    p.fault.wearout_rate = 0.02;
  }
  p.verify.sense = reliability::SenseVerify::kReadback;
  p.verify.writes = reliability::WriteVerify::kReadback;
  p.retry.max_resense = static_cast<unsigned>(rng.next() % 3);
  p.retry.deescalate = (rng.next() % 2) != 0;
  p.retry.spare_rows = 16;
  return p;
}

TrialOutcome run_trial(std::uint64_t trial, unsigned threads, bool batched) {
  ThreadPool::set_global_threads(threads);
  Rng cfg_rng(1000 + trial);
  PimRuntime::Options opts;
  const nvm::Tech techs[] = {nvm::Tech::kPcm, nvm::Tech::kReRam,
                             nvm::Tech::kSttMram};
  opts.tech = techs[cfg_rng.next() % 3];
  opts.max_rows = (cfg_rng.next() % 2) ? 128 : 2;
  opts.reliability = random_policy(cfg_rng);
  PimRuntime pim({}, opts);

  const std::uint64_t bits = pim.geometry().sense_step_bits();
  const std::size_t n_vecs = 8;
  Rng rng(500 + trial);  // op-stream seed, independent of the fault seed
  std::vector<PimRuntime::Handle> vecs(n_vecs);
  std::vector<BitVector> golden(n_vecs);
  for (std::size_t i = 0; i < n_vecs; ++i) {
    vecs[i] = pim.pim_malloc(bits);
    golden[i] = BitVector::random(bits, 0.3, rng);
    pim.pim_write(vecs[i], golden[i]);
  }

  TrialOutcome out;
  const unsigned n_ops = 30;
  for (unsigned it = 0; it < n_ops; ++it) {
    if (batched && it % 5 == 0) pim.pim_begin();
    const unsigned pick = static_cast<unsigned>(rng.next() % 8);
    BitOp op = BitOp::kOr;
    std::size_t fan = 2 + rng.next() % 5;
    if (pick == 5) op = BitOp::kAnd, fan = 2;
    if (pick == 6) op = BitOp::kXor, fan = 2;
    if (pick == 7) op = BitOp::kInv, fan = 1;
    std::vector<std::size_t> idx(n_vecs);
    for (std::size_t i = 0; i < n_vecs; ++i) idx[i] = i;
    for (std::size_t i = 0; i < fan; ++i)
      std::swap(idx[i], idx[i + rng.next() % (n_vecs - i)]);
    const std::size_t dst = idx[rng.next() % fan];
    std::vector<PimRuntime::Handle> srcs;
    std::vector<const BitVector*> gsrcs;
    for (std::size_t i = 0; i < fan; ++i) {
      srcs.push_back(vecs[idx[i]]);
      gsrcs.push_back(&golden[idx[i]]);
    }
    pim.pim_op(op, srcs, vecs[dst]);
    golden[dst] = BitVector::reduce(op, gsrcs);
    if (pim.pim_read(vecs[dst]) != golden[dst]) ++out.wrong;
    if (batched && (it % 5 == 4 || it + 1 == n_ops)) pim.pim_barrier();
  }
  for (const auto h : vecs) out.finals.push_back(pim.pim_read(h));
  const auto& st = pim.stats();
  out.detected = st.detected_faults;
  out.retries = st.retries;
  out.deescalations = st.deescalations;
  out.remaps = st.remaps;
  out.fallbacks = st.fallbacks;
  ThreadPool::set_global_threads(0);
  return out;
}

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, RecoveredResultsMatchGoldenAtAnyThreadCount) {
  const std::uint64_t trial = GetParam();
  const auto base = run_trial(trial, 1, /*batched=*/false);
  EXPECT_EQ(base.wrong, 0u) << "trial " << trial;

  const auto threaded = run_trial(trial, 5, /*batched=*/false);
  EXPECT_EQ(threaded.finals, base.finals);
  EXPECT_EQ(threaded.wrong, 0u);
  EXPECT_EQ(threaded.detected, base.detected);
  EXPECT_EQ(threaded.retries, base.retries);
  EXPECT_EQ(threaded.deescalations, base.deescalations);
  EXPECT_EQ(threaded.remaps, base.remaps);
  EXPECT_EQ(threaded.fallbacks, base.fallbacks);

  const auto batched = run_trial(trial, 3, /*batched=*/true);
  EXPECT_EQ(batched.finals, base.finals);
  EXPECT_EQ(batched.wrong, 0u);
  EXPECT_EQ(batched.detected, base.detected);
  EXPECT_EQ(batched.fallbacks, base.fallbacks);
}

INSTANTIATE_TEST_SUITE_P(Trials, FaultFuzz,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(FaultFuzz, SomeTrialActuallyInjectsFaults) {
  // Sanity on the fuzz corpus itself: across the trials, faults must be
  // detected somewhere — otherwise the suite degenerated to a no-op.
  std::uint64_t detected = 0;
  for (std::uint64_t t = 0; t < 8; ++t)
    detected += run_trial(t, 1, false).detected;
  EXPECT_GT(detected, 0u);
}

}  // namespace
}  // namespace pinatubo
