#include "nvm/area_model.hpp"

#include <gtest/gtest.h>

namespace pinatubo::nvm {
namespace {

class AreaModelTest : public ::testing::Test {
 protected:
  AreaModel model_{cell_params(Tech::kPcm), ChipStructure{}};
};

TEST_F(AreaModelTest, StructureCountsConsistent) {
  const ChipStructure c;
  EXPECT_EQ(c.subarrays(), 512u);
  EXPECT_EQ(c.mats(), 4096u);
  EXPECT_EQ(c.cols_per_mat(), 1024u);
  EXPECT_EQ(c.sense_amps(), 131072u);
  // Capacity check: banks * subarrays * rows * row bits == cells.
  EXPECT_EQ(c.banks * c.subarrays_per_bank * c.rows_per_subarray *
                c.row_slice_bits,
            c.cells);
}

TEST_F(AreaModelTest, CellArrayDominatesChip) {
  const auto area = model_.baseline();
  EXPECT_GT(area.find("cell array") / area.total_um2(), 0.7);
}

TEST_F(AreaModelTest, BaselineInPlausibleRange) {
  // A 64 MB 65 nm NVM chip: tens of mm^2.
  const double mm2 = model_.baseline().total_um2() / 1e6;
  EXPECT_GT(mm2, 10.0);
  EXPECT_LT(mm2, 100.0);
}

TEST_F(AreaModelTest, PinatuboOverheadMatchesPaper) {
  // Fig. 13: ~0.9% total.
  const auto o = model_.pinatubo_overhead();
  EXPECT_NEAR(o.total_percent(), 0.9, 0.25);
  // Breakdown ordering: inter-sub >> inter-bank > xor > wl act > and/or.
  EXPECT_GT(o.percent("inter-sub"), o.percent("inter-bank"));
  EXPECT_GT(o.percent("inter-bank"), o.percent("xor"));
  EXPECT_GT(o.percent("xor"), o.percent("wl act"));
  EXPECT_GT(o.percent("wl act"), o.percent("and/or"));
  // Headline splits (paper: 0.72 / 0.09 / 0.06 / 0.05 / 0.02).
  EXPECT_NEAR(o.percent("inter-sub"), 0.72, 0.2);
  EXPECT_NEAR(o.percent("inter-bank"), 0.09, 0.04);
}

TEST_F(AreaModelTest, AcPimOverheadMatchesPaper) {
  // Fig. 13: ~6.4%, dominated by the per-subarray ALUs.
  const auto o = model_.acpim_overhead();
  EXPECT_NEAR(o.total_percent(), 6.4, 1.5);
  EXPECT_GT(o.percent("subarray alus"), 5.0);
}

TEST_F(AreaModelTest, AcPimFarCostlierThanPinatubo) {
  EXPECT_GT(model_.acpim_overhead().total_percent(),
            5.0 * model_.pinatubo_overhead().total_percent());
}

TEST_F(AreaModelTest, OverheadScalesWithStructure) {
  // Doubling banks roughly doubles inter-sub logic area.
  ChipStructure big;
  big.banks = 16;
  big.cells <<= 1;
  AreaModel bigger(cell_params(Tech::kPcm), big);
  const double a = model_.pinatubo_overhead().items[3].area_um2;
  const double b = bigger.pinatubo_overhead().items[3].area_um2;
  EXPECT_NEAR(b / a, 2.0, 1e-9);
}

}  // namespace
}  // namespace pinatubo::nvm
