#include "nvm/cell.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace pinatubo::nvm {
namespace {

TEST(Cell, NominalResistanceByValue) {
  const auto& p = cell_params(Tech::kPcm);
  EXPECT_DOUBLE_EQ(nominal_resistance(p, true), p.r_low_ohm);
  EXPECT_DOUBLE_EQ(nominal_resistance(p, false), p.r_high_ohm);
}

TEST(Cell, SampledResistanceMedianNearNominal) {
  const auto& p = cell_params(Tech::kPcm);
  Rng rng(1);
  std::vector<double> lo, hi;
  for (int i = 0; i < 4001; ++i) {
    lo.push_back(sample_resistance(p, true, rng));
    hi.push_back(sample_resistance(p, false, rng));
  }
  std::nth_element(lo.begin(), lo.begin() + 2000, lo.end());
  std::nth_element(hi.begin(), hi.begin() + 2000, hi.end());
  EXPECT_NEAR(lo[2000] / p.r_low_ohm, 1.0, 0.05);
  EXPECT_NEAR(hi[2000] / p.r_high_ohm, 1.0, 0.05);
}

TEST(Cell, ParallelResistance) {
  const double rs[] = {100.0, 100.0};
  EXPECT_DOUBLE_EQ(parallel_resistance(rs), 50.0);
  const double one[] = {42.0};
  EXPECT_DOUBLE_EQ(parallel_resistance(one), 42.0);
  const double mixed[] = {10e3, 1e6};
  EXPECT_NEAR(parallel_resistance(mixed), 9900.99, 0.01);
}

TEST(Cell, ParallelRejectsBadInput) {
  EXPECT_THROW(parallel_resistance({}), Error);
  const double bad[] = {10.0, -1.0};
  EXPECT_THROW(parallel_resistance(bad), Error);
}

TEST(Cell, BitlineConductanceAdds) {
  const double rs[] = {1e3, 1e3, 1e3};
  EXPECT_NEAR(bitline_conductance(rs), 3e-3, 1e-12);
}

TEST(BitlineModel, NominalCurrentMatchesFormula) {
  const auto& p = cell_params(Tech::kPcm);
  BitlineModel bl(p);
  // 1 one + 2 zeros.
  const double expect =
      p.read_voltage_v * (1.0 / p.r_low_ohm + 2.0 / p.r_high_ohm);
  EXPECT_NEAR(bl.nominal_current_a(1, 3), expect, 1e-15);
  const std::vector<bool> bits{true, false, false};
  EXPECT_NEAR(bl.nominal_current_a(bits), expect, 1e-15);
}

TEST(BitlineModel, CurrentMonotoneInOnes) {
  const auto& p = cell_params(Tech::kPcm);
  BitlineModel bl(p);
  double prev = 0.0;
  for (std::size_t ones = 0; ones <= 8; ++ones) {
    const double i = bl.nominal_current_a(ones, 8);
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(BitlineModel, SampledCurrentTracksNominal) {
  const auto& p = cell_params(Tech::kSttMram);
  BitlineModel bl(p);
  Rng rng(3);
  const std::vector<bool> bits{true, false};
  RunningStats s;
  for (int i = 0; i < 2000; ++i)
    s.add(bl.sampled_current_a(bits, rng));
  EXPECT_NEAR(s.mean() / bl.nominal_current_a(bits), 1.0, 0.05);
}

TEST(BitlineModel, RejectsEmpty) {
  BitlineModel bl(cell_params(Tech::kPcm));
  Rng rng(4);
  EXPECT_THROW(bl.nominal_current_a({}), Error);
  EXPECT_THROW(bl.sampled_current_a({}, rng), Error);
  EXPECT_THROW(bl.nominal_current_a(1, 0), Error);
  EXPECT_THROW(bl.nominal_current_a(3, 2), Error);
}

}  // namespace
}  // namespace pinatubo::nvm
