#include "nvm/technology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::nvm {
namespace {

TEST(Technology, PresetsAreSane) {
  for (Tech t : {Tech::kPcm, Tech::kSttMram, Tech::kReRam}) {
    const auto& p = cell_params(t);
    EXPECT_EQ(p.tech, t);
    EXPECT_GT(p.r_low_ohm, 0);
    EXPECT_GT(p.r_high_ohm, p.r_low_ohm);
    EXPECT_GT(p.read_voltage_v, 0);
    EXPECT_GT(p.set_energy_pj, 0);
    EXPECT_GT(p.reset_energy_pj, 0);
    EXPECT_GT(p.cell_area_f2, 0);
    EXPECT_GT(p.on_off_ratio(), 1.0);
  }
}

TEST(Technology, PcmHasHighOnOffRatio) {
  EXPECT_GE(cell_params(Tech::kPcm).on_off_ratio(), 50.0);
  EXPECT_GE(cell_params(Tech::kReRam).on_off_ratio(), 50.0);
}

TEST(Technology, SttHasLowOnOffRatio) {
  // The paper's premise for limiting STT-MRAM to 2-row ops.
  EXPECT_LT(cell_params(Tech::kSttMram).on_off_ratio(), 5.0);
}

TEST(Technology, PcmWriteIsUnidirectional) {
  EXPECT_FALSE(cell_params(Tech::kPcm).bidirectional_write);
  EXPECT_TRUE(cell_params(Tech::kSttMram).bidirectional_write);
  EXPECT_TRUE(cell_params(Tech::kReRam).bidirectional_write);
}

TEST(Technology, ReadCurrents) {
  const auto& p = cell_params(Tech::kPcm);
  EXPECT_DOUBLE_EQ(p.read_current_low_a(), p.read_voltage_v / p.r_low_ohm);
  EXPECT_GT(p.read_current_low_a(), p.read_current_high_a());
}

TEST(Technology, Names) {
  EXPECT_STREQ(to_string(Tech::kPcm), "PCM");
  EXPECT_STREQ(to_string(Tech::kSttMram), "STT-MRAM");
  EXPECT_STREQ(to_string(Tech::kReRam), "ReRAM");
}

TEST(Technology, FromString) {
  EXPECT_EQ(tech_from_string("pcm"), Tech::kPcm);
  EXPECT_EQ(tech_from_string("PCM"), Tech::kPcm);
  EXPECT_EQ(tech_from_string("stt-mram"), Tech::kSttMram);
  EXPECT_EQ(tech_from_string("ReRAM"), Tech::kReRam);
  EXPECT_THROW(tech_from_string("flash"), Error);
}

}  // namespace
}  // namespace pinatubo::nvm
