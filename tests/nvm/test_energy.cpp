#include "nvm/energy_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::nvm {
namespace {

class EnergyModelTest : public ::testing::Test {
 protected:
  ArrayEnergyModel model_{cell_params(Tech::kPcm)};
};

TEST_F(EnergyModelTest, ActivationIsPerRowConstant) {
  EXPECT_GT(model_.activate_row_pj(), 0);
  EXPECT_LT(model_.activate_row_pj(), 100);  // a few pJ, not nJ
}

TEST_F(EnergyModelTest, SenseScalesWithBits) {
  const double e1 = model_.sense_pj(1000, 2, 8.9);
  const double e2 = model_.sense_pj(2000, 2, 8.9);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
}

TEST_F(EnergyModelTest, SenseGrowsWithOpenRows) {
  EXPECT_GT(model_.sense_pj(1000, 128, 8.9), model_.sense_pj(1000, 2, 8.9));
}

TEST_F(EnergyModelTest, SenseRejectsBadArgs) {
  EXPECT_THROW(model_.sense_pj(10, 0, 8.9), Error);
  EXPECT_THROW(model_.sense_pj(10, 2, 0.0), Error);
}

TEST_F(EnergyModelTest, WriteUsesSetResetMix) {
  const auto& c = cell_params(Tech::kPcm);
  EXPECT_DOUBLE_EQ(model_.write_pj(10, 0), 10 * c.set_energy_pj);
  EXPECT_DOUBLE_EQ(model_.write_pj(0, 10), 10 * c.reset_energy_pj);
  EXPECT_DOUBLE_EQ(model_.write_pj(3, 7),
                   3 * c.set_energy_pj + 7 * c.reset_energy_pj);
}

TEST_F(EnergyModelTest, IoDominatesOnChipMovement) {
  // The PIM argument: off-chip I/O energy per bit >> internal movement.
  EXPECT_GT(model_.io_pj(1), 10 * model_.gdl_pj(1));
  EXPECT_GT(model_.gdl_pj(1), model_.logic_pj(1));
}

TEST_F(EnergyModelTest, AnalogSensingBeatsDigitalPerOp) {
  // Per processed bit, the analog sense (the Pinatubo path) must be within
  // the same order as a logic evaluation and far below I/O.
  const double sense_per_bit = model_.sense_pj(1, 2, 8.9);
  EXPECT_LT(sense_per_bit, 1.0);
  EXPECT_LT(sense_per_bit, model_.io_pj(1));
}

TEST_F(EnergyModelTest, WriteDominatesReadPerBit) {
  // NVM asymmetry: writes cost orders more than sensing.
  EXPECT_GT(model_.write_pj(1, 0), 10 * model_.sense_pj(1, 1, 8.9));
}

}  // namespace
}  // namespace pinatubo::nvm
