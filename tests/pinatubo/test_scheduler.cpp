#include "pinatubo/scheduler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pinatubo/allocator.hpp"

namespace pinatubo::core {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : alloc_(geo_, AllocPolicy::kPimAware),
        sched_(geo_, SchedulerConfig{128, nvm::Tech::kPcm}) {}

  std::vector<Placement> alloc_n(std::size_t n, std::uint64_t bits) {
    std::vector<Placement> ps;
    for (std::size_t i = 0; i < n; ++i) ps.push_back(alloc_.allocate(bits));
    return ps;
  }

  mem::Geometry geo_;
  RowAllocator alloc_;
  OpScheduler sched_;
};

TEST_F(SchedulerTest, EffectiveMaxRows) {
  EXPECT_EQ(sched_.effective_max_rows(BitOp::kOr), 128u);
  EXPECT_EQ(sched_.effective_max_rows(BitOp::kAnd), 2u);
  EXPECT_EQ(sched_.effective_max_rows(BitOp::kXor), 2u);
  EXPECT_EQ(sched_.effective_max_rows(BitOp::kInv), 1u);
  // Config cap below the tech limit.
  OpScheduler two(geo_, SchedulerConfig{2, nvm::Tech::kPcm});
  EXPECT_EQ(two.effective_max_rows(BitOp::kOr), 2u);
  // Tech limit below the config cap.
  OpScheduler stt(geo_, SchedulerConfig{128, nvm::Tech::kSttMram});
  EXPECT_EQ(stt.effective_max_rows(BitOp::kOr), 2u);
}

TEST_F(SchedulerTest, CoLocatedTwoRowOrIsSingleIntraStep) {
  auto ps = alloc_n(3, 1ull << 14);
  const auto plan = sched_.plan(BitOp::kOr, {ps[0], ps[1]}, ps[2], false);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].kind, StepKind::kIntraSub);
  EXPECT_EQ(plan.steps[0].rows, 2u);
  EXPECT_EQ(plan.steps[0].col_steps, 1u);
}

TEST_F(SchedulerTest, MultiRowOrSingleActivation) {
  auto ps = alloc_n(129, 1ull << 14);
  std::vector<Placement> srcs(ps.begin(), ps.begin() + 128);
  // 129th placement is in the next column window -> NOT column aligned,
  // so use a co-located dst: reuse the last src as dst (in-place).
  const auto plan = sched_.plan(BitOp::kOr, srcs, ps[127], false);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].kind, StepKind::kIntraSub);
  EXPECT_EQ(plan.steps[0].rows, 128u);
}

TEST_F(SchedulerTest, OrChainBeyondMaxRows) {
  OpScheduler sched2(geo_, SchedulerConfig{2, nvm::Tech::kPcm});
  auto ps = alloc_n(9, 1ull << 14);
  std::vector<Placement> srcs(ps.begin(), ps.begin() + 8);
  const auto plan = sched2.plan(BitOp::kOr, srcs, ps[7], false);
  // First step merges 2, each further step folds 1 more: 1 + 6 steps.
  EXPECT_EQ(plan.steps.size(), 7u);
  for (const auto& s : plan.steps) {
    EXPECT_EQ(s.kind, StepKind::kIntraSub);
    EXPECT_LE(s.rows, 2u);
  }
}

TEST_F(SchedulerTest, OrChainWith128Cap) {
  auto ps = alloc_n(128, 1ull << 14);
  // 200 operands from 128 slots: reuse some placements? Rows must be
  // distinct; instead allocate a second window and accept inter-sub? No —
  // verify the chain arithmetic with 128 distinct rows and max 16.
  OpScheduler sched16(geo_, SchedulerConfig{16, nvm::Tech::kPcm});
  std::vector<Placement> srcs(ps.begin(), ps.begin() + 128);
  const auto plan = sched16.plan(BitOp::kOr, srcs, ps[127], false);
  // 16 + 15*k >= 128 -> k = 8 extra steps; total 9.
  EXPECT_EQ(plan.steps.size(), 9u);
}

TEST_F(SchedulerTest, AndXorAreTwoRowChains) {
  auto ps = alloc_n(5, 1ull << 14);
  std::vector<Placement> srcs(ps.begin(), ps.begin() + 4);
  for (BitOp op : {BitOp::kAnd, BitOp::kXor}) {
    const auto plan = sched_.plan(op, srcs, ps[4], false);
    EXPECT_EQ(plan.steps.size(), 3u) << to_string(op);
    for (const auto& s : plan.steps) EXPECT_LE(s.rows, 2u);
  }
}

TEST_F(SchedulerTest, InvIsSingleRowStep) {
  auto ps = alloc_n(2, 1ull << 14);
  const auto plan = sched_.plan(BitOp::kInv, {ps[0]}, ps[1], false);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].rows, 1u);
  EXPECT_THROW(sched_.plan(BitOp::kInv, {ps[0], ps[1]}, ps[1], false), Error);
}

TEST_F(SchedulerTest, CrossSubarrayGoesInterSub) {
  // Fill a subarray (4096 one-stripe slots), next alloc lands elsewhere.
  auto ps = alloc_n(4097, 1ull << 14);
  const auto plan = sched_.plan(BitOp::kOr, {ps[0], ps[4096]}, ps[1], false);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].kind, StepKind::kInterSub);
}

TEST_F(SchedulerTest, MisalignedColumnsGoInterSub) {
  auto ps = alloc_n(200, 1ull << 14);
  // ps[0] is window 0, ps[128] is window 1: same subarray, misaligned.
  const auto plan = sched_.plan(BitOp::kOr, {ps[0], ps[128]}, ps[1], false);
  EXPECT_EQ(plan.steps[0].kind, StepKind::kInterSub);
}

TEST_F(SchedulerTest, SameOperandTwiceGoesBufferPath) {
  auto ps = alloc_n(2, 1ull << 14);
  // a OP a: rows overlap -> cannot double-open one wordline.
  const auto plan = sched_.plan(BitOp::kXor, {ps[0], ps[0]}, ps[1], false);
  EXPECT_EQ(plan.steps[0].kind, StepKind::kInterSub);
}

TEST_F(SchedulerTest, CrossRankGoesInterBank) {
  // Exhaust rank 0 (64 subarrays x 4096 slots) lazily: jump with virtual
  // placements instead.
  const auto p0 = alloc_.virtual_placement(0, 1ull << 14);
  const auto far = alloc_.virtual_placement(64ull * 4096, 1ull << 14);
  ASSERT_NE(p0.rank, far.rank);
  const auto plan = sched_.plan(BitOp::kOr, {p0, far}, p0, false);
  EXPECT_EQ(plan.steps[0].kind, StepKind::kInterBank);
  EXPECT_TRUE(plan.steps[0].crosses_rank);
}

TEST_F(SchedulerTest, MultiGroupVectorMakesPerGroupSteps) {
  auto ps = alloc_n(3, 1ull << 20);  // 2 groups each
  const auto plan = sched_.plan(BitOp::kOr, {ps[0], ps[1]}, ps[2], false);
  EXPECT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].group, 0u);
  EXPECT_EQ(plan.steps[1].group, 1u);
  for (const auto& s : plan.steps) {
    EXPECT_EQ(s.kind, StepKind::kIntraSub);
    EXPECT_EQ(s.col_steps, 32u);
  }
}

TEST_F(SchedulerTest, HostReadAppendsStep) {
  auto ps = alloc_n(3, 1ull << 14);
  const auto plan = sched_.plan(BitOp::kOr, {ps[0], ps[1]}, ps[2], true);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps.back().kind, StepKind::kHostRead);
}

TEST_F(SchedulerTest, RejectsBadShapes) {
  auto ps = alloc_n(2, 1ull << 14);
  EXPECT_THROW(sched_.plan(BitOp::kOr, {}, ps[0], false), Error);
  EXPECT_THROW(sched_.plan(BitOp::kOr, {ps[0]}, ps[1], false), Error);
  // Length mismatch.
  const auto big = alloc_.allocate(1ull << 15);
  EXPECT_THROW(sched_.plan(BitOp::kOr, {ps[0], big}, ps[1], false), Error);
}

TEST_F(SchedulerTest, SttAndDemotesToBufferPath) {
  // STT-MRAM's 2-row AND boundary ratio (n/(n-1+1/rho) = 1.43 at rho=2.5)
  // is below the CSA threshold: the scheduler must route AND through the
  // digital buffer path even for perfectly co-located operands, while OR
  // and XOR (plain-read margins) stay intra-subarray.
  OpScheduler stt(geo_, SchedulerConfig{128, nvm::Tech::kSttMram});
  auto ps = alloc_n(3, 1ull << 14);
  const auto and_plan = stt.plan(BitOp::kAnd, {ps[0], ps[1]}, ps[2], false);
  EXPECT_EQ(and_plan.steps[0].kind, StepKind::kInterSub);
  const auto or_plan = stt.plan(BitOp::kOr, {ps[0], ps[1]}, ps[2], false);
  EXPECT_EQ(or_plan.steps[0].kind, StepKind::kIntraSub);
  const auto xor_plan = stt.plan(BitOp::kXor, {ps[0], ps[1]}, ps[2], false);
  EXPECT_EQ(xor_plan.steps[0].kind, StepKind::kIntraSub);
}

TEST_F(SchedulerTest, PlanSummaryReadable) {
  auto ps = alloc_n(3, 1ull << 14);
  const auto plan = sched_.plan(BitOp::kOr, {ps[0], ps[1]}, ps[2], false);
  EXPECT_NE(plan.summary().find("intra=1"), std::string::npos);
}

}  // namespace
}  // namespace pinatubo::core
