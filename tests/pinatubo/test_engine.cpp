// ExecutionEngine: dependency-aware batched scheduling over OpPlans.
#include "pinatubo/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "pinatubo/allocator.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/scheduler.hpp"

namespace pinatubo::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : alloc_(geo_, AllocPolicy::kPimAware),
        sched_(geo_, SchedulerConfig{128, nvm::Tech::kPcm}),
        model_(geo_, nvm::Tech::kPcm) {}

  Placement vec(std::uint64_t index, std::uint64_t bits) {
    return alloc_.virtual_placement(index, bits);
  }
  OpPlan or_plan(const std::vector<Placement>& srcs, const Placement& dst,
                 bool host_read = false) {
    return sched_.plan(BitOp::kOr, srcs, dst, host_read);
  }
  mem::Cost serial_sum(const std::vector<OpPlan>& plans) {
    mem::Cost c;
    for (const auto& p : plans) c += model_.plan_cost(p);
    return c;
  }

  /// First vector index placed in rank 1 (full-group vectors walk 128
  /// rows x 64 subarrays of rank 0 first).
  static constexpr std::uint64_t kRank1 = 64ull * 128;
  static constexpr std::uint64_t kGroupBits = 1ull << 19;

  mem::Geometry geo_;
  RowAllocator alloc_;
  OpScheduler sched_;
  PinatuboCostModel model_;
};

TEST_F(EngineTest, EmptyBatchIsFree) {
  const ExecutionEngine engine(model_);
  const auto r = engine.run({});
  EXPECT_DOUBLE_EQ(r.cost.time_ns, 0.0);
  EXPECT_DOUBLE_EQ(r.cost.energy.total_pj(), 0.0);
  EXPECT_TRUE(r.schedule.empty());
}

TEST_F(EngineTest, SerialModeIsProgramOrderSum) {
  std::vector<OpPlan> plans;
  plans.push_back(or_plan({vec(0, kGroupBits), vec(1, kGroupBits)},
                          vec(2, kGroupBits)));
  plans.push_back(or_plan({vec(kRank1, kGroupBits), vec(kRank1 + 1, kGroupBits)},
                          vec(kRank1 + 2, kGroupBits)));
  const ExecutionEngine engine(model_, EngineOptions{true});
  const auto r = engine.run(plans);
  const auto serial = serial_sum(plans);
  EXPECT_DOUBLE_EQ(r.cost.time_ns, serial.time_ns);
  EXPECT_DOUBLE_EQ(r.serial_time_ns, serial.time_ns);
  // Schedule stays in program order.
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(r.schedule[0].plan, 0u);
  EXPECT_EQ(r.schedule[1].plan, 1u);
  EXPECT_GE(r.schedule[1].start_ns, r.schedule[0].done_ns - 1e-9);
}

TEST_F(EngineTest, BatchOfOneChainMatchesPlanCost) {
  // A 200-operand OR exceeds the 128-row activation cap, so it lowers to
  // a chain of dependent intra steps (the dst row is the accumulator) on
  // one rank: no overlap is possible and the engine must reproduce the
  // serial sum.
  std::vector<Placement> srcs;
  for (std::uint64_t i = 0; i < 200; ++i) srcs.push_back(vec(i, kGroupBits));
  const auto plan = or_plan(srcs, vec(200, kGroupBits), true);
  ASSERT_GT(plan.steps.size(), 1u);
  const ExecutionEngine engine(model_);
  const auto r = engine.run({plan});
  const auto serial = model_.plan_cost(plan);
  EXPECT_NEAR(r.cost.time_ns, serial.time_ns, 1e-9 * serial.time_ns);
  EXPECT_NEAR(r.cost.energy.total_pj(), serial.energy.total_pj(),
              1e-9 * serial.energy.total_pj());
}

TEST_F(EngineTest, IndependentRanksOverlap) {
  // Same shape of work on rank 0 and rank 1: the engine should hide one
  // behind the other almost entirely.
  std::vector<OpPlan> plans;
  plans.push_back(or_plan({vec(0, kGroupBits), vec(1, kGroupBits)},
                          vec(2, kGroupBits)));
  plans.push_back(or_plan({vec(kRank1, kGroupBits), vec(kRank1 + 1, kGroupBits)},
                          vec(kRank1 + 2, kGroupBits)));
  const ExecutionEngine engine(model_);
  const auto r = engine.run(plans);
  const auto serial = serial_sum(plans);
  const double single = model_.plan_cost(plans[0]).time_ns;
  EXPECT_LT(r.cost.time_ns, serial.time_ns - 1e-6);  // strictly overlapped
  EXPECT_GE(r.cost.time_ns, single - 1e-9);          // but not free
  EXPECT_LT(r.cost.time_ns, 1.1 * single);           // near-perfect overlap
  EXPECT_NEAR(r.cost.energy.total_pj(), serial.energy.total_pj(),
              1e-9 * serial.energy.total_pj());
  EXPECT_NEAR(r.serial_time_ns, serial.time_ns, 1e-9 * serial.time_ns);
}

TEST_F(EngineTest, SameRankSerializesOnTheBankCluster) {
  // Independent data, but both ops execute on rank 0: the lock-step bank
  // cluster is one resource, so no overlap.
  std::vector<OpPlan> plans;
  plans.push_back(or_plan({vec(0, kGroupBits), vec(1, kGroupBits)},
                          vec(2, kGroupBits)));
  plans.push_back(or_plan({vec(3, kGroupBits), vec(4, kGroupBits)},
                          vec(5, kGroupBits)));
  const ExecutionEngine engine(model_);
  const auto r = engine.run(plans);
  const auto serial = serial_sum(plans);
  EXPECT_NEAR(r.cost.time_ns, serial.time_ns, 1e-9 * serial.time_ns);
}

TEST_F(EngineTest, MultiGroupOpOverlapsItsOwnGroups) {
  // 2^20-bit vectors span two row groups that rotate across the ranks, so
  // a single op's group steps are independent and overlap.
  const std::uint64_t bits = 1ull << 20;
  const auto plan = or_plan({vec(0, bits), vec(1, bits)}, vec(2, bits));
  ASSERT_EQ(plan.steps.size(), 2u);
  const ExecutionEngine engine(model_);
  const auto r = engine.run({plan});
  EXPECT_LT(r.cost.time_ns, model_.plan_cost(plan).time_ns - 1e-6);
}

TEST_F(EngineTest, HostReadWaitsForAllGroups) {
  const std::uint64_t bits = 1ull << 20;  // 2 groups -> both ranks busy
  const auto plan = or_plan({vec(0, bits), vec(1, bits)}, vec(2, bits), true);
  const ExecutionEngine engine(model_);
  const auto r = engine.run({plan});
  ASSERT_EQ(r.schedule.size(), 3u);
  double compute_done = 0.0;
  double host_start = -1.0;
  for (const auto& ss : r.schedule) {
    const auto& step = plan.steps[ss.step];
    if (step.kind == StepKind::kHostRead)
      host_start = ss.start_ns;
    else
      compute_done = std::max(compute_done, ss.done_ns);
  }
  ASSERT_GE(host_start, 0.0);
  // The RAW dependencies on every group's result gate the burst.
  EXPECT_GE(host_start, compute_done - 1e-9);
}

TEST_F(EngineTest, WriteAfterWriteKeepsProgramOrder) {
  // Both ops write the same destination row: the schedule must keep
  // program order between them regardless of readiness ties.
  std::vector<OpPlan> plans;
  plans.push_back(or_plan({vec(0, kGroupBits), vec(1, kGroupBits)},
                          vec(2, kGroupBits)));
  plans.push_back(or_plan({vec(3, kGroupBits), vec(4, kGroupBits)},
                          vec(2, kGroupBits)));
  const ExecutionEngine engine(model_);
  const auto r = engine.run(plans);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(r.schedule[0].plan, 0u);
  EXPECT_EQ(r.schedule[1].plan, 1u);
  EXPECT_GE(r.schedule[1].start_ns, r.schedule[0].done_ns - 1e-9);
}

TEST_F(EngineTest, ReadAfterWriteChainsAcrossOps) {
  // Op B consumes op A's destination: B waits even though B's rank-1
  // operand would otherwise be free to start.
  std::vector<OpPlan> plans;
  plans.push_back(or_plan({vec(0, kGroupBits), vec(1, kGroupBits)},
                          vec(2, kGroupBits)));
  plans.push_back(or_plan({vec(2, kGroupBits), vec(3, kGroupBits)},
                          vec(4, kGroupBits)));
  const ExecutionEngine engine(model_);
  const auto r = engine.run(plans);
  const auto serial = serial_sum(plans);
  EXPECT_NEAR(r.cost.time_ns, serial.time_ns, 1e-9 * serial.time_ns);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_GE(r.schedule[1].start_ns, r.schedule[0].done_ns - 1e-9);
}

TEST_F(EngineTest, HostBurstsSerializeOnTheDataBus) {
  // Two overlapped ops both burst their results to the host: compute
  // overlaps across ranks, but the channel's data bus carries one burst
  // at a time.
  const std::uint64_t bits = kGroupBits;
  std::vector<OpPlan> plans;
  plans.push_back(or_plan({vec(0, bits), vec(1, bits)}, vec(2, bits), true));
  plans.push_back(or_plan({vec(kRank1, bits), vec(kRank1 + 1, bits)},
                          vec(kRank1 + 2, bits), true));
  const ExecutionEngine engine(model_);
  const auto r = engine.run(plans);
  const auto serial = serial_sum(plans);
  const double burst_ns =
      static_cast<double>(bits) / 8.0 / model_.bus().data_gbps;
  EXPECT_LT(r.cost.time_ns, serial.time_ns - 1e-6);
  // Two bursts cannot co-occupy the bus.
  EXPECT_GE(r.cost.time_ns, 2.0 * burst_ns);
  EXPECT_EQ(r.profile.bus_bytes, 2 * bits / 8);
}

TEST_F(EngineTest, ProfileAccountsEveryStep) {
  std::vector<OpPlan> plans;
  plans.push_back(or_plan({vec(0, kGroupBits), vec(1, kGroupBits)},
                          vec(2, kGroupBits), true));
  const ExecutionEngine engine(model_);
  const auto r = engine.run(plans);
  std::uint64_t steps = 0;
  double time = 0.0, energy = 0.0;
  for (std::size_t k = 0; k < kStepKindCount; ++k) {
    steps += r.profile.steps[k];
    time += r.profile.time_ns[k];
    energy += r.profile.energy_pj[k];
  }
  EXPECT_EQ(steps, plans[0].steps.size());
  EXPECT_NEAR(time, r.serial_time_ns, 1e-9 * r.serial_time_ns);
  EXPECT_NEAR(energy, r.cost.energy.total_pj(),
              1e-9 * r.cost.energy.total_pj());
  EXPECT_EQ(r.profile.steps[step_index(StepKind::kHostRead)], 1u);
}

}  // namespace
}  // namespace pinatubo::core
