#include "pinatubo/allocator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::core {
namespace {

mem::Geometry geo() { return {}; }

TEST(Allocator, ShapeOfLengths) {
  RowAllocator a(geo(), AllocPolicy::kPimAware);
  // <= one sense step: a single column stripe.
  EXPECT_EQ(a.shape_of(1).stripes, 1u);
  EXPECT_EQ(a.shape_of(1ull << 14).stripes, 1u);
  EXPECT_EQ(a.shape_of((1ull << 14) + 1).stripes, 2u);
  // Full row group.
  EXPECT_EQ(a.shape_of(1ull << 19).stripes, 32u);
  EXPECT_EQ(a.shape_of(1ull << 19).groups, 1u);
  // Beyond a group: multiple rows.
  EXPECT_EQ(a.shape_of(1ull << 20).groups, 2u);
  EXPECT_EQ(a.shape_of(1ull << 20).stripes, 32u);
}

TEST(Allocator, PimAwareCoLocatesConsecutiveVectors) {
  RowAllocator a(geo(), AllocPolicy::kPimAware);
  // 128 consecutive full-group vectors fill one subarray's rows.
  Placement first = a.allocate(1ull << 19);
  Placement prev = first;
  for (int i = 1; i < 128; ++i) {
    const Placement p = a.allocate(1ull << 19);
    EXPECT_TRUE(p.same_subarray(first));
    EXPECT_TRUE(p.column_aligned(first));
    EXPECT_EQ(p.first_row, prev.first_row + 1);
    prev = p;
  }
  // The 129th spills to the next subarray.
  const Placement next = a.allocate(1ull << 19);
  EXPECT_FALSE(next.same_subarray(first));
}

TEST(Allocator, PimAwareShortVectorsShareSubarray) {
  RowAllocator a(geo(), AllocPolicy::kPimAware);
  // One-stripe vectors: 128 rows x 32 column windows per subarray.
  std::vector<Placement> ps;
  for (int i = 0; i < 4096; ++i) ps.push_back(a.allocate(1ull << 14));
  for (const auto& p : ps) {
    EXPECT_TRUE(p.same_subarray(ps[0]));
  }
  // First 128 share a column window on distinct rows.
  for (int i = 0; i < 128; ++i) {
    EXPECT_TRUE(ps[i].column_aligned(ps[0]));
    EXPECT_EQ(ps[i].first_row, static_cast<unsigned>(i));
  }
  // 129th starts the next column window.
  EXPECT_EQ(ps[128].col_stripe, 1u);
  EXPECT_EQ(ps[128].first_row, 0u);
  // 4097th moves to a new subarray.
  EXPECT_FALSE(a.allocate(1ull << 14).same_subarray(ps[0]));
}

TEST(Allocator, NaiveScattersConsecutiveVectors) {
  RowAllocator a(geo(), AllocPolicy::kNaive);
  const Placement p0 = a.allocate(1ull << 14);
  const Placement p1 = a.allocate(1ull << 14);
  EXPECT_FALSE(p0.same_subarray(p1));
}

TEST(Allocator, FreeListReusesSlots) {
  RowAllocator a(geo(), AllocPolicy::kPimAware);
  const Placement p0 = a.allocate(1ull << 14);
  a.allocate(1ull << 14);
  a.free(p0);
  const Placement p2 = a.allocate(1ull << 14);
  EXPECT_EQ(p2.subarray, p0.subarray);
  EXPECT_EQ(p2.first_row, p0.first_row);
  EXPECT_EQ(p2.col_stripe, p0.col_stripe);
}

TEST(Allocator, RejectsOversizedVector) {
  RowAllocator a(geo(), AllocPolicy::kPimAware);
  // Groups mirror across 2 ranks, so the cap is 2 * rows_per_subarray
  // groups = 2^27 bits; one group above must throw.
  EXPECT_NO_THROW(a.allocate((1ull << 19) * 256));
  EXPECT_THROW(a.allocate((1ull << 19) * 257), Error);
  EXPECT_THROW(a.allocate(0), Error);
}

TEST(Allocator, MultiGroupVectorsMirrorAcrossRanks) {
  RowAllocator a(geo(), AllocPolicy::kPimAware);
  const auto p = a.allocate(1ull << 20);  // 2 groups
  EXPECT_EQ(p.groups, 2u);
  EXPECT_EQ(p.rows, 1u);  // one row per rank
  EXPECT_EQ(p.group_rank(0, 2), 0u);
  EXPECT_EQ(p.group_rank(1, 2), 1u);
  EXPECT_EQ(p.group_row(0, 2), p.first_row);
  EXPECT_EQ(p.group_row(1, 2), p.first_row);
  // 4-group vector: two rows per rank.
  const auto q = a.allocate(1ull << 21);
  EXPECT_EQ(q.rows, 2u);
  EXPECT_EQ(q.group_row(2, 2), q.first_row + 1);
  // Big vectors live at the top of the subarray space, away from the
  // small-vector cursor.
  const auto small = a.allocate(1ull << 14);
  EXPECT_NE(small.subarray, p.subarray);
}

TEST(Allocator, MachineFullThrows) {
  mem::Geometry g = geo();
  g.subarrays_per_bank = 1;
  g.ranks_per_channel = 1;
  g.rows_per_subarray = 2;
  RowAllocator a(g, AllocPolicy::kPimAware);
  // 2 rows x 1 stripe windows x 32 windows = 64 one-stripe slots.
  for (int i = 0; i < 64; ++i) a.allocate(1ull << 14);
  EXPECT_THROW(a.allocate(1ull << 14), Error);
}

TEST(Allocator, MixedShapesStayAlignedWithinShape) {
  RowAllocator a(geo(), AllocPolicy::kPimAware);
  const Placement big = a.allocate(1ull << 19);
  const Placement s0 = a.allocate(1ull << 14);
  const Placement s1 = a.allocate(1ull << 14);
  EXPECT_TRUE(s0.column_aligned(s1));
  EXPECT_FALSE(s0.column_aligned(big));
  EXPECT_FALSE(s0.rows_overlap(s1));
}

TEST(Allocator, VirtualPlacementMatchesRealForPimAware) {
  RowAllocator a(geo(), AllocPolicy::kPimAware);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const Placement real = a.allocate(1ull << 14);
    const Placement virt = a.virtual_placement(i, 1ull << 14);
    EXPECT_EQ(virt.subarray, real.subarray) << i;
    EXPECT_EQ(virt.first_row, real.first_row) << i;
    EXPECT_EQ(virt.col_stripe, real.col_stripe) << i;
    EXPECT_EQ(virt.rank, real.rank) << i;
  }
}

TEST(Allocator, VirtualPlacementWrapsInsteadOfThrowing) {
  RowAllocator a(geo(), AllocPolicy::kPimAware);
  EXPECT_NO_THROW(a.virtual_placement(1ull << 40, 1ull << 14));
}

TEST(Allocator, BigRegionMeetsCursorThrows) {
  mem::Geometry g;
  g.subarrays_per_bank = 2;
  g.ranks_per_channel = 1;
  RowAllocator a(g, AllocPolicy::kPimAware);
  // Fill subarray 0 (small vectors), then subarray 1 via big vectors
  // (2 rows each on 1 rank -> 64 fit); the next has nowhere to go.
  for (int i = 0; i < 128 * 32; ++i) a.allocate(1ull << 14);
  for (int i = 0; i < 64; ++i) a.allocate(1ull << 20);
  EXPECT_THROW(a.allocate(1ull << 20), Error);
}

TEST(Allocator, NaiveBigVectorsScatter) {
  RowAllocator a(geo(), AllocPolicy::kNaive);
  const auto p0 = a.virtual_placement(0, 1ull << 20);
  const auto p1 = a.virtual_placement(1, 1ull << 20);
  EXPECT_NE(p0.subarray, p1.subarray);
  RowAllocator aw(geo(), AllocPolicy::kPimAware);
  const auto q0 = aw.virtual_placement(0, 1ull << 20);
  const auto q1 = aw.virtual_placement(1, 1ull << 20);
  EXPECT_EQ(q0.subarray, q1.subarray);
}

TEST(Allocator, PlacementPredicates) {
  Placement a{0, 0, 3, 10, 4, 2, 1, 1, 1000};
  Placement b{0, 0, 3, 11, 4, 2, 1, 1, 1000};
  Placement c{0, 0, 3, 10, 6, 2, 1, 1, 1000};
  Placement d{0, 1, 3, 10, 4, 2, 1, 1, 1000};
  EXPECT_TRUE(a.same_subarray(b));
  EXPECT_TRUE(a.column_aligned(b));
  EXPECT_FALSE(a.rows_overlap(b));
  EXPECT_FALSE(a.column_aligned(c));
  EXPECT_TRUE(a.rows_overlap(a));
  EXPECT_FALSE(a.same_rank(d));
}

}  // namespace
}  // namespace pinatubo::core
