// The reliability subsystem end to end through the runtime: fault
// campaigns recover to bit-exact results, the escalation ladder's rungs
// (retry, de-escalate, remap, CPU fallback) each fire and are priced,
// corruption is observable when detection is off (the control), results
// are deterministic across thread counts and serial-vs-batched, and
// reset_campaign makes back-to-back campaigns independent.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/random.hpp"
#include "obs/trace.hpp"
#include "pinatubo/driver.hpp"
#include "reliability/policy.hpp"

namespace pinatubo::core {
namespace {

/// The stressed end-of-life corner the default campaign runs at.
reliability::Policy stressed_policy() {
  reliability::Policy p;
  p.fault.enabled = true;
  p.fault.seed = 3;
  p.fault.stuck_rate = 1e-7;
  p.fault.sense_ber = 1e-5;
  p.verify.sense = reliability::SenseVerify::kReadback;
  p.verify.writes = reliability::WriteVerify::kReadback;
  p.retry.max_resense = 2;
  p.retry.spare_rows = 8;
  return p;
}

struct CampaignResult {
  std::vector<BitVector> finals;
  std::uint64_t wrong = 0;
  PimRuntime::Stats stats;
  double time_ns = 0.0;
};

/// A mini fault campaign: mixed ops over one-stripe vectors (all on the
/// fault-prone intra-subarray path), golden-checked after every op.
CampaignResult run_campaign_on(PimRuntime& pim, bool batched,
                               unsigned n_ops = 40) {
  const std::uint64_t bits = pim.geometry().sense_step_bits();
  const std::size_t n_vecs = 8;
  Rng rng(7);
  std::vector<PimRuntime::Handle> vecs(n_vecs);
  std::vector<BitVector> golden(n_vecs);
  for (std::size_t i = 0; i < n_vecs; ++i) {
    vecs[i] = pim.pim_malloc(bits);
    golden[i] = BitVector::random(bits, 0.3, rng);
    pim.pim_write(vecs[i], golden[i]);
  }

  CampaignResult res;
  for (unsigned it = 0; it < n_ops; ++it) {
    if (batched && it % 4 == 0) pim.pim_begin();
    const unsigned pick = static_cast<unsigned>(rng.next() % 8);
    BitOp op = BitOp::kOr;
    std::size_t fan = 2 + rng.next() % 4;
    if (pick == 5) op = BitOp::kAnd, fan = 2;
    if (pick == 6) op = BitOp::kXor, fan = 2;
    if (pick == 7) op = BitOp::kInv, fan = 1;
    std::vector<std::size_t> idx(n_vecs);
    for (std::size_t i = 0; i < n_vecs; ++i) idx[i] = i;
    for (std::size_t i = 0; i < fan; ++i)
      std::swap(idx[i], idx[i + rng.next() % (n_vecs - i)]);
    const std::size_t dst = idx[rng.next() % fan];
    std::vector<PimRuntime::Handle> srcs;
    std::vector<const BitVector*> gsrcs;
    for (std::size_t i = 0; i < fan; ++i) {
      srcs.push_back(vecs[idx[i]]);
      gsrcs.push_back(&golden[idx[i]]);
    }
    pim.pim_op(op, srcs, vecs[dst]);
    golden[dst] = BitVector::reduce(op, gsrcs);
    // Reads interleave with an open batch window (execution is eager).
    if (pim.pim_read(vecs[dst]) != golden[dst]) ++res.wrong;
    if (batched && (it % 4 == 3 || it + 1 == n_ops)) pim.pim_barrier();
  }
  for (const auto h : vecs) res.finals.push_back(pim.pim_read(h));
  res.stats = pim.stats();
  res.time_ns = pim.cost().time_ns;
  return res;
}

CampaignResult run_campaign(const reliability::Policy& pol,
                            bool batched = false, unsigned n_ops = 40) {
  PimRuntime::Options opts;
  opts.reliability = pol;
  PimRuntime pim({}, opts);
  return run_campaign_on(pim, batched, n_ops);
}

TEST(Reliability, CampaignRecoversToZeroWrongResults) {
  const auto r = run_campaign(stressed_policy());
  EXPECT_EQ(r.wrong, 0u);
  // Nothing escaped AND something was actually tested.
  EXPECT_GT(r.stats.detected_faults, 0u);
  EXPECT_GT(r.stats.retries, 0u);
}

TEST(Reliability, CorruptionObservableWithoutDetection) {
  // The control experiment: same chip, same fault seed, detection off —
  // the injected faults must now corrupt visible results.
  reliability::Policy blind = stressed_policy();
  blind.verify = {};
  const auto r = run_campaign(blind);
  EXPECT_GT(r.wrong, 0u);
  EXPECT_EQ(r.stats.detected_faults, 0u);
  EXPECT_EQ(r.stats.fallbacks, 0u);
}

TEST(Reliability, DeterministicAcrossThreadCountsAndBatching) {
  const auto baseline = run_campaign(stressed_policy());
  ThreadPool::set_global_threads(5);
  const auto threaded = run_campaign(stressed_policy());
  ThreadPool::set_global_threads(1);
  const auto serial = run_campaign(stressed_policy());
  ThreadPool::set_global_threads(0);
  const auto batched = run_campaign(stressed_policy(), /*batched=*/true);

  for (const auto* r : {&threaded, &serial, &batched}) {
    EXPECT_EQ(r->finals, baseline.finals);
    EXPECT_EQ(r->wrong, baseline.wrong);
    EXPECT_EQ(r->stats.detected_faults, baseline.stats.detected_faults);
    EXPECT_EQ(r->stats.retries, baseline.stats.retries);
    EXPECT_EQ(r->stats.deescalations, baseline.stats.deescalations);
    EXPECT_EQ(r->stats.remaps, baseline.stats.remaps);
    EXPECT_EQ(r->stats.fallbacks, baseline.stats.fallbacks);
  }
  // Sync and batched price the same steps (batching only overlaps them).
  EXPECT_DOUBLE_EQ(threaded.time_ns, baseline.time_ns);
}

TEST(Reliability, EscalationIsPricedIntoTheCostModel) {
  // The same workload on a clean chip vs the stressed one: every failed
  // attempt, verify step and fallback must make the faulty run DEARER.
  const auto clean = run_campaign(reliability::Policy{});
  const auto faulty = run_campaign(stressed_policy());
  ASSERT_GT(faulty.stats.retries, 0u);
  EXPECT_GT(faulty.time_ns, clean.time_ns);
  EXPECT_GT(faulty.stats.intra_steps, clean.stats.intra_steps);
  EXPECT_EQ(clean.stats.detected_faults, 0u);
}

TEST(Reliability, DeescalationSplitsWideActivations) {
  // 16-operand ORs with no re-sense budget: a failed wide activation can
  // only proceed by splitting (16 -> 2x8 -> ...), which genuinely lowers
  // the injected BER (sense_ber scales with activation width).
  reliability::Policy pol = stressed_policy();
  pol.retry.max_resense = 0;
  PimRuntime::Options opts;
  opts.reliability = pol;
  PimRuntime pim({}, opts);
  const std::uint64_t bits = pim.geometry().sense_step_bits();
  Rng rng(11);
  std::vector<PimRuntime::Handle> vecs;
  std::vector<BitVector> golden;
  for (int i = 0; i < 16; ++i) {
    vecs.push_back(pim.pim_malloc(bits));
    golden.push_back(BitVector::random(bits, 0.2, rng));
    pim.pim_write(vecs.back(), golden.back());
  }
  std::vector<const BitVector*> gsrcs;
  for (const auto& g : golden) gsrcs.push_back(&g);
  const BitVector expect = BitVector::reduce(BitOp::kOr, gsrcs);
  for (int round = 0; round < 6; ++round) {
    pim.pim_op(BitOp::kOr, vecs, vecs[0]);
    EXPECT_EQ(pim.pim_read(vecs[0]), expect);  // kOr: idempotent dst
  }
  EXPECT_GT(pim.stats().deescalations, 0u);
}

TEST(Reliability, CpuFallbackIsTheLastRungAndIsPriced) {
  // An absurd BER with every other rung disabled: the op must complete
  // on the CPU path, correctly, with its cost accounted.
  reliability::Policy pol;
  pol.fault.enabled = true;
  pol.fault.seed = 5;
  pol.fault.sense_ber = 0.5;
  pol.verify.sense = reliability::SenseVerify::kReadback;
  pol.verify.writes = reliability::WriteVerify::kNone;
  pol.retry.max_resense = 0;
  pol.retry.deescalate = false;
  pol.retry.remap = false;
  PimRuntime::Options opts;
  opts.reliability = pol;
  PimRuntime pim({}, opts);
  const std::uint64_t bits = pim.geometry().sense_step_bits();
  Rng rng(13);
  const auto a = pim.pim_malloc(bits), b = pim.pim_malloc(bits);
  const auto va = BitVector::random(bits, 0.5, rng);
  const auto vb = BitVector::random(bits, 0.5, rng);
  pim.pim_write(a, va);
  pim.pim_write(b, vb);
  const double before = pim.cost().time_ns;
  pim.pim_op(BitOp::kOr, {a, b}, a);
  EXPECT_EQ(pim.pim_read(a), (va | vb));
  EXPECT_EQ(pim.stats().fallbacks, 1u);
  EXPECT_GT(pim.stats().detected_faults, 0u);
  EXPECT_GT(pim.stats().fallback_time_ns, 0.0);
  // The accrued cost grew by at least the CPU path's share.
  EXPECT_GE(pim.cost().time_ns - before, pim.stats().fallback_time_ns);
}

TEST(Reliability, ExhaustedLadderWithoutFallbackFailsLoudly) {
  reliability::Policy pol;
  pol.fault.enabled = true;
  pol.fault.sense_ber = 0.5;
  pol.verify.sense = reliability::SenseVerify::kReadback;
  pol.verify.writes = reliability::WriteVerify::kNone;
  pol.retry.max_resense = 0;
  pol.retry.deescalate = false;
  pol.retry.cpu_fallback = false;
  PimRuntime::Options opts;
  opts.reliability = pol;
  PimRuntime pim({}, opts);
  const std::uint64_t bits = pim.geometry().sense_step_bits();
  Rng rng(13);
  const auto a = pim.pim_malloc(bits), b = pim.pim_malloc(bits);
  pim.pim_write(a, BitVector::random(bits, 0.5, rng));
  pim.pim_write(b, BitVector::random(bits, 0.5, rng));
  EXPECT_THROW(pim.pim_op(BitOp::kOr, {a, b}, a), Error);
}

TEST(Reliability, RemapHealsPersistentlyBadRows) {
  // A high manufacturing defect rate with write-verify: bad rows are
  // caught at write time (the intended data is still in hand) and moved
  // to spares — every vector reads back exactly.
  reliability::Policy pol;
  pol.fault.enabled = true;
  pol.fault.seed = 17;
  pol.fault.stuck_rate = 1e-6;  // ~40% of 2^19-cell rank-rows defective
  pol.verify.sense = reliability::SenseVerify::kNone;
  pol.verify.writes = reliability::WriteVerify::kReadback;
  pol.retry.spare_rows = 32;
  PimRuntime::Options opts;
  opts.reliability = pol;
  PimRuntime pim({}, opts);
  const std::uint64_t bits = pim.geometry().sense_step_bits();
  Rng rng(19);
  std::vector<PimRuntime::Handle> vecs;
  std::vector<BitVector> golden;
  for (int i = 0; i < 16; ++i) {
    vecs.push_back(pim.pim_malloc(bits));
    golden.push_back(BitVector::random(bits, 0.5, rng));
    pim.pim_write(vecs.back(), golden.back());
  }
  EXPECT_GT(pim.stats().remaps, 0u);
  EXPECT_GT(pim.memory().remapped_rows(), 0u);
  for (std::size_t i = 0; i < vecs.size(); ++i)
    EXPECT_EQ(pim.pim_read(vecs[i]), golden[i]) << "vector " << i;
}

TEST(Reliability, ResetCampaignMakesCampaignsIndependent) {
  // Two identical campaigns back to back in one process: the second must
  // reproduce the first bit for bit — vectors, counters, wear and cost.
  PimRuntime::Options opts;
  opts.reliability = stressed_policy();
  PimRuntime pim({}, opts);
  const auto first = run_campaign_on(pim, false);
  const auto wear_first = pim.memory().wear().total_row_writes();
  ASSERT_GT(first.stats.detected_faults, 0u);

  pim.reset_campaign();
  EXPECT_EQ(pim.memory().rows_written(), 0u);
  EXPECT_EQ(pim.memory().remapped_rows(), 0u);
  EXPECT_EQ(pim.stats().ops, 0u);
  EXPECT_EQ(pim.cost().time_ns, 0.0);

  const auto second = run_campaign_on(pim, false);
  EXPECT_EQ(second.finals, first.finals);
  EXPECT_EQ(second.wrong, first.wrong);
  EXPECT_EQ(second.stats.detected_faults, first.stats.detected_faults);
  EXPECT_EQ(second.stats.retries, first.stats.retries);
  EXPECT_EQ(second.stats.deescalations, first.stats.deescalations);
  EXPECT_EQ(second.stats.remaps, first.stats.remaps);
  EXPECT_EQ(second.stats.fallbacks, first.stats.fallbacks);
  EXPECT_DOUBLE_EQ(second.time_ns, first.time_ns);
  EXPECT_EQ(pim.memory().wear().total_row_writes(), wear_first);
}

TEST(Reliability, DisabledPolicyLeavesTheRuntimeUntouched) {
  // Defaults off: bit-for-bit the same behavior and cost as the seed
  // runtime, and no reliability machinery attached.
  PimRuntime pim;
  EXPECT_EQ(pim.fault_model(), nullptr);
  EXPECT_EQ(pim.recovery(), nullptr);
  const auto r = run_campaign(reliability::Policy{});
  EXPECT_EQ(r.wrong, 0u);
  EXPECT_EQ(r.stats.detected_faults, 0u);
  EXPECT_EQ(r.stats.retries, 0u);
}

TEST(Reliability, TraceReconcilesUnderRecovery) {
  // The obs invariants must survive retries, verify steps and fallback:
  // per-class span sums equal Stats, the timeline ends at the accrued
  // cost (CPU-fallback spans tile onto their own track), counters mirror.
  PimRuntime::Options opts;
  opts.reliability = stressed_policy();
  PimRuntime pim({}, opts);
  obs::TraceSession trace(true);
  pim.set_trace(&trace);
  const auto r = run_campaign_on(pim, false);
  ASSERT_EQ(r.wrong, 0u);
  ASSERT_GT(r.stats.retries, 0u);

  double by_class[kStepKindCount] = {};
  std::uint64_t steps[kStepKindCount] = {};
  bool saw_retry_span = false, saw_fallback_span = false;
  for (const auto& span : trace.spans()) {
    if (span.name.find("retry") != std::string::npos) saw_retry_span = true;
    if (span.category == "cpu-fallback") {
      saw_fallback_span = true;
      continue;
    }
    if (span.category == "bus") continue;
    for (std::size_t k = 0; k < kStepKindCount; ++k)
      if (span.category == to_string(static_cast<StepKind>(k))) {
        by_class[k] += span.dur_ns;
        ++steps[k];
      }
  }
  const auto& st = pim.stats();
  for (std::size_t k = 0; k < kStepKindCount; ++k) {
    EXPECT_NEAR(by_class[k], st.by_class[k].time_ns,
                1e-9 * (1.0 + st.by_class[k].time_ns))
        << "class " << to_string(static_cast<StepKind>(k));
    EXPECT_EQ(steps[k], st.by_class[k].steps);
  }
  EXPECT_NEAR(trace.max_end_ns(), pim.cost().time_ns,
              1e-9 * pim.cost().time_ns);
  EXPECT_TRUE(saw_retry_span);
  EXPECT_EQ(saw_fallback_span, st.fallbacks > 0);

  const auto& m = trace.metrics();
  EXPECT_EQ(m.get("pim.detected_faults"), st.detected_faults);
  EXPECT_EQ(m.get("pim.retries"), st.retries);
  EXPECT_EQ(m.get("pim.deescalations"), st.deescalations);
  EXPECT_EQ(m.get("pim.remaps"), st.remaps);
  EXPECT_EQ(m.get("pim.fallbacks"), st.fallbacks);
}

}  // namespace
}  // namespace pinatubo::core
