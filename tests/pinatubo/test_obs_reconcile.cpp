// Observability reconciliation: the trace a run emits must agree exactly
// with the runtime's own accounting.  Per step class, summed span
// durations equal Stats::by_class[k].time_ns (= ClassProfile::time_ns);
// the max span end equals the accrued makespan cost().time_ns; counters
// mirror Stats.  These cross-checks are what catch timing-model bugs that
// aggregate numbers hide.
#include <gtest/gtest.h>

#include <string>

#include "common/random.hpp"
#include "obs/schedule_trace.hpp"
#include "obs/trace.hpp"
#include "pinatubo/driver.hpp"
#include "verify/verifier.hpp"
#include "../obs/json_check.hpp"

namespace pinatubo::core {
namespace {

using pinatubo::testing::JsonChecker;

/// The runtime's accounting in the shape verify::reconcile_trace expects.
verify::Accounting accounting_of(const PimRuntime& pim) {
  verify::Accounting acct;
  for (std::size_t k = 0; k < kStepKindCount; ++k) {
    acct.class_time_ns[k] = pim.stats().by_class[k].time_ns;
    acct.class_steps[k] = pim.stats().by_class[k].steps;
  }
  acct.makespan_ns = pim.cost().time_ns;
  return acct;
}

/// The machine_explorer demo batch: 4 independent ORs then two dependent
/// ops that stream their result to the host — every step class except
/// inter-bank shows up, two ranks overlap, host bursts share the bus.
void run_demo_batch(PimRuntime& pim) {
  const std::uint64_t bits = 2 * pim.geometry().row_group_bits();
  std::vector<PimRuntime::Handle> vecs;
  Rng rng(42);
  for (int i = 0; i < 8; ++i) {
    vecs.push_back(pim.pim_malloc(bits));
    pim.pim_write(vecs.back(), BitVector::random(bits, 0.5, rng));
  }
  pim.pim_begin();
  for (int i = 0; i < 4; ++i)
    pim.pim_op(BitOp::kOr, {vecs[2 * i], vecs[2 * i + 1]}, vecs[2 * i]);
  pim.pim_op(BitOp::kAnd, {vecs[0], vecs[2]}, vecs[0], true);
  pim.pim_op(BitOp::kXor, {vecs[4], vecs[6]}, vecs[4], true);
  pim.pim_barrier();
}

class ObsReconcileTest : public ::testing::TestWithParam<bool> {};

TEST_P(ObsReconcileTest, SpansReconcileWithStats) {
  PimRuntime::Options opts;
  opts.serial_execution = GetParam();
  PimRuntime pim({}, opts);
  obs::TraceSession trace(true);
  pim.set_trace(&trace);
  run_demo_batch(pim);

  const auto& st = pim.stats();
  ASSERT_FALSE(trace.spans().empty());
  // Per-class span sums/counts and the max span end against the runtime's
  // accounting — the R01/R02/R04 library pass.
  const verify::Report rep = verify::reconcile_trace(trace, accounting_of(pim));
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  // Counters mirror Stats.
  const auto& m = trace.metrics();
  EXPECT_EQ(m.get("pim.ops"), st.ops);
  EXPECT_EQ(m.get("pim.batches"), st.batches);
  EXPECT_EQ(m.get("pim.bus_bytes"), st.bus_bytes);
  EXPECT_EQ(m.get("pim.steps.intra-sub"),
            st.by_class[step_index(StepKind::kIntraSub)].steps);
  EXPECT_EQ(m.get("pim.steps.host-read"),
            st.by_class[step_index(StepKind::kHostRead)].steps);
}

INSTANTIATE_TEST_SUITE_P(EngineAndSerial, ObsReconcileTest,
                         ::testing::Values(false, true));

TEST(ObsReconcile, BatchesTileTheTimeline) {
  // Three flushes (two sync ops + one batch window): batch i's spans
  // start exactly at the cost accrued before it, so the session timeline
  // is gapless at flush boundaries and ends at the total cost.
  PimRuntime pim;
  obs::TraceSession trace(true);
  pim.set_trace(&trace);
  const std::uint64_t bits = pim.geometry().row_group_bits();
  const auto a = pim.pim_malloc(bits);
  const auto b = pim.pim_malloc(bits);
  const auto c = pim.pim_malloc(bits);
  Rng rng(7);
  pim.pim_write(a, BitVector::random(bits, 0.5, rng));
  pim.pim_write(b, BitVector::random(bits, 0.5, rng));

  pim.pim_op(BitOp::kOr, {a, b}, c);                   // flush 1
  const double after_first = pim.cost().time_ns;
  EXPECT_NEAR(trace.max_end_ns(), after_first, 1e-9 * after_first);
  pim.pim_op(BitOp::kAnd, {a, c}, c);                  // flush 2
  pim.pim_begin();
  pim.pim_op(BitOp::kXor, {a, b}, c, true);            // flush 3 (batch)
  pim.pim_barrier();

  EXPECT_EQ(pim.stats().batches, 3u);
  EXPECT_EQ(trace.metrics().get("pim.batches"), 3u);
  EXPECT_NEAR(trace.max_end_ns(), pim.cost().time_ns,
              1e-9 * pim.cost().time_ns);
  // No span starts before the timeline origin or after the makespan.
  for (const auto& s : trace.spans()) {
    EXPECT_GE(s.start_ns, 0.0);
    EXPECT_LE(s.end_ns(), pim.cost().time_ns + 1e-6);
  }
}

TEST(ObsReconcile, BusSpansStayInsideTheirStep) {
  PimRuntime pim;
  obs::TraceSession trace(true);
  pim.set_trace(&trace);
  run_demo_batch(pim);
  // Every bus span must end by the makespan and carry positive duration;
  // the demo batch's two host reads produce at least two bus spans.
  std::size_t bus_spans = 0;
  for (const auto& s : trace.spans()) {
    if (s.category != "bus") continue;
    ++bus_spans;
    EXPECT_GT(s.dur_ns, 0.0);
    EXPECT_LE(s.end_ns(), pim.cost().time_ns + 1e-6);
  }
  EXPECT_GE(bus_spans, 2u);
}

TEST(ObsReconcile, DisabledSessionLeavesRuntimeUntouched) {
  PimRuntime traced, plain;
  obs::TraceSession off;  // disabled
  traced.set_trace(&off);
  run_demo_batch(traced);
  run_demo_batch(plain);
  EXPECT_TRUE(off.spans().empty());
  EXPECT_TRUE(off.metrics().counters().empty());
  EXPECT_DOUBLE_EQ(traced.cost().time_ns, plain.cost().time_ns);
}

TEST(ObsReconcile, EmittedChromeJsonIsValid) {
  PimRuntime pim;
  obs::TraceSession trace(true);
  pim.set_trace(&trace);
  run_demo_batch(pim);
  const std::string json = trace.to_chrome_json();
  EXPECT_TRUE(JsonChecker::valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"intra-sub\""), std::string::npos);
  EXPECT_NE(json.find("/bus"), std::string::npos);
}

}  // namespace
}  // namespace pinatubo::core
