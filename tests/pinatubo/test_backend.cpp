#include "pinatubo/backend.hpp"

#include <gtest/gtest.h>

#include "sim/acpim_backend.hpp"
#include "sim/ideal_backend.hpp"
#include "sim/sdram_backend.hpp"
#include "sim/simd_backend.hpp"

namespace pinatubo::core {
namespace {

using sim::OpTrace;
using sim::TraceOp;

/// n-row sequential OR trace: `ops` ops, each ORing `n` consecutively
/// allocated vectors of `bits` into a fresh destination.
OpTrace seq_or_trace(std::size_t ops, unsigned n, std::uint64_t bits) {
  OpTrace t;
  t.name = "seq-or";
  std::uint64_t next_id = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    TraceOp op;
    op.op = BitOp::kOr;
    op.bits = bits;
    for (unsigned k = 0; k < n; ++k) op.srcs.push_back(next_id++);
    op.dst = op.srcs.back();  // in-place accumulate
    t.ops.push_back(op);
  }
  return t;
}

OpTrace random_or_trace(std::size_t ops, unsigned n, std::uint64_t bits,
                        std::uint64_t pool) {
  OpTrace t;
  t.name = "rand-or";
  Rng rng(99);
  for (std::size_t i = 0; i < ops; ++i) {
    TraceOp op;
    op.op = BitOp::kOr;
    op.bits = bits;
    for (unsigned k = 0; k < n; ++k)
      op.srcs.push_back(rng.uniform_u64(pool));
    op.dst = op.srcs.back();
    t.ops.push_back(op);
  }
  return t;
}

TEST(PinatuboBackend, NameReflectsEffectiveRows) {
  EXPECT_EQ(PinatuboBackend({}, {nvm::Tech::kPcm, 128}).name(),
            "Pinatubo-128");
  EXPECT_EQ(PinatuboBackend({}, {nvm::Tech::kPcm, 2}).name(), "Pinatubo-2");
  // STT margin caps the config.
  EXPECT_EQ(PinatuboBackend({}, {nvm::Tech::kSttMram, 128}).name(),
            "Pinatubo-2");
}

TEST(PinatuboBackend, SequentialOpsClassifyIntra) {
  PinatuboBackend pin({}, {nvm::Tech::kPcm, 128});
  const auto trace = seq_or_trace(8, 128, 1ull << 14);
  pin.execute(trace);
  EXPECT_EQ(pin.last_class_counts().intra, 8u);
  EXPECT_EQ(pin.last_class_counts().inter_sub, 0u);
}

TEST(PinatuboBackend, RandomOpsMostlyNotIntra) {
  PinatuboBackend pin({}, {nvm::Tech::kPcm, 128});
  const auto trace = random_or_trace(20, 128, 1ull << 14, 1ull << 16);
  pin.execute(trace);
  const auto& c = pin.last_class_counts();
  EXPECT_GT(c.inter_sub + c.inter_bank, 10 * c.intra);
}

TEST(PinatuboBackend, MultiRowBeatsTwoRowOnSequentialOr) {
  PinatuboBackend p128({}, {nvm::Tech::kPcm, 128});
  PinatuboBackend p2({}, {nvm::Tech::kPcm, 2});
  const auto trace = seq_or_trace(4, 128, 1ull << 19);
  const double t128 = p128.execute(trace).bitwise.time_ns;
  const double t2 = p2.execute(trace).bitwise.time_ns;
  EXPECT_GT(t2, 20 * t128);
}

TEST(PinatuboBackend, RandomAccessCollapsesMultiRowAdvantage) {
  // The paper's 14-16-7r observation: Pinatubo-128 as slow as Pinatubo-2.
  PinatuboBackend p128({}, {nvm::Tech::kPcm, 128});
  PinatuboBackend p2({}, {nvm::Tech::kPcm, 2});
  const auto trace = random_or_trace(20, 128, 1ull << 14, 1ull << 16);
  const double t128 = p128.execute(trace).bitwise.time_ns;
  const double t2 = p2.execute(trace).bitwise.time_ns;
  EXPECT_NEAR(t128 / t2, 1.0, 0.1);
}

TEST(PinatuboBackend, NaivePolicyDestroysIntraOps) {
  PinatuboBackend aware({}, {nvm::Tech::kPcm, 128, AllocPolicy::kPimAware});
  PinatuboBackend naive({}, {nvm::Tech::kPcm, 128, AllocPolicy::kNaive});
  const auto trace = seq_or_trace(8, 16, 1ull << 14);
  const double t_aware = aware.execute(trace).bitwise.time_ns;
  const double t_naive = naive.execute(trace).bitwise.time_ns;
  EXPECT_EQ(aware.last_class_counts().inter_sub, 0u);
  EXPECT_GT(naive.last_class_counts().inter_sub +
                naive.last_class_counts().inter_bank, 0u);
  EXPECT_GT(t_naive, 2 * t_aware);
}

TEST(AllBackends, OrderingOnSequentialMultiRowOr) {
  // The Fig. 10 ordering on a 7s-style workload:
  // Pinatubo-128 > S-DRAM (and Pinatubo-2 in its vicinity) > AC-PIM >> SIMD.
  const auto trace = seq_or_trace(8, 128, 1ull << 19);
  PinatuboBackend p128({}, {nvm::Tech::kPcm, 128});
  PinatuboBackend p2({}, {nvm::Tech::kPcm, 2});
  sim::SdramBackend sdram;
  sim::AcPimBackend acpim;
  sim::SimdBackend simd_pcm(sim::MemKind::kPcm);
  const double t_p128 = p128.execute(trace).bitwise.time_ns;
  const double t_p2 = p2.execute(trace).bitwise.time_ns;
  const double t_sdram = sdram.execute(trace).bitwise.time_ns;
  const double t_acpim = acpim.execute(trace).bitwise.time_ns;
  const double t_simd = simd_pcm.execute(trace).bitwise.time_ns;
  EXPECT_LT(t_p128, t_sdram);
  EXPECT_LT(t_sdram, t_acpim);
  EXPECT_LT(t_acpim, t_simd);
  EXPECT_LT(t_p128, t_p2);
  // Headline scale: deep multi-row OR lands far beyond 100x.
  EXPECT_GT(t_simd / t_p128, 300.0);
}

TEST(AllBackends, SdramBeatsPinatubo2OnLongTwoRowOr) {
  // The paper's first Fig. 10 observation (19-16-1s): larger DRAM row
  // buffers + no SA sharing make S-DRAM competitive on long 2-row ops.
  const auto trace = seq_or_trace(16, 2, 1ull << 19);
  PinatuboBackend p2({}, {nvm::Tech::kPcm, 2});
  sim::SdramBackend sdram;
  const double t_p2 = p2.execute(trace).bitwise.time_ns;
  const double t_sdram = sdram.execute(trace).bitwise.time_ns;
  EXPECT_LT(t_sdram, t_p2);
}

TEST(AllBackends, EnergyOrderingHoldsOnSequentialOr) {
  const auto trace = seq_or_trace(8, 128, 1ull << 19);
  PinatuboBackend p128({}, {nvm::Tech::kPcm, 128});
  PinatuboBackend p2({}, {nvm::Tech::kPcm, 2});
  sim::AcPimBackend acpim;
  sim::SimdBackend simd_pcm(sim::MemKind::kPcm);
  const double e_p128 = p128.execute(trace).bitwise.energy.total_pj();
  const double e_p2 = p2.execute(trace).bitwise.energy.total_pj();
  const double e_acpim = acpim.execute(trace).bitwise.energy.total_pj();
  const double e_simd = simd_pcm.execute(trace).bitwise.energy.total_pj();
  // AC-PIM never saves more energy than Pinatubo (paper Fig. 11).
  EXPECT_LT(e_p128, e_p2);
  EXPECT_LT(e_p2, e_acpim);
  EXPECT_LT(e_acpim, e_simd);
  EXPECT_GT(e_simd / e_p128, 1000.0);
}

TEST(IdealBackend, ZeroBitwiseCost) {
  sim::IdealBackend ideal;
  auto trace = seq_or_trace(4, 2, 1ull << 14);
  trace.scalar_ops = 1000;
  trace.scalar_bytes = 4096;
  const auto r = ideal.execute(trace);
  EXPECT_DOUBLE_EQ(r.bitwise.time_ns, 0.0);
  EXPECT_DOUBLE_EQ(r.bitwise.energy.total_pj(), 0.0);
  EXPECT_GT(r.scalar.time_ns, 0.0);
}

TEST(SimdBackend, DramFasterThanPcm) {
  const auto trace = seq_or_trace(4, 2, 1ull << 19);
  sim::SimdBackend dram(sim::MemKind::kDram);
  sim::SimdBackend pcm(sim::MemKind::kPcm);
  EXPECT_LT(dram.execute(trace).bitwise.time_ns,
            pcm.execute(trace).bitwise.time_ns);
}

TEST(SdramBackend, XorFallsBackToCpu) {
  OpTrace t;
  TraceOp op;
  op.op = BitOp::kXor;
  op.bits = 1ull << 19;
  op.srcs = {0, 1};
  op.dst = 2;
  t.ops.push_back(op);
  sim::SdramBackend sdram;
  sim::SimdBackend simd(sim::MemKind::kDram);
  const double t_sdram = sdram.execute(t).bitwise.time_ns;
  const double t_simd = simd.execute(t).bitwise.time_ns;
  // Fallback: same order as plain CPU execution.
  EXPECT_NEAR(t_sdram / t_simd, 1.0, 0.05);
}

TEST(TraceStats, TotalSrcBits) {
  const auto trace = seq_or_trace(3, 4, 100);
  EXPECT_EQ(trace.total_src_bits(), 3u * 4 * 100);
  EXPECT_EQ(trace.op_count(), 3u);
}

}  // namespace
}  // namespace pinatubo::core
