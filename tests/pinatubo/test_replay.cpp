// The DDR command stream as an executable specification: replaying the
// commands a runtime recorded, on a FRESH memory image with the same
// initial data, must reproduce the runtime's results bit for bit.
#include "pinatubo/replay.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pinatubo/driver.hpp"

namespace pinatubo::core {
namespace {

class ReplayTest : public ::testing::Test {
 protected:
  static PimRuntime::Options recording(nvm::Tech tech = nvm::Tech::kPcm,
                                       AllocPolicy policy =
                                           AllocPolicy::kPimAware) {
    PimRuntime::Options o;
    o.tech = tech;
    o.policy = policy;
    o.record_commands = true;
    return o;
  }

  /// Runs `body` on a recording runtime, then replays the command stream
  /// on a twin runtime holding the same initial data but no op results;
  /// asserts every vector matches afterwards.
  template <typename Body>
  void check_replay(std::uint64_t bits, std::size_t n_vectors, Body&& body,
                    const PimRuntime::Options& opts = recording()) {
    PimRuntime live(mem::Geometry{}, opts);
    PimRuntime twin(mem::Geometry{}, opts);
    Rng rng(2718);
    std::vector<PimRuntime::Handle> lh, th;
    for (std::size_t i = 0; i < n_vectors; ++i) {
      const auto v = BitVector::random(bits, 0.4, rng);
      lh.push_back(live.pim_malloc(bits));
      th.push_back(twin.pim_malloc(bits));
      live.pim_write(lh.back(), v);
      twin.pim_write(th.back(), v);
    }
    body(live, lh);
    CommandReplayer replayer(twin.memory());
    replayer.execute_all(live.commands());
    for (std::size_t i = 0; i < n_vectors; ++i)
      ASSERT_EQ(twin.pim_read(th[i]), live.pim_read(lh[i]))
          << "vector " << i;
    EXPECT_EQ(replayer.stats().commands, live.commands().size());
  }
};

TEST_F(ReplayTest, TwoRowOr) {
  check_replay(1ull << 14, 3, [](PimRuntime& rt, auto& h) {
    rt.pim_op(BitOp::kOr, {h[0], h[1]}, h[2]);
  });
}

TEST_F(ReplayTest, AllOpsSequence) {
  check_replay(5000, 4, [](PimRuntime& rt, auto& h) {
    rt.pim_op(BitOp::kOr, {h[0], h[1]}, h[3]);
    rt.pim_op(BitOp::kAnd, {h[3], h[2]}, h[3]);
    rt.pim_op(BitOp::kXor, {h[0], h[3]}, h[2]);
    rt.pim_op(BitOp::kInv, {h[2]}, h[1]);
  });
}

TEST_F(ReplayTest, MultiRowActivation) {
  check_replay(1ull << 14, 64, [](PimRuntime& rt, auto& h) {
    std::vector<PimRuntime::Handle> srcs(h.begin(), h.begin() + 63);
    rt.pim_op(BitOp::kOr, srcs, h[63]);
  });
}

TEST_F(ReplayTest, ChainedOrWithTwoRowCap) {
  auto opts = recording();
  opts.max_rows = 2;
  check_replay(
      2000, 8,
      [](PimRuntime& rt, auto& h) {
        std::vector<PimRuntime::Handle> srcs(h.begin(), h.end() - 1);
        rt.pim_op(BitOp::kOr, srcs, h.back());
      },
      opts);
}

TEST_F(ReplayTest, InPlaceAccumulation) {
  check_replay(1ull << 14, 8, [](PimRuntime& rt, auto& h) {
    // dst is also an operand: the chain must consume it first.
    std::vector<PimRuntime::Handle> srcs(h.begin(), h.end());
    rt.pim_op(BitOp::kXor, srcs, h[3]);
  });
}

TEST_F(ReplayTest, FullRowVectors) {
  check_replay(1ull << 19, 4, [](PimRuntime& rt, auto& h) {
    rt.pim_op(BitOp::kOr, {h[0], h[1], h[2]}, h[3]);
  });
}

TEST_F(ReplayTest, MultiGroupRankMirroredVectors) {
  check_replay((1ull << 20) + 777, 3, [](PimRuntime& rt, auto& h) {
    rt.pim_op(BitOp::kOr, {h[0], h[1]}, h[2]);
    rt.pim_op(BitOp::kAnd, {h[2], h[0]}, h[2]);
  });
}

TEST_F(ReplayTest, BufferPathViaNaivePolicy) {
  // Naive placement scatters operands -> inter-subarray / inter-bank
  // command sequences (PIM_LOAD / PIM_GDL / PIM_IO).
  check_replay(
      1ull << 14, 4,
      [](PimRuntime& rt, auto& h) {
        rt.pim_op(BitOp::kOr, {h[0], h[1]}, h[2]);
        rt.pim_op(BitOp::kXor, {h[2], h[3]}, h[0]);
        rt.pim_op(BitOp::kInv, {h[0]}, h[1]);
      },
      recording(nvm::Tech::kPcm, AllocPolicy::kNaive));
}

TEST_F(ReplayTest, MisalignedColumnsUseTheShifter) {
  // 200 one-stripe vectors span two column windows; an op between window-0
  // and window-1 vectors exercises the buffer path's alignment shifter.
  check_replay(1ull << 14, 200, [](PimRuntime& rt, auto& h) {
    rt.pim_op(BitOp::kOr, {h[0], h[150]}, h[1]);
    rt.pim_op(BitOp::kAnd, {h[150], h[151]}, h[2]);
  });
}

TEST_F(ReplayTest, SttDemotedAndReplays) {
  check_replay(
      3000, 3,
      [](PimRuntime& rt, auto& h) {
        rt.pim_op(BitOp::kAnd, {h[0], h[1]}, h[2]);  // buffer path on STT
        rt.pim_op(BitOp::kOr, {h[0], h[2]}, h[1]);   // intra
      },
      recording(nvm::Tech::kSttMram));
}

TEST(ReplayProtocol, ViolationsThrow) {
  mem::MainMemory memory({}, nvm::Tech::kPcm);
  CommandReplayer rp(memory);
  // Sensing with no open rows.
  EXPECT_THROW(rp.execute({mem::CmdKind::kPimSense, {}, BitOp::kOr, 0}),
               Error);
  // ACT without a preceding reset on that subarray.
  EXPECT_THROW(rp.execute({mem::CmdKind::kAct, {}, BitOp::kOr, 0}), Error);
  // Writeback with nothing latched.
  EXPECT_THROW(
      rp.execute({mem::CmdKind::kPimWriteback, {}, BitOp::kOr, 1 << 8}),
      Error);
  // Buffer op with empty buffer.
  EXPECT_THROW(rp.execute({mem::CmdKind::kPimGdlOp, {}, BitOp::kOr, 1 << 8}),
               Error);
}

TEST(ReplayStats, CountsCommandClasses) {
  PimRuntime::Options o;
  o.record_commands = true;
  PimRuntime rt(mem::Geometry{}, o);
  const auto a = rt.pim_malloc(1024);
  const auto b = rt.pim_malloc(1024);
  const auto c = rt.pim_malloc(1024);
  rt.pim_op(BitOp::kOr, {a, b}, c);

  mem::MainMemory memory({}, nvm::Tech::kPcm);
  CommandReplayer rp(memory);
  rp.execute_all(rt.commands());
  EXPECT_EQ(rp.stats().activations, 2u);
  EXPECT_EQ(rp.stats().sense_steps, 1u);
  EXPECT_EQ(rp.stats().writebacks, 1u);
  EXPECT_EQ(rp.stats().buffer_ops, 0u);
}

}  // namespace
}  // namespace pinatubo::core
