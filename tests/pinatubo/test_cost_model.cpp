#include "pinatubo/cost_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pinatubo/allocator.hpp"
#include "pinatubo/scheduler.hpp"

namespace pinatubo::core {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : alloc_(geo_, AllocPolicy::kPimAware),
        sched_(geo_, SchedulerConfig{128, nvm::Tech::kPcm}),
        model_(geo_, nvm::Tech::kPcm) {}

  OpPlan plan_or(unsigned n, std::uint64_t bits) {
    // In-place destination (dst == last src) so even n == 128 full-group
    // operands stay within one subarray's 128 rows.
    std::vector<Placement> srcs;
    for (unsigned i = 0; i < n; ++i) srcs.push_back(alloc_.allocate(bits));
    return sched_.plan(BitOp::kOr, srcs, srcs.back(), false);
  }

  mem::Geometry geo_;
  RowAllocator alloc_;
  OpScheduler sched_;
  PinatuboCostModel model_;
};

TEST_F(CostModelTest, IntraStepTimeFormula) {
  // 2-row OR, one column stripe, with writeback:
  // cmds*(1.25) + tRCD + tWR.
  const auto plan = plan_or(2, 1ull << 14);
  ASSERT_EQ(plan.steps.size(), 1u);
  const auto& s = plan.steps[0];
  const auto cmds = model_.command_count(s);
  EXPECT_EQ(cmds, 1u + 1 + 2 + 1 + 1);  // MRS RESET ACTx2 SENSE WB
  const double expect = cmds * 1.25 + 18.3 + 151.1;
  EXPECT_NEAR(model_.step_cost(s).time_ns, expect, 1e-9);
}

TEST_F(CostModelTest, FullRow128OrMatchesPaperBallpark) {
  // 128-row OR over a full 2^19 group: the paper's peak op.
  const auto plan = plan_or(128, 1ull << 19);
  ASSERT_EQ(plan.steps.size(), 1u);
  const auto cost = model_.plan_cost(plan);
  // ~(163 cmds)*1.25 + 18.3 + 31*8.9 + 151.1 ~= 650 ns.
  EXPECT_GT(cost.time_ns, 500.0);
  EXPECT_LT(cost.time_ns, 900.0);
  // Equivalent bandwidth: 128 * 64 KiB in that time >= 10 TB/s — the
  // "beyond internal bandwidth" region.
  const double gbps = 128.0 * 65536.0 / cost.time_ns;
  EXPECT_GT(gbps, 1e4);
}

TEST_F(CostModelTest, ColumnStepsAddSensingTime) {
  const auto p1 = plan_or(2, 1ull << 14);   // 1 stripe
  const auto p32 = plan_or(2, 1ull << 19);  // 32 stripes
  const double t1 = model_.plan_cost(p1).time_ns;
  const double t32 = model_.plan_cost(p32).time_ns;
  // 31 extra sensing steps at tCL plus 31 extra sense commands.
  EXPECT_NEAR(t32 - t1, 31 * 8.9 + 31 * 1.25, 1e-6);
}

TEST_F(CostModelTest, EnergyComponentsPresent) {
  const auto plan = plan_or(2, 1ull << 14);
  const auto cost = model_.plan_cost(plan);
  EXPECT_GT(cost.energy.get("pim.activate"), 0);
  EXPECT_GT(cost.energy.get("pim.sense"), 0);
  EXPECT_GT(cost.energy.get("pim.write"), 0);
  EXPECT_GT(cost.energy.get("ctrl.cmd"), 0);
  EXPECT_EQ(cost.energy.get("bus.io"), 0);  // nothing crossed the bus
}

TEST_F(CostModelTest, WriteDominatesIntraEnergy) {
  // NVM asymmetry: the result write dwarfs analog sensing.
  const auto plan = plan_or(2, 1ull << 19);
  const auto cost = model_.plan_cost(plan);
  EXPECT_GT(cost.energy.get("pim.write"), 5 * cost.energy.get("pim.sense"));
}

TEST_F(CostModelTest, MultiRowAmortizesWrites) {
  // 128 x 2-row ops write 127 intermediates; one 128-row op writes once.
  OpScheduler two(geo_, SchedulerConfig{2, nvm::Tech::kPcm});
  std::vector<Placement> ps;
  for (unsigned i = 0; i < 128; ++i)
    ps.push_back(alloc_.allocate(1ull << 19));
  // In-place destination keeps everything in one subarray.
  std::vector<Placement> srcs(ps.begin(), ps.end());
  const auto chain = two.plan(BitOp::kOr, srcs, ps[127], false);
  const auto chain_cost = model_.plan_cost(chain);
  const auto single = sched_.plan(BitOp::kOr, srcs, ps[127], false);
  const auto single_cost = model_.plan_cost(single);
  EXPECT_EQ(single.steps.size(), 1u);
  EXPECT_EQ(chain.steps.size(), 127u);
  EXPECT_GT(chain_cost.time_ns, 20 * single_cost.time_ns);
  EXPECT_GT(chain_cost.energy.total_pj(), 20 * single_cost.energy.total_pj());
}

TEST_F(CostModelTest, InterSubCostsMoreThanIntra) {
  std::vector<Placement> ps;
  for (int i = 0; i < 4097; ++i) ps.push_back(alloc_.allocate(1ull << 14));
  const auto intra = sched_.plan(BitOp::kOr, {ps[0], ps[1]}, ps[2], false);
  const auto inter =
      sched_.plan(BitOp::kOr, {ps[0], ps[4096]}, ps[1], false);
  EXPECT_EQ(inter.steps[0].kind, StepKind::kInterSub);
  EXPECT_GT(model_.plan_cost(inter).time_ns,
            model_.plan_cost(intra).time_ns);
  EXPECT_GT(model_.plan_cost(inter).energy.total_pj(),
            model_.plan_cost(intra).energy.total_pj());
}

TEST_F(CostModelTest, CrossRankAddsBusTimeAndEnergy) {
  RowAllocator valloc(geo_, AllocPolicy::kPimAware);
  const auto a = valloc.virtual_placement(0, 1ull << 14);
  const auto b = valloc.virtual_placement(64ull * 4096, 1ull << 14);
  const auto near = valloc.virtual_placement(1, 1ull << 14);
  const auto plan = sched_.plan(BitOp::kOr, {a, b}, near, false);
  ASSERT_EQ(plan.steps[0].kind, StepKind::kInterBank);
  const auto cost = model_.plan_cost(plan);
  EXPECT_GT(cost.energy.get("bus.io"), 0);
}

TEST_F(CostModelTest, HostReadPaysBusBandwidth) {
  std::vector<Placement> ps;
  for (int i = 0; i < 3; ++i) ps.push_back(alloc_.allocate(1ull << 19));
  const auto without = sched_.plan(BitOp::kOr, {ps[0], ps[1]}, ps[2], false);
  const auto with = sched_.plan(BitOp::kOr, {ps[0], ps[1]}, ps[2], true);
  const double dt = model_.plan_cost(with).time_ns -
                    model_.plan_cost(without).time_ns;
  // 64 KiB at 12.8 GB/s = 5120 ns (plus read commands).
  EXPECT_GT(dt, 5000.0);
  EXPECT_GT(model_.plan_cost(with).energy.get("bus.io"), 0);
}

TEST_F(CostModelTest, LoweringMatchesCommandCount) {
  const auto plan = plan_or(4, 1ull << 14);
  const auto cmds = model_.lower(plan);
  std::uint64_t expect = 0;
  for (const auto& s : plan.steps) expect += model_.command_count(s);
  EXPECT_EQ(cmds.size(), expect);
}

TEST_F(CostModelTest, LoweredStreamShape) {
  const auto plan = plan_or(4, 1ull << 14);
  const auto cmds = model_.lower(plan);
  // MRS, RESET, 4 ACT, 1 SENSE, WB.
  ASSERT_EQ(cmds.size(), 8u);
  EXPECT_EQ(cmds[0].kind, mem::CmdKind::kModeSet);
  EXPECT_EQ(cmds[1].kind, mem::CmdKind::kPimReset);
  EXPECT_EQ(cmds[2].kind, mem::CmdKind::kAct);
  EXPECT_EQ(cmds[5].kind, mem::CmdKind::kAct);
  EXPECT_EQ(cmds[6].kind, mem::CmdKind::kPimSense);
  EXPECT_EQ(cmds[7].kind, mem::CmdKind::kPimWriteback);
}

TEST_F(CostModelTest, DensityDrivesWriteEnergy) {
  PinatuboCostModel dense(geo_, nvm::Tech::kPcm, 1.0);
  PinatuboCostModel sparse(geo_, nvm::Tech::kPcm, 0.0);
  const auto plan = plan_or(2, 1ull << 14);
  const double set_e = dense.plan_cost(plan).energy.get("pim.write");
  const double reset_e = sparse.plan_cost(plan).energy.get("pim.write");
  const auto& cell = nvm::cell_params(nvm::Tech::kPcm);
  EXPECT_NEAR(set_e / reset_e, cell.set_energy_pj / cell.reset_energy_pj,
              1e-6);
}

}  // namespace
}  // namespace pinatubo::core
