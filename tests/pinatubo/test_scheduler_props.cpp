// Property sweeps over the scheduler + cost model: invariants that must
// hold for every (op, operand count, vector length, row cap) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "pinatubo/allocator.hpp"
#include "pinatubo/cost_model.hpp"
#include "pinatubo/engine.hpp"
#include "pinatubo/scheduler.hpp"

namespace pinatubo::core {
namespace {

using Params = std::tuple<unsigned /*n_ops*/, std::uint64_t /*bits*/,
                          unsigned /*max_rows*/>;

class SchedulerProps : public ::testing::TestWithParam<Params> {
 protected:
  SchedulerProps()
      : alloc_(geo_, AllocPolicy::kPimAware),
        sched_(geo_, SchedulerConfig{std::get<2>(GetParam()), nvm::Tech::kPcm}),
        model_(geo_, nvm::Tech::kPcm) {}

  OpPlan make_plan(BitOp op) {
    const auto [n, bits, max_rows] = GetParam();
    (void)max_rows;
    std::vector<Placement> srcs;
    const unsigned count = op == BitOp::kInv ? 1 : n;
    for (unsigned i = 0; i < count; ++i)
      srcs.push_back(alloc_.allocate(bits));
    return sched_.plan(op, srcs, srcs.back(), false);
  }

  mem::Geometry geo_;
  RowAllocator alloc_;
  OpScheduler sched_;
  PinatuboCostModel model_;
};

TEST_P(SchedulerProps, EveryStepWithinActivationLimit) {
  const auto plan = make_plan(BitOp::kOr);
  const unsigned limit = sched_.effective_max_rows(BitOp::kOr);
  for (const auto& s : plan.steps) EXPECT_LE(s.rows, limit);
}

TEST_P(SchedulerProps, ChainCoversAllOperands) {
  // Total NEW operands opened across the chain == operand count:
  // first step opens k0, each later step opens rows-1 new (1 accumulator).
  const auto [n, bits, max_rows] = GetParam();
  (void)bits;
  (void)max_rows;
  const auto plan = make_plan(BitOp::kOr);
  const auto groups = plan.steps.empty() ? 1 : plan.steps.back().group + 1;
  std::map<std::uint64_t, unsigned> opened;
  std::map<std::uint64_t, unsigned> steps_per_group;
  for (const auto& s : plan.steps) {
    const bool first = steps_per_group[s.group]++ == 0;
    opened[s.group] += first ? s.rows : s.rows - 1;
  }
  for (std::uint64_t g = 0; g < groups; ++g)
    EXPECT_EQ(opened[g], n) << "group " << g;
}

TEST_P(SchedulerProps, BitsConserved) {
  const auto [n, bits, max_rows] = GetParam();
  (void)n;
  (void)max_rows;
  const auto plan = make_plan(BitOp::kOr);
  std::map<std::uint64_t, std::uint64_t> bits_per_group;
  for (const auto& s : plan.steps)
    bits_per_group[s.group] = s.bits;  // all steps of a group agree
  std::uint64_t total = 0;
  for (const auto& [g, b] : bits_per_group) total += b;
  EXPECT_EQ(total, bits);
}

TEST_P(SchedulerProps, CostPositiveAndMonotoneInSteps) {
  const auto or_plan = make_plan(BitOp::kOr);
  const auto cost = model_.plan_cost(or_plan);
  EXPECT_GT(cost.time_ns, 0.0);
  EXPECT_GT(cost.energy.total_pj(), 0.0);
  // Prefix sums are monotone.
  mem::Cost acc;
  for (const auto& s : or_plan.steps) {
    const auto before = acc.time_ns;
    acc += model_.step_cost(s);
    EXPECT_GT(acc.time_ns, before);
  }
  EXPECT_NEAR(acc.time_ns, cost.time_ns, 1e-9);
}

TEST_P(SchedulerProps, LoweringCountsAgree) {
  const auto plan = make_plan(BitOp::kOr);
  std::uint64_t expect = 0;
  for (const auto& s : plan.steps) expect += model_.command_count(s);
  EXPECT_EQ(model_.lower(plan).size(), expect);
}

TEST_P(SchedulerProps, EngineNeverSlowerThanSerial) {
  std::vector<OpPlan> plans;
  mem::Cost serial;
  for (int i = 0; i < 4; ++i) {
    plans.push_back(make_plan(BitOp::kOr));
    serial += model_.plan_cost(plans.back());
  }
  const ExecutionEngine engine(model_);
  const auto r = engine.run(plans);
  EXPECT_LE(r.cost.time_ns, serial.time_ns + 1e-6);
  EXPECT_NEAR(r.serial_time_ns, serial.time_ns, 1e-6 * serial.time_ns);
  EXPECT_NEAR(r.cost.energy.total_pj(), serial.energy.total_pj(),
              1e-6 * serial.energy.total_pj());
  // The serial knob reproduces the synchronous-driver sum exactly.
  const ExecutionEngine serial_engine(model_, EngineOptions{true});
  EXPECT_NEAR(serial_engine.run(plans).cost.time_ns, serial.time_ns,
              1e-9 * serial.time_ns);
}

TEST_P(SchedulerProps, SmallerRowCapNeverFaster) {
  const auto [n, bits, max_rows] = GetParam();
  if (max_rows <= 2) GTEST_SKIP();
  OpScheduler small(geo_, SchedulerConfig{2, nvm::Tech::kPcm});
  std::vector<Placement> srcs;
  for (unsigned i = 0; i < n; ++i) srcs.push_back(alloc_.allocate(bits));
  const auto big_plan = sched_.plan(BitOp::kOr, srcs, srcs.back(), false);
  const auto small_plan = small.plan(BitOp::kOr, srcs, srcs.back(), false);
  EXPECT_LE(model_.plan_cost(big_plan).time_ns,
            model_.plan_cost(small_plan).time_ns + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProps,
    ::testing::Combine(
        ::testing::Values<unsigned>(2, 3, 5, 16, 100, 128),
        ::testing::Values<std::uint64_t>(100, 1ull << 14, (1ull << 14) + 1,
                                         1ull << 19, 1ull << 21),
        ::testing::Values<unsigned>(2, 16, 128)));

}  // namespace
}  // namespace pinatubo::core
