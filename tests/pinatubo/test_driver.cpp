#include "pinatubo/driver.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::core {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  PimRuntime rt_;
  Rng rng_{42};

  PimRuntime::Handle loaded(std::uint64_t bits, double density,
                            BitVector* out = nullptr) {
    const auto h = rt_.pim_malloc(bits);
    const auto v = BitVector::random(bits, density, rng_);
    rt_.pim_write(h, v);
    if (out != nullptr) *out = v;
    return h;
  }
};

TEST_F(DriverTest, WriteReadRoundTrip) {
  for (std::uint64_t bits : {64ull, 1000ull, 1ull << 14, (1ull << 14) + 7,
                             1ull << 17, 1ull << 19, 1ull << 20}) {
    BitVector v;
    const auto h = loaded(bits, 0.4, &v);
    EXPECT_EQ(rt_.pim_read(h), v) << bits << " bits";
  }
}

TEST_F(DriverTest, TwoRowOrIsCorrectAndIntra) {
  BitVector a, b;
  const auto ha = loaded(1ull << 14, 0.3, &a);
  const auto hb = loaded(1ull << 14, 0.3, &b);
  const auto hd = rt_.pim_malloc(1ull << 14);
  rt_.pim_op(BitOp::kOr, {ha, hb}, hd);
  EXPECT_EQ(rt_.pim_read(hd), (a | b));
  EXPECT_EQ(rt_.stats().intra_steps, 1u);
  EXPECT_EQ(rt_.stats().inter_sub_steps, 0u);
}

TEST_F(DriverTest, AllOpsFunctionallyCorrect) {
  BitVector a, b;
  const auto ha = loaded(5000, 0.5, &a);
  const auto hb = loaded(5000, 0.5, &b);
  const auto hd = rt_.pim_malloc(5000);
  rt_.pim_op(BitOp::kAnd, {ha, hb}, hd);
  EXPECT_EQ(rt_.pim_read(hd), (a & b));
  rt_.pim_op(BitOp::kXor, {ha, hb}, hd);
  EXPECT_EQ(rt_.pim_read(hd), (a ^ b));
  rt_.pim_op(BitOp::kInv, {ha}, hd);
  EXPECT_EQ(rt_.pim_read(hd), ~a);
  rt_.pim_op(BitOp::kOr, {ha, hb}, hd);
  EXPECT_EQ(rt_.pim_read(hd), (a | b));
}

TEST_F(DriverTest, MultiRowOrUpTo128) {
  const std::uint64_t bits = 3000;
  std::vector<PimRuntime::Handle> hs;
  BitVector expect(bits);
  for (int i = 0; i < 128; ++i) {
    BitVector v;
    hs.push_back(loaded(bits, 0.01, &v));
    expect |= v;
  }
  const auto hd = rt_.pim_malloc(bits);
  // dst is in the next column window -> the op would be inter-sub; use
  // in-place accumulation into the last operand instead.
  rt_.pim_op(BitOp::kOr, hs, hs.back());
  EXPECT_EQ(rt_.pim_read(hs.back()), expect);
  EXPECT_EQ(rt_.stats().intra_steps, 1u);
  (void)hd;
}

TEST_F(DriverTest, OrChainWhenCappedAtTwoRows) {
  PimRuntime::Options opts;
  opts.max_rows = 2;
  PimRuntime rt(mem::Geometry{}, opts);
  Rng rng(7);
  const std::uint64_t bits = 2000;
  std::vector<PimRuntime::Handle> hs;
  BitVector expect(bits);
  for (int i = 0; i < 8; ++i) {
    const auto h = rt.pim_malloc(bits);
    const auto v = BitVector::random(bits, 0.2, rng);
    rt.pim_write(h, v);
    expect |= v;
    hs.push_back(h);
  }
  rt.pim_op(BitOp::kOr, hs, hs.back());
  EXPECT_EQ(rt.pim_read(hs.back()), expect);
  EXPECT_EQ(rt.stats().intra_steps, 7u);  // 2-row chain
}

TEST_F(DriverTest, MultiOperandXorChain) {
  const std::uint64_t bits = 1500;
  std::vector<PimRuntime::Handle> hs;
  BitVector expect(bits);
  for (int i = 0; i < 5; ++i) {
    BitVector v;
    hs.push_back(loaded(bits, 0.5, &v));
    expect ^= v;
  }
  rt_.pim_op(BitOp::kXor, hs, hs.back());
  // expect folded last operand too... recompute: dst overwritten in place;
  // XOR of all five operands:
  EXPECT_EQ(rt_.pim_read(hs.back()), expect);
}

TEST_F(DriverTest, CrossSubarrayOpIsInterSubAndCorrect) {
  // Fill one subarray with 4096 one-stripe vectors.
  std::vector<PimRuntime::Handle> hs;
  for (int i = 0; i < 4097; ++i) hs.push_back(rt_.pim_malloc(1ull << 14));
  BitVector a, b;
  a = BitVector::random(1ull << 14, 0.5, rng_);
  b = BitVector::random(1ull << 14, 0.5, rng_);
  rt_.pim_write(hs[0], a);
  rt_.pim_write(hs[4096], b);
  rt_.pim_op(BitOp::kOr, {hs[0], hs[4096]}, hs[1]);
  EXPECT_EQ(rt_.pim_read(hs[1]), (a | b));
  EXPECT_GE(rt_.stats().inter_sub_steps, 1u);
}

TEST_F(DriverTest, CostAccumulatesAndResets) {
  const auto ha = loaded(4096, 0.5);
  const auto hb = loaded(4096, 0.5);
  const auto hd = rt_.pim_malloc(4096);
  EXPECT_DOUBLE_EQ(rt_.cost().time_ns, 0.0);
  rt_.pim_op(BitOp::kOr, {ha, hb}, hd);
  const double t1 = rt_.cost().time_ns;
  EXPECT_GT(t1, 0.0);
  rt_.pim_op(BitOp::kOr, {ha, hb}, hd);
  EXPECT_NEAR(rt_.cost().time_ns, 2 * t1, 1e-9);
  rt_.reset_cost();
  EXPECT_DOUBLE_EQ(rt_.cost().time_ns, 0.0);
  EXPECT_EQ(rt_.stats().ops, 0u);
}

TEST_F(DriverTest, CommandRecording) {
  PimRuntime::Options opts;
  opts.record_commands = true;
  PimRuntime rt(mem::Geometry{}, opts);
  const auto ha = rt.pim_malloc(1024);
  const auto hb = rt.pim_malloc(1024);
  const auto hd = rt.pim_malloc(1024);
  rt.pim_op(BitOp::kOr, {ha, hb}, hd);
  ASSERT_FALSE(rt.commands().empty());
  EXPECT_EQ(rt.commands()[0].kind, mem::CmdKind::kModeSet);
}

TEST_F(DriverTest, HostReadFlagCountsBusTransfer) {
  const auto ha = loaded(1ull << 14, 0.5);
  const auto hb = loaded(1ull << 14, 0.5);
  const auto hd = rt_.pim_malloc(1ull << 14);
  rt_.pim_op(BitOp::kOr, {ha, hb}, hd, /*host_reads_result=*/true);
  EXPECT_EQ(rt_.stats().host_reads, 1u);
  EXPECT_GT(rt_.cost().energy.get("bus.io"), 0.0);
}

TEST_F(DriverTest, FreeAndReuse) {
  const auto h = rt_.pim_malloc(1024);
  rt_.pim_free(h);
  EXPECT_THROW(rt_.pim_read(h), Error);
  EXPECT_THROW(rt_.pim_free(h), Error);
  EXPECT_NO_THROW(rt_.pim_malloc(1024));
}

TEST_F(DriverTest, WriteSizeMismatchThrows) {
  const auto h = rt_.pim_malloc(1000);
  EXPECT_THROW(rt_.pim_write(h, BitVector(999)), Error);
}

TEST_F(DriverTest, AnalogFidelityEndToEnd) {
  PimRuntime::Options opts;
  opts.fidelity = mem::SenseFidelity::kAnalog;
  PimRuntime rt(mem::Geometry{}, opts);
  Rng rng(3);
  const std::uint64_t bits = 512;
  const auto a = BitVector::random(bits, 0.5, rng);
  const auto b = BitVector::random(bits, 0.5, rng);
  const auto ha = rt.pim_malloc(bits);
  const auto hb = rt.pim_malloc(bits);
  const auto hd = rt.pim_malloc(bits);
  rt.pim_write(ha, a);
  rt.pim_write(hb, b);
  rt.pim_op(BitOp::kOr, {ha, hb}, hd);
  // PCM 2-row OR margin is enormous: still bit exact through the analog
  // sensing path with variation.
  EXPECT_EQ(rt.pim_read(hd), (a | b));
}

}  // namespace
}  // namespace pinatubo::core
