// pim_copy and the batched-submission API.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pinatubo/driver.hpp"
#include "pinatubo/replay.hpp"

namespace pinatubo::core {
namespace {

class DriverExtTest : public ::testing::Test {
 protected:
  PimRuntime rt_;
  Rng rng_{321};
};

TEST_F(DriverExtTest, CopyCoLocated) {
  const auto a = rt_.pim_malloc(1ull << 14);
  const auto b = rt_.pim_malloc(1ull << 14);
  const auto v = BitVector::random(1ull << 14, 0.4, rng_);
  rt_.pim_write(a, v);
  rt_.pim_copy(a, b);
  EXPECT_EQ(rt_.pim_read(b), v);
  // Source untouched.
  EXPECT_EQ(rt_.pim_read(a), v);
  EXPECT_EQ(rt_.stats().intra_steps, 1u);
  EXPECT_GT(rt_.cost().time_ns, 0.0);
}

TEST_F(DriverExtTest, CopyAcrossSubarrays) {
  std::vector<PimRuntime::Handle> hs;
  for (int i = 0; i < 4097; ++i) hs.push_back(rt_.pim_malloc(1ull << 14));
  const auto v = BitVector::random(1ull << 14, 0.6, rng_);
  rt_.pim_write(hs[0], v);
  rt_.pim_copy(hs[0], hs[4096]);  // different subarray
  EXPECT_EQ(rt_.pim_read(hs[4096]), v);
  EXPECT_GE(rt_.stats().inter_sub_steps, 1u);
}

TEST_F(DriverExtTest, CopyLengthMismatchThrows) {
  const auto a = rt_.pim_malloc(1000);
  const auto b = rt_.pim_malloc(2000);
  EXPECT_THROW(rt_.pim_copy(a, b), Error);
}

TEST_F(DriverExtTest, BatchMatchesSequential) {
  const std::uint64_t bits = 1ull << 14;
  std::vector<PimRuntime::Handle> h;
  std::vector<BitVector> vals;
  for (int i = 0; i < 8; ++i) {
    h.push_back(rt_.pim_malloc(bits));
    vals.push_back(BitVector::random(bits, 0.3, rng_));
    rt_.pim_write(h.back(), vals.back());
  }
  // Two independent ops + one dependent.
  std::vector<PimRuntime::BatchOp> batch;
  batch.push_back({BitOp::kOr, {h[0], h[1]}, h[2]});
  batch.push_back({BitOp::kAnd, {h[3], h[4]}, h[5]});
  batch.push_back({BitOp::kXor, {h[2], h[5]}, h[6]});
  rt_.pim_op_batch(batch);

  const auto r_or = vals[0] | vals[1];
  const auto r_and = vals[3] & vals[4];
  EXPECT_EQ(rt_.pim_read(h[2]), r_or);
  EXPECT_EQ(rt_.pim_read(h[5]), r_and);
  EXPECT_EQ(rt_.pim_read(h[6]), (r_or ^ r_and));
  EXPECT_EQ(rt_.stats().ops, 3u);
}

TEST_F(DriverExtTest, BatchNeverCostsMoreThanSequential) {
  const std::uint64_t bits = 1ull << 14;
  std::vector<PimRuntime::BatchOp> batch;
  PimRuntime seq;
  std::vector<PimRuntime::Handle> hb, hs;
  Rng rng(9);
  for (int i = 0; i < 12; ++i) {
    hb.push_back(rt_.pim_malloc(bits));
    hs.push_back(seq.pim_malloc(bits));
    const auto v = BitVector::random(bits, 0.5, rng);
    rt_.pim_write(hb.back(), v);
    seq.pim_write(hs.back(), v);
  }
  for (int i = 0; i + 2 < 12; i += 3) {
    batch.push_back({BitOp::kOr, {hb[i], hb[i + 1]}, hb[i + 2]});
    seq.pim_op(BitOp::kOr, {hs[i], hs[i + 1]}, hs[i + 2]);
  }
  rt_.pim_op_batch(batch);
  EXPECT_LE(rt_.cost().time_ns, seq.cost().time_ns + 1e-9);
  // Same functional results.
  for (int i = 0; i < 12; ++i)
    EXPECT_EQ(rt_.pim_read(hb[i]), seq.pim_read(hs[i]));
  // Same total energy (scheduling cannot change physics).
  EXPECT_NEAR(rt_.cost().energy.total_pj(), seq.cost().energy.total_pj(),
              1e-6 * seq.cost().energy.total_pj());
}

TEST_F(DriverExtTest, BatchRecordsCommands) {
  PimRuntime::Options opts;
  opts.record_commands = true;
  PimRuntime rt(mem::Geometry{}, opts);
  const auto a = rt.pim_malloc(512);
  const auto b = rt.pim_malloc(512);
  const auto c = rt.pim_malloc(512);
  rt.pim_op_batch({{BitOp::kOr, {a, b}, c}});
  EXPECT_FALSE(rt.commands().empty());
}

TEST_F(DriverExtTest, BeginBarrierDefersPricingNotResults) {
  const std::uint64_t bits = 1ull << 14;
  const auto a = rt_.pim_malloc(bits);
  const auto b = rt_.pim_malloc(bits);
  const auto c = rt_.pim_malloc(bits);
  const auto va = BitVector::random(bits, 0.5, rng_);
  const auto vb = BitVector::random(bits, 0.5, rng_);
  rt_.pim_write(a, va);
  rt_.pim_write(b, vb);

  rt_.pim_begin();
  EXPECT_TRUE(rt_.in_batch());
  rt_.pim_op(BitOp::kOr, {a, b}, c);
  // Results are visible immediately (program order)...
  EXPECT_EQ(rt_.pim_read(c), (va | vb));
  // ...but pricing waits for the barrier.
  EXPECT_DOUBLE_EQ(rt_.cost().time_ns, 0.0);
  rt_.pim_barrier();
  EXPECT_FALSE(rt_.in_batch());
  EXPECT_GT(rt_.cost().time_ns, 0.0);
  EXPECT_EQ(rt_.stats().batches, 1u);
}

TEST_F(DriverExtTest, BarrierWithoutBeginThrows) {
  EXPECT_THROW(rt_.pim_barrier(), Error);
  rt_.pim_begin();
  EXPECT_THROW(rt_.pim_begin(), Error);
  rt_.pim_barrier();  // empty batch is fine
  EXPECT_EQ(rt_.stats().batches, 0u);  // nothing was flushed
}

TEST_F(DriverExtTest, BatchedAndSyncBitIdentical) {
  // The same random program, once synchronous and once inside a single
  // batch window, must leave every vector bit-identical.
  const std::uint64_t bits = 1ull << 14;
  PimRuntime sync;
  std::vector<PimRuntime::Handle> hb, hs;
  Rng rng(77);
  for (int i = 0; i < 10; ++i) {
    hb.push_back(rt_.pim_malloc(bits));
    hs.push_back(sync.pim_malloc(bits));
    const auto v = BitVector::random(bits, 0.4, rng);
    rt_.pim_write(hb.back(), v);
    sync.pim_write(hs.back(), v);
  }
  const std::vector<PimRuntime::BatchOp> prog = {
      {BitOp::kOr, {hb[0], hb[1]}, hb[2]},
      {BitOp::kAnd, {hb[2], hb[3]}, hb[4]},   // depends on op 0
      {BitOp::kXor, {hb[5], hb[6]}, hb[7]},   // independent
      {BitOp::kInv, {hb[4]}, hb[8]},          // depends on op 1
      {BitOp::kOr, {hb[7], hb[8]}, hb[9]},    // joins both chains
  };
  rt_.pim_begin();
  for (const auto& o : prog) rt_.pim_op(o.op, o.srcs, o.dst);
  rt_.pim_barrier();
  // Mirror the program on the synchronous runtime (handles align 1:1).
  sync.pim_op(BitOp::kOr, {hs[0], hs[1]}, hs[2]);
  sync.pim_op(BitOp::kAnd, {hs[2], hs[3]}, hs[4]);
  sync.pim_op(BitOp::kXor, {hs[5], hs[6]}, hs[7]);
  sync.pim_op(BitOp::kInv, {hs[4]}, hs[8]);
  sync.pim_op(BitOp::kOr, {hs[7], hs[8]}, hs[9]);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(rt_.pim_read(hb[i]), sync.pim_read(hs[i])) << "vector " << i;
  // Batched pricing never exceeds the synchronous serial sum.
  EXPECT_LE(rt_.cost().time_ns, sync.cost().time_ns + 1e-9);
  EXPECT_NEAR(rt_.cost().energy.total_pj(), sync.cost().energy.total_pj(),
              1e-6 * sync.cost().energy.total_pj());
}

TEST_F(DriverExtTest, SerialExecutionOptionReproducesSerialSum) {
  // Large vectors span both ranks, so the default engine overlaps even a
  // single op's group steps; the serial_execution knob turns that off.
  const std::uint64_t bits = 1ull << 20;
  PimRuntime::Options serial_opts;
  serial_opts.serial_execution = true;
  PimRuntime fast, slow(mem::Geometry{}, serial_opts);
  Rng rng(5);
  std::vector<PimRuntime::Handle> hf, hl;
  for (int i = 0; i < 3; ++i) {
    hf.push_back(fast.pim_malloc(bits));
    hl.push_back(slow.pim_malloc(bits));
    const auto v = BitVector::random(bits, 0.5, rng);
    fast.pim_write(hf.back(), v);
    slow.pim_write(hl.back(), v);
  }
  fast.pim_op(BitOp::kOr, {hf[0], hf[1]}, hf[2]);
  slow.pim_op(BitOp::kOr, {hl[0], hl[1]}, hl[2]);
  EXPECT_EQ(fast.pim_read(hf[2]), slow.pim_read(hl[2]));
  // Identical serial baseline, strictly faster overlapped makespan.
  EXPECT_NEAR(fast.stats().serial_time_ns, slow.cost().time_ns,
              1e-9 * slow.cost().time_ns);
  EXPECT_LT(fast.cost().time_ns, slow.cost().time_ns - 1e-6);
  EXPECT_NEAR(fast.cost().energy.total_pj(), slow.cost().energy.total_pj(),
              1e-9 * slow.cost().energy.total_pj());
}

TEST_F(DriverExtTest, StatsBreakdownCoversCost) {
  const std::uint64_t bits = 1ull << 14;
  const auto a = rt_.pim_malloc(bits);
  const auto b = rt_.pim_malloc(bits);
  const auto c = rt_.pim_malloc(bits);
  rt_.pim_write(a, BitVector::random(bits, 0.5, rng_));
  rt_.pim_write(b, BitVector::random(bits, 0.5, rng_));
  rt_.pim_op(BitOp::kOr, {a, b}, c, /*host_reads_result=*/true);
  const auto& st = rt_.stats();
  double time = 0.0, energy = 0.0;
  std::uint64_t steps = 0;
  for (std::size_t k = 0; k < kStepKindCount; ++k) {
    time += st.by_class[k].time_ns;
    energy += st.by_class[k].energy_pj;
    steps += st.by_class[k].steps;
  }
  EXPECT_NEAR(time, st.serial_time_ns, 1e-9 * st.serial_time_ns);
  EXPECT_NEAR(energy, rt_.cost().energy.total_pj(),
              1e-9 * rt_.cost().energy.total_pj());
  EXPECT_EQ(steps,
            st.intra_steps + st.inter_sub_steps + st.inter_bank_steps +
                st.host_reads);
  EXPECT_EQ(st.bus_bytes, bits / 8);  // one host burst
  EXPECT_EQ(st.by_class[step_index(StepKind::kHostRead)].steps, 1u);
}

TEST_F(DriverExtTest, BatchedCommandStreamReplays) {
  // Record an overlapped batch's interleaved command stream, replay it on
  // a twin memory image, and expect bit-identical vectors.
  PimRuntime::Options opts;
  opts.record_commands = true;
  PimRuntime rt(mem::Geometry{}, opts);
  const std::uint64_t bits = 1ull << 20;  // groups span both ranks
  std::vector<PimRuntime::Handle> h;
  std::vector<BitVector> vals;
  Rng rng(13);
  for (int i = 0; i < 6; ++i) {
    h.push_back(rt.pim_malloc(bits));
    vals.push_back(BitVector::random(bits, 0.5, rng));
    rt.pim_write(h[static_cast<std::size_t>(i)], vals.back());
  }
  // Twin runtime shares the data but executes nothing.
  PimRuntime twin(mem::Geometry{}, opts);
  std::vector<PimRuntime::Handle> ht;
  for (int i = 0; i < 6; ++i) {
    ht.push_back(twin.pim_malloc(bits));
    twin.pim_write(ht[static_cast<std::size_t>(i)],
                   vals[static_cast<std::size_t>(i)]);
  }
  rt.pim_begin();
  rt.pim_op(BitOp::kOr, {h[0], h[1]}, h[2]);
  rt.pim_op(BitOp::kAnd, {h[3], h[4]}, h[5]);
  rt.pim_barrier();
  CommandReplayer replayer(twin.memory());
  replayer.execute_all(rt.commands());
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(twin.pim_read(ht[static_cast<std::size_t>(i)]),
              rt.pim_read(h[static_cast<std::size_t>(i)]))
        << "vector " << i;
}

}  // namespace
}  // namespace pinatubo::core
