// pim_copy and the batched-submission API.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pinatubo/driver.hpp"

namespace pinatubo::core {
namespace {

class DriverExtTest : public ::testing::Test {
 protected:
  PimRuntime rt_;
  Rng rng_{321};
};

TEST_F(DriverExtTest, CopyCoLocated) {
  const auto a = rt_.pim_malloc(1ull << 14);
  const auto b = rt_.pim_malloc(1ull << 14);
  const auto v = BitVector::random(1ull << 14, 0.4, rng_);
  rt_.pim_write(a, v);
  rt_.pim_copy(a, b);
  EXPECT_EQ(rt_.pim_read(b), v);
  // Source untouched.
  EXPECT_EQ(rt_.pim_read(a), v);
  EXPECT_EQ(rt_.stats().intra_steps, 1u);
  EXPECT_GT(rt_.cost().time_ns, 0.0);
}

TEST_F(DriverExtTest, CopyAcrossSubarrays) {
  std::vector<PimRuntime::Handle> hs;
  for (int i = 0; i < 4097; ++i) hs.push_back(rt_.pim_malloc(1ull << 14));
  const auto v = BitVector::random(1ull << 14, 0.6, rng_);
  rt_.pim_write(hs[0], v);
  rt_.pim_copy(hs[0], hs[4096]);  // different subarray
  EXPECT_EQ(rt_.pim_read(hs[4096]), v);
  EXPECT_GE(rt_.stats().inter_sub_steps, 1u);
}

TEST_F(DriverExtTest, CopyLengthMismatchThrows) {
  const auto a = rt_.pim_malloc(1000);
  const auto b = rt_.pim_malloc(2000);
  EXPECT_THROW(rt_.pim_copy(a, b), Error);
}

TEST_F(DriverExtTest, BatchMatchesSequential) {
  const std::uint64_t bits = 1ull << 14;
  std::vector<PimRuntime::Handle> h;
  std::vector<BitVector> vals;
  for (int i = 0; i < 8; ++i) {
    h.push_back(rt_.pim_malloc(bits));
    vals.push_back(BitVector::random(bits, 0.3, rng_));
    rt_.pim_write(h.back(), vals.back());
  }
  // Two independent ops + one dependent.
  std::vector<PimRuntime::BatchOp> batch;
  batch.push_back({BitOp::kOr, {h[0], h[1]}, h[2]});
  batch.push_back({BitOp::kAnd, {h[3], h[4]}, h[5]});
  batch.push_back({BitOp::kXor, {h[2], h[5]}, h[6]});
  rt_.pim_op_batch(batch);

  const auto r_or = vals[0] | vals[1];
  const auto r_and = vals[3] & vals[4];
  EXPECT_EQ(rt_.pim_read(h[2]), r_or);
  EXPECT_EQ(rt_.pim_read(h[5]), r_and);
  EXPECT_EQ(rt_.pim_read(h[6]), (r_or ^ r_and));
  EXPECT_EQ(rt_.stats().ops, 3u);
}

TEST_F(DriverExtTest, BatchNeverCostsMoreThanSequential) {
  const std::uint64_t bits = 1ull << 14;
  std::vector<PimRuntime::BatchOp> batch;
  PimRuntime seq;
  std::vector<PimRuntime::Handle> hb, hs;
  Rng rng(9);
  for (int i = 0; i < 12; ++i) {
    hb.push_back(rt_.pim_malloc(bits));
    hs.push_back(seq.pim_malloc(bits));
    const auto v = BitVector::random(bits, 0.5, rng);
    rt_.pim_write(hb.back(), v);
    seq.pim_write(hs.back(), v);
  }
  for (int i = 0; i + 2 < 12; i += 3) {
    batch.push_back({BitOp::kOr, {hb[i], hb[i + 1]}, hb[i + 2]});
    seq.pim_op(BitOp::kOr, {hs[i], hs[i + 1]}, hs[i + 2]);
  }
  rt_.pim_op_batch(batch);
  EXPECT_LE(rt_.cost().time_ns, seq.cost().time_ns + 1e-9);
  // Same functional results.
  for (int i = 0; i < 12; ++i)
    EXPECT_EQ(rt_.pim_read(hb[i]), seq.pim_read(hs[i]));
  // Same total energy (scheduling cannot change physics).
  EXPECT_NEAR(rt_.cost().energy.total_pj(), seq.cost().energy.total_pj(),
              1e-6 * seq.cost().energy.total_pj());
}

TEST_F(DriverExtTest, BatchRecordsCommands) {
  PimRuntime::Options opts;
  opts.record_commands = true;
  PimRuntime rt(mem::Geometry{}, opts);
  const auto a = rt.pim_malloc(512);
  const auto b = rt.pim_malloc(512);
  const auto c = rt.pim_malloc(512);
  rt.pim_op_batch({{BitOp::kOr, {a, b}, c}});
  EXPECT_FALSE(rt.commands().empty());
}

}  // namespace
}  // namespace pinatubo::core
