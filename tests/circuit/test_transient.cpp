#include "circuit/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace pinatubo::circuit {
namespace {

TEST(Transient, RcChargeMatchesAnalytic) {
  // 1 kohm into 1 pF from a 1 V rail: tau = 1 ns.
  TransientCircuit ckt;
  const auto vdd = ckt.add_rail("VDD", 1.0);
  const auto n = ckt.add_node("n", 1e-12, 0.0);
  ckt.add_resistor(vdd, n, 1e3);
  for (int i = 0; i < 1000; ++i) ckt.step(0.001);
  // After 1 tau: 1 - e^-1.
  EXPECT_NEAR(ckt.voltage(n), 1.0 - std::exp(-1.0), 5e-3);
  for (int i = 0; i < 4000; ++i) ckt.step(0.001);
  EXPECT_NEAR(ckt.voltage(n), 1.0 - std::exp(-5.0), 5e-3);
}

TEST(Transient, CurrentSourceIntegration) {
  // 1 uA into 1 fF for 1 ns -> dV = I*t/C = 1 V.
  TransientCircuit ckt;
  const auto gnd = ckt.add_rail("GND", 0.0);
  const auto n = ckt.add_node("n", 1e-15, 0.0);
  ckt.add_resistor(n, gnd, 1e15);  // negligible leak
  ckt.add_current_source(gnd, n, 1e-6);
  for (int i = 0; i < 1000; ++i) ckt.step(0.001);
  EXPECT_NEAR(ckt.voltage(n), 1.0, 0.01);
}

TEST(Transient, SwitchOpensAndCloses) {
  TransientCircuit ckt;
  const auto vdd = ckt.add_rail("VDD", 1.0);
  const auto gnd = ckt.add_rail("GND", 0.0);
  const auto n = ckt.add_node("n", 1e-13, 0.0);
  ckt.add_resistor(n, gnd, 1e9);  // weak pulldown
  const auto sw = ckt.add_switch(vdd, n, 1e3, false);
  for (int i = 0; i < 200; ++i) ckt.step(0.01);
  EXPECT_LT(ckt.voltage(n), 0.05);  // open: stays low
  ckt.set_switch(sw, true);
  for (int i = 0; i < 200; ++i) ckt.step(0.01);
  EXPECT_GT(ckt.voltage(n), 0.95);  // closed: pulled up
}

TEST(Transient, VoltageDividerSteadyState) {
  TransientCircuit ckt;
  const auto vdd = ckt.add_rail("VDD", 1.0);
  const auto gnd = ckt.add_rail("GND", 0.0);
  const auto mid = ckt.add_node("mid", 1e-14, 0.0);
  ckt.add_resistor(vdd, mid, 2e3);
  ckt.add_resistor(mid, gnd, 1e3);
  for (int i = 0; i < 2000; ++i) ckt.step(0.005);
  EXPECT_NEAR(ckt.voltage(mid), 1.0 / 3.0, 1e-3);
}

TEST(Transient, InverterInverts) {
  TransientCircuit ckt;
  const auto vdd = ckt.add_rail("VDD", 1.0);
  const auto gnd = ckt.add_rail("GND", 0.0);
  const auto in = ckt.add_node("in", 1e-14, 0.0);
  const auto out = ckt.add_node("out", 1e-14, 0.0);
  ckt.add_resistor(in, gnd, 1e12);
  ckt.add_inverter(in, out, vdd, gnd, 1e3, 0.5);
  for (int i = 0; i < 500; ++i) ckt.step(0.01);
  EXPECT_GT(ckt.voltage(out), 0.9);  // low in -> high out
  ckt.set_voltage(in, 1.0);
  for (int i = 0; i < 500; ++i) ckt.step(0.01);
  EXPECT_LT(ckt.voltage(out), 0.1);
}

TEST(Transient, CrossCoupledLatchRegenerates) {
  TransientCircuit ckt;
  const auto vdd = ckt.add_rail("VDD", 1.0);
  const auto gnd = ckt.add_rail("GND", 0.0);
  const auto a = ckt.add_node("a", 1e-14, 0.55);
  const auto b = ckt.add_node("b", 1e-14, 0.45);
  ckt.add_inverter(a, b, vdd, gnd, 5e3, 0.5);
  ckt.add_inverter(b, a, vdd, gnd, 5e3, 0.5);
  for (int i = 0; i < 2000; ++i) ckt.step(0.005);
  // Small initial difference regenerates to full swing: a high, b low.
  EXPECT_GT(ckt.voltage(a), 0.9);
  EXPECT_LT(ckt.voltage(b), 0.1);
}

TEST(Transient, RunSamplesWaveform) {
  TransientCircuit ckt;
  const auto vdd = ckt.add_rail("VDD", 1.0);
  const auto n = ckt.add_node("n", 1e-12, 0.0);
  ckt.add_resistor(vdd, n, 1e3);
  Waveform wf;
  ckt.bind_waveform(&wf);
  ckt.run(2.0, 0.001, &wf);
  EXPECT_EQ(wf.signal_count(), 2u);
  EXPECT_GT(wf.sample_count(), 100u);
  // Monotone rise on node "n".
  const auto idx = wf.index_of("n");
  EXPECT_LT(wf.samples(idx).front(), wf.samples(idx).back());
}

TEST(Transient, SingularMatrixDetected) {
  TransientCircuit ckt;
  ckt.add_rail("VDD", 1.0);
  // A node with no connection at all: singular system.
  ckt.add_node("float", 1e-15, 0.0);
  EXPECT_NO_THROW(ckt.step(0.01));  // cap term keeps it regular
}

TEST(Transient, RejectsBadElements) {
  TransientCircuit ckt;
  const auto a = ckt.add_node("a", 1e-15, 0.0);
  EXPECT_THROW(ckt.add_node("bad", 0.0), Error);
  EXPECT_THROW(ckt.add_resistor(a, 99, 1e3), Error);
  EXPECT_THROW(ckt.add_resistor(a, a, -5.0), Error);
  EXPECT_THROW(ckt.step(0.0), Error);
}

}  // namespace
}  // namespace pinatubo::circuit
