#include "circuit/lwl_driver.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::circuit {
namespace {

TEST(LwlArray, StartsInactive) {
  LwlDriverArray arr(16);
  EXPECT_EQ(arr.active_count(), 0u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_FALSE(arr.is_active(i));
}

TEST(LwlArray, DecodeLatches) {
  LwlDriverArray arr(16);
  arr.decode(3);
  arr.decode(9);
  EXPECT_TRUE(arr.is_active(3));
  EXPECT_TRUE(arr.is_active(9));
  EXPECT_FALSE(arr.is_active(4));
  EXPECT_EQ(arr.active_count(), 2u);
  EXPECT_EQ(arr.active_rows(), (std::vector<std::size_t>{3, 9}));
}

TEST(LwlArray, DecodeIsIdempotent) {
  LwlDriverArray arr(8);
  arr.decode(1);
  arr.decode(1);
  EXPECT_EQ(arr.active_count(), 1u);
}

TEST(LwlArray, ResetReleasesAll) {
  LwlDriverArray arr(8);
  arr.decode(0);
  arr.decode(7);
  arr.reset();
  EXPECT_EQ(arr.active_count(), 0u);
  EXPECT_TRUE(arr.active_rows().empty());
}

TEST(LwlArray, BoundsChecked) {
  LwlDriverArray arr(4);
  EXPECT_THROW(arr.decode(4), Error);
  EXPECT_THROW(arr.is_active(4), Error);
  EXPECT_THROW(LwlDriverArray(0), Error);
}

// ---- transient validation (the Fig. 7 experiment) --------------------------

TEST(LwlTransient, MultiRowActivationLatchesSelectedRows) {
  // RESET pulse, then decode driver 0 and driver 2 sequentially; driver 1
  // never addressed.  All three decoded WLs must hold at the end.
  const std::vector<LwlEvent> events{
      {0.1, 0.4, -1},  // RESET
      {1.0, 0.5, 0},   // decode row 0
      {2.0, 0.5, 2},   // decode row 2
  };
  const auto res = simulate_lwl_transient(3, events, 5.0);
  ASSERT_EQ(res.final_states.size(), 3u);
  EXPECT_TRUE(res.final_states[0]);   // latched even after pulse ended
  EXPECT_FALSE(res.final_states[1]);  // never decoded
  EXPECT_TRUE(res.final_states[2]);
}

TEST(LwlTransient, WordlineHoldsAfterDecodePulseEnds) {
  const std::vector<LwlEvent> events{
      {0.1, 0.4, -1},
      {1.0, 0.5, 0},
  };
  const auto res = simulate_lwl_transient(1, events, 5.0);
  const auto wl = res.waveform.index_of("WL_0");
  // High at end, long after the decode pulse ended at 1.5 ns.
  EXPECT_GT(res.waveform.value_at(wl, 4.8), 0.75);
  // It rose after the decode pulse started.
  EXPECT_LT(res.waveform.value_at(wl, 0.9), 0.3);
}

TEST(LwlTransient, ResetReleasesLatchedWordline) {
  const std::vector<LwlEvent> events{
      {0.1, 0.3, -1},
      {0.6, 0.4, 0},   // latch WL 0
      {3.0, 0.6, -1},  // second RESET releases it
  };
  const auto res = simulate_lwl_transient(1, events, 5.0);
  EXPECT_FALSE(res.final_states[0]);
  const auto wl = res.waveform.index_of("WL_0");
  // Was high before the second reset.
  EXPECT_GT(res.waveform.value_at(wl, 2.8), 0.75);
}

TEST(LwlTransient, ValidatesDriverIndices) {
  EXPECT_THROW(simulate_lwl_transient(2, {{0.0, 0.1, 5}}), Error);
  EXPECT_THROW(simulate_lwl_transient(0, {}), Error);
}

}  // namespace
}  // namespace pinatubo::circuit
