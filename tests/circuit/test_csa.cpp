#include "circuit/csa.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::circuit {
namespace {

using nvm::Tech;
using nvm::cell_params;

class CsaTest : public ::testing::Test {
 protected:
  CsaModel csa_;
};

TEST_F(CsaTest, TransientOutputsOneForLargerCurrent) {
  const auto res = csa_.sense_transient(20e-6, 10e-6);
  EXPECT_TRUE(res.output);
  EXPECT_GT(res.margin_v, 0.5);
  EXPECT_GT(res.resolve_time_ns, 0.0);
}

TEST_F(CsaTest, TransientOutputsZeroForSmallerCurrent) {
  const auto res = csa_.sense_transient(5e-6, 10e-6);
  EXPECT_FALSE(res.output);
  EXPECT_GT(res.margin_v, 0.5);
}

TEST_F(CsaTest, TransientProducesWaveform) {
  const auto res = csa_.sense_transient(15e-6, 10e-6);
  EXPECT_GT(res.waveform.sample_count(), 100u);
  EXPECT_GE(res.waveform.signal_count(), 6u);
  // The sampling caps must actually charge during phase 1.
  const auto vc = res.waveform.index_of("Vc");
  EXPECT_GT(res.waveform.value_at(vc, csa_.config().t_sample_ns), 0.01);
}

TEST_F(CsaTest, TransientAgreesWithDecideAcrossRatios) {
  for (double ratio : {0.3, 0.7, 1.5, 3.0, 8.0}) {
    const double i_ref = 10e-6;
    const auto res = csa_.sense_transient(ratio * i_ref, i_ref);
    EXPECT_EQ(res.output, csa_.decide(ratio * i_ref, i_ref, nullptr))
        << "ratio " << ratio;
  }
}

TEST_F(CsaTest, DecideNominalIsThreshold) {
  EXPECT_TRUE(csa_.decide(2e-6, 1e-6, nullptr));
  EXPECT_FALSE(csa_.decide(0.9e-6, 1e-6, nullptr));
  EXPECT_THROW(csa_.decide(-1e-6, 1e-6, nullptr), Error);
}

TEST_F(CsaTest, DecideWithOffsetIsNoisyNearThreshold) {
  Rng rng(77);
  int ones = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i)
    ones += csa_.decide(1.0e-6, 1.0e-6, &rng);
  // Exactly at threshold: offset flips the decision about half the time.
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.5, 0.1);
}

TEST_F(CsaTest, SenseOpTruthTablesNominal) {
  const auto& c = cell_params(Tech::kPcm);
  // 2-row OR.
  EXPECT_FALSE(csa_.sense_op(BitOp::kOr, {false, false}, c, nullptr));
  EXPECT_TRUE(csa_.sense_op(BitOp::kOr, {true, false}, c, nullptr));
  EXPECT_TRUE(csa_.sense_op(BitOp::kOr, {false, true}, c, nullptr));
  EXPECT_TRUE(csa_.sense_op(BitOp::kOr, {true, true}, c, nullptr));
  // 2-row AND.
  EXPECT_FALSE(csa_.sense_op(BitOp::kAnd, {false, false}, c, nullptr));
  EXPECT_FALSE(csa_.sense_op(BitOp::kAnd, {true, false}, c, nullptr));
  EXPECT_TRUE(csa_.sense_op(BitOp::kAnd, {true, true}, c, nullptr));
  // XOR.
  EXPECT_FALSE(csa_.sense_op(BitOp::kXor, {false, false}, c, nullptr));
  EXPECT_TRUE(csa_.sense_op(BitOp::kXor, {true, false}, c, nullptr));
  EXPECT_TRUE(csa_.sense_op(BitOp::kXor, {false, true}, c, nullptr));
  EXPECT_FALSE(csa_.sense_op(BitOp::kXor, {true, true}, c, nullptr));
  // INV.
  EXPECT_TRUE(csa_.sense_op(BitOp::kInv, {false}, c, nullptr));
  EXPECT_FALSE(csa_.sense_op(BitOp::kInv, {true}, c, nullptr));
}

TEST_F(CsaTest, MultiRowOrNominal) {
  const auto& c = cell_params(Tech::kPcm);
  std::vector<bool> all_zero(64, false);
  EXPECT_FALSE(csa_.sense_op(BitOp::kOr, all_zero, c, nullptr));
  auto one_hot = all_zero;
  one_hot[37] = true;
  EXPECT_TRUE(csa_.sense_op(BitOp::kOr, one_hot, c, nullptr));
}

TEST_F(CsaTest, SupportsMatrix) {
  const auto& pcm = cell_params(Tech::kPcm);
  const auto& stt = cell_params(Tech::kSttMram);
  EXPECT_TRUE(csa_.supports(BitOp::kOr, 2, pcm));
  EXPECT_TRUE(csa_.supports(BitOp::kOr, 128, pcm));
  EXPECT_FALSE(csa_.supports(BitOp::kOr, 256, pcm));
  EXPECT_TRUE(csa_.supports(BitOp::kOr, 2, stt));
  EXPECT_FALSE(csa_.supports(BitOp::kOr, 4, stt));
  EXPECT_TRUE(csa_.supports(BitOp::kAnd, 2, pcm));
  EXPECT_FALSE(csa_.supports(BitOp::kAnd, 4, pcm));
  EXPECT_TRUE(csa_.supports(BitOp::kXor, 2, pcm));
  EXPECT_FALSE(csa_.supports(BitOp::kXor, 4, pcm));
  EXPECT_TRUE(csa_.supports(BitOp::kInv, 1, pcm));
}

TEST_F(CsaTest, MaxRowsMatchesPaperClaims) {
  // §4.2: "maximal 128-row operations for PCM ... maximal 2-row for STT".
  EXPECT_EQ(csa_.max_rows(BitOp::kOr, cell_params(Tech::kPcm)), 128u);
  EXPECT_EQ(csa_.max_rows(BitOp::kOr, cell_params(Tech::kSttMram)), 2u);
  EXPECT_EQ(csa_.max_rows(BitOp::kOr, cell_params(Tech::kReRam)), 128u);
  EXPECT_EQ(csa_.max_rows(BitOp::kAnd, cell_params(Tech::kPcm)), 2u);
}

TEST_F(CsaTest, SenseOpShapeChecks) {
  const auto& c = cell_params(Tech::kPcm);
  EXPECT_THROW(csa_.sense_op(BitOp::kXor, {true, false, true}, c, nullptr),
               Error);
  EXPECT_THROW(csa_.sense_op(BitOp::kInv, {true, false}, c, nullptr), Error);
  EXPECT_THROW(csa_.sense_op(BitOp::kOr, {true}, c, nullptr), Error);
}

}  // namespace
}  // namespace pinatubo::circuit
