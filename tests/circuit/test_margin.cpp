#include "circuit/margin.hpp"

#include <gtest/gtest.h>

namespace pinatubo::circuit {
namespace {

using nvm::Tech;
using nvm::cell_params;

TEST(Margin, SweepMonotoneDecreasing) {
  CsaModel csa;
  const auto pts = margin_sweep(cell_params(Tech::kPcm), BitOp::kOr, csa, 512);
  ASSERT_GE(pts.size(), 5u);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LT(pts[i].boundary_ratio, pts[i - 1].boundary_ratio);
}

TEST(Margin, FeasibilityEdgeAt128ForPcm) {
  CsaModel csa;
  const auto pts = margin_sweep(cell_params(Tech::kPcm), BitOp::kOr, csa, 512);
  for (const auto& p : pts) {
    if (p.n_rows <= 128)
      EXPECT_TRUE(p.feasible) << "n=" << p.n_rows;
    else
      EXPECT_FALSE(p.feasible) << "n=" << p.n_rows;
  }
}

TEST(Margin, SttOnlyTwoRows) {
  CsaModel csa;
  const auto pts =
      margin_sweep(cell_params(Tech::kSttMram), BitOp::kOr, csa, 16);
  for (const auto& p : pts)
    EXPECT_EQ(p.feasible, p.n_rows == 2) << "n=" << p.n_rows;
}

TEST(Margin, AndInfeasibleBeyondTwo) {
  CsaModel csa;
  const auto pts = margin_sweep(cell_params(Tech::kPcm), BitOp::kAnd, csa, 8);
  EXPECT_TRUE(pts[0].feasible);    // n=2
  EXPECT_FALSE(pts[1].feasible);   // n=4
  EXPECT_FALSE(pts[2].feasible);   // n=8
  // Paper footnote 3: can't distinguish Rlow/(n-1)||Rhigh from Rlow/n.
  EXPECT_LT(pts[1].boundary_ratio, 1.5);
}

TEST(Margin, DerivedMaxRowsMatchPaper) {
  EXPECT_EQ(derived_max_or_rows(Tech::kPcm), 128u);
  EXPECT_EQ(derived_max_or_rows(Tech::kSttMram), 2u);
  EXPECT_EQ(derived_max_or_rows(Tech::kReRam), 128u);
}

TEST(Margin, MonteCarloYieldHighWithinLimit) {
  CsaModel csa;
  Rng rng(11);
  for (unsigned n : {2u, 32u, 128u}) {
    const auto y =
        monte_carlo_yield(cell_params(Tech::kPcm), BitOp::kOr, n, 2000, csa, rng);
    EXPECT_GT(y.yield, 0.999) << "n=" << n;
    EXPECT_GT(y.worst_side, 0.995) << "n=" << n;
  }
}

TEST(Margin, MonteCarloYieldDegradesBeyondLimit) {
  CsaModel csa;
  Rng rng(13);
  const auto ok =
      monte_carlo_yield(cell_params(Tech::kSttMram), BitOp::kOr, 2, 4000, csa, rng);
  const auto bad =
      monte_carlo_yield(cell_params(Tech::kSttMram), BitOp::kOr, 8, 4000, csa, rng);
  EXPECT_GT(ok.yield, 0.99);
  EXPECT_LT(bad.worst_side, ok.worst_side);
  // 8-row OR on STT-MRAM: the "0" and "1" boundary currents are so close
  // that the SA offset flips a visible fraction of decisions.
  EXPECT_LT(bad.worst_side, 0.99);
}

TEST(Margin, MonteCarloXorAndAndWork) {
  CsaModel csa;
  Rng rng(17);
  const auto x =
      monte_carlo_yield(cell_params(Tech::kPcm), BitOp::kXor, 2, 2000, csa, rng);
  const auto a =
      monte_carlo_yield(cell_params(Tech::kPcm), BitOp::kAnd, 2, 2000, csa, rng);
  EXPECT_GT(x.yield, 0.999);
  EXPECT_GT(a.yield, 0.999);
}

}  // namespace
}  // namespace pinatubo::circuit
