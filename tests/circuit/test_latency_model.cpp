#include "circuit/latency_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::circuit {
namespace {

TEST(LatencyModel, DerivesThePaperTripletForPcm) {
  // The evaluated subarray: 128 rows, 1024 columns per MAT.
  LatencyModel m(nvm::cell_params(nvm::Tech::kPcm));
  const auto d = m.derive(128, 1024);
  // CACTI-3DD numbers the paper quotes: 18.3 - 8.9 - 151.1 ns.
  EXPECT_NEAR(d.t_rcd_ns, 18.3, 0.5);
  EXPECT_NEAR(d.t_cl_ns, 8.9, 0.5);
  EXPECT_NEAR(d.t_wr_ns, 151.1, 1.0);
}

TEST(LatencyModel, ComponentsCompose) {
  LatencyModel m(nvm::cell_params(nvm::Tech::kPcm));
  const auto d = m.derive(128, 1024);
  EXPECT_NEAR(d.t_rcd_ns,
              d.t_decode_ns + d.t_wordline_ns + d.t_bitline_ns + 2.8 +
                  d.t_sense_ns,
              1e-9);
  EXPECT_GT(d.t_rcd_ns, d.t_cl_ns);  // activation costs more than a step
  EXPECT_GT(d.t_wr_ns, d.t_rcd_ns);  // PCM writes dominate
}

TEST(LatencyModel, TallerSubarraysAreSlower) {
  LatencyModel m(nvm::cell_params(nvm::Tech::kPcm));
  double prev_rcd = 0, prev_cl = 0;
  for (const unsigned rows : {64u, 128u, 256u, 512u}) {
    const auto d = m.derive(rows, 1024);
    EXPECT_GT(d.t_rcd_ns, prev_rcd);
    EXPECT_GT(d.t_cl_ns, prev_cl);
    prev_rcd = d.t_rcd_ns;
    prev_cl = d.t_cl_ns;
  }
}

TEST(LatencyModel, WiderMatsSlowTheWordlineOnly) {
  LatencyModel m(nvm::cell_params(nvm::Tech::kPcm));
  const auto narrow = m.derive(128, 512);
  const auto wide = m.derive(128, 2048);
  EXPECT_GT(wide.t_wordline_ns, narrow.t_wordline_ns);
  EXPECT_DOUBLE_EQ(wide.t_bitline_ns, narrow.t_bitline_ns);
}

TEST(LatencyModel, WritePulseSetsTwr) {
  for (const auto tech :
       {nvm::Tech::kPcm, nvm::Tech::kSttMram, nvm::Tech::kReRam}) {
    const auto& cell = nvm::cell_params(tech);
    LatencyModel m(cell);
    const auto d = m.derive(128, 1024);
    EXPECT_NEAR(d.t_wr_ns,
                1.0 + std::max(cell.set_pulse_ns, cell.reset_pulse_ns),
                1e-9)
        << nvm::to_string(tech);
  }
}

TEST(LatencyModel, SttSensesFasterThanPcm) {
  // Lower cell resistances -> faster bitline development.
  LatencyModel pcm(nvm::cell_params(nvm::Tech::kPcm));
  LatencyModel stt(nvm::cell_params(nvm::Tech::kSttMram));
  EXPECT_LT(stt.derive(128, 1024).t_rcd_ns, pcm.derive(128, 1024).t_rcd_ns);
}

TEST(LatencyModel, RejectsDegenerateArrays) {
  LatencyModel m(nvm::cell_params(nvm::Tech::kPcm));
  EXPECT_THROW(m.derive(1, 1024), Error);
  EXPECT_THROW(m.derive(128, 1), Error);
}

}  // namespace
}  // namespace pinatubo::circuit
