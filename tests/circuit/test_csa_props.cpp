// Property sweep: the transient CSA must agree with the behavioural
// decision across technologies, ops and adversarial operand patterns —
// the two fidelity levels of the same amplifier cannot diverge.
#include <gtest/gtest.h>

#include <tuple>

#include "circuit/csa.hpp"
#include "nvm/cell.hpp"

namespace pinatubo::circuit {
namespace {

class CsaAgreement
    : public ::testing::TestWithParam<std::tuple<nvm::Tech, unsigned>> {};

TEST_P(CsaAgreement, TransientMatchesBehavioural) {
  const auto [tech, n] = GetParam();
  const auto& cell = nvm::cell_params(tech);
  const CsaModel csa;
  if (!csa.supports(BitOp::kOr, n, cell)) GTEST_SKIP();
  const auto ref = op_reference(cell, BitOp::kOr, n);
  const nvm::BitlineModel bl(cell);

  // Adversarial patterns: all zeros, exactly one 1, all ones.
  for (const std::size_t ones : {std::size_t{0}, std::size_t{1},
                                 static_cast<std::size_t>(n)}) {
    const double i_bl = bl.nominal_current_a(ones, n);
    const auto tr = csa.sense_transient(i_bl, ref.i_ref_a);
    EXPECT_EQ(tr.output, csa.decide(i_bl, ref.i_ref_a, nullptr))
        << nvm::to_string(tech) << " n=" << n << " ones=" << ones;
    EXPECT_EQ(tr.output, ones > 0);
    // The latch must regenerate to a solid margin.
    EXPECT_GT(tr.margin_v, 0.5 * csa.config().vdd_v);
    EXPECT_GT(tr.resolve_time_ns, 0.0);
    // And resolve within the three configured phases.
    EXPECT_LE(tr.resolve_time_ns,
              csa.config().t_sample_ns + csa.config().t_amplify_ns +
                  csa.config().t_latch_ns + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TechAndRows, CsaAgreement,
    ::testing::Combine(::testing::Values(nvm::Tech::kPcm,
                                         nvm::Tech::kSttMram,
                                         nvm::Tech::kReRam),
                       ::testing::Values(2u, 4u, 16u, 64u, 128u)));

TEST(CsaResolveTime, ScalesWithConfiguredPhases) {
  CsaConfig slow;
  slow.t_amplify_ns = 6.0;
  const CsaModel fast, slower(slow);
  const auto a = fast.sense_transient(20e-6, 10e-6);
  const auto b = slower.sense_transient(20e-6, 10e-6);
  EXPECT_GT(b.resolve_time_ns, a.resolve_time_ns);
}

}  // namespace
}  // namespace pinatubo::circuit
