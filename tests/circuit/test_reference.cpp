#include "circuit/reference.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::circuit {
namespace {

using nvm::Tech;
using nvm::cell_params;

TEST(Reference, ReadReferenceBetweenStates) {
  const auto& c = cell_params(Tech::kPcm);
  const auto r = read_reference(c);
  EXPECT_GT(r.i_result1_a, r.i_ref_a);
  EXPECT_LT(r.i_result0_a, r.i_ref_a);
  EXPECT_NEAR(r.boundary_ratio(), c.on_off_ratio(), 1e-9);
}

TEST(Reference, OrReferenceSeparatesBoundaries) {
  const auto& c = cell_params(Tech::kPcm);
  for (unsigned n : {2u, 4u, 8u, 32u, 128u}) {
    const auto r = op_reference(c, BitOp::kOr, n);
    // "single 1" current must be above ref; "all 0" below.
    EXPECT_GT(r.i_result1_a, r.i_ref_a) << "n=" << n;
    EXPECT_LT(r.i_result0_a, r.i_ref_a) << "n=" << n;
  }
}

TEST(Reference, OrRatioFormulaMatchesPaper) {
  // ratio = (rho + n - 1) / n from the parallel-resistance algebra.
  const auto& c = cell_params(Tech::kPcm);
  const double rho = c.on_off_ratio();
  for (unsigned n : {2u, 16u, 128u}) {
    const auto r = op_reference(c, BitOp::kOr, n);
    EXPECT_NEAR(r.boundary_ratio(), (rho + n - 1) / n, 1e-9) << "n=" << n;
  }
}

TEST(Reference, OrMarginShrinksWithRows) {
  const auto& c = cell_params(Tech::kPcm);
  double prev = 1e18;
  for (unsigned n = 2; n <= 512; n *= 2) {
    const double ratio = op_reference(c, BitOp::kOr, n).boundary_ratio();
    EXPECT_LT(ratio, prev);
    prev = ratio;
  }
}

TEST(Reference, AndTwoRowWorks) {
  const auto& c = cell_params(Tech::kPcm);
  const auto r = op_reference(c, BitOp::kAnd, 2);
  EXPECT_GT(r.boundary_ratio(), 1.7);
  // Reference must sit between Rlow/2 current and Rlow||Rhigh current.
  const double i_all_ones = 2 * c.read_voltage_v / c.r_low_ohm;
  const double i_one_zero =
      c.read_voltage_v * (1.0 / c.r_low_ohm + 1.0 / c.r_high_ohm);
  EXPECT_LT(r.i_ref_a, i_all_ones);
  EXPECT_GT(r.i_ref_a, i_one_zero);
}

TEST(Reference, MultiRowAndRejected) {
  const auto& c = cell_params(Tech::kPcm);
  EXPECT_THROW(op_reference(c, BitOp::kAnd, 4), Error);
  EXPECT_THROW(op_reference(c, BitOp::kOr, 1), Error);
  EXPECT_THROW(op_reference(c, BitOp::kXor, 3), Error);
}

TEST(Reference, GeometricMeanPlacement) {
  const auto& c = cell_params(Tech::kReRam);
  const auto r = op_reference(c, BitOp::kOr, 8);
  EXPECT_NEAR(r.i_ref_a * r.i_ref_a, r.i_result1_a * r.i_result0_a, 1e-18);
  EXPECT_NEAR(r.side_margin() * r.side_margin(), r.boundary_ratio(), 1e-9);
}

TEST(Reference, SaDecision) {
  EXPECT_TRUE(sa_decision(2e-6, 1e-6));
  EXPECT_FALSE(sa_decision(0.5e-6, 1e-6));
}

TEST(ExpectedResult, TruthTables) {
  // OR
  EXPECT_FALSE(expected_result(BitOp::kOr, 0, 4));
  EXPECT_TRUE(expected_result(BitOp::kOr, 1, 4));
  EXPECT_TRUE(expected_result(BitOp::kOr, 4, 4));
  // AND
  EXPECT_FALSE(expected_result(BitOp::kAnd, 1, 2));
  EXPECT_TRUE(expected_result(BitOp::kAnd, 2, 2));
  // XOR (odd parity)
  EXPECT_FALSE(expected_result(BitOp::kXor, 0, 2));
  EXPECT_TRUE(expected_result(BitOp::kXor, 1, 2));
  EXPECT_FALSE(expected_result(BitOp::kXor, 2, 2));
  // INV
  EXPECT_TRUE(expected_result(BitOp::kInv, 0, 1));
  EXPECT_FALSE(expected_result(BitOp::kInv, 1, 1));
}

TEST(Reference, SttMarginCollapsesQuickly) {
  const auto& c = cell_params(Tech::kSttMram);
  EXPECT_GE(op_reference(c, BitOp::kOr, 2).boundary_ratio(), 1.7);
  EXPECT_LT(op_reference(c, BitOp::kOr, 4).boundary_ratio(), 1.7);
}

}  // namespace
}  // namespace pinatubo::circuit
