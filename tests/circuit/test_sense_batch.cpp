#include "circuit/csa.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"
#include "nvm/technology.hpp"

namespace pinatubo::circuit {
namespace {

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) x = rng.next();
  return w;
}

TEST(SenseBatch, ZeroVariationReducesToBoolean) {
  // With all variation and offset sigmas at zero the threshold algebra
  // must resolve every lane to the exact boolean op — the same reference
  // placement argument the nominal path relies on.
  nvm::CellParams cell = nvm::cell_params(nvm::Tech::kPcm);
  cell.sigma_low = 0.0;
  cell.sigma_high = 0.0;
  CsaConfig cfg;
  cfg.sigma_offset = 0.0;
  const CsaModel csa(cfg);

  const auto ops = random_words(4, 9);
  const std::uint64_t base = CounterRng::stream_base(1, 1);
  const SenseBatch or4(csa, cell, BitOp::kOr, 4);
  EXPECT_EQ(or4.sense_words(ops, base), ops[0] | ops[1] | ops[2] | ops[3]);
  const SenseBatch and2(csa, cell, BitOp::kAnd, 2);
  EXPECT_EQ(and2.sense_words({ops.data(), 2}, base), ops[0] & ops[1]);
  const SenseBatch xor2(csa, cell, BitOp::kXor, 2);
  EXPECT_EQ(xor2.sense_words({ops.data(), 2}, base), ops[0] ^ ops[1]);
  const SenseBatch inv(csa, cell, BitOp::kInv, 1);
  EXPECT_EQ(inv.sense_words({ops.data(), 1}, base), ~ops[0]);
}

TEST(SenseBatch, WideMarginStaysExactWithVariation) {
  // PCM OR-2 has >25 sigma of margin; AND-2's geometric-mean reference
  // leaves ~5 sigma (its boundary ratio is ~2 on every technology), so the
  // expected flip count over these 6400 fixed-seed lanes is ~0.005 — the
  // deterministic draws below stay flip-free.
  const auto& cell = nvm::cell_params(nvm::Tech::kPcm);
  const CsaModel csa;
  const auto ops = random_words(2, 10);
  for (std::uint64_t s = 0; s < 50; ++s) {
    const std::uint64_t base = CounterRng::stream_base(42, s);
    EXPECT_EQ(SenseBatch(csa, cell, BitOp::kOr, 2).sense_words(ops, base),
              ops[0] | ops[1]);
    EXPECT_EQ(SenseBatch(csa, cell, BitOp::kAnd, 2).sense_words(ops, base),
              ops[0] & ops[1]);
  }
}

TEST(SenseBatch, PureFunctionOfDrawBase) {
  const auto& cell = nvm::cell_params(nvm::Tech::kSttMram);
  const CsaModel csa;
  const SenseBatch batch(csa, cell, BitOp::kOr, 2);
  const auto ops = random_words(2, 11);
  const std::uint64_t base = CounterRng::stream_base(5, 17);
  const std::uint64_t first = batch.sense_words(ops, base);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(batch.sense_words(ops, base), first);
}

TEST(SenseBatch, MarginalShapeFlipsLanesAcrossBases) {
  // OR-8 on STT-MRAM is beyond the SA's reliable range (the margin suite
  // shows worst_side < 0.99): on the weakest-one pattern some lanes must
  // disagree with the ideal boolean.  SenseBatch deliberately accepts such
  // shapes so margin analysis can measure their failure rates.
  const auto& cell = nvm::cell_params(nvm::Tech::kSttMram);
  const CsaModel csa;
  const SenseBatch batch(csa, cell, BitOp::kOr, 8);
  // Every lane holds exactly one LRS cell — the weakest sensed '1'.
  std::vector<std::uint64_t> ops(8, 0);
  ops[0] = ~std::uint64_t{0};
  std::size_t flips = 0;
  for (std::uint64_t s = 0; s < 200; ++s) {
    const std::uint64_t got =
        batch.sense_words(ops, CounterRng::stream_base(1234, s));
    flips += static_cast<std::size_t>(__builtin_popcountll(~got));
  }
  EXPECT_GT(flips, 0u);
  // ...but fewer than half: the reference still sits between boundaries.
  EXPECT_LT(flips, 200u * 64 / 2);
}

TEST(SenseBatch, DrawBudgetMatchesLayout) {
  // One normal gather consumes 32 draw indices (two lanes per 64-bit draw).
  const auto& cell = nvm::cell_params(nvm::Tech::kPcm);
  const CsaModel csa;
  EXPECT_EQ(SenseBatch(csa, cell, BitOp::kOr, 8).draws_per_block(), 9u * 32);
  EXPECT_EQ(SenseBatch(csa, cell, BitOp::kAnd, 2).draws_per_block(), 3u * 32);
  EXPECT_EQ(SenseBatch(csa, cell, BitOp::kXor, 2).draws_per_block(), 4u * 32);
  EXPECT_EQ(SenseBatch(csa, cell, BitOp::kInv, 1).draws_per_block(), 2u * 32);
}

}  // namespace
}  // namespace pinatubo::circuit
