#include "apps/vector_workload.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::apps {
namespace {

TEST(VectorSpec, ParsesPaperNames) {
  const auto s = VectorSpec::parse("19-16-7s");
  EXPECT_EQ(s.len_log, 19u);
  EXPECT_EQ(s.count_log, 16u);
  EXPECT_EQ(s.rows_log, 7u);
  EXPECT_TRUE(s.sequential);
  EXPECT_EQ(s.name(), "19-16-7s");
  const auto r = VectorSpec::parse("14-16-7r");
  EXPECT_FALSE(r.sequential);
  EXPECT_EQ(r.operands(), 128u);
  EXPECT_EQ(r.vector_bits(), 1ull << 14);
}

TEST(VectorSpec, RejectsMalformed) {
  EXPECT_THROW(VectorSpec::parse("19-16-7"), Error);
  EXPECT_THROW(VectorSpec::parse("19-16-7x"), Error);
  EXPECT_THROW(VectorSpec::parse("abc"), Error);
  EXPECT_THROW(VectorSpec::parse("40-16-7s"), Error);   // too long
  EXPECT_THROW(VectorSpec::parse("19-2-7s"), Error);    // ops > vectors
}

TEST(VectorTrace, SequentialShape) {
  const auto t = vector_trace(VectorSpec::parse("14-8-3s"));
  // 2^8 vectors in 8-operand ops -> 32 ops.
  ASSERT_EQ(t.ops.size(), 32u);
  for (std::size_t i = 0; i < t.ops.size(); ++i) {
    const auto& op = t.ops[i];
    EXPECT_EQ(op.op, BitOp::kOr);
    EXPECT_EQ(op.srcs.size(), 8u);
    EXPECT_EQ(op.bits, 1ull << 14);
    // Consecutive ids: the co-location contract with the allocator.
    for (std::size_t k = 0; k < 8; ++k)
      EXPECT_EQ(op.srcs[k], i * 8 + k);
    EXPECT_EQ(op.dst, op.srcs.back());
  }
}

TEST(VectorTrace, RandomShape) {
  const auto t = vector_trace(VectorSpec::parse("14-10-3r"));
  ASSERT_EQ(t.ops.size(), 128u);
  bool any_nonconsecutive = false;
  for (const auto& op : t.ops) {
    EXPECT_EQ(op.srcs.size(), 8u);
    // Distinct operands within an op.
    for (std::size_t i = 0; i < op.srcs.size(); ++i)
      for (std::size_t j = i + 1; j < op.srcs.size(); ++j)
        EXPECT_NE(op.srcs[i], op.srcs[j]);
    for (std::size_t k = 1; k < op.srcs.size(); ++k)
      any_nonconsecutive |= op.srcs[k] != op.srcs[k - 1] + 1;
  }
  EXPECT_TRUE(any_nonconsecutive);
}

TEST(VectorTrace, Deterministic) {
  const auto a = vector_trace(VectorSpec::parse("14-10-3r"), 5);
  const auto b = vector_trace(VectorSpec::parse("14-10-3r"), 5);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i)
    EXPECT_EQ(a.ops[i].srcs, b.ops[i].srcs);
}

TEST(VectorTrace, PaperSuite) {
  const auto specs = paper_vector_specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name(), "19-16-1s");
  EXPECT_EQ(specs[4].name(), "14-16-7r");
}

}  // namespace
}  // namespace pinatubo::apps
