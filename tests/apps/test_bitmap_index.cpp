#include "apps/bitmap_index.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::apps {
namespace {

IndexConfig small_config() {
  IndexConfig cfg;
  cfg.rows = 1ull << 12;
  return cfg;
}

class BitmapIndexTest : public ::testing::Test {
 protected:
  BitmapIndexTest() : index_(small_config(), 7) {}
  BitmapIndex index_;
};

TEST_F(BitmapIndexTest, BitmapsPartitionTheRows) {
  const auto& cfg = index_.config();
  for (unsigned a = 0; a < cfg.attributes; ++a) {
    std::uint64_t total = 0;
    for (unsigned b = 0; b < cfg.bins; ++b)
      total += index_.bin_bitmap(a, b).popcount();
    EXPECT_EQ(total, cfg.rows) << "attr " << a;
  }
}

TEST_F(BitmapIndexTest, BitmapsMatchRawValues) {
  const auto& cfg = index_.config();
  for (std::uint64_t r = 0; r < 500; ++r)
    for (unsigned a = 0; a < cfg.attributes; ++a) {
      const unsigned v = index_.value(r, a);
      EXPECT_TRUE(index_.bin_bitmap(a, v).get(r));
    }
}

TEST_F(BitmapIndexTest, ZipfSkewsBins) {
  // Bin 0 must be much more popular than the last bin.
  EXPECT_GT(index_.bin_bitmap(0, 0).popcount(),
            3 * index_.bin_bitmap(0, index_.config().bins - 1).popcount());
}

TEST_F(BitmapIndexTest, IdLayoutPairsAttributes) {
  const auto& cfg = index_.config();
  const std::uint64_t block = 2 * cfg.bins + cfg.scratch_per_pair;
  EXPECT_EQ(index_.bitmap_id(0, 0), 0u);
  EXPECT_EQ(index_.bitmap_id(1, 0), cfg.bins);
  EXPECT_EQ(index_.bitmap_id(2, 0), block);
  EXPECT_EQ(index_.scratch_id(0, 0), 2ull * cfg.bins);
  EXPECT_EQ(index_.scratch_id(1, 0), 2ull * cfg.bins);  // same pair
  EXPECT_EQ(index_.scratch_id(2, 1), block + 2 * cfg.bins + 1);
  EXPECT_THROW(index_.scratch_id(0, cfg.scratch_per_pair), Error);
  EXPECT_THROW(index_.bitmap_id(cfg.attributes, 0), Error);
}

TEST_F(BitmapIndexTest, QueryGeneratorShape) {
  const auto qs = generate_queries(index_.config(), 50, 3);
  ASSERT_EQ(qs.size(), 50u);
  for (const auto& q : qs) {
    EXPECT_GE(q.preds.size(), 2u);
    EXPECT_LE(q.preds.size(), 4u);
    std::vector<bool> seen(index_.config().attributes, false);
    for (const auto& p : q.preds) {
      EXPECT_LE(p.lo_bin, p.hi_bin);
      EXPECT_LT(p.hi_bin, index_.config().bins);
      EXPECT_FALSE(seen[p.attr]) << "duplicate attribute in query";
      seen[p.attr] = true;
    }
  }
}

TEST_F(BitmapIndexTest, QueryCountsMatchReference) {
  const auto qs = generate_queries(index_.config(), 40, 11);
  const auto res = run_queries(index_, qs);
  ASSERT_EQ(res.counts.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i)
    EXPECT_EQ(res.counts[i], count_matches_reference(index_, qs[i]))
        << "query " << i;
}

TEST_F(BitmapIndexTest, TraceUsesMultiRowOrsAndScratch) {
  const auto qs = generate_queries(index_.config(), 40, 13);
  const auto res = run_queries(index_, qs);
  std::size_t wide_or = 0, ands = 0;
  for (const auto& op : res.trace.ops) {
    if (op.op == BitOp::kOr && op.srcs.size() > 2) ++wide_or;
    if (op.op == BitOp::kAnd) ++ands;
    EXPECT_EQ(op.bits, index_.config().rows);
  }
  EXPECT_GT(wide_or, 0u);
  EXPECT_GE(ands, qs.size());  // at least one AND per query
  EXPECT_GT(res.trace.scalar_ops, 0u);
}

TEST_F(BitmapIndexTest, NegatedPredicatesCorrect) {
  Query q;
  q.preds.push_back({0, 0, 2, true});
  q.preds.push_back({1, 0, index_.config().bins - 1, false});  // always true
  const auto res = run_queries(index_, {q});
  EXPECT_EQ(res.counts[0], count_matches_reference(index_, q));
  // Negation of bins 0..2 (the popular ones) leaves the smaller part.
  EXPECT_LT(res.counts[0], index_.config().rows * 2 / 3);
}

TEST(BitmapIndexConfig, Validation) {
  IndexConfig cfg = small_config();
  cfg.bins = 1;
  EXPECT_THROW(BitmapIndex(cfg, 1), Error);
  cfg = small_config();
  cfg.rows = 0;
  EXPECT_THROW(BitmapIndex(cfg, 1), Error);
}

TEST(BitmapIndexQueries, RejectSinglePredicate) {
  const IndexConfig cfg = small_config();
  const BitmapIndex index(cfg, 3);
  Query q;
  q.preds.push_back({0, 0, 1, false});
  EXPECT_THROW(run_queries(index, {q}), Error);
}

}  // namespace
}  // namespace pinatubo::apps
