#include "apps/bfs_bitmap.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <queue>

#include "common/error.hpp"

namespace pinatubo::apps {
namespace {

std::vector<std::uint32_t> reference_bfs(const Graph& g, std::uint32_t src) {
  std::vector<std::uint32_t> level(
      g.nodes(), std::numeric_limits<std::uint32_t>::max());
  std::queue<std::uint32_t> q;
  level[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const auto v = q.front();
    q.pop();
    const auto [b, e] = g.neighbors(v);
    for (const auto* w = b; w != e; ++w)
      if (level[*w] == std::numeric_limits<std::uint32_t>::max()) {
        level[*w] = level[v] + 1;
        q.push(*w);
      }
  }
  return level;
}

Graph test_graph(std::uint32_t nodes = 2048) {
  GraphGenParams p;
  p.nodes = nodes;
  p.avg_degree = 6;
  p.communities = 4;
  p.bridge_edges = 8;
  Rng rng(42);
  return generate_graph(p, rng);
}

TEST(BitmapBfs, LevelsMatchReference) {
  const auto g = test_graph();
  const auto res = bitmap_bfs(g);
  const auto ref = reference_bfs(g, 0);
  for (std::uint32_t v = 0; v < g.nodes(); ++v)
    EXPECT_EQ(res.level_of[v], ref[v]) << "vertex " << v;
}

TEST(BitmapBfs, ReachedCountConsistent) {
  const auto g = test_graph();
  const auto res = bitmap_bfs(g);
  std::uint64_t reached = 0;
  for (const auto l : res.level_of)
    reached += l != std::numeric_limits<std::uint32_t>::max();
  EXPECT_EQ(res.reached, reached);
  EXPECT_GT(res.reached, g.nodes() / 2);
}

TEST(BitmapBfs, TraceShape) {
  const auto g = test_graph();
  const auto res = bitmap_bfs(g);
  ASSERT_FALSE(res.trace.ops.empty());
  // Per level: optional multi-OR + INV + AND + OR.
  EXPECT_GE(res.trace.ops.size(), res.levels * 3);
  EXPECT_LE(res.trace.ops.size(), res.levels * 4);
  for (const auto& op : res.trace.ops) {
    EXPECT_EQ(op.bits, g.nodes());
    if (op.op == BitOp::kInv) EXPECT_EQ(op.srcs.size(), 1u);
    if (op.op == BitOp::kAnd) EXPECT_EQ(op.srcs.size(), 2u);
  }
  EXPECT_GT(res.trace.scalar_ops, 0u);
  EXPECT_GT(res.trace.scalar_bytes, 0u);
  EXPECT_GT(res.trace.result_density, 0.0);
}

TEST(BitmapBfs, IdsStayWithinAllocationWindow) {
  // 125 partials + 3 state bitmaps = ids 0..127: one allocation window,
  // the property that makes the ops intra-subarray eligible.
  const auto g = test_graph();
  const auto res = bitmap_bfs(g);
  for (const auto& op : res.trace.ops) {
    EXPECT_LT(op.dst, 128u);
    for (const auto s : op.srcs) EXPECT_LT(s, 128u);
  }
}

TEST(BitmapBfs, MultiRowOrOpsAppear) {
  const auto g = test_graph(8192);
  const auto res = bitmap_bfs(g);
  std::size_t multi = 0;
  for (const auto& op : res.trace.ops)
    multi += op.op == BitOp::kOr && op.srcs.size() > 2;
  EXPECT_GT(multi, 0u);
}

TEST(BitmapBfs, SourceValidation) {
  const auto g = test_graph();
  BfsConfig cfg;
  cfg.source = g.nodes();
  EXPECT_THROW(bitmap_bfs(g, cfg), Error);
  cfg.source = 0;
  cfg.partitions = 0;
  EXPECT_THROW(bitmap_bfs(g, cfg), Error);
}

TEST(BitmapBfs, EdgesTraversedPlausible) {
  const auto g = test_graph();
  const auto res = bitmap_bfs(g);
  // Every directed edge out of a reached vertex is traversed exactly once.
  std::uint64_t expect = 0;
  for (std::uint32_t v = 0; v < g.nodes(); ++v)
    if (res.level_of[v] != std::numeric_limits<std::uint32_t>::max())
      expect += g.degree(v);
  EXPECT_EQ(res.edges_traversed, expect);
}

}  // namespace
}  // namespace pinatubo::apps
