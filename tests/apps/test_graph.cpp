#include "apps/graph.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <queue>

#include "common/error.hpp"

namespace pinatubo::apps {
namespace {

Graph small_graph() {
  // 0-1-2 path plus a 3-4 edge and an isolated vertex 5.
  return Graph(6, {{0, 1}, {1, 2}, {3, 4}});
}

TEST(Graph, CsrConstruction) {
  const auto g = small_graph();
  EXPECT_EQ(g.nodes(), 6u);
  EXPECT_EQ(g.edges(), 6u);  // symmetrized
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(5), 0u);
  const auto [b, e] = g.neighbors(1);
  EXPECT_EQ(e - b, 2);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[1], 2u);
}

TEST(Graph, DropsSelfLoopsAndDuplicates) {
  const Graph g(3, {{0, 0}, {0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.edges(), 2u);  // one undirected edge
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, RejectsBadEdges) {
  EXPECT_THROW(Graph(2, {{0, 5}}), Error);
  EXPECT_THROW(Graph(0, {}), Error);
  const auto g = small_graph();
  EXPECT_THROW(g.neighbors(6), Error);
  EXPECT_THROW(g.degree(6), Error);
}

TEST(Generator, ProducesRequestedShape) {
  GraphGenParams p;
  p.nodes = 4096;
  p.avg_degree = 8;
  p.communities = 4;
  Rng rng(3);
  const auto g = generate_graph(p, rng);
  EXPECT_EQ(g.nodes(), 4096u);
  // Zipf-skewed endpoints collapse many duplicate pairs; after
  // symmetrization + dedup the directed degree lands near the knob.
  EXPECT_GT(g.average_degree(), 5.0);
  EXPECT_LT(g.average_degree(), 20.0);
}

TEST(Generator, Deterministic) {
  GraphGenParams p;
  p.nodes = 1024;
  Rng a(5), b(5);
  const auto g1 = generate_graph(p, a);
  const auto g2 = generate_graph(p, b);
  EXPECT_EQ(g1.edges(), g2.edges());
  for (std::uint32_t v = 0; v < g1.nodes(); ++v)
    EXPECT_EQ(g1.degree(v), g2.degree(v));
}

TEST(Generator, Validates) {
  GraphGenParams p;
  p.nodes = 1;
  Rng rng(1);
  EXPECT_THROW(generate_graph(p, rng), Error);
  p.nodes = 100;
  p.communities = 60;
  EXPECT_THROW(generate_graph(p, rng), Error);
}

std::size_t bfs_levels(const Graph& g) {
  std::vector<std::uint32_t> level(
      g.nodes(), std::numeric_limits<std::uint32_t>::max());
  std::queue<std::uint32_t> q;
  level[0] = 0;
  q.push(0);
  std::uint32_t deepest = 0;
  while (!q.empty()) {
    const auto v = q.front();
    q.pop();
    const auto [b, e] = g.neighbors(v);
    for (const auto* w = b; w != e; ++w)
      if (level[*w] == std::numeric_limits<std::uint32_t>::max()) {
        level[*w] = level[v] + 1;
        deepest = std::max(deepest, level[*w]);
        q.push(*w);
      }
  }
  return deepest;
}

TEST(Presets, TightVsLooseDiameter) {
  // The whole point of the presets: dblp finishes in few levels, the
  // loose datasets crawl through many.
  const auto dblp = build_dataset(dblp2010_like(), 11);
  const auto amazon = build_dataset(amazon2008_like(), 11);
  const auto l_dblp = bfs_levels(dblp);
  const auto l_amazon = bfs_levels(amazon);
  EXPECT_LT(l_dblp, 15u);
  EXPECT_GT(l_amazon, 40u);
}

TEST(Presets, RecordRealDatasetNumbers) {
  EXPECT_EQ(dblp2010_like().real_nodes, 326186u);
  EXPECT_STREQ(dblp2010_like().character, "tight");
  EXPECT_STREQ(eswiki2013_like().character, "loose");
  EXPECT_STREQ(amazon2008_like().character, "loose");
}

}  // namespace
}  // namespace pinatubo::apps
