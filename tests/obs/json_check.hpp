// Minimal recursive-descent JSON validator for trace-exporter tests.
// Checks full syntactic validity (the CI schema check re-parses with a
// real parser; this catches exporter regressions at unit-test speed).
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace pinatubo::testing {

class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.skip_ws();
    if (!c.value()) return false;
    c.skip_ws();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // control chars must be escaped
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace pinatubo::testing
