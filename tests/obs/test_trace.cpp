// TraceSession / MetricsRegistry: span recording, counter accounting,
// disabled-session no-ops, and the Chrome trace-event JSON exporter.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "json_check.hpp"

namespace pinatubo::obs {
namespace {

using pinatubo::testing::JsonChecker;

TEST(Metrics, CountersAccumulate) {
  MetricsRegistry m;
  EXPECT_EQ(m.get("never"), 0u);
  m.add("ops");
  m.add("ops", 4);
  m.add("bytes", 1024);
  EXPECT_EQ(m.get("ops"), 5u);
  EXPECT_EQ(m.get("bytes"), 1024u);
  EXPECT_EQ(m.counters().size(), 2u);
  m.clear();
  EXPECT_EQ(m.get("ops"), 0u);
}

TEST(TraceSession, DisabledDropsEverything) {
  TraceSession s;  // default: disabled
  EXPECT_FALSE(s.enabled());
  const auto t = s.track("ch0/rank0");
  s.span("op", 0.0, 10.0, t);
  s.count("pim.ops", 7);
  EXPECT_TRUE(s.spans().empty());
  EXPECT_EQ(s.metrics().get("pim.ops"), 0u);
  EXPECT_DOUBLE_EQ(s.max_end_ns(), 0.0);
}

TEST(TraceSession, RecordsSpansAndCounters) {
  TraceSession s(true);
  const auto rank = s.track("ch0/rank0");
  const auto bus = s.track("ch0/bus");
  EXPECT_NE(rank, bus);
  EXPECT_EQ(s.track("ch0/rank0"), rank);  // idempotent
  s.span("op0.0 OR r2", 0.0, 120.0, rank, "intra-sub");
  s.span("op0.1 OR r1", 120.0, 40.0, bus, "host-read");
  s.count("pim.ops");
  ASSERT_EQ(s.spans().size(), 2u);
  EXPECT_DOUBLE_EQ(s.max_end_ns(), 160.0);
  EXPECT_EQ(s.spans()[1].track, bus);
  EXPECT_EQ(s.metrics().get("pim.ops"), 1u);
  s.clear();
  EXPECT_TRUE(s.spans().empty());
  EXPECT_TRUE(s.track_names().empty());
}

TEST(TraceSession, SpanValidatesTrackAndTimes) {
  TraceSession s(true);
  EXPECT_THROW(s.span("x", 0.0, 1.0, /*track=*/0), Error);  // unregistered
  const auto t = s.track("t");
  EXPECT_THROW(s.span("x", -1.0, 1.0, t), Error);
  EXPECT_THROW(s.span("x", 0.0, -1.0, t), Error);
}

TEST(TraceSession, ChromeJsonIsValidAndComplete) {
  TraceSession s(true);
  const auto rank = s.track("ch0/rank1");
  s.span("op0.0 OR r2", 10.0, 250.0, rank, "intra-sub");
  s.span("weird \"name\"\n\t\\", 260.0, 5.0, rank);
  s.count("pim.batches");
  const std::string json = s.to_chrome_json();
  EXPECT_TRUE(JsonChecker::valid(json)) << json;
  // Required Chrome trace-event pieces.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("ch0/rank1"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"intra-sub\""), std::string::npos);
  // Reconciliation metadata rides along.
  EXPECT_NE(json.find("\"max_span_end_ns\":265.0"), std::string::npos);
  EXPECT_NE(json.find("\"pim.batches\":1"), std::string::npos);
}

TEST(TraceSession, EmptySessionStillSerializes) {
  const TraceSession s(true);
  EXPECT_TRUE(JsonChecker::valid(s.to_chrome_json()));
}

TEST(JsonCheckerSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonChecker::valid("{}"));
  EXPECT_TRUE(JsonChecker::valid("{\"a\":[1,2.5,-3e-2,\"x\",true,null]}"));
  EXPECT_FALSE(JsonChecker::valid("{"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":}"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":1,}"));
  EXPECT_FALSE(JsonChecker::valid("[1 2]"));
  EXPECT_FALSE(JsonChecker::valid("\"unterminated"));
  EXPECT_FALSE(JsonChecker::valid("{} trailing"));
}

}  // namespace
}  // namespace pinatubo::obs
