// Policy parsing and validation: the fault.*/verify.*/retry.* config
// block must fail loudly on typos, bad enum values, and absurd ranges —
// a reliability campaign that silently runs a different experiment is
// worse than one that crashes.
#include "reliability/policy.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/config.hpp"
#include "common/error.hpp"

namespace pinatubo::reliability {
namespace {

Policy parse(const std::string& text) {
  return policy_from_config(Config::from_string(text));
}

/// The Error message thrown by `parse(text)`; empty when it doesn't throw.
std::string error_of(const std::string& text) {
  try {
    parse(text);
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

TEST(Policy, DefaultsAreAllOff) {
  const Policy p = parse("");
  EXPECT_FALSE(p.fault.enabled);
  EXPECT_EQ(p.verify.sense, SenseVerify::kNone);
  EXPECT_EQ(p.verify.writes, WriteVerify::kNone);
  EXPECT_FALSE(p.detection_enabled());
  EXPECT_FALSE(p.spares_needed());
}

TEST(Policy, EnablingFaultsDefaultsToExactDetection) {
  // Safety first: faults on with no verify mode given means read-back on
  // both paths — campaigns de-tune detection explicitly.
  const Policy p = parse("fault.enabled = true\n");
  EXPECT_TRUE(p.fault.enabled);
  EXPECT_EQ(p.verify.sense, SenseVerify::kReadback);
  EXPECT_EQ(p.verify.writes, WriteVerify::kReadback);
  EXPECT_TRUE(p.detection_enabled());
  EXPECT_TRUE(p.spares_needed());
}

TEST(Policy, ExplicitModesRespected) {
  const Policy p = parse(
      "fault.enabled = true\n"
      "fault.sense_ber = 1e-4\n"
      "verify.sense = double\n"
      "verify.writes = parity\n"
      "retry.max_resense = 5\n"
      "retry.deescalate = false\n"
      "retry.remap = false\n"
      "retry.spare_rows = 9\n");
  EXPECT_EQ(p.verify.sense, SenseVerify::kDouble);
  EXPECT_EQ(p.verify.writes, WriteVerify::kParity);
  EXPECT_DOUBLE_EQ(p.fault.sense_ber, 1e-4);
  EXPECT_EQ(p.retry.max_resense, 5u);
  EXPECT_FALSE(p.retry.deescalate);
  EXPECT_FALSE(p.retry.remap);
  EXPECT_EQ(p.retry.spare_rows, 9u);
  // Detection without remap must not reserve spares.
  EXPECT_TRUE(p.detection_enabled());
  EXPECT_FALSE(p.spares_needed());
}

TEST(Policy, UnknownReliabilityKeysRejectedWithClearMessage) {
  // The typo'd key itself and the list of valid keys must both appear.
  const std::string msg = error_of("fault.stuck_rat = 1e-5\n");
  EXPECT_NE(msg.find("fault.stuck_rat"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fault.stuck_rate"), std::string::npos) << msg;
  EXPECT_FALSE(error_of("verify.mode = readback\n").empty());
  EXPECT_FALSE(error_of("retry.max_resens = 3\n").empty());
}

TEST(Policy, UnrelatedKeysPassThrough) {
  // Only the three reliability prefixes are validated here; machine keys
  // (tech, max_rows, geometry.*) belong to other parsers.
  EXPECT_NO_THROW(parse("tech = pcm\nmax_rows = 8\nthreads = 2\n"));
}

TEST(Policy, BadEnumValuesRejected) {
  EXPECT_THROW(parse("verify.sense = always\n"), Error);
  EXPECT_THROW(parse("verify.writes = ecc\n"), Error);
}

TEST(Policy, RatesMustLieInUnitInterval) {
  EXPECT_THROW(parse("fault.sense_ber = 1.5\n"), Error);
  EXPECT_THROW(parse("fault.stuck_rate = -0.1\n"), Error);
  EXPECT_THROW(parse("fault.wearout_rate = 2\n"), Error);
  EXPECT_NO_THROW(parse("fault.sense_ber = 1.0\n"));
  EXPECT_NO_THROW(parse("fault.sense_ber = 0\n"));
}

TEST(Policy, SaneCapsEnforced) {
  EXPECT_THROW(parse("retry.max_resense = 1001\n"), Error);
  EXPECT_THROW(parse("retry.spare_rows = 65\n"), Error);
  EXPECT_NO_THROW(parse("retry.max_resense = 1000\n"));
  EXPECT_NO_THROW(parse("retry.spare_rows = 64\n"));
}

TEST(Policy, DescribeShowsTheActivePolicy) {
  const Policy p = parse(
      "fault.enabled = true\n"
      "fault.sense_ber = 1e-5\n"
      "verify.sense = readback\n");
  bool saw_ber = false, saw_sense = false, saw_spares = false;
  for (const auto& [k, v] : describe(p)) {
    if (k == "fault.sense_ber") saw_ber = v == "1e-05";
    if (k == "verify.sense") saw_sense = v == "readback";
    if (k == "retry.spare_rows") saw_spares = true;
  }
  EXPECT_TRUE(saw_ber);
  EXPECT_TRUE(saw_sense);
  EXPECT_TRUE(saw_spares);
  // With everything off, the fault/retry detail rows disappear.
  EXPECT_LT(describe(Policy{}).size(), describe(p).size());
}

TEST(Policy, EnumToStringRoundTrips) {
  EXPECT_STREQ(to_string(SenseVerify::kDouble), "double");
  EXPECT_STREQ(to_string(WriteVerify::kParity), "parity");
  EXPECT_STREQ(to_string(SenseVerify::kNone), "none");
}

}  // namespace
}  // namespace pinatubo::reliability
