// The seeded fault model: every mechanism must be a deterministic pure
// function of (seed, coordinates) — that is what makes fault campaigns
// reproducible at any thread count — and the dynamic state (wear-out,
// drift ages) must reset cleanly between campaigns while the static
// stuck-at map (the "chip") survives.
#include "reliability/fault_model.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <span>
#include <vector>

namespace pinatubo::reliability {
namespace {

using Word = FaultModel::Word;

FaultConfig stuck_cfg(double rate, std::uint64_t seed = 3) {
  FaultConfig c;
  c.enabled = true;
  c.seed = seed;
  c.stuck_rate = rate;
  return c;
}

TEST(FaultModel, StuckMapIsPureAndSeeded) {
  FaultModel a(stuck_cfg(1e-3));
  FaultModel b(stuck_cfg(1e-3));       // same seed: same chip
  FaultModel c(stuck_cfg(1e-3, 4));    // different seed: different chip
  std::size_t faults = 0, differs = 0;
  for (std::uint64_t row = 0; row < 16; ++row) {
    for (std::uint64_t w = 0; w < 256; ++w) {
      const auto fa = a.stuck_fault(row, w);
      const auto fb = b.stuck_fault(row, w);
      ASSERT_EQ(fa.has_value(), fb.has_value());
      if (fa) {
        ++faults;
        EXPECT_EQ(fa->mask, fb->mask);
        EXPECT_EQ(fa->stuck_one, fb->stuck_one);
        // Exactly one stuck cell per word (first-order approximation).
        EXPECT_EQ(std::popcount(fa->mask), 1);
      }
      if (fa.has_value() != c.stuck_fault(row, w).has_value()) ++differs;
    }
  }
  // 4096 words at p = 64 * 1e-3: a couple hundred faults expected.
  EXPECT_GT(faults, 100u);
  EXPECT_LT(faults, 600u);
  EXPECT_GT(differs, 0u);
  // Repeated queries never change the answer (const, no hidden state).
  EXPECT_EQ(a.stuck_fault(7, 7).has_value(), b.stuck_fault(7, 7).has_value());
}

TEST(FaultModel, ZeroRateMeansNoStuckFaults) {
  FaultModel m(stuck_cfg(0.0));
  for (std::uint64_t w = 0; w < 512; ++w)
    EXPECT_FALSE(m.stuck_fault(1, w).has_value());
}

TEST(FaultModel, OnWriteAppliesStuckFaultsIdempotently) {
  FaultModel m(stuck_cfg(1e-2));
  std::vector<Word> row(64, ~Word{0});
  m.on_write(5, 1, 0, row, 0, 64);
  const auto once = row;
  // A second write of the same content re-asserts the same faults.
  m.on_write(5, 2, 0, row, 0, 64);
  EXPECT_EQ(row, once);
  // The corruption matches the audited map: stuck-at-0 cells cleared.
  bool any_cleared = false;
  for (std::uint64_t w = 0; w < 64; ++w) {
    if (const auto f = m.stuck_fault(5, w)) {
      EXPECT_EQ(row[w] & f->mask, f->stuck_one ? f->mask : Word{0});
      any_cleared |= !f->stuck_one;
    }
  }
  EXPECT_TRUE(any_cleared);  // p(word) = 0.64: plenty of faults in 64 words
}

TEST(FaultModel, WearoutStartsPastTheKneeAndPersists) {
  FaultConfig c;
  c.enabled = true;
  c.seed = 9;
  c.endurance_cycles = 10;
  c.wearout_rate = 1.0;  // every post-knee write kills a cell
  FaultModel m(c);
  std::vector<Word> row(32, ~Word{0});
  for (std::uint64_t wc = 1; wc <= 10; ++wc) m.on_write(3, wc, 0, row, 0, 32);
  EXPECT_EQ(m.wearout_cells(), 0u);  // healthy below the knee
  m.on_write(3, 11, 0, row, 0, 32);
  m.on_write(3, 12, 0, row, 0, 32);
  EXPECT_EQ(m.wearout_cells(), 2u);
  // Wear faults behave like stuck-at from then on: rewriting all-ones
  // leaves the killed stuck-at-0 cells cleared in the same places.
  std::vector<Word> fresh(32, ~Word{0});
  m.on_write(3, 13, 0, fresh, 0, 32);  // kills one more, re-asserts all
  // An empty window samples nothing but still re-asserts the accumulated
  // faults — the same cells come out corrupted in a fresh image.
  std::vector<Word> again(32, ~Word{0});
  m.on_write(3, 13, 0, again, 0, 0);
  EXPECT_EQ(again, fresh);
  EXPECT_EQ(m.wearout_cells(), 3u);
}

TEST(FaultModel, SenseScaleGrowsWithActivationWidth) {
  FaultConfig c;
  c.enabled = true;
  c.sense_ber = 1e-5;
  FaultModel m(c);
  const std::uint64_t two[] = {1, 2};
  const std::uint64_t four[] = {1, 2, 3, 4};
  std::vector<std::uint64_t> wide(128);
  for (std::size_t i = 0; i < wide.size(); ++i) wide[i] = i;
  // sense_ber is the 2-row baseline; n rows run at n/2 of it — the
  // narrowing-margin effect that makes de-escalation a real rung.
  EXPECT_DOUBLE_EQ(m.sense_scale(0, {two, 2}), 1.0);
  EXPECT_DOUBLE_EQ(m.sense_scale(0, {four, 4}), 2.0);
  EXPECT_DOUBLE_EQ(m.sense_scale(0, wide), 64.0);
  // No BER configured: scale is 0 (flips disabled entirely).
  FaultModel off(stuck_cfg(1e-5));
  EXPECT_DOUBLE_EQ(off.sense_scale(0, {four, 4}), 0.0);
}

TEST(FaultModel, DriftAgesDataFromItsLastWrite) {
  FaultConfig c;
  c.enabled = true;
  c.sense_ber = 1e-5;
  c.drift_rate = 0.1;
  FaultModel m(c);
  std::vector<Word> row(4);
  m.on_write(42, 1, 10, row, 0, 4);  // row 42 written at epoch 10
  const std::uint64_t just42[] = {42};
  EXPECT_DOUBLE_EQ(m.sense_scale(10, {just42, 1}), 1.0);  // fresh
  EXPECT_DOUBLE_EQ(m.sense_scale(30, {just42, 1}), 3.0);  // age 20
  // Unwritten rows count as fresh; the oldest operand dominates.
  const std::uint64_t mixed[] = {42, 99};
  EXPECT_DOUBLE_EQ(m.sense_scale(30, {mixed, 2}), 3.0);
  const std::uint64_t only99[] = {99};
  EXPECT_DOUBLE_EQ(m.sense_scale(30, {only99, 1}), 1.0);
}

TEST(FaultModel, SenseFlipsArePureInEpochAndWord) {
  FaultConfig c;
  c.enabled = true;
  c.seed = 11;
  c.sense_ber = 1e-3;  // p(word) = 0.064 at scale 1
  FaultModel m1(c), m2(c);
  std::size_t flipped = 0;
  for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
    for (std::uint64_t w = 0; w < 256; ++w) {
      const Word f = m1.sense_flips(epoch, w, 1.0);
      EXPECT_EQ(f, m2.sense_flips(epoch, w, 1.0));
      if (f) {
        ++flipped;
        EXPECT_EQ(std::popcount(f), 1);  // single-bit flips
      }
    }
  }
  EXPECT_GT(flipped, 60u);  // ~131 expected over 2048 draws
  EXPECT_EQ(m1.flipped_words(), flipped);
  // A retried sense runs under a NEW epoch, so it redraws: some epoch
  // must flip a word that its successor does not.
  bool redraw = false;
  for (std::uint64_t w = 0; w < 256 && !redraw; ++w)
    redraw = m1.sense_flips(100, w, 1.0) != m1.sense_flips(101, w, 1.0);
  EXPECT_TRUE(redraw);
}

TEST(FaultModel, ResetDropsDynamicStateKeepsTheChip) {
  FaultConfig c = stuck_cfg(1e-3, 21);
  c.sense_ber = 1e-3;
  c.drift_rate = 0.1;
  c.endurance_cycles = 1;
  c.wearout_rate = 1.0;
  FaultModel m(c);
  std::vector<Word> row(8, ~Word{0});
  m.on_write(2, 5, 50, row, 0, 8);        // wear-out kill + drift age
  (void)m.sense_flips(0, 0, 1.0);
  ASSERT_GT(m.wearout_cells(), 0u);
  const std::uint64_t r2[] = {2};
  ASSERT_GT(m.sense_scale(60, {r2, 1}), 1.0);

  // Record the stuck map before the reset.
  std::vector<bool> before;
  for (std::uint64_t w = 0; w < 128; ++w)
    before.push_back(m.stuck_fault(7, w).has_value());

  m.reset();
  EXPECT_EQ(m.wearout_cells(), 0u);
  EXPECT_EQ(m.flipped_words(), 0u);
  EXPECT_DOUBLE_EQ(m.sense_scale(60, {r2, 1}), 1.0);  // age forgotten
  for (std::uint64_t w = 0; w < 128; ++w)
    EXPECT_EQ(m.stuck_fault(7, w).has_value(), before[w]);
}

TEST(FaultModel, BerFromYieldIsNearZeroForHealthyShapes) {
  // PCM multi-row OR sits well inside the derived margin: the circuit
  // layer predicts essentially no sense errors, which is why campaigns
  // set stressed rates explicitly.
  EXPECT_LT(ber_from_yield(nvm::Tech::kPcm, BitOp::kOr, 2, 512), 0.01);
  EXPECT_LT(ber_from_yield(nvm::Tech::kPcm, BitOp::kOr, 64, 512), 0.02);
}

}  // namespace
}  // namespace pinatubo::reliability
