#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/acpim_backend.hpp"
#include "sim/ideal_backend.hpp"
#include "sim/sdram_backend.hpp"
#include "sim/simd_backend.hpp"

namespace pinatubo::sim {
namespace {

TraceOp make_op(BitOp op, unsigned n, std::uint64_t bits) {
  TraceOp t;
  t.op = op;
  t.bits = bits;
  for (unsigned i = 0; i < n; ++i) t.srcs.push_back(i);
  t.dst = n;
  return t;
}

TEST(SdramBackend, OpCostScalesWithOperands) {
  SdramBackend b;
  const auto c2 = b.op_cost(2, 1ull << 19, false);
  const auto c4 = b.op_cost(4, 1ull << 19, false);
  // n+1 AAPs + (n-1) TRAs: 2->(3+1)=4 units, 4->(5+3)=8 units.
  EXPECT_NEAR(c4.time_ns / c2.time_ns, 2.0, 1e-9);
}

TEST(SdramBackend, GroupsSerialize) {
  SdramBackend b;
  const auto c1 = b.op_cost(2, 1ull << 19, false);
  const auto c4 = b.op_cost(2, 1ull << 21, false);
  EXPECT_NEAR(c4.time_ns / c1.time_ns, 4.0, 1e-9);
}

TEST(SdramBackend, AapUsesDramRowCycle) {
  SdramBackend b;
  const auto c = b.op_cost(2, 1, false);
  // 4 row-cycle units of (tRAS + tRP) = 48.75 ns each.
  EXPECT_NEAR(c.time_ns, 4 * 48.75, 1e-6);
}

TEST(SdramBackend, HostReadAddsBusTransfer) {
  SdramBackend b;
  const double dt = b.op_cost(2, 1ull << 19, true).time_ns -
                    b.op_cost(2, 1ull << 19, false).time_ns;
  EXPECT_NEAR(dt, 65536.0 / 12.8, 1.0);
}

TEST(SdramBackend, RejectsBadShapes) {
  SdramBackend b;
  EXPECT_THROW(b.op_cost(1, 100, false), Error);
  EXPECT_THROW(b.op_cost(2, 0, false), Error);
}

TEST(AcPimBackend, StepsScaleWithOperands) {
  AcPimBackend b;
  const auto c2 =
      b.op_cost(BitOp::kOr, 2, 1ull << 19, false, 0.5);
  const auto c5 =
      b.op_cost(BitOp::kOr, 5, 1ull << 19, false, 0.5);
  EXPECT_NEAR(c5.time_ns / c2.time_ns, 4.0, 1e-9);
}

TEST(AcPimBackend, SupportsAllOps) {
  AcPimBackend b;
  for (BitOp op : {BitOp::kOr, BitOp::kAnd, BitOp::kXor}) {
    const auto c = b.op_cost(op, 2, 1 << 16, false, 0.5);
    EXPECT_GT(c.time_ns, 0.0) << to_string(op);
  }
  const auto inv = b.op_cost(BitOp::kInv, 1, 1 << 16, false, 0.5);
  EXPECT_GT(inv.time_ns, 0.0);
}

TEST(AcPimBackend, EnergyComponents) {
  AcPimBackend b;
  const auto c = b.op_cost(BitOp::kOr, 2, 1ull << 19, false, 0.5);
  EXPECT_GT(c.energy.get("acpim.read"), 0.0);
  EXPECT_GT(c.energy.get("acpim.logic"), 0.0);
  EXPECT_GT(c.energy.get("acpim.write"), 0.0);
  // The PCM write of the intermediate dominates its energy.
  EXPECT_GT(c.energy.get("acpim.write"), c.energy.get("acpim.logic"));
}

TEST(AcPimBackend, SlowerThanSdramPerOp) {
  // PCM write recovery (151 ns) vs DRAM row cycles: AC-PIM's per-step
  // cost is higher, and the paper finds it slower in every case.
  AcPimBackend acpim;
  SdramBackend sdram;
  const double ta =
      acpim.op_cost(BitOp::kOr, 2, 1ull << 19, false, 0.5).time_ns;
  const double ts = sdram.op_cost(2, 1ull << 19, false).time_ns;
  EXPECT_GT(ta, ts);
}

TEST(Backends, ExecuteAggregatesOps) {
  OpTrace trace;
  trace.ops.push_back(make_op(BitOp::kOr, 2, 1 << 16));
  trace.ops.push_back(make_op(BitOp::kXor, 2, 1 << 16));
  trace.scalar_ops = 10000;
  trace.scalar_bytes = 1 << 16;

  for (Backend* b : std::initializer_list<Backend*>{
           new SimdBackend(MemKind::kPcm), new SdramBackend(),
           new AcPimBackend(), new IdealBackend()}) {
    const auto r = b->execute(trace);
    EXPECT_GE(r.bitwise.time_ns, 0.0) << b->name();
    EXPECT_GT(r.scalar.time_ns, 0.0) << b->name();
    EXPECT_GT(r.total_time_ns(), 0.0) << b->name();
    EXPECT_FALSE(b->name().empty());
    delete b;
  }
}

TEST(Backends, Names) {
  EXPECT_EQ(SimdBackend(MemKind::kDram).name(), "SIMD-DRAM");
  EXPECT_EQ(SimdBackend(MemKind::kPcm).name(), "SIMD-PCM");
  EXPECT_EQ(SdramBackend().name(), "S-DRAM");
  EXPECT_EQ(AcPimBackend().name(), "AC-PIM");
  EXPECT_EQ(IdealBackend().name(), "Ideal");
}

}  // namespace
}  // namespace pinatubo::sim
