#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "apps/vector_workload.hpp"
#include "common/error.hpp"

namespace pinatubo::sim {
namespace {

OpTrace sample() {
  OpTrace t;
  t.name = "sample";
  t.scalar_ops = 1234;
  t.scalar_bytes = 5678;
  t.result_density = 0.25;
  t.ops.push_back({BitOp::kOr, {1, 2, 3}, 3, 4096, false});
  t.ops.push_back({BitOp::kXor, {3, 4}, 5, 4096, true});
  t.ops.push_back({BitOp::kInv, {5}, 6, 4096, false});
  return t;
}

bool traces_equal(const OpTrace& a, const OpTrace& b) {
  if (a.name != b.name || a.scalar_ops != b.scalar_ops ||
      a.scalar_bytes != b.scalar_bytes ||
      std::abs(a.result_density - b.result_density) > 1e-12 ||
      a.ops.size() != b.ops.size())
    return false;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    const auto& x = a.ops[i];
    const auto& y = b.ops[i];
    if (x.op != y.op || x.srcs != y.srcs || x.dst != y.dst ||
        x.bits != y.bits || x.host_reads_result != y.host_reads_result)
      return false;
  }
  return true;
}

TEST(TraceIo, RoundTrip) {
  std::stringstream ss;
  save_trace(sample(), ss);
  EXPECT_TRUE(traces_equal(load_trace(ss), sample()));
}

TEST(TraceIo, FormatIsReadable) {
  std::stringstream ss;
  save_trace(sample(), ss);
  const auto text = ss.str();
  EXPECT_NE(text.find("trace sample"), std::string::npos);
  EXPECT_NE(text.find("op OR 4096 3 0 1 2 3"), std::string::npos);
  EXPECT_NE(text.find("op XOR 4096 5 1 3 4"), std::string::npos);
  EXPECT_NE(text.find("end"), std::string::npos);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss;
  ss << "# a comment\n\ntrace t\nscalar 1 2 0.5\n\n# more\nop INV 8 1 0 0\nend\n";
  const auto t = load_trace(ss);
  EXPECT_EQ(t.name, "t");
  ASSERT_EQ(t.ops.size(), 1u);
  EXPECT_EQ(t.ops[0].op, BitOp::kInv);
}

TEST(TraceIo, RejectsMalformedStreams) {
  {
    std::stringstream ss("op OR 8 1 0 2\nend\n");  // no header
    EXPECT_THROW(load_trace(ss), Error);
  }
  {
    std::stringstream ss("trace t\nscalar 1 2 0.5\n");  // no end
    EXPECT_THROW(load_trace(ss), Error);
  }
  {
    std::stringstream ss("trace t\nop NAND 8 1 0 2\nend\n");  // bad op
    EXPECT_THROW(load_trace(ss), Error);
  }
  {
    std::stringstream ss("trace t\nop OR 8 1 0\nend\n");  // no operands
    EXPECT_THROW(load_trace(ss), Error);
  }
}

TEST(TraceIo, FileRoundTripOfRealWorkload) {
  const auto trace =
      apps::vector_trace(apps::VectorSpec::parse("14-8-3s"));
  const std::string path = "/tmp/pinatubo_trace_test.txt";
  save_trace_file(trace, path);
  EXPECT_TRUE(traces_equal(load_trace_file(path), trace));
  EXPECT_THROW(load_trace_file("/nonexistent/dir/x.txt"), Error);
}

}  // namespace
}  // namespace pinatubo::sim
