#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::sim {
namespace {

CacheLevelConfig tiny(const char* name, std::uint64_t size, unsigned assoc) {
  return {name, size, assoc, 64, 1.0, 100.0, 100.0};
}

TEST(CacheLevel, HitAfterInstall) {
  CacheLevel l(tiny("L1", 1024, 2));
  EXPECT_FALSE(l.access(5));
  l.install(5);
  EXPECT_TRUE(l.access(5));
  EXPECT_EQ(l.hits(), 1u);
  EXPECT_EQ(l.misses(), 1u);
}

TEST(CacheLevel, LruEviction) {
  // 1024 B / 64 B = 16 lines, 2-way -> 8 sets.  Lines 0, 8, 16 map to set 0.
  CacheLevel l(tiny("L1", 1024, 2));
  l.install(0);
  l.install(8);
  l.access(0);        // 0 becomes MRU
  l.install(16);      // evicts 8 (LRU)
  EXPECT_TRUE(l.access(0));
  EXPECT_FALSE(l.access(8));
  EXPECT_TRUE(l.access(16));
}

TEST(CacheLevel, InstallReportsVictim) {
  CacheLevel l(tiny("L1", 128, 1));  // 2 sets, direct-mapped
  EXPECT_EQ(l.install(0), -1);
  EXPECT_EQ(l.install(2), 0);  // same set, evicts 0
}

TEST(CacheLevel, InvalidateRemoves) {
  CacheLevel l(tiny("L1", 1024, 2));
  l.install(3);
  l.invalidate(3);
  EXPECT_FALSE(l.access(3));
}

TEST(CacheLevel, ConfigValidation) {
  EXPECT_THROW(CacheLevel(tiny("bad", 0, 1)), Error);
  EXPECT_THROW(CacheLevel(tiny("bad", 1000, 3)), Error);  // sets not 2^k
}

TEST(CacheHierarchy, ServesFromClosestLevel) {
  CacheHierarchy h({tiny("L1", 1024, 2), tiny("L2", 8192, 4)});
  EXPECT_EQ(h.access(0, false).served_by_level, 2u);  // memory
  EXPECT_EQ(h.access(0, false).served_by_level, 0u);  // L1 now
  EXPECT_EQ(h.memory_lines(), 1u);
}

TEST(CacheHierarchy, L2CatchesL1Evictions) {
  CacheHierarchy h({tiny("L1", 128, 1), tiny("L2", 8192, 4)});
  h.access(0 * 64, false);
  h.access(2 * 64, false);  // evicts line 0 from L1 (same set), still in L2
  const auto r = h.access(0 * 64, false);
  EXPECT_EQ(r.served_by_level, 1u);
}

TEST(CacheHierarchy, StreamingMissesEveryLine) {
  CacheHierarchy h(haswell_cache_config());
  // 32 MiB stream: far beyond L3.
  const std::uint64_t lines = 32ull * 1024 * 1024 / 64;
  for (std::uint64_t i = 0; i < lines; ++i) h.access(i * 64, false);
  EXPECT_EQ(h.memory_lines(), lines);
}

TEST(CacheHierarchy, SmallWorkingSetStaysCached) {
  CacheHierarchy h(haswell_cache_config());
  const std::uint64_t lines = 16 * 1024 / 64;  // 16 KiB fits L1
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t i = 0; i < lines; ++i) h.access(i * 64, false);
  EXPECT_EQ(h.memory_lines(), lines);  // only the first pass missed
  const auto served = h.served_lines();
  EXPECT_EQ(served[0], 2 * lines);
}

TEST(CacheHierarchy, WriteCounting) {
  CacheHierarchy h(haswell_cache_config());
  h.access(0, true);
  h.access(64, false);
  EXPECT_EQ(h.write_lines(), 1u);
}

TEST(CacheHierarchy, FlushForgetsEverything) {
  CacheHierarchy h(haswell_cache_config());
  h.access(0, false);
  h.access(0, false);
  h.flush();
  EXPECT_EQ(h.memory_lines(), 0u);
  EXPECT_EQ(h.access(0, false).served_by_level, h.levels());
}

TEST(CacheHierarchy, HaswellShape) {
  const auto cfg = haswell_cache_config();
  ASSERT_EQ(cfg.size(), 3u);
  EXPECT_EQ(cfg[0].size_bytes, 32u * 1024);
  EXPECT_EQ(cfg[1].size_bytes, 256u * 1024);
  EXPECT_EQ(cfg[2].size_bytes, 6u * 1024 * 1024);
}

}  // namespace
}  // namespace pinatubo::sim
