#include "sim/cpu_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::sim {
namespace {

TraceOp or2(std::uint64_t bits, std::uint64_t base_id = 0) {
  TraceOp op;
  op.op = BitOp::kOr;
  op.srcs = {base_id, base_id + 1};
  op.dst = base_id + 2;
  op.bits = bits;
  return op;
}

TEST(StreamParams, PcmSlowerThanDram) {
  const auto d = stream_params(MemKind::kDram);
  const auto p = stream_params(MemKind::kPcm);
  EXPECT_GT(d.read_gbps, p.read_gbps);
  EXPECT_GT(d.write_gbps, p.write_gbps);
  EXPECT_LT(d.latency_ns, p.latency_ns);
  EXPECT_GT(p.write_pj_per_bit, d.write_pj_per_bit);
}

TEST(SimdCpuModel, ComputeCeiling) {
  SimdCpuModel cpu({}, MemKind::kDram);
  // Single-threaded kernel: 1 core * 16 B * 3.3 GHz = 52.8 GB/s.
  EXPECT_NEAR(cpu.compute_gbps(), 52.8, 0.1);
  CpuConfig all;
  all.bulk_cores = 4;
  SimdCpuModel wide(all, MemKind::kDram);
  EXPECT_NEAR(wide.compute_gbps(), 211.2, 0.1);
}

TEST(SimdCpuModel, LargeOpIsMemoryBound) {
  SimdCpuModel cpu({}, MemKind::kDram);
  const std::uint64_t bits = 1ull << 26;  // 8 MiB per operand
  const auto cost = cpu.bulk_op(or2(bits));
  const double bytes = 3.0 * (bits / 8.0);
  // Time must be at least read+write streaming time and far above the
  // compute ceiling's time.
  EXPECT_GT(cost.time_ns, bytes / 12.0);
  EXPECT_GT(cost.time_ns, 3 * bytes / cpu.compute_gbps());
}

TEST(SimdCpuModel, CacheResidentOpIsFast) {
  SimdCpuModel cpu({}, MemKind::kDram);
  const std::uint64_t bits = 1ull << 17;  // 16 KiB operands, fit in caches
  cpu.bulk_op(or2(bits));                 // warm
  const auto warm = cpu.bulk_op(or2(bits));
  // Served from caches: no memory reads.
  EXPECT_EQ(warm.energy.get("mem.read"), 0.0);
  // And much faster than the same op streamed from memory.
  SimdCpuModel cold({}, MemKind::kDram);
  const auto first = cold.bulk_op(or2(bits));
  EXPECT_LT(warm.time_ns, first.time_ns);
}

TEST(SimdCpuModel, PcmWritePenaltyShows) {
  const std::uint64_t bits = 1ull << 26;
  SimdCpuModel dram({}, MemKind::kDram);
  SimdCpuModel pcm({}, MemKind::kPcm);
  const double td = dram.bulk_op(or2(bits)).time_ns;
  const double tp = pcm.bulk_op(or2(bits)).time_ns;
  EXPECT_GT(tp, 1.2 * td);
}

TEST(SimdCpuModel, EnergyHasCoreAndMemoryParts) {
  SimdCpuModel cpu({}, MemKind::kPcm);
  const auto cost = cpu.bulk_op(or2(1ull << 26));
  EXPECT_GT(cost.energy.get("cpu.core"), 0.0);
  EXPECT_GT(cost.energy.get("mem.read"), 0.0);
  EXPECT_GT(cost.energy.get("mem.write"), 0.0);
  // Core power dominates on streaming kernels (40 W for the whole op).
  EXPECT_GT(cost.energy.get("cpu.core"), cost.energy.get("mem.read"));
}

TEST(SimdCpuModel, MultiOperandScalesLinearly) {
  SimdCpuModel cpu({}, MemKind::kPcm);
  TraceOp op128 = or2(1ull << 23);
  op128.srcs.clear();
  for (std::uint64_t i = 0; i < 128; ++i) op128.srcs.push_back(i);
  const auto c2 = cpu.bulk_op(or2(1ull << 23, 1000));
  const auto c128 = cpu.bulk_op(op128);
  // Both ops are miss-latency bound on one core, so the ratio follows the
  // read-line counts: 130/3 ~= 43.
  EXPECT_NEAR(c128.time_ns / c2.time_ns, 43.0, 5.0);
}

TEST(SimdCpuModel, ScalarCost) {
  SimdCpuModel cpu({}, MemKind::kDram);
  const auto c = cpu.scalar(6'600'000, 0);
  // 6.6e6 ops at 2 IPC, 3.3 GHz -> 1 ms.
  EXPECT_NEAR(c.time_ns, 1e6, 1e3);
  EXPECT_GT(c.energy.get("cpu.core"), 0.0);
  const auto with_mem = cpu.scalar(1000, 1 << 20);
  EXPECT_GT(with_mem.time_ns, c.time_ns / 1000);
  EXPECT_GT(with_mem.energy.get("mem.read"), 0.0);
}

TEST(SimdCpuModel, WordAlignedFootprint) {
  // The host kernels process whole 64-bit words, so the baseline is charged
  // per word: a sub-word tail costs the same as the rounded-up size, and
  // word-multiple sizes (every figure's operand size) are charged exactly
  // (bits+7)/8 bytes — the figure 10/11 baseline ratios are unaffected by
  // the word-parallel refactor.
  SimdCpuModel a({}, MemKind::kPcm), b({}, MemKind::kPcm);
  const auto exact = a.bulk_op(or2(1ull << 20));
  const auto tail = b.bulk_op(or2((1ull << 20) - 17));
  EXPECT_EQ(tail.time_ns, exact.time_ns);
  EXPECT_EQ(tail.energy.get("mem.read"), exact.energy.get("mem.read"));
  EXPECT_EQ(tail.energy.get("mem.write"), exact.energy.get("mem.write"));
  // And a whole extra word does cost more.
  SimdCpuModel c({}, MemKind::kPcm);
  const auto wider = c.bulk_op(or2((1ull << 20) + 64 * 64 * 8));
  EXPECT_GT(wider.time_ns, exact.time_ns);
}

TEST(SimdCpuModel, RejectsBadOps) {
  SimdCpuModel cpu({}, MemKind::kDram);
  TraceOp empty;
  empty.bits = 100;
  EXPECT_THROW(cpu.bulk_op(empty), Error);
  TraceOp zero = or2(0);
  EXPECT_THROW(cpu.bulk_op(zero), Error);
}

TEST(MemKindNames, Printable) {
  EXPECT_STREQ(to_string(MemKind::kDram), "DRAM");
  EXPECT_STREQ(to_string(MemKind::kPcm), "PCM");
}

}  // namespace
}  // namespace pinatubo::sim
