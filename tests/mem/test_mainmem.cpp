#include "mem/mainmem.hpp"
#include "mem/commands.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::mem {
namespace {

Geometry small_geometry() {
  Geometry g;
  g.ranks_per_channel = 1;
  g.banks_per_chip = 2;
  g.subarrays_per_bank = 2;
  g.rows_per_subarray = 8;
  g.chips_per_rank = 2;
  g.row_slice_bits = 64;
  g.mats_per_subarray = 2;
  g.sa_mux_share = 4;
  return g;
}

class MainMemoryTest : public ::testing::Test {
 protected:
  MainMemoryTest() : mem_(small_geometry(), nvm::Tech::kPcm) {}

  BitVector random_row(std::uint64_t seed) {
    Rng rng(seed);
    return BitVector::random(mem_.geometry().rank_row_bits(), 0.5, rng);
  }

  MainMemory mem_;
};

TEST_F(MainMemoryTest, UnwrittenRowsReadZero) {
  EXPECT_FALSE(mem_.row_exists({0, 0, 0, 0, 0}));
  EXPECT_TRUE(mem_.read_row({0, 0, 0, 0, 0}).none());
}

TEST_F(MainMemoryTest, WriteReadRoundTrip) {
  const auto data = random_row(1);
  const RowAddr a{0, 0, 1, 1, 3};
  mem_.write_row(a, data);
  EXPECT_TRUE(mem_.row_exists(a));
  EXPECT_EQ(mem_.read_row(a), data);
}

TEST_F(MainMemoryTest, WriteSizeChecked) {
  EXPECT_THROW(mem_.write_row({0, 0, 0, 0, 0}, BitVector(7)), Error);
}

TEST_F(MainMemoryTest, PartialWriteRead) {
  const RowAddr a{0, 0, 0, 1, 2};
  mem_.write_row_partial(a, 10, BitVector::from_string("1101"));
  const auto back = mem_.read_row_partial(a, 10, 4);
  EXPECT_EQ(back.to_string(), "1101");
  // Neighbouring bits untouched.
  EXPECT_FALSE(mem_.read_row(a).get(9));
  EXPECT_FALSE(mem_.read_row(a).get(14));
}

TEST_F(MainMemoryTest, PartialBoundsChecked) {
  const RowAddr a{0, 0, 0, 0, 0};
  const auto row_bits = mem_.geometry().rank_row_bits();
  EXPECT_THROW(mem_.write_row_partial(a, row_bits - 2, BitVector(4)), Error);
  EXPECT_THROW(mem_.read_row_partial(a, row_bits, 1), Error);
}

TEST_F(MainMemoryTest, SenseRowsOrMatchesBoolean) {
  const RowAddr r0{0, 0, 0, 0, 0}, r1{0, 0, 0, 0, 1}, r2{0, 0, 0, 0, 2};
  const auto a = random_row(2), b = random_row(3), c = random_row(4);
  mem_.write_row(r0, a);
  mem_.write_row(r1, b);
  mem_.write_row(r2, c);
  // 2-row and 3-row... 3 is not a supported power-of-two shape? The CSA
  // supports any n with sufficient ratio; 3-row OR ratio on PCM is ample.
  EXPECT_EQ(mem_.sense_rows({r0, r1}, BitOp::kOr), (a | b));
  EXPECT_EQ(mem_.sense_rows({r0, r1, r2}, BitOp::kOr), (a | b | c));
  EXPECT_EQ(mem_.sense_rows({r0, r1}, BitOp::kAnd), (a & b));
  EXPECT_EQ(mem_.sense_rows({r0, r1}, BitOp::kXor), (a ^ b));
}

TEST_F(MainMemoryTest, SenseRejectsCrossSubarray) {
  const RowAddr r0{0, 0, 0, 0, 0}, other_sub{0, 0, 0, 1, 0};
  EXPECT_THROW(mem_.sense_rows({r0, other_sub}, BitOp::kOr), Error);
}

TEST_F(MainMemoryTest, SenseRejectsUnsupportedShapes) {
  std::vector<RowAddr> four;
  for (unsigned i = 0; i < 4; ++i) four.push_back({0, 0, 0, 0, i});
  EXPECT_THROW(mem_.sense_rows(four, BitOp::kAnd), Error);  // 4-row AND
  EXPECT_THROW(mem_.sense_rows({four[0], four[1], four[2]}, BitOp::kXor),
               Error);
}

TEST_F(MainMemoryTest, SttLimitedToTwoRowOr) {
  MainMemory stt(small_geometry(), nvm::Tech::kSttMram);
  std::vector<RowAddr> rows;
  for (unsigned i = 0; i < 4; ++i) rows.push_back({0, 0, 0, 0, i});
  EXPECT_NO_THROW(stt.sense_rows({rows[0], rows[1]}, BitOp::kOr));
  EXPECT_THROW(stt.sense_rows(rows, BitOp::kOr), Error);
}

TEST_F(MainMemoryTest, BufferOpAnyPlacement) {
  const RowAddr a{0, 0, 0, 0, 0}, b{0, 0, 1, 1, 5};  // different banks
  const auto va = random_row(5), vb = random_row(6);
  mem_.write_row(a, va);
  mem_.write_row(b, vb);
  EXPECT_EQ(mem_.buffer_op(a, b, BitOp::kOr), (va | vb));
  EXPECT_EQ(mem_.buffer_op(a, b, BitOp::kXor), (va ^ vb));
  EXPECT_EQ(mem_.buffer_op(a, b, BitOp::kInv), ~va);
}

TEST_F(MainMemoryTest, AnalogFidelityMatchesNominalWithinMargin) {
  MainMemory analog(small_geometry(), nvm::Tech::kPcm,
                    SenseFidelity::kAnalog, 99);
  const RowAddr r0{0, 0, 0, 0, 0}, r1{0, 0, 0, 0, 1};
  const auto a = random_row(7), b = random_row(8);
  analog.write_row(r0, a);
  analog.write_row(r1, b);
  // PCM 2-row OR has huge margin: analog sensing (with variation) must
  // still be bit-exact.
  EXPECT_EQ(analog.sense_rows({r0, r1}, BitOp::kOr), (a | b));
  EXPECT_EQ(analog.sense_rows({r0, r1}, BitOp::kAnd), (a & b));
}

TEST_F(MainMemoryTest, AnalogSensingMultiRowOrStaysExactAt128) {
  // 128-row OR at the derived margin edge: with the preset variation the
  // MC yield is ~1, so a full row op should still be exact w.h.p.
  Geometry g = small_geometry();
  g.rows_per_subarray = 128;
  MainMemory analog(g, nvm::Tech::kPcm, SenseFidelity::kAnalog, 7);
  std::vector<RowAddr> rows;
  BitVector expect(g.rank_row_bits());
  Rng rng(123);
  for (unsigned i = 0; i < 128; ++i) {
    const RowAddr r{0, 0, 0, 0, i};
    const auto data = BitVector::random(g.rank_row_bits(), 0.02, rng);
    analog.write_row(r, data);
    expect |= data;
    rows.push_back(r);
  }
  EXPECT_EQ(analog.sense_rows(rows, BitOp::kOr), expect);
}

TEST_F(MainMemoryTest, RowsWrittenCountsDistinct) {
  EXPECT_EQ(mem_.rows_written(), 0u);
  mem_.write_row({0, 0, 0, 0, 0}, random_row(9));
  mem_.write_row({0, 0, 0, 0, 0}, random_row(10));
  mem_.write_row({0, 0, 0, 0, 1}, random_row(11));
  EXPECT_EQ(mem_.rows_written(), 2u);
}

TEST(Commands, ToStringReadable) {
  Command c{CmdKind::kModeSet, {0, 0, 1, 2, 3}, BitOp::kXor, 0};
  EXPECT_EQ(c.to_string(), "MRS4 ch0.rk0.bk1.sa2.row3 op=XOR");
  Command s{CmdKind::kPimSense, {0, 0, 0, 0, 0}, BitOp::kOr, 5};
  EXPECT_NE(s.to_string().find("PIM_SENSE"), std::string::npos);
  EXPECT_NE(s.to_string().find("aux=5"), std::string::npos);
}

}  // namespace
}  // namespace pinatubo::mem
