#include "mem/mainmem.hpp"
#include "mem/commands.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace pinatubo::mem {
namespace {

Geometry small_geometry() {
  Geometry g;
  g.ranks_per_channel = 1;
  g.banks_per_chip = 2;
  g.subarrays_per_bank = 2;
  g.rows_per_subarray = 8;
  g.chips_per_rank = 2;
  g.row_slice_bits = 64;
  g.mats_per_subarray = 2;
  g.sa_mux_share = 4;
  return g;
}

class MainMemoryTest : public ::testing::Test {
 protected:
  MainMemoryTest() : mem_(small_geometry(), nvm::Tech::kPcm) {}

  BitVector random_row(std::uint64_t seed) {
    Rng rng(seed);
    return BitVector::random(mem_.geometry().rank_row_bits(), 0.5, rng);
  }

  MainMemory mem_;
};

TEST_F(MainMemoryTest, UnwrittenRowsReadZero) {
  EXPECT_FALSE(mem_.row_exists({0, 0, 0, 0, 0}));
  EXPECT_TRUE(mem_.read_row({0, 0, 0, 0, 0}).none());
}

TEST_F(MainMemoryTest, WriteReadRoundTrip) {
  const auto data = random_row(1);
  const RowAddr a{0, 0, 1, 1, 3};
  mem_.write_row(a, data);
  EXPECT_TRUE(mem_.row_exists(a));
  EXPECT_EQ(mem_.read_row(a), data);
}

TEST_F(MainMemoryTest, WriteSizeChecked) {
  EXPECT_THROW(mem_.write_row({0, 0, 0, 0, 0}, BitVector(7)), Error);
}

TEST_F(MainMemoryTest, PartialWriteRead) {
  const RowAddr a{0, 0, 0, 1, 2};
  mem_.write_row_partial(a, 10, BitVector::from_string("1101"));
  const auto back = mem_.read_row_partial(a, 10, 4);
  EXPECT_EQ(back.to_string(), "1101");
  // Neighbouring bits untouched.
  EXPECT_FALSE(mem_.read_row(a).get(9));
  EXPECT_FALSE(mem_.read_row(a).get(14));
}

TEST_F(MainMemoryTest, PartialBoundsChecked) {
  const RowAddr a{0, 0, 0, 0, 0};
  const auto row_bits = mem_.geometry().rank_row_bits();
  EXPECT_THROW(mem_.write_row_partial(a, row_bits - 2, BitVector(4)), Error);
  EXPECT_THROW(mem_.read_row_partial(a, row_bits, 1), Error);
}

TEST_F(MainMemoryTest, SenseRowsOrMatchesBoolean) {
  const RowAddr r0{0, 0, 0, 0, 0}, r1{0, 0, 0, 0, 1}, r2{0, 0, 0, 0, 2};
  const auto a = random_row(2), b = random_row(3), c = random_row(4);
  mem_.write_row(r0, a);
  mem_.write_row(r1, b);
  mem_.write_row(r2, c);
  // 2-row and 3-row... 3 is not a supported power-of-two shape? The CSA
  // supports any n with sufficient ratio; 3-row OR ratio on PCM is ample.
  EXPECT_EQ(mem_.sense_rows({r0, r1}, BitOp::kOr), (a | b));
  EXPECT_EQ(mem_.sense_rows({r0, r1, r2}, BitOp::kOr), (a | b | c));
  EXPECT_EQ(mem_.sense_rows({r0, r1}, BitOp::kAnd), (a & b));
  EXPECT_EQ(mem_.sense_rows({r0, r1}, BitOp::kXor), (a ^ b));
}

TEST_F(MainMemoryTest, SenseRejectsCrossSubarray) {
  const RowAddr r0{0, 0, 0, 0, 0}, other_sub{0, 0, 0, 1, 0};
  EXPECT_THROW(mem_.sense_rows({r0, other_sub}, BitOp::kOr), Error);
}

TEST_F(MainMemoryTest, SenseRejectsUnsupportedShapes) {
  std::vector<RowAddr> four;
  for (unsigned i = 0; i < 4; ++i) four.push_back({0, 0, 0, 0, i});
  EXPECT_THROW(mem_.sense_rows(four, BitOp::kAnd), Error);  // 4-row AND
  EXPECT_THROW(mem_.sense_rows({four[0], four[1], four[2]}, BitOp::kXor),
               Error);
}

TEST_F(MainMemoryTest, SttLimitedToTwoRowOr) {
  MainMemory stt(small_geometry(), nvm::Tech::kSttMram);
  std::vector<RowAddr> rows;
  for (unsigned i = 0; i < 4; ++i) rows.push_back({0, 0, 0, 0, i});
  EXPECT_NO_THROW(stt.sense_rows({rows[0], rows[1]}, BitOp::kOr));
  EXPECT_THROW(stt.sense_rows(rows, BitOp::kOr), Error);
}

TEST_F(MainMemoryTest, BufferOpAnyPlacement) {
  const RowAddr a{0, 0, 0, 0, 0}, b{0, 0, 1, 1, 5};  // different banks
  const auto va = random_row(5), vb = random_row(6);
  mem_.write_row(a, va);
  mem_.write_row(b, vb);
  EXPECT_EQ(mem_.buffer_op(a, b, BitOp::kOr), (va | vb));
  EXPECT_EQ(mem_.buffer_op(a, b, BitOp::kXor), (va ^ vb));
  EXPECT_EQ(mem_.buffer_op(a, b, BitOp::kInv), ~va);
}

TEST_F(MainMemoryTest, AnalogFidelityMatchesNominalWithinMargin) {
  MainMemory analog(small_geometry(), nvm::Tech::kPcm,
                    SenseFidelity::kAnalog, 99);
  const RowAddr r0{0, 0, 0, 0, 0}, r1{0, 0, 0, 0, 1};
  const auto a = random_row(7), b = random_row(8);
  analog.write_row(r0, a);
  analog.write_row(r1, b);
  // PCM 2-row OR has huge margin: analog sensing (with variation) must
  // still be bit-exact.
  EXPECT_EQ(analog.sense_rows({r0, r1}, BitOp::kOr), (a | b));
  EXPECT_EQ(analog.sense_rows({r0, r1}, BitOp::kAnd), (a & b));
}

TEST_F(MainMemoryTest, AnalogSensingMultiRowOrStaysExactAt128) {
  // 128-row OR at the derived margin edge: with the preset variation the
  // MC yield is ~1, so a full row op should still be exact w.h.p.
  Geometry g = small_geometry();
  g.rows_per_subarray = 128;
  MainMemory analog(g, nvm::Tech::kPcm, SenseFidelity::kAnalog, 7);
  std::vector<RowAddr> rows;
  BitVector expect(g.rank_row_bits());
  Rng rng(123);
  for (unsigned i = 0; i < 128; ++i) {
    const RowAddr r{0, 0, 0, 0, i};
    const auto data = BitVector::random(g.rank_row_bits(), 0.02, rng);
    analog.write_row(r, data);
    expect |= data;
    rows.push_back(r);
  }
  EXPECT_EQ(analog.sense_rows(rows, BitOp::kOr), expect);
}

TEST_F(MainMemoryTest, PartialReadWriteAtWordBoundaries) {
  // Exercise the masked whole-word path at offset 0, mid-word, exact word
  // boundaries, and a ragged tail; compare against a per-bit shadow row.
  const RowAddr a{0, 0, 1, 0, 4};
  const std::size_t row_bits = mem_.geometry().rank_row_bits();
  BitVector shadow(row_bits);
  Rng rng(42);
  const struct {
    std::size_t offset, len;
  } cases[] = {{0, 64}, {0, 37}, {5, 64}, {37, 91}, {64, 64},
               {63, 2},  {100, 27}, {row_bits - 13, 13}};
  for (const auto& c : cases) {
    const auto chunk = BitVector::random(c.len, 0.5, rng);
    mem_.write_row_partial(a, c.offset, chunk);
    for (std::size_t i = 0; i < c.len; ++i)
      shadow.set(c.offset + i, chunk.get(i));
    EXPECT_EQ(mem_.read_row(a), shadow);
    EXPECT_EQ(mem_.read_row_partial(a, c.offset, c.len), chunk);
  }
  // Partial reads at the same boundary mix.
  EXPECT_EQ(mem_.read_row_partial(a, 60, 10).to_string(),
            mem_.read_row(a).to_string().substr(60, 10));
}

TEST_F(MainMemoryTest, ArenaUnwrittenRowsReadZeroWithoutMaterializing) {
  const RowAddr never{0, 0, 1, 1, 7};
  EXPECT_TRUE(mem_.read_row(never).none());
  EXPECT_TRUE(mem_.read_row_partial(never, 3, 50).none());
  EXPECT_EQ(mem_.rows_written(), 0u);  // reads must not allocate
  EXPECT_FALSE(mem_.row_exists(never));
  // A partial write materializes the row zero-filled around the data.
  mem_.write_row_partial(never, 64, BitVector::from_string("11"));
  EXPECT_EQ(mem_.rows_written(), 1u);
  EXPECT_TRUE(mem_.row_exists(never));
  EXPECT_EQ(mem_.read_row(never).popcount(), 2u);
}

TEST_F(MainMemoryTest, RowViewZeroCopyTracksWrites) {
  const RowAddr a{0, 0, 0, 1, 1};
  EXPECT_EQ(mem_.row_view(a).size(),
            (mem_.geometry().rank_row_bits() + 63) / 64);
  const auto data = random_row(12);
  mem_.write_row(a, data);
  const auto view = mem_.row_view(a);
  EXPECT_EQ(BitVector::from_words(view, data.size()), data);
  // Views of written rows are stable across later writes to other rows
  // (slabs never move) and follow in-place updates.
  const auto other = random_row(13);
  for (unsigned r = 0; r < 4; ++r) mem_.write_row({0, 0, 1, 0, r}, other);
  const auto update = random_row(14);
  mem_.write_row(a, update);
  EXPECT_EQ(BitVector::from_words(view, update.size()), update);
}

TEST_F(MainMemoryTest, AnalogSensingDeterministicAcrossThreadCounts) {
  // Same seed => bit-identical analog results for 1, 2, and N threads —
  // the counter-based RNG contract of the batched sensing path.
  Geometry g = small_geometry();
  g.row_slice_bits = 1024;  // enough words for real sharding
  const auto run = [&](unsigned threads) {
    ThreadPool::set_global_threads(threads);
    MainMemory analog(g, nvm::Tech::kSttMram, SenseFidelity::kAnalog, 77);
    const RowAddr r0{0, 0, 0, 0, 0}, r1{0, 0, 0, 0, 1};
    Rng rng(5);
    analog.write_row(r0, BitVector::random(g.rank_row_bits(), 0.5, rng));
    analog.write_row(r1, BitVector::random(g.rank_row_bits(), 0.5, rng));
    // STT-MRAM's thin margins make occasional analog flips likely, which
    // is exactly what must reproduce across thread counts.
    // OR-2, XOR-2 and INV are the shapes the SA supports on STT-MRAM
    // (AND-2's boundary ratio is below the reliability floor).
    std::vector<BitVector> out;
    out.push_back(analog.sense_rows({r0, r1}, BitOp::kOr));
    out.push_back(analog.sense_rows({r0, r1}, BitOp::kXor));
    out.push_back(analog.sense_rows({r0}, BitOp::kInv));
    return out;
  };
  const auto one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(7));
  ThreadPool::set_global_threads(0);
}

TEST_F(MainMemoryTest, AnalogSensesDifferOverEpochs) {
  // Each sense draws a fresh variation sample: two identical marginal ops
  // are keyed by different epochs, so their (noisy) results may differ —
  // and reconstructing the memory reproduces the exact same sequence.
  Geometry g = small_geometry();
  g.row_slice_bits = 1024;
  const auto run = [&] {
    MainMemory analog(g, nvm::Tech::kSttMram, SenseFidelity::kAnalog, 3);
    const RowAddr r0{0, 0, 0, 0, 0}, r1{0, 0, 0, 0, 1};
    Rng rng(5);
    analog.write_row(r0, BitVector::random(g.rank_row_bits(), 0.5, rng));
    analog.write_row(r1, BitVector::random(g.rank_row_bits(), 0.5, rng));
    std::vector<BitVector> out;
    out.push_back(analog.sense_rows({r0, r1}, BitOp::kXor));
    out.push_back(analog.sense_rows({r0, r1}, BitOp::kXor));
    return out;
  };
  const auto first = run(), second = run();
  EXPECT_EQ(first, second);  // same seed, same epoch sequence
}

TEST_F(MainMemoryTest, RowsWrittenCountsDistinct) {
  EXPECT_EQ(mem_.rows_written(), 0u);
  mem_.write_row({0, 0, 0, 0, 0}, random_row(9));
  mem_.write_row({0, 0, 0, 0, 0}, random_row(10));
  mem_.write_row({0, 0, 0, 0, 1}, random_row(11));
  EXPECT_EQ(mem_.rows_written(), 2u);
}

TEST(Commands, ToStringReadable) {
  Command c{CmdKind::kModeSet, {0, 0, 1, 2, 3}, BitOp::kXor, 0};
  EXPECT_EQ(c.to_string(), "MRS4 ch0.rk0.bk1.sa2.row3 op=XOR");
  Command s{CmdKind::kPimSense, {0, 0, 0, 0, 0}, BitOp::kOr, 5};
  EXPECT_NE(s.to_string().find("PIM_SENSE"), std::string::npos);
  EXPECT_NE(s.to_string().find("aux=5"), std::string::npos);
}

}  // namespace
}  // namespace pinatubo::mem
