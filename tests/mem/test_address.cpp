#include "mem/address.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::mem {
namespace {

TEST(Address, RoundTripAllFields) {
  AddressCodec codec{Geometry{}};
  const RowAddr a{0, 1, 5, 33, 100};
  EXPECT_EQ(codec.decode(codec.encode(a)), a);
}

TEST(Address, ExhaustiveRoundTripSmallGeometry) {
  Geometry g;
  g.ranks_per_channel = 2;
  g.banks_per_chip = 4;
  g.subarrays_per_bank = 4;
  g.rows_per_subarray = 4;
  AddressCodec codec{g};
  for (std::uint64_t id = 0; id < codec.row_count(); ++id)
    EXPECT_EQ(codec.encode(codec.decode(id)), id);
}

TEST(Address, BanksVaryFastest) {
  // Consecutive ids hit different banks -> consecutive rows of a striped
  // vector land in different banks and proceed in parallel.
  AddressCodec codec{Geometry{}};
  const auto a0 = codec.decode(0);
  const auto a1 = codec.decode(1);
  EXPECT_EQ(a0.bank + 1, a1.bank);
  EXPECT_EQ(a0.subarray, a1.subarray);
  EXPECT_EQ(a0.row, a1.row);
}

TEST(Address, SameSubarrayPredicate) {
  const RowAddr a{0, 0, 2, 7, 1};
  const RowAddr b{0, 0, 2, 7, 99};
  const RowAddr c{0, 0, 2, 8, 1};
  const RowAddr d{0, 0, 3, 7, 1};
  EXPECT_TRUE(a.same_subarray(b));
  EXPECT_FALSE(a.same_subarray(c));
  EXPECT_FALSE(a.same_subarray(d));
  EXPECT_TRUE(a.same_bank(c));
  EXPECT_FALSE(a.same_bank(d));
  EXPECT_TRUE(a.same_rank(d));
}

TEST(Address, RowCountMatchesGeometry) {
  Geometry g;
  AddressCodec codec{g};
  EXPECT_EQ(codec.row_count(),
            static_cast<std::uint64_t>(g.channels) * g.ranks_per_channel *
                g.banks_per_chip * g.subarrays_per_bank * g.rows_per_subarray);
}

TEST(Address, ChecksBounds) {
  AddressCodec codec{Geometry{}};
  EXPECT_THROW(codec.decode(codec.row_count()), Error);
  EXPECT_THROW(codec.encode(RowAddr{9, 0, 0, 0, 0}), Error);
  EXPECT_THROW(codec.encode(RowAddr{0, 0, 8, 0, 0}), Error);
  EXPECT_THROW(codec.encode(RowAddr{0, 0, 0, 64, 0}), Error);
  EXPECT_THROW(codec.encode(RowAddr{0, 0, 0, 0, 128}), Error);
}

TEST(Address, ToStringIsReadable) {
  const RowAddr a{0, 1, 2, 3, 4};
  EXPECT_EQ(a.to_string(), "ch0.rk1.bk2.sa3.row4");
}

}  // namespace
}  // namespace pinatubo::mem
