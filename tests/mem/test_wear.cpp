#include "mem/wear.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mem/mainmem.hpp"

namespace pinatubo::mem {
namespace {

TEST(WearTracker, RecordsAndAggregates) {
  WearTracker w;
  w.record(1, 100);
  w.record(1, 100);
  w.record(2, 50);
  EXPECT_EQ(w.total_row_writes(), 3u);
  EXPECT_EQ(w.total_cell_writes(), 250u);
  EXPECT_EQ(w.max_row_writes(), 2u);
  EXPECT_EQ(w.rows_touched(), 2u);
  EXPECT_EQ(w.writes_of(1), 2u);
  EXPECT_EQ(w.writes_of(99), 0u);
}

TEST(WearTracker, Imbalance) {
  WearTracker w;
  EXPECT_DOUBLE_EQ(w.imbalance(), 1.0);
  w.record(1, 1);
  w.record(2, 1);
  EXPECT_DOUBLE_EQ(w.imbalance(), 1.0);  // even
  for (int i = 0; i < 8; ++i) w.record(1, 1);
  // Row 1: 9 writes, row 2: 1 -> mean 5, max 9.
  EXPECT_DOUBLE_EQ(w.imbalance(), 9.0 / 5.0);
}

TEST(WearTracker, LifetimeScalesWithEnduranceAndRate) {
  WearTracker w;
  w.record(1, 1);
  const double base = w.lifetime_years(1e8, 1000.0);
  EXPECT_NEAR(w.lifetime_years(2e8, 1000.0), 2 * base, 1e-9);
  EXPECT_NEAR(w.lifetime_years(1e8, 2000.0), base / 2, 1e-9);
  EXPECT_THROW(w.lifetime_years(0, 1.0), Error);
}

TEST(WearTracker, ResetClears) {
  WearTracker w;
  w.record(1, 10);
  w.reset();
  EXPECT_EQ(w.total_row_writes(), 0u);
  EXPECT_EQ(w.max_row_writes(), 0u);
}

TEST(WearTracker, MainMemoryRecordsWrites) {
  Geometry g;
  g.ranks_per_channel = 1;
  g.banks_per_chip = 2;
  g.subarrays_per_bank = 2;
  g.rows_per_subarray = 4;
  g.chips_per_rank = 2;
  g.row_slice_bits = 64;
  g.mats_per_subarray = 2;
  g.sa_mux_share = 4;
  MainMemory mem(g, nvm::Tech::kPcm);
  mem.write_row({0, 0, 0, 0, 0}, BitVector(g.rank_row_bits()));
  mem.write_row_partial({0, 0, 0, 0, 0}, 0, BitVector(8));
  mem.write_row({0, 0, 1, 0, 0}, BitVector(g.rank_row_bits()));
  EXPECT_EQ(mem.wear().total_row_writes(), 3u);
  EXPECT_EQ(mem.wear().max_row_writes(), 2u);
  EXPECT_EQ(mem.wear().rows_touched(), 2u);
  // Reads do not wear.
  mem.read_row({0, 0, 0, 0, 0});
  EXPECT_EQ(mem.wear().total_row_writes(), 3u);
}

}  // namespace
}  // namespace pinatubo::mem
