// The memory's reliability seams: FaultHooks callbacks fire at the right
// places with the right (physical) coordinates, spare-row remaps redirect
// every access, and reset_campaign restores a factory-fresh array.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "mem/fault_hooks.hpp"
#include "mem/mainmem.hpp"

namespace pinatubo::mem {
namespace {

Geometry small_geometry() {
  Geometry g;
  g.ranks_per_channel = 1;
  g.banks_per_chip = 2;
  g.subarrays_per_bank = 2;
  g.rows_per_subarray = 8;
  g.chips_per_rank = 2;
  g.row_slice_bits = 64;
  g.mats_per_subarray = 2;
  g.sa_mux_share = 4;
  return g;
}

/// Scriptable hooks: records every callback, optionally corrupts writes
/// or flips sensed words.
struct StubHooks final : FaultHooks {
  using Word = BitVector::Word;

  struct WriteEvent {
    std::uint64_t row_id, write_count, epoch;
    std::size_t word_lo, word_hi;
  };
  std::vector<WriteEvent> writes;
  Word corrupt_mask = 0;   ///< OR'd into word 0 of every written row
  Word flip_mask = 0;      ///< XOR'd into word 0 of every sense
  std::uint64_t senses = 0;

  void on_write(std::uint64_t row_id, std::uint64_t write_count,
                std::uint64_t epoch, std::span<Word> row,
                std::size_t word_lo, std::size_t word_hi) override {
    writes.push_back({row_id, write_count, epoch, word_lo, word_hi});
    if (corrupt_mask && !row.empty()) row[0] |= corrupt_mask;
  }
  double sense_scale(std::uint64_t, std::span<const std::uint64_t>) override {
    return 1.0;
  }
  Word sense_flips(std::uint64_t, std::uint64_t word, double) override {
    ++senses;
    return word == 0 ? flip_mask : 0;
  }
};

class FaultHooksTest : public ::testing::Test {
 protected:
  FaultHooksTest() : mem_(small_geometry(), nvm::Tech::kPcm) {
    mem_.set_fault_hooks(&hooks_);
  }
  BitVector random_row(std::uint64_t seed) {
    Rng rng(seed);
    return BitVector::random(mem_.geometry().rank_row_bits(), 0.5, rng);
  }
  MainMemory mem_;
  StubHooks hooks_;
};

TEST_F(FaultHooksTest, WriteHookCorruptsStoredWords) {
  hooks_.corrupt_mask = 0b101;
  const RowAddr a{0, 0, 0, 0, 2};
  BitVector zeros(mem_.geometry().rank_row_bits());
  mem_.write_row(a, zeros);
  // The corruption landed in the ARRAY, not just the write's view.
  EXPECT_TRUE(mem_.read_row(a).get(0));
  EXPECT_FALSE(mem_.read_row(a).get(1));
  EXPECT_TRUE(mem_.read_row(a).get(2));
  ASSERT_EQ(hooks_.writes.size(), 1u);
  EXPECT_EQ(hooks_.writes[0].row_id, mem_.codec().encode(a));
  EXPECT_EQ(hooks_.writes[0].write_count, 1u);
}

TEST_F(FaultHooksTest, PartialWritesReportTheirWordWindow) {
  const RowAddr a{0, 0, 0, 0, 1};
  mem_.write_row_partial(a, 60, BitVector(10));  // bits 60..69: words 0 and 1
  ASSERT_EQ(hooks_.writes.size(), 1u);
  EXPECT_EQ(hooks_.writes[0].word_lo, 0u);
  EXPECT_EQ(hooks_.writes[0].word_hi, 2u);
}

TEST_F(FaultHooksTest, SenseFlipsHitTheOutputNotTheArray) {
  hooks_.flip_mask = BitVector::Word{1} << 5;
  const RowAddr r0{0, 0, 0, 0, 0}, r1{0, 0, 0, 0, 1};
  const auto a = random_row(1), b = random_row(2);
  mem_.write_row(r0, a);
  mem_.write_row(r1, b);
  const auto sensed = mem_.sense_rows({r0, r1}, BitOp::kOr);
  auto expect = a | b;
  expect.set(5, !expect.get(5));  // word 0, bit 5 flipped
  EXPECT_EQ(sensed, expect);
  EXPECT_GT(hooks_.senses, 0u);
  // The stored rows are untouched: a clean hook re-senses exactly.
  hooks_.flip_mask = 0;
  EXPECT_EQ(mem_.sense_rows({r0, r1}, BitOp::kOr), (a | b));
  // Each sense advances the epoch (the fault model's time proxy).
  EXPECT_EQ(mem_.sense_epoch(), 2u);
}

TEST_F(FaultHooksTest, RemapRedirectsAllAccessAndFaultKeying) {
  const RowAddr logical{0, 0, 0, 0, 3}, spare{0, 0, 0, 0, 7};
  const auto data = random_row(3);
  mem_.write_row(logical, data);
  mem_.remap_row(logical, spare);
  EXPECT_EQ(mem_.remapped_rows(), 1u);
  EXPECT_EQ(mem_.codec().encode(mem_.physical(logical)),
            mem_.codec().encode(spare));
  // Data is NOT copied by the remap: the logical row now reads the
  // (empty) spare until rewritten.
  EXPECT_TRUE(mem_.read_row(logical).none());
  mem_.write_row(logical, data);
  EXPECT_EQ(mem_.read_row(logical), data);
  // The write hook saw the PHYSICAL id — fault keying follows the remap.
  EXPECT_EQ(hooks_.writes.back().row_id, mem_.codec().encode(spare));
  // Unmapped rows resolve to themselves.
  const RowAddr other{0, 0, 1, 0, 0};
  EXPECT_EQ(mem_.codec().encode(mem_.physical(other)),
            mem_.codec().encode(other));
}

TEST_F(FaultHooksTest, ResetCampaignRestoresFactoryState) {
  const RowAddr a{0, 0, 0, 0, 0}, spare{0, 0, 0, 0, 6};
  mem_.write_row(a, random_row(4));
  mem_.sense_rows({a}, BitOp::kInv);
  mem_.remap_row(a, spare);
  ASSERT_GT(mem_.rows_written(), 0u);
  ASSERT_GT(mem_.wear().total_row_writes(), 0u);

  mem_.reset_campaign();
  EXPECT_EQ(mem_.rows_written(), 0u);
  EXPECT_EQ(mem_.remapped_rows(), 0u);
  EXPECT_EQ(mem_.sense_epoch(), 0u);
  EXPECT_EQ(mem_.wear().total_row_writes(), 0u);
  EXPECT_TRUE(mem_.read_row(a).none());
  // Hooks stay attached (reset separately by their owner).
  mem_.write_row(a, random_row(5));
  EXPECT_EQ(hooks_.writes.back().write_count, 1u);  // wear ledger restarted
}

TEST_F(FaultHooksTest, DetachingHooksStopsCallbacks) {
  mem_.set_fault_hooks(nullptr);
  mem_.write_row({0, 0, 0, 0, 0}, random_row(6));
  EXPECT_TRUE(hooks_.writes.empty());
}

}  // namespace
}  // namespace pinatubo::mem
