#include "mem/cmd_timer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::mem {
namespace {

BusParams bus() { return ddr3_1600_bus(); }

TEST(ChannelTimer, SingleCommand) {
  ChannelTimer t(8, bus());
  EXPECT_DOUBLE_EQ(t.issue(0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(t.finish_ns(), 10.0);
}

TEST(ChannelTimer, BanksRunInParallel) {
  ChannelTimer t(8, bus());
  // 8 commands of 100 ns to 8 different banks: serialized only by the
  // command bus (1.25 ns each), so finish ~= 7*1.25 + 100.
  double last = 0;
  for (unsigned b = 0; b < 8; ++b) last = t.issue(b, 100.0);
  EXPECT_NEAR(last, 7 * 1.25 + 100.0, 1e-9);
}

TEST(ChannelTimer, SameBankSerializes) {
  ChannelTimer t(8, bus());
  t.issue(3, 100.0);
  EXPECT_NEAR(t.issue(3, 50.0), 150.0, 1e-9);
}

TEST(ChannelTimer, CommandBusSerializesZeroWork) {
  ChannelTimer t(4, bus());
  // Even zero-occupancy commands consume bus slots.
  for (int i = 0; i < 10; ++i) t.issue(static_cast<unsigned>(i % 4), 0.0);
  EXPECT_NEAR(t.now_cmd_bus(), 10 * 1.25, 1e-9);
}

TEST(ChannelTimer, IssueAllBanksIsBarrier) {
  ChannelTimer t(4, bus());
  t.issue(0, 100.0);
  const double done = t.issue_all_banks(10.0);
  EXPECT_NEAR(done, 110.0, 1e-9);
  // Every bank now busy until the barrier op completes.
  EXPECT_NEAR(t.issue(3, 0.0), 110.0 + 1.25, 1e-9);
}

TEST(ChannelTimer, DataBurstUsesChannelBandwidth) {
  ChannelTimer t(8, bus());
  // 128 bytes at 12.8 GB/s = 10 ns after the 20 ns bank op.
  EXPECT_NEAR(t.issue_data(0, 20.0, 128), 30.0, 1e-9);
}

TEST(ChannelTimer, DataBusSerializesTransfers) {
  ChannelTimer t(8, bus());
  t.issue_data(0, 0.0, 1280);  // 100 ns of data
  const double done = t.issue_data(1, 0.0, 1280);
  EXPECT_GT(done, 200.0 - 1e-9);
}

TEST(ChannelTimer, DataAfterHonorsDependencyAndBus) {
  ChannelTimer t(8, bus());
  // Dependency delays the command even though bank and bus are free.
  EXPECT_NEAR(t.issue_data_after(0, 100.0, 20.0, 128), 130.0, 1e-9);
  // A second burst on another bank overlaps the bank op but serializes
  // its data behind the first burst.
  const double done = t.issue_data_after(1, 0.0, 0.0, 1280);
  EXPECT_GE(done, 230.0 - 1e-9);
}

TEST(ChannelTimer, DataAfterZeroReadyEqualsIssueData) {
  ChannelTimer a(2, bus()), b(2, bus());
  EXPECT_DOUBLE_EQ(a.issue_data(0, 20.0, 256),
                   b.issue_data_after(0, 0.0, 20.0, 256));
}

TEST(ChannelTimer, DependentDataChainIsSerialSum) {
  // compute -> burst -> compute -> burst chained by ready times lands on
  // the exact serial sum (what a batch of one dependent op costs).
  ChannelTimer t(2, bus());
  const double d1 = t.issue_after(0, 0.0, 100.0);
  const double d2 = t.issue_data_after(0, d1, 10.0, 128);  // +10 +10 ns
  EXPECT_NEAR(d2, 120.0, 1e-9);
  const double d3 = t.issue_after(0, d2, 50.0);
  EXPECT_NEAR(d3, 170.0, 1e-9);
}

TEST(ChannelTimer, TransferOnly) {
  ChannelTimer t(2, bus());
  EXPECT_NEAR(t.transfer(12800), 1000.0, 1e-9);
}

TEST(ChannelTimer, IssueAfterHonorsDependencies) {
  ChannelTimer t(2, bus());
  // Bank free and bus free, but the data dependency isn't ready yet.
  EXPECT_NEAR(t.issue_after(0, 500.0, 10.0), 510.0, 1e-9);
  // Later command to the other bank can still start immediately... no:
  // the command bus slot was consumed at 500; a new issue waits for it.
  EXPECT_GE(t.issue(1, 1.0), 501.25 - 1e-9);
}

TEST(ChannelTimer, IssueAfterZeroReadyEqualsIssue) {
  ChannelTimer a(2, bus()), b(2, bus());
  EXPECT_DOUBLE_EQ(a.issue(0, 7.0), b.issue_after(0, 0.0, 7.0));
}

TEST(ChannelTimer, ResetClearsState) {
  ChannelTimer t(2, bus());
  t.issue(0, 500.0);
  t.transfer(12800);  // data bus busy until 1000 ns
  t.reset();
  EXPECT_DOUBLE_EQ(t.finish_ns(), 0.0);
  EXPECT_DOUBLE_EQ(t.issue(0, 5.0), 5.0);
  // Data bus history gone too: a fresh burst starts immediately after
  // its bank op.
  EXPECT_NEAR(t.issue_data(1, 10.0, 128), 1.25 + 10.0 + 10.0, 1e-9);
}

TEST(ChannelTimer, Validates) {
  EXPECT_THROW(ChannelTimer(0, bus()), Error);
  ChannelTimer t(2, bus());
  EXPECT_THROW(t.issue(2, 1.0), Error);
  EXPECT_THROW(t.issue(0, -1.0), Error);
}

TEST(ChannelTimer, BankStaysBusyUntilBurstDrains) {
  // Regression: issue_data left the bank free at bank-op completion while
  // the burst was still draining its buffers, so a follow-up command to
  // the same bank could start mid-burst and clobber the latched data.
  ChannelTimer t(8, bus());
  // Bank op [0, 10], burst [10, 110] (1280 B at 12.8 GB/s).
  EXPECT_NEAR(t.issue_data(0, 10.0, 1280), 110.0, 1e-9);
  // Other banks are unaffected by the burst...
  EXPECT_NEAR(t.bank_free_ns(1), 1.25, 1e-9);
  // ...but the bursting bank is held until the transfer drains: the next
  // command to it starts at 110, not at bank-op completion (would be 15).
  EXPECT_NEAR(t.issue(0, 5.0), 115.0, 1e-9);
}

TEST(ChannelTimer, TransferConsumesCommandSlot) {
  // Regression: transfer() advanced the data bus without consulting or
  // occupying the command bus, so buffer reads were free commands.
  ChannelTimer t(2, bus());
  t.transfer(128);
  EXPECT_NEAR(t.now_cmd_bus(), 1.25, 1e-9);
  // The slot it consumed delays the next command.
  EXPECT_NEAR(t.issue(0, 0.0), 2.5, 1e-9);

  // And a transfer behind a busy command bus waits for its slot.
  ChannelTimer u(2, bus());
  for (int i = 0; i < 8; ++i) u.issue(0, 0.0);  // cmd bus busy until 10 ns
  EXPECT_NEAR(u.transfer(128), 20.0, 1e-9);     // 10 (slot) + 10 (burst)
}

TEST(ChannelTimer, FinishMonotoneOverRandomSequence) {
  // Invariant sweep: under any interleaving of the four issue kinds,
  // finish_ns never moves backwards, every returned completion is within
  // the horizon, and a bursting bank is never reported free mid-burst.
  ChannelTimer t(4, bus());
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  double horizon = 0.0;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const unsigned bank = static_cast<unsigned>((state >> 33) % 4);
    const double occ = static_cast<double>((state >> 11) % 100);
    const std::uint64_t bytes = (state >> 3) % 2048;
    double done = 0.0;
    switch ((state >> 61) & 3) {
      case 0: done = t.issue(bank, occ); break;
      case 1:
        done = t.issue_data(bank, occ, bytes);
        EXPECT_GE(t.bank_free_ns(bank), done - 1e-9);
        break;
      case 2: done = t.transfer(bytes); break;
      default: done = t.issue_all_banks(occ); break;
    }
    EXPECT_LE(done, t.finish_ns() + 1e-9);
    EXPECT_GE(t.finish_ns(), horizon - 1e-9);
    horizon = t.finish_ns();
  }
}

TEST(Timing, PaperConstants) {
  const auto pcm = pcm_timing();
  EXPECT_DOUBLE_EQ(pcm.t_rcd_ns, 18.3);
  EXPECT_DOUBLE_EQ(pcm.t_cl_ns, 8.9);
  EXPECT_DOUBLE_EQ(pcm.t_wr_ns, 151.1);
  const auto dram = dram_timing();
  EXPECT_DOUBLE_EQ(dram.t_rcd_ns, 13.75);
  EXPECT_DOUBLE_EQ(ddr3_1600_bus().data_gbps, 12.8);
}

}  // namespace
}  // namespace pinatubo::mem
