#include "mem/geometry.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace pinatubo::mem {
namespace {

TEST(Geometry, DefaultMatchesEvaluatedMachine) {
  Geometry g;
  g.validate();
  // Turning point B: full-parallel row group = 2^19 bits.
  EXPECT_EQ(g.row_group_bits(), 1ull << 19);
  // Turning point A: one sensing step = 2^14 bits.
  EXPECT_EQ(g.sense_step_bits(), 1ull << 14);
  // 64 MB per chip-set... rank = chips * banks * subarrays * rows * slice.
  EXPECT_EQ(g.rank_bits(), 1ull << 32);  // 512 MB per rank
  EXPECT_EQ(g.total_bytes(), 1ull << 30);  // 1 GiB machine
}

TEST(Geometry, DerivedQuantities) {
  Geometry g;
  EXPECT_EQ(g.rank_row_bits(), 8192u * 8);
  EXPECT_EQ(g.rows_per_bank(), 64u * 128);
  EXPECT_EQ(g.rows_per_rank(), 64u * 128 * 8);
  EXPECT_EQ(g.total_ranks(), 2u);
}

TEST(Geometry, ValidateCatchesInconsistency) {
  Geometry g;
  g.row_slice_bits = 1001;  // not divisible by 8 MATs
  EXPECT_THROW(g.validate(), Error);
  Geometry g2;
  g2.sa_mux_share = 7;  // row group not divisible
  EXPECT_THROW(g2.validate(), Error);
  Geometry g3;
  g3.channels = 0;
  EXPECT_THROW(g3.validate(), Error);
}

TEST(Geometry, FromConfig) {
  const auto cfg = Config::from_string(
      "geometry.banks = 16\n"
      "geometry.sa_mux_share = 16\n");
  const auto g = geometry_from_config(cfg);
  EXPECT_EQ(g.banks_per_chip, 16u);
  EXPECT_EQ(g.sa_mux_share, 16u);
  EXPECT_EQ(g.channels, 1u);  // default kept
  // Invalid combinations are rejected at construction.
  const auto bad = Config::from_string("geometry.sa_mux_share = 7\n");
  EXPECT_THROW(geometry_from_config(bad), Error);
}

TEST(Geometry, MuxShareScalesSenseStep) {
  Geometry g;
  g.sa_mux_share = 16;
  EXPECT_EQ(g.sense_step_bits(), 1ull << 15);
  g.sa_mux_share = 64;
  EXPECT_EQ(g.sense_step_bits(), 1ull << 13);
}

}  // namespace
}  // namespace pinatubo::mem
